// Package repro's root benchmarks regenerate every experiment indexed in
// EXPERIMENTS.md (one Benchmark per table/figure). Each benchmark
// iteration runs the experiment's full Quick sweep, so ns/op measures the
// cost of regenerating that table. Run the full-size tables with
// cmd/experiments instead:
//
//	go test -bench=. -benchmem            # all experiments, quick sweeps
//	go run ./cmd/experiments              # full-size tables
//
// The BenchmarkMechanism*/BenchmarkOracle* group at the bottom measures
// the serving split instead: an eager budget-charging mechanism call per
// query versus queries answered from one materialized release's
// DistanceOracle (see EXPERIMENTS.md, "Serving benchmarks"), and the
// BenchmarkFillLaplace/BenchmarkParallelRelease group measures release
// throughput through the vectorized NoiseSource layer (EXPERIMENTS.md,
// E19): block sampling per draw, and a >= 1M-edge ReleaseGraph on the
// serial versus the GOMAXPROCS-sharded crypto path.
package repro_test

import (
	"bytes"
	"testing"

	"repro/dpgraph"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/experiment"
	"repro/internal/graph"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiment.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(experiment.Config{Seed: int64(i + 1), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// Theorem 4.1 / Algorithm 1: single-source tree distances.
func BenchmarkE01_TreeSingleSource(b *testing.B) { benchExperiment(b, "E1") }

// Theorem 4.2: all-pairs tree distances.
func BenchmarkE02_TreeAllPairs(b *testing.B) { benchExperiment(b, "E2") }

// Theorem A.1: path-graph hub hierarchy.
func BenchmarkE03_PathHierarchy(b *testing.B) { benchExperiment(b, "E3") }

// Theorems 4.5 + 4.3 / Algorithm 2: bounded-weight graphs, approximate DP.
func BenchmarkE04_BoundedWeightApprox(b *testing.B) { benchExperiment(b, "E4") }

// Theorems 4.6 + 4.3: bounded-weight graphs, pure DP.
func BenchmarkE05_BoundedWeightPure(b *testing.B) { benchExperiment(b, "E5") }

// Theorem 4.7: grid coverings.
func BenchmarkE06_GridCovering(b *testing.B) { benchExperiment(b, "E6") }

// Theorem 5.5 / Algorithm 3: path error vs hop count.
func BenchmarkE07_PathErrorVsHops(b *testing.B) { benchExperiment(b, "E7") }

// Corollary 5.6: worst-case path error.
func BenchmarkE08_PathErrorWorstCase(b *testing.B) { benchExperiment(b, "E8") }

// Theorem 5.1 / Lemma 5.2: shortest-path reconstruction attack.
func BenchmarkE09_PathReconstruction(b *testing.B) { benchExperiment(b, "E9") }

// Theorem B.3: private almost-minimum spanning tree.
func BenchmarkE10_PrivateMST(b *testing.B) { benchExperiment(b, "E10") }

// Theorem B.1 / Lemma B.2: MST reconstruction attack.
func BenchmarkE11_MSTReconstruction(b *testing.B) { benchExperiment(b, "E11") }

// Theorem B.6: private low-weight perfect matching.
func BenchmarkE12_PrivateMatching(b *testing.B) { benchExperiment(b, "E12") }

// Theorem B.4 / Lemma B.5: matching reconstruction attack.
func BenchmarkE13_MatchingReconstruction(b *testing.B) { benchExperiment(b, "E13") }

// Section 1.1 motivation: private navigation on a synthetic city.
func BenchmarkE14_TrafficNavigation(b *testing.B) { benchExperiment(b, "E14") }

// Section 1.2: error vs influence scale.
func BenchmarkE15_SensitivityScaling(b *testing.B) { benchExperiment(b, "E15") }

// Lemma 4.4 ablation: covering construction quality.
func BenchmarkE16_CoveringAblation(b *testing.B) { benchExperiment(b, "E16") }

// Remark after Theorem 4.6: single-source release strategies.
func BenchmarkE17_SingleSource(b *testing.B) { benchExperiment(b, "E17") }

// Appendix A / [DNPR10]: continual counter equals path distances.
func BenchmarkE18_ContinualCounter(b *testing.B) { benchExperiment(b, "E18") }

// Figure 1: Algorithm 1 tree partition.
func BenchmarkF01_TreePartition(b *testing.B) { benchExperiment(b, "F1") }

// Figure 2: shortest-path lower-bound gadget.
func BenchmarkF02_PathGadget(b *testing.B) { benchExperiment(b, "F2") }

// Figure 3: MST and matching lower-bound gadgets.
func BenchmarkF03_MSTMatchingGadgets(b *testing.B) { benchExperiment(b, "F3") }

// --- Serving benchmarks: release once / query many ---------------------
//
// BenchmarkMechanismDistance is the eager path (one budget-charging
// mechanism call per answered query); the BenchmarkOracleDistance
// sub-benchmarks answer the same query from a materialized release's
// DistanceOracle. The tree/hierarchy/table oracles must report
// 0 allocs/op — scripts/check_oracle_allocs.sh enforces that in CI.

func benchSession(b *testing.B, g *dpgraph.Graph) *dpgraph.PrivateGraph {
	b.Helper()
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%7)/7
	}
	pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
		dpgraph.WithEpsilon(1), dpgraph.WithDeterministicSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	return pg
}

// BenchmarkMechanismDistance answers each query with a fresh Laplace
// mechanism call: every iteration pays a budget charge, a receipt
// append, and a full shortest-path computation.
func BenchmarkMechanismDistance(b *testing.B) {
	g := dpgraph.Grid(16)
	pg := benchSession(b, g)
	n := g.N()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pg.Distance(i%n, (i*13+1)%n); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOracleDistance measures one point query against a materialized
// oracle.
func benchOracleDistance(b *testing.B, o dpgraph.DistanceOracle) {
	b.Helper()
	n := o.N()
	if _, err := o.Distance(0, n-1); err != nil { // warm pools before measuring
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Distance(i%n, (i*13+1)%n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleDistance(b *testing.B) {
	b.Run("tree", func(b *testing.B) {
		rel, err := benchSession(b, dpgraph.BalancedBinaryTree(1023)).TreeAllPairs()
		if err != nil {
			b.Fatal(err)
		}
		benchOracleDistance(b, rel.Oracle())
	})
	b.Run("hierarchy", func(b *testing.B) {
		rel, err := benchSession(b, dpgraph.PathGraph(1024)).PathHierarchy(2)
		if err != nil {
			b.Fatal(err)
		}
		benchOracleDistance(b, rel.Oracle())
	})
	b.Run("table", func(b *testing.B) {
		pg := benchSession(b, dpgraph.Grid(16))
		rel, err := pg.AllPairsDistances()
		if err != nil {
			b.Fatal(err)
		}
		benchOracleDistance(b, rel.Oracle())
	})
	b.Run("synthetic", func(b *testing.B) {
		rel, err := benchSession(b, dpgraph.Grid(16)).Release()
		if err != nil {
			b.Fatal(err)
		}
		benchOracleDistance(b, rel.Oracle())
	})
	// The indexed-serving group: one ≥100k-edge release (Grid(225) has
	// 2*225*224 = 100,800 edges), served unindexed (per-query Dijkstra)
	// versus through the contraction-hierarchy, landmark, and hub-label
	// indexes. scripts/check_perf_guards.sh asserts the CH oracle is
	// ≥10x faster than the unindexed one and the hub-label oracle ≥5x
	// faster than CH on this workload.
	for _, mode := range []dpgraph.QueryIndexMode{dpgraph.IndexOff, dpgraph.IndexCH, dpgraph.IndexALT, dpgraph.IndexHL} {
		name := "synthetic-100k"
		if mode != dpgraph.IndexOff {
			name += "-" + mode.String()
		}
		b.Run(name, func(b *testing.B) {
			rel, err := benchSession(b, dpgraph.Grid(225)).Release()
			if err != nil {
				b.Fatal(err)
			}
			oracle, err := rel.IndexedOracle(mode)
			if err != nil {
				b.Fatal(err)
			}
			benchOracleDistance(b, oracle)
		})
	}
}

// --- Throughput benchmarks: the vectorized noise layer -----------------
//
// BenchmarkFillLaplace measures the block sampler per draw; the
// crypto-serial and seeded sub-benchmarks must report 0 allocs/op
// (scripts/check_perf_guards.sh enforces that in CI). The crypto
// sub-benchmark takes the sharded parallel path when GOMAXPROCS > 1.

func BenchmarkFillLaplace(b *testing.B) {
	sources := []struct {
		name string
		src  dp.NoiseSource
	}{
		{"crypto-serial", dp.NewSerialCryptoNoise()},
		{"crypto", dp.NewCryptoNoise()},
		{"seeded", dp.NewSeededNoise(1)},
	}
	dst := make([]float64, 1<<16)
	for _, s := range sources {
		b.Run(s.name, func(b *testing.B) {
			b.SetBytes(8 << 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.src.FillLaplace(1, dst)
			}
		})
	}
}

// BenchmarkParallelRelease materializes an eps-DP synthetic weight
// vector for a 1,001,112-edge grid. The serial sub-benchmark pins the
// single-threaded crypto sampler; the parallel one lets FillLaplace
// shard across GOMAXPROCS workers, which is how crypto-mode sessions run
// in production. On one core the two coincide; at GOMAXPROCS >= 8 the
// guard script asserts a >= 4x wall-clock win.
func BenchmarkParallelRelease(b *testing.B) {
	g := graph.Grid(708) // 2*708*707 = 1,001,112 edges
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%7)
	}
	run := func(b *testing.B, src func() dp.NoiseSource) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rel, err := core.ReleaseGraph(g, w, core.Options{Epsilon: 1, Noise: src()})
			if err != nil {
				b.Fatal(err)
			}
			if len(rel.Weights) != g.M() {
				b.Fatal("short release")
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, dp.NewSerialCryptoNoise) })
	b.Run("parallel", func(b *testing.B) { run(b, dp.NewCryptoNoise) })
}

// --- Snapshot benchmarks: sealed-release restore ------------------------
//
// BenchmarkSnapshotRestore compares the two ways a replica can start
// serving the same ≥100k-edge indexed release: re-materializing it from
// the private weights (budget charge + noise + contraction hierarchy)
// versus unsealing a snapshot artifact (decode + index rehydration,
// zero budget). Both sub-benchmarks end with one answered query, so
// ns/op is the restore-to-first-answer latency.
// scripts/check_perf_guards.sh asserts unseal is ≥50x faster.
func BenchmarkSnapshotRestore(b *testing.B) {
	g := dpgraph.Grid(225) // 2*225*224 = 100,800 edges
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%7)/7
	}
	materialize := func() (dpgraph.DistanceOracle, dpgraph.Result) {
		pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
			dpgraph.WithEpsilon(1), dpgraph.WithDeterministicSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		rel, err := pg.Release()
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := rel.IndexedOracle(dpgraph.IndexCH)
		if err != nil {
			b.Fatal(err)
		}
		return oracle, rel
	}
	firstQuery := func(o dpgraph.DistanceOracle) {
		if _, err := o.Distance(0, g.N()-1); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("rematerialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			oracle, _ := materialize()
			firstQuery(oracle)
		}
	})
	b.Run("unseal", func(b *testing.B) {
		oracle, rel := materialize()
		var buf bytes.Buffer
		if err := dpgraph.Seal(&buf, oracle, rel); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sealed, err := dpgraph.Unseal(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			firstQuery(sealed.Oracle())
		}
	})
}

// BenchmarkOracleBatch answers a 256-pair workload per iteration through
// the batch interface (the synthetic oracle groups the batch by source).
func BenchmarkOracleBatch(b *testing.B) {
	families := []struct {
		name   string
		oracle func(b *testing.B) dpgraph.DistanceOracle
	}{
		{"tree", func(b *testing.B) dpgraph.DistanceOracle {
			rel, err := benchSession(b, dpgraph.BalancedBinaryTree(1023)).TreeAllPairs()
			if err != nil {
				b.Fatal(err)
			}
			return rel.Oracle()
		}},
		{"synthetic", func(b *testing.B) dpgraph.DistanceOracle {
			rel, err := benchSession(b, dpgraph.Grid(16)).Release()
			if err != nil {
				b.Fatal(err)
			}
			return rel.Oracle()
		}},
	}
	for _, f := range families {
		b.Run(f.name, func(b *testing.B) {
			o := f.oracle(b)
			n := o.N()
			pairs := make([]dpgraph.VertexPair, 256)
			for i := range pairs {
				pairs[i] = dpgraph.VertexPair{S: (i * 31) % n, T: (i*17 + 3) % n}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.Distances(pairs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
