// Package repro's root benchmarks regenerate every experiment in
// EXPERIMENTS.md (one Benchmark per table/figure; see DESIGN.md §3 for
// the index). Each benchmark iteration runs the experiment's full Quick
// sweep, so ns/op measures the cost of regenerating that table. Run the
// full-size tables with cmd/experiments instead:
//
//	go test -bench=. -benchmem            # all experiments, quick sweeps
//	go run ./cmd/experiments              # full-size tables
package repro_test

import (
	"testing"

	"repro/internal/experiment"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiment.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(experiment.Config{Seed: int64(i + 1), Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// Theorem 4.1 / Algorithm 1: single-source tree distances.
func BenchmarkE01_TreeSingleSource(b *testing.B) { benchExperiment(b, "E1") }

// Theorem 4.2: all-pairs tree distances.
func BenchmarkE02_TreeAllPairs(b *testing.B) { benchExperiment(b, "E2") }

// Theorem A.1: path-graph hub hierarchy.
func BenchmarkE03_PathHierarchy(b *testing.B) { benchExperiment(b, "E3") }

// Theorems 4.5 + 4.3 / Algorithm 2: bounded-weight graphs, approximate DP.
func BenchmarkE04_BoundedWeightApprox(b *testing.B) { benchExperiment(b, "E4") }

// Theorems 4.6 + 4.3: bounded-weight graphs, pure DP.
func BenchmarkE05_BoundedWeightPure(b *testing.B) { benchExperiment(b, "E5") }

// Theorem 4.7: grid coverings.
func BenchmarkE06_GridCovering(b *testing.B) { benchExperiment(b, "E6") }

// Theorem 5.5 / Algorithm 3: path error vs hop count.
func BenchmarkE07_PathErrorVsHops(b *testing.B) { benchExperiment(b, "E7") }

// Corollary 5.6: worst-case path error.
func BenchmarkE08_PathErrorWorstCase(b *testing.B) { benchExperiment(b, "E8") }

// Theorem 5.1 / Lemma 5.2: shortest-path reconstruction attack.
func BenchmarkE09_PathReconstruction(b *testing.B) { benchExperiment(b, "E9") }

// Theorem B.3: private almost-minimum spanning tree.
func BenchmarkE10_PrivateMST(b *testing.B) { benchExperiment(b, "E10") }

// Theorem B.1 / Lemma B.2: MST reconstruction attack.
func BenchmarkE11_MSTReconstruction(b *testing.B) { benchExperiment(b, "E11") }

// Theorem B.6: private low-weight perfect matching.
func BenchmarkE12_PrivateMatching(b *testing.B) { benchExperiment(b, "E12") }

// Theorem B.4 / Lemma B.5: matching reconstruction attack.
func BenchmarkE13_MatchingReconstruction(b *testing.B) { benchExperiment(b, "E13") }

// Section 1.1 motivation: private navigation on a synthetic city.
func BenchmarkE14_TrafficNavigation(b *testing.B) { benchExperiment(b, "E14") }

// Section 1.2: error vs influence scale.
func BenchmarkE15_SensitivityScaling(b *testing.B) { benchExperiment(b, "E15") }

// Lemma 4.4 ablation: covering construction quality.
func BenchmarkE16_CoveringAblation(b *testing.B) { benchExperiment(b, "E16") }

// Remark after Theorem 4.6: single-source release strategies.
func BenchmarkE17_SingleSource(b *testing.B) { benchExperiment(b, "E17") }

// Appendix A / [DNPR10]: continual counter equals path distances.
func BenchmarkE18_ContinualCounter(b *testing.B) { benchExperiment(b, "E18") }

// Figure 1: Algorithm 1 tree partition.
func BenchmarkF01_TreePartition(b *testing.B) { benchExperiment(b, "F1") }

// Figure 2: shortest-path lower-bound gadget.
func BenchmarkF02_PathGadget(b *testing.B) { benchExperiment(b, "F2") }

// Figure 3: MST and matching lower-bound gadgets.
func BenchmarkF03_MSTMatchingGadgets(b *testing.B) { benchExperiment(b, "F3") }
