// Command citygen generates a synthetic city road network with congested
// travel times (the paper's Section 1.1 setting) and writes it in the
// text edge-list format that cmd/dpgraph consumes, making the two tools a
// self-contained demo pipeline:
//
//	citygen -side 20 -hour 8 > city.txt
//	dpgraph -graph city.txt -eps 1 path 0 399
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/dpgraph"
	"repro/internal/traffic"
)

func main() {
	var (
		side      = flag.Int("side", 16, "grid side length (side*side intersections)")
		hour      = flag.Float64("hour", 8, "time of day in [0, 24) for the congestion model")
		intensity = flag.Float64("intensity", 1, "congestion intensity (1 = normal day)")
		removal   = flag.Float64("removal", 0.1, "block removal probability in [0, 1)")
		arterial  = flag.Int("arterial", 4, "arterial avenue spacing (0 disables)")
		seed      = flag.Int64("seed", 0, "generator seed (0: time-based)")
		jsonOut   = flag.Bool("json", false, "emit JSON instead of the text format")
	)
	flag.Parse()
	if err := run(*side, *hour, *intensity, *removal, *arterial, *seed, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "citygen:", err)
		os.Exit(1)
	}
}

func run(side int, hour, intensity, removal float64, arterial int, seed int64, jsonOut bool) error {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	city, err := traffic.NewCity(traffic.Config{
		Side:             side,
		BlockRemovalProb: removal,
		ArterialEvery:    arterial,
	}, rng)
	if err != nil {
		return err
	}
	w := city.TravelTimes(traffic.CongestionModel{Hour: hour, Intensity: intensity}, rng)
	if jsonOut {
		data, err := dpgraph.MarshalGraphJSON(city.G, w)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	fmt.Printf("# synthetic city: side=%d hour=%g intensity=%g seed=%d\n", side, hour, intensity, seed)
	fmt.Printf("# weights are private travel times in minutes; cap M=%g\n", city.MaxTime)
	return dpgraph.WriteGraphText(os.Stdout, city.G, w)
}
