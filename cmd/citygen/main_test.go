package main

import (
	"os"
	"testing"

	"repro/dpgraph"
)

// TestRunProducesLoadableGraph drives run() with stdout redirected to a
// file and re-parses the output through the graph readers.
func TestRunProducesLoadableGraph(t *testing.T) {
	for _, jsonOut := range []bool{false, true} {
		f, err := os.CreateTemp(t.TempDir(), "city")
		if err != nil {
			t.Fatal(err)
		}
		old := os.Stdout
		os.Stdout = f
		err = run(8, 8, 1, 0.1, 4, 42, jsonOut)
		os.Stdout = old
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		g, w, err := dpgraph.ParseGraph(data)
		if err != nil {
			t.Fatalf("jsonOut=%v: %v", jsonOut, err)
		}
		if g.N() != 64 || len(w) != g.M() || !g.Connected() {
			t.Fatalf("jsonOut=%v: bad graph N=%d M=%d", jsonOut, g.N(), g.M())
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	devnull, _ := os.Open(os.DevNull)
	old := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = old }()
	if err := run(1, 8, 1, 0.1, 4, 1, false); err == nil {
		t.Error("side=1 accepted")
	}
	if err := run(8, 8, 1, 1.5, 4, 1, false); err == nil {
		t.Error("removal=1.5 accepted")
	}
}
