package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptrace"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// runBenchServe is the load generator for a running dpgraph serve
// daemon: it discovers ready releases from the listing endpoint (all of
// them, or just -release when given), fires n point or batch requests
// from c concurrent workers over keep-alive connections, and reports
// throughput, latency quantiles, and connection reuse — the numbers
// behind EXPERIMENTS.md E21/E24. With -source it queries distinct
// targets from one fixed source (the shape the daemon's sweep coalescer
// merges); with -stream it pipelines NDJSON point queries over c
// streaming requests instead of one HTTP round trip per query.
func runBenchServe(out *os.File, args []string) error {
	fs := flag.NewFlagSet("dpgraph bench-serve", flag.ContinueOnError)
	var (
		baseURL = fs.String("url", "http://127.0.0.1:8080", "base URL of a running dpgraph serve")
		release = fs.String("release", "", "release name to query (default: fan across every ready release)")
		n       = fs.Int("n", 10000, "total requests to send")
		c       = fs.Int("c", 8, "concurrent client workers")
		batch   = fs.Int("batch", 1, "pairs per request (1: point endpoint, >1: batch endpoint)")
		seed    = fs.Int64("seed", 1, "pair-generation seed")
		source  = fs.Int("source", -1, "query distinct targets from this fixed source vertex (-1: random pairs)")
		stream  = fs.Bool("stream", false, "pipeline point queries over the NDJSON distances:stream endpoint")
		timeout = fs.Duration("timeout", 0, "per-request deadline; timed-out requests count as failures (0: none)")
		maxErr  = fs.Float64("max-error-rate", 0, "error budget: exit nonzero only when more than this fraction of requests fail (0: any failure fails the run)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("bench-serve takes no positional arguments, got %q", fs.Args())
	}
	if *n < 1 || *c < 1 || *batch < 1 {
		return fmt.Errorf("-n, -c, and -batch must be >= 1")
	}
	if *stream && *batch != 1 {
		return fmt.Errorf("-stream pipelines point queries; drop -batch (each line is one pair)")
	}
	if *stream && *timeout > 0 {
		return fmt.Errorf("-timeout bounds one HTTP request; a pipelined stream is one long request, drop -timeout")
	}
	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0, got %v", *timeout)
	}
	if *maxErr < 0 || *maxErr >= 1 {
		return fmt.Errorf("-max-error-rate must be in [0, 1), got %v", *maxErr)
	}

	targets, err := benchReleases(*baseURL, *release)
	if err != nil {
		return err
	}
	if *source >= 0 {
		for _, tgt := range targets {
			if *source >= tgt.n {
				return fmt.Errorf("-source %d is out of range for release %s (n=%d)", *source, tgt.name, tgt.n)
			}
		}
	}

	// The default transport caps idle conns per host at 2: past a
	// handful of workers every request races for a keep-alive slot,
	// loses, and re-dials — the benchmark measures connection churn, not
	// the daemon. Size the pools to the worker count so each worker owns
	// a persistent connection, and count dials vs reuses to prove it.
	transport := &http.Transport{
		MaxIdleConns:        *c + 16,
		MaxIdleConnsPerHost: *c,
		MaxConnsPerHost:     *c,
		IdleConnTimeout:     90 * time.Second,
	}
	// Per-request deadline via the client so it covers dial, headers,
	// and body; a request that exceeds it surfaces as a failure.
	client := &http.Client{Transport: transport, Timeout: *timeout}
	var dialed, reused atomic.Int64
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				reused.Add(1)
			} else {
				dialed.Add(1)
			}
		},
	})

	if *stream {
		return runBenchServeStream(out, ctx, client, *baseURL, targets, *n, *c, *seed, *source, *maxErr, &dialed, &reused)
	}

	// Pregenerate a shared pool of request targets (and batch bodies),
	// spreading pool slots across the benched releases, so workers spend
	// their time on requests, not on formatting. Fixed-source runs build
	// each request on the fly instead: their point is a fresh target
	// every time (repeats would hit the daemon's result cache and
	// measure memoization, not serving).
	rng := rand.New(rand.NewSource(*seed))
	const pool = 1024
	urls := make([]string, pool)
	bodies := make([]string, pool)
	if *source < 0 {
		for i := range urls {
			tgt := targets[i%len(targets)]
			if *batch == 1 {
				urls[i] = fmt.Sprintf("%s/v1/releases/%s/distance?s=%d&t=%d", *baseURL, tgt.name, rng.Intn(tgt.n), rng.Intn(tgt.n))
				continue
			}
			urls[i] = fmt.Sprintf("%s/v1/releases/%s/distances", *baseURL, tgt.name)
			var b strings.Builder
			b.WriteString("[")
			for k := 0; k < *batch; k++ {
				if k > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "[%d,%d]", rng.Intn(tgt.n), rng.Intn(tgt.n))
			}
			b.WriteString("]")
			bodies[i] = b.String()
		}
	}

	var (
		next      atomic.Int64 // request tickets
		failures  atomic.Int64
		lastError atomic.Value
		wg        sync.WaitGroup
	)
	// Latencies are kept per (worker, release) so the report can break
	// results down by release — and therefore by index mode — instead of
	// folding differently indexed releases into one number.
	latencies := make([][][]time.Duration, *c)
	start := time.Now()
	for wk := 0; wk < *c; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			lat := make([][]time.Duration, len(targets))
			for {
				i := next.Add(1) - 1
				if i >= int64(*n) {
					break
				}
				ti := int(i % int64(len(targets)))
				tgt := targets[ti]
				var reqURL, body string
				if *source >= 0 {
					if *batch == 1 {
						reqURL = fmt.Sprintf("%s/v1/releases/%s/distance?s=%d&t=%d",
							*baseURL, tgt.name, *source, benchTargetVertex(*source, tgt.n, i))
					} else {
						reqURL = fmt.Sprintf("%s/v1/releases/%s/distances", *baseURL, tgt.name)
						var b strings.Builder
						b.WriteString("[")
						for k := 0; k < *batch; k++ {
							if k > 0 {
								b.WriteString(",")
							}
							fmt.Fprintf(&b, "[%d,%d]", *source, benchTargetVertex(*source, tgt.n, i*int64(*batch)+int64(k)))
						}
						b.WriteString("]")
						body = b.String()
					}
				} else {
					reqURL = urls[i%pool]
					body = bodies[i%pool]
					ti = int(i % pool % int64(len(targets)))
				}
				t0 := time.Now()
				var resp *http.Response
				var err error
				if *batch == 1 {
					var req *http.Request
					if req, err = http.NewRequestWithContext(ctx, http.MethodGet, reqURL, nil); err == nil {
						resp, err = client.Do(req)
					}
				} else {
					var req *http.Request
					if req, err = http.NewRequestWithContext(ctx, http.MethodPost, reqURL, strings.NewReader(body)); err == nil {
						req.Header.Set("Content-Type", "application/json")
						resp, err = client.Do(req)
					}
				}
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %s", resp.Status)
					}
				}
				if err != nil {
					failures.Add(1)
					lastError.Store(err.Error())
					continue
				}
				lat[ti] = append(lat[ti], time.Since(t0))
			}
			latencies[wk] = lat
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	perRelease := make([][]time.Duration, len(targets))
	for _, lat := range latencies {
		for tgt, l := range lat {
			perRelease[tgt] = append(perRelease[tgt], l...)
			all = append(all, l...)
		}
	}
	if len(all) == 0 {
		return fmt.Errorf("all %d requests failed (last error: %v)", *n, lastError.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(l []time.Duration, p float64) time.Duration { return l[int(p*float64(len(l)-1))] }
	q := func(p float64) time.Duration { return quantile(all, p) }

	var names []string
	for _, tgt := range targets {
		names = append(names, tgt.label())
	}
	pairs := int64(len(all)) * int64(*batch)
	fmt.Fprintf(out, "bench-serve: %d ok / %d failed requests against release(s) %s in %.2fs (%d workers, batch %d)\n",
		len(all), failures.Load(), strings.Join(names, " "), elapsed.Seconds(), *c, *batch)
	fmt.Fprintf(out, "throughput: %.1f requests/s, %.1f pairs/s\n",
		float64(len(all))/elapsed.Seconds(), float64(pairs)/elapsed.Seconds())
	fmt.Fprintf(out, "latency: p50 %s  p90 %s  p99 %s\n", q(0.50), q(0.90), q(0.99))
	fmt.Fprintf(out, "connections: %d dialed, %d reused\n", dialed.Load(), reused.Load())
	if len(targets) > 1 {
		for tgt, l := range perRelease {
			if len(l) == 0 {
				continue
			}
			sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
			fmt.Fprintf(out, "  %s: %d requests, p50 %s  p90 %s  p99 %s\n",
				targets[tgt].label(), len(l), quantile(l, 0.50), quantile(l, 0.90), quantile(l, 0.99))
		}
	}
	return benchErrorBudget(out, "requests", failures.Load(), int64(*n), *maxErr, lastError.Load())
}

// benchErrorBudget applies the -max-error-rate error budget: a failure
// rate within the budget reports and passes, anything above it (or any
// failure with a zero budget) fails the run.
func benchErrorBudget(out *os.File, what string, failed, total int64, budget float64, lastErr any) error {
	if failed == 0 {
		return nil
	}
	rate := float64(failed) / float64(total)
	if rate > budget {
		return fmt.Errorf("error rate %.4f (%d of %d %s) exceeds budget %g (last error: %v)",
			rate, failed, total, what, budget, lastErr)
	}
	fmt.Fprintf(out, "error rate %.4f (%d of %d %s) within budget %g\n", rate, failed, total, what, budget)
	return nil
}

// benchTargetVertex spreads ticket i over the n-1 vertices other than
// src, cycling so consecutive tickets query distinct targets.
func benchTargetVertex(src, n int, i int64) int {
	return (src + 1 + int(i%int64(n-1))) % n
}

// runBenchServeStream drives the pipelined NDJSON endpoint: each of c
// workers opens one distances:stream request and pours its share of the
// n queries down it while reading answers back, so the wire carries no
// per-query HTTP overhead. Throughput is answers per second across all
// streams.
func runBenchServeStream(out *os.File, ctx context.Context, client *http.Client, baseURL string, targets []benchRelease, n, c int, seed int64, source int, maxErr float64, dialed, reused *atomic.Int64) error {
	var (
		answered  atomic.Int64
		failures  atomic.Int64
		lastError atomic.Value
		wg        sync.WaitGroup
	)
	start := time.Now()
	for wk := 0; wk < c; wk++ {
		quota := n / c
		if wk < n%c {
			quota++
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(wk, quota int) {
			defer wg.Done()
			tgt := targets[wk%len(targets)]
			pr, pw := io.Pipe()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/releases/"+tgt.name+"/distances:stream", pr)
			if err != nil {
				failures.Add(int64(quota))
				lastError.Store(err.Error())
				return
			}
			req.Header.Set("Content-Type", "text/plain")
			go func() {
				rng := rand.New(rand.NewSource(seed + int64(wk)))
				buf := make([]byte, 0, 64<<10)
				base := int64(wk) * int64(quota)
				for i := 0; i < quota; i++ {
					var s, t int
					if source >= 0 {
						s, t = source, benchTargetVertex(source, tgt.n, base+int64(i))
					} else {
						s, t = rng.Intn(tgt.n), rng.Intn(tgt.n)
					}
					buf = strconv.AppendInt(buf, int64(s), 10)
					buf = append(buf, ' ')
					buf = strconv.AppendInt(buf, int64(t), 10)
					buf = append(buf, '\n')
					if len(buf) >= 32<<10 {
						if _, err := pw.Write(buf); err != nil {
							return // reader side failed; it reports the error
						}
						buf = buf[:0]
					}
				}
				if len(buf) > 0 {
					pw.Write(buf) //nolint:errcheck // reader side reports failures
				}
				pw.Close()
			}()
			resp, err := client.Do(req)
			if err != nil {
				pr.CloseWithError(err)
				failures.Add(int64(quota))
				lastError.Store(err.Error())
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
				pr.CloseWithError(fmt.Errorf("status %s", resp.Status))
				failures.Add(int64(quota))
				lastError.Store(fmt.Sprintf("status %s: %s", resp.Status, strings.TrimSpace(string(body))))
				return
			}
			br := bufio.NewReaderSize(resp.Body, 64<<10)
			got := 0
			for {
				line, err := br.ReadSlice('\n')
				if len(line) >= 3 && line[0] == '{' {
					if line[1] == '"' && line[2] == 'e' { // {"error":...} terminates the stream
						failures.Add(int64(quota - got))
						lastError.Store(strings.TrimSpace(string(line)))
						pr.CloseWithError(fmt.Errorf("server error"))
						return
					}
					got++
				}
				if err != nil {
					break
				}
			}
			answered.Add(int64(got))
			if got != quota {
				failures.Add(int64(quota - got))
				lastError.Store(fmt.Sprintf("stream answered %d of %d queries", got, quota))
			}
		}(wk, quota)
	}
	wg.Wait()
	elapsed := time.Since(start)
	ok := answered.Load()
	if ok == 0 {
		return fmt.Errorf("all %d stream queries failed (last error: %v)", n, lastError.Load())
	}
	var names []string
	for _, tgt := range targets {
		names = append(names, tgt.label())
	}
	fmt.Fprintf(out, "bench-serve: %d ok / %d failed stream queries against release(s) %s in %.2fs (%d streams)\n",
		ok, failures.Load(), strings.Join(names, " "), elapsed.Seconds(), c)
	fmt.Fprintf(out, "throughput: %.1f pairs/s pipelined\n", float64(ok)/elapsed.Seconds())
	fmt.Fprintf(out, "connections: %d dialed, %d reused\n", dialed.Load(), reused.Load())
	return benchErrorBudget(out, "stream queries", failures.Load(), int64(n), maxErr, lastError.Load())
}

// benchRelease is one release the generator fires at: its name, the
// vertex count pairs are drawn from, and the query-index mode it
// serves with (so the report distinguishes ch from hl runs).
type benchRelease struct {
	name  string
	n     int
	index string
}

// label renders the release with its index mode for report lines.
func (r benchRelease) label() string {
	idx := r.index
	if idx == "" {
		idx = "off"
	}
	return fmt.Sprintf("%s[index=%s]", r.name, idx)
}

// benchReleases asks the serving daemon for the benchable releases:
// the named one when name is non-empty (it must be ready), otherwise
// every ready release with enough vertices to generate pairs.
func benchReleases(baseURL, name string) ([]benchRelease, error) {
	resp, err := http.Get(baseURL + "/v1/releases")
	if err != nil {
		return nil, fmt.Errorf("listing releases: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing releases: status %s: %s", resp.Status, data)
	}
	var list struct {
		Releases []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			N      int    `json:"n"`
			Index  string `json:"index"`
		} `json:"releases"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("bad listing: %w", err)
	}
	if name != "" {
		for _, rel := range list.Releases {
			if rel.Name != name {
				continue
			}
			if rel.Status != "ready" {
				return nil, fmt.Errorf("release %q is %s, not ready", name, rel.Status)
			}
			if rel.N < 2 {
				return nil, fmt.Errorf("release %q serves %d vertices; need >= 2 to generate pairs", name, rel.N)
			}
			return []benchRelease{{name: rel.Name, n: rel.N, index: rel.Index}}, nil
		}
		var names []string
		for _, rel := range list.Releases {
			names = append(names, rel.Name)
		}
		return nil, fmt.Errorf("release %q not found; server has: %s", name, strings.Join(names, " "))
	}
	var targets []benchRelease
	for _, rel := range list.Releases {
		if rel.Status == "ready" && rel.N >= 2 {
			targets = append(targets, benchRelease{name: rel.Name, n: rel.N, index: rel.Index})
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no ready releases to bench (see GET %s/v1/releases)", baseURL)
	}
	return targets, nil
}
