package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// runBenchServe is the load generator for a running dpgraph serve
// daemon: it discovers ready releases from the listing endpoint (all of
// them, or just -release when given), fires n point or batch requests
// from c concurrent workers over keep-alive connections, and reports
// throughput and latency quantiles — the numbers behind
// EXPERIMENTS.md E21.
func runBenchServe(out *os.File, args []string) error {
	fs := flag.NewFlagSet("dpgraph bench-serve", flag.ContinueOnError)
	var (
		baseURL = fs.String("url", "http://127.0.0.1:8080", "base URL of a running dpgraph serve")
		release = fs.String("release", "", "release name to query (default: fan across every ready release)")
		n       = fs.Int("n", 10000, "total requests to send")
		c       = fs.Int("c", 8, "concurrent client workers")
		batch   = fs.Int("batch", 1, "pairs per request (1: point endpoint, >1: batch endpoint)")
		seed    = fs.Int64("seed", 1, "pair-generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("bench-serve takes no positional arguments, got %q", fs.Args())
	}
	if *n < 1 || *c < 1 || *batch < 1 {
		return fmt.Errorf("-n, -c, and -batch must be >= 1")
	}

	targets, err := benchReleases(*baseURL, *release)
	if err != nil {
		return err
	}

	// Pregenerate a shared pool of request targets (and batch bodies),
	// spreading pool slots across the benched releases, so workers spend
	// their time on requests, not on formatting.
	rng := rand.New(rand.NewSource(*seed))
	const pool = 1024
	urls := make([]string, pool)
	bodies := make([]string, pool)
	for i := range urls {
		tgt := targets[i%len(targets)]
		if *batch == 1 {
			urls[i] = fmt.Sprintf("%s/v1/releases/%s/distance?s=%d&t=%d", *baseURL, tgt.name, rng.Intn(tgt.n), rng.Intn(tgt.n))
			continue
		}
		urls[i] = fmt.Sprintf("%s/v1/releases/%s/distances", *baseURL, tgt.name)
		var b strings.Builder
		b.WriteString("[")
		for k := 0; k < *batch; k++ {
			if k > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "[%d,%d]", rng.Intn(tgt.n), rng.Intn(tgt.n))
		}
		b.WriteString("]")
		bodies[i] = b.String()
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *c}}
	var (
		next      atomic.Int64 // request tickets
		failures  atomic.Int64
		lastError atomic.Value
		wg        sync.WaitGroup
	)
	// Latencies are kept per (worker, release) so the report can break
	// results down by release — and therefore by index mode — instead of
	// folding differently indexed releases into one number.
	latencies := make([][][]time.Duration, *c)
	start := time.Now()
	for wk := 0; wk < *c; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			lat := make([][]time.Duration, len(targets))
			for {
				i := next.Add(1) - 1
				if i >= int64(*n) {
					break
				}
				t0 := time.Now()
				var resp *http.Response
				var err error
				if *batch == 1 {
					resp, err = client.Get(urls[i%pool])
				} else {
					resp, err = client.Post(urls[i%pool], "application/json", strings.NewReader(bodies[i%pool]))
				}
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %s", resp.Status)
					}
				}
				if err != nil {
					failures.Add(1)
					lastError.Store(err.Error())
					continue
				}
				tgt := int(i % pool % int64(len(targets)))
				lat[tgt] = append(lat[tgt], time.Since(t0))
			}
			latencies[wk] = lat
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	perRelease := make([][]time.Duration, len(targets))
	for _, lat := range latencies {
		for tgt, l := range lat {
			perRelease[tgt] = append(perRelease[tgt], l...)
			all = append(all, l...)
		}
	}
	if len(all) == 0 {
		return fmt.Errorf("all %d requests failed (last error: %v)", *n, lastError.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(l []time.Duration, p float64) time.Duration { return l[int(p*float64(len(l)-1))] }
	q := func(p float64) time.Duration { return quantile(all, p) }

	var names []string
	for _, tgt := range targets {
		names = append(names, tgt.label())
	}
	pairs := int64(len(all)) * int64(*batch)
	fmt.Fprintf(out, "bench-serve: %d ok / %d failed requests against release(s) %s in %.2fs (%d workers, batch %d)\n",
		len(all), failures.Load(), strings.Join(names, " "), elapsed.Seconds(), *c, *batch)
	fmt.Fprintf(out, "throughput: %.1f requests/s, %.1f pairs/s\n",
		float64(len(all))/elapsed.Seconds(), float64(pairs)/elapsed.Seconds())
	fmt.Fprintf(out, "latency: p50 %s  p90 %s  p99 %s\n", q(0.50), q(0.90), q(0.99))
	if len(targets) > 1 {
		for tgt, l := range perRelease {
			if len(l) == 0 {
				continue
			}
			sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
			fmt.Fprintf(out, "  %s: %d requests, p50 %s  p90 %s  p99 %s\n",
				targets[tgt].label(), len(l), quantile(l, 0.50), quantile(l, 0.90), quantile(l, 0.99))
		}
	}
	if f := failures.Load(); f > 0 {
		return fmt.Errorf("%d of %d requests failed (last error: %v)", f, *n, lastError.Load())
	}
	return nil
}

// benchRelease is one release the generator fires at: its name, the
// vertex count pairs are drawn from, and the query-index mode it
// serves with (so the report distinguishes ch from hl runs).
type benchRelease struct {
	name  string
	n     int
	index string
}

// label renders the release with its index mode for report lines.
func (r benchRelease) label() string {
	idx := r.index
	if idx == "" {
		idx = "off"
	}
	return fmt.Sprintf("%s[index=%s]", r.name, idx)
}

// benchReleases asks the serving daemon for the benchable releases:
// the named one when name is non-empty (it must be ready), otherwise
// every ready release with enough vertices to generate pairs.
func benchReleases(baseURL, name string) ([]benchRelease, error) {
	resp, err := http.Get(baseURL + "/v1/releases")
	if err != nil {
		return nil, fmt.Errorf("listing releases: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing releases: status %s: %s", resp.Status, data)
	}
	var list struct {
		Releases []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			N      int    `json:"n"`
			Index  string `json:"index"`
		} `json:"releases"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("bad listing: %w", err)
	}
	if name != "" {
		for _, rel := range list.Releases {
			if rel.Name != name {
				continue
			}
			if rel.Status != "ready" {
				return nil, fmt.Errorf("release %q is %s, not ready", name, rel.Status)
			}
			if rel.N < 2 {
				return nil, fmt.Errorf("release %q serves %d vertices; need >= 2 to generate pairs", name, rel.N)
			}
			return []benchRelease{{name: rel.Name, n: rel.N, index: rel.Index}}, nil
		}
		var names []string
		for _, rel := range list.Releases {
			names = append(names, rel.Name)
		}
		return nil, fmt.Errorf("release %q not found; server has: %s", name, strings.Join(names, " "))
	}
	var targets []benchRelease
	for _, rel := range list.Releases {
		if rel.Status == "ready" && rel.N >= 2 {
			targets = append(targets, benchRelease{name: rel.Name, n: rel.N, index: rel.Index})
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no ready releases to bench (see GET %s/v1/releases)", baseURL)
	}
	return targets, nil
}
