package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/dpgraph"
)

// runFleet is the multi-process scaling and fault-tolerance bench: it
// seals one seeded release from -graph, boots -n real `dpgraph serve`
// replica processes from that snapshot plus one `dpgraph route`
// coordinator process, then drives `dpgraph bench-serve` through the
// coordinator at every scale from 1 replica to all -n (replicas join
// the pool live over POST /v1/replicas), reporting aggregate
// throughput per scale — the numbers behind EXPERIMENTS.md E25. Every
// replica runs under GOMAXPROCS=-procs so scaling is visible even on
// a small machine where one unrestricted replica would saturate every
// core by itself.
func runFleet(out *os.File, args []string) error {
	fs := flag.NewFlagSet("dpgraph fleet", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "graph file the benched release is sealed from (required)")
		nReplicas = fs.Int("n", 3, "replica processes to boot")
		procs     = fs.Int("procs", 1, "GOMAXPROCS per replica (0: unrestricted)")
		requests  = fs.Int("requests", 20000, "bench requests per scale")
		workers   = fs.Int("c", 16, "concurrent bench workers")
		indexMode = fs.String("index", "off", "query index sealed into the benched release: off, auto, ch, alt, hl")
		seed      = fs.Int64("seed", 7, "deterministic release seed (replicas must serve identical values)")
		probeIv   = fs.Duration("probe-interval", 250*time.Millisecond, "coordinator health-probe period")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-request bench deadline")
		keepDir   = fs.String("dir", "", "working directory for the snapshot and logs (default: a temp dir, removed afterwards)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("fleet takes no positional arguments, got %q", fs.Args())
	}
	if *graphPath == "" {
		return fmt.Errorf("fleet needs -graph FILE to seal the benched release from")
	}
	if *nReplicas < 1 {
		return fmt.Errorf("-n must be >= 1, got %d", *nReplicas)
	}
	if *procs < 0 {
		return fmt.Errorf("-procs must be >= 0, got %d", *procs)
	}
	if *requests < 1 || *workers < 1 {
		return fmt.Errorf("-requests and -c must be >= 1")
	}

	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("locating own binary: %w", err)
	}
	dir := *keepDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "dpgraph-fleet-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Seal the benched release once, in-process: every replica restores
	// the same artifact, so any of them answers any query identically.
	snapPath := filepath.Join(dir, "bench.dpsnap")
	if err := fleetSeal(*graphPath, snapPath, *indexMode, *seed); err != nil {
		return err
	}
	fmt.Fprintf(out, "fleet: sealed benched release to %s (seed %d, index %s)\n", snapPath, *seed, orNone(*indexMode))

	// Boot all N replicas up front; they join the coordinator one scale
	// at a time.
	procsEnv := ""
	if *procs > 0 {
		procsEnv = fmt.Sprintf("GOMAXPROCS=%d", *procs)
	}
	replicas := make([]*fleetProc, 0, *nReplicas)
	defer func() {
		for _, p := range replicas {
			p.kill()
		}
	}()
	for i := 0; i < *nReplicas; i++ {
		p, err := startFleetProc(exe, []string{
			"-graph", *graphPath, "serve",
			"-addr", "127.0.0.1:0",
			"-snapshot-dir", dir,
			"-drain-grace", "0s",
		}, procsEnv)
		if err != nil {
			return fmt.Errorf("booting replica %d: %w", i, err)
		}
		replicas = append(replicas, p)
	}
	for i, p := range replicas {
		if err := fleetWaitReady("http://"+p.addr, 10*time.Second); err != nil {
			return fmt.Errorf("replica %d (%s) never became ready: %w", i, p.addr, err)
		}
	}
	fmt.Fprintf(out, "fleet: %d replica(s) ready (GOMAXPROCS=%d each)\n", len(replicas), *procs)

	coord, err := startFleetProc(exe, []string{
		"route",
		"-addr", "127.0.0.1:0",
		"-replicas", "http://" + replicas[0].addr,
		"-probe-interval", probeIv.String(),
		"-drain-grace", "0s",
	}, "")
	if err != nil {
		return fmt.Errorf("booting coordinator: %w", err)
	}
	defer coord.kill()
	coordURL := "http://" + coord.addr
	if err := fleetWaitReady(coordURL, 10*time.Second); err != nil {
		return fmt.Errorf("coordinator never became ready: %w", err)
	}
	fmt.Fprintf(out, "fleet: coordinator on %s (probe interval %v)\n", coordURL, *probeIv)

	// Bench every scale; replica i joins the pool right before scale
	// i+1 runs, exercising live registration on the way.
	type scaleResult struct {
		scale int
		qps   float64
	}
	results := make([]scaleResult, 0, *nReplicas)
	for scale := 1; scale <= *nReplicas; scale++ {
		if scale > 1 {
			if err := fleetRegister(coordURL, "http://"+replicas[scale-1].addr); err != nil {
				return fmt.Errorf("registering replica %d: %w", scale-1, err)
			}
		}
		qps, benchOut, err := fleetBench(exe, coordURL, *requests, *workers, *timeout)
		if err != nil {
			return fmt.Errorf("bench at scale %d: %w\n%s", scale, err, benchOut)
		}
		results = append(results, scaleResult{scale, qps})
		fmt.Fprintf(out, "fleet: scale %d -> %.1f requests/s\n", scale, qps)
	}

	fmt.Fprintf(out, "\nfleet scaling (%d requests x %d workers per scale, release seed %d):\n", *requests, *workers, *seed)
	fmt.Fprintf(out, "%-10s %14s %10s\n", "replicas", "aggregate qps", "vs 1")
	for _, r := range results {
		fmt.Fprintf(out, "%-10d %14.1f %9.2fx\n", r.scale, r.qps, r.qps/results[0].qps)
	}
	return nil
}

// fleetSeal materializes one seeded release from the graph file and
// seals it to path — the artifact every fleet replica boots from.
func fleetSeal(graphPath, path, indexMode string, seed int64) error {
	g, w, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	if _, err := dpgraph.ParseQueryIndexMode(indexMode); err != nil {
		return err
	}
	spec := dpgraph.ReleaseSpec{Mechanism: "release", Epsilon: 1, Seed: seed, Index: indexMode}
	oracle, res, err := spec.Materialize(g, dpgraph.PrivateWeights(w))
	if err != nil {
		return err
	}
	if !dpgraph.Sealable(oracle) {
		return fmt.Errorf("release oracle is not sealable: %w", dpgraph.ErrNotSealable)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dpgraph.Seal(f, oracle, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fleetProc is one spawned daemon (replica or coordinator): its
// process, the listen address parsed from its banner line, and a
// drained stdout so the pipe never backpressures the child.
type fleetProc struct {
	cmd  *exec.Cmd
	addr string
}

// startFleetProc launches the dpgraph binary with args, waits for its
// "... on http://ADDR" banner, and keeps draining its output.
func startFleetProc(exe string, args []string, extraEnv string) (*fleetProc, error) {
	cmd := exec.Command(exe, args...)
	cmd.Env = os.Environ()
	if extraEnv != "" {
		cmd.Env = append(cmd.Env, extraEnv)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = cmd.Stdout // daemons report errors on stderr too
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "on http://"); i >= 0 {
				select {
				case addrc <- strings.TrimSpace(line[i+len("on http://"):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &fleetProc{cmd: cmd, addr: addr}, nil
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("no listen banner within 15s")
	}
}

func (p *fleetProc) kill() {
	if p == nil || p.cmd == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// fleetWaitReady polls a daemon's /readyz until it answers 200.
func fleetWaitReady(baseURL string, within time.Duration) error {
	deadline := time.Now().Add(within)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("readyz status %s", resp.Status)
		} else {
			lastErr = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return lastErr
}

// fleetRegister adds a replica to the coordinator's pool and waits for
// it to show up healthy.
func fleetRegister(coordURL, replicaURL string) error {
	body := strings.NewReader(fmt.Sprintf(`{"url":%q}`, replicaURL))
	resp, err := http.Post(coordURL+"/v1/replicas", "application/json", body)
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if !strings.Contains(string(data), `"state": "healthy"`) {
		return fmt.Errorf("replica registered but not healthy: %s", strings.TrimSpace(string(data)))
	}
	return nil
}

// fleetBench shells out to bench-serve against the coordinator and
// parses the aggregate requests/s from its report.
func fleetBench(exe, coordURL string, requests, workers int, timeout time.Duration) (qps float64, output string, err error) {
	cmd := exec.Command(exe, "bench-serve",
		"-url", coordURL,
		"-release", "bench",
		"-n", fmt.Sprint(requests),
		"-c", fmt.Sprint(workers),
		"-timeout", timeout.String(),
	)
	outBytes, err := cmd.CombinedOutput()
	output = string(outBytes)
	if err != nil {
		return 0, output, err
	}
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, "throughput: ") {
			if _, err := fmt.Sscanf(line, "throughput: %f requests/s", &qps); err == nil {
				return qps, output, nil
			}
		}
	}
	return 0, output, fmt.Errorf("no throughput line in bench output")
}
