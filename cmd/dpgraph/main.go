// Command dpgraph answers differentially private queries over a weighted
// graph read from a file (text edge-list or JSON; see internal/graph/io.go
// for the formats). The topology is treated as public and the weights as
// private; each invocation opens one dpgraph.PrivateGraph session and
// spends the stated privacy budget once.
//
// Subcommands are the dpgraph mechanism registry; run with no arguments
// to list them. Examples:
//
//	dpgraph -graph city.txt -eps 1 distance 3 17
//	dpgraph -graph city.txt -eps 1 -json path 3 17
//	dpgraph -graph city.txt -eps 1 -delta 1e-6 -maxweight 16 apsd 3 17
//	dpgraph -graph tree.txt -eps 1 treedist 3 17
//	dpgraph -graph city.txt -eps 1 mst
//
// Noise is crypto-grade unless -seed is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/dpgraph"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dpgraph:", err)
		os.Exit(1)
	}
}

// jsonOutput is the machine-readable envelope emitted by -json. The
// result itself carries the mechanism name, privacy cost, and receipt
// (via its embedded release metadata); the envelope only adds the
// error bound evaluated at -gamma.
type jsonOutput struct {
	// Bound is the high-probability additive error bound at -gamma.
	Bound  float64 `json:"bound"`
	Gamma  float64 `json:"gamma"`
	Result any     `json:"result"`
}

func run(out *os.File, args []string) error {
	fs := flag.NewFlagSet("dpgraph", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to graph file (text edge-list or JSON)")
		eps       = fs.Float64("eps", 1, "privacy parameter epsilon")
		delta     = fs.Float64("delta", 0, "privacy parameter delta (composition mechanisms)")
		gamma     = fs.Float64("gamma", 0.05, "failure probability for error bounds")
		scale     = fs.Float64("scale", 1, "l1 influence of one individual on the weights")
		maxWeight = fs.Float64("maxweight", 0, "weight cap M for bounded-weight mechanisms")
		seed      = fs.Int64("seed", 0, "deterministic noise seed (0: crypto-grade noise)")
		jsonOut   = fs.Bool("json", false, "emit machine-readable JSON (value, error bound, receipt)")
	)
	fs.Usage = func() { usage(fs) }
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || fs.NArg() < 1 {
		usage(fs)
		return fmt.Errorf("need -graph and a subcommand")
	}
	cmd := fs.Arg(0)
	desc, ok := dpgraph.Mechanism(cmd)
	if !ok || desc.Run == nil {
		usage(fs)
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	if desc.NeedsMaxWeight && !(*maxWeight > 0) {
		return fmt.Errorf("%s requires -maxweight", cmd)
	}

	g, w, err := dpgraph.ReadGraphFile(*graphPath)
	if err != nil {
		return err
	}
	if w == nil {
		return fmt.Errorf("graph file %s carries no weights", *graphPath)
	}

	opts := []dpgraph.Option{
		dpgraph.WithEpsilon(*eps),
		dpgraph.WithDelta(*delta),
		dpgraph.WithGamma(*gamma),
		dpgraph.WithScale(*scale),
	}
	if *seed != 0 {
		opts = append(opts, dpgraph.WithDeterministicSeed(*seed))
	}
	pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w), opts...)
	if err != nil {
		return err
	}

	q, err := parseArgs(desc, fs.Args()[1:])
	if err != nil {
		return err
	}
	q.MaxWeight = *maxWeight

	res, err := desc.Run(pg, q)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonOutput{
			Bound:  res.Bound(*gamma),
			Gamma:  *gamma,
			Result: res,
		})
	}
	rec := res.Info().Receipt
	fmt.Fprintln(out, res.Summary())
	if d, ok := res.(dpgraph.Detailer); ok {
		fmt.Fprintln(out, d.Detail())
	}
	fmt.Fprintf(out, "error bound at gamma=%g: %.4f\n", *gamma, res.Bound(*gamma))
	fmt.Fprintf(out, "privacy receipt: %s\n", rec)
	return nil
}

// parseArgs maps positional arguments onto the descriptor's declared
// parameter names.
func parseArgs(desc dpgraph.Descriptor, args []string) (dpgraph.Args, error) {
	var q dpgraph.Args
	if len(args) != len(desc.Args) {
		return q, fmt.Errorf("%s needs %d argument(s): %s", desc.Name, len(desc.Args), strings.Join(desc.Args, " "))
	}
	for i, name := range desc.Args {
		v, err := strconv.Atoi(args[i])
		if err != nil {
			return q, fmt.Errorf("bad %s argument %q", name, args[i])
		}
		switch name {
		case "s":
			q.S = v
		case "t":
			q.T = v
		case "root":
			q.Root = v
		default:
			return q, fmt.Errorf("descriptor %s declares unknown argument %q", desc.Name, name)
		}
	}
	return q, nil
}

// usage renders the flag help plus the mechanism registry, so the
// subcommand list can never drift from the library.
func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: dpgraph -graph FILE [flags] SUBCOMMAND [args]")
	fmt.Fprintln(os.Stderr, "\nflags:")
	fs.PrintDefaults()
	fmt.Fprintln(os.Stderr, "\nsubcommands (from the dpgraph mechanism registry):")
	for _, d := range dpgraph.Mechanisms() {
		if d.Run == nil {
			continue
		}
		argHint := ""
		if len(d.Args) > 0 {
			argHint = " " + strings.Join(d.Args, " ")
		}
		extra := ""
		if d.NeedsMaxWeight {
			extra = " (requires -maxweight)"
		}
		fmt.Fprintf(os.Stderr, "  %-12s%-8s %s%s\n", d.Name, argHint, d.Summary, extra)
		fmt.Fprintf(os.Stderr, "  %12s         %s; sensitivity: %s; guarantee: %s\n", "", d.Ref, d.Sensitivity, d.Guarantee)
	}
}
