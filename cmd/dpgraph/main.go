// Command dpgraph answers differentially private queries over a weighted
// graph read from a file (text edge-list or JSON; see internal/graph/io.go
// for the formats). The topology is treated as public and the weights as
// private; each invocation opens one dpgraph.PrivateGraph session and
// spends the stated privacy budget once.
//
// Subcommands are the dpgraph mechanism registry; run with no arguments
// to list them. Examples:
//
//	dpgraph -graph city.txt -eps 1 distance 3 17
//	dpgraph -graph city.txt -eps 1 -json path 3 17
//	dpgraph -graph city.txt -eps 1 -delta 1e-6 -maxweight 16 apsd 3 17
//	dpgraph -graph tree.txt -eps 1 treedist 3 17
//	dpgraph -graph city.txt -eps 1 mst
//
// The query subcommand is the release-once / query-many path: it
// materializes one release (spending the budget exactly once), then
// answers every s-t pair read from stdin as free post-processing:
//
//	echo "3 17\n3 9\n12 0" | dpgraph -graph city.txt -eps 1 query release
//	dpgraph -graph tree.txt query treesssp 0 < pairs.txt
//	echo '[[0,9],[4,12]]' | dpgraph -graph city.txt -json query apsd
//	dpgraph -graph city.txt -workers 0 query release < pairs.txt
//	dpgraph -graph city.txt -index ch -workers 0 query release < pairs.txt
//
// Large pair batches can be answered in parallel with -workers N (0
// uses GOMAXPROCS): oracles are goroutine-safe and queries spend no
// budget, so sharding the batch is pure post-processing. For the
// synthetic-graph release, -index MODE (auto, ch, alt, hl) additionally
// builds a precomputed speedup index over the materialized release —
// contraction hierarchy, landmark A*, or hub labels — so each worker
// answers its pairs orders of magnitude faster than per-query Dijkstra;
// the two flags multiply.
//
// Pairs are text lines "s t" or a JSON array ([[s,t], ...] or
// [{"s":..,"t":..}, ...]); the format is sniffed from the input.
//
// The serve subcommand turns the same machinery into a long-running
// HTTP daemon: POST /v1/releases materializes named, independently
// budgeted releases, and the distance endpoints answer unboundedly
// many queries from their oracles with zero extra budget (see
// internal/serve). bench-serve is the matching load generator:
//
//	dpgraph -graph city.txt serve -addr 127.0.0.1:8080
//	dpgraph bench-serve -url http://127.0.0.1:8080 -release main -n 100000 -c 32
//
// Noise is crypto-grade unless -seed is given.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/dpgraph"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Stdout, os.Stdin, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dpgraph:", err)
		os.Exit(1)
	}
}

// jsonOutput is the machine-readable envelope emitted by -json. The
// result itself carries the mechanism name, privacy cost, and receipt
// (via its embedded release metadata); the envelope only adds the
// error bound evaluated at -gamma.
type jsonOutput struct {
	// Bound is the high-probability additive error bound at -gamma.
	Bound  float64 `json:"bound"`
	Gamma  float64 `json:"gamma"`
	Result any     `json:"result"`
}

func run(out *os.File, in io.Reader, args []string) error {
	fs := flag.NewFlagSet("dpgraph", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to graph file (text edge-list or JSON)")
		eps       = fs.Float64("eps", 1, "privacy parameter epsilon")
		delta     = fs.Float64("delta", 0, "privacy parameter delta (composition mechanisms)")
		gamma     = fs.Float64("gamma", 0.05, "failure probability for error bounds")
		scale     = fs.Float64("scale", 1, "l1 influence of one individual on the weights")
		maxWeight = fs.Float64("maxweight", 0, "weight cap M for bounded-weight mechanisms")
		seed      = fs.Int64("seed", 0, "deterministic noise seed (0: crypto-grade noise)")
		jsonOut   = fs.Bool("json", false, "emit machine-readable JSON (value, error bound, receipt)")
		workers   = fs.Int("workers", 1, "parallel workers answering query-mode pairs (0: GOMAXPROCS)")
		indexMode = fs.String("index", "off", "query-mode speedup index over the release: off, auto, ch, alt, hl")
	)
	fs.Usage = func() { usage(fs) }
	if err := fs.Parse(args); err != nil {
		return err
	}
	// bench-serve targets a running server, unseal an artifact, and
	// version/keygen nothing at all — none reads a graph file, so they
	// dispatch before the -graph requirement.
	if fs.NArg() >= 1 {
		switch fs.Arg(0) {
		case "bench-serve", "route", "fleet", "version", "keygen", "unseal":
			if err := rejectGlobalFlags(fs, fs.Arg(0), nil); err != nil {
				return err
			}
			rest := fs.Args()[1:]
			switch fs.Arg(0) {
			case "bench-serve":
				return runBenchServe(out, rest)
			case "route":
				return runRoute(out, rest)
			case "fleet":
				return runFleet(out, rest)
			case "version":
				return runVersion(out, rest)
			case "keygen":
				return runKeygen(out, rest)
			default:
				return runUnseal(out, in, rest)
			}
		}
	}
	if *graphPath == "" || fs.NArg() < 1 {
		usage(fs)
		return fmt.Errorf("need -graph and a subcommand")
	}
	cmd := fs.Arg(0)
	queryMode := cmd == "query"
	sealMode := cmd == "seal"
	mechArgs := fs.Args()[1:]
	if queryMode || sealMode {
		if fs.NArg() < 2 {
			return fmt.Errorf("%[1]s needs a mechanism: %[1]s MECHANISM [args]", fs.Arg(0))
		}
		cmd = fs.Arg(1)
		mechArgs = fs.Args()[2:]
	}

	if cmd == "serve" {
		// The daemon materializes releases from POST /v1/releases specs,
		// each carrying its own privacy parameters; session flags here
		// would be dead settings, so reject them loudly.
		if err := rejectGlobalFlags(fs, "serve", map[string]bool{"graph": true}); err != nil {
			return err
		}
		g, w, err := loadGraph(*graphPath)
		if err != nil {
			return err
		}
		return runServe(out, g, w, fs.Args()[1:])
	}

	desc, ok := dpgraph.Mechanism(cmd)
	if !ok || (!queryMode && !sealMode && desc.Run == nil) {
		usage(fs)
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	if (queryMode || sealMode) && desc.Oracle == nil {
		return fmt.Errorf("mechanism %q releases no distance oracle; oracle-capable: %s", cmd, strings.Join(dpgraph.OracleMechanisms(), " "))
	}
	if desc.NeedsMaxWeight && !(*maxWeight > 0) {
		return fmt.Errorf("%s requires -maxweight", cmd)
	}

	g, w, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}

	idxMode, err := dpgraph.ParseQueryIndexMode(*indexMode)
	if err != nil {
		return err
	}
	if idxMode != dpgraph.IndexOff && !queryMode && !sealMode {
		return fmt.Errorf("-index only applies to the query and seal subcommands")
	}

	if queryMode || sealMode {
		// ReleaseSpec reads zero-valued parameters as "use the default",
		// but a flag explicitly set to an invalid value must still fail
		// loudly, not silently run at the default. The flag defaults are
		// all valid, so any invalid value here was user-supplied.
		if !(*eps > 0) {
			return fmt.Errorf("epsilon must be positive, got %g", *eps)
		}
		if !(*gamma > 0 && *gamma < 1) {
			return fmt.Errorf("gamma must be in (0, 1), got %g", *gamma)
		}
		if !(*scale > 0) {
			return fmt.Errorf("scale must be positive, got %g", *scale)
		}
		// The CLI and the HTTP server share one release-construction
		// path: flags assemble the same spec a POST /v1/releases body
		// carries.
		spec := dpgraph.ReleaseSpec{
			Mechanism: desc.Name,
			MaxWeight: *maxWeight,
			Epsilon:   *eps,
			Delta:     *delta,
			Gamma:     *gamma,
			Scale:     *scale,
			Seed:      *seed,
			Index:     *indexMode,
		}
		if sealMode {
			if *workers != 1 {
				return fmt.Errorf("-workers only applies to the query subcommand")
			}
			return runSeal(out, g, w, desc, spec, mechArgs)
		}
		q, err := parseArgs(desc.Name, desc.OracleArgs, mechArgs)
		if err != nil {
			return err
		}
		spec.Root = q.Root
		return runQuery(out, in, g, w, spec, desc.Name, *gamma, *jsonOut, *workers)
	}
	if *workers != 1 {
		return fmt.Errorf("-workers only applies to the query subcommand")
	}

	opts := []dpgraph.Option{
		dpgraph.WithEpsilon(*eps),
		dpgraph.WithDelta(*delta),
		dpgraph.WithGamma(*gamma),
		dpgraph.WithScale(*scale),
	}
	if *seed != 0 {
		opts = append(opts, dpgraph.WithDeterministicSeed(*seed))
	}
	pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w), opts...)
	if err != nil {
		return err
	}

	q, err := parseArgs(desc.Name, desc.Args, mechArgs)
	if err != nil {
		return err
	}
	q.MaxWeight = *maxWeight

	res, err := desc.Run(pg, q)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonOutput{
			Bound:  res.Bound(*gamma),
			Gamma:  *gamma,
			Result: jsonSafeResult(res),
		})
	}
	rec := res.Info().Receipt
	fmt.Fprintln(out, res.Summary())
	if d, ok := res.(dpgraph.Detailer); ok {
		fmt.Fprintln(out, d.Detail())
	}
	fmt.Fprintf(out, "error bound at gamma=%g: %.4f\n", *gamma, res.Bound(*gamma))
	fmt.Fprintf(out, "privacy receipt: %s\n", rec)
	return nil
}

// queryJSONOutput is the -json envelope of the query subcommand: one
// receipt for the release, then every answered pair.
type queryJSONOutput struct {
	Mechanism string             `json:"mechanism"`
	Bound     float64            `json:"bound"`
	Gamma     float64            `json:"gamma"`
	Receipt   dpgraph.Receipt    `json:"receipt"`
	Results   []serve.PairAnswer `json:"results"`
}

// runQuery is the release-once / query-many path: materialize the
// spec's release (the only budget-charging step), then answer every
// pair from the input as free post-processing of the oracle — sharded
// across workers goroutines when requested, which is safe because
// oracles are goroutine-safe and queries touch no budget state.
func runQuery(out *os.File, in io.Reader, g *dpgraph.Graph, w []float64, spec dpgraph.ReleaseSpec, mech string, gamma float64, jsonOut bool, workers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	pairs, err := readPairs(in)
	if err != nil {
		return err
	}
	if len(pairs) == 0 {
		// Refuse before materializing the release: an empty workload must
		// not charge the budget.
		return fmt.Errorf("query needs at least one s-t pair")
	}
	oracle, res, err := spec.Materialize(g, dpgraph.PrivateWeights(w))
	if err != nil {
		return err
	}
	values, err := answerPairs(oracle, pairs, workers)
	if err != nil {
		return err
	}
	rec := res.Info().Receipt
	if jsonOut {
		answers := make([]serve.PairAnswer, len(pairs))
		for i, p := range pairs {
			answers[i] = serve.PairAnswer{S: p.S, T: p.T, Value: values[i]}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(queryJSONOutput{
			Mechanism: mech,
			Bound:     oracle.Bound(gamma),
			Gamma:     gamma,
			Receipt:   rec,
			Results:   answers,
		})
	}
	for i, p := range pairs {
		fmt.Fprintf(out, "%d %d %.4f\n", p.S, p.T, values[i])
	}
	fmt.Fprintf(out, "# %d queries answered from one %q release (zero extra budget)\n", len(pairs), mech)
	fmt.Fprintf(out, "# error bound at gamma=%g: %.4f\n", gamma, oracle.Bound(gamma))
	fmt.Fprintf(out, "# privacy receipt: %s\n", rec)
	return nil
}

// answerPairs evaluates the batch against the oracle, sharding it into
// contiguous chunks across workers goroutines (0 means GOMAXPROCS).
// Answer order always matches input order; with one worker the batch
// goes through the oracle's own Distances (which may group by source).
func answerPairs(oracle dpgraph.DistanceOracle, pairs []dpgraph.VertexPair, workers int) ([]float64, error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := len(pairs); workers > max {
		workers = max
	}
	if workers <= 1 {
		return oracle.Distances(pairs)
	}
	values := make([]float64, len(pairs))
	errs := make([]error, workers)
	chunk := (len(pairs) + workers - 1) / workers
	var wg sync.WaitGroup
	for wk := 0; wk*chunk < len(pairs); wk++ {
		lo, hi := wk*chunk, (wk+1)*chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			part, err := oracle.Distances(pairs[lo:hi])
			if err != nil {
				errs[wk] = err
				return
			}
			copy(values[lo:hi], part)
		}(wk, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return values, nil
}

// readPairs decodes the query pairs from stdin via the parser shared
// with the HTTP batch handler: text lines "s t" or a JSON array
// ([[s,t], ...] or [{"s":..,"t":..}, ...]), format sniffed, trailing
// JSON content rejected in both array forms.
func readPairs(in io.Reader) ([]dpgraph.VertexPair, error) {
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, err
	}
	pairs, err := serve.ParsePairs(data)
	if errors.Is(err, serve.ErrNoPairs) {
		return nil, fmt.Errorf("query needs s-t pairs on stdin (text lines \"s t\" or a JSON array)")
	}
	return pairs, err
}

// loadGraph reads the -graph file and insists on a weight vector (the
// private input every subcommand consumes).
func loadGraph(path string) (*dpgraph.Graph, []float64, error) {
	g, w, err := dpgraph.ReadGraphFile(path)
	if err != nil {
		return nil, nil, err
	}
	if w == nil {
		return nil, nil, fmt.Errorf("graph file %s carries no weights", path)
	}
	return g, w, nil
}

// rejectGlobalFlags errors when any global flag outside allowed was set
// on a subcommand that cannot honor it (serve, bench-serve), instead of
// silently ignoring the setting.
func rejectGlobalFlags(fs *flag.FlagSet, cmd string, allowed map[string]bool) error {
	var bad []string
	fs.Visit(func(f *flag.Flag) {
		if !allowed[f.Name] {
			bad = append(bad, "-"+f.Name)
		}
	})
	if len(bad) > 0 {
		return fmt.Errorf("%s does not use %s (privacy parameters travel in each release spec); see %s -h", cmd, strings.Join(bad, " "), cmd)
	}
	return nil
}

// unreachablePairResult is the -json shape of a pairwise result whose
// released value is ±Inf: the pairAnswer null+unreachable convention
// over the usual release metadata.
type unreachablePairResult struct {
	dpgraph.ReleaseInfo
	Source      int      `json:"source"`
	Target      int      `json:"target"`
	Value       *float64 `json:"value"`
	Unreachable bool     `json:"unreachable"`
}

// jsonSafeResult rewraps results whose released values may be ±Inf
// (distances on topology-disconnected pairs) so the -json envelope
// encodes with the same null+unreachable convention the query
// subcommand and the HTTP handlers use, instead of failing with
// encoding/json's "unsupported value".
func jsonSafeResult(res dpgraph.Result) any {
	switch r := res.(type) {
	case *dpgraph.DistanceResult:
		if !math.IsInf(r.Value, 0) {
			return res
		}
		return unreachablePairResult{ReleaseInfo: r.ReleaseInfo, Source: r.Source, Target: r.Target, Unreachable: true}
	case *dpgraph.QueryResult:
		if !math.IsInf(r.Value, 0) {
			return res
		}
		return unreachablePairResult{ReleaseInfo: r.ReleaseInfo, Source: r.Source, Target: r.Target, Unreachable: true}
	case *dpgraph.SSSPResult:
		finite := true
		for _, d := range r.Dist {
			if math.IsInf(d, 0) {
				finite = false
				break
			}
		}
		if finite {
			return res
		}
		dist := make([]*float64, len(r.Dist))
		var unreachable []int
		for i, d := range r.Dist {
			if dist[i] = serve.FiniteOrNil(d); dist[i] == nil {
				unreachable = append(unreachable, i)
			}
		}
		return struct {
			dpgraph.ReleaseInfo
			Source      int        `json:"source"`
			Dist        []*float64 `json:"dist"`
			Unreachable []int      `json:"unreachable"`
		}{r.ReleaseInfo, r.Source, dist, unreachable}
	}
	return res
}

// parseArgs maps positional arguments onto the declared parameter names.
func parseArgs(mech string, names []string, args []string) (dpgraph.Args, error) {
	var q dpgraph.Args
	if len(args) != len(names) {
		return q, fmt.Errorf("%s needs %d argument(s): %s", mech, len(names), strings.Join(names, " "))
	}
	for i, name := range names {
		v, err := strconv.Atoi(args[i])
		if err != nil {
			return q, fmt.Errorf("bad %s argument %q", name, args[i])
		}
		switch name {
		case "s":
			q.S = v
		case "t":
			q.T = v
		case "root":
			q.Root = v
		default:
			return q, fmt.Errorf("descriptor %s declares unknown argument %q", mech, name)
		}
	}
	return q, nil
}

// usage renders the flag help plus the mechanism registry, so the
// subcommand list can never drift from the library.
func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: dpgraph -graph FILE [flags] SUBCOMMAND [args]")
	fmt.Fprintln(os.Stderr, "       dpgraph -graph FILE [flags] query MECHANISM [args] < pairs")
	fmt.Fprintln(os.Stderr, "       dpgraph -graph FILE [flags] seal MECHANISM [-out FILE] [-key PEM] [args]")
	fmt.Fprintln(os.Stderr, "       dpgraph unseal [-in FILE] [-verify PEM] [-json] [-query < pairs]")
	fmt.Fprintln(os.Stderr, "       dpgraph -graph FILE serve [-addr HOST:PORT] [serve flags]")
	fmt.Fprintln(os.Stderr, "       dpgraph bench-serve [-release NAME] [bench flags]")
	fmt.Fprintln(os.Stderr, "       dpgraph route [-replicas URL,URL,...] [route flags]")
	fmt.Fprintln(os.Stderr, "       dpgraph fleet -graph FILE [-n N] [fleet flags]")
	fmt.Fprintln(os.Stderr, "       dpgraph keygen [-out KEY] [-pub PUB] | dpgraph version [-json]")
	fmt.Fprintln(os.Stderr, "\nflags:")
	fs.PrintDefaults()
	fmt.Fprintln(os.Stderr, "\nsubcommands (from the dpgraph mechanism registry):")
	for _, d := range dpgraph.Mechanisms() {
		// A mechanism with only an Oracle runner is still a subcommand
		// (through query mode); hiding it would make the listing lie.
		if d.Run == nil && d.Oracle == nil {
			continue
		}
		argHint := ""
		if len(d.Args) > 0 {
			argHint = " " + strings.Join(d.Args, " ")
		}
		extra := ""
		if d.NeedsMaxWeight {
			extra = " (requires -maxweight)"
		}
		if d.Run == nil {
			extra += " (query mode only)"
		}
		fmt.Fprintf(os.Stderr, "  %-12s%-8s %s%s\n", d.Name, argHint, d.Summary, extra)
		fmt.Fprintf(os.Stderr, "  %12s         %s; sensitivity: %s; guarantee: %s\n", "", d.Ref, d.Sensitivity, d.Guarantee)
	}
	fmt.Fprintf(os.Stderr, "\nquery (release once, answer many): materializes one release, then\n"+
		"answers every \"s t\" pair from stdin (text lines or JSON array) with\n"+
		"zero extra budget; -workers N answers the batch in parallel, and\n"+
		"-index MODE (auto, ch, alt, hl) serves synthetic-graph releases from\n"+
		"a precomputed contraction-hierarchy, landmark, or hub-label index.\n"+
		"Oracle-capable mechanisms: %s\n", strings.Join(dpgraph.OracleMechanisms(), " "))
	fmt.Fprintln(os.Stderr, "\nserve: long-running HTTP daemon over the same machinery — POST\n"+
		"/v1/releases materializes named releases, GET/POST distance\n"+
		"endpoints answer queries with zero extra budget; bench-serve is\n"+
		"its load generator. Each prints its own -h.")
	fmt.Fprintln(os.Stderr, "\nseal / unseal: write a materialized release as a signed snapshot\n"+
		"artifact and restore it elsewhere — bit-identical answers, the\n"+
		"origin receipt carried along, zero budget spent on restore. keygen\n"+
		"mints the ed25519 pair; version prints the build stamp artifacts\n"+
		"embed as their writer.")
}
