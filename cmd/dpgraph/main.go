// Command dpgraph answers differentially private queries over a weighted
// graph read from a file (text edge-list or JSON; see internal/graph/io.go
// for the formats). The topology is treated as public and the weights as
// private; each invocation spends the stated privacy budget once.
//
// Usage:
//
//	dpgraph -graph city.txt -eps 1 distance 3 17
//	dpgraph -graph city.txt -eps 1 path 3 17
//	dpgraph -graph city.txt -eps 1 [-delta 1e-6 -maxweight 16] apsd 3 17
//	dpgraph -graph tree.txt -eps 1 treedist 3 17
//	dpgraph -graph city.txt -eps 1 mst
//	dpgraph -graph city.txt -eps 1 matching
//	dpgraph -graph city.txt -eps 1 release
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpgraph:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "path to graph file (text edge-list or JSON)")
		eps       = flag.Float64("eps", 1, "privacy parameter epsilon")
		delta     = flag.Float64("delta", 0, "privacy parameter delta (apsd only)")
		gamma     = flag.Float64("gamma", 0.05, "failure probability for error bounds")
		scale     = flag.Float64("scale", 1, "l1 influence of one individual on the weights")
		maxWeight = flag.Float64("maxweight", 0, "weight cap M for bounded-weight apsd")
		seed      = flag.Int64("seed", 0, "noise seed (0: time-based)")
	)
	flag.Parse()
	if *graphPath == "" || flag.NArg() < 1 {
		flag.Usage()
		return fmt.Errorf("need -graph and a subcommand (distance|path|apsd|treedist|mst|matching|release)")
	}
	g, w, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	if w == nil {
		return fmt.Errorf("graph file %s carries no weights", *graphPath)
	}
	s := *seed
	if s == 0 {
		s = time.Now().UnixNano()
	}
	opts := core.Options{
		Epsilon: *eps,
		Delta:   *delta,
		Gamma:   *gamma,
		Scale:   *scale,
		Rand:    rand.New(rand.NewSource(s)),
	}

	cmd := flag.Arg(0)
	argPair := func() (int, int, error) {
		if flag.NArg() != 3 {
			return 0, 0, fmt.Errorf("%s needs two vertex arguments", cmd)
		}
		a, err1 := strconv.Atoi(flag.Arg(1))
		b, err2 := strconv.Atoi(flag.Arg(2))
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("bad vertex arguments %q %q", flag.Arg(1), flag.Arg(2))
		}
		return a, b, nil
	}

	switch cmd {
	case "distance":
		a, b, err := argPair()
		if err != nil {
			return err
		}
		d, err := core.PrivateDistance(g, w, a, b, opts)
		if err != nil {
			return err
		}
		fmt.Printf("private distance %d -> %d: %.4f  (noise scale %.4f, %s)\n", a, b, d, *scale / *eps, opts.Params())
	case "path":
		a, b, err := argPair()
		if err != nil {
			return err
		}
		pp, err := core.PrivateShortestPaths(g, w, opts)
		if err != nil {
			return err
		}
		path, err := pp.Path(a, b)
		if err != nil {
			return err
		}
		verts := g.PathVertices(a, path)
		fmt.Printf("private path %d -> %d (%d hops): %s\n", a, b, len(path), joinInts(verts))
		fmt.Printf("released-weight length: %.4f; error bound for k-hop optimum: %.4f per hop pair\n",
			graph.PathWeight(pp.Weights, path), pp.ErrorBound(1))
	case "apsd":
		a, b, err := argPair()
		if err != nil {
			return err
		}
		if *maxWeight > 0 {
			rel, err := core.BoundedWeightAPSD(g, w, *maxWeight, opts)
			if err != nil {
				return err
			}
			fmt.Printf("bounded-weight apsd %d -> %d: %.4f  (k=%d |Z|=%d, bound %.4f, %s)\n",
				a, b, rel.Query(a, b), rel.K, len(rel.Z), rel.ErrorBound(*gamma), rel.Params)
		} else {
			rel, err := core.APSDComposition(g, w, opts)
			if err != nil {
				return err
			}
			fmt.Printf("composition apsd %d -> %d: %.4f  (noise scale %.4f, bound %.4f, %s)\n",
				a, b, rel.Query(a, b), rel.NoiseScale, rel.ErrorBound, rel.Params)
		}
	case "treedist":
		a, b, err := argPair()
		if err != nil {
			return err
		}
		apsd, err := core.TreeAllPairs(g, w, opts)
		if err != nil {
			return err
		}
		fmt.Printf("tree apsd %d -> %d: %.4f  (per-pair bound %.4f, %s)\n",
			a, b, apsd.Query(a, b), apsd.PerPairErrorBound(*gamma), apsd.SSSP.Params)
	case "mst":
		rel, err := core.PrivateMST(g, w, opts)
		if err != nil {
			return err
		}
		fmt.Printf("private spanning tree (%d edges, released weight %.4f, bound %.4f, %s):\n%s\n",
			len(rel.Tree), rel.ReleasedWeight, rel.ErrorBound(g, *gamma), rel.Params, joinInts(rel.Tree))
	case "matching":
		rel, err := core.PrivateMatching(g, w, opts)
		if err != nil {
			return err
		}
		fmt.Printf("private perfect matching (%d edges, released weight %.4f, bound %.4f, %s):\n%s\n",
			len(rel.Matching), rel.ReleasedWeight, rel.ErrorBound(g, *gamma), rel.Params, joinInts(rel.Matching))
	case "release":
		rel, err := core.ReleaseGraph(g, w, opts)
		if err != nil {
			return err
		}
		out, err := graph.MarshalJSONGraph(g, rel.Weights)
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	return nil
}

func loadGraph(path string) (*graph.Graph, []float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var probe json.RawMessage
		if json.Unmarshal(data, &probe) == nil {
			return graph.UnmarshalJSONGraph(data)
		}
	}
	return graph.ReadText(strings.NewReader(string(data)))
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, " ")
}
