package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/dpgraph"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const pathGraph = "graph 4\nedge 0 1 2.5\nedge 1 2 1\nedge 2 3 1\n"

// capture runs the CLI with stdout redirected to a pipe file.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(f, args)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunDistanceText(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	out, err := capture(t, []string{"-graph", path, "-eps", "1", "-seed", "7", "distance", "0", "3"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"private distance 0 -> 3", "error bound", "privacy receipt"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	out, err := capture(t, []string{"-graph", path, "-eps", "2", "-seed", "7", "-json", "distance", "0", "3"})
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Bound  float64 `json:"bound"`
		Result struct {
			Mechanism string          `json:"mechanism"`
			Receipt   dpgraph.Receipt `json:"receipt"`
			Value     float64         `json:"value"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if got.Result.Mechanism != "distance" || got.Result.Receipt.Epsilon != 2 || got.Bound <= 0 {
		t.Errorf("json = %+v", got)
	}
}

func TestRunJSONPath(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	out, err := capture(t, []string{"-graph", path, "-seed", "7", "-json", "path", "0", "3"})
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Result struct {
			Vertices []int `json:"vertices"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(got.Result.Vertices) != 4 || got.Result.Vertices[0] != 0 || got.Result.Vertices[3] != 3 {
		t.Errorf("vertices = %v", got.Result.Vertices)
	}
}

func TestRunSubcommandsFromRegistry(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	for _, args := range [][]string{
		{"-graph", path, "-seed", "3", "treedist", "0", "3"},
		{"-graph", path, "-seed", "3", "treesssp", "0"},
		{"-graph", path, "-seed", "3", "hierarchy", "0", "3"},
		{"-graph", path, "-seed", "3", "sssp", "0"},
		{"-graph", path, "-seed", "3", "mst"},
		{"-graph", path, "-seed", "3", "mstcost"},
		{"-graph", path, "-seed", "3", "release"},
		{"-graph", path, "-seed", "3", "-maxweight", "4", "apsd", "0", "3"},
		{"-graph", path, "-seed", "3", "apsd", "0", "3"},
	} {
		if _, err := capture(t, args); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	cases := [][]string{
		{"-graph", path, "nope"},                                // unknown subcommand
		{"-graph", path, "distance", "0"},                       // missing arg
		{"-graph", path, "distance", "0", "x"},                  // bad arg
		{"-graph", path, "bounded", "0", "3"},                   // missing -maxweight
		{"distance", "0", "3"},                                  // missing -graph
		{"-graph", filepath.Join(t.TempDir(), "no.txt"), "mst"}, // missing file
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

func TestLoadGraphFormats(t *testing.T) {
	g, w, err := dpgraph.ReadGraphFile(writeFile(t, "g.txt", "graph 3\nedge 0 1 2.5\nedge 1 2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || w[0] != 2.5 {
		t.Fatalf("N=%d M=%d w=%v", g.N(), g.M(), w)
	}
	g, w, err = dpgraph.ReadGraphFile(writeFile(t, "g.json", `{"vertices":2,"edges":[[0,1]],"weights":[3]}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || w[0] != 3 {
		t.Fatal("JSON load failed")
	}
	if _, _, err := dpgraph.ReadGraphFile(writeFile(t, "bad.txt", "not a graph\n")); err == nil {
		t.Error("malformed file accepted")
	}
	if _, _, err := dpgraph.ReadGraphFile(writeFile(t, "bad.json", `{"vertices":2,"edges":[[0,9]]}`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
