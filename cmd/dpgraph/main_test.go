package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/dpgraph"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const pathGraph = "graph 4\nedge 0 1 2.5\nedge 1 2 1\nedge 2 3 1\n"

// capture runs the CLI with stdout redirected to a pipe file and an
// empty stdin.
func capture(t *testing.T, args []string) (string, error) {
	return captureWithStdin(t, "", args)
}

// captureWithStdin runs the CLI with the given stdin content.
func captureWithStdin(t *testing.T, stdin string, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(f, strings.NewReader(stdin), args)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunDistanceText(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	out, err := capture(t, []string{"-graph", path, "-eps", "1", "-seed", "7", "distance", "0", "3"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"private distance 0 -> 3", "error bound", "privacy receipt"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	out, err := capture(t, []string{"-graph", path, "-eps", "2", "-seed", "7", "-json", "distance", "0", "3"})
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Bound  float64 `json:"bound"`
		Result struct {
			Mechanism string          `json:"mechanism"`
			Receipt   dpgraph.Receipt `json:"receipt"`
			Value     float64         `json:"value"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if got.Result.Mechanism != "distance" || got.Result.Receipt.Epsilon != 2 || got.Bound <= 0 {
		t.Errorf("json = %+v", got)
	}
}

func TestRunJSONPath(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	out, err := capture(t, []string{"-graph", path, "-seed", "7", "-json", "path", "0", "3"})
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Result struct {
			Vertices []int `json:"vertices"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(got.Result.Vertices) != 4 || got.Result.Vertices[0] != 0 || got.Result.Vertices[3] != 3 {
		t.Errorf("vertices = %v", got.Result.Vertices)
	}
}

func TestRunSubcommandsFromRegistry(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	for _, args := range [][]string{
		{"-graph", path, "-seed", "3", "treedist", "0", "3"},
		{"-graph", path, "-seed", "3", "treesssp", "0"},
		{"-graph", path, "-seed", "3", "hierarchy", "0", "3"},
		{"-graph", path, "-seed", "3", "sssp", "0"},
		{"-graph", path, "-seed", "3", "mst"},
		{"-graph", path, "-seed", "3", "mstcost"},
		{"-graph", path, "-seed", "3", "release"},
		{"-graph", path, "-seed", "3", "-maxweight", "4", "apsd", "0", "3"},
		{"-graph", path, "-seed", "3", "apsd", "0", "3"},
	} {
		if _, err := capture(t, args); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestRunQueryText(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	out, err := captureWithStdin(t, "0 3\n1 2\n# comment\n2 2\n",
		[]string{"-graph", path, "-eps", "4", "-seed", "7", "query", "release"})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 6 {
		t.Fatalf("want 3 answers + 3 summary lines, got:\n%s", out)
	}
	for i, prefix := range []string{"0 3 ", "1 2 ", "2 2 "} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
	if !strings.HasPrefix(lines[2], "2 2 0.0000") {
		t.Errorf("s == t answer not zero: %q", lines[2])
	}
	for _, want := range []string{`3 queries answered from one "release" release`, "error bound", "privacy receipt"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunQueryJSON(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	for _, stdin := range []string{`[[0,3],[1,2]]`, `[{"s":0,"t":3},{"s":1,"t":2}]`} {
		out, err := captureWithStdin(t, stdin,
			[]string{"-graph", path, "-seed", "7", "-json", "query", "treedist"})
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Mechanism string          `json:"mechanism"`
			Bound     float64         `json:"bound"`
			Receipt   dpgraph.Receipt `json:"receipt"`
			Results   []struct {
				S     int     `json:"s"`
				T     int     `json:"t"`
				Value float64 `json:"value"`
			} `json:"results"`
		}
		if err := json.Unmarshal([]byte(out), &got); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, out)
		}
		if got.Mechanism != "treedist" || got.Bound <= 0 || len(got.Results) != 2 {
			t.Errorf("envelope = %+v", got)
		}
		if got.Results[0].S != 0 || got.Results[0].T != 3 {
			t.Errorf("first result = %+v", got.Results[0])
		}
	}
}

func TestRunQuerySubcommands(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	for _, args := range [][]string{
		{"-graph", path, "-seed", "3", "query", "release"},
		{"-graph", path, "-seed", "3", "query", "treesssp", "0"},
		{"-graph", path, "-seed", "3", "query", "treedist"},
		{"-graph", path, "-seed", "3", "query", "hierarchy"},
		{"-graph", path, "-seed", "3", "query", "apsd"},
		{"-graph", path, "-seed", "3", "-maxweight", "4", "query", "bounded"},
	} {
		if _, err := captureWithStdin(t, "0 3\n", args); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestRunQueryWorkers(t *testing.T) {
	// A seeded session answers a batch identically with 1, 3, or
	// GOMAXPROCS workers: queries are post-processing of one release, so
	// sharding must not change values or order.
	path := writeFile(t, "g.txt", pathGraph)
	var stdin strings.Builder
	for s := 0; s < 4; s++ {
		for u := 0; u < 4; u++ {
			fmt.Fprintf(&stdin, "%d %d\n", s, u)
		}
	}
	var want string
	for _, workers := range []string{"1", "3", "0"} {
		out, err := captureWithStdin(t, stdin.String(),
			[]string{"-graph", path, "-seed", "7", "-workers", workers, "query", "release"})
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		if want == "" {
			want = out
		} else if out != want {
			t.Errorf("workers=%s output differs:\n%s\nwant:\n%s", workers, out, want)
		}
	}
	// Errors (out-of-range pairs) must surface from worker shards too.
	if _, err := captureWithStdin(t, "0 1\n0 9\n0 1\n0 2\n",
		[]string{"-graph", path, "-seed", "7", "-workers", "4", "query", "release"}); err == nil {
		t.Error("out-of-range pair accepted on the sharded path")
	}
	// -workers is query-mode only, and negative counts are rejected.
	if _, err := capture(t, []string{"-graph", path, "-workers", "2", "mst"}); err == nil {
		t.Error("-workers accepted outside query mode")
	}
	if _, err := captureWithStdin(t, "0 1\n",
		[]string{"-graph", path, "-workers", "-2", "query", "release"}); err == nil {
		t.Error("negative -workers accepted")
	}
}

func TestRunQueryIndex(t *testing.T) {
	// A seeded session answers a batch identically however it is served:
	// unindexed, contraction hierarchy, landmark A*, or auto — with or
	// without worker sharding on top. (The release draws the same noise
	// either way; indexing is post-processing.)
	path := writeFile(t, "g.txt", pathGraph)
	var stdin strings.Builder
	for s := 0; s < 4; s++ {
		for u := 0; u < 4; u++ {
			fmt.Fprintf(&stdin, "%d %d\n", s, u)
		}
	}
	var want string
	for _, index := range []string{"off", "auto", "ch", "alt"} {
		out, err := captureWithStdin(t, stdin.String(),
			[]string{"-graph", path, "-seed", "7", "-index", index, "-workers", "2", "query", "release"})
		if err != nil {
			t.Fatalf("index=%s: %v", index, err)
		}
		if want == "" {
			want = out
		} else if out != want {
			t.Errorf("index=%s output differs:\n%s\nwant:\n%s", index, out, want)
		}
	}
	// -index is query-mode only, and unknown modes are rejected.
	if _, err := capture(t, []string{"-graph", path, "-index", "ch", "mst"}); err == nil {
		t.Error("-index accepted outside query mode")
	}
	if _, err := captureWithStdin(t, "0 1\n",
		[]string{"-graph", path, "-index", "bogus", "query", "release"}); err == nil {
		t.Error("unknown -index mode accepted")
	}
}

func TestRunQueryUnreachableJSON(t *testing.T) {
	// Two components: 0-1 and 2-3. A cross-component query must encode
	// as unreachable, not abort the whole envelope on +Inf.
	path := writeFile(t, "g.txt", "graph 4\nedge 0 1 1\nedge 2 3 1\n")
	out, err := captureWithStdin(t, "0 3\n0 1\n",
		[]string{"-graph", path, "-seed", "7", "-json", "query", "release"})
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Results []struct {
			Value       *float64 `json:"value"`
			Unreachable bool     `json:"unreachable"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(got.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(got.Results))
	}
	if !got.Results[0].Unreachable || got.Results[0].Value != nil {
		t.Errorf("disconnected pair = %+v, want unreachable with null value", got.Results[0])
	}
	if got.Results[1].Unreachable || got.Results[1].Value == nil {
		t.Errorf("connected pair = %+v, want a value", got.Results[1])
	}
}

// TestReadPairsTrailingContent is the regression table for the
// object-form decoder bug: json.Decoder stops after the first value, so
// `[{"s":1,"t":2}] trailing garbage` was silently accepted while the
// tuple form rejected it. Both forms must now reject trailing content.
func TestReadPairsTrailingContent(t *testing.T) {
	cases := []struct {
		stdin string
		ok    bool
	}{
		{`[[1,2]]`, true},
		{`[{"s":1,"t":2}]`, true},
		{"  [[1,2]]  \n", true},
		{"\n[{\"s\":1,\"t\":2}]\t\n ", true},
		// Trailing content: tuple form (already rejected) and object
		// form (the bug) must agree.
		{`[[1,2]] garbage`, false},
		{`[{"s":1,"t":2}] garbage`, false},
		{`[[1,2]][[3,4]]`, false},
		{`[{"s":1,"t":2}][{"s":3,"t":4}]`, false},
		{`[{"s":1,"t":2}] [[3,4]]`, false},
		{`[{"s":1,"t":2}],`, false},
	}
	for _, c := range cases {
		pairs, err := readPairs(strings.NewReader(c.stdin))
		if c.ok && (err != nil || len(pairs) != 1 || pairs[0].S != 1 || pairs[0].T != 2) {
			t.Errorf("readPairs(%q) = (%v, %v), want one pair (1,2)", c.stdin, pairs, err)
		}
		if !c.ok && err == nil {
			t.Errorf("readPairs(%q) accepted: %v", c.stdin, pairs)
		}
	}
}

// TestRunQueryLongCommentLine: text pairs input must accept lines past
// the 64 KiB default scanner limit, matching graph.ReadText's 16 MiB.
func TestRunQueryLongCommentLine(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	stdin := "# " + strings.Repeat("x", 128*1024) + "\n0 3\n"
	out, err := captureWithStdin(t, stdin, []string{"-graph", path, "-seed", "7", "query", "release"})
	if err != nil {
		t.Fatalf("long comment line rejected: %v", err)
	}
	if !strings.Contains(out, `1 queries answered`) {
		t.Errorf("output:\n%s", out)
	}
}

// TestRunJSONUnreachable: non-query -json output must render results
// carrying ±Inf (disconnected pairs) with the null+unreachable
// convention instead of failing with "unsupported value".
func TestRunJSONUnreachable(t *testing.T) {
	split := writeFile(t, "g.txt", "graph 4\nedge 0 1 1\nedge 2 3 1\n")

	// apsd on a disconnected pair: QueryResult carries +Inf.
	out, err := capture(t, []string{"-graph", split, "-seed", "7", "-json", "apsd", "0", "3"})
	if err != nil {
		t.Fatalf("apsd -json on disconnected pair: %v", err)
	}
	var pairGot struct {
		Result struct {
			Value       *float64 `json:"value"`
			Unreachable bool     `json:"unreachable"`
			Receipt     dpgraph.Receipt
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &pairGot); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if pairGot.Result.Value != nil || !pairGot.Result.Unreachable {
		t.Errorf("apsd result = %s", out)
	}

	// sssp: the released vector has +Inf entries for vertices 2 and 3.
	out, err = capture(t, []string{"-graph", split, "-seed", "7", "-json", "sssp", "0"})
	if err != nil {
		t.Fatalf("sssp -json on disconnected graph: %v", err)
	}
	var ssspGot struct {
		Result struct {
			Dist        []*float64 `json:"dist"`
			Unreachable []int      `json:"unreachable"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &ssspGot); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(ssspGot.Result.Dist) != 4 || ssspGot.Result.Dist[0] == nil || ssspGot.Result.Dist[3] != nil {
		t.Errorf("sssp dist = %s", out)
	}
	if len(ssspGot.Result.Unreachable) != 2 || ssspGot.Result.Unreachable[0] != 2 || ssspGot.Result.Unreachable[1] != 3 {
		t.Errorf("sssp unreachable = %v", ssspGot.Result.Unreachable)
	}

	// Connected graphs keep the plain shape (no unreachable key).
	path := writeFile(t, "conn.txt", pathGraph)
	out, err = capture(t, []string{"-graph", path, "-seed", "7", "-json", "apsd", "0", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "unreachable") {
		t.Errorf("connected result grew an unreachable marker:\n%s", out)
	}
}

func TestRunQueryEmptyPairsChargeNothing(t *testing.T) {
	// An empty workload — empty text or an empty JSON array — must be
	// refused before the release is materialized (no budget spent).
	path := writeFile(t, "g.txt", pathGraph)
	for _, stdin := range []string{"", "   \n", "[]"} {
		if _, err := captureWithStdin(t, stdin, []string{"-graph", path, "query", "release"}); err == nil {
			t.Errorf("stdin %q accepted; release would have been charged for zero queries", stdin)
		}
	}
}

func TestRunQueryErrors(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	cases := []struct {
		stdin string
		args  []string
	}{
		{"0 3\n", []string{"-graph", path, "query"}},                          // no mechanism
		{"0 3\n", []string{"-graph", path, "query", "mst"}},                   // no oracle form
		{"0 3\n", []string{"-graph", path, "query", "nope"}},                  // unknown mechanism
		{"", []string{"-graph", path, "query", "release"}},                    // no pairs
		{"0\n", []string{"-graph", path, "query", "release"}},                 // malformed line
		{"0 9\n", []string{"-graph", path, "query", "release"}},               // out of range
		{`[[0]]`, []string{"-graph", path, "query", "release"}},               // bad tuple
		{`[{"src":0,"dst":3}]`, []string{"-graph", path, "query", "release"}}, // wrong JSON keys
		{"0 3\n", []string{"-graph", path, "query", "bounded"}},               // missing -maxweight
		{"0 3\n", []string{"-graph", path, "query", "treesssp", "x"}},         // bad root
		// ReleaseSpec treats zero as "default", but explicit invalid
		// flags must still fail instead of silently running at eps=1.
		{"0 3\n", []string{"-graph", path, "-eps", "0", "query", "release"}},
		{"0 3\n", []string{"-graph", path, "-eps", "-1", "query", "release"}},
		{"0 3\n", []string{"-graph", path, "-gamma", "0", "query", "release"}},
		{"0 3\n", []string{"-graph", path, "-scale", "0", "query", "release"}},
	}
	for _, c := range cases {
		if _, err := captureWithStdin(t, c.stdin, c.args); err == nil {
			t.Errorf("%v with stdin %q accepted", c.args, c.stdin)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	cases := [][]string{
		{"-graph", path, "nope"},                                // unknown subcommand
		{"-graph", path, "distance", "0"},                       // missing arg
		{"-graph", path, "distance", "0", "x"},                  // bad arg
		{"-graph", path, "bounded", "0", "3"},                   // missing -maxweight
		{"distance", "0", "3"},                                  // missing -graph
		{"-graph", filepath.Join(t.TempDir(), "no.txt"), "mst"}, // missing file
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

func TestLoadGraphFormats(t *testing.T) {
	g, w, err := dpgraph.ReadGraphFile(writeFile(t, "g.txt", "graph 3\nedge 0 1 2.5\nedge 1 2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || w[0] != 2.5 {
		t.Fatalf("N=%d M=%d w=%v", g.N(), g.M(), w)
	}
	g, w, err = dpgraph.ReadGraphFile(writeFile(t, "g.json", `{"vertices":2,"edges":[[0,1]],"weights":[3]}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || w[0] != 3 {
		t.Fatal("JSON load failed")
	}
	if _, _, err := dpgraph.ReadGraphFile(writeFile(t, "bad.txt", "not a graph\n")); err == nil {
		t.Error("malformed file accepted")
	}
	if _, _, err := dpgraph.ReadGraphFile(writeFile(t, "bad.json", `{"vertices":2,"edges":[[0,9]]}`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
