package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadGraphText(t *testing.T) {
	path := writeFile(t, "g.txt", "graph 3\nedge 0 1 2.5\nedge 1 2 1\n")
	g, w, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || w[0] != 2.5 {
		t.Fatalf("N=%d M=%d w=%v", g.N(), g.M(), w)
	}
}

func TestLoadGraphJSON(t *testing.T) {
	path := writeFile(t, "g.json", `{"vertices":2,"edges":[[0,1]],"weights":[3]}`)
	g, w, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || w[0] != 3 {
		t.Fatal("JSON load failed")
	}
}

func TestLoadGraphMissingFile(t *testing.T) {
	if _, _, err := loadGraph(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadGraphMalformed(t *testing.T) {
	path := writeFile(t, "bad.txt", "not a graph\n")
	if _, _, err := loadGraph(path); err == nil {
		t.Error("malformed file accepted")
	}
	path = writeFile(t, "bad.json", `{"vertices":2,"edges":[[0,9]]}`)
	if _, _, err := loadGraph(path); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestJoinInts(t *testing.T) {
	if got := joinInts([]int{3, 1, 4}); got != "3 1 4" {
		t.Errorf("joinInts = %q", got)
	}
	if got := joinInts(nil); got != "" {
		t.Errorf("empty joinInts = %q", got)
	}
}
