package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/snapshot"
)

// routeListening is a test seam: when non-nil it receives the bound
// listen address once the coordinator is accepting connections.
var routeListening chan<- string

// runRoute starts the fleet coordinator: a daemon that proxies the
// query API across a pool of `dpgraph serve` replicas with health
// probing, retries, hedging, and snapshot fallback. It loads no graph.
func runRoute(out *os.File, args []string) error {
	fs := flag.NewFlagSet("dpgraph route", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8090", "listen address")
		replicas      = fs.String("replicas", "", "comma-separated replica base URLs (http://host:port); more may register over POST /v1/replicas")
		probeInterval = fs.Duration("probe-interval", cluster.DefaultProbeInterval, "period between /readyz health probes of every replica")
		probeTimeout  = fs.Duration("probe-timeout", 0, "timeout for one health probe (0: half the probe interval)")
		reqTimeout    = fs.Duration("timeout", cluster.DefaultRequestTimeout, "end-to-end deadline per proxied request, retries included; clients may shorten it with X-Request-Timeout")
		maxAttempts   = fs.Int("max-attempts", cluster.DefaultMaxAttempts, "attempts per request across replicas (first try included)")
		retryBudget   = fs.Float64("retry-budget", cluster.DefaultRetryBudget, "retries+hedges allowed as a fraction of live requests (anti-retry-storm bound)")
		hedge         = fs.Duration("hedge", 0, "delay before a point query races a second replica (0: auto from observed p99; negative: hedging off)")
		replication   = fs.Int("replication", 0, "replicas in each release's hash-selected working set (0: all replicas serve all releases)")
		snapDir       = fs.String("snapshot-dir", "", "unseal every *.dpsnap in this directory as a local fallback answering when all replicas for a release are out")
		snapVerify    = fs.String("snapshot-verify", "", "ed25519 public key (PEM); fallback snapshots must verify against it")
		chaosLatency  = fs.Duration("chaos-latency", 0, "FAULT INJECTION: add this latency to every proxied request")
		chaosErrRate  = fs.Float64("chaos-error-rate", 0, "FAULT INJECTION: fail this fraction of proxied requests with a synthetic transport error")
		chaosHang     = fs.Float64("chaos-hang", 0, "FAULT INJECTION: hang this fraction of proxied requests until their deadline")
		drainGrace    = fs.Duration("drain-grace", 500*time.Millisecond, "after SIGINT/SIGTERM, keep answering this long with /readyz already not-ready")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("route takes no positional arguments, got %q", fs.Args())
	}
	if *probeInterval <= 0 {
		return fmt.Errorf("-probe-interval must be > 0, got %v", *probeInterval)
	}
	if *maxAttempts < 1 {
		return fmt.Errorf("-max-attempts must be >= 1, got %d", *maxAttempts)
	}
	if *retryBudget <= 0 {
		return fmt.Errorf("-retry-budget must be > 0, got %v", *retryBudget)
	}
	if *replication < 0 {
		return fmt.Errorf("-replication must be >= 0, got %d", *replication)
	}
	if *chaosErrRate < 0 || *chaosErrRate > 1 {
		return fmt.Errorf("-chaos-error-rate must be in [0, 1], got %v", *chaosErrRate)
	}
	if *chaosHang < 0 || *chaosHang > 1 {
		return fmt.Errorf("-chaos-hang must be in [0, 1], got %v", *chaosHang)
	}
	if *drainGrace < 0 {
		return fmt.Errorf("-drain-grace must be >= 0, got %v", *drainGrace)
	}

	cfg := cluster.Config{
		ProbeInterval:     *probeInterval,
		ProbeTimeout:      *probeTimeout,
		RequestTimeout:    *reqTimeout,
		MaxAttempts:       *maxAttempts,
		RetryBudget:       *retryBudget,
		HedgeDelay:        *hedge,
		ReplicationFactor: *replication,
		SnapshotDir:       *snapDir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(out, "dpgraph: "+format+"\n", args...)
		},
	}
	if *replicas != "" {
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.Replicas = append(cfg.Replicas, u)
			}
		}
	}
	if *snapVerify != "" {
		key, err := snapshot.LoadPublicKey(*snapVerify)
		if err != nil {
			return fmt.Errorf("-snapshot-verify: %w", err)
		}
		cfg.VerifyKey = key
	}
	if *chaosLatency > 0 || *chaosErrRate > 0 || *chaosHang > 0 {
		cfg.Transport = &cluster.ChaosTransport{
			Latency:   *chaosLatency,
			ErrorRate: *chaosErrRate,
			HangRate:  *chaosHang,
		}
		fmt.Fprintf(out, "dpgraph: CHAOS transport active (latency=%v error-rate=%v hang=%v)\n",
			*chaosLatency, *chaosErrRate, *chaosHang)
	}

	coord, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	coord.Start()
	defer coord.Stop()
	fmt.Fprintf(out, "dpgraph: routing %d replica(s) on http://%s\n", len(cfg.Replicas), lis.Addr())
	if routeListening != nil {
		routeListening <- lis.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(out, "dpgraph: signal received, draining")
	coord.StartDrain()
	select {
	case <-time.After(*drainGrace):
	case err := <-errc:
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	coord.Stop()
	fmt.Fprintln(out, "dpgraph: shutdown complete")
	return nil
}
