package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunRouteFlagErrors(t *testing.T) {
	cases := [][]string{
		{"route", "extra"},                        // positional args
		{"route", "-probe-interval", "0s"},        // bad interval
		{"route", "-max-attempts", "0"},           // bad attempts
		{"route", "-retry-budget", "0"},           // bad budget
		{"route", "-replication", "-1"},           // bad replication
		{"route", "-chaos-error-rate", "1.5"},     // bad rate
		{"route", "-chaos-hang", "-0.1"},          // bad rate
		{"route", "-drain-grace", "-1s"},          // bad grace
		{"route", "-replicas", "ftp://bad"},       // bad replica URL
		{"route", "-replicas", "http://h:1/path"}, // path in replica URL
		{"-graph", "g.txt", "route"},              // global flags rejected
		{"route", "-snapshot-dir", "/does/not/exist"},
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// startDaemon boots one run() invocation in the background and waits
// for its listen-address seam to fire.
func startDaemon(t *testing.T, ready <-chan string, args []string) (addr string, done chan error) {
	t.Helper()
	outFile, err := os.CreateTemp(t.TempDir(), "daemonout")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { outFile.Close() })
	done = make(chan error, 1)
	go func() {
		done <- run(outFile, strings.NewReader(""), args)
	}()
	select {
	case addr = <-ready:
		return addr, done
	case err := <-done:
		t.Fatalf("%v exited before listening: %v", args, err)
	case <-time.After(10 * time.Second):
		t.Fatalf("%v never started listening", args)
	}
	return "", nil
}

// TestRouteCLIEndToEnd boots a real serve replica and a route
// coordinator in-process, registers the replica, answers a point query
// through the coordinator, and requires both daemons to drain cleanly
// on one SIGINT.
func TestRouteCLIEndToEnd(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	serveReady := make(chan string, 1)
	serveListening = serveReady
	defer func() { serveListening = nil }()
	serveAddr, serveDone := startDaemon(t, serveReady, []string{
		"-graph", path, "serve", "-addr", "127.0.0.1:0", "-allow-seeded", "-drain-grace", "0s"})

	resp, err := http.Post("http://"+serveAddr+"/v1/releases", "application/json",
		strings.NewReader(`{"name":"main","mechanism":"release","epsilon":2,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create release: status %d", resp.StatusCode)
	}

	routeReady := make(chan string, 1)
	routeListening = routeReady
	defer func() { routeListening = nil }()
	routeAddr, routeDone := startDaemon(t, routeReady, []string{
		"route", "-addr", "127.0.0.1:0", "-replicas", "http://" + serveAddr,
		"-probe-interval", "50ms", "-drain-grace", "0s"})
	base := "http://" + routeAddr

	// The coordinator proxies the query API transparently.
	resp, err = http.Get(base + "/v1/releases/main/distance?s=0&t=3")
	if err != nil {
		t.Fatal(err)
	}
	var point struct {
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&point); err != nil {
		t.Fatal(err)
	}
	servedBy := resp.Header.Get("X-Served-By")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || point.Value <= 0 {
		t.Fatalf("proxied point: status %d value %g", resp.StatusCode, point.Value)
	}
	if servedBy != "http://"+serveAddr {
		t.Errorf("X-Served-By = %q, want the replica", servedBy)
	}

	// Replica answer and coordinator answer agree bit for bit.
	resp, err = http.Get("http://" + serveAddr + "/v1/releases/main/distance?s=0&t=3")
	if err != nil {
		t.Fatal(err)
	}
	var direct struct {
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&direct); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if direct.Value != point.Value {
		t.Errorf("coordinator %g, replica %g", point.Value, direct.Value)
	}

	var pool struct {
		Replicas []struct {
			State string `json:"state"`
		} `json:"replicas"`
	}
	resp, err = http.Get(base + "/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&pool); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pool.Replicas) != 1 || pool.Replicas[0].State != "healthy" {
		t.Errorf("pool = %+v", pool)
	}

	// One SIGINT reaches both daemons' signal contexts.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{"serve": serveDone, "route": routeDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s exited with %v", name, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("%s did not shut down on SIGINT", name)
		}
	}
}

// TestServeCLIDrainGrace is the drain-sequence regression: after
// SIGINT the daemon must flip /readyz first and answer new queries
// with retryable 503s for the whole grace window — while /livez stays
// green — and only then close the listener.
func TestServeCLIDrainGrace(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	ready := make(chan string, 1)
	serveListening = ready
	defer func() { serveListening = nil }()
	addr, done := startDaemon(t, ready, []string{
		"-graph", path, "serve", "-addr", "127.0.0.1:0", "-allow-seeded", "-drain-grace", "2s"})
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/releases", "application/json",
		strings.NewReader(`{"name":"main","mechanism":"release","epsilon":2,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status := httpStatus(t, base+"/readyz"); status != http.StatusOK {
		t.Fatalf("pre-drain readyz: status %d", status)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	// The readiness flip precedes the listener close: poll until 503.
	flipped := false
	for i := 0; i < 100 && !flipped; i++ {
		flipped = httpStatus(t, base+"/readyz") == http.StatusServiceUnavailable
		if !flipped {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !flipped {
		t.Fatal("/readyz never flipped to 503 after SIGINT")
	}
	// During the grace window: alive, but shedding retryably.
	if status := httpStatus(t, base+"/livez"); status != http.StatusOK {
		t.Errorf("livez during drain: status %d", status)
	}
	qresp, err := http.Get(base + "/v1/releases/main/distance?s=0&t=3")
	if err != nil {
		t.Fatalf("query during grace window: %v (listener closed before the grace elapsed?)", err)
	}
	io.Copy(io.Discard, qresp.Body) //nolint:errcheck
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusServiceUnavailable || qresp.Header.Get("Retry-After") == "" {
		t.Errorf("draining query: status %d, Retry-After %q", qresp.StatusCode, qresp.Header.Get("Retry-After"))
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down after the grace window")
	}
}

// httpStatus GETs a URL and returns just the status (0 on dial error).
func httpStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode
}

// TestRunBenchServeErrorBudget: -max-error-rate turns a lossy run into
// a pass when the rate is within budget and a failure when not; the
// zero default keeps fail-on-any semantics.
func TestRunBenchServeErrorBudget(t *testing.T) {
	ts := benchTarget(t)

	// Clean target, invalid flag values bounce.
	for _, args := range [][]string{
		{"bench-serve", "-url", ts.URL, "-release", "main", "-max-error-rate", "1"},
		{"bench-serve", "-url", ts.URL, "-release", "main", "-max-error-rate", "-0.1"},
		{"bench-serve", "-url", ts.URL, "-release", "main", "-timeout", "-1s"},
		{"bench-serve", "-url", ts.URL, "-release", "main", "-stream", "-timeout", "1s"},
	} {
		if _, err := capture(t, args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}

	// A timeout far too tight for real queries fails every request —
	// within a 100% -max-error-rate... which is invalid; use 0.99: the
	// run passes while reporting the rate. With the default budget of
	// zero the same run errors out.
	lossy := []string{"bench-serve", "-url", ts.URL, "-release", "main",
		"-n", "20", "-c", "2", "-timeout", "1ns"}
	if _, err := capture(t, lossy); err == nil {
		t.Error("all-timeout run passed with a zero error budget")
	}
}

// TestBenchErrorBudget pins the budget arithmetic itself.
func TestBenchErrorBudget(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "budget")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	for _, tc := range []struct {
		failed, total int64
		budget        float64
		wantErr       bool
	}{
		{0, 100, 0, false},    // clean run always passes
		{1, 100, 0, true},     // zero budget keeps fail-on-any
		{1, 100, 0.05, false}, // 1% within a 5% budget
		{10, 100, 0.05, true}, // 10% exceeds it
		{5, 100, 0.05, false}, // exactly at the budget passes
		{6, 100, 0.05, true},  // just over fails
	} {
		err := benchErrorBudget(out, "requests", tc.failed, tc.total, tc.budget, "last")
		if (err != nil) != tc.wantErr {
			t.Errorf("benchErrorBudget(%d/%d, budget %g) err=%v, wantErr=%v",
				tc.failed, tc.total, tc.budget, err, tc.wantErr)
		}
	}
}
