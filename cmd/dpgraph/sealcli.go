package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"repro/dpgraph"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

// Sealed-snapshot subcommands: seal materializes a release and writes
// it as a signed artifact, unseal restores one (optionally answering
// pairs from it), keygen mints the ed25519 pair the two sides share,
// and version prints the build stamp that seal embeds as the writer.

// runSeal materializes the mechanism's release from the loaded graph —
// the only budget-charging step — and writes it as a sealed snapshot
// artifact to -out (stdout when omitted). Sealing is deterministic in
// the release: the artifact bytes are a pure function of the
// materialized release and its receipt.
func runSeal(out *os.File, g *dpgraph.Graph, w []float64, desc dpgraph.Descriptor, spec dpgraph.ReleaseSpec, args []string) error {
	fs := flag.NewFlagSet("dpgraph seal", flag.ContinueOnError)
	var (
		outPath = fs.String("out", "", "write the artifact to FILE (default: stdout)")
		keyPath = fs.String("key", "", "sign the artifact with this ed25519 private key (PEM)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := parseArgs(desc.Name, desc.OracleArgs, fs.Args())
	if err != nil {
		return err
	}
	spec.Root = q.Root

	var opts []dpgraph.SealOption
	if *keyPath != "" {
		key, err := snapshot.LoadPrivateKey(*keyPath)
		if err != nil {
			return fmt.Errorf("-key: %w", err)
		}
		opts = append(opts, dpgraph.WithSigningKey(key))
	}

	oracle, res, err := spec.Materialize(g, dpgraph.PrivateWeights(w))
	if err != nil {
		return err
	}
	if !dpgraph.Sealable(oracle) {
		return fmt.Errorf("mechanism %q releases a lookup-backed oracle: %w", desc.Name, dpgraph.ErrNotSealable)
	}

	// The artifact may be going to stdout; route the human-facing
	// report around it in that case.
	dest, report := io.Writer(out), io.Writer(out)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dest = f
	} else {
		report = os.Stderr
	}
	if err := dpgraph.Seal(dest, oracle, res, opts...); err != nil {
		return err
	}
	if f, ok := dest.(*os.File); ok && f != out {
		if err := f.Close(); err != nil {
			return err
		}
		if st, err := os.Stat(*outPath); err == nil {
			fmt.Fprintf(report, "dpgraph: sealed %d bytes to %s\n", st.Size(), *outPath)
		}
	}
	signedNote := "unsigned"
	if *keyPath != "" {
		signedNote = "signed"
	}
	fmt.Fprintf(report, "dpgraph: %s %q release sealed (%d vertices, %d edges, index %s)\n",
		signedNote, spec.Mechanism, g.N(), g.M(), orNone(spec.Index))
	fmt.Fprintf(report, "privacy receipt: %s\n", res.Info().Receipt)
	return nil
}

// runUnseal restores a sealed artifact (from -in, or stdin) and prints
// its metadata; with -query it additionally answers s-t pairs from
// stdin against the restored oracle — zero privacy budget either way,
// because a snapshot is already-released public output.
func runUnseal(out *os.File, in io.Reader, args []string) error {
	fs := flag.NewFlagSet("dpgraph unseal", flag.ContinueOnError)
	var (
		inPath     = fs.String("in", "", "read the artifact from FILE (default: stdin)")
		verifyPath = fs.String("verify", "", "require a signature verifying against this ed25519 public key (PEM)")
		jsonOut    = fs.Bool("json", false, "emit machine-readable JSON")
		query      = fs.Bool("query", false, "answer s-t pairs from stdin against the restored oracle (requires -in)")
		gamma      = fs.Float64("gamma", 0.05, "failure probability for the error bound")
		workers    = fs.Int("workers", 1, "parallel workers answering -query pairs (0: GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unseal takes no positional arguments, got %q", fs.Args())
	}
	if !(*gamma > 0 && *gamma < 1) {
		return fmt.Errorf("gamma must be in (0, 1), got %g", *gamma)
	}
	if *query && *inPath == "" {
		return fmt.Errorf("-query reads pairs from stdin, so the artifact needs -in FILE")
	}

	var opts []dpgraph.UnsealOption
	if *verifyPath != "" {
		key, err := snapshot.LoadPublicKey(*verifyPath)
		if err != nil {
			return fmt.Errorf("-verify: %w", err)
		}
		opts = append(opts, dpgraph.WithVerifyKey(key))
	}

	src := in
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	sealed, err := dpgraph.Unseal(src, opts...)
	if err != nil {
		return err
	}

	if *query {
		pairs, err := readPairs(in)
		if err != nil {
			return err
		}
		if len(pairs) == 0 {
			return fmt.Errorf("-query needs at least one s-t pair on stdin")
		}
		oracle := sealed.Oracle()
		values, err := answerPairs(oracle, pairs, *workers)
		if err != nil {
			return err
		}
		if *jsonOut {
			answers := make([]serve.PairAnswer, len(pairs))
			for i, p := range pairs {
				answers[i] = serve.PairAnswer{S: p.S, T: p.T, Value: values[i]}
			}
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(queryJSONOutput{
				Mechanism: sealed.Mechanism,
				Bound:     oracle.Bound(*gamma),
				Gamma:     *gamma,
				Receipt:   sealed.Receipt,
				Results:   answers,
			})
		}
		for i, p := range pairs {
			fmt.Fprintf(out, "%d %d %.4f\n", p.S, p.T, values[i])
		}
		fmt.Fprintf(out, "# %d queries answered from an unsealed %q release (zero budget)\n", len(pairs), sealed.Mechanism)
		fmt.Fprintf(out, "# error bound at gamma=%g: %.4f\n", *gamma, oracle.Bound(*gamma))
		fmt.Fprintf(out, "# privacy receipt: %s\n", sealed.Receipt)
		return nil
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Mechanism string          `json:"mechanism"`
			Epsilon   float64         `json:"epsilon"`
			Delta     float64         `json:"delta"`
			N         int             `json:"n"`
			M         int             `json:"m"`
			Index     string          `json:"index,omitempty"`
			Writer    string          `json:"writer"`
			Signed    bool            `json:"signed"`
			Verified  bool            `json:"verified"`
			Bound     float64         `json:"bound"`
			Gamma     float64         `json:"gamma"`
			Receipt   dpgraph.Receipt `json:"receipt"`
		}{sealed.Mechanism, sealed.Epsilon, sealed.Delta, sealed.Vertices(), sealed.Edges(),
			sealed.IndexKind(), sealed.WriterVersion(), sealed.Signed(), sealed.Verified(),
			sealed.Oracle().Bound(*gamma), *gamma, sealed.Receipt})
	}
	fmt.Fprintln(out, sealed.Summary())
	fmt.Fprintf(out, "writer: %s\n", sealed.WriterVersion())
	fmt.Fprintf(out, "signed: %v, verified: %v\n", sealed.Signed(), sealed.Verified())
	fmt.Fprintf(out, "error bound at gamma=%g: %.4f\n", *gamma, sealed.Oracle().Bound(*gamma))
	fmt.Fprintf(out, "privacy receipt: %s\n", sealed.Receipt)
	return nil
}

// runKeygen mints an ed25519 key pair for snapshot signing: the PEM
// private key for the sealing side (dpgraph seal -key, serve
// -snapshot-key) and the PEM public key for the verifying side
// (dpgraph unseal -verify, serve -snapshot-verify).
func runKeygen(out *os.File, args []string) error {
	fs := flag.NewFlagSet("dpgraph keygen", flag.ContinueOnError)
	var (
		keyPath = fs.String("out", "dpsnap.key", "private key output file (PEM, created 0600)")
		pubPath = fs.String("pub", "dpsnap.pub", "public key output file (PEM)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("keygen takes no positional arguments, got %q", fs.Args())
	}
	pub, priv, err := snapshot.GenerateKey()
	if err != nil {
		return err
	}
	privPEM, err := snapshot.MarshalPrivateKeyPEM(priv)
	if err != nil {
		return err
	}
	pubPEM, err := snapshot.MarshalPublicKeyPEM(pub)
	if err != nil {
		return err
	}
	// Refuse to clobber an existing key: losing a signing key silently
	// would strand every replica configured to verify against it.
	f, err := os.OpenFile(*keyPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return fmt.Errorf("writing private key: %w", err)
	}
	if _, err := f.Write(privPEM); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.WriteFile(*pubPath, pubPEM, 0o644); err != nil {
		return fmt.Errorf("writing public key: %w", err)
	}
	fmt.Fprintf(out, "dpgraph: wrote ed25519 private key to %s and public key to %s\n", *keyPath, *pubPath)
	return nil
}

// runVersion prints the build identity: the module version plus VCS
// revision when the binary was built from a checkout. The same string
// is embedded in sealed artifacts as the writer, so operators can map
// a snapshot back to the build that produced it.
func runVersion(out *os.File, args []string) error {
	fs := flag.NewFlagSet("dpgraph version", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("version takes no positional arguments, got %q", fs.Args())
	}
	var (
		goVersion = "unknown"
		module    = "unknown"
		modVer    = ""
		revision  = ""
		dirty     = false
	)
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		module = bi.Main.Path
		modVer = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Module    string `json:"module"`
			Version   string `json:"version,omitempty"`
			GoVersion string `json:"go_version"`
			Revision  string `json:"revision,omitempty"`
			Dirty     bool   `json:"dirty,omitempty"`
			Writer    string `json:"writer"`
		}{module, modVer, goVersion, revision, dirty, snapshot.WriterVersion()})
	}
	fmt.Fprintf(out, "dpgraph %s %s (%s)\n", module, orNone(modVer), goVersion)
	if revision != "" {
		mark := ""
		if dirty {
			mark = " (modified)"
		}
		fmt.Fprintf(out, "revision: %s%s\n", revision, mark)
	}
	fmt.Fprintf(out, "snapshot writer id: %s\n", snapshot.WriterVersion())
	return nil
}

// orNone renders an empty selector value as "none" for human output.
func orNone(s string) string {
	if s == "" || s == "off" {
		return "none"
	}
	return s
}
