package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// gridGraphFile writes a small weighted grid in the text format the
// -graph flag reads.
func gridGraphFile(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	// 3x3 grid: vertices r*3+c, unit weights.
	b.WriteString("graph 9\n")
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			v := r*3 + c
			if c < 2 {
				b.WriteString("edge " + itoa(v) + " " + itoa(v+1) + " 1\n")
			}
			if r < 2 {
				b.WriteString("edge " + itoa(v) + " " + itoa(v+3) + " 1\n")
			}
		}
	}
	return writeFile(t, "grid.txt", b.String())
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

// TestRunSealUnsealRoundTrip seals a seeded release to a file, then
// unseals it: the info output must describe the release, and -query
// answers must match what the query subcommand says about the same
// seeded release — the snapshot changes the transport, not the bits.
func TestRunSealUnsealRoundTrip(t *testing.T) {
	graph := gridGraphFile(t)
	art := filepath.Join(t.TempDir(), "rel.dpsnap")
	out, err := capture(t, []string{"-graph", graph, "-eps", "1", "-seed", "7", "-index", "ch",
		"seal", "release", "-out", art})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sealed", "privacy receipt"} {
		if !strings.Contains(out, want) {
			t.Errorf("seal output missing %q:\n%s", want, out)
		}
	}

	info, err := capture(t, []string{"unseal", "-in", art})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"9 vertices, 12 edges", "index ch", "signed: false", "privacy receipt"} {
		if !strings.Contains(info, want) {
			t.Errorf("unseal info missing %q:\n%s", want, info)
		}
	}

	pairs := "0 8\n3 5\n"
	fromSnap, err := captureWithStdin(t, pairs, []string{"unseal", "-in", art, "-query"})
	if err != nil {
		t.Fatal(err)
	}
	fromQuery, err := captureWithStdin(t, pairs, []string{"-graph", graph, "-eps", "1", "-seed", "7", "-index", "ch",
		"query", "release"})
	if err != nil {
		t.Fatal(err)
	}
	// The first len(pairs) lines are the answers; they must agree to
	// the last printed digit.
	snapLines, queryLines := strings.Split(fromSnap, "\n"), strings.Split(fromQuery, "\n")
	for i := 0; i < 2; i++ {
		if snapLines[i] != queryLines[i] {
			t.Errorf("pair %d: unseal -query says %q, query says %q", i, snapLines[i], queryLines[i])
		}
	}

	// JSON info parses and reports the artifact shape.
	jsonInfo, err := capture(t, []string{"unseal", "-in", art, "-json"})
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Mechanism string  `json:"mechanism"`
		N         int     `json:"n"`
		M         int     `json:"m"`
		Index     string  `json:"index"`
		Bound     float64 `json:"bound"`
	}
	if err := json.Unmarshal([]byte(jsonInfo), &got); err != nil {
		t.Fatalf("bad unseal -json: %v\n%s", err, jsonInfo)
	}
	if got.Mechanism != "release" || got.N != 9 || got.M != 12 || got.Index != "ch" || got.Bound <= 0 {
		t.Errorf("unseal -json = %+v", got)
	}
}

// TestRunKeygenSealSigned mints a key pair, seals with the private
// key, and verifies with the public one; verification against a
// foreign key must fail, as must tampered bytes.
func TestRunKeygenSealSigned(t *testing.T) {
	graph := gridGraphFile(t)
	dir := t.TempDir()
	key, pub := filepath.Join(dir, "snap.key"), filepath.Join(dir, "snap.pub")
	if _, err := capture(t, []string{"keygen", "-out", key, "-pub", pub}); err != nil {
		t.Fatal(err)
	}
	// keygen refuses to clobber the private key.
	if _, err := capture(t, []string{"keygen", "-out", key, "-pub", pub}); err == nil {
		t.Fatal("keygen overwrote an existing private key")
	}

	art := filepath.Join(dir, "rel.dpsnap")
	if _, err := capture(t, []string{"-graph", graph, "-eps", "1", "-seed", "3",
		"seal", "release", "-out", art, "-key", key}); err != nil {
		t.Fatal(err)
	}
	info, err := capture(t, []string{"unseal", "-in", art, "-verify", pub})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "signed: true, verified: true") {
		t.Errorf("verified unseal output:\n%s", info)
	}

	// A different key must not verify.
	otherKey, otherPub := filepath.Join(dir, "other.key"), filepath.Join(dir, "other.pub")
	if _, err := capture(t, []string{"keygen", "-out", otherKey, "-pub", otherPub}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, []string{"unseal", "-in", art, "-verify", otherPub}); err == nil {
		t.Fatal("unseal verified against the wrong key")
	}

	// Tampered artifact bytes must not unseal.
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	bad := filepath.Join(dir, "bad.dpsnap")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, []string{"unseal", "-in", bad}); err == nil {
		t.Fatal("unseal accepted tampered bytes")
	}
}

// TestRunSealSameAnswers: two independent seeded seals are separate
// releases (fresh receipts), but with the same seed they release the
// same weights, so their restored oracles agree bit for bit.
func TestRunSealSameAnswers(t *testing.T) {
	graph := gridGraphFile(t)
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.dpsnap"), filepath.Join(dir, "b.dpsnap")
	for _, out := range []string{a, b} {
		if _, err := capture(t, []string{"-graph", graph, "-eps", "1", "-seed", "5", "-index", "alt",
			"seal", "release", "-out", out}); err != nil {
			t.Fatal(err)
		}
	}
	pairs := "0 8\n2 6\n4 4\n"
	ansA, err := captureWithStdin(t, pairs, []string{"unseal", "-in", a, "-query"})
	if err != nil {
		t.Fatal(err)
	}
	ansB, err := captureWithStdin(t, pairs, []string{"unseal", "-in", b, "-query"})
	if err != nil {
		t.Fatal(err)
	}
	la, lb := strings.Split(ansA, "\n"), strings.Split(ansB, "\n")
	for i := 0; i < 3; i++ {
		if la[i] != lb[i] {
			t.Errorf("pair %d: %q vs %q", i, la[i], lb[i])
		}
	}
}

func TestRunSealUnsealErrors(t *testing.T) {
	graph := gridGraphFile(t)
	art := filepath.Join(t.TempDir(), "rel.dpsnap")
	if _, err := capture(t, []string{"-graph", graph, "-eps", "1", "-seed", "7", "seal", "release", "-out", art}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-graph", graph, "seal"},                             // missing mechanism
		{"-graph", graph, "seal", "mst"},                      // no oracle
		{"-graph", graph, "-maxweight", "4", "seal", "apsd"},  // oracle, but not sealable
		{"-graph", graph, "-workers", "4", "seal", "release"}, // workers is query-only
		{"unseal", "-in", art, "extra"},                       // positional args
		{"unseal", "-query"},                                  // -query needs -in
		{"unseal", "-in", art, "-gamma", "2"},                 // bad gamma
		{"unseal", "-in", filepath.Join(t.TempDir(), "missing.dpsnap")},
		{"-graph", graph, "unseal", "-in", art}, // global flags rejected
	}
	for _, args := range cases {
		if _, err := captureWithStdin(t, "0 1\n", args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

func TestRunVersion(t *testing.T) {
	out, err := capture(t, []string{"version"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "snapshot writer id:") {
		t.Errorf("version output:\n%s", out)
	}
	jsonOut, err := capture(t, []string{"version", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Module    string `json:"module"`
		GoVersion string `json:"go_version"`
		Writer    string `json:"writer"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &got); err != nil {
		t.Fatalf("bad version -json: %v\n%s", err, jsonOut)
	}
	if got.GoVersion == "" || got.Writer == "" {
		t.Errorf("version -json = %+v", got)
	}
	if _, err := capture(t, []string{"version", "extra"}); err == nil {
		t.Error("version accepted positional args")
	}
}
