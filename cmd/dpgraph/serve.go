package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/dpgraph"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

// serveListening is a test seam: when non-nil it receives the bound
// listen address once the daemon is accepting connections (the tests
// listen on port 0).
var serveListening chan<- string

// runServe starts the HTTP distance-serving daemon over the loaded
// graph and stays up until SIGINT/SIGTERM, then drains in-flight
// requests before returning (graceful shutdown).
func runServe(out *os.File, g *dpgraph.Graph, w []float64, args []string) error {
	fs := flag.NewFlagSet("dpgraph serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		maxBody     = fs.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size limit in bytes")
		maxInflight = fs.Int("max-inflight", 256, "default per-release cap on concurrent in-flight requests (0: unlimited; specs may override with max_inflight)")
		maxReleases = fs.Int("max-releases", serve.DefaultMaxReleases, "cap on registered releases (bounds memory and cumulative privacy loss)")
		allowSeeded = fs.Bool("allow-seeded", false, "accept specs with a deterministic seed (NO privacy; tests and demos only)")
		snapDir     = fs.String("snapshot-dir", "", "restore every *.dpsnap sealed release in this directory at boot")
		snapKey     = fs.String("snapshot-key", "", "ed25519 private key (PEM) used to sign exported snapshots")
		snapVerify  = fs.String("snapshot-verify", "", "ed25519 public key (PEM); imported and restored snapshots must verify against it")
		coWindow    = fs.Duration("coalesce-window", 0, "collect concurrent point queries for up to this long and answer them through one shared sweep (0: off)")
		coMax       = fs.Int("coalesce-max", 0, "flush a coalesced batch once this many pairs wait (0: default)")
		drainGrace  = fs.Duration("drain-grace", 500*time.Millisecond, "after SIGINT/SIGTERM, keep the listener open this long answering 503s (readyz already not-ready) so health-probed load balancers stop sending before connections close")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve takes no positional arguments, got %q", fs.Args())
	}
	if *maxInflight < 0 {
		return fmt.Errorf("-max-inflight must be >= 0, got %d", *maxInflight)
	}
	if *maxReleases < 1 {
		return fmt.Errorf("-max-releases must be >= 1, got %d", *maxReleases)
	}
	if *coWindow < 0 {
		return fmt.Errorf("-coalesce-window must be >= 0, got %v", *coWindow)
	}
	if *coMax < 0 {
		return fmt.Errorf("-coalesce-max must be >= 0, got %d", *coMax)
	}
	if *drainGrace < 0 {
		return fmt.Errorf("-drain-grace must be >= 0, got %v", *drainGrace)
	}

	cfg := serve.Config{
		MaxBodyBytes:       *maxBody,
		MaxInflight:        *maxInflight,
		MaxReleases:        *maxReleases,
		AllowSeeded:        *allowSeeded,
		CoalesceWindow:     *coWindow,
		CoalesceMaxPending: *coMax,
	}
	if *snapKey != "" {
		key, err := snapshot.LoadPrivateKey(*snapKey)
		if err != nil {
			return fmt.Errorf("-snapshot-key: %w", err)
		}
		cfg.SigningKey = key
	}
	if *snapVerify != "" {
		key, err := snapshot.LoadPublicKey(*snapVerify)
		if err != nil {
			return fmt.Errorf("-snapshot-verify: %w", err)
		}
		cfg.VerifyKey = key
	}

	srv := serve.New(g, w, cfg)
	if *snapDir != "" {
		n, err := srv.RestoreDir(*snapDir)
		if err != nil {
			return fmt.Errorf("restoring snapshots from %s: %w", *snapDir, err)
		}
		fmt.Fprintf(out, "dpgraph: restored %d sealed release(s) from %s\n", n, *snapDir)
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// Bound how long a client may dribble headers or a body; without
		// these, slow-trickled requests pin connections forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Register the signal handler before announcing readiness so an
	// immediate SIGINT is never lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dpgraph: serving %d vertices / %d edges on http://%s\n", g.N(), g.M(), lis.Addr())
	if serveListening != nil {
		serveListening <- lis.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGINT kills hard
	fmt.Fprintln(out, "dpgraph: signal received, draining in-flight requests")
	// Drain sequence: flip /readyz (and start refusing new work with
	// retryable 503s) first, hold the listener open for the grace period
	// so probing load balancers observe the flip and stop sending, then
	// flush coalesced batches and close the listener.
	srv.StartDrain()
	select {
	case <-time.After(*drainGrace):
	case err := <-errc:
		return err
	}
	srv.Drain() // flush coalesced batches so no waiter outlives the drain window
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		hs.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "dpgraph: shutdown complete")
	return nil
}
