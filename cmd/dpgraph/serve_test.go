package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/dpgraph"
	"repro/internal/serve"
)

// TestServeCLIEndToEnd drives the serve subcommand over real HTTP:
// start the daemon, materialize a release, answer a point and a batch
// query, then SIGINT it and require a graceful exit.
func TestServeCLIEndToEnd(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	ready := make(chan string, 1)
	serveListening = ready
	defer func() { serveListening = nil }()

	outFile, err := os.CreateTemp(t.TempDir(), "serveout")
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	done := make(chan error, 1)
	go func() {
		done <- run(outFile, strings.NewReader(""), []string{"-graph", path, "serve", "-addr", "127.0.0.1:0", "-allow-seeded"})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never started listening")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/releases", "application/json",
		strings.NewReader(`{"name":"main","mechanism":"release","epsilon":2,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create release: status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/releases/main/distance?s=0&t=3")
	if err != nil {
		t.Fatal(err)
	}
	var point struct {
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&point); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if point.Value <= 0 {
		t.Errorf("point value = %g", point.Value)
	}

	resp, err = http.Post(base+"/v1/releases/main/distances", "application/json",
		strings.NewReader(`[[0,3],[1,2],[0,0]]`))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Count   int `json:"count"`
		Results []struct {
			Value float64 `json:"value"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if batch.Count != 3 || len(batch.Results) != 3 || batch.Results[0].Value != point.Value {
		t.Errorf("batch = %+v, point value %g", batch, point.Value)
	}

	// Graceful shutdown on SIGINT.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down on SIGINT")
	}
	data, err := os.ReadFile(outFile.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serving 4 vertices", "shutdown complete"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("serve output missing %q:\n%s", want, data)
		}
	}
}

// benchTarget spins an in-process serving daemon with one ready
// release for the load-generator tests.
func benchTarget(t *testing.T) *httptest.Server {
	t.Helper()
	g := dpgraph.Grid(4)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	s := serve.New(g, w, serve.Config{AllowSeeded: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v1/releases", "application/json",
		strings.NewReader(`{"name":"main","mechanism":"release","seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create release: status %d", resp.StatusCode)
	}
	return ts
}

func TestRunBenchServe(t *testing.T) {
	ts := benchTarget(t)
	for _, batch := range []string{"1", "8"} {
		out, err := capture(t, []string{"bench-serve", "-url", ts.URL, "-release", "main",
			"-n", "40", "-c", "4", "-batch", batch})
		if err != nil {
			t.Fatalf("batch=%s: %v", batch, err)
		}
		for _, want := range []string{"40 ok / 0 failed", "requests/s", "pairs/s", "p99"} {
			if !strings.Contains(out, want) {
				t.Errorf("batch=%s output missing %q:\n%s", batch, want, out)
			}
		}
	}
}

// TestRunBenchServeFanOut: with no -release the generator spreads its
// load across every ready release the daemon lists.
func TestRunBenchServeFanOut(t *testing.T) {
	ts := benchTarget(t)
	resp, err := http.Post(ts.URL+"/v1/releases", "application/json",
		strings.NewReader(`{"name":"second","mechanism":"release","seed":9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create second release: status %d", resp.StatusCode)
	}
	out, err := capture(t, []string{"bench-serve", "-url", ts.URL, "-n", "40", "-c", "4"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"40 ok / 0 failed", "main", "second"} {
		if !strings.Contains(out, want) {
			t.Errorf("fan-out output missing %q:\n%s", want, out)
		}
	}
}

// TestRunBenchServeStream pipelines point queries over the NDJSON
// stream endpoint, random-pair and fixed-source shapes both.
func TestRunBenchServeStream(t *testing.T) {
	ts := benchTarget(t)
	for _, extra := range [][]string{nil, {"-source", "0"}} {
		args := append([]string{"bench-serve", "-url", ts.URL, "-release", "main",
			"-n", "40", "-c", "3", "-stream"}, extra...)
		out, err := capture(t, args)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		for _, want := range []string{"40 ok / 0 failed stream queries", "pairs/s pipelined", "connections:"} {
			if !strings.Contains(out, want) {
				t.Errorf("%v output missing %q:\n%s", args, want, out)
			}
		}
	}
}

// TestRunBenchServeStreamLong pours far more queries down one stream
// than fit in the transport buffers, so the client is still writing its
// pipe-fed chunked body while answers flow back. Without the handler's
// EnableFullDuplex call the HTTP/1 server drains the unread body at the
// first response flush and silently truncates the stream.
func TestRunBenchServeStreamLong(t *testing.T) {
	ts := benchTarget(t)
	out, err := capture(t, []string{"bench-serve", "-url", ts.URL, "-release", "main",
		"-n", "30000", "-c", "2", "-stream"})
	if err != nil {
		t.Fatalf("long stream: %v", err)
	}
	if !strings.Contains(out, "30000 ok / 0 failed stream queries") {
		t.Errorf("long stream truncated:\n%s", out)
	}
}

// TestRunBenchServeFixedSource drives the coalescer-shaped load: every
// request queries a distinct target from one fixed source.
func TestRunBenchServeFixedSource(t *testing.T) {
	ts := benchTarget(t)
	for _, batch := range []string{"1", "4"} {
		out, err := capture(t, []string{"bench-serve", "-url", ts.URL, "-release", "main",
			"-n", "40", "-c", "4", "-batch", batch, "-source", "0"})
		if err != nil {
			t.Fatalf("batch=%s: %v", batch, err)
		}
		for _, want := range []string{"40 ok / 0 failed", "connections:"} {
			if !strings.Contains(out, want) {
				t.Errorf("batch=%s output missing %q:\n%s", batch, want, out)
			}
		}
	}
}

func TestRunBenchServeErrors(t *testing.T) {
	ts := benchTarget(t)
	cases := [][]string{
		{"bench-serve", "-release", "nope", "-url", ts.URL},                           // unknown release
		{"bench-serve", "-release", "main", "-url", ts.URL, "-n", "0"},                // bad counts
		{"bench-serve", "-release", "main", "-url", "http://127.0.0.1:1", "-n", "4"},  // unreachable server
		{"-graph", "g.txt", "bench-serve", "-release", "main"},                        // global flags rejected
		{"bench-serve", "-release", "main", "-url", ts.URL, "extra"},                  // positional args
		{"bench-serve", "-release", "main", "-url", ts.URL, "-stream", "-batch", "8"}, // stream is point-only
		{"bench-serve", "-release", "main", "-url", ts.URL, "-source", "99"},          // source out of range
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

func TestRunServeFlagErrors(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	cases := [][]string{
		{"serve"},                               // missing -graph
		{"-graph", path, "-eps", "2", "serve"},  // session flags are per-spec
		{"-graph", path, "-seed", "3", "serve"}, // ditto
		{"-graph", path, "serve", "extra"},      // positional args
		{"-graph", path, "serve", "-max-inflight", "-1"},
		{"-graph", path, "serve", "-max-releases", "0"},
		{"-graph", path, "serve", "-addr", "not an address"},
		{"-graph", path, "serve", "-coalesce-window", "-1ms"},
		{"-graph", path, "serve", "-coalesce-max", "-1"},
	}
	for _, args := range cases {
		if _, err := capture(t, args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// TestServeCLICoalesce boots the daemon with a coalescing window,
// fires concurrent same-source queries at a sweep-capable release,
// checks the metrics attribute them to shared batches, and requires a
// clean drain on SIGINT (no waiter may be stranded on a window timer).
func TestServeCLICoalesce(t *testing.T) {
	path := writeFile(t, "g.txt", pathGraph)
	ready := make(chan string, 1)
	serveListening = ready
	defer func() { serveListening = nil }()

	outFile, err := os.CreateTemp(t.TempDir(), "serveout")
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	done := make(chan error, 1)
	go func() {
		done <- run(outFile, strings.NewReader(""), []string{"-graph", path, "serve",
			"-addr", "127.0.0.1:0", "-allow-seeded", "-coalesce-window", "5ms", "-coalesce-max", "64"})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never started listening")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/releases", "application/json",
		strings.NewReader(`{"name":"main","mechanism":"release","epsilon":2,"seed":7,"index":"ch"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create release: status %d", resp.StatusCode)
	}

	const queries = 8
	errc := make(chan error, queries)
	for i := 0; i < queries; i++ {
		go func(i int) {
			resp, err := http.Get(fmt.Sprintf("%s/v1/releases/main/distance?s=0&t=%d", base, i%4))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			errc <- err
		}(i)
	}
	for i := 0; i < queries; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	var metrics struct {
		Releases map[string]struct {
			Coalesce struct {
				Batches       uint64 `json:"batches"`
				SharedQueries uint64 `json:"shared_queries"`
				SoloQueries   uint64 `json:"solo_queries"`
			} `json:"coalesce"`
		} `json:"releases"`
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	co := metrics.Releases["main"].Coalesce
	if co.Batches == 0 {
		t.Error("coalescer ran zero batches")
	}
	if co.SharedQueries+co.SoloQueries != queries {
		t.Errorf("shared+solo = %d+%d, want %d", co.SharedQueries, co.SoloQueries, queries)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down on SIGINT")
	}
}

// TestServeCLIConcurrentSmoke exercises the daemon under parallel
// clients through the public entry point (run under -race in CI).
func TestServeCLIConcurrentSmoke(t *testing.T) {
	ts := benchTarget(t)
	out, err := capture(t, []string{"bench-serve", "-url", ts.URL, "-release", "main",
		"-n", "200", "-c", "16"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "200 ok / 0 failed") {
		t.Errorf("output:\n%s", out)
	}
	var metrics struct {
		Releases map[string]struct {
			Queries uint64 `json:"queries"`
		} `json:"releases"`
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := metrics.Releases["main"].Queries; got != 200 {
		t.Errorf("served %d queries, want 200", got)
	}
}
