// Command dpvet runs the repository's static-analysis suite (see
// internal/analysis). It supports two modes:
//
// Standalone, resolving packages itself:
//
//	go build -o dpvet ./cmd/dpvet && ./dpvet ./...
//
// As a go vet tool, speaking cmd/go's unitchecker protocol:
//
//	go vet -vettool=$PWD/dpvet ./...
//
// In vettool mode cmd/go invokes the binary once per package with a JSON
// config file describing the already-compiled package (source files, the
// import map, and export-data locations); dpvet type-checks the package
// from source against that export data, runs the analyzers, prints
// diagnostics to stderr, and exits 2 if any were found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// cmd/go's vettool handshake: `dpvet -V=full` must print a versioned
	// identity line; `dpvet -flags` must describe supported flags as JSON.
	if len(args) > 0 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Fprintf(stdout, "dpvet version devel buildID=%s\n", buildID())
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("dpvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()

	// Unitchecker mode: a single argument naming a .cfg JSON file.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		if err := runUnitchecker(rest[0], stderr); err != nil {
			if err == errDiagnostics {
				return 2
			}
			fmt.Fprintf(stderr, "dpvet: %v\n", err)
			return 1
		}
		return 0
	}

	// Standalone mode: load and check the named patterns.
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "dpvet: %v\n", err)
		return 1
	}
	pkgs, err := analysis.LoadPackages(wd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "dpvet: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunPackage(pkg, analysis.Analyzers()) {
			exit = 2
			if *jsonOut {
				enc, _ := json.Marshal(d)
				fmt.Fprintln(stdout, string(enc))
			} else {
				fmt.Fprintln(stderr, d.String())
			}
		}
	}
	return exit
}

// buildID derives a stable content hash for the -V handshake: cmd/go
// caches vet results keyed on this, so it must change when the checker
// changes. The executable's modification time is a cheap, sufficiently
// unique proxy for a from-source rebuild.
func buildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	st, err := os.Stat(exe)
	if err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x-%x", st.Size(), st.ModTime().UnixNano())
}

// vetConfig is the unitchecker protocol's per-package configuration,
// written by cmd/go to a *.cfg file.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

var errDiagnostics = fmt.Errorf("diagnostics reported")

func runUnitchecker(cfgPath string, stderr io.Writer) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// cmd/go requires the facts file to exist even though dpvet exports
	// no facts; write it before anything can fail.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("dpvet\n"), 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	// Imports resolve through the vet config: ImportMap canonicalizes the
	// path, PackageFile locates its export data.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	pkg, err := analysis.TypeCheck(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return err
	}

	diags := analysis.RunPackage(pkg, analysis.Analyzers())
	for _, d := range diags {
		fmt.Fprintln(stderr, d.String())
	}
	if len(diags) > 0 {
		return errDiagnostics
	}
	return nil
}
