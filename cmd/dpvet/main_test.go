package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDpvet compiles the checker once per test binary.
func buildDpvet(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "dpvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building dpvet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a scratch module with one privacy-critical package.
func writeModule(t *testing.T, coreSrc string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":                "module example.com/scratch\n\ngo 1.22\n",
		"internal/core/core.go": coreSrc,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtyCore = `package core

import "math/rand"

func Sample() float64 { return rand.New(rand.NewSource(7)).Float64() }
`

const cleanCore = `package core

func Sample() float64 { return 0.5 }
`

func runIn(t *testing.T, dir string, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v\n%s", name, err, buf.String())
	}
	return buf.String(), code
}

// TestStandaloneCatchesViolation: dpvet ./... must exit 2 and name the
// noiserand finding in a dirty module, and exit 0 in a clean one.
func TestStandaloneCatchesViolation(t *testing.T) {
	bin := buildDpvet(t)

	dirty := writeModule(t, dirtyCore)
	out, code := runIn(t, dirty, bin, "./...")
	if code != 2 {
		t.Fatalf("dirty module: got exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "noiserand") || !strings.Contains(out, "math/rand") {
		t.Fatalf("dirty module: diagnostics must name noiserand and math/rand:\n%s", out)
	}
	if !strings.Contains(out, "fixed-seed randomness") {
		t.Fatalf("dirty module: constant seed must be flagged:\n%s", out)
	}

	clean := writeModule(t, cleanCore)
	out, code = runIn(t, clean, bin, "./...")
	if code != 0 {
		t.Fatalf("clean module: got exit %d, want 0\n%s", code, out)
	}
}

// TestVettoolCatchesViolation drives the unitchecker protocol the way CI
// does: go vet -vettool=dpvet must fail on the dirty module and pass on
// the clean one.
func TestVettoolCatchesViolation(t *testing.T) {
	bin := buildDpvet(t)

	dirty := writeModule(t, dirtyCore)
	out, code := runIn(t, dirty, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("dirty module: go vet -vettool must fail\n%s", out)
	}
	if !strings.Contains(out, "noiserand") {
		t.Fatalf("dirty module: vet output must name noiserand:\n%s", out)
	}

	clean := writeModule(t, cleanCore)
	out, code = runIn(t, clean, "go", "vet", "-vettool="+bin, "./...")
	if code != 0 {
		t.Fatalf("clean module: go vet -vettool must pass, got exit %d\n%s", code, out)
	}
}

// TestHandshake pins the two cmd/go integration entry points.
func TestHandshake(t *testing.T) {
	bin := buildDpvet(t)
	out, code := runIn(t, ".", bin, "-V=full")
	if code != 0 || !strings.HasPrefix(out, "dpvet version ") {
		t.Fatalf("-V=full handshake broken (exit %d): %q", code, out)
	}
	out, code = runIn(t, ".", bin, "-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("-flags handshake broken (exit %d): %q", code, out)
	}
}
