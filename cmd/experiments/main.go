// Command experiments runs the reproduction suite: one experiment per
// theorem/figure of the paper (see DESIGN.md §3). Tables are printed as
// aligned text by default; -markdown emits the EXPERIMENTS.md body and
// -csv emits machine-readable rows.
//
// Usage:
//
//	experiments [-run E1,E7] [-quick] [-seed 1] [-markdown|-csv] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		seed     = flag.Int64("seed", 1, "random seed (equal seeds give identical tables)")
		markdown = flag.Bool("markdown", false, "emit GitHub markdown")
		csv      = flag.Bool("csv", false, "emit CSV")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-4s %-62s %s\n", e.ID, e.Title, e.Ref)
		}
		return
	}

	var selected []experiment.Experiment
	if *run == "" {
		selected = experiment.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := experiment.Config{Seed: *seed, Quick: *quick}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		switch {
		case *markdown:
			if err := table.RenderMarkdown(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", e.ID, err)
				failed++
			}
		case *csv:
			if err := table.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", e.ID, err)
				failed++
			}
		default:
			if err := table.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: render %s: %v\n", e.ID, err)
				failed++
			}
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
