package dpgraph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestEveryMechanismChargesOnce runs each method under a budget exactly
// equal to one release and verifies (a) the first call succeeds, (b) a
// second call is refused with ErrBudgetExhausted, (c) exactly one
// receipt was recorded with the cost actually charged.
func TestEveryMechanismChargesOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	grid := Grid(4)
	gw := UniformRandomWeights(grid, 0.1, 1, rng)
	tree := BalancedBinaryTree(15)
	tw := UniformRandomWeights(tree, 0.1, 1, rng)
	path := PathGraph(9)
	pw := UniformRandomWeights(path, 0.1, 1, rng)
	bip := CompleteBipartite(4, 4)
	bw := UniformRandomWeights(bip, 0.1, 1, rng)

	const eps, delta = 1, 1e-6
	cases := []struct {
		name string
		g    *Graph
		w    []float64
		pure bool // pure mechanisms must not charge delta
		run  func(pg *PrivateGraph) error
	}{
		{"distance", grid, gw, true, func(pg *PrivateGraph) error { _, err := pg.Distance(0, 15); return err }},
		{"apsd", grid, gw, false, func(pg *PrivateGraph) error { _, err := pg.AllPairsDistances(); return err }},
		{"bounded", grid, gw, false, func(pg *PrivateGraph) error { _, err := pg.BoundedAllPairs(1); return err }},
		{"covering", grid, gw, false, func(pg *PrivateGraph) error {
			_, err := pg.CoveringAllPairs([]int{0, 5, 10, 15}, 3, 1)
			return err
		}},
		{"release", grid, gw, true, func(pg *PrivateGraph) error { _, err := pg.Release(); return err }},
		{"path", grid, gw, true, func(pg *PrivateGraph) error { _, err := pg.ShortestPaths(); return err }},
		{"sssp", grid, gw, false, func(pg *PrivateGraph) error { _, err := pg.SingleSource(0); return err }},
		{"mst", grid, gw, true, func(pg *PrivateGraph) error { _, err := pg.MST(); return err }},
		{"mstcost", grid, gw, true, func(pg *PrivateGraph) error { _, err := pg.MSTCost(); return err }},
		{"treesssp", tree, tw, true, func(pg *PrivateGraph) error { _, err := pg.TreeSingleSource(0); return err }},
		{"treedist", tree, tw, true, func(pg *PrivateGraph) error { _, err := pg.TreeAllPairs(); return err }},
		{"hierarchy", path, pw, true, func(pg *PrivateGraph) error { _, err := pg.PathHierarchy(2); return err }},
		{"matching", bip, bw, true, func(pg *PrivateGraph) error { _, err := pg.Matching(); return err }},
		{"maxmatching", bip, bw, true, func(pg *PrivateGraph) error { _, err := pg.MaxMatching(); return err }},
	}
	for _, c := range cases {
		pg, err := New(c.g, PrivateWeights(c.w),
			WithEpsilon(eps), WithDelta(delta), WithBudget(eps, delta), WithDeterministicSeed(1))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := c.run(pg); err != nil {
			t.Errorf("%s: first call refused: %v", c.name, err)
			continue
		}
		if err := c.run(pg); !errors.Is(err, ErrBudgetExhausted) {
			t.Errorf("%s: second call err = %v, want ErrBudgetExhausted (mechanism not charging exactly once?)", c.name, err)
		}
		recs := pg.Receipts()
		if len(recs) != 1 {
			t.Errorf("%s: %d receipts after one successful call", c.name, len(recs))
			continue
		}
		wantDelta := delta
		if c.pure {
			wantDelta = 0
		}
		if recs[0].Mechanism != c.name || recs[0].Epsilon != eps || recs[0].Delta != wantDelta {
			t.Errorf("%s: receipt = %+v, want (eps=%d, delta=%g)", c.name, recs[0], eps, wantDelta)
		}
	}
}

// TestReceiptsLedgerSumsToSpent interleaves mechanisms and checks the
// ledger total equals the accountant's spend.
func TestReceiptsLedgerSumsToSpent(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := Grid(4)
	w := UniformRandomWeights(g, 0.1, 1, rng)
	pg, err := New(g, PrivateWeights(w),
		WithEpsilon(0.5), WithDelta(1e-7), WithBudget(10, 1e-5), WithDeterministicSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Distance(0, 15); err != nil {
		t.Fatal(err)
	}
	if _, err := pg.AllPairsDistances(); err != nil {
		t.Fatal(err)
	}
	if _, err := pg.ShortestPaths(); err != nil {
		t.Fatal(err)
	}
	if _, err := pg.MST(); err != nil {
		t.Fatal(err)
	}
	var sumEps, sumDelta float64
	for _, r := range pg.Receipts() {
		sumEps += r.Epsilon
		sumDelta += r.Delta
	}
	spentEps, spentDelta := pg.Spent()
	if math.Abs(sumEps-spentEps) > 1e-12 || math.Abs(sumDelta-spentDelta) > 1e-18 {
		t.Errorf("ledger sums to (%g, %g), accountant spent (%g, %g)", sumEps, sumDelta, spentEps, spentDelta)
	}
	if spentEps != 2 {
		t.Errorf("spent epsilon %g, want 2", spentEps)
	}
	// Only apsd consumes delta; the three pure mechanisms charge none.
	if spentDelta != 1e-7 {
		t.Errorf("spent delta %g, want 1e-7", spentDelta)
	}
	remEps, remDelta := pg.Remaining()
	if math.Abs(remEps-8) > 1e-12 || remDelta <= 0 {
		t.Errorf("remaining (%g, %g)", remEps, remDelta)
	}
}

// TestExhaustedBudgetReleasesNothing verifies a refused call returns a
// nil result, not a partially filled one.
func TestExhaustedBudgetReleasesNothing(t *testing.T) {
	pg, _, _ := testSession(t, WithEpsilon(1), WithBudget(1, 0))
	if _, err := pg.MST(); err != nil {
		t.Fatal(err)
	}
	rel, err := pg.Release()
	if err == nil || rel != nil {
		t.Fatalf("over-budget Release returned (%v, %v)", rel, err)
	}
	reg, ok := Mechanism("distance")
	if !ok {
		t.Fatal("distance not registered")
	}
	res, err := reg.Run(pg, Args{S: 0, T: 24})
	if err == nil || res != nil {
		t.Fatalf("over-budget registry run returned (%v, %v)", res, err)
	}
}

// TestFailedReleaseBurnsNoBudget drives mechanisms into their
// post-validation failure modes (disconnected topology, no perfect
// matching) and checks that a failed release spends nothing and
// records no receipt — the ledger invariant survives failures.
func TestFailedReleaseBurnsNoBudget(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	pg, err := New(g, PrivateWeights([]float64{0.5, 0.5}),
		WithEpsilon(1), WithDelta(1e-6), WithDeterministicSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.CoveringAllPairs([]int{0, 2}, 9, 1); err == nil {
		t.Error("disconnected covering accepted")
	}
	if _, err := pg.MST(); err == nil {
		t.Error("MST on disconnected graph accepted")
	}
	if _, err := pg.AllPairsDistances(); err != nil {
		// Disconnected pairs are released as +Inf, not an error.
		t.Errorf("AllPairsDistances on disconnected graph: %v", err)
	}
	triangle := Cycle(3) // odd vertex count: no perfect matching
	mpg, err := New(triangle, PrivateWeights([]float64{1, 1, 1}), WithDeterministicSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpg.Matching(); err == nil {
		t.Error("matching without a perfect matching accepted")
	}
	if eps, delta := mpg.Spent(); eps != 0 || delta != 0 {
		t.Errorf("failed matching spent (%g, %g)", eps, delta)
	}
	// Only the successful AllPairsDistances charged: (1, 1e-6).
	eps, delta := pg.Spent()
	if eps != 1 || delta != 1e-6 {
		t.Errorf("spent (%g, %g), want (1, 1e-6)", eps, delta)
	}
	var sumEps, sumDelta float64
	for _, r := range pg.Receipts() {
		sumEps += r.Epsilon
		sumDelta += r.Delta
	}
	if sumEps != eps || sumDelta != delta {
		t.Errorf("receipts sum (%g, %g) != spent (%g, %g) after failures", sumEps, sumDelta, eps, delta)
	}
}

// TestDirectedAPSDBoundUsesOrderedPairs checks the composition bound
// accounts for n(n-1) queries on directed graphs, matching the noise
// the release actually drew.
func TestDirectedAPSDBoundUsesOrderedPairs(t *testing.T) {
	n := 4
	g := NewDirectedGraph(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(n-1, 0)
	pg, err := New(g, PrivateWeights([]float64{1, 1, 1, 1}), WithDeterministicSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.AllPairsDistances()
	if err != nil {
		t.Fatal(err)
	}
	// Undirected counterpart with the same noise scale would bound over
	// half the queries; the directed bound must be strictly larger than
	// a bound computed with n(n-1)/2 draws.
	half := rel.NoiseScale * math.Log(float64(n*(n-1)/2)/0.05)
	if got := rel.Bound(0.05); got <= half {
		t.Errorf("directed bound %g not above unordered-pair bound %g", got, half)
	}
}

// TestUnlimitedBudgetStillLedgers confirms sessions without WithBudget
// never refuse but still account.
func TestUnlimitedBudgetStillLedgers(t *testing.T) {
	pg, _, _ := testSession(t, WithEpsilon(3))
	for i := 0; i < 5; i++ {
		if _, err := pg.Distance(0, 24); err != nil {
			t.Fatal(err)
		}
	}
	if eps, _ := pg.Spent(); eps != 15 {
		t.Errorf("spent %g, want 15", eps)
	}
	if len(pg.Receipts()) != 5 {
		t.Errorf("%d receipts, want 5", len(pg.Receipts()))
	}
}
