package dpgraph

import (
	"errors"
	"fmt"
	"sync"
)

// ReleaseRequest names one mechanism release for ReleaseAll: a registry
// mechanism name (see Mechanisms) plus the Args its runner reads.
type ReleaseRequest struct {
	Mechanism string
	Args      Args
}

// ReleaseOutcome is the result of one ReleaseRequest: exactly one of
// Result and Err is non-nil.
type ReleaseOutcome struct {
	Request ReleaseRequest
	Result  Result
	Err     error
}

// ReleaseAll materializes several releases against the session in one
// batch, returning one outcome per request in request order.
//
// Crypto-noise sessions (the default; see ConcurrentReleases) run the
// requests concurrently: every mechanism call samples from its own
// independent entropy stream, so the only shared state is the
// mutex-guarded accountant and receipt ledger. Deterministic and
// shared-stream sessions run the requests serially in request order, so
// a seeded batch reproduces exactly.
//
// Each request charges the accountant independently; failed requests
// (including budget refusals) release nothing and report their error in
// the outcome. When the remaining budget cannot cover the whole batch,
// which requests are refused is first-come-first-served — under
// concurrent execution that order is not deterministic. The returned
// error joins all per-request errors (nil when every release succeeded).
func (pg *PrivateGraph) ReleaseAll(reqs ...ReleaseRequest) ([]ReleaseOutcome, error) {
	outcomes := make([]ReleaseOutcome, len(reqs))
	run := func(i int) {
		outcomes[i].Request = reqs[i]
		desc, ok := Mechanism(reqs[i].Mechanism)
		if !ok {
			outcomes[i].Err = fmt.Errorf("dpgraph: unknown mechanism %q", reqs[i].Mechanism)
			return
		}
		if desc.Run == nil {
			outcomes[i].Err = fmt.Errorf("dpgraph: mechanism %q has no registry runner; call the %s method directly", reqs[i].Mechanism, desc.Method)
			return
		}
		outcomes[i].Result, outcomes[i].Err = desc.Run(pg, reqs[i].Args)
	}
	if pg.ConcurrentReleases() {
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range reqs {
			run(i)
		}
	}
	var errs []error
	for i := range outcomes {
		if outcomes[i].Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", outcomes[i].Request.Mechanism, outcomes[i].Err))
		}
	}
	return outcomes, errors.Join(errs...)
}
