package dpgraph

import (
	"errors"
	"math/rand"
	"testing"
)

func batchSession(t *testing.T, opts ...Option) *PrivateGraph {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	g := Grid(4)
	w := UniformRandomWeights(g, 1, 4, rng)
	pg, err := New(g, PrivateWeights(w), append([]Option{WithEpsilon(1)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestConcurrentReleasesReporting(t *testing.T) {
	if !batchSession(t).ConcurrentReleases() {
		t.Error("crypto session should allow concurrent releases")
	}
	if batchSession(t, WithDeterministicSeed(1)).ConcurrentReleases() {
		t.Error("seeded session must not allow concurrent releases")
	}
	if batchSession(t, WithNoiseSource(rand.New(rand.NewSource(1)))).ConcurrentReleases() {
		t.Error("shared-stream session must not allow concurrent releases")
	}
}

// TestReleaseAllCrypto materializes a mixed batch in parallel (crypto
// mode; meaningful under -race) and checks outcomes, receipts, and
// spent budget all line up.
func TestReleaseAllCrypto(t *testing.T) {
	pg := batchSession(t)
	reqs := []ReleaseRequest{
		{Mechanism: "release"},
		{Mechanism: "path", Args: Args{S: 0, T: 15}},
		{Mechanism: "distance", Args: Args{S: 0, T: 15}},
		{Mechanism: "mstcost"},
		{Mechanism: "treesssp", Args: Args{Root: 0}}, // grid is not a tree: must fail cleanly
	}
	outcomes, err := pg.ReleaseAll(reqs...)
	if err == nil {
		t.Fatal("expected joined error from the treesssp request")
	}
	if len(outcomes) != len(reqs) {
		t.Fatalf("%d outcomes for %d requests", len(outcomes), len(reqs))
	}
	for i, o := range outcomes {
		if o.Request.Mechanism != reqs[i].Mechanism {
			t.Errorf("outcome %d is for %q, want %q", i, o.Request.Mechanism, reqs[i].Mechanism)
		}
		if reqs[i].Mechanism == "treesssp" {
			if o.Err == nil || o.Result != nil {
				t.Errorf("treesssp outcome = (%v, %v), want error only", o.Result, o.Err)
			}
			continue
		}
		if o.Err != nil || o.Result == nil {
			t.Errorf("%s outcome = (%v, %v), want result only", o.Request.Mechanism, o.Result, o.Err)
			continue
		}
		if o.Result.Info().Receipt.Mechanism == "" {
			t.Errorf("%s result has no receipt", o.Request.Mechanism)
		}
	}
	if got := len(pg.Receipts()); got != 4 {
		t.Errorf("%d receipts for 4 successful releases", got)
	}
	if eps, _ := pg.Spent(); eps != 4 {
		t.Errorf("spent %g, want 4", eps)
	}
}

// TestReleaseAllDeterministicReproduces runs the same seeded batch on
// two sessions: serial in-order execution must reproduce exactly.
func TestReleaseAllDeterministicReproduces(t *testing.T) {
	reqs := []ReleaseRequest{
		{Mechanism: "release"},
		{Mechanism: "distance", Args: Args{S: 0, T: 15}},
		{Mechanism: "sssp", Args: Args{Root: 0}},
	}
	var first []float64
	for round := 0; round < 2; round++ {
		pg := batchSession(t, WithDeterministicSeed(123))
		outcomes, err := pg.ReleaseAll(reqs...)
		if err != nil {
			t.Fatal(err)
		}
		var vals []float64
		vals = append(vals, outcomes[0].Result.(*SyntheticGraph).Weights...)
		vals = append(vals, outcomes[1].Result.(*DistanceResult).Value)
		if round == 0 {
			first = vals
			continue
		}
		for i := range vals {
			if vals[i] != first[i] {
				t.Fatalf("round 2 value %d = %g, want %g", i, vals[i], first[i])
			}
		}
	}
}

func TestReleaseAllBadRequests(t *testing.T) {
	pg := batchSession(t)
	outcomes, err := pg.ReleaseAll(
		ReleaseRequest{Mechanism: "nope"},
		ReleaseRequest{Mechanism: "covering"}, // registered but runner-less
	)
	if err == nil {
		t.Fatal("bad requests accepted")
	}
	if outcomes[0].Err == nil || outcomes[1].Err == nil {
		t.Errorf("outcomes = %+v, want errors", outcomes)
	}
	if len(pg.Receipts()) != 0 {
		t.Error("failed requests left receipts")
	}
	if outcomes, err := pg.ReleaseAll(); err != nil || len(outcomes) != 0 {
		t.Errorf("empty batch = (%v, %v), want no-op", outcomes, err)
	}
}

// TestReleaseAllBudgetedAdmitsExactly checks the accountant under a
// parallel batch: a budget with room for 3 releases admits exactly 3.
func TestReleaseAllBudgetedAdmitsExactly(t *testing.T) {
	pg := batchSession(t, WithBudget(3, 0))
	reqs := make([]ReleaseRequest, 6)
	for i := range reqs {
		reqs[i] = ReleaseRequest{Mechanism: "release"}
	}
	outcomes, err := pg.ReleaseAll(reqs...)
	if err == nil {
		t.Fatal("over-budget batch fully admitted")
	}
	ok, refused := 0, 0
	for _, o := range outcomes {
		switch {
		case o.Err == nil:
			ok++
		case errors.Is(o.Err, ErrBudgetExhausted):
			refused++
		default:
			t.Errorf("unexpected error: %v", o.Err)
		}
	}
	if ok != 3 || refused != 3 {
		t.Errorf("admitted %d, refused %d; want 3 and 3", ok, refused)
	}
	if eps, _ := pg.Spent(); eps != 3 {
		t.Errorf("spent %g, want 3", eps)
	}
}
