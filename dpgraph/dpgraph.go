// Package dpgraph is the public API for answering graph queries with
// differential privacy in the private edge-weight model of Sealfon,
// "Shortest Paths and Distances with Differential Privacy" (PODS 2016):
// the graph topology is public, the edge-weight vector is private, and
// weight vectors at l1 distance at most one are neighboring.
//
// The private data is bound once into a PrivateGraph session:
//
//	pg, err := dpgraph.New(topology, dpgraph.PrivateWeights(w),
//	    dpgraph.WithEpsilon(1), dpgraph.WithBudget(5, 1e-6))
//	res, err := pg.Distance(s, t)
//	fmt.Println(res.Value, res.Bound(0.05), res.Receipt)
//
// Every mechanism of the paper is a method on PrivateGraph returning a
// typed result that carries the released value(s), a Bound(gamma)
// high-probability error bound, and a Receipt recording the privacy cost
// the built-in accountant charged. Once the budget set by WithBudget is
// exhausted, methods refuse to release anything further.
//
// # Release once, query many
//
// Because differential privacy is closed under post-processing, a
// release pays its privacy cost exactly once; everything computed from
// it afterwards is free. The distance-releasing results therefore carry
// an Oracle() accessor returning a DistanceOracle: construct the release
// (one receipt), then answer unboundedly many s-t queries from the
// oracle with zero further budget, from as many goroutines as desired.
//
//	syn, err := pg.Release()        // charges (epsilon, 0) once
//	oracle := syn.Oracle()          // free post-processing forever after
//	d, err := oracle.Distance(s, t) // no budget, no receipt
//
// Which oracle to use, and what its answers mean:
//
//   - SyntheticGraph.Oracle (Release): exact shortest paths of the noisy
//     graph; vs the true weights a k-hop answer errs by at most k times
//     the per-edge noise bound. Works on any topology. With
//     WithQueryIndex the oracle serves from a precomputed contraction
//     hierarchy or landmark index plus a sharded result cache — built
//     once per release, identical answers, orders of magnitude faster
//     on large graphs (pure post-processing: zero extra budget).
//   - TreeSSSPResult.Oracle / TreeAPSDResult.Oracle (TreeSingleSource,
//     TreeAllPairs): bounded error polylog(V)/eps on trees; O(log V)
//     LCA lookup per query, no allocation.
//   - HierarchyResult.Oracle (PathHierarchy): bounded error on the path
//     graph; O(log V) released gaps summed per query, no allocation.
//   - APSDResult.Oracle (AllPairsDistances, CoveringAllPairs,
//     BoundedAllPairs): table lookup; composition releases carry the
//     per-query noise bound, covering releases additionally the
//     2·K·MaxWeight assignment bias.
//
// # Noise and throughput
//
// Noise is crypto-grade by default; deterministic runs (tests,
// experiments) must opt in via WithDeterministicSeed or WithNoiseSource.
// A PrivateGraph is safe for concurrent use by multiple goroutines.
//
// All sampling flows through the internal NoiseSource layer, which
// serves noise in vectorized blocks: crypto-noise sessions draw from a
// ChaCha8 stream seeded per call from OS entropy and shard large fills
// across GOMAXPROCS workers, so million-edge releases run at memory
// speed. Crypto sessions additionally run whole mechanism calls in
// parallel (ConcurrentReleases reports true) — use ReleaseAll to
// materialize a batch of releases concurrently against the shared
// budget accountant. Seeded sessions keep a deterministic draw order
// and therefore run serially.
//
// The available mechanisms, with sensitivity and guarantee metadata, are
// enumerated by Mechanisms().
package dpgraph

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/graph"
)

// ErrBudgetExhausted is reported (wrapped) by any mechanism call that
// would exceed the session budget; match it with errors.Is.
var ErrBudgetExhausted = dp.ErrBudgetExceeded

// Weights wraps a private edge-weight vector. The only way to hand
// private data to this package is through PrivateWeights, which makes
// the trust boundary explicit at the call site.
type Weights struct {
	w []float64
}

// PrivateWeights declares w (indexed by edge ID) to be the private
// input. The slice is copied; later mutation of w does not affect the
// session.
func PrivateWeights(w []float64) Weights {
	return Weights{w: append([]float64(nil), w...)}
}

// PrivateGraph is a session binding a public topology to a private
// weight vector. All mechanism methods draw noise from the session's
// noise source, charge the session's accountant, and append to the
// session's receipt ledger. Safe for concurrent use.
type PrivateGraph struct {
	g   *graph.Graph
	w   []float64
	cfg config

	acct *dp.Accountant

	// noise is the session's root noise source; each mechanism call
	// draws from noise.Child(). Crypto roots hand out fresh independent
	// entropy streams (zero shared state, so mechanism calls and
	// ReleaseAll batches run fully in parallel); seeded roots split a
	// reproducible child per call; caller-supplied shared streams
	// serialize draws internally.
	noise dp.NoiseSource

	recMu    sync.Mutex
	receipts []Receipt
}

// New creates a session for answering private queries about the weights
// on the given public topology. The weight vector length must equal the
// number of edges. Options default to epsilon 1, delta 0, gamma 0.05,
// scale 1, an unlimited budget, and crypto-grade noise.
func New(topology *Graph, private Weights, opts ...Option) (*PrivateGraph, error) {
	if topology == nil {
		return nil, errors.New("dpgraph: nil topology")
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if len(private.w) != topology.M() {
		return nil, fmt.Errorf("dpgraph: weight vector has %d entries for %d edges", len(private.w), topology.M())
	}
	// Fail fast on bad parameters rather than at the first query.
	if err := (core.Options{Epsilon: cfg.epsilon, Delta: cfg.delta, Gamma: cfg.gamma, Scale: cfg.scale}).Validate(); err != nil {
		return nil, err
	}
	// Explicit index families need an undirected topology; catch the
	// mismatch here instead of at the first Oracle call.
	if (cfg.indexMode == IndexCH || cfg.indexMode == IndexALT || cfg.indexMode == IndexHL) && topology.Directed() {
		return nil, fmt.Errorf("dpgraph: WithQueryIndex(%v) supports undirected topologies only (use %v, which serves directed graphs unindexed)", cfg.indexMode, IndexAuto)
	}
	pg := &PrivateGraph{
		g:    topology,
		w:    private.w,
		cfg:  cfg,
		acct: dp.NewAccountant(cfg.budget),
	}
	switch {
	case cfg.sharedRand != nil:
		pg.noise = dp.WrapRand(cfg.sharedRand)
	case cfg.seeded:
		pg.noise = dp.NewSeededNoise(cfg.seed)
	default:
		pg.noise = dp.NewCryptoNoise()
	}
	return pg, nil
}

// Topology returns the session's public graph.
func (pg *PrivateGraph) Topology() *Graph { return pg.g }

// Epsilon returns the per-release privacy parameter.
func (pg *PrivateGraph) Epsilon() float64 { return pg.cfg.epsilon }

// Delta returns the per-release approximate-DP parameter.
func (pg *PrivateGraph) Delta() float64 { return pg.cfg.delta }

// Gamma returns the failure probability used for default error bounds.
func (pg *PrivateGraph) Gamma() float64 { return pg.cfg.gamma }

// Spent returns the total privacy budget charged so far.
func (pg *PrivateGraph) Spent() (epsilon, delta float64) {
	p := pg.acct.Spent()
	return p.Epsilon, p.Delta
}

// Remaining returns the unspent budget; both are +Inf when no budget was
// set.
func (pg *PrivateGraph) Remaining() (epsilon, delta float64) {
	p := pg.acct.Remaining()
	return p.Epsilon, p.Delta
}

// Receipts returns a copy of the ledger of successful releases, in
// order. The sum of the receipts' Epsilon/Delta equals Spent().
func (pg *PrivateGraph) Receipts() []Receipt {
	pg.recMu.Lock()
	defer pg.recMu.Unlock()
	return append([]Receipt(nil), pg.receipts...)
}

// options assembles the core options for one mechanism call. The call's
// noise stream is a child of the session root:
//   - crypto (default): a fresh OS-entropy stream per call with no
//     shared state, so any number of mechanism calls sample in parallel;
//   - deterministic (WithDeterministicSeed): a child stream split from
//     the seeded root, so a serial sequence of calls reproduces exactly;
//   - shared (WithNoiseSource): the caller's stream, which serializes
//     its draws internally.
func (pg *PrivateGraph) options() core.Options {
	return core.Options{
		Epsilon:    pg.cfg.epsilon,
		Delta:      pg.cfg.delta,
		Gamma:      pg.cfg.gamma,
		Scale:      pg.cfg.scale,
		Noise:      pg.noise.Child(),
		Accountant: pg.acct,
	}
}

// ConcurrentReleases reports whether the session's mechanism calls may
// run fully in parallel: true for crypto-noise sessions (every call gets
// an independent entropy stream, and only the accountant and receipt
// ledger are shared, each behind its own short mutex), false for
// deterministic and shared-stream sessions, whose draw order is part of
// the reproducibility contract. ReleaseAll consults this to decide
// between parallel and serial materialization.
func (pg *PrivateGraph) ConcurrentReleases() bool {
	return !pg.noise.Deterministic()
}

// exec runs one mechanism body with session options and, on success,
// records a receipt for the charged cost. Pure mechanisms charge no
// delta regardless of the session delta.
func (pg *PrivateGraph) exec(mechanism string, pure bool, run func(o core.Options) error) (Receipt, error) {
	if err := run(pg.options()); err != nil {
		return Receipt{}, err
	}
	rec := Receipt{
		Mechanism: mechanism,
		Epsilon:   pg.cfg.epsilon,
		Delta:     pg.cfg.delta,
		Time:      time.Now(),
	}
	if pure {
		rec.Delta = 0
	}
	pg.recMu.Lock()
	pg.receipts = append(pg.receipts, rec)
	pg.recMu.Unlock()
	return rec, nil
}

// info builds the common release metadata for a result.
func (pg *PrivateGraph) info(rec Receipt, noiseScale float64) ReleaseInfo {
	return ReleaseInfo{
		Mechanism:  rec.Mechanism,
		Epsilon:    rec.Epsilon,
		Delta:      rec.Delta,
		NoiseScale: noiseScale,
		Receipt:    rec,
	}
}

// unlimited is the budget used when WithBudget is not given.
func unlimited() dp.PrivacyParams {
	return dp.PrivacyParams{Epsilon: math.Inf(1), Delta: math.Inf(1)}
}
