package dpgraph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func testSession(t *testing.T, opts ...Option) (*PrivateGraph, *Graph, []float64) {
	t.Helper()
	g := Grid(5)
	rng := rand.New(rand.NewSource(7))
	w := UniformRandomWeights(g, 1, 5, rng)
	pg, err := New(g, PrivateWeights(w), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return pg, g, w
}

func TestNewValidation(t *testing.T) {
	g := Grid(3)
	if _, err := New(nil, PrivateWeights(nil)); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(g, PrivateWeights([]float64{1})); err == nil {
		t.Error("wrong-length weights accepted")
	}
	if _, err := New(g, PrivateWeights(make([]float64, g.M())), WithEpsilon(-1)); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := New(g, PrivateWeights(make([]float64, g.M())), WithDelta(1)); err == nil {
		t.Error("delta = 1 accepted")
	}
	if _, err := New(g, PrivateWeights(make([]float64, g.M())), WithGamma(0)); err == nil {
		t.Error("gamma = 0 accepted")
	}
	if _, err := New(g, PrivateWeights(make([]float64, g.M())), WithScale(0)); err == nil {
		t.Error("scale = 0 accepted")
	}
	if _, err := New(g, PrivateWeights(make([]float64, g.M())), WithBudget(-1, 0)); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := New(g, PrivateWeights(make([]float64, g.M())), WithNoiseSource(nil)); err == nil {
		t.Error("nil noise source accepted")
	}
}

func TestPrivateWeightsCopies(t *testing.T) {
	g := PathGraph(3)
	w := []float64{1, 2}
	pw := PrivateWeights(w)
	w[0] = 99
	pg, err := New(g, pw, WithDeterministicSeed(1), WithEpsilon(1e9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pg.Distance(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-3) > 0.01 {
		t.Errorf("session saw mutated weights: distance %g, want ~3", res.Value)
	}
}

func TestDeterministicSeedReproduces(t *testing.T) {
	run := func() []float64 {
		g := Grid(5)
		rng := rand.New(rand.NewSource(7))
		w := UniformRandomWeights(g, 1, 5, rng)
		pg, err := New(g, PrivateWeights(w), WithDeterministicSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		d, err := pg.Distance(0, 24)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d.Value)
		rel, err := pg.Release()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rel.Weights...)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("deterministic runs diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestCryptoDefaultNotReproducible(t *testing.T) {
	pg, _, _ := testSession(t)
	a, err := pg.Distance(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pg.Distance(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value == b.Value {
		t.Error("two crypto-noise releases returned identical values")
	}
}

func TestDistanceAccuracyHugeEpsilon(t *testing.T) {
	g := Grid(5)
	rng := rand.New(rand.NewSource(7))
	w := UniformRandomWeights(g, 1, 5, rng)
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1e9), WithDeterministicSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := pg.Distance(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt.Mechanism != "distance" || res.Receipt.Epsilon != 1e9 {
		t.Errorf("receipt = %+v", res.Receipt)
	}
	if res.Bound(0.05) <= 0 {
		t.Error("nonpositive bound")
	}
	// With eps huge, the value is essentially exact: check via the
	// session's own synthetic release at the same epsilon.
	syn, err := pg.Release()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := syn.Distance(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-exact) > 0.01 {
		t.Errorf("huge-eps distance %g vs %g", res.Value, exact)
	}
}

func TestAllMechanismsProduceTypedResults(t *testing.T) {
	// One call of every session method on a suitable topology; each must
	// return a result with a receipt, a positive bound, and a summary.
	rng := rand.New(rand.NewSource(11))
	grid := Grid(4)
	gw := UniformRandomWeights(grid, 0.1, 1, rng)
	tree := BalancedBinaryTree(15)
	tw := UniformRandomWeights(tree, 0.1, 1, rng)
	path := PathGraph(9)
	pw := UniformRandomWeights(path, 0.1, 1, rng)
	bip := CompleteBipartite(4, 4)
	bw := UniformRandomWeights(bip, 0.1, 1, rng)

	session := func(g *Graph, w []float64) *PrivateGraph {
		pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDelta(1e-6), WithDeterministicSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		return pg
	}
	gridPG, treePG, pathPG, bipPG := session(grid, gw), session(tree, tw), session(path, pw), session(bip, bw)

	calls := []struct {
		name string
		run  func() (Result, error)
	}{
		{"distance", func() (Result, error) { return noNil(gridPG.Distance(0, 15)) }},
		{"apsd", func() (Result, error) { return noNil(gridPG.AllPairsDistances()) }},
		{"bounded", func() (Result, error) { return noNil(gridPG.BoundedAllPairs(1)) }},
		{"covering", func() (Result, error) { return noNil(gridPG.CoveringAllPairs([]int{0, 5, 10, 15}, 3, 1)) }},
		{"release", func() (Result, error) { return noNil(gridPG.Release()) }},
		{"path", func() (Result, error) { return noNil(gridPG.ShortestPaths()) }},
		{"sssp", func() (Result, error) { return noNil(gridPG.SingleSource(0)) }},
		{"mst", func() (Result, error) { return noNil(gridPG.MST()) }},
		{"mstcost", func() (Result, error) { return noNil(gridPG.MSTCost()) }},
		{"treesssp", func() (Result, error) { return noNil(treePG.TreeSingleSource(0)) }},
		{"treedist", func() (Result, error) { return noNil(treePG.TreeAllPairs()) }},
		{"hierarchy", func() (Result, error) { return noNil(pathPG.PathHierarchy(2)) }},
		{"matching", func() (Result, error) { return noNil(bipPG.Matching()) }},
		{"maxmatching", func() (Result, error) { return noNil(bipPG.MaxMatching()) }},
	}
	for _, c := range calls {
		res, err := c.run()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		info := res.Info()
		if info.Receipt.Mechanism == "" || info.Receipt.Epsilon != 1 {
			t.Errorf("%s: bad receipt %+v", c.name, info.Receipt)
		}
		if res.Bound(0.05) <= 0 {
			t.Errorf("%s: nonpositive bound", c.name)
		}
		if res.Summary() == "" {
			t.Errorf("%s: empty summary", c.name)
		}
	}
}

func TestTypedResultContents(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := Grid(5)
	w := UniformRandomWeights(g, 1, 5, rng)
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1e6), WithDeterministicSeed(3))
	if err != nil {
		t.Fatal(err)
	}

	paths, err := pg.ShortestPaths()
	if err != nil {
		t.Fatal(err)
	}
	verts, err := paths.PathVertices(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if verts[0] != 0 || verts[len(verts)-1] != 24 {
		t.Errorf("path endpoints %v", verts)
	}
	if paths.Shift <= 0 {
		t.Error("nonpositive shift")
	}
	if b1, b2 := paths.BoundKHops(1, 0.05), paths.Bound(0.05); !(b1 < b2) {
		t.Errorf("1-hop bound %g not below worst-case %g", b1, b2)
	}

	apsd, err := pg.AllPairsDistances()
	if err != nil {
		t.Fatal(err)
	}
	if apsd.Distance(3, 3) != 0 {
		t.Error("nonzero self-distance")
	}
	if m := apsd.Matrix(); len(m) != g.N() || m[0][24] != apsd.Distance(0, 24) {
		t.Error("matrix does not match queries")
	}

	mst, err := pg.MST()
	if err != nil {
		t.Fatal(err)
	}
	if len(mst.Edges) != g.N()-1 {
		t.Errorf("spanning tree has %d edges for %d vertices", len(mst.Edges), g.N())
	}
	if tw := mst.TrueWeight(w); tw <= 0 {
		t.Errorf("true weight %g", tw)
	}
}

func TestSharedNoiseSourceMatchesCoreBehavior(t *testing.T) {
	// WithNoiseSource must consume exactly the same draws a direct core
	// call would, so experiments keep their seeded reproducibility.
	g := Grid(4)
	rngW := rand.New(rand.NewSource(21))
	w := UniformRandomWeights(g, 1, 3, rngW)

	rng1 := rand.New(rand.NewSource(9))
	pg, err := New(g, PrivateWeights(w), WithEpsilon(2), WithNoiseSource(rng1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pg.Distance(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(9))
	pg2, err := New(g, PrivateWeights(w), WithEpsilon(2), WithNoiseSource(rng2))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := pg2.Distance(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != got2.Value {
		t.Errorf("same source, different draws: %g vs %g", got.Value, got2.Value)
	}
}

func TestErrorsDoNotRecordReceipts(t *testing.T) {
	pg, g, _ := testSession(t)
	if _, err := pg.Distance(0, g.N()+5); err == nil {
		t.Fatal("out-of-range query accepted")
	}
	if _, err := pg.TreeAllPairs(); err == nil {
		t.Fatal("tree mechanism accepted a grid")
	}
	if _, err := pg.PathHierarchy(2); err == nil {
		t.Fatal("path mechanism accepted a grid")
	}
	if got := pg.Receipts(); len(got) != 0 {
		t.Errorf("failed calls recorded receipts: %v", got)
	}
	if eps, _ := pg.Spent(); eps != 0 {
		t.Errorf("failed calls spent %g", eps)
	}
}

func TestErrBudgetExhaustedIs(t *testing.T) {
	pg, _, _ := testSession(t, WithEpsilon(1), WithBudget(1.5, 0))
	if _, err := pg.Distance(0, 24); err != nil {
		t.Fatal(err)
	}
	_, err := pg.Distance(0, 24)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("err = %v, want ErrBudgetExhausted", err)
	}
}
