package dpgraph_test

import (
	"fmt"

	"repro/dpgraph"
)

// A downstream consumer answers a private distance query in a few lines
// without touching any internal package. (The example seeds the noise
// only so its output is stable; production sessions omit
// WithDeterministicSeed and get crypto-grade noise.)
func Example() {
	g := dpgraph.Grid(5)        // public topology: 5x5 street grid
	w := make([]float64, g.M()) // private travel times
	for i := range w {
		w[i] = 2
	}
	pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
		dpgraph.WithEpsilon(1),
		dpgraph.WithBudget(2, 0),
		dpgraph.WithDeterministicSeed(1))
	if err != nil {
		panic(err)
	}
	res, err := pg.Distance(0, 24)
	if err != nil {
		panic(err)
	}
	fmt.Printf("released distance within ±%.1f of the truth (with prob 0.95)\n", res.Bound(0.05))
	fmt.Printf("receipts: %d release(s), mechanism %q\n", len(pg.Receipts()), pg.Receipts()[0].Mechanism)
	eps, _ := pg.Spent()
	fmt.Printf("spent ε=%g of budget\n", eps)
	// Output:
	// released distance within ±3.0 of the truth (with prob 0.95)
	// receipts: 1 release(s), mechanism "distance"
	// spent ε=1 of budget
}

// ExampleMechanisms enumerates the registry.
func ExampleMechanisms() {
	for _, d := range dpgraph.Mechanisms() {
		if d.Guarantee == dpgraph.Pure {
			fmt.Println(d.Name)
		}
	}
	// Output:
	// distance
	// hierarchy
	// matching
	// maxmatching
	// mst
	// mstcost
	// path
	// release
	// treedist
	// treesssp
}
