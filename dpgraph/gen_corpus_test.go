package dpgraph

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/snapshot"
)

// TestGenUnsealCorpus regenerates the checked-in FuzzUnseal seed corpus.
func TestGenUnsealCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzUnseal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var entries [][]byte
	for _, mode := range []QueryIndexMode{IndexOff, IndexCH, IndexALT, IndexHL} {
		_, _, data := sealedRelease(t, 5, int64(mode)+1, mode)
		entries = append(entries, data)
	}
	_, priv, err := snapshot.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	_, _, signed := sealedRelease(t, 5, 9, IndexCH, WithSigningKey(priv))
	entries = append(entries, signed)
	base := entries[1]
	for _, cut := range []int{7, 56, 120, len(base) / 2, len(base) - 1} {
		entries = append(entries, base[:cut])
	}
	for _, pos := range []int{9, 60, 200, len(base) - 30} {
		mut := append([]byte(nil), base...)
		mut[pos] ^= 0x10
		entries = append(entries, mut)
	}
	mut := append([]byte(nil), base...)
	for i := 24; i < 32; i++ {
		mut[i] = 0xFF
	}
	entries = append(entries, mut)
	for i, e := range entries {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(e)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus entries", len(entries))
}
