package dpgraph

import (
	"math"
	"math/rand"
	"testing"
)

// The golden values below are bit patterns (math.Float64bits) of seeded
// releases captured from the pre-NoiseSource scalar sampling path
// (PR 2's *rand.Rand plumbing). The NoiseSource refactor must keep every
// seeded stream byte-identical: the splittable seeded root reproduces
// the historical per-call child-seeding, and block fills draw in the
// historical scalar order. If one of these tests fails, a change broke
// the reproducibility contract that experiments and checked-in tables
// rely on — it is not a tolerance issue, and the values must not be
// "refreshed" without bumping that contract deliberately.

func assertBits(t *testing.T, label string, got []float64, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != want[i] {
			t.Errorf("%s[%d] = %x (%g), want %x (%g)", label, i,
				math.Float64bits(got[i]), got[i], want[i], math.Float64frombits(want[i]))
		}
	}
}

func TestGoldenReleaseGrid4Seed42(t *testing.T) {
	g := Grid(4)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%5)
	}
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDeterministicSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.Release()
	if err != nil {
		t.Fatal(err)
	}
	assertBits(t, "release/grid4/seed42", rel.Weights, []uint64{
		0x4006bf6933a6f181, 0x401231a26eb97690, 0x400883bf3f7e81a6,
		0x400c6f8e6c0dd49d, 0x40188e937907ec50, 0x3ff5ad4aef9bede6,
		0x3ff7881436367fd2, 0x3ff606a0d1a7f55f, 0x4009174a3a107d9e,
		0x4001f7b041938fb5, 0x3ffac7ec212decc4, 0x400377b79f8b4cc8,
		0x400cfa2e74a89c8c, 0x40105f2302295b6b, 0x401a71152d787782,
		0x3ffce5d8a0decbfc, 0x3feab059b10097aa, 0x4001fdee6d9dcdcd,
		0x401056191f3df6e3, 0x401407738c7c681d, 0xbff5eb99339b4ac8,
		0x400263c219911704, 0x3fff43f1da783be2, 0x4008e6c86134e8e9,
	})
}

func TestGoldenTreeSSSPSeed7(t *testing.T) {
	g := BalancedBinaryTree(15)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 2 + float64(i%3)
	}
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDeterministicSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.TreeSingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	assertBits(t, "treesssp/bbt15/seed7", rel.Dist, []uint64{
		0x0000000000000000, 0x4021fcbf3bcbb33b, 0x4037c8d0f567d51f,
		0x4026f39f5fa1e365, 0x401ec8cdfefc1fea, 0x4038618bcd596d56,
		0x4034a234f0d2d3d7, 0x402f836a1c56030b, 0x402e8368d026b26b,
		0x4030da7853f33140, 0x40194c69da14cdbe, 0x40452753c9ba0780,
		0x40442845dbfb7fd3, 0x4040cd3b698cf453, 0x403e6de4c3b39a79,
	})
}

func TestGoldenHierarchySeed9(t *testing.T) {
	g := PathGraph(9)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i)/8
	}
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDeterministicSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.PathHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	var ds []float64
	for _, p := range [][2]int{{0, 8}, {1, 7}, {2, 5}, {3, 4}, {0, 1}} {
		ds = append(ds, rel.Distance(p[0], p[1]))
	}
	assertBits(t, "hierarchy/path9/seed9", ds, []uint64{
		0x401d95d92129cc08, 0x4040621788276545, 0x403b90c0e9c1e8ce,
		0xbfcdb0097e52e870, 0xbfe33a237bb49bd0,
	})
}

func TestGoldenAPSDSeed5(t *testing.T) {
	g := Grid(3)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%4)/2
	}
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDeterministicSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.AllPairsDistances()
	if err != nil {
		t.Fatal(err)
	}
	var ds []float64
	for _, p := range [][2]int{{0, 8}, {1, 7}, {2, 6}, {3, 5}, {4, 0}} {
		ds = append(ds, rel.Distance(p[0], p[1]))
	}
	assertBits(t, "apsd/grid3/seed5", ds, []uint64{
		0x40503c6ffcdc4688, 0xc0601b2d55796a2c, 0x4053a774710f5638,
		0xbfe93dd662935630, 0xc0415deefd85df63,
	})
}

func TestGoldenShortestPathsSeed11(t *testing.T) {
	g := Grid(3)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%3)
	}
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDeterministicSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.ShortestPaths()
	if err != nil {
		t.Fatal(err)
	}
	edges, err := rel.Path(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := []int{0, 3, 7, 9}
	if len(edges) != len(wantEdges) {
		t.Fatalf("path = %v, want %v", edges, wantEdges)
	}
	for i := range edges {
		if edges[i] != wantEdges[i] {
			t.Fatalf("path = %v, want %v", edges, wantEdges)
		}
	}
	if bits := math.Float64bits(rel.Shift); bits != 0x4015ec2c9c23c107 {
		t.Errorf("shift bits = %x, want 4015ec2c9c23c107", bits)
	}
}

func TestGoldenCallSequenceSeed99(t *testing.T) {
	// Several mechanisms on one session: the per-call child-stream split
	// order is part of the contract, not just the per-mechanism draws.
	g := Grid(3)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1.5
	}
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDeterministicSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.Release()
	if err != nil {
		t.Fatal(err)
	}
	d, err := pg.Distance(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pg.MSTCost()
	if err != nil {
		t.Fatal(err)
	}
	assertBits(t, "sequence/grid3/seed99",
		[]float64{rel.Weights[0], rel.Weights[11], d.Value, c.Value}, []uint64{
			0x3ff20c0e2fcba9c8, 0x3ffc56eda060ffb6,
			0x40198a100cd4f72a, 0x40269bb0d1654e5a,
		})
}

func TestGoldenSharedNoiseSourceSeed2024(t *testing.T) {
	// The WithNoiseSource path (experiments' shared seeded stream): two
	// mechanism calls consuming one *rand.Rand in call order.
	g := Grid(3)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 2
	}
	rng := rand.New(rand.NewSource(2024))
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithNoiseSource(rng))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pg.Release()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pg.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	assertBits(t, "shared/grid3/seed2024",
		[]float64{r1.Weights[0], r1.Weights[5], r2.Dist[1], r2.Dist[8]}, []uint64{
			0x4008e529ce929906, 0x3fed6ab603d447ec,
			0xc01b692fede07222, 0x402a96e8add641c4,
		})
}
