package dpgraph

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// indexModes are the index-building modes the property tests sweep
// (IndexOff is the reference each is compared against).
var indexModes = []QueryIndexMode{IndexAuto, IndexCH, IndexALT, IndexHL}

// indexDistEqual compares distances up to float summation order (an
// indexed answer may sum the same path's weights in different order).
func indexDistEqual(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9 || diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// sessionOracle materializes one release of the named kind from a
// fresh deterministic session and returns its oracle. Identical seeds
// give identical releases, so oracles from sessions differing only in
// WithQueryIndex must answer identically.
func sessionOracle(t testing.TB, kind string, g *Graph, w []float64, seed int64, mode QueryIndexMode) DistanceOracle {
	t.Helper()
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDeterministicSeed(seed), WithQueryIndex(mode))
	if err != nil {
		t.Fatal(err)
	}
	var oracle DistanceOracle
	switch kind {
	case "release":
		rel, err := pg.Release()
		if err != nil {
			t.Fatal(err)
		}
		oracle = rel.Oracle()
	case "treesssp":
		rel, err := pg.TreeSingleSource(0)
		if err != nil {
			t.Fatal(err)
		}
		oracle = rel.Oracle()
	case "treedist":
		rel, err := pg.TreeAllPairs()
		if err != nil {
			t.Fatal(err)
		}
		oracle = rel.Oracle()
	case "hierarchy":
		rel, err := pg.PathHierarchy(2)
		if err != nil {
			t.Fatal(err)
		}
		oracle = rel.Oracle()
	case "apsd":
		rel, err := pg.AllPairsDistances()
		if err != nil {
			t.Fatal(err)
		}
		oracle = rel.Oracle()
	default:
		t.Fatalf("unknown oracle kind %q", kind)
	}
	return oracle
}

// topologyFor builds the topology family each oracle kind requires.
func topologyFor(kind string, n int, rng *rand.Rand) *Graph {
	switch kind {
	case "treesssp", "treedist":
		return randomTestTree(n, rng)
	case "hierarchy":
		return PathGraph(n)
	default:
		g := randomTestTree(n, rng) // spanning tree keeps it connected-ish
		for q := 0; q < n/2; q++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		return g
	}
}

// randomTestTree attaches each vertex to a uniform earlier one.
func randomTestTree(n int, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v)
	}
	return g
}

// TestOracleIndexedQuickEquivalence is the randomized property test of
// the indexed serving path: for every oracle-bearing result type and
// every index mode, a session that differs only by WithQueryIndex
// answers every queried pair identically to the unindexed session.
func TestOracleIndexedQuickEquivalence(t *testing.T) {
	kinds := []string{"release", "treesssp", "treedist", "hierarchy", "apsd"}
	f := func(seed int64, a uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(a%30)
		for _, kind := range kinds {
			g := topologyFor(kind, n, rng)
			w := UniformRandomWeights(g, 0, 4, rng)
			base := sessionOracle(t, kind, g, w, seed, IndexOff)
			for _, mode := range indexModes {
				indexed := sessionOracle(t, kind, g, w, seed, mode)
				for q := 0; q < 25; q++ {
					s, u := rng.Intn(n), rng.Intn(n)
					want, err := base.Distance(s, u)
					if err != nil {
						return false
					}
					got, err := indexed.Distance(s, u)
					if err != nil {
						return false
					}
					if !indexDistEqual(got, want) {
						t.Logf("%s/%v: Distance(%d,%d) = %g, unindexed %g", kind, mode, s, u, got, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestOracleIndexedBatchMatchesPointQueries: the deduplicating batch
// path (repeated sources, repeated targets, repeated whole pairs) must
// agree with point queries, indexed or not.
func TestOracleIndexedBatchMatchesPointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := Grid(9)
	w := UniformRandomWeights(g, 0.5, 3, rng)
	n := g.N()
	pairs := make([]VertexPair, 0, 120)
	for i := 0; i < 40; i++ {
		p := VertexPair{S: rng.Intn(n), T: rng.Intn(n)}
		// Triplicate every pair so sources, targets, and whole pairs all
		// repeat within the batch.
		pairs = append(pairs, p, p, VertexPair{S: p.S, T: rng.Intn(n)})
	}
	for _, mode := range append([]QueryIndexMode{IndexOff}, indexModes...) {
		oracle := sessionOracle(t, "release", g, w, 7, mode)
		got, err := oracle.Distances(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pairs {
			want, err := oracle.Distance(p.S, p.T)
			if err != nil {
				t.Fatal(err)
			}
			if !indexDistEqual(got[i], want) {
				t.Fatalf("mode %v: batch[%d] = %g, point query %g", mode, i, got[i], want)
			}
		}
	}
	// Invalid pairs must fail without partial answers.
	oracle := sessionOracle(t, "release", g, w, 7, IndexCH)
	if _, err := oracle.Distances([]VertexPair{{S: 0, T: 1}, {S: -1, T: 3}}); err == nil {
		t.Fatal("batch with out-of-range pair: expected error")
	}
}

// TestOracleRepeatedSourceBatch drives the one-to-many sweep path: a
// batch whose every pair shares one source and whose distinct-target
// count far exceeds any MinSweepTargets threshold must agree with point
// queries for every index mode, including the unindexed reference.
func TestOracleRepeatedSourceBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := Grid(16) // 256 vertices: above the HL sweep threshold
	w := UniformRandomWeights(g, 0.5, 3, rng)
	n := g.N()
	pairs := make([]VertexPair, 0, 2*n)
	for v := 0; v < n; v++ {
		pairs = append(pairs, VertexPair{S: 3, T: v})
	}
	// A second, smaller source-run rides along so the grouping loop
	// handles mixed run sizes in one batch.
	for v := 0; v < 8; v++ {
		pairs = append(pairs, VertexPair{S: n - 1, T: v * 7 % n})
	}
	for _, mode := range append([]QueryIndexMode{IndexOff}, indexModes...) {
		oracle := sessionOracle(t, "release", g, w, 29, mode)
		got, err := oracle.Distances(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pairs {
			want, err := oracle.Distance(p.S, p.T)
			if err != nil {
				t.Fatal(err)
			}
			if !indexDistEqual(got[i], want) {
				t.Fatalf("mode %v: batch[%d] (%d,%d) = %g, point query %g", mode, i, p.S, p.T, got[i], want)
			}
		}
	}
}

// TestOracleIndexedConcurrent hammers one indexed oracle (index plus
// shared result cache) from many goroutines under -race.
func TestOracleIndexedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := Grid(8)
	w := UniformRandomWeights(g, 0.5, 2, rng)
	n := g.N()
	for _, mode := range []QueryIndexMode{IndexCH, IndexALT, IndexHL} {
		oracle := sessionOracle(t, "release", g, w, 11, mode)
		want := make([]float64, n)
		for v := 0; v < n; v++ {
			d, err := oracle.Distance(0, v)
			if err != nil {
				t.Fatal(err)
			}
			want[v] = d
		}
		var wg sync.WaitGroup
		for wk := 0; wk < 8; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					v := (i + wk*13) % n
					d, err := oracle.Distance(0, v)
					if err != nil {
						t.Error(err)
						return
					}
					if !indexDistEqual(d, want[v]) {
						t.Errorf("mode %v: concurrent Distance(0,%d) = %g, want %g", mode, v, d, want[v])
						return
					}
				}
			}(wk)
		}
		wg.Wait()
	}
}

// TestOracleIndexedSessionValidation: explicit index families reject
// directed topologies at session construction, IndexAuto accepts them
// (serving unindexed), and bad mode values are rejected by the option.
func TestOracleIndexedSessionValidation(t *testing.T) {
	dg := NewDirectedGraph(3)
	dg.AddEdge(0, 1)
	dg.AddEdge(1, 2)
	w := []float64{1, 1}
	for _, mode := range []QueryIndexMode{IndexCH, IndexALT, IndexHL} {
		if _, err := New(dg, PrivateWeights(w), WithQueryIndex(mode)); err == nil {
			t.Fatalf("WithQueryIndex(%v) on a directed topology: expected error", mode)
		}
	}
	pg, err := New(dg, PrivateWeights(w), WithQueryIndex(IndexAuto), WithDeterministicSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.Release()
	if err != nil {
		t.Fatal(err)
	}
	if d, err := rel.Oracle().Distance(0, 2); err != nil || math.IsInf(d, 1) {
		t.Fatalf("directed auto oracle Distance(0,2) = (%g, %v)", d, err)
	}
	if _, err := New(PathGraph(3), PrivateWeights(w), WithQueryIndex(QueryIndexMode(99))); err == nil {
		t.Fatal("invalid mode value: expected error")
	}
	// A result without session topology (e.g. rehydrated from JSON)
	// reports an error rather than panicking.
	rehydrated := &SyntheticGraph{Weights: []float64{1, 2}}
	if _, err := rehydrated.IndexedOracle(IndexCH); err == nil {
		t.Fatal("IndexedOracle on topology-less result: expected error")
	}
	// IndexedOracle with an explicit mode overrides the session default.
	pg2, err := New(Grid(4), PrivateWeights(UniformRandomWeights(Grid(4), 1, 2, rand.New(rand.NewSource(3)))), WithDeterministicSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := pg2.Release()
	if err != nil {
		t.Fatal(err)
	}
	forced, err := rel2.IndexedOracle(IndexCH)
	if err != nil {
		t.Fatal(err)
	}
	dflt := rel2.Oracle()
	for v := 0; v < forced.N(); v++ {
		a, err1 := forced.Distance(0, v)
		b, err2 := dflt.Distance(0, v)
		if err1 != nil || err2 != nil || !indexDistEqual(a, b) {
			t.Fatalf("IndexedOracle(ch) vs default: (%g,%v) vs (%g,%v)", a, err1, b, err2)
		}
	}
}
