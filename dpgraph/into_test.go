package dpgraph

import (
	"math/rand"
	"testing"
)

// TestOracleDistancesInto checks the allocation-free batch entry point:
// every oracle implements BatchOracle, DistancesInto matches Distances
// answer for answer (including repeated sources and duplicate targets,
// which exercise the sweep/dedup path), and the error contract covers
// mismatched buffers and invalid pairs.
func TestOracleDistancesInto(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	kinds := []string{"release", "treesssp", "apsd"}
	for _, kind := range kinds {
		for _, mode := range []QueryIndexMode{IndexOff, IndexCH, IndexHL} {
			g := topologyFor(kind, 24, rng)
			w := UniformRandomWeights(g, 0, 4, rng)
			oracle := sessionOracle(t, kind, g, w, 8, mode)
			bo, ok := oracle.(BatchOracle)
			if !ok {
				t.Fatalf("%s/%v oracle does not implement BatchOracle", kind, mode)
			}
			n := oracle.N()
			pairs := make([]VertexPair, 0, 96)
			for i := 0; i < 96; i++ {
				s := rng.Intn(n)
				if i%3 != 0 && len(pairs) > 0 {
					s = pairs[len(pairs)-1].S // repeated sources hit the run/sweep path
				}
				pairs = append(pairs, VertexPair{S: s, T: rng.Intn(n)})
			}
			want, err := oracle.Distances(pairs)
			if err != nil {
				t.Fatalf("%s/%v Distances: %v", kind, mode, err)
			}
			got := make([]float64, len(pairs))
			for i := range got {
				got[i] = -1
			}
			if err := bo.DistancesInto(pairs, got); err != nil {
				t.Fatalf("%s/%v DistancesInto: %v", kind, mode, err)
			}
			for i := range want {
				if !indexDistEqual(want[i], got[i]) {
					t.Fatalf("%s/%v pair %d: Distances=%g DistancesInto=%g", kind, mode, i, want[i], got[i])
				}
			}
			if err := bo.DistancesInto(pairs, got[:len(got)-1]); err == nil {
				t.Fatalf("%s/%v: short out slice accepted", kind, mode)
			}
			bad := []VertexPair{{S: 0, T: n}}
			if err := bo.DistancesInto(bad, make([]float64, 1)); err == nil {
				t.Fatalf("%s/%v: out-of-range pair accepted", kind, mode)
			}
		}
	}
}

// TestOracleDistancesIntoAllocs pins the zero-allocation contract of the
// synthetic batch path once its pooled scratch is warm.
func TestOracleDistancesIntoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is meaningless under -race")
	}
	rng := rand.New(rand.NewSource(9))
	g := topologyFor("release", 32, rng)
	w := UniformRandomWeights(g, 0, 4, rng)
	for _, mode := range []QueryIndexMode{IndexOff, IndexHL} {
		oracle := sessionOracle(t, "release", g, w, 9, mode)
		bo := oracle.(BatchOracle)
		n := oracle.N()
		pairs := make([]VertexPair, 64)
		for i := range pairs {
			pairs[i] = VertexPair{S: i % 4, T: (i*7 + 3) % n}
		}
		out := make([]float64, len(pairs))
		// Warm the pools (and, indexed, the result cache: steady state
		// for a cache-backed oracle means the keys already exist).
		for i := 0; i < 4; i++ {
			if err := bo.DistancesInto(pairs, out); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := bo.DistancesInto(pairs, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("mode %v: DistancesInto allocated %.1f times per batch, want 0", mode, allocs)
		}
	}
}
