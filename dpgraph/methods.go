package dpgraph

import (
	"fmt"

	"repro/internal/core"
)

// checkVertices validates vertex arguments before any budget is spent.
func (pg *PrivateGraph) checkVertices(vs ...int) error {
	for _, v := range vs {
		if v < 0 || v >= pg.g.N() {
			return fmt.Errorf("dpgraph: vertex %d out of range [0, %d)", v, pg.g.N())
		}
	}
	return nil
}

// Distance releases the s-t distance via the Laplace mechanism
// (Section 4 warm-up; sensitivity Scale). Cost: (epsilon, 0).
func (pg *PrivateGraph) Distance(s, t int) (*DistanceResult, error) {
	if err := pg.checkVertices(s, t); err != nil {
		return nil, err
	}
	var value float64
	rec, err := pg.exec("distance", true, func(o core.Options) error {
		var err error
		value, err = core.PrivateDistance(pg.g, pg.w, s, t, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &DistanceResult{Source: s, Target: t, Value: value}
	res.ReleaseInfo = pg.info(rec, pg.cfg.scale/pg.cfg.epsilon)
	return res, nil
}

// AllPairsDistances releases all V^2 pairwise distances by per-query
// composition (Section 4 baselines): basic composition when Delta is
// zero, advanced composition otherwise. Cost: (epsilon, delta).
func (pg *PrivateGraph) AllPairsDistances() (*APSDResult, error) {
	var rel *core.APSD
	rec, err := pg.exec("apsd", false, func(o core.Options) error {
		var err error
		rel, err = core.APSDComposition(pg.g, pg.w, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	// Query count mirrors core.APSDComposition: ordered pairs on
	// directed graphs, unordered otherwise.
	n := pg.g.N()
	queries := n * (n - 1) / 2
	if pg.g.Directed() {
		queries = n * (n - 1)
	}
	if queries < 1 {
		queries = 1
	}
	res := &APSDResult{n: n, queries: queries, apsd: rel}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res, nil
}

// CoveringAllPairs runs Algorithm 2 on an explicit k-covering Z with
// weight cap maxWeight: it releases the pairwise distances between
// covering vertices and answers every pair from its nearest covering
// vertices. Uses Theorem 4.5 (advanced composition) when Delta is
// positive, Theorem 4.6 (basic composition) otherwise.
// Cost: (epsilon, delta).
func (pg *PrivateGraph) CoveringAllPairs(Z []int, k int, maxWeight float64) (*APSDResult, error) {
	var rel *core.CoveringRelease
	rec, err := pg.exec("covering", false, func(o core.Options) error {
		var err error
		if o.Delta > 0 {
			rel, err = core.CoveringAPSD(pg.g, pg.w, Z, k, maxWeight, o)
		} else {
			rel, err = core.CoveringAPSDPure(pg.g, pg.w, Z, k, maxWeight, o)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &APSDResult{n: pg.g.N(), cov: rel, K: rel.K, CoveringSize: len(rel.Z)}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res, nil
}

// BoundedAllPairs releases all-pairs distances for weights bounded by
// maxWeight (Theorem 4.3): it picks the covering radius from V, the
// cap, and epsilon, builds the covering, and runs Algorithm 2.
// Cost: (epsilon, delta).
func (pg *PrivateGraph) BoundedAllPairs(maxWeight float64) (*APSDResult, error) {
	var rel *core.CoveringRelease
	rec, err := pg.exec("bounded", false, func(o core.Options) error {
		var err error
		rel, err = core.BoundedWeightAPSD(pg.g, pg.w, maxWeight, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &APSDResult{n: pg.g.N(), cov: rel, K: rel.K, CoveringSize: len(rel.Z)}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res, nil
}

// Release publishes an eps-DP synthetic weight vector (Section 4);
// every post-processing of it is private for free. Cost: (epsilon, 0).
func (pg *PrivateGraph) Release() (*SyntheticGraph, error) {
	var rel *core.ReleasedGraph
	rec, err := pg.exec("release", true, func(o core.Options) error {
		var err error
		rel, err = core.ReleaseGraph(pg.g, pg.w, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &SyntheticGraph{Weights: rel.Weights, g: pg.g, indexMode: pg.cfg.indexMode}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res, nil
}

// ShortestPaths runs Algorithm 3 (Theorem 5.5): one release answers a
// short path for every pair, with excess weight proportional to the hop
// count of the best path. Cost: (epsilon, 0).
func (pg *PrivateGraph) ShortestPaths() (*PathsResult, error) {
	var rel *core.PrivatePaths
	rec, err := pg.exec("path", true, func(o core.Options) error {
		var err error
		rel, err = core.PrivateShortestPaths(pg.g, pg.w, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &PathsResult{Shift: rel.Shift, pp: rel}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res, nil
}

// TreeSingleSource runs Algorithm 1 (Theorem 4.1) on a tree topology:
// distances from root to every vertex with polylog(V) error.
// Cost: (epsilon, 0).
func (pg *PrivateGraph) TreeSingleSource(root int) (*TreeSSSPResult, error) {
	if err := pg.checkVertices(root); err != nil {
		return nil, err
	}
	var rel *core.TreeSSSP
	rec, err := pg.exec("treesssp", true, func(o core.Options) error {
		var err error
		rel, err = core.TreeSingleSource(pg.g, pg.w, root, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	return pg.treeSSSPResult(rec, rel), nil
}

func (pg *PrivateGraph) treeSSSPResult(rec Receipt, rel *core.TreeSSSP) *TreeSSSPResult {
	res := &TreeSSSPResult{
		Root:     rel.Root,
		Dist:     rel.Dist,
		Levels:   rel.Levels,
		Released: rel.Released,
		g:        pg.g,
	}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res
}

// TreeAllPairs releases all-pairs distances on a tree topology
// (Theorem 4.2): one Algorithm 1 release plus the public LCA structure
// answers every pair. Cost: (epsilon, 0).
func (pg *PrivateGraph) TreeAllPairs() (*TreeAPSDResult, error) {
	var rel *core.TreeAPSD
	rec, err := pg.exec("treedist", true, func(o core.Options) error {
		var err error
		rel, err = core.TreeAllPairs(pg.g, pg.w, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &TreeAPSDResult{SSSP: pg.treeSSSPResult(rec, rel.SSSP), apsd: rel}
	res.ReleaseInfo = pg.info(rec, rel.SSSP.NoiseScale)
	return res, nil
}

// PathHierarchy releases the Appendix A hub hierarchy; the topology
// must be the path graph (edge i joining vertices i and i+1). Use base
// 2 for the paper's setting. Cost: (epsilon, 0).
func (pg *PrivateGraph) PathHierarchy(base int) (*HierarchyResult, error) {
	if err := pg.requirePathTopology(); err != nil {
		return nil, err
	}
	var rel *core.PathHubs
	rec, err := pg.exec("hierarchy", true, func(o core.Options) error {
		var err error
		rel, err = core.PathHierarchy(pg.w, base, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &HierarchyResult{Base: rel.Base, Levels: rel.Levels, hubs: rel}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res, nil
}

// requirePathTopology checks that edge i joins vertices i and i+1, the
// layout PathHierarchy's weight indexing assumes.
func (pg *PrivateGraph) requirePathTopology() error {
	if pg.g.M() != pg.g.N()-1 {
		return fmt.Errorf("dpgraph: PathHierarchy needs the path graph, got %d edges on %d vertices", pg.g.M(), pg.g.N())
	}
	for i := 0; i < pg.g.M(); i++ {
		e := pg.g.Edge(i)
		u, v := e.From, e.To
		if u > v {
			u, v = v, u
		}
		if u != i || v != i+1 {
			return fmt.Errorf("dpgraph: PathHierarchy needs the path graph (edge %d joins %d and %d)", i, e.From, e.To)
		}
	}
	return nil
}

// SingleSource releases the V-1 distances from one source on a general
// graph by composition (remark after Theorem 4.6).
// Cost: (epsilon, delta).
func (pg *PrivateGraph) SingleSource(source int) (*SSSPResult, error) {
	if err := pg.checkVertices(source); err != nil {
		return nil, err
	}
	var rel *core.SSSPRelease
	rec, err := pg.exec("sssp", false, func(o core.Options) error {
		var err error
		rel, err = core.SingleSourceComposition(pg.g, pg.w, source, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &SSSPResult{Source: rel.Source, Dist: rel.Dist}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res, nil
}

// MST releases an almost-minimum spanning tree (Theorem B.3).
// Cost: (epsilon, 0).
func (pg *PrivateGraph) MST() (*MSTResult, error) {
	var rel *core.MSTRelease
	rec, err := pg.exec("mst", true, func(o core.Options) error {
		var err error
		rel, err = core.PrivateMST(pg.g, pg.w, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &MSTResult{Edges: rel.Tree, ReleasedWeight: rel.ReleasedWeight, n: pg.g.N(), m: pg.g.M()}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res, nil
}

// MSTCost releases the minimum spanning tree's cost — a sensitivity-
// Scale scalar, so plain Laplace noise with no dependence on V.
// Cost: (epsilon, 0).
func (pg *PrivateGraph) MSTCost() (*CostResult, error) {
	var value float64
	rec, err := pg.exec("mstcost", true, func(o core.Options) error {
		var err error
		value, err = core.PrivateMSTCost(pg.g, pg.w, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &CostResult{Value: value}
	res.ReleaseInfo = pg.info(rec, pg.cfg.scale/pg.cfg.epsilon)
	return res, nil
}

// Matching releases an almost-minimum-weight perfect matching
// (Theorem B.6). Cost: (epsilon, 0).
func (pg *PrivateGraph) Matching() (*MatchingResult, error) {
	return pg.matching("matching", core.PrivateMatching)
}

// MaxMatching releases an almost-maximum-weight perfect matching
// (Appendix B.2). Cost: (epsilon, 0).
func (pg *PrivateGraph) MaxMatching() (*MatchingResult, error) {
	return pg.matching("maxmatching", core.PrivateMaxMatching)
}

func (pg *PrivateGraph) matching(name string, mech func(*Graph, []float64, core.Options) (*core.MatchingRelease, error)) (*MatchingResult, error) {
	var rel *core.MatchingRelease
	rec, err := pg.exec(name, true, func(o core.Options) error {
		var err error
		rel, err = mech(pg.g, pg.w, o)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &MatchingResult{Edges: rel.Matching, ReleasedWeight: rel.ReleasedWeight, n: pg.g.N(), m: pg.g.M()}
	res.ReleaseInfo = pg.info(rec, rel.NoiseScale)
	return res, nil
}
