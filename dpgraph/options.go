package dpgraph

import (
	"fmt"
	"math/rand"

	"repro/internal/dp"
)

// config carries the session settings accumulated by Options.
type config struct {
	epsilon float64
	delta   float64
	gamma   float64
	scale   float64
	budget  dp.PrivacyParams

	seeded     bool
	seed       int64
	sharedRand *rand.Rand
}

func defaultConfig() config {
	return config{
		epsilon: 1,
		delta:   0,
		gamma:   0.05,
		scale:   1,
		budget:  unlimited(),
	}
}

// Option configures a PrivateGraph at construction.
type Option func(*config) error

// WithEpsilon sets the privacy parameter epsilon charged by each
// release. Must be positive. Default 1.
func WithEpsilon(epsilon float64) Option {
	return func(c *config) error {
		if !(epsilon > 0) {
			return fmt.Errorf("dpgraph: epsilon must be positive, got %g", epsilon)
		}
		c.epsilon = epsilon
		return nil
	}
}

// WithDelta sets the approximate-DP parameter delta. Zero (the default)
// means pure DP; mechanisms documented as (eps, delta)-DP use it to
// calibrate noise by advanced composition.
func WithDelta(delta float64) Option {
	return func(c *config) error {
		if delta < 0 || delta >= 1 {
			return fmt.Errorf("dpgraph: delta must be in [0, 1), got %g", delta)
		}
		c.delta = delta
		return nil
	}
}

// WithGamma sets the failure probability used to size high-probability
// error bounds and Algorithm 3's shift. Default 0.05.
func WithGamma(gamma float64) Option {
	return func(c *config) error {
		if !(gamma > 0 && gamma < 1) {
			return fmt.Errorf("dpgraph: gamma must be in (0, 1), got %g", gamma)
		}
		c.gamma = gamma
		return nil
	}
}

// WithScale sets the l1 influence of a single individual on the weight
// vector (the paper's Section 1.2 scaling remark). Default 1.
func WithScale(scale float64) Option {
	return func(c *config) error {
		if !(scale > 0) {
			return fmt.Errorf("dpgraph: scale must be positive, got %g", scale)
		}
		c.scale = scale
		return nil
	}
}

// WithBudget caps the total (epsilon, delta) the session may spend
// across all releases under basic composition. Once a release would
// exceed it, mechanism calls fail with ErrBudgetExhausted and release
// nothing. Without this option the budget is unlimited (every release
// still appears in the receipts ledger).
func WithBudget(epsilon, delta float64) Option {
	return func(c *config) error {
		if epsilon < 0 || delta < 0 {
			return fmt.Errorf("dpgraph: budget must be nonnegative, got (%g, %g)", epsilon, delta)
		}
		c.budget = dp.PrivacyParams{Epsilon: epsilon, Delta: delta}
		return nil
	}
}

// WithNoiseSource supplies an explicit noise stream, e.g. an
// experiment's shared seeded *rand.Rand. The session serializes all
// sampling from it (and never parallelizes fills), so concurrent queries
// remain safe but releases no longer run in parallel — ConcurrentReleases
// reports false. Prefer WithDeterministicSeed unless the stream must be
// shared with other consumers.
func WithNoiseSource(rng *rand.Rand) Option {
	return func(c *config) error {
		if rng == nil {
			return fmt.Errorf("dpgraph: nil noise source")
		}
		c.sharedRand = rng
		c.seeded = false
		return nil
	}
}

// WithDeterministicSeed makes noise reproducible: each mechanism call
// draws from a child stream split off a root stream seeded with seed.
// A sequence of calls on one goroutine reproduces exactly across runs;
// releases run serially (ConcurrentReleases reports false) because draw
// order is part of the contract.
//
// Deterministic noise is predictable by anyone who knows the seed and
// therefore offers NO privacy; it exists for tests, benchmarks, and
// experiments. Production sessions should keep the crypto-grade default.
func WithDeterministicSeed(seed int64) Option {
	return func(c *config) error {
		c.seeded = true
		c.seed = seed
		c.sharedRand = nil
		return nil
	}
}
