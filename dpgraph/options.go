package dpgraph

import (
	"fmt"
	"math/rand" //dpvet:allow noiserand -- WithNoiseSource's public signature takes a caller-owned *rand.Rand; sampling stays inside dp.NoiseSource

	"repro/internal/dp"
	"repro/internal/graph/index"
)

// config carries the session settings accumulated by Options.
type config struct {
	epsilon float64
	delta   float64
	gamma   float64
	scale   float64
	budget  dp.PrivacyParams

	indexMode QueryIndexMode

	seeded     bool
	seed       int64
	sharedRand *rand.Rand
}

// DefaultGamma is the failure probability sessions use for error
// bounds when WithGamma is not given; consumers reporting bounds for a
// release whose spec left Gamma unset (the serving layer) evaluate at
// this same value.
const DefaultGamma = 0.05

func defaultConfig() config {
	return config{
		epsilon: 1,
		delta:   0,
		gamma:   DefaultGamma,
		scale:   1,
		budget:  unlimited(),
	}
}

// Option configures a PrivateGraph at construction.
type Option func(*config) error

// WithEpsilon sets the privacy parameter epsilon charged by each
// release. Must be positive. Default 1.
func WithEpsilon(epsilon float64) Option {
	return func(c *config) error {
		if !(epsilon > 0) {
			return fmt.Errorf("dpgraph: epsilon must be positive, got %g", epsilon)
		}
		c.epsilon = epsilon
		return nil
	}
}

// WithDelta sets the approximate-DP parameter delta. Zero (the default)
// means pure DP; mechanisms documented as (eps, delta)-DP use it to
// calibrate noise by advanced composition.
func WithDelta(delta float64) Option {
	return func(c *config) error {
		if delta < 0 || delta >= 1 {
			return fmt.Errorf("dpgraph: delta must be in [0, 1), got %g", delta)
		}
		c.delta = delta
		return nil
	}
}

// WithGamma sets the failure probability used to size high-probability
// error bounds and Algorithm 3's shift. Default 0.05.
func WithGamma(gamma float64) Option {
	return func(c *config) error {
		if !(gamma > 0 && gamma < 1) {
			return fmt.Errorf("dpgraph: gamma must be in (0, 1), got %g", gamma)
		}
		c.gamma = gamma
		return nil
	}
}

// WithScale sets the l1 influence of a single individual on the weight
// vector (the paper's Section 1.2 scaling remark). Default 1.
func WithScale(scale float64) Option {
	return func(c *config) error {
		if !(scale > 0) {
			return fmt.Errorf("dpgraph: scale must be positive, got %g", scale)
		}
		c.scale = scale
		return nil
	}
}

// WithBudget caps the total (epsilon, delta) the session may spend
// across all releases under basic composition. Once a release would
// exceed it, mechanism calls fail with ErrBudgetExhausted and release
// nothing. Without this option the budget is unlimited (every release
// still appears in the receipts ledger).
func WithBudget(epsilon, delta float64) Option {
	return func(c *config) error {
		if epsilon < 0 || delta < 0 {
			return fmt.Errorf("dpgraph: budget must be nonnegative, got (%g, %g)", epsilon, delta)
		}
		c.budget = dp.PrivacyParams{Epsilon: epsilon, Delta: delta}
		return nil
	}
}

// QueryIndexMode selects the query-speedup index a session's
// searching oracles build over materialized releases (see
// WithQueryIndex). Indexing is pure post-processing of the released
// weights: it never touches the private inputs, charges no budget, and
// changes no answer — only how fast the answer is found.
type QueryIndexMode int

const (
	// IndexOff (the default) serves synthetic-graph oracle queries by
	// plain early-exit Dijkstra.
	IndexOff QueryIndexMode = iota
	// IndexAuto builds a contraction hierarchy, falling back to the
	// landmark index when contraction degenerates and to unindexed
	// serving on topologies no index family supports (directed graphs).
	IndexAuto
	// IndexCH forces a contraction hierarchy.
	IndexCH
	// IndexALT forces the ALT landmark A* index.
	IndexALT
	// IndexHL forces hub labels computed from the contraction order:
	// point queries become one linear label merge, and repeated-source
	// batches run a single one-to-all sweep over the hierarchy.
	IndexHL
)

// String returns the CLI spelling of the mode (off, auto, ch, alt, hl).
func (m QueryIndexMode) String() string {
	switch m {
	case IndexOff:
		return "off"
	case IndexAuto:
		return "auto"
	case IndexCH:
		return "ch"
	case IndexALT:
		return "alt"
	case IndexHL:
		return "hl"
	}
	return fmt.Sprintf("QueryIndexMode(%d)", int(m))
}

// indexMode maps the public mode onto the internal engine's.
func (m QueryIndexMode) indexMode() index.Mode {
	switch m {
	case IndexAuto:
		return index.Auto
	case IndexCH:
		return index.CH
	case IndexALT:
		return index.ALT
	case IndexHL:
		return index.HL
	}
	return index.Off
}

// ParseQueryIndexMode maps the CLI spellings (off, auto, ch, alt, hl)
// onto QueryIndexMode.
func ParseQueryIndexMode(s string) (QueryIndexMode, error) {
	switch s {
	case "off":
		return IndexOff, nil
	case "auto":
		return IndexAuto, nil
	case "ch":
		return IndexCH, nil
	case "alt":
		return IndexALT, nil
	case "hl":
		return IndexHL, nil
	}
	return IndexOff, fmt.Errorf("dpgraph: unknown query-index mode %q (want off, auto, ch, alt, or hl)", s)
}

// WithQueryIndex makes the session's searching oracles (the
// synthetic-graph oracles returned by SyntheticGraph.Oracle) build a
// precomputed speedup index over the released weights, once per
// release, instead of running a full Dijkstra per query. Lookup-backed
// oracles (tree, hierarchy, table) are O(1)-ish already and ignore the
// mode. Indexed oracles additionally share a lock-striped s-t result
// cache, so repeated pairs are answered without any search at all.
//
// IndexCH, IndexALT, and IndexHL require an undirected topology
// (rejected at New otherwise); IndexAuto serves directed topologies
// unindexed. IndexAuto upgrades to hub labels automatically when the
// label build fits its memory guard, so IndexHL is only needed to force
// labels past the guard. Default IndexOff.
func WithQueryIndex(mode QueryIndexMode) Option {
	return func(c *config) error {
		switch mode {
		case IndexOff, IndexAuto, IndexCH, IndexALT, IndexHL:
		default:
			return fmt.Errorf("dpgraph: invalid query-index mode %d", int(mode))
		}
		c.indexMode = mode
		return nil
	}
}

// WithNoiseSource supplies an explicit noise stream, e.g. an
// experiment's shared seeded *rand.Rand. The session serializes all
// sampling from it (and never parallelizes fills), so concurrent queries
// remain safe but releases no longer run in parallel — ConcurrentReleases
// reports false. Prefer WithDeterministicSeed unless the stream must be
// shared with other consumers.
func WithNoiseSource(rng *rand.Rand) Option {
	return func(c *config) error {
		if rng == nil {
			return fmt.Errorf("dpgraph: nil noise source")
		}
		c.sharedRand = rng
		c.seeded = false
		return nil
	}
}

// WithDeterministicSeed makes noise reproducible: each mechanism call
// draws from a child stream split off a root stream seeded with seed.
// A sequence of calls on one goroutine reproduces exactly across runs;
// releases run serially (ConcurrentReleases reports false) because draw
// order is part of the contract.
//
// Deterministic noise is predictable by anyone who knows the seed and
// therefore offers NO privacy; it exists for tests, benchmarks, and
// experiments. Production sessions should keep the crypto-grade default.
func WithDeterministicSeed(seed int64) Option {
	return func(c *config) error {
		c.seeded = true
		c.seed = seed
		c.sharedRand = nil
		return nil
	}
}
