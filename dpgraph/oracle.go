package dpgraph

import (
	"fmt"

	"repro/internal/graph"
)

// VertexPair is one (source, target) distance query for batch answering.
type VertexPair struct {
	S int `json:"s"`
	T int `json:"t"`
}

// DistanceOracle answers unboundedly many s-t distance queries from one
// materialized differentially private release. Constructing the release
// is the only step that touches the session accountant; every oracle
// query afterwards is pure post-processing — it charges zero budget,
// appends no receipts, and never contacts the private weights again.
//
// Oracles are safe for concurrent use by many goroutines, and the
// lookup-backed oracles (tree, hierarchy, all-pairs tables) allocate
// nothing per query in steady state.
//
// Exactness: an oracle's answers carry exactly the error of the release
// it was built from. Tree, hierarchy, and composition-table oracles are
// bounded-error (Bound gives the high-probability additive bound);
// covering-table oracles additionally carry the 2·K·MaxWeight assignment
// bias; synthetic-graph oracles answer exact shortest-path queries over
// the noisy weights, so a k-hop answer errs by at most k times the
// per-edge noise bound.
type DistanceOracle interface {
	// Distance returns the released estimate of the s-t distance. It is
	// zero when s == t and an error when either endpoint is out of range;
	// +Inf marks pairs the public topology disconnects.
	Distance(s, t int) (float64, error)
	// Distances answers a batch of queries, out[i] answering pairs[i].
	// Oracles that search (synthetic graphs) group the batch by source so
	// shared work is paid once.
	Distances(pairs []VertexPair) ([]float64, error)
	// Bound returns an additive error bound on any single answered
	// distance, holding except with probability gamma.
	Bound(gamma float64) float64
	// N returns the number of vertices the oracle serves; valid queries
	// are pairs in [0, N).
	N() int
}

// checkOracleVertices validates query endpoints against the oracle's
// vertex range.
func checkOracleVertices(n, s, t int) error {
	if s < 0 || s >= n || t < 0 || t >= n {
		return fmt.Errorf("dpgraph: oracle query (%d, %d) out of range [0, %d)", s, t, n)
	}
	return nil
}

// batchDistances is the generic batch implementation: one Distance call
// per pair, failing fast on the first invalid pair.
func batchDistances(o DistanceOracle, pairs []VertexPair) ([]float64, error) {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		d, err := o.Distance(p.S, p.T)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// lookupOracle adapts any O(1)-ish released lookup structure (tree SSSP +
// LCA, path hub hierarchy, all-pairs tables) to the DistanceOracle
// interface. The query closure is bound at construction; queries perform
// no allocation.
type lookupOracle struct {
	n     int
	query func(s, t int) float64
	bound func(gamma float64) float64
}

func (o *lookupOracle) N() int { return o.n }

func (o *lookupOracle) Distance(s, t int) (float64, error) {
	if err := checkOracleVertices(o.n, s, t); err != nil {
		return 0, err
	}
	if s == t {
		return 0, nil
	}
	return o.query(s, t), nil
}

func (o *lookupOracle) Distances(pairs []VertexPair) ([]float64, error) {
	return batchDistances(o, pairs)
}

func (o *lookupOracle) Bound(gamma float64) float64 { return o.bound(gamma) }

// syntheticOracle answers queries by Dijkstra over a released (clamped)
// weight vector, using the pooled zero-alloc engine in internal/graph.
// The weights were clamped nonnegative at construction, so queries take
// the trusted engine entry points and skip the O(E) validation scan.
type syntheticOracle struct {
	g     *graph.Graph
	w     []float64 // released weights clamped to [0, +Inf)
	bound func(gamma float64) float64
}

func (o *syntheticOracle) N() int { return o.g.N() }

func (o *syntheticOracle) Distance(s, t int) (float64, error) {
	if err := checkOracleVertices(o.g.N(), s, t); err != nil {
		return 0, err
	}
	return graph.QueryDistanceTrusted(o.g, o.w, s, t)
}

// Distances groups the batch by source so each distinct source pays one
// early-exit multi-target Dijkstra, however many pairs share it.
func (o *syntheticOracle) Distances(pairs []VertexPair) ([]float64, error) {
	n := o.g.N()
	for _, p := range pairs {
		if err := checkOracleVertices(n, p.S, p.T); err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(pairs))
	bySource := make(map[int][]int)
	for i, p := range pairs {
		bySource[p.S] = append(bySource[p.S], i)
	}
	var targets []int
	var buf []float64
	for s, idxs := range bySource {
		targets = targets[:0]
		for _, i := range idxs {
			targets = append(targets, pairs[i].T)
		}
		if cap(buf) < len(targets) {
			buf = make([]float64, len(targets))
		}
		buf = buf[:len(targets)]
		if err := graph.QueryDistancesFromTrusted(o.g, o.w, s, targets, buf); err != nil {
			return nil, err
		}
		for j, i := range idxs {
			out[i] = buf[j]
		}
	}
	return out, nil
}

func (o *syntheticOracle) Bound(gamma float64) float64 { return o.bound(gamma) }
