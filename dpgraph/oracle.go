package dpgraph

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/graph/index"
)

// VertexPair is one (source, target) distance query for batch answering.
type VertexPair struct {
	S int `json:"s"`
	T int `json:"t"`
}

// DistanceOracle answers unboundedly many s-t distance queries from one
// materialized differentially private release. Constructing the release
// is the only step that touches the session accountant; every oracle
// query afterwards is pure post-processing — it charges zero budget,
// appends no receipts, and never contacts the private weights again.
//
// Oracles are safe for concurrent use by many goroutines, and the
// lookup-backed oracles (tree, hierarchy, all-pairs tables) allocate
// nothing per query in steady state.
//
// Exactness: an oracle's answers carry exactly the error of the release
// it was built from. Tree, hierarchy, and composition-table oracles are
// bounded-error (Bound gives the high-probability additive bound);
// covering-table oracles additionally carry the 2·K·MaxWeight assignment
// bias; synthetic-graph oracles answer exact shortest-path queries over
// the noisy weights, so a k-hop answer errs by at most k times the
// per-edge noise bound.
type DistanceOracle interface {
	// Distance returns the released estimate of the s-t distance. It is
	// zero when s == t and an error when either endpoint is out of range;
	// +Inf marks pairs the public topology disconnects.
	Distance(s, t int) (float64, error)
	// Distances answers a batch of queries, out[i] answering pairs[i].
	// Oracles that search (synthetic graphs) group the batch by source so
	// shared work is paid once.
	Distances(pairs []VertexPair) ([]float64, error)
	// Bound returns an additive error bound on any single answered
	// distance, holding except with probability gamma.
	Bound(gamma float64) float64
	// N returns the number of vertices the oracle serves; valid queries
	// are pairs in [0, N).
	N() int
}

// BatchOracle is the allocation-free batch entry point. All oracles
// returned by this package implement it; callers that serve high query
// rates (the HTTP daemon, the sweep coalescer) use DistancesInto to
// answer batches into buffers they own and reuse, so the steady-state
// query path performs no heap allocation on either side of the
// interface.
type BatchOracle interface {
	DistanceOracle
	// DistancesInto answers pairs[i] into out[i]. out must have exactly
	// len(pairs) elements; the call allocates nothing in steady state.
	DistancesInto(pairs []VertexPair, out []float64) error
}

// checkOracleVertices validates query endpoints against the oracle's
// vertex range.
func checkOracleVertices(n, s, t int) error {
	if s < 0 || s >= n || t < 0 || t >= n {
		return fmt.Errorf("dpgraph: oracle query (%d, %d) out of range [0, %d)", s, t, n)
	}
	return nil
}

// batchDistancesInto is the generic batch implementation: one Distance
// call per pair, failing fast on the first invalid pair.
func batchDistancesInto(o DistanceOracle, pairs []VertexPair, out []float64) error {
	if len(out) != len(pairs) {
		return fmt.Errorf("dpgraph: DistancesInto: %d result slots for %d pairs", len(out), len(pairs))
	}
	for i, p := range pairs {
		d, err := o.Distance(p.S, p.T)
		if err != nil {
			return err
		}
		out[i] = d
	}
	return nil
}

// lookupOracle adapts any O(1)-ish released lookup structure (tree SSSP +
// LCA, path hub hierarchy, all-pairs tables) to the DistanceOracle
// interface. The query closure is bound at construction; queries perform
// no allocation.
type lookupOracle struct {
	n     int
	query func(s, t int) float64
	bound func(gamma float64) float64
}

func (o *lookupOracle) N() int { return o.n }

func (o *lookupOracle) Distance(s, t int) (float64, error) {
	if err := checkOracleVertices(o.n, s, t); err != nil {
		return 0, err
	}
	if s == t {
		return 0, nil
	}
	return o.query(s, t), nil
}

func (o *lookupOracle) Distances(pairs []VertexPair) ([]float64, error) {
	out := make([]float64, len(pairs))
	if err := o.DistancesInto(pairs, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (o *lookupOracle) DistancesInto(pairs []VertexPair, out []float64) error {
	return batchDistancesInto(o, pairs, out)
}

func (o *lookupOracle) Bound(gamma float64) float64 { return o.bound(gamma) }

// syntheticOracle answers queries over a released (clamped) weight
// vector — by the pooled zero-alloc Dijkstra engine in internal/graph,
// or, when the session requested a query index, through a precomputed
// contraction-hierarchy/landmark structure plus a sharded s-t result
// cache. The weights were clamped nonnegative at construction, so the
// unindexed path takes the trusted engine entry points and skips the
// O(E) validation scan.
type syntheticOracle struct {
	g     *graph.Graph
	w     []float64 // released weights clamped to [0, +Inf)
	bound func(gamma float64) float64

	// idx is nil for unindexed serving; cache is non-nil iff idx is.
	idx   index.Index
	cache *index.PairCache
}

func (o *syntheticOracle) N() int { return o.g.N() }

func (o *syntheticOracle) Distance(s, t int) (float64, error) {
	if err := checkOracleVertices(o.g.N(), s, t); err != nil {
		return 0, err
	}
	if o.idx != nil {
		return o.indexedDistance(s, t), nil
	}
	return graph.QueryDistanceTrusted(o.g, o.w, s, t)
}

// indexedDistance serves one validated pair from the result cache,
// falling through to the index on a miss. Indexes exist only for
// undirected topologies, so both orientations share one cache entry.
func (o *syntheticOracle) indexedDistance(s, t int) float64 {
	if s == t {
		return 0
	}
	if s > t {
		s, t = t, s
	}
	if d, ok := o.cache.Get(s, t); ok {
		return d
	}
	d := o.idx.Distance(s, t)
	o.cache.Put(s, t, d)
	return d
}

// pairSorter orders a batch's index permutation by (source, target). It
// is a concrete sort.Interface so the batch path can sort through a
// pooled value without the closure allocation sort.Slice would cost.
type pairSorter struct {
	order []int
	pairs []VertexPair
}

func (ps *pairSorter) Len() int      { return len(ps.order) }
func (ps *pairSorter) Swap(i, j int) { ps.order[i], ps.order[j] = ps.order[j], ps.order[i] }
func (ps *pairSorter) Less(i, j int) bool {
	pa, pb := ps.pairs[ps.order[i]], ps.pairs[ps.order[j]]
	if pa.S != pb.S {
		return pa.S < pb.S
	}
	return pa.T < pb.T
}

// batchScratch is the reusable workspace of one synthetic-oracle batch:
// the (source, target) permutation, the per-run deduplicated target
// list, and the per-run result buffer. Pooled so steady-state batches
// allocate nothing.
type batchScratch struct {
	sorter  pairSorter
	targets []int
	buf     []float64
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// Distances answers a batch into a fresh slice; see DistancesInto.
func (o *syntheticOracle) Distances(pairs []VertexPair) ([]float64, error) {
	out := make([]float64, len(pairs))
	if err := o.DistancesInto(pairs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DistancesInto answers a batch with shared work paid once: the batch is
// ordered by (source, target) so each distinct source's deduplicated
// targets are answered together. Unindexed, a source-run costs one
// early-exit multi-target Dijkstra. Indexed, small runs go through the
// per-pair index plus the result cache; once a run's distinct-target
// count reaches the index's own break-even (OneToAll.MinSweepTargets),
// the whole run is answered by a single PHAST one-to-all sweep over the
// hierarchy instead of per-pair searches. Indexes without a sweep (ALT)
// always take the per-pair path.
func (o *syntheticOracle) DistancesInto(pairs []VertexPair, out []float64) error {
	if len(out) != len(pairs) {
		return fmt.Errorf("dpgraph: DistancesInto: %d result slots for %d pairs", len(out), len(pairs))
	}
	n := o.g.N()
	for _, p := range pairs {
		if err := checkOracleVertices(n, p.S, p.T); err != nil {
			return err
		}
	}
	sweeper, canSweep := o.idx.(index.OneToAll)
	if o.idx != nil && !canSweep {
		for i, p := range pairs {
			out[i] = o.indexedDistance(p.S, p.T)
		}
		return nil
	}
	ws := batchScratchPool.Get().(*batchScratch)
	order := ws.sorter.order[:0]
	for i := range pairs {
		order = append(order, i)
	}
	ws.sorter.order, ws.sorter.pairs = order, pairs
	sort.Sort(&ws.sorter)
	minSweep := 0
	if canSweep {
		minSweep = sweeper.MinSweepTargets()
	}
	targets := ws.targets
	buf := ws.buf
	var retErr error
	for lo := 0; lo < len(order); {
		s := pairs[order[lo]].S
		hi := lo
		for hi < len(order) && pairs[order[hi]].S == s {
			hi++
		}
		// Targets arrive sorted within the run; collapse duplicates.
		targets = targets[:0]
		for k := lo; k < hi; k++ {
			t := pairs[order[k]].T
			if len(targets) == 0 || targets[len(targets)-1] != t {
				targets = append(targets, t)
			}
		}
		if cap(buf) < len(targets) {
			buf = make([]float64, len(targets))
		}
		buf = buf[:len(targets)]
		switch {
		case canSweep && len(targets) >= minSweep:
			sweeper.DistancesFrom(s, targets, buf)
		case o.idx != nil:
			for j, t := range targets {
				buf[j] = o.indexedDistance(s, t)
			}
		default:
			retErr = graph.QueryDistancesFromTrusted(o.g, o.w, s, targets, buf)
		}
		if retErr != nil {
			break
		}
		ti := 0
		for k := lo; k < hi; k++ {
			for targets[ti] != pairs[order[k]].T {
				ti++
			}
			out[order[k]] = buf[ti]
		}
		lo = hi
	}
	// Drop the caller's pairs before pooling so the workspace retains
	// only its own buffers.
	ws.sorter.pairs = nil
	ws.targets, ws.buf = targets, buf
	batchScratchPool.Put(ws)
	return retErr
}

// MinSweepTargets reports the break-even batch width of the oracle's
// one-to-all sweep — the smallest number of distinct same-source targets
// the index answers faster in one linear pass than per pair. It is 0
// when the oracle has no sweep (unindexed or ALT serving), which callers
// such as the serving layer's coalescer read as "do not coalesce".
func (o *syntheticOracle) MinSweepTargets() int {
	if sweeper, ok := o.idx.(index.OneToAll); ok {
		return sweeper.MinSweepTargets()
	}
	return 0
}

func (o *syntheticOracle) Bound(gamma float64) float64 { return o.bound(gamma) }

// CacheStats reports the result-cache hit/miss counters of an indexed
// oracle; ok is false on the unindexed path, which has no cache. The
// serving layer reads these for its /metrics endpoint.
func (o *syntheticOracle) CacheStats() (hits, misses uint64, ok bool) {
	if o.cache == nil {
		return 0, 0, false
	}
	hits, misses = o.cache.Stats()
	return hits, misses, true
}
