package dpgraph

import (
	"math"
	"sync"
	"testing"

	"repro/internal/graph"
)

// oracleFixtures materializes one oracle per release family, each from
// its own deterministic session, returning (name, oracle) pairs.
func oracleFixtures(t *testing.T) map[string]DistanceOracle {
	t.Helper()
	grid := Grid(5)
	gw := make([]float64, grid.M())
	for i := range gw {
		gw[i] = 1
	}
	tree := BalancedBinaryTree(31)
	tw := make([]float64, tree.M())
	for i := range tw {
		tw[i] = 2
	}
	path := PathGraph(33)
	pw := make([]float64, path.M())
	for i := range pw {
		pw[i] = 1
	}
	session := func(g *Graph, w []float64, opts ...Option) *PrivateGraph {
		t.Helper()
		opts = append([]Option{WithEpsilon(1), WithDeterministicSeed(7)}, opts...)
		pg, err := New(g, PrivateWeights(w), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return pg
	}

	out := map[string]DistanceOracle{}

	syn, err := session(grid, gw).Release()
	if err != nil {
		t.Fatal(err)
	}
	out["synthetic"] = syn.Oracle()

	sssp, err := session(tree, tw).TreeSingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	out["treesssp"] = sssp.Oracle()

	tap, err := session(tree, tw).TreeAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	out["treeapsd"] = tap.Oracle()

	hier, err := session(path, pw).PathHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	out["hierarchy"] = hier.Oracle()

	apsd, err := session(grid, gw, WithDelta(1e-6)).AllPairsDistances()
	if err != nil {
		t.Fatal(err)
	}
	out["apsd"] = apsd.Oracle()

	cov, err := session(grid, gw).CoveringAllPairs([]int{0, 4, 20, 24, 12}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	out["covering"] = cov.Oracle()

	bounded, err := session(grid, gw, WithDelta(1e-6)).BoundedAllPairs(1)
	if err != nil {
		t.Fatal(err)
	}
	out["bounded"] = bounded.Oracle()

	return out
}

// TestOracleEdgeCases checks out-of-range and same-vertex queries on
// every oracle family.
func TestOracleEdgeCases(t *testing.T) {
	for name, o := range oracleFixtures(t) {
		t.Run(name, func(t *testing.T) {
			for _, q := range [][2]int{{-1, 0}, {0, -1}, {o.N(), 0}, {0, o.N()}, {-3, o.N() + 5}} {
				if _, err := o.Distance(q[0], q[1]); err == nil {
					t.Errorf("Distance(%d, %d) accepted out-of-range query", q[0], q[1])
				}
				if _, err := o.Distances([]VertexPair{{S: q[0], T: q[1]}}); err == nil {
					t.Errorf("Distances(%d, %d) accepted out-of-range query", q[0], q[1])
				}
			}
			for _, v := range []int{0, o.N() / 2, o.N() - 1} {
				d, err := o.Distance(v, v)
				if err != nil {
					t.Fatalf("Distance(%d, %d): %v", v, v, err)
				}
				if d != 0 {
					t.Errorf("Distance(%d, %d) = %g, want 0", v, v, d)
				}
			}
			if b := o.Bound(0.05); !(b >= 0) || math.IsNaN(b) {
				t.Errorf("Bound(0.05) = %g", b)
			}
		})
	}
}

// TestOracleBatchMatchesPointQueries checks Distances against Distance
// on every family (the synthetic oracle batches by source internally).
func TestOracleBatchMatchesPointQueries(t *testing.T) {
	for name, o := range oracleFixtures(t) {
		t.Run(name, func(t *testing.T) {
			n := o.N()
			var pairs []VertexPair
			for i := 0; i < 25; i++ {
				pairs = append(pairs, VertexPair{S: (i * 7) % n, T: (i*3 + 1) % n})
			}
			batch, err := o.Distances(pairs)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pairs {
				want, err := o.Distance(p.S, p.T)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(batch[i]-want) > 1e-9 {
					t.Errorf("pair %v: batch %g, point %g", p, batch[i], want)
				}
			}
		})
	}
}

// TestOracleChargesZeroBudget is the release-once/query-many acceptance
// check: after construction, 10k oracle queries leave the session's
// spent budget and receipts ledger exactly as the single release did.
func TestOracleChargesZeroBudget(t *testing.T) {
	g := Grid(5)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithBudget(2, 0), WithDeterministicSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	syn, err := pg.Release()
	if err != nil {
		t.Fatal(err)
	}
	oracle := syn.Oracle()
	epsBefore, deltaBefore := pg.Spent()
	receiptsBefore := len(pg.Receipts())
	n := g.N()
	for i := 0; i < 10000; i++ {
		if _, err := oracle.Distance(i%n, (i*13+5)%n); err != nil {
			t.Fatal(err)
		}
	}
	epsAfter, deltaAfter := pg.Spent()
	if epsBefore != epsAfter || deltaBefore != deltaAfter {
		t.Fatalf("oracle queries changed spent budget: (%g, %g) -> (%g, %g)",
			epsBefore, deltaBefore, epsAfter, deltaAfter)
	}
	if got := len(pg.Receipts()); got != receiptsBefore {
		t.Fatalf("oracle queries appended receipts: %d -> %d", receiptsBefore, got)
	}
	if receiptsBefore != 1 {
		t.Fatalf("expected exactly the release receipt, got %d", receiptsBefore)
	}
}

// TestOracleAccuracy sanity-checks each bounded-error oracle against the
// exact distance within its reported bound (deterministic noise).
func TestOracleAccuracy(t *testing.T) {
	tree := BalancedBinaryTree(63)
	w := make([]float64, tree.M())
	for i := range w {
		w[i] = 3
	}
	pg, err := New(tree, PrivateWeights(w), WithEpsilon(4), WithDeterministicSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.TreeAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	oracle := rel.Oracle()
	bound := oracle.Bound(1e-6) // generous gamma: failure vanishingly unlikely
	for x := 0; x < tree.N(); x += 5 {
		for y := 0; y < tree.N(); y += 7 {
			got, err := oracle.Distance(x, y)
			if err != nil {
				t.Fatal(err)
			}
			want := rel.Distance(x, y)
			if got != want {
				t.Fatalf("oracle disagrees with release: (%d,%d) %g vs %g", x, y, got, want)
			}
			if math.Abs(got-exactTreeDistance(t, tree, w, x, y)) > bound {
				t.Fatalf("oracle (%d,%d) off by more than bound %g", x, y, bound)
			}
		}
	}
}

func exactTreeDistance(t *testing.T, g *Graph, w []float64, x, y int) float64 {
	t.Helper()
	d, err := graph.Distance(g, w, x, y)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestOracleConcurrentWithSession hammers one oracle from many
// goroutines while the parent session keeps charging budget on other
// mechanisms; run under -race this is the goroutine-safety check for
// the release-once/query-many split.
func TestOracleConcurrentWithSession(t *testing.T) {
	g := Grid(6)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1
	}
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDeterministicSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	syn, err := pg.Release()
	if err != nil {
		t.Fatal(err)
	}
	oracle := syn.Oracle()
	tap, err := New(BalancedBinaryTree(31), PrivateWeights(make([]float64, 30)), WithEpsilon(1), WithDeterministicSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	treeRel, err := tap.TreeAllPairs()
	if err != nil {
		t.Fatal(err)
	}
	treeOracle := treeRel.Oracle()

	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			n := oracle.N()
			tn := treeOracle.N()
			for i := 0; i < 300; i++ {
				if _, err := oracle.Distance((seed+i)%n, (seed*5+i*3)%n); err != nil {
					t.Error(err)
					return
				}
				if _, err := treeOracle.Distance((seed*3+i)%tn, (seed+i*7)%tn); err != nil {
					t.Error(err)
					return
				}
			}
		}(worker)
	}
	// The parent session keeps releasing (charging budget) concurrently
	// with the oracle readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := pg.Distance(i%g.N(), (i+9)%g.N()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := len(pg.Receipts()); got != 21 {
		t.Fatalf("expected 21 receipts (1 release + 20 distances), got %d", got)
	}
}
