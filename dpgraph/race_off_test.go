//go:build !race

package dpgraph

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
