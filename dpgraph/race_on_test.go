//go:build race

package dpgraph

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because sync.Pool does not cache
// there and instrumentation itself allocates.
const raceEnabled = true
