package dpgraph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentMixedQueries hammers one session from many goroutines
// with a mix of mechanisms (run under -race in CI). Every release must
// either succeed or fail with a budget error; afterwards the ledger must
// exactly reflect the successes.
func TestConcurrentMixedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := Grid(5)
	w := UniformRandomWeights(g, 1, 5, rng)
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithBudget(1000, 0))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				var err error
				switch (i + j) % 4 {
				case 0:
					var res *DistanceResult
					res, err = pg.Distance(i%g.N(), g.N()-1-j%g.N())
					if err == nil {
						res.Bound(0.05)
					}
				case 1:
					var res *PathsResult
					res, err = pg.ShortestPaths()
					if err == nil {
						_, err = res.Path(0, g.N()-1)
					}
				case 2:
					var res *SyntheticGraph
					res, err = pg.Release()
					if err == nil {
						_, err = res.Distance(0, g.N()-1)
					}
				case 3:
					var res *MSTResult
					res, err = pg.MST()
					if err == nil {
						res.Bound(0.05)
					}
				}
				if err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query failed: %v", err)
	}
	recs := pg.Receipts()
	if len(recs) != goroutines*perG {
		t.Errorf("%d receipts for %d successful releases", len(recs), goroutines*perG)
	}
	eps, _ := pg.Spent()
	if eps != float64(goroutines*perG) {
		t.Errorf("spent %g, want %d", eps, goroutines*perG)
	}
}

// TestConcurrentBudgetNeverOverspends races 16 goroutines at a budget
// with room for only 10 releases and checks the accountant admits
// exactly 10.
func TestConcurrentBudgetNeverOverspends(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := Grid(4)
	w := UniformRandomWeights(g, 1, 5, rng)
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithBudget(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pg.Distance(0, 15); err == nil {
				mu.Lock()
				succeeded++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if succeeded != 10 {
		t.Errorf("%d releases admitted under a 10-release budget", succeeded)
	}
	if eps, _ := pg.Spent(); eps != 10 {
		t.Errorf("spent %g", eps)
	}
	if len(pg.Receipts()) != 10 {
		t.Errorf("%d receipts", len(pg.Receipts()))
	}
}

// TestConcurrentSharedResultQueries checks post-processing queries on
// one released result are race-free (the PathsResult tree cache is the
// only lazily built structure).
func TestConcurrentSharedResultQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := Grid(5)
	w := UniformRandomWeights(g, 1, 5, rng)
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := pg.ShortestPaths()
	if err != nil {
		t.Fatal(err)
	}
	apsd, err := pg.AllPairsDistances()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < g.N(); s += 3 {
				if _, err := paths.Path(s, (s+7+i)%g.N()); err != nil {
					t.Errorf("path: %v", err)
					return
				}
				apsd.Distance(s, (s+3+i)%g.N())
			}
		}()
	}
	wg.Wait()
}
