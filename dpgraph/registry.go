package dpgraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Guarantee classifies a mechanism's privacy guarantee.
type Guarantee string

const (
	// Pure marks mechanisms that are eps-DP and never consume delta.
	Pure Guarantee = "pure eps-DP"
	// PureOrApprox marks mechanisms that are eps-DP when the session
	// delta is zero and (eps, delta)-DP (via advanced composition)
	// otherwise.
	PureOrApprox Guarantee = "eps-DP, or (eps, delta)-DP when delta > 0"
)

// Args carries the query parameters a registry runner may need; which
// fields a mechanism reads is declared by its descriptor's Args and
// Needs fields.
type Args struct {
	// S and T are the query endpoints for pairwise mechanisms.
	S, T int
	// Root is the source vertex for single-source mechanisms.
	Root int
	// Base is the hub spacing ratio for the path hierarchy (default 2).
	Base int
	// MaxWeight is the public weight cap for bounded-weight mechanisms.
	MaxWeight float64
}

// Descriptor describes one registered mechanism: enough metadata for a
// caller (CLI, service, documentation generator) to enumerate, explain,
// and invoke every mechanism without a hand-rolled switch.
type Descriptor struct {
	// Name is the registry key and CLI subcommand.
	Name string
	// Method is the PrivateGraph method implementing the mechanism.
	Method string
	// Summary is a one-line description.
	Summary string
	// Ref cites the paper result the mechanism implements.
	Ref string
	// Sensitivity describes the query's global l1 sensitivity.
	Sensitivity string
	// Guarantee classifies the privacy guarantee.
	Guarantee Guarantee
	// Args names the positional arguments the runner expects, in order.
	// Recognized names: "s", "t", "root".
	Args []string
	// NeedsMaxWeight marks mechanisms requiring Args.MaxWeight > 0.
	NeedsMaxWeight bool
	// NeedsTree marks mechanisms defined only on tree topologies.
	NeedsTree bool
	// NeedsPath marks mechanisms defined only on the path graph.
	NeedsPath bool

	// Run invokes the mechanism on a session. It is nil for mechanisms
	// whose inputs cannot be conveyed through Args (e.g. an explicit
	// covering); call the method directly instead.
	Run func(pg *PrivateGraph, q Args) (Result, error)

	// Oracle materializes the mechanism's release once — the only
	// budget-charging step — and returns its DistanceOracle together
	// with the release result carrying the receipt. It is nil for
	// mechanisms that release no distance structure (paths, MST,
	// matchings) or whose inputs cannot be conveyed through Args.
	Oracle func(pg *PrivateGraph, q Args) (DistanceOracle, Result, error)
	// OracleArgs names the positional arguments the Oracle runner
	// expects, in order (subset of the names Args recognizes).
	OracleArgs []string
}

// registry is the authoritative mechanism list; keep it sorted by Name.
var registry = []Descriptor{
	{
		Name:        "apsd",
		Method:      "AllPairsDistances",
		Summary:     "all-pairs distances by per-pair composition; with -maxweight, the bounded-weight covering mechanism",
		Ref:         "Section 4 baselines; Theorem 4.3 with a weight cap",
		Sensitivity: "Scale per distance query, composed over V(V-1)/2 queries",
		Guarantee:   PureOrApprox,
		Args:        []string{"s", "t"},
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			if err := checkPair(pg, q); err != nil {
				return nil, err
			}
			var rel *APSDResult
			var err error
			if q.MaxWeight > 0 {
				rel, err = pg.BoundedAllPairs(q.MaxWeight)
			} else {
				rel, err = pg.AllPairsDistances()
			}
			if err != nil {
				return nil, err
			}
			return pairQuery(rel.ReleaseInfo, q, rel.Distance(q.S, q.T), rel.Bound), nil
		},
		Oracle: func(pg *PrivateGraph, q Args) (DistanceOracle, Result, error) {
			var rel *APSDResult
			var err error
			if q.MaxWeight > 0 {
				rel, err = pg.BoundedAllPairs(q.MaxWeight)
			} else {
				rel, err = pg.AllPairsDistances()
			}
			if err != nil {
				return nil, nil, err
			}
			return rel.Oracle(), rel, nil
		},
	},
	{
		Name:           "bounded",
		Method:         "BoundedAllPairs",
		Summary:        "all-pairs distances for weights bounded by a public cap, via an automatically chosen covering",
		Ref:            "Theorem 4.3 (Algorithm 2 + Lemma 4.4 covering)",
		Sensitivity:    "Scale per covering-pair distance, composed over |Z|(|Z|-1)/2 queries",
		Guarantee:      PureOrApprox,
		Args:           []string{"s", "t"},
		NeedsMaxWeight: true,
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			if err := checkPair(pg, q); err != nil {
				return nil, err
			}
			rel, err := pg.BoundedAllPairs(q.MaxWeight)
			if err != nil {
				return nil, err
			}
			return pairQuery(rel.ReleaseInfo, q, rel.Distance(q.S, q.T), rel.Bound), nil
		},
		Oracle: func(pg *PrivateGraph, q Args) (DistanceOracle, Result, error) {
			rel, err := pg.BoundedAllPairs(q.MaxWeight)
			if err != nil {
				return nil, nil, err
			}
			return rel.Oracle(), rel, nil
		},
	},
	{
		Name:        "covering",
		Method:      "CoveringAllPairs",
		Summary:     "all-pairs distances from an explicit k-covering (programmatic API only: the covering cannot be passed positionally)",
		Ref:         "Algorithm 2; Theorems 4.5 and 4.6",
		Sensitivity: "Scale per covering-pair distance, composed over |Z|(|Z|-1)/2 queries",
		Guarantee:   PureOrApprox,
	},
	{
		Name:        "distance",
		Method:      "Distance",
		Summary:     "one pairwise distance via the Laplace mechanism",
		Ref:         "Section 4 warm-up",
		Sensitivity: "Scale (a single sensitivity-Scale query)",
		Guarantee:   Pure,
		Args:        []string{"s", "t"},
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			return noNil(pg.Distance(q.S, q.T))
		},
	},
	{
		Name:        "hierarchy",
		Method:      "PathHierarchy",
		Summary:     "hub hierarchy for the path graph; every pairwise distance from O(log V) released gaps",
		Ref:         "Appendix A",
		Sensitivity: "Scale per hub level, Levels levels",
		Guarantee:   Pure,
		Args:        []string{"s", "t"},
		NeedsPath:   true,
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			if err := checkPair(pg, q); err != nil {
				return nil, err
			}
			base := q.Base
			if base == 0 {
				base = 2
			}
			rel, err := pg.PathHierarchy(base)
			if err != nil {
				return nil, err
			}
			return pairQuery(rel.ReleaseInfo, q, rel.Distance(q.S, q.T), rel.Bound), nil
		},
		Oracle: func(pg *PrivateGraph, q Args) (DistanceOracle, Result, error) {
			base := q.Base
			if base == 0 {
				base = 2
			}
			rel, err := pg.PathHierarchy(base)
			if err != nil {
				return nil, nil, err
			}
			return rel.Oracle(), rel, nil
		},
	},
	{
		Name:        "matching",
		Method:      "Matching",
		Summary:     "almost-minimum-weight perfect matching of the noisy graph",
		Ref:         "Theorem B.6",
		Sensitivity: "Scale (identity query on the weight vector)",
		Guarantee:   Pure,
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			return noNil(pg.Matching())
		},
	},
	{
		Name:        "maxmatching",
		Method:      "MaxMatching",
		Summary:     "almost-maximum-weight perfect matching of the noisy graph",
		Ref:         "Appendix B.2",
		Sensitivity: "Scale (identity query on the weight vector)",
		Guarantee:   Pure,
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			return noNil(pg.MaxMatching())
		},
	},
	{
		Name:        "mst",
		Method:      "MST",
		Summary:     "almost-minimum spanning tree of the noisy graph",
		Ref:         "Theorem B.3",
		Sensitivity: "Scale (identity query on the weight vector)",
		Guarantee:   Pure,
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			return noNil(pg.MST())
		},
	},
	{
		Name:        "mstcost",
		Method:      "MSTCost",
		Summary:     "minimum spanning tree cost (a scalar; no dependence on V)",
		Ref:         "Appendix B remark; contrast with [NRS07]",
		Sensitivity: "Scale (the MST cost is a sensitivity-Scale scalar)",
		Guarantee:   Pure,
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			return noNil(pg.MSTCost())
		},
	},
	{
		Name:        "path",
		Method:      "ShortestPaths",
		Summary:     "short paths between all pairs from one shifted noisy release",
		Ref:         "Algorithm 3; Theorem 5.5",
		Sensitivity: "Scale (identity query on the weight vector)",
		Guarantee:   Pure,
		Args:        []string{"s", "t"},
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			rel, err := pg.ShortestPaths()
			if err != nil {
				return nil, err
			}
			edges, err := rel.Path(q.S, q.T)
			if err != nil {
				return nil, err
			}
			verts, err := rel.PathVertices(q.S, q.T)
			if err != nil {
				return nil, err
			}
			return &PathQueryResult{
				ReleaseInfo:    rel.ReleaseInfo,
				Source:         q.S,
				Target:         q.T,
				EdgeIDs:        edges,
				Vertices:       verts,
				ReleasedLength: graph.PathWeight(rel.pp.Weights, edges),
				release:        rel,
			}, nil
		},
	},
	{
		Name:        "release",
		Method:      "Release",
		Summary:     "synthetic weight vector; every post-processing is private for free",
		Ref:         "Section 4 (Laplace mechanism on the identity query)",
		Sensitivity: "Scale (identity query on the weight vector)",
		Guarantee:   Pure,
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			return noNil(pg.Release())
		},
		Oracle: func(pg *PrivateGraph, q Args) (DistanceOracle, Result, error) {
			rel, err := pg.Release()
			if err != nil {
				return nil, nil, err
			}
			return rel.Oracle(), rel, nil
		},
	},
	{
		Name:        "sssp",
		Method:      "SingleSource",
		Summary:     "single-source distances on a general graph by composition",
		Ref:         "remark after Theorem 4.6",
		Sensitivity: "Scale per distance query, composed over V-1 queries",
		Guarantee:   PureOrApprox,
		Args:        []string{"root"},
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			return noNil(pg.SingleSource(q.Root))
		},
	},
	{
		Name:        "treedist",
		Method:      "TreeAllPairs",
		Summary:     "all-pairs distances on a tree with polylog(V) error",
		Ref:         "Theorem 4.2 (Algorithm 1 + LCA)",
		Sensitivity: "Scale per recursion level, ceil(log2 V) levels",
		Guarantee:   Pure,
		Args:        []string{"s", "t"},
		NeedsTree:   true,
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			if err := checkPair(pg, q); err != nil {
				return nil, err
			}
			rel, err := pg.TreeAllPairs()
			if err != nil {
				return nil, err
			}
			info := rel.ReleaseInfo
			return pairQuery(info, q, rel.Distance(q.S, q.T), rel.PerPairBound), nil
		},
		Oracle: func(pg *PrivateGraph, q Args) (DistanceOracle, Result, error) {
			rel, err := pg.TreeAllPairs()
			if err != nil {
				return nil, nil, err
			}
			return rel.Oracle(), rel, nil
		},
	},
	{
		Name:        "treesssp",
		Method:      "TreeSingleSource",
		Summary:     "single-source distances on a tree with polylog(V) error",
		Ref:         "Algorithm 1; Theorem 4.1",
		Sensitivity: "Scale per recursion level, ceil(log2 V) levels",
		Guarantee:   Pure,
		Args:        []string{"root"},
		NeedsTree:   true,
		Run: func(pg *PrivateGraph, q Args) (Result, error) {
			return noNil(pg.TreeSingleSource(q.Root))
		},
		Oracle: func(pg *PrivateGraph, q Args) (DistanceOracle, Result, error) {
			rel, err := pg.TreeSingleSource(q.Root)
			if err != nil {
				return nil, nil, err
			}
			return rel.Oracle(), rel, nil
		},
		OracleArgs: []string{"root"},
	},
}

// Mechanisms returns descriptors for every mechanism, sorted by name.
func Mechanisms() []Descriptor {
	out := make([]Descriptor, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// OracleMechanisms returns the names of the mechanisms offering an
// Oracle runner (the release-once/query-many path), sorted.
func OracleMechanisms() []string {
	var names []string
	for _, d := range Mechanisms() {
		if d.Oracle != nil {
			names = append(names, d.Name)
		}
	}
	return names
}

// Mechanism looks up one descriptor by registry name.
func Mechanism(name string) (Descriptor, bool) {
	for _, d := range registry {
		if d.Name == name {
			return d, true
		}
	}
	return Descriptor{}, false
}

// checkPair validates pairwise query endpoints up front so runners fail
// before spending budget.
func checkPair(pg *PrivateGraph, q Args) error {
	n := pg.g.N()
	if q.S < 0 || q.S >= n || q.T < 0 || q.T >= n {
		return fmt.Errorf("dpgraph: query pair (%d, %d) out of range [0, %d)", q.S, q.T, n)
	}
	return nil
}

// pairQuery wraps one pairwise value from an all-pairs release.
func pairQuery(info ReleaseInfo, q Args, value float64, bound func(float64) float64) *QueryResult {
	return &QueryResult{ReleaseInfo: info, Source: q.S, Target: q.T, Value: value, bound: bound}
}

// noNil converts a typed (*T, error) return into (Result, error) without
// producing a non-nil interface around a nil pointer.
func noNil[T any, P interface {
	*T
	Result
}](res P, err error) (Result, error) {
	if err != nil {
		return nil, err
	}
	return res, nil
}
