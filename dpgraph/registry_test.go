package dpgraph

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestMechanismsSortedUniqueAndComplete(t *testing.T) {
	ms := Mechanisms()
	if len(ms) < 10 {
		t.Fatalf("registry has %d mechanisms, want >= 10", len(ms))
	}
	if !sort.SliceIsSorted(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name }) {
		t.Error("Mechanisms() not sorted by name")
	}
	seen := map[string]bool{}
	for _, d := range ms {
		if seen[d.Name] {
			t.Errorf("duplicate mechanism %q", d.Name)
		}
		seen[d.Name] = true
		if d.Summary == "" || d.Ref == "" || d.Sensitivity == "" || d.Guarantee == "" || d.Method == "" {
			t.Errorf("%s: incomplete metadata: %+v", d.Name, d)
		}
	}
	for _, want := range []string{"distance", "apsd", "release", "treedist", "treesssp", "hierarchy", "path", "mst", "matching", "bounded", "covering", "sssp"} {
		if !seen[want] {
			t.Errorf("mechanism %q missing from registry", want)
		}
	}
}

func TestMechanismLookup(t *testing.T) {
	d, ok := Mechanism("distance")
	if !ok || d.Name != "distance" {
		t.Fatalf("lookup distance = (%+v, %v)", d, ok)
	}
	if _, ok := Mechanism("nope"); ok {
		t.Error("unknown mechanism found")
	}
}

// TestRegistryRunnersExecute drives every runnable descriptor against a
// suitable topology and checks it yields a Result with a receipt whose
// mechanism matches the descriptor.
func TestRegistryRunnersExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	grid := Grid(4)
	gw := UniformRandomWeights(grid, 0.1, 1, rng)
	tree := BalancedBinaryTree(15)
	tw := UniformRandomWeights(tree, 0.1, 1, rng)
	path := PathGraph(9)
	pw := UniformRandomWeights(path, 0.1, 1, rng)
	bip := CompleteBipartite(4, 4)
	bw := UniformRandomWeights(bip, 0.1, 1, rng)

	for _, d := range Mechanisms() {
		if d.Run == nil {
			continue
		}
		g, w := grid, gw
		switch {
		case d.NeedsTree:
			g, w = tree, tw
		case d.NeedsPath:
			g, w = path, pw
		case d.Name == "matching" || d.Name == "maxmatching":
			g, w = bip, bw
		}
		pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDelta(1e-6), WithDeterministicSeed(int64(len(d.Name))))
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		q := Args{S: 0, T: g.N() - 1, Root: 0}
		if d.NeedsMaxWeight {
			q.MaxWeight = 1
		}
		res, err := d.Run(pg, q)
		if err != nil {
			t.Errorf("%s: %v", d.Name, err)
			continue
		}
		info := res.Info()
		if info.Receipt.Mechanism == "" {
			t.Errorf("%s: result has no receipt", d.Name)
		}
		if res.Bound(0.05) <= 0 {
			t.Errorf("%s: nonpositive bound", d.Name)
		}
		if len(pg.Receipts()) != 1 {
			t.Errorf("%s: %d receipts after one run", d.Name, len(pg.Receipts()))
		}
	}
}

// TestRegistryCompleteness pins the wiring contract of every
// descriptor: a non-nil runner (with documented exceptions), complete
// doc strings, and an Oracle runner wherever the mechanism's result
// materializes a distance structure. Adding a mechanism without wiring
// it fully — the registry's historical failure mode — fails here.
func TestRegistryCompleteness(t *testing.T) {
	// Mechanisms whose inputs cannot be conveyed through positional Args
	// (and must say so in their Summary): programmatic API only.
	noRunner := map[string]bool{
		"covering": true, // explicit covering set cannot be passed positionally
	}
	// Mechanisms whose results materialize distances between arbitrary
	// pairs and therefore must offer the release-once/query-many Oracle
	// path. Everything else must NOT have one, so this list cannot rot.
	wantOracle := map[string]bool{
		"apsd":      true,
		"bounded":   true,
		"hierarchy": true,
		"release":   true,
		"treedist":  true,
		"treesssp":  true,
	}
	knownArg := map[string]bool{"s": true, "t": true, "root": true}

	seen := map[string]bool{}
	for _, d := range Mechanisms() {
		seen[d.Name] = true
		if d.Name == "" || d.Method == "" || d.Summary == "" || d.Ref == "" || d.Sensitivity == "" || d.Guarantee == "" {
			t.Errorf("%s: incomplete doc metadata: %+v", d.Name, d)
		}
		if noRunner[d.Name] {
			if d.Run != nil {
				t.Errorf("%s: listed as runner-less but has a runner; update the exception list", d.Name)
			}
			if !strings.Contains(d.Summary, "programmatic API only") {
				t.Errorf("%s: runner-less mechanism must say %q in its Summary", d.Name, "programmatic API only")
			}
		} else if d.Run == nil {
			t.Errorf("%s: nil runner (not in the documented exception list)", d.Name)
		}
		if wantOracle[d.Name] && d.Oracle == nil {
			t.Errorf("%s: materializes distances but has no Oracle runner", d.Name)
		}
		if !wantOracle[d.Name] && d.Oracle != nil {
			t.Errorf("%s: has an Oracle runner; add it to the expected list", d.Name)
		}
		for _, a := range d.Args {
			if !knownArg[a] {
				t.Errorf("%s: Args declares %q, which parseArgs cannot map", d.Name, a)
			}
		}
		for _, a := range d.OracleArgs {
			if !knownArg[a] {
				t.Errorf("%s: OracleArgs declares %q, which parseArgs cannot map", d.Name, a)
			}
		}
		if d.Oracle == nil && len(d.OracleArgs) > 0 {
			t.Errorf("%s: OracleArgs without an Oracle runner", d.Name)
		}
	}
	for name := range noRunner {
		if !seen[name] {
			t.Errorf("exception list names unknown mechanism %q", name)
		}
	}
	for name := range wantOracle {
		if !seen[name] {
			t.Errorf("oracle list names unknown mechanism %q", name)
		}
	}
}

// TestRegistryOracleRunnersExecute materializes every Oracle runner once
// and answers a query from it: one receipt, zero further budget.
func TestRegistryOracleRunnersExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	grid := Grid(4)
	gw := UniformRandomWeights(grid, 0.1, 1, rng)
	tree := BalancedBinaryTree(15)
	tw := UniformRandomWeights(tree, 0.1, 1, rng)
	path := PathGraph(9)
	pw := UniformRandomWeights(path, 0.1, 1, rng)
	for _, d := range Mechanisms() {
		if d.Oracle == nil {
			continue
		}
		g, w := grid, gw
		switch {
		case d.NeedsTree:
			g, w = tree, tw
		case d.NeedsPath:
			g, w = path, pw
		}
		pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDelta(1e-6), WithDeterministicSeed(11))
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		q := Args{Root: 0}
		if d.NeedsMaxWeight {
			q.MaxWeight = 1
		}
		oracle, res, err := d.Oracle(pg, q)
		if err != nil {
			t.Errorf("%s: %v", d.Name, err)
			continue
		}
		if res.Info().Receipt.Mechanism == "" {
			t.Errorf("%s: oracle release carries no receipt", d.Name)
		}
		if oracle.N() != g.N() {
			t.Errorf("%s: oracle serves %d vertices, topology has %d", d.Name, oracle.N(), g.N())
		}
		if _, err := oracle.Distance(0, g.N()-1); err != nil {
			t.Errorf("%s: oracle query failed: %v", d.Name, err)
		}
		if len(pg.Receipts()) != 1 {
			t.Errorf("%s: %d receipts after one materialization", d.Name, len(pg.Receipts()))
		}
	}
}

// TestRegistryRunnersRejectBadPairs ensures pair validation happens
// before budget is spent.
func TestRegistryRunnersRejectBadPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := Grid(4)
	w := UniformRandomWeights(g, 0.1, 1, rng)
	for _, name := range []string{"apsd", "treedist", "hierarchy"} {
		d, ok := Mechanism(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		pg, err := New(g, PrivateWeights(w), WithDeterministicSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(pg, Args{S: -1, T: 99}); err == nil {
			t.Errorf("%s: bad pair accepted", name)
		}
		if eps, _ := pg.Spent(); eps != 0 {
			t.Errorf("%s: bad pair spent %g of budget", name, eps)
		}
	}
}
