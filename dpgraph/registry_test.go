package dpgraph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestMechanismsSortedUniqueAndComplete(t *testing.T) {
	ms := Mechanisms()
	if len(ms) < 10 {
		t.Fatalf("registry has %d mechanisms, want >= 10", len(ms))
	}
	if !sort.SliceIsSorted(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name }) {
		t.Error("Mechanisms() not sorted by name")
	}
	seen := map[string]bool{}
	for _, d := range ms {
		if seen[d.Name] {
			t.Errorf("duplicate mechanism %q", d.Name)
		}
		seen[d.Name] = true
		if d.Summary == "" || d.Ref == "" || d.Sensitivity == "" || d.Guarantee == "" || d.Method == "" {
			t.Errorf("%s: incomplete metadata: %+v", d.Name, d)
		}
	}
	for _, want := range []string{"distance", "apsd", "release", "treedist", "treesssp", "hierarchy", "path", "mst", "matching", "bounded", "covering", "sssp"} {
		if !seen[want] {
			t.Errorf("mechanism %q missing from registry", want)
		}
	}
}

func TestMechanismLookup(t *testing.T) {
	d, ok := Mechanism("distance")
	if !ok || d.Name != "distance" {
		t.Fatalf("lookup distance = (%+v, %v)", d, ok)
	}
	if _, ok := Mechanism("nope"); ok {
		t.Error("unknown mechanism found")
	}
}

// TestRegistryRunnersExecute drives every runnable descriptor against a
// suitable topology and checks it yields a Result with a receipt whose
// mechanism matches the descriptor.
func TestRegistryRunnersExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	grid := Grid(4)
	gw := UniformRandomWeights(grid, 0.1, 1, rng)
	tree := BalancedBinaryTree(15)
	tw := UniformRandomWeights(tree, 0.1, 1, rng)
	path := PathGraph(9)
	pw := UniformRandomWeights(path, 0.1, 1, rng)
	bip := CompleteBipartite(4, 4)
	bw := UniformRandomWeights(bip, 0.1, 1, rng)

	for _, d := range Mechanisms() {
		if d.Run == nil {
			continue
		}
		g, w := grid, gw
		switch {
		case d.NeedsTree:
			g, w = tree, tw
		case d.NeedsPath:
			g, w = path, pw
		case d.Name == "matching" || d.Name == "maxmatching":
			g, w = bip, bw
		}
		pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDelta(1e-6), WithDeterministicSeed(int64(len(d.Name))))
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		q := Args{S: 0, T: g.N() - 1, Root: 0}
		if d.NeedsMaxWeight {
			q.MaxWeight = 1
		}
		res, err := d.Run(pg, q)
		if err != nil {
			t.Errorf("%s: %v", d.Name, err)
			continue
		}
		info := res.Info()
		if info.Receipt.Mechanism == "" {
			t.Errorf("%s: result has no receipt", d.Name)
		}
		if res.Bound(0.05) <= 0 {
			t.Errorf("%s: nonpositive bound", d.Name)
		}
		if len(pg.Receipts()) != 1 {
			t.Errorf("%s: %d receipts after one run", d.Name, len(pg.Receipts()))
		}
	}
}

// TestRegistryRunnersRejectBadPairs ensures pair validation happens
// before budget is spent.
func TestRegistryRunnersRejectBadPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := Grid(4)
	w := UniformRandomWeights(g, 0.1, 1, rng)
	for _, name := range []string{"apsd", "treedist", "hierarchy"} {
		d, ok := Mechanism(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		pg, err := New(g, PrivateWeights(w), WithDeterministicSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(pg, Args{S: -1, T: 99}); err == nil {
			t.Errorf("%s: bad pair accepted", name)
		}
		if eps, _ := pg.Spent(); eps != 0 {
			t.Errorf("%s: bad pair spent %g of budget", name, eps)
		}
	}
}
