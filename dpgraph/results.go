package dpgraph

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/graph/index"
)

// Receipt records one successful release charged to the session
// accountant: which mechanism ran, what it cost, and when.
type Receipt struct {
	Mechanism string    `json:"mechanism"`
	Epsilon   float64   `json:"epsilon"`
	Delta     float64   `json:"delta,omitempty"`
	Time      time.Time `json:"time"`
}

func (r Receipt) String() string {
	if r.Delta > 0 {
		return fmt.Sprintf("%s: (ε=%g, δ=%g) at %s", r.Mechanism, r.Epsilon, r.Delta, r.Time.Format(time.RFC3339))
	}
	return fmt.Sprintf("%s: ε=%g at %s", r.Mechanism, r.Epsilon, r.Time.Format(time.RFC3339))
}

// ReleaseInfo is the metadata common to every typed result. Result
// types embed it, so r.Receipt, r.Epsilon, etc. are directly accessible.
type ReleaseInfo struct {
	// Mechanism is the registry name of the mechanism that produced this
	// release.
	Mechanism string `json:"mechanism"`
	// Epsilon and Delta are the privacy cost charged for the release.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta,omitempty"`
	// NoiseScale is the Laplace scale of the released values (for
	// mechanisms with a single per-value scale).
	NoiseScale float64 `json:"noise_scale,omitempty"`
	// Receipt is the ledger entry recorded for this release.
	Receipt Receipt `json:"receipt"`
}

// Info returns the release metadata; it makes every embedding result
// satisfy the Result interface's metadata half.
func (ri ReleaseInfo) Info() ReleaseInfo { return ri }

// Result is the interface satisfied by every typed mechanism result.
type Result interface {
	// Info returns the release metadata (mechanism, cost, receipt).
	Info() ReleaseInfo
	// Bound returns a high-probability additive error bound on the
	// released value(s): it holds except with probability gamma.
	Bound(gamma float64) float64
	// Summary renders a short human-readable description of the release.
	Summary() string
}

// Detailer is implemented by results whose released artifact (edge
// lists, weight vectors) does not fit in Summary; Detail renders it in
// full so consumers are not forced to re-release.
type Detailer interface {
	Detail() string
}

// DistanceResult is one privately released s-t distance.
type DistanceResult struct {
	ReleaseInfo
	Source int     `json:"source"`
	Target int     `json:"target"`
	Value  float64 `json:"value"`
}

// Bound returns t with Pr[|noise| > t] <= gamma for the single Laplace
// draw the release added.
func (r *DistanceResult) Bound(gamma float64) float64 {
	return dp.NewLaplace(r.NoiseScale).TailBound(gamma)
}

func (r *DistanceResult) Summary() string {
	return fmt.Sprintf("private distance %d -> %d: %.4f (noise scale %.4g)", r.Source, r.Target, r.Value, r.NoiseScale)
}

// CostResult is one privately released scalar statistic (e.g. MST cost).
type CostResult struct {
	ReleaseInfo
	Value float64 `json:"value"`
}

// Bound returns the single-draw Laplace tail bound at gamma.
func (r *CostResult) Bound(gamma float64) float64 {
	return dp.NewLaplace(r.NoiseScale).TailBound(gamma)
}

func (r *CostResult) Summary() string {
	return fmt.Sprintf("%s: %.4f (noise scale %.4g)", r.Mechanism, r.Value, r.NoiseScale)
}

// QueryResult is a single-pair answer extracted from a released
// all-pairs structure by the registry runners; the error bound is the
// underlying release's.
type QueryResult struct {
	ReleaseInfo
	Source int     `json:"source"`
	Target int     `json:"target"`
	Value  float64 `json:"value"`

	bound func(gamma float64) float64
}

func (r *QueryResult) Bound(gamma float64) float64 { return r.bound(gamma) }

func (r *QueryResult) Summary() string {
	return fmt.Sprintf("%s %d -> %d: %.4f", r.Mechanism, r.Source, r.Target, r.Value)
}

// APSDResult is a released all-pairs distance structure, either by
// per-pair composition (AllPairsDistances) or by a vertex covering
// (CoveringAllPairs, BoundedAllPairs).
type APSDResult struct {
	ReleaseInfo
	// K is the covering radius in hops (0 for the composition baseline).
	K int `json:"k,omitempty"`
	// CoveringSize is |Z| for covering-based releases (0 otherwise).
	CoveringSize int `json:"covering_size,omitempty"`

	n       int
	queries int // noisy values released by the composition baseline
	apsd    *core.APSD
	cov     *core.CoveringRelease

	oracleOnce sync.Once
	oracle     DistanceOracle
}

// Oracle returns a table-backed DistanceOracle over the released
// all-pairs structure: construction charged the budget once, and every
// query is a free table lookup (bounded-error; for covering releases the
// bound includes the 2·K·MaxWeight assignment bias). Callers should
// query the oracle instead of indexing raw matrices.
func (r *APSDResult) Oracle() DistanceOracle {
	r.oracleOnce.Do(func() {
		r.oracle = &lookupOracle{n: r.n, query: r.Distance, bound: r.Bound}
	})
	return r.oracle
}

// Distance returns the released estimate of the s-t distance. Pure
// post-processing: no additional privacy cost.
func (r *APSDResult) Distance(s, t int) float64 {
	if s == t {
		return 0
	}
	if r.cov != nil {
		return r.cov.Query(s, t)
	}
	return r.apsd.Query(s, t)
}

// Matrix materializes all-pairs estimates.
func (r *APSDResult) Matrix() [][]float64 {
	if r.cov != nil {
		return r.cov.Matrix(r.n)
	}
	d := make([][]float64, r.n)
	for s := range d {
		d[s] = append([]float64(nil), r.apsd.Dist[s]...)
	}
	return d
}

// Bound returns the additive error bound holding for every pair
// simultaneously except with probability gamma.
func (r *APSDResult) Bound(gamma float64) float64 {
	if r.cov != nil {
		return r.cov.ErrorBound(gamma)
	}
	return dp.UnionTailBound(r.NoiseScale, r.queries, gamma)
}

func (r *APSDResult) Summary() string {
	if r.cov != nil {
		return fmt.Sprintf("%s: all-pairs distances via %d-covering of %d vertices (noise scale %.4g)",
			r.Mechanism, r.K, r.CoveringSize, r.NoiseScale)
	}
	return fmt.Sprintf("%s: all-pairs distances over %d vertices (noise scale %.4g)", r.Mechanism, r.n, r.NoiseScale)
}

// SyntheticGraph is an eps-DP synthetic weight vector for the public
// topology. Every computation on it is post-processing and inherits the
// privacy guarantee at no further cost.
type SyntheticGraph struct {
	ReleaseInfo
	// Weights is the released noisy weight vector (may contain negative
	// entries; Distance/AllPairs clamp at zero before searching).
	Weights []float64 `json:"weights"`

	g         *graph.Graph
	indexMode QueryIndexMode // session's WithQueryIndex setting

	oracleOnce sync.Once
	oracle     DistanceOracle
}

// Oracle returns a DistanceOracle that answers queries by shortest-path
// search over the released weights (clamped at zero). By default that
// is the pooled zero-allocation Dijkstra engine; under the session's
// WithQueryIndex mode the oracle instead builds a precomputed speedup
// index (contraction hierarchy or landmark A*) once, plus a sharded
// s-t result cache — identical answers, orders of magnitude faster on
// large graphs. Answers are exact shortest paths of the synthetic
// graph; against the true weights a k-hop answer errs by at most k
// times the per-edge noise bound, so Bound reports the worst-case
// (V-1)-hop figure.
func (r *SyntheticGraph) Oracle() DistanceOracle {
	r.oracleOnce.Do(func() {
		o, err := r.IndexedOracle(r.indexMode)
		if err != nil {
			// New validated the mode against the topology; reaching this
			// means the result was built outside a session.
			panic("dpgraph: SyntheticGraph.Oracle: " + err.Error())
		}
		r.oracle = o
	})
	return r.oracle
}

// IndexedOracle returns a fresh DistanceOracle serving this release
// under an explicit index mode, independent of the session setting
// (Oracle caches one oracle under the session mode; this builds anew
// on every call). It errs when the mode requires an index the topology
// cannot carry (IndexCH/IndexALT on directed graphs).
func (r *SyntheticGraph) IndexedOracle(mode QueryIndexMode) (DistanceOracle, error) {
	if r.g == nil {
		// A result rehydrated from JSON carries no topology; the oracle
		// needs the session it was released from.
		return nil, fmt.Errorf("dpgraph: SyntheticGraph.IndexedOracle needs a result obtained from a PrivateGraph session (no topology attached)")
	}
	hops := r.g.N() - 1
	if hops < 1 {
		hops = 1
	}
	o := &syntheticOracle{
		g: r.g,
		w: graph.ClampWeights(r.Weights, 0, graph.Inf),
		bound: func(gamma float64) float64 {
			return float64(hops) * r.Bound(gamma)
		},
	}
	idx, err := index.Build(o.g, o.w, index.Options{Mode: mode.indexMode()})
	if err != nil {
		return nil, err
	}
	if idx != nil {
		o.idx = idx
		o.cache = index.NewPairCache(0)
	}
	return o, nil
}

// Distance answers an s-t distance query on the synthetic weights.
func (r *SyntheticGraph) Distance(s, t int) (float64, error) {
	return graph.Distance(r.g, graph.ClampWeights(r.Weights, 0, graph.Inf), s, t)
}

// AllPairs answers all-pairs distances on the synthetic weights.
func (r *SyntheticGraph) AllPairs() ([][]float64, error) {
	return graph.AllPairsDistances(r.g, graph.ClampWeights(r.Weights, 0, graph.Inf))
}

// Bound returns the per-edge noise bound holding for all edges
// simultaneously except with probability gamma; a k-hop path's weight is
// preserved to within k times this.
func (r *SyntheticGraph) Bound(gamma float64) float64 {
	if len(r.Weights) == 0 {
		return 0
	}
	return dp.UnionTailBound(r.NoiseScale, len(r.Weights), gamma)
}

func (r *SyntheticGraph) Summary() string {
	return fmt.Sprintf("synthetic weight vector for %d edges (noise scale %.4g)", len(r.Weights), r.NoiseScale)
}

// Detail renders the full synthetic graph as JSON (the released
// artifact; safe to publish).
func (r *SyntheticGraph) Detail() string {
	data, err := graph.MarshalJSONGraph(r.g, r.Weights)
	if err != nil {
		return fmt.Sprintf("error rendering synthetic graph: %v", err)
	}
	return string(data)
}

// PathsResult is the Algorithm 3 release: a shifted noisy weight vector
// from which shortest paths between all pairs are extracted as
// post-processing, biased toward few-hop paths.
type PathsResult struct {
	ReleaseInfo
	// Shift is the deterministic per-edge overestimate bias.
	Shift float64 `json:"shift"`

	mu sync.Mutex // guards the release's lazy per-source tree cache
	pp *core.PrivatePaths
}

// Path returns the released s-t path as edge IDs.
func (r *PathsResult) Path(s, t int) ([]int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pp.Path(s, t)
}

// PathVertices returns the released s-t path as a vertex sequence.
func (r *PathsResult) PathVertices(s, t int) ([]int, error) {
	path, err := r.Path(s, t)
	if err != nil {
		return nil, err
	}
	return r.pp.G.PathVertices(s, path), nil
}

// ReleasedWeights returns the released weight vector (safe to publish).
func (r *PathsResult) ReleasedWeights() []float64 {
	return append([]float64(nil), r.pp.Weights...)
}

// BoundKHops returns the Theorem 5.5 excess-weight bound for pairs
// joined by a k-hop shortest path: if a k-hop path of weight W exists,
// the released path's true weight is at most W + k*(Shift +
// (Scale/eps)*log(E/gamma)), except with probability gamma. The Shift
// term is fixed by the session gamma at release time; only the noise
// tail rescales with the gamma requested here.
func (r *PathsResult) BoundKHops(k int, gamma float64) float64 {
	m := r.pp.G.M()
	return float64(k) * (r.Shift + r.NoiseScale*math.Log(float64(m)/gamma))
}

// Bound returns the worst-case (k = V) excess-weight bound at gamma
// (Corollary 5.6).
func (r *PathsResult) Bound(gamma float64) float64 {
	return r.BoundKHops(r.pp.G.N(), gamma)
}

func (r *PathsResult) Summary() string {
	return fmt.Sprintf("private shortest-path release over %d edges (noise scale %.4g, shift %.4g)",
		r.pp.G.M(), r.NoiseScale, r.Shift)
}

// PathQueryResult is one released route extracted from a PathsResult by
// the registry runner.
type PathQueryResult struct {
	ReleaseInfo
	Source   int   `json:"source"`
	Target   int   `json:"target"`
	EdgeIDs  []int `json:"edge_ids"`
	Vertices []int `json:"vertices"`
	// ReleasedLength is the path's weight under the released vector.
	ReleasedLength float64 `json:"released_length"`

	release *PathsResult
}

// Bound returns the worst-case excess-weight bound of the underlying
// release at gamma.
func (r *PathQueryResult) Bound(gamma float64) float64 { return r.release.Bound(gamma) }

func (r *PathQueryResult) Summary() string {
	return fmt.Sprintf("private path %d -> %d (%d hops, released length %.4f): %v",
		r.Source, r.Target, len(r.EdgeIDs), r.ReleasedLength, r.Vertices)
}

// TreeSSSPResult is the Algorithm 1 release: distances from a root to
// every vertex of a tree with polylog(V) error.
type TreeSSSPResult struct {
	ReleaseInfo
	Root int `json:"root"`
	// Dist[v] is the released estimate of the root-v distance.
	Dist []float64 `json:"dist"`
	// Levels is the recursion depth bound L = ceil(log2 V).
	Levels int `json:"levels"`
	// Released counts the noisy values drawn (at most 2V).
	Released int `json:"released"`

	g *graph.Graph

	oracleOnce sync.Once
	oracle     DistanceOracle
}

// Bound returns the per-vertex error bound holding except with
// probability gamma.
func (r *TreeSSSPResult) Bound(gamma float64) float64 {
	return dp.SumTailBound(r.NoiseScale, 2*r.Levels, gamma)
}

// Oracle returns a DistanceOracle answering any pair (x, y) of the tree
// from the single root-distance release via the public LCA structure:
// d(x, y) = d(r, x) + d(r, y) - 2·d(r, lca(x, y)), an O(log V) lookup
// with no allocation and no further budget (Theorem 4.2's reduction).
// Bounded-error: Bound reports the per-pair figure (three released
// estimates combined).
func (r *TreeSSSPResult) Oracle() DistanceOracle {
	r.oracleOnce.Do(func() {
		if r.g == nil {
			// A result rehydrated from JSON carries no topology; the
			// oracle needs the session it was released from.
			panic("dpgraph: TreeSSSPResult.Oracle needs a result obtained from a PrivateGraph session (no topology attached)")
		}
		tr, err := graph.NewTree(r.g, r.Root)
		if err != nil {
			// The release validated the topology; reaching this means the
			// result was built outside a session.
			panic("dpgraph: TreeSSSPResult.Oracle without session topology: " + err.Error())
		}
		lca := graph.NewLCA(tr)
		dist := r.Dist
		r.oracle = &lookupOracle{
			n: r.g.N(),
			query: func(x, y int) float64 {
				z := lca.Find(x, y)
				return dist[x] + dist[y] - 2*dist[z]
			},
			bound: func(gamma float64) float64 { return 4 * r.Bound(gamma/3) },
		}
	})
	return r.oracle
}

func (r *TreeSSSPResult) Summary() string {
	return fmt.Sprintf("tree single-source distances from %d over %d vertices (noise scale %.4g, %d levels)",
		r.Root, len(r.Dist), r.NoiseScale, r.Levels)
}

// TreeAPSDResult is the Theorem 4.2 release: all-pairs tree distances
// answered from one single-source release plus the public LCA structure.
type TreeAPSDResult struct {
	ReleaseInfo
	// SSSP is the underlying single-source release.
	SSSP *TreeSSSPResult `json:"sssp"`

	apsd *core.TreeAPSD

	oracleOnce sync.Once
	oracle     DistanceOracle
}

// Oracle returns a DistanceOracle over the precomputed LCA reduction:
// every pair is answered from the one Algorithm 1 release at zero
// further budget. Bounded-error with the per-pair bound of PerPairBound.
func (r *TreeAPSDResult) Oracle() DistanceOracle {
	r.oracleOnce.Do(func() {
		r.oracle = &lookupOracle{n: len(r.SSSP.Dist), query: r.apsd.Query, bound: r.PerPairBound}
	})
	return r.oracle
}

// Distance returns the released estimate of the x-y tree distance.
func (r *TreeAPSDResult) Distance(x, y int) float64 { return r.apsd.Query(x, y) }

// Matrix materializes the full all-pairs estimate matrix.
func (r *TreeAPSDResult) Matrix() [][]float64 { return r.apsd.Matrix() }

// PerPairBound returns the bound for one fixed pair at gamma.
func (r *TreeAPSDResult) PerPairBound(gamma float64) float64 {
	return r.apsd.PerPairErrorBound(gamma)
}

// Bound returns the bound holding for every pair simultaneously except
// with probability gamma.
func (r *TreeAPSDResult) Bound(gamma float64) float64 {
	return r.apsd.AllPairsErrorBound(gamma)
}

func (r *TreeAPSDResult) Summary() string {
	return fmt.Sprintf("tree all-pairs distances over %d vertices (noise scale %.4g)", len(r.SSSP.Dist), r.NoiseScale)
}

// HierarchyResult is the Appendix A hub-hierarchy release for the path
// graph; any pairwise distance is assembled from O(log V) released gaps.
type HierarchyResult struct {
	ReleaseInfo
	// Base is the hub spacing ratio; Levels the number of hub levels.
	Base   int `json:"base"`
	Levels int `json:"levels"`

	hubs *core.PathHubs

	oracleOnce sync.Once
	oracle     DistanceOracle
}

// Oracle returns a DistanceOracle over the hub hierarchy: any pair on
// the path is assembled from O(log V) released gaps with no allocation
// and zero further budget. Bounded-error with the per-query Bound.
func (r *HierarchyResult) Oracle() DistanceOracle {
	r.oracleOnce.Do(func() {
		r.oracle = &lookupOracle{n: r.hubs.V, query: r.hubs.Query, bound: r.Bound}
	})
	return r.oracle
}

// Distance returns the released estimate of the x-y distance on the
// path.
func (r *HierarchyResult) Distance(x, y int) float64 { return r.hubs.Query(x, y) }

// GapsUsed counts the released values a query sums.
func (r *HierarchyResult) GapsUsed(x, y int) int { return r.hubs.GapsUsed(x, y) }

// MaxGapsPerQuery returns the worst-case number of summed gaps.
func (r *HierarchyResult) MaxGapsPerQuery() int { return r.hubs.MaxGapsPerQuery() }

// ReleasedCount returns the total number of noisy values released.
func (r *HierarchyResult) ReleasedCount() int { return r.hubs.ReleasedCount() }

// Bound returns the per-query error bound holding except with
// probability gamma.
func (r *HierarchyResult) Bound(gamma float64) float64 { return r.hubs.ErrorBound(gamma) }

func (r *HierarchyResult) Summary() string {
	return fmt.Sprintf("path hub hierarchy over %d vertices (base %d, %d levels, noise scale %.4g)",
		r.hubs.V, r.Base, r.Levels, r.NoiseScale)
}

// SSSPResult is a released single-source distance vector on a general
// graph, calibrated by composition over the V-1 queries.
type SSSPResult struct {
	ReleaseInfo
	Source int `json:"source"`
	// Dist[v] is the released estimate; +Inf where unreachable.
	Dist []float64 `json:"dist"`
}

// Bound returns the bound holding simultaneously for all released
// distances except with probability gamma.
func (r *SSSPResult) Bound(gamma float64) float64 {
	k := len(r.Dist) - 1
	if k < 1 {
		k = 1
	}
	return dp.UnionTailBound(r.NoiseScale, k, gamma)
}

func (r *SSSPResult) Summary() string {
	return fmt.Sprintf("single-source distances from %d over %d vertices (noise scale %.4g)",
		r.Source, len(r.Dist), r.NoiseScale)
}

// MSTResult is an Appendix B released spanning tree.
type MSTResult struct {
	ReleaseInfo
	// Edges is the released spanning tree's edge IDs, sorted.
	Edges []int `json:"edges"`
	// ReleasedWeight is the tree's weight under the noisy weights (safe
	// to publish).
	ReleasedWeight float64 `json:"released_weight"`

	n, m int
}

// TrueWeight returns the released tree's weight under the private
// weights; data-owner side, for error measurement.
func (r *MSTResult) TrueWeight(w []float64) float64 { return graph.PathWeight(w, r.Edges) }

// Bound returns the Theorem B.3 excess-weight bound at gamma.
func (r *MSTResult) Bound(gamma float64) float64 {
	if r.m == 0 {
		return 0
	}
	return 2 * float64(r.n-1) * dp.UnionTailBound(r.NoiseScale, r.m, gamma)
}

func (r *MSTResult) Summary() string {
	return fmt.Sprintf("private spanning tree (%d edges, released weight %.4f)", len(r.Edges), r.ReleasedWeight)
}

// Detail lists the released tree's edge IDs.
func (r *MSTResult) Detail() string { return intList(r.Edges) }

// MatchingResult is an Appendix B released perfect matching.
type MatchingResult struct {
	ReleaseInfo
	// Edges is the released matching's edge IDs, sorted.
	Edges []int `json:"edges"`
	// ReleasedWeight is the matching's weight under the noisy weights.
	ReleasedWeight float64 `json:"released_weight"`

	n, m int
}

// TrueWeight returns the released matching's weight under the private
// weights; data-owner side, for error measurement.
func (r *MatchingResult) TrueWeight(w []float64) float64 { return graph.PathWeight(w, r.Edges) }

// Bound returns the Theorem B.6 excess-weight bound at gamma.
func (r *MatchingResult) Bound(gamma float64) float64 {
	if r.m == 0 {
		return 0
	}
	return float64(r.n) * dp.UnionTailBound(r.NoiseScale, r.m, gamma)
}

func (r *MatchingResult) Summary() string {
	return fmt.Sprintf("private perfect matching (%d edges, released weight %.4f)", len(r.Edges), r.ReleasedWeight)
}

// Detail lists the released matching's edge IDs.
func (r *MatchingResult) Detail() string { return intList(r.Edges) }

func intList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, " ")
}
