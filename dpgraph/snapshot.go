package dpgraph

import (
	"bytes"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/graph/index"
	"repro/internal/snapshot"
)

// Sealed release snapshots. A materialized synthetic-graph release —
// the released weight vector, its query index, and its privacy
// receipt — is immutable and privacy-free to copy: everything in it is
// already public output of the mechanism. Seal writes it as a signed
// binary artifact; Unseal reconstructs a ready-to-serve oracle from
// the artifact in milliseconds, without re-running contraction and
// without spending any privacy budget. The receipt travels with the
// artifact, so a restored replica serves under the original budget
// accounting rather than charging again.
//
// A snapshot received over the network is untrusted input: Unseal
// hard-fails on a bad signature, a section digest mismatch, an unknown
// format version, or a receipt that disagrees with the embedded
// arrays' metadata, and never returns a partial oracle.

// Snapshot error classes, re-exported from the container layer so
// callers can branch without importing internal packages. Every Unseal
// failure wraps ErrInvalidSnapshot; the finer classes identify bad
// signatures, digest mismatches, and version skew.
var (
	ErrInvalidSnapshot        = snapshot.ErrInvalid
	ErrSnapshotBadSignature   = snapshot.ErrBadSignature
	ErrSnapshotDigestMismatch = snapshot.ErrDigestMismatch
	ErrSnapshotUnknownVersion = snapshot.ErrUnknownVersion
)

// ErrNotSealable marks a release whose oracle Seal cannot serialize:
// only synthetic-graph releases (searching oracles over a released
// weight vector) have the flat-array form the container carries.
var ErrNotSealable = errors.New("dpgraph: release is not sealable (only synthetic-graph oracles can be sealed)")

// SealOption configures Seal.
type SealOption func(*sealConfig) error

type sealConfig struct {
	signingKey ed25519.PrivateKey
}

// WithSigningKey signs the sealed artifact's manifest with an ed25519
// key, letting consumers verify provenance with the matching public
// key. Signing is deterministic: re-sealing the same release yields
// byte-identical artifacts.
func WithSigningKey(key ed25519.PrivateKey) SealOption {
	return func(c *sealConfig) error {
		if len(key) != ed25519.PrivateKeySize {
			return fmt.Errorf("dpgraph: signing key has %d bytes, want %d", len(key), ed25519.PrivateKeySize)
		}
		c.signingKey = key
		return nil
	}
}

// UnsealOption configures Unseal.
type UnsealOption func(*unsealConfig) error

type unsealConfig struct {
	verifyKey ed25519.PublicKey
}

// WithVerifyKey requires the artifact to carry an ed25519 signature
// verifying against the given public key; unsigned artifacts and
// signatures by other keys fail with ErrSnapshotBadSignature.
func WithVerifyKey(key ed25519.PublicKey) UnsealOption {
	return func(c *unsealConfig) error {
		if len(key) != ed25519.PublicKeySize {
			return fmt.Errorf("dpgraph: verify key has %d bytes, want %d", len(key), ed25519.PublicKeySize)
		}
		c.verifyKey = key
		return nil
	}
}

// Sealable reports whether Seal can serialize the release behind
// oracle: true exactly for synthetic-graph oracles. Serving layers use
// it to answer "not sealable" cheaply before committing to a streamed
// response.
func Sealable(oracle DistanceOracle) bool {
	_, ok := oracle.(*syntheticOracle)
	return ok
}

// Seal writes the release behind (oracle, result) to w as a sealed
// snapshot artifact. The oracle must come from a synthetic-graph
// release (ErrNotSealable otherwise); the result supplies the privacy
// metadata and receipt embedded in the artifact. The arrays stream
// through a fixed-size buffer, so sealing a large release does not
// double its memory footprint.
func Seal(w io.Writer, oracle DistanceOracle, result Result, opts ...SealOption) error {
	var cfg sealConfig
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return err
		}
	}
	o, ok := oracle.(*syntheticOracle)
	if !ok {
		return ErrNotSealable
	}
	n, m := o.g.N(), o.g.M()
	if uint64(n) > math.MaxUint32 || uint64(m) > math.MaxUint32 {
		return fmt.Errorf("dpgraph: release too large to seal: %d vertices, %d edges (format caps both at 2^32)", n, m)
	}
	ri := result.Info()
	receiptJSON, err := json.Marshal(ri.Receipt)
	if err != nil {
		return fmt.Errorf("dpgraph: encoding receipt: %w", err)
	}
	art := &snapshot.Artifact{
		Meta: snapshot.Meta{
			FormatVersion: snapshot.FormatVersion,
			Writer:        snapshot.WriterVersion(),
			Mechanism:     ri.Mechanism,
			Epsilon:       ri.Epsilon,
			Delta:         ri.Delta,
			NoiseScale:    ri.NoiseScale,
			N:             n,
			M:             m,
			Directed:      o.g.Directed(),
			Receipt:       receiptJSON,
		},
		EdgeFrom: make([]uint32, m),
		EdgeTo:   make([]uint32, m),
		Weights:  o.w,
	}
	for i, e := range o.g.Edges() {
		art.EdgeFrom[i] = uint32(e.From)
		art.EdgeTo[i] = uint32(e.To)
	}
	if o.idx != nil {
		flat, err := index.Export(o.idx)
		if err != nil {
			return fmt.Errorf("dpgraph: exporting query index: %w", err)
		}
		art.Meta.Index = flat.Kind
		art.Meta.Landmarks = flat.Landmarks
		art.CHUpOff, art.CHUpTo, art.CHUpWt = flat.UpOff, flat.UpTo, flat.UpWt
		art.ALTLandmarks = flat.LD
		art.HLLabOff, art.HLLabHub, art.HLLabDist = flat.LabOff, flat.LabHub, flat.LabDist
	}
	return snapshot.Write(w, art, snapshot.WriteOptions{SigningKey: cfg.signingKey})
}

// Sealed is an unsealed snapshot: the release's metadata (it satisfies
// Result, with the original receipt carried over) plus a ready-to-
// serve oracle reconstructed from the embedded arrays. Unsealing is
// pure post-processing of an already-public artifact — it charges no
// privacy budget anywhere.
type Sealed struct {
	ReleaseInfo

	meta   snapshot.Meta
	info   *snapshot.Info
	oracle *syntheticOracle
}

// Oracle returns the reconstructed distance oracle: identical answers
// to the origin release, bit for bit, including through the rebuilt
// query index.
func (s *Sealed) Oracle() DistanceOracle { return s.oracle }

// Bound returns the per-edge noise bound holding for all edges
// simultaneously except with probability gamma, matching the origin
// SyntheticGraph result.
func (s *Sealed) Bound(gamma float64) float64 {
	if s.meta.M == 0 {
		return 0
	}
	return dp.UnionTailBound(s.NoiseScale, s.meta.M, gamma)
}

// Summary renders a short description of the unsealed release.
func (s *Sealed) Summary() string {
	idx := s.meta.Index
	if idx == "" {
		idx = "none"
	}
	return fmt.Sprintf("unsealed %s release: %d vertices, %d edges, index %s (noise scale %.4g)",
		s.Mechanism, s.meta.N, s.meta.M, idx, s.NoiseScale)
}

// IndexKind reports the embedded query index: "", "ch", "alt", or
// "hl".
func (s *Sealed) IndexKind() string { return s.meta.Index }

// Vertices and Edges report the size of the restored release.
func (s *Sealed) Vertices() int { return s.meta.N }
func (s *Sealed) Edges() int    { return s.meta.M }

// WriterVersion reports the build that sealed the artifact.
func (s *Sealed) WriterVersion() string { return s.meta.Writer }

// Signed reports whether the artifact carried a signature; Verified
// whether Unseal checked it against a caller-provided key.
func (s *Sealed) Signed() bool   { return s.info.Signed }
func (s *Sealed) Verified() bool { return s.info.Verified }

// Unseal reads a sealed snapshot from r and reconstructs the release:
// the topology from the edge arrays, the oracle over the released
// weights, and the query index rehydrated from its flat arrays without
// re-running contraction or landmark selection. It validates
// everything before returning — container structure, digests,
// signature (when WithVerifyKey is given), receipt consistency with
// the embedded metadata, and index-array invariants — and returns a
// nil Sealed on any failure.
func Unseal(r io.Reader, opts ...UnsealOption) (*Sealed, error) {
	var cfg unsealConfig
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	art, info, err := snapshot.Read(r, snapshot.ReadOptions{VerifyKey: cfg.verifyKey})
	if err != nil {
		return nil, err
	}
	meta := art.Meta

	// The receipt is the release's ledger entry; an artifact whose
	// receipt disagrees with its own metadata is forged or corrupt,
	// regardless of whether the bytes verify.
	var receipt Receipt
	dec := json.NewDecoder(bytes.NewReader(meta.Receipt))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&receipt); err != nil {
		return nil, fmt.Errorf("%w: receipt does not parse: %v", ErrInvalidSnapshot, err)
	}
	if receipt.Mechanism != meta.Mechanism {
		return nil, fmt.Errorf("%w: receipt mechanism %q disagrees with metadata %q", ErrInvalidSnapshot, receipt.Mechanism, meta.Mechanism)
	}
	if receipt.Epsilon != meta.Epsilon { //dpvet:allow floatcmp -- seal integrity: both sides round-trip the same JSON encoding, so equality is exact by construction
		return nil, fmt.Errorf("%w: receipt epsilon %g disagrees with metadata %g", ErrInvalidSnapshot, receipt.Epsilon, meta.Epsilon)
	}
	if receipt.Delta != meta.Delta { //dpvet:allow floatcmp -- seal integrity: both sides round-trip the same JSON encoding, so equality is exact by construction
		return nil, fmt.Errorf("%w: receipt delta %g disagrees with metadata %g", ErrInvalidSnapshot, receipt.Delta, meta.Delta)
	}

	g := graph.New(meta.N)
	if meta.Directed {
		g = graph.NewDirected(meta.N)
	}
	for i := 0; i < meta.M; i++ {
		g.AddEdge(int(art.EdgeFrom[i]), int(art.EdgeTo[i]))
	}
	hops := meta.N - 1
	if hops < 1 {
		hops = 1
	}
	noiseScale, m := meta.NoiseScale, meta.M
	o := &syntheticOracle{
		g: g,
		w: art.Weights,
		bound: func(gamma float64) float64 {
			if m == 0 {
				return 0
			}
			return float64(hops) * dp.UnionTailBound(noiseScale, m, gamma)
		},
	}
	if meta.Index != "" {
		flat := &index.FlatIndex{
			Kind:      meta.Index,
			UpOff:     art.CHUpOff,
			UpTo:      art.CHUpTo,
			UpWt:      art.CHUpWt,
			Landmarks: meta.Landmarks,
			LD:        art.ALTLandmarks,
			LabOff:    art.HLLabOff,
			LabHub:    art.HLLabHub,
			LabDist:   art.HLLabDist,
		}
		idx, err := index.Rehydrate(g, o.w, flat)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidSnapshot, err)
		}
		o.idx = idx
		o.cache = index.NewPairCache(0)
	}
	return &Sealed{
		ReleaseInfo: ReleaseInfo{
			Mechanism:  meta.Mechanism,
			Epsilon:    meta.Epsilon,
			Delta:      meta.Delta,
			NoiseScale: meta.NoiseScale,
			Receipt:    receipt,
		},
		meta:   meta,
		info:   info,
		oracle: o,
	}, nil
}
