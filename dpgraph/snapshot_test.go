package dpgraph

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/snapshot"
)

// sealedRelease materializes one seeded synthetic-graph release over
// the E20 topology family (grid, uniform random weights) and returns
// its oracle, result, and sealed bytes.
func sealedRelease(t testing.TB, side int, seed int64, mode QueryIndexMode, opts ...SealOption) (DistanceOracle, Result, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := Grid(side)
	w := UniformRandomWeights(g, 0.5, 3, rng)
	pg, err := New(g, PrivateWeights(w), WithEpsilon(1), WithDeterministicSeed(seed), WithQueryIndex(mode))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.Release()
	if err != nil {
		t.Fatal(err)
	}
	oracle := rel.Oracle()
	var buf bytes.Buffer
	if err := Seal(&buf, oracle, rel, opts...); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return oracle, rel, buf.Bytes()
}

// TestSealUnsealEquivalence is the round-trip property on the E20 grid
// family: the unsealed oracle must answer bit-identically to its
// origin release across the point, batch, and indexed query paths, and
// carry the origin receipt without re-charging.
func TestSealUnsealEquivalence(t *testing.T) {
	for _, mode := range []QueryIndexMode{IndexOff, IndexCH, IndexALT, IndexHL} {
		t.Run(mode.String(), func(t *testing.T) {
			origin, rel, data := sealedRelease(t, 20, 17, mode)
			sealed, err := Unseal(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("Unseal: %v", err)
			}
			restored := sealed.Oracle()
			if restored.N() != origin.N() {
				t.Fatalf("restored N = %d, origin %d", restored.N(), origin.N())
			}
			wantKind := map[QueryIndexMode]string{IndexOff: "", IndexCH: "ch", IndexALT: "alt", IndexHL: "hl"}[mode]
			if sealed.IndexKind() != wantKind {
				t.Fatalf("IndexKind = %q, want %q", sealed.IndexKind(), wantKind)
			}

			// Point path, bit for bit.
			rng := rand.New(rand.NewSource(5))
			n := origin.N()
			pairs := make([]VertexPair, 400)
			for i := range pairs {
				pairs[i] = VertexPair{S: rng.Intn(n), T: rng.Intn(n)}
				a, err := origin.Distance(pairs[i].S, pairs[i].T)
				if err != nil {
					t.Fatal(err)
				}
				b, err := restored.Distance(pairs[i].S, pairs[i].T)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("pair (%d,%d): origin %v, restored %v", pairs[i].S, pairs[i].T, a, b)
				}
			}
			// Batch path, bit for bit.
			wantBatch, err := origin.Distances(pairs)
			if err != nil {
				t.Fatal(err)
			}
			gotBatch, err := restored.Distances(pairs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pairs {
				if math.Float64bits(wantBatch[i]) != math.Float64bits(gotBatch[i]) {
					t.Fatalf("batch[%d]: origin %v, restored %v", i, wantBatch[i], gotBatch[i])
				}
			}
			// Error bounds and metadata match the origin result.
			for _, gamma := range []float64{0.01, 0.05, 0.5} {
				if a, b := origin.Bound(gamma), restored.Bound(gamma); math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("oracle bound at gamma %g: origin %v, restored %v", gamma, a, b)
				}
				if a, b := rel.Bound(gamma), sealed.Bound(gamma); math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("result bound at gamma %g: origin %v, restored %v", gamma, a, b)
				}
			}
			// The receipt is carried, not re-charged.
			or, sr := rel.Info().Receipt, sealed.Info().Receipt
			if or.Mechanism != sr.Mechanism || or.Epsilon != sr.Epsilon || or.Delta != sr.Delta || !or.Time.Equal(sr.Time) {
				t.Fatalf("receipt changed in transit: origin %v, restored %v", or, sr)
			}
			if sealed.Info().Epsilon != rel.Info().Epsilon || sealed.Info().NoiseScale != rel.Info().NoiseScale {
				t.Fatalf("release info changed in transit: %+v vs %+v", sealed.Info(), rel.Info())
			}
		})
	}
}

// TestUnsealedOracleConcurrent hammers a restored indexed oracle from
// many goroutines under -race: the rehydrated index and its fresh
// result cache must serve concurrently, agreeing with the origin.
func TestUnsealedOracleConcurrent(t *testing.T) {
	for _, mode := range []QueryIndexMode{IndexCH, IndexALT, IndexHL} {
		origin, _, data := sealedRelease(t, 12, 23, mode)
		sealed, err := Unseal(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		restored := sealed.Oracle()
		n := restored.N()
		want := make([]float64, n)
		for v := 0; v < n; v++ {
			d, err := origin.Distance(0, v)
			if err != nil {
				t.Fatal(err)
			}
			want[v] = d
		}
		var wg sync.WaitGroup
		for wk := 0; wk < 8; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					v := (i + wk*17) % n
					d, err := restored.Distance(0, v)
					if err != nil {
						t.Error(err)
						return
					}
					if math.Float64bits(d) != math.Float64bits(want[v]) {
						t.Errorf("concurrent query (0,%d) = %v, want %v", v, d, want[v])
						return
					}
				}
			}(wk)
		}
		wg.Wait()
	}
}

// TestSealSignedRoundTrip exercises the signing options end to end:
// verify with the right key, reject the wrong key and unsigned
// artifacts.
func TestSealSignedRoundTrip(t *testing.T) {
	pub, priv, err := snapshot.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	_, _, data := sealedRelease(t, 8, 3, IndexCH, WithSigningKey(priv))

	sealed, err := Unseal(bytes.NewReader(data), WithVerifyKey(pub))
	if err != nil {
		t.Fatalf("Unseal with verify key: %v", err)
	}
	if !sealed.Signed() || !sealed.Verified() {
		t.Fatalf("signed artifact reported signed=%v verified=%v", sealed.Signed(), sealed.Verified())
	}
	if sealed.WriterVersion() == "" {
		t.Fatal("sealed artifact carries no writer version")
	}

	otherPub, _, err := snapshot.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unseal(bytes.NewReader(data), WithVerifyKey(otherPub)); !errors.Is(err, ErrSnapshotBadSignature) {
		t.Fatalf("wrong key: err = %v, want ErrSnapshotBadSignature", err)
	}
	_, _, unsigned := sealedRelease(t, 8, 3, IndexCH)
	if _, err := Unseal(bytes.NewReader(unsigned), WithVerifyKey(pub)); !errors.Is(err, ErrSnapshotBadSignature) {
		t.Fatalf("unsigned artifact: err = %v, want ErrSnapshotBadSignature", err)
	}
	// Without a verify key the signature is reported but unchecked.
	sealed2, err := Unseal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !sealed2.Signed() || sealed2.Verified() {
		t.Fatalf("unverified read reported signed=%v verified=%v", sealed2.Signed(), sealed2.Verified())
	}
}

// TestSealRejectsNonSealable: lookup-backed oracles have no flat-array
// form and must be refused, not mis-serialized.
func TestSealRejectsNonSealable(t *testing.T) {
	g := Grid(4)
	rng := rand.New(rand.NewSource(9))
	w := UniformRandomWeights(g, 1, 2, rng)
	pg, err := New(g, PrivateWeights(w), WithDeterministicSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := pg.AllPairsDistances()
	if err != nil {
		t.Fatal(err)
	}
	if err := Seal(&bytes.Buffer{}, rel.Oracle(), rel); !errors.Is(err, ErrNotSealable) {
		t.Fatalf("sealing a table oracle: err = %v, want ErrNotSealable", err)
	}
}

// TestUnsealRejectsForgedReceipt: an artifact whose receipt disagrees
// with its own metadata must hard-fail even though the container
// itself is well-formed — the receipt cross-check is the last line
// against a spliced artifact.
func TestUnsealRejectsForgedReceipt(t *testing.T) {
	art := &snapshot.Artifact{
		Meta: snapshot.Meta{
			FormatVersion: snapshot.FormatVersion,
			Mechanism:     "release",
			Epsilon:       1,
			NoiseScale:    4,
			N:             2,
			M:             1,
			// Receipt claims a different epsilon than the metadata.
			Receipt: json.RawMessage(`{"mechanism":"release","epsilon":8,"time":"2026-01-02T03:04:05Z"}`),
		},
		EdgeFrom: []uint32{0},
		EdgeTo:   []uint32{1},
		Weights:  []float64{1.5},
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, art, snapshot.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	sealed, err := Unseal(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrInvalidSnapshot) {
		t.Fatalf("forged receipt: err = %v, want ErrInvalidSnapshot", err)
	}
	if sealed != nil {
		t.Fatal("forged receipt returned a sealed release")
	}

	// Mismatched mechanism, same shape.
	art.Meta.Receipt = json.RawMessage(`{"mechanism":"treesssp","epsilon":1,"time":"2026-01-02T03:04:05Z"}`)
	buf.Reset()
	if err := snapshot.Write(&buf, art, snapshot.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Unseal(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrInvalidSnapshot) {
		t.Fatalf("forged mechanism: err = %v, want ErrInvalidSnapshot", err)
	}
}

// FuzzUnseal throws corrupted archives at Unseal: truncations,
// bit flips, and length-lying headers. The contract is typed errors
// only — no panics, and never a partial oracle.
func FuzzUnseal(f *testing.F) {
	seeds := make([][]byte, 0, 8)
	for _, mode := range []QueryIndexMode{IndexOff, IndexCH, IndexALT, IndexHL} {
		_, _, data := sealedRelease(f, 5, int64(mode)+1, mode)
		seeds = append(seeds, data)
	}
	_, priv, err := snapshot.GenerateKey()
	if err != nil {
		f.Fatal(err)
	}
	_, _, signed := sealedRelease(f, 5, 9, IndexCH, WithSigningKey(priv))
	seeds = append(seeds, signed)

	base := seeds[1]
	// Truncations at structural boundaries.
	for _, cut := range []int{0, 7, 8, 55, 56, 120, len(base) / 2, len(base) - 1} {
		if cut < len(base) {
			seeds = append(seeds, base[:cut])
		}
	}
	// Bit flips in the header, table, and payload.
	for _, pos := range []int{9, 12, 60, 80, 200, len(base) - 30} {
		if pos >= 0 && pos < len(base) {
			mut := append([]byte(nil), base...)
			mut[pos] ^= 0x10
			seeds = append(seeds, mut)
		}
	}
	// Length-lying header: manifest length maxed out.
	mut := append([]byte(nil), base...)
	for i := 24; i < 32; i++ {
		mut[i] = 0xFF
	}
	seeds = append(seeds, mut)
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		sealed, err := Unseal(bytes.NewReader(data))
		if err != nil {
			if sealed != nil {
				t.Fatal("Unseal returned a sealed release alongside an error")
			}
			if !errors.Is(err, ErrInvalidSnapshot) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		// Accepted input must yield a fully working oracle.
		o := sealed.Oracle()
		if o == nil {
			t.Fatal("accepted snapshot has no oracle")
		}
		if o.N() > 0 {
			if _, err := o.Distance(0, o.N()-1); err != nil {
				t.Fatalf("accepted snapshot's oracle fails: %v", err)
			}
		}
		sealed.Bound(0.05)
		_ = sealed.Summary()
	})
}
