package dpgraph

import (
	"fmt"
	"strings"
)

// ReleaseSpec describes one oracle-backed release to materialize: which
// mechanism to run, its arguments, and the privacy parameters of the
// session that will pay for it. It is the single release-construction
// path shared by the CLI query subcommand and the HTTP serving layer,
// and doubles as the wire format of the server's POST /v1/releases body.
//
// Zero-valued parameters take the session defaults (epsilon 1, gamma
// 0.05, scale 1, delta 0); Seed 0 keeps crypto-grade noise, and an empty
// Index means unindexed serving.
type ReleaseSpec struct {
	// Mechanism is the registry name; it must carry an Oracle runner
	// (see OracleMechanisms).
	Mechanism string `json:"mechanism"`

	// Root is the source vertex for single-source mechanisms (treesssp).
	Root int `json:"root,omitempty"`
	// MaxWeight is the public weight cap for bounded-weight mechanisms.
	MaxWeight float64 `json:"maxweight,omitempty"`

	// Epsilon, Delta, Gamma, and Scale are the session privacy
	// parameters; zero values take the defaults (1, 0, 0.05, 1).
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	Gamma   float64 `json:"gamma,omitempty"`
	Scale   float64 `json:"scale,omitempty"`

	// Seed, when nonzero, opts into deterministic noise (tests and
	// experiments only; predictable noise offers no privacy).
	Seed int64 `json:"seed,omitempty"`

	// Index selects the query-speedup index over the materialized
	// release: "", "off", "auto", "ch", "alt", or "hl"
	// (ParseQueryIndexMode spellings; empty means off).
	Index string `json:"index,omitempty"`
}

// Materialize opens a fresh, independently budgeted session over the
// public topology and private weights, runs the mechanism's Oracle
// runner — the only budget-charging step — and returns the oracle
// together with the release result carrying the receipt. Every oracle
// query afterwards is free post-processing.
func (spec ReleaseSpec) Materialize(topology *Graph, private Weights) (DistanceOracle, Result, error) {
	desc, ok := Mechanism(spec.Mechanism)
	if !ok {
		return nil, nil, fmt.Errorf("dpgraph: unknown mechanism %q", spec.Mechanism)
	}
	if desc.Oracle == nil {
		return nil, nil, fmt.Errorf("dpgraph: mechanism %q releases no distance oracle; oracle-capable: %s",
			spec.Mechanism, strings.Join(OracleMechanisms(), " "))
	}
	if desc.NeedsMaxWeight && !(spec.MaxWeight > 0) {
		return nil, nil, fmt.Errorf("dpgraph: mechanism %q requires a positive maxweight", spec.Mechanism)
	}
	mode := IndexOff
	if spec.Index != "" {
		var err error
		if mode, err = ParseQueryIndexMode(spec.Index); err != nil {
			return nil, nil, err
		}
	}
	opts := []Option{WithQueryIndex(mode)}
	if spec.Epsilon != 0 {
		opts = append(opts, WithEpsilon(spec.Epsilon))
	}
	if spec.Delta != 0 {
		opts = append(opts, WithDelta(spec.Delta))
	}
	if spec.Gamma != 0 {
		opts = append(opts, WithGamma(spec.Gamma))
	}
	if spec.Scale != 0 {
		opts = append(opts, WithScale(spec.Scale))
	}
	if spec.Seed != 0 {
		opts = append(opts, WithDeterministicSeed(spec.Seed))
	}
	pg, err := New(topology, private, opts...)
	if err != nil {
		return nil, nil, err
	}
	return desc.Oracle(pg, Args{Root: spec.Root, MaxWeight: spec.MaxWeight})
}
