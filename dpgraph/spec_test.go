package dpgraph

import (
	"strings"
	"testing"
)

// TestReleaseSpecMaterialize pins the shared CLI/server release
// constructor to the direct session path: same seed, same mechanism,
// same answers.
func TestReleaseSpecMaterialize(t *testing.T) {
	grid := Grid(5)
	w := make([]float64, grid.M())
	for i := range w {
		w[i] = 1 + float64(i%3)
	}

	pg, err := New(grid, PrivateWeights(w), WithEpsilon(2), WithDeterministicSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	syn, err := pg.Release()
	if err != nil {
		t.Fatal(err)
	}
	want := syn.Oracle()

	oracle, res, err := ReleaseSpec{Mechanism: "release", Epsilon: 2, Seed: 11}.Materialize(grid, PrivateWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	if res.Info().Mechanism != "release" || res.Info().Epsilon != 2 {
		t.Errorf("release info = %+v", res.Info())
	}
	if oracle.N() != grid.N() {
		t.Errorf("oracle serves %d vertices, want %d", oracle.N(), grid.N())
	}
	for _, p := range [][2]int{{0, 24}, {3, 17}, {5, 5}} {
		got, err := oracle.Distance(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		ref, err := want.Distance(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("Distance(%d, %d) = %g via spec, %g via session", p[0], p[1], got, ref)
		}
	}
}

// TestReleaseSpecIndexed checks that an Index spelling flows through to
// the indexed oracle and answers match the unindexed release bit-wise
// on a seeded session.
func TestReleaseSpecIndexed(t *testing.T) {
	grid := Grid(6)
	w := make([]float64, grid.M())
	for i := range w {
		w[i] = float64(1 + i%5)
	}
	plainO, _, err := ReleaseSpec{Mechanism: "release", Seed: 3}.Materialize(grid, PrivateWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	chO, _, err := ReleaseSpec{Mechanism: "release", Seed: 3, Index: "ch"}.Materialize(grid, PrivateWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := chO.(interface {
		CacheStats() (uint64, uint64, bool)
	}).CacheStats(); !ok {
		t.Error("indexed oracle reports no cache stats")
	}
	for s := 0; s < grid.N(); s += 7 {
		for u := 0; u < grid.N(); u += 5 {
			a, err1 := plainO.Distance(s, u)
			b, err2 := chO.Distance(s, u)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if diff := a - b; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("Distance(%d, %d): unindexed %g vs ch %g", s, u, a, b)
			}
		}
	}
}

func TestReleaseSpecTreeRoot(t *testing.T) {
	tree := BalancedBinaryTree(15)
	w := make([]float64, tree.M())
	for i := range w {
		w[i] = 2
	}
	oracle, res, err := ReleaseSpec{Mechanism: "treesssp", Root: 3, Seed: 9}.Materialize(tree, PrivateWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.(*TreeSSSPResult).Root; got != 3 {
		t.Errorf("release root = %d, want 3", got)
	}
	if d, err := oracle.Distance(3, 3); err != nil || d != 0 {
		t.Errorf("Distance(root, root) = (%g, %v)", d, err)
	}
}

func TestReleaseSpecErrors(t *testing.T) {
	grid := Grid(3)
	w := make([]float64, grid.M())
	cases := []struct {
		spec ReleaseSpec
		want string
	}{
		{ReleaseSpec{Mechanism: "nope"}, "unknown mechanism"},
		{ReleaseSpec{Mechanism: "mst"}, "no distance oracle"},
		{ReleaseSpec{Mechanism: "bounded"}, "maxweight"},
		{ReleaseSpec{Mechanism: "release", Index: "bogus"}, "index mode"},
		{ReleaseSpec{Mechanism: "release", Epsilon: -1}, "epsilon"},
		{ReleaseSpec{Mechanism: "release", Gamma: 2}, "gamma"},
	}
	for _, c := range cases {
		_, _, err := c.spec.Materialize(grid, PrivateWeights(w))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %+v: err = %v, want substring %q", c.spec, err, c.want)
		}
	}
}
