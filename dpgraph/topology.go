package dpgraph

import (
	"encoding/json"
	"io"
	"math/rand" //dpvet:allow noiserand -- UniformRandomWeights generates public test topologies from a caller-supplied rng; weights are inputs, not releases
	"os"
	"strings"

	"repro/internal/graph"
)

// Graph is the public topology type. Downstream consumers construct and
// manipulate it entirely through this package (NewGraph, AddEdge, the
// generators, and the file loaders); the alias keeps the internal
// algorithmic kernels and the public facade on one representation.
type Graph = graph.Graph

// NewGraph returns an empty undirected multigraph on n vertices; add
// edges with AddEdge, which returns the new edge's ID (the index into
// the weight vector).
func NewGraph(n int) *Graph { return graph.New(n) }

// NewDirectedGraph returns an empty directed multigraph on n vertices.
func NewDirectedGraph(n int) *Graph { return graph.NewDirected(n) }

// Generators for common public topologies.

// PathGraph returns the path on n vertices (edge i joins i and i+1).
func PathGraph(n int) *Graph { return graph.Path(n) }

// Grid returns the side x side grid graph.
func Grid(side int) *Graph { return graph.Grid(side) }

// Cycle returns the cycle on n vertices.
func Cycle(n int) *Graph { return graph.Cycle(n) }

// Star returns the star with n leaves.
func Star(n int) *Graph { return graph.Star(n) }

// Complete returns the complete graph on n vertices.
func Complete(n int) *Graph { return graph.Complete(n) }

// CompleteBipartite returns the complete bipartite graph K_{a,b}.
func CompleteBipartite(a, b int) *Graph { return graph.CompleteBipartite(a, b) }

// BalancedBinaryTree returns the balanced binary tree on n vertices.
func BalancedBinaryTree(n int) *Graph { return graph.BalancedBinaryTree(n) }

// Caterpillar returns a caterpillar tree: a spine path with legs leaves
// attached round-robin.
func Caterpillar(spine, legs int) *Graph { return graph.Caterpillar(spine, legs) }

// UniformRandomWeights draws an i.i.d. uniform [lo, hi) weight per edge;
// a convenience for demos and synthetic private inputs.
func UniformRandomWeights(g *Graph, lo, hi float64, rng *rand.Rand) []float64 {
	return graph.UniformRandomWeights(g, lo, hi, rng)
}

// ReadGraphFile loads a graph (and its weight vector, if present) from a
// file in either the text edge-list format or the JSON format; the
// format is sniffed from the content.
func ReadGraphFile(path string) (*Graph, []float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return ParseGraph(data)
}

// ParseGraph decodes a graph from text edge-list or JSON bytes.
func ParseGraph(data []byte) (*Graph, []float64, error) {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		var probe json.RawMessage
		if json.Unmarshal(data, &probe) == nil {
			return graph.UnmarshalJSONGraph(data)
		}
	}
	return graph.ReadText(strings.NewReader(string(data)))
}

// MarshalGraphJSON encodes a graph and weight vector as JSON.
func MarshalGraphJSON(g *Graph, w []float64) ([]byte, error) {
	return graph.MarshalJSONGraph(g, w)
}

// WriteGraphText writes a graph and weight vector in the text edge-list
// format that ReadGraphFile accepts.
func WriteGraphText(out io.Writer, g *Graph, w []float64) error {
	return graph.WriteText(out, g, w)
}
