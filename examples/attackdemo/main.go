// Attackdemo: why Omega(V) error is unavoidable (Theorem 5.1).
//
// The paper's lower bound is constructive: an adversary who sees a
// released short path on the Figure-2 gadget graph can read the private
// database right off the path's edges. This demo runs that adversary
// against the repository's own Algorithm 3 at several privacy levels and
// shows the forced tradeoff:
//
//   - strong privacy (small eps)  -> reconstruction fails, but the path
//     must be long (error ~ n/2);
//   - weak privacy (large eps)    -> the path is short, and the adversary
//     recovers nearly every bit.
//
// No mechanism can escape: Lemma 5.4 lower-bounds the Hamming distance of
// ANY DP algorithm's implicit reconstruction, and Lemma 5.2 shows path
// error >= that Hamming distance.
//
// Run: go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/dpgraph"
	"repro/internal/attack"
	"repro/internal/graph"
)

func main() {
	const n = 512
	const trials = 5
	rng := rand.New(rand.NewSource(3))
	gadget := graph.NewPathGadget(n)

	fmt.Printf("gadget: %d vertices, %d parallel-edge positions; secret database: %d bits\n\n",
		gadget.G.N(), n, n)
	fmt.Println("  eps   recovered bits   path error   theory floor a(2eps)   verdict")

	for _, eps := range []float64{0.05, 0.5, 1, 2, 5, 20} {
		var ham, perr float64
		for trial := 0; trial < trials; trial++ {
			x := attack.RandomBits(n, rng)
			mech := func(g *graph.Graph, w []float64, s, t int) ([]int, error) {
				pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
					dpgraph.WithEpsilon(eps), dpgraph.WithNoiseSource(rng))
				if err != nil {
					return nil, err
				}
				pp, err := pg.ShortestPaths()
				if err != nil {
					return nil, err
				}
				return pp.Path(s, t)
			}
			res, err := attack.PathReconstruction(x, mech, gadget)
			if err != nil {
				log.Fatal(err)
			}
			ham += float64(res.Hamming)
			perr += res.PathError
		}
		ham /= trials
		perr /= trials
		floor := attack.ReconstructionBound(n, 2*eps, 0)
		verdict := "private but inaccurate"
		if ham < float64(n)/8 {
			verdict = "accurate but LEAKING"
		}
		fmt.Printf("%5.2f   %6.0f / %d     %10.1f   %20.1f   %s\n",
			eps, float64(n)-ham, n, perr, floor, verdict)
	}

	fmt.Println("\nreading a victim's bits at eps=20 (weak privacy):")
	x := attack.RandomBits(16, rng)
	small := graph.NewPathGadget(16)
	mech := func(g *graph.Graph, w []float64, s, t int) ([]int, error) {
		pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
			dpgraph.WithEpsilon(20), dpgraph.WithNoiseSource(rng))
		if err != nil {
			return nil, err
		}
		pp, err := pg.ShortestPaths()
		if err != nil {
			return nil, err
		}
		return pp.Path(s, t)
	}
	res, err := attack.PathReconstruction(x, mech, small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  secret: %s\n  guess:  %s\n  (%d/16 bits correct)\n",
		bits(x), bits(res.Guess), 16-res.Hamming)
}

func bits(x []bool) string {
	out := make([]byte, len(x))
	for i, b := range x {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
