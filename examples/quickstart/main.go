// Quickstart: the private edge-weight model in one small program, via
// the public dpgraph API.
//
// A ride network's topology (which roads exist) is public; its observed
// travel times are private. We bind the private weights into one
// dpgraph.PrivateGraph session with a total privacy budget, release a
// private distance, a private route, private all-pairs tree distances,
// and a private spanning tree — each returning a typed result with an
// explicit error bound — and finish by printing the session's privacy
// receipts ledger.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/dpgraph"
	"repro/internal/graph"
)

func main() {
	// Public topology: a 5x5 street grid.
	g := dpgraph.Grid(5)
	rng := rand.New(rand.NewSource(42))

	// Private data: observed travel minutes per segment. (The rng here
	// only simulates the private input; the session's noise is seeded
	// separately so the demo is reproducible.)
	w := dpgraph.UniformRandomWeights(g, 2, 10, rng)

	pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
		dpgraph.WithEpsilon(1),
		dpgraph.WithGamma(0.05),
		dpgraph.WithBudget(4, 0), // at most four eps-1 releases, enforced
		dpgraph.WithDeterministicSeed(42))
	check(err)
	s, t := 0, g.N()-1 // opposite corners

	// 1. One private distance query (sensitivity 1, Laplace mechanism).
	exact, err := graph.Distance(g, w, s, t) // data-owner-side truth
	check(err)
	dist, err := pg.Distance(s, t)
	check(err)
	fmt.Printf("distance %d->%d: exact %.2f, private %.2f (±%.2f at gamma=0.05)\n",
		s, t, exact, dist.Value, dist.Bound(0.05))

	// 2. A private route (Algorithm 3): one release answers every pair.
	paths, err := pg.ShortestPaths()
	check(err)
	route, err := paths.Path(s, t)
	check(err)
	verts, err := paths.PathVertices(s, t)
	check(err)
	fmt.Printf("private route %d->%d: %v\n", s, t, verts)
	fmt.Printf("  true time of released route %.2f vs optimum %.2f (bound for %d-hop optima: +%.2f)\n",
		graph.PathWeight(w, route), exact, 8, paths.BoundKHops(8, 0.05))

	// 3. All-pairs distances on a tree (Algorithm 1 + LCA): polylog
	// error. Trees get their own session since they are a different
	// private database.
	tree := dpgraph.BalancedBinaryTree(31)
	tw := dpgraph.UniformRandomWeights(tree, 1, 5, rng)
	tpg, err := dpgraph.New(tree, dpgraph.PrivateWeights(tw),
		dpgraph.WithEpsilon(1), dpgraph.WithDeterministicSeed(43))
	check(err)
	apsd, err := tpg.TreeAllPairs()
	check(err)
	tr, err := graph.NewTree(tree, 0)
	check(err)
	fmt.Printf("tree distance 7->28: exact %.2f, private %.2f (per-pair bound %.2f)\n",
		tr.TreeDistance(tw, 7, 28), apsd.Distance(7, 28), apsd.PerPairBound(0.05))

	// Release once, query many: the release's DistanceOracle answers any
	// number of further pairs with zero additional budget — the receipts
	// ledger printed below records one tree release, not 900 queries.
	oracle := apsd.Oracle()
	var pairs []dpgraph.VertexPair
	for i := 0; i < 900; i++ {
		pairs = append(pairs, dpgraph.VertexPair{S: i % 30, T: (i*7 + 1) % 31})
	}
	dists, err := oracle.Distances(pairs)
	check(err)
	fmt.Printf("answered %d more tree queries from the same release (first: %.2f, budget spent: still ε=1)\n",
		len(dists), dists[0])

	// 4. A private near-minimum spanning tree (Appendix B).
	mst, err := pg.MST()
	check(err)
	_, optW, err := graph.MST(g, w)
	check(err)
	fmt.Printf("private spanning tree: true weight %.2f vs optimum %.2f (bound +%.2f)\n",
		mst.TrueWeight(w), optW, mst.Bound(0.05))

	// The session accounted for every release; print the ledger.
	eps, _ := pg.Spent()
	remaining, _ := pg.Remaining()
	fmt.Printf("\nprivacy receipts (spent ε=%g, remaining ε=%g):\n", eps, remaining)
	for _, r := range pg.Receipts() {
		fmt.Printf("  %-10s ε=%g\n", r.Mechanism, r.Epsilon)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
