// Quickstart: the private edge-weight model in one small program.
//
// A ride network's topology (which roads exist) is public; its observed
// travel times are private. We release a private distance, a private
// route, private all-pairs tree distances, and a private spanning tree —
// each with an explicit (eps, delta) guarantee — and compare against the
// non-private truth.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// Public topology: a 5x5 street grid.
	g := graph.Grid(5)
	rng := rand.New(rand.NewSource(42))

	// Private data: observed travel minutes per segment.
	w := graph.UniformRandomWeights(g, 2, 10, rng)

	opts := core.Options{Epsilon: 1.0, Gamma: 0.05, Rand: rng}
	s, t := 0, g.N()-1 // opposite corners

	// 1. One private distance query (sensitivity 1, Laplace mechanism).
	exact, err := graph.Distance(g, w, s, t)
	check(err)
	private, err := core.PrivateDistance(g, w, s, t, opts)
	check(err)
	fmt.Printf("distance %d->%d: exact %.2f, private %.2f (eps=1)\n", s, t, exact, private)

	// 2. A private route (Algorithm 3): one release answers every pair.
	pp, err := core.PrivateShortestPaths(g, w, opts)
	check(err)
	route, err := pp.Path(s, t)
	check(err)
	fmt.Printf("private route %d->%d: %v\n", s, t, g.PathVertices(s, route))
	fmt.Printf("  true time of released route %.2f vs optimum %.2f (bound for %d-hop optima: +%.2f)\n",
		graph.PathWeight(w, route), exact, 8, pp.ErrorBound(8))

	// 3. All-pairs distances on a tree (Algorithm 1 + LCA): polylog error.
	tree := graph.BalancedBinaryTree(31)
	tw := graph.UniformRandomWeights(tree, 1, 5, rng)
	apsd, err := core.TreeAllPairs(tree, tw, opts)
	check(err)
	tr, err := graph.NewTree(tree, 0)
	check(err)
	fmt.Printf("tree distance 7->28: exact %.2f, private %.2f (per-pair bound %.2f)\n",
		tr.TreeDistance(tw, 7, 28), apsd.Query(7, 28), apsd.PerPairErrorBound(0.05))

	// 4. A private near-minimum spanning tree (Appendix B).
	mst, err := core.PrivateMST(g, w, opts)
	check(err)
	_, optW, err := graph.MST(g, w)
	check(err)
	fmt.Printf("private spanning tree: true weight %.2f vs optimum %.2f (bound +%.2f)\n",
		mst.TrueWeight(w), optW, mst.ErrorBound(g, 0.05))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
