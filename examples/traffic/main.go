// Traffic: the paper's motivating application (Section 1.1) end to end.
//
// A navigation service knows the city street map (public) and aggregates
// drivers' GPS-derived travel times (private). It wants to answer "fastest
// route from A to B right now" without revealing the congestion pattern —
// which could expose, say, where a protest or a celebrity convoy is.
//
// We simulate a business day: every two hours the service refreshes its
// private release from current travel times — opening a fresh
// dpgraph.PrivateGraph session per refresh, since each refresh binds a
// new private database — and serves routes. The demo prints, per refresh,
// the median/95th-percentile stretch of private routes versus true
// fastest routes, plus a commuter's 8am route.
//
// Run: go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/dpgraph"
	"repro/internal/graph"
	"repro/internal/traffic"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	city, err := traffic.NewCity(traffic.Config{Side: 20}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d intersections, %d road segments (arterials every 4 blocks)\n\n",
		city.G.N(), city.G.M())

	const eps = 1.0
	home := city.VertexAt(1, 1)
	office := city.VertexAt(18, 17)

	fmt.Println("hour  medStretch  p95Stretch  medAbsErr(min)  commute(min true/opt)")
	for hour := 6.0; hour <= 20; hour += 2 {
		w := city.TravelTimes(traffic.CongestionModel{Hour: hour}, rng)
		pg, err := dpgraph.New(city.G, dpgraph.PrivateWeights(w),
			dpgraph.WithEpsilon(eps), dpgraph.WithNoiseSource(rng))
		if err != nil {
			log.Fatal(err)
		}
		pp, err := pg.ShortestPaths()
		if err != nil {
			log.Fatal(err)
		}

		var stretches, absErrs []float64
		for trip := 0; trip < 150; trip++ {
			s := rng.Intn(city.G.N())
			t := rng.Intn(city.G.N())
			if s == t {
				continue
			}
			exact, err := graph.Distance(city.G, w, s, t)
			if err != nil {
				log.Fatal(err)
			}
			route, err := pp.Path(s, t)
			if err != nil {
				log.Fatal(err)
			}
			got := graph.PathWeight(w, route)
			stretches = append(stretches, got/exact)
			absErrs = append(absErrs, got-exact)
		}
		commuteRoute, err := pp.Path(home, office)
		if err != nil {
			log.Fatal(err)
		}
		commuteTrue := graph.PathWeight(w, commuteRoute)
		commuteOpt, err := graph.Distance(city.G, w, home, office)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0f  %10.3f  %10.3f  %14.2f  %6.1f / %.1f\n",
			hour, quantile(stretches, 0.5), quantile(stretches, 0.95),
			quantile(absErrs, 0.5), commuteTrue, commuteOpt)
	}

	// For dashboards, the service can also publish private all-pairs
	// travel-time estimates via the bounded-weight mechanism: travel
	// times are bounded by city.MaxTime, so Algorithm 2 applies. The
	// release is paid for once; its DistanceOracle then serves the whole
	// morning query load as free post-processing.
	w := city.TravelTimes(traffic.CongestionModel{Hour: 8}, rng)
	pg, err := dpgraph.New(city.G, dpgraph.PrivateWeights(w),
		dpgraph.WithEpsilon(eps), dpgraph.WithDelta(1e-6), dpgraph.WithNoiseSource(rng))
	if err != nil {
		log.Fatal(err)
	}
	rel, err := pg.BoundedAllPairs(city.MaxTime)
	if err != nil {
		log.Fatal(err)
	}
	oracle := rel.Oracle()
	trips := city.CommuteTrips(10000, 4, rng)
	pairs := make([]dpgraph.VertexPair, len(trips))
	for i, tr := range trips {
		pairs[i] = dpgraph.VertexPair{S: tr.From, T: tr.To}
	}
	if _, err := oracle.Distances(pairs); err != nil {
		log.Fatal(err)
	}
	est, err := oracle.Distance(home, office)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := graph.Distance(city.G, w, home, office)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n8am dashboard estimate home->office: %.1f min (true %.1f; covering k=%d |Z|=%d; bound ±%.1f)\n",
		est, exact, rel.K, rel.CoveringSize, oracle.Bound(0.05))
	epsSpent, _ := pg.Spent()
	fmt.Printf("served %d commute queries from one release: %d receipt(s), ε=%g spent in total\n",
		len(trips)+1, len(pg.Receipts()), epsSpent)
}

func quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
