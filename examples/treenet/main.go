// Treenet: all-pairs distances on a hierarchical (tree) network.
//
// Many distribution networks are trees: river systems, utility feeders,
// ISP access networks, org hierarchies. Here an electricity utility wants
// to publish pairwise "electrical distance" (impedance along the unique
// feeder path) between all substations, but line impedances reveal
// private load data. The tree mechanism (Algorithm 1 + Theorem 4.2)
// answers every pair with polylog(V) error — exponentially better than
// the V/eps error of generic mechanisms.
//
// Run: go run ./examples/treenet
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/dpgraph"
	"repro/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// The feeder network: 2048 substations along a long rural trunk line
	// with 2047 local taps — a deep tree, so paths between far substations
	// cross hundreds of lines. (On shallow trees with few-hop paths, even
	// the naive noisy-graph release does fine; depth is where the tree
	// mechanism's polylog guarantee earns its keep.)
	n := 4095
	g := dpgraph.Caterpillar(2048, n-2048)
	w := dpgraph.UniformRandomWeights(g, 0.5, 3.0, rng) // per-line impedance

	pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
		dpgraph.WithEpsilon(1), dpgraph.WithGamma(0.05), dpgraph.WithNoiseSource(rng))
	if err != nil {
		log.Fatal(err)
	}
	apsd, err := pg.TreeAllPairs()
	if err != nil {
		log.Fatal(err)
	}
	tr, err := graph.NewTree(g, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The utility serves all queries from the release's oracle: one
	// receipt, unbounded lookups.
	oracle := apsd.Oracle()

	// Spot-check a few pairs.
	fmt.Println("pair            exact   private   |err|")
	for _, pair := range [][2]int{{12, 3077}, {500, 501}, {1, 4094}, {2048, 1024}} {
		exact := tr.TreeDistance(w, pair[0], pair[1])
		got, err := oracle.Distance(pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d %5d  %8.2f  %8.2f  %6.2f\n", pair[0], pair[1], exact, got, math.Abs(got-exact))
	}

	// Survey error over many random pairs and compare mechanisms.
	worstTree, worstNaive := 0.0, 0.0
	naive, err := pg.Release()
	if err != nil {
		log.Fatal(err)
	}
	naiveDist := tr.RootDistances(naive.Weights) // naive estimate via noisy weights
	lca := graph.NewLCA(tr)
	for i := 0; i < 4000; i++ {
		x, y := rng.Intn(n), rng.Intn(n)
		if x == y {
			continue
		}
		exact := tr.TreeDistance(w, x, y)
		got, err := oracle.Distance(x, y)
		if err != nil {
			log.Fatal(err)
		}
		if e := math.Abs(got - exact); e > worstTree {
			worstTree = e
		}
		z := lca.Find(x, y)
		naiveEst := naiveDist[x] + naiveDist[y] - 2*naiveDist[z]
		if e := math.Abs(naiveEst - exact); e > worstNaive {
			worstNaive = e
		}
	}
	fmt.Printf("\nmax |err| over 4000 pairs, V=%d, eps=1:\n", n)
	fmt.Printf("  tree mechanism (Thm 4.2):   %7.2f   grows ~log^2.5 V  (bound %.2f)\n", worstTree, apsd.Bound(0.05))
	fmt.Printf("  naive noisy-graph release:  %7.2f   grows ~sqrt(V) on deep trees\n", worstNaive)
	fmt.Printf("  generic composition noise per query would be ~%.0f (grows ~V)\n", float64(n))
	eps, _ := pg.Spent()
	fmt.Printf("\ntotal privacy spent by this session: ε=%g (%d releases)\n", eps, len(pg.Receipts()))
	fmt.Println("\nat this V the naive release's sqrt(V) constant is still smaller; the")
	fmt.Println("tree mechanism's polylog curve overtakes it as networks grow (run")
	fmt.Println("'go run ./cmd/experiments -run E3' to see the fitted growth exponents:")
	fmt.Println("~0.25 for the polylog mechanisms vs ~0.53 for the naive release)")
}
