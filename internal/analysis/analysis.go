// Package analysis is dpvet: a suite of static analyzers that machine-check
// the repository's load-bearing conventions — the DP-safety rules (all
// mechanism noise flows through dp.NoiseSource, every non-error result is
// paid for through the budget accountant), the zero-allocation serving hot
// paths, lock discipline in the serving and cluster tiers, and float-equality
// hygiene on noisy distances.
//
// The suite deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) but is self-contained on the standard
// library: packages are loaded through `go list -export -deps -json` and
// type-checked from source with export data for imports, so the checker
// builds and runs with no module downloads. cmd/dpvet drives it both
// standalone (dpvet ./...) and as a `go vet -vettool` unitchecker.
//
// Violations are suppressed, one site at a time, with a justified directive:
//
//	//dpvet:allow <analyzer> -- <justification>
//
// placed either at the end of the offending line or in the doc comment of
// the enclosing declaration (which suppresses the whole declaration). A
// missing or empty justification is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Diagnostic is one reported violation, carrying its resolved position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // non-test files only
	Pkg      *types.Package
	PkgPath  string // normalized import path (test-variant suffix stripped)
	Info     *types.Info

	sink *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.Info.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Analyzers returns the full dpvet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoiseRandAnalyzer,
		BudgetFlowAnalyzer,
		HotPathAnalyzer,
		LockHeldAnalyzer,
		FloatCmpAnalyzer,
	}
}

// analyzerNames is the set of valid names for //dpvet:allow directives.
func analyzerNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// normalizePkgPath strips cmd/go's test-variant suffix
// ("repro/dpgraph [repro/dpgraph.test]" -> "repro/dpgraph") so scope
// matching behaves identically under `go vet` and standalone runs.
func normalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// RunPackage runs the analyzers over one loaded package and returns the
// surviving diagnostics: directive-suppressed findings are dropped,
// malformed directives are reported under the "dpvet" pseudo-analyzer,
// and the result is sorted by position.
func RunPackage(pkg *LoadedPackage, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	files := nonTestFiles(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    files,
			Pkg:      pkg.Types,
			PkgPath:  normalizePkgPath(pkg.PkgPath),
			Info:     pkg.Info,
			sink:     &raw,
		}
		a.Run(pass)
	}

	dirs, dirDiags := parseDirectives(pkg.Fset, files)
	var out []Diagnostic
	for _, d := range raw {
		if !suppressed(dirs, d) {
			out = append(out, d)
		}
	}
	out = append(out, dirDiags...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// nonTestFiles drops _test.go files: dpvet's invariants target production
// code, and the analyzers' scope rules (noiserand, floatcmp) exempt tests
// by design.
func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := files[:0:0]
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// exprString renders a small expression for lock identities and messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	}
	return "<expr>"
}
