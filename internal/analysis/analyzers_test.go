package analysis

import (
	"path/filepath"
	"testing"
)

// The five analyzers plus directive processing run over analysistest-style
// fixtures. pkgPath is chosen per fixture so the scope rules fire the same
// way they do on the real tree.
func TestNoiseRand(t *testing.T) {
	RunAnalyzerTest(t, []*Analyzer{NoiseRandAnalyzer},
		"example.com/internal/core", filepath.Join("testdata", "src", "noiserand"))
}

func TestBudgetFlowCore(t *testing.T) {
	RunAnalyzerTest(t, []*Analyzer{BudgetFlowAnalyzer},
		"example.com/internal/core", filepath.Join("testdata", "src", "budgetflow"))
}

func TestBudgetFlowFacade(t *testing.T) {
	RunAnalyzerTest(t, []*Analyzer{BudgetFlowAnalyzer},
		"example.com/dpgraph", filepath.Join("testdata", "src", "budgetflowfacade"))
}

func TestHotPath(t *testing.T) {
	RunAnalyzerTest(t, []*Analyzer{HotPathAnalyzer},
		"example.com/internal/serve", filepath.Join("testdata", "src", "hotpath"))
}

func TestLockHeld(t *testing.T) {
	RunAnalyzerTest(t, []*Analyzer{LockHeldAnalyzer},
		"example.com/internal/serve", filepath.Join("testdata", "src", "lockheld"))
}

func TestFloatCmp(t *testing.T) {
	RunAnalyzerTest(t, []*Analyzer{FloatCmpAnalyzer},
		"example.com/internal/core", filepath.Join("testdata", "src", "floatcmp"))
}

// TestDirectives runs the floatcmp analyzer over fixtures whose allow
// directives are malformed: the malformed directives are themselves
// diagnostics and suppress nothing.
func TestDirectives(t *testing.T) {
	RunAnalyzerTest(t, []*Analyzer{FloatCmpAnalyzer},
		"example.com/internal/core", filepath.Join("testdata", "src", "directive"))
}

// TestScopeRules pins the package-scope predicates: the analyzers must
// fire on the privacy/serving tiers and stay quiet elsewhere.
func TestScopeRules(t *testing.T) {
	for _, tc := range []struct {
		path string
		want bool
	}{
		{"repro/internal/core", true},
		{"repro/internal/dp", true},
		{"repro/dpgraph", true},
		{"repro/dpgraph [repro/dpgraph.test]", false}, // normalized before the call
		{"repro/cmd/dpgraph", false},
		{"repro/internal/serve", false},
	} {
		if got := privacyCriticalPkg(tc.path); got != tc.want {
			t.Errorf("privacyCriticalPkg(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
	if got := privacyCriticalPkg(normalizePkgPath("repro/dpgraph [repro/dpgraph.test]")); !got {
		t.Errorf("normalized test-variant path must stay privacy-critical")
	}
	for _, tc := range []struct {
		path string
		want bool
	}{
		{"repro/internal/serve", true},
		{"repro/internal/cluster", true},
		{"repro/internal/core", false},
	} {
		if got := lockTierPkg(tc.path); got != tc.want {
			t.Errorf("lockTierPkg(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}
