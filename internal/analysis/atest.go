package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunAnalyzerTest is the analysistest-style harness: it type-checks the
// .go files in dir as a package named pkgPath (chosen so the analyzers'
// scope rules fire), runs the given analyzers plus directive processing,
// and matches the resulting diagnostics against `// want "regex"` comments
// in the sources. Every diagnostic must be wanted on its line, and every
// want must be matched.
func RunAnalyzerTest(t *testing.T, analyzers []*Analyzer, pkgPath, dir string) {
	t.Helper()

	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading testdata dir: %v", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		names = append(names, path)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}

	imp, err := stdImporter(fset, files)
	if err != nil {
		t.Fatalf("resolving std imports: %v", err)
	}
	pkg, err := TypeCheck(fset, imp, pkgPath, files)
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}

	diags := RunPackage(pkg, analyzers)
	wants := parseWants(t, names)

	type wantKey struct {
		file string
		line int
		idx  int
	}
	used := make(map[wantKey]bool)

	for _, d := range diags {
		res := wants[wantLoc{file: d.Pos.Filename, line: d.Pos.Line}]
		ok := false
		for i, re := range res {
			k := wantKey{d.Pos.Filename, d.Pos.Line, i}
			if !used[k] && re.MatchString(d.Message) {
				used[k] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}

	var locs []wantLoc
	for loc := range wants {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].file != locs[j].file {
			return locs[i].file < locs[j].file
		}
		return locs[i].line < locs[j].line
	})
	for _, loc := range locs {
		for i, re := range wants[loc] {
			if !used[wantKey{loc.file, loc.line, i}] {
				t.Errorf("no diagnostic matched want %q at %s:%d", re.String(), filepath.Base(loc.file), loc.line)
			}
		}
	}
}

type wantLoc struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseWants extracts `// want "re" ["re" ...]` expectations per line.
func parseWants(t *testing.T, paths []string) map[wantLoc][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantLoc][]*regexp.Regexp)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			loc := wantLoc{file: path, line: i + 1}
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				if rest[0] != '"' {
					t.Fatalf("%s:%d: malformed want clause %q", path, i+1, rest)
				}
				end := -1
				for j := 1; j < len(rest); j++ {
					if rest[j] == '"' && rest[j-1] != '\\' {
						end = j
						break
					}
				}
				if end < 0 {
					t.Fatalf("%s:%d: unterminated want pattern %q", path, i+1, rest)
				}
				pat, err := strconv.Unquote(rest[:end+1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, rest[:end+1], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants[loc] = append(wants[loc], re)
				rest = strings.TrimSpace(rest[end+1:])
			}
		}
	}
	return wants
}
