package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BudgetFlowAnalyzer checks that every mechanism entry point pays for its
// result.
//
// The accounting contract has two sides. First, an exported mechanism in
// internal/core (any exported function taking a core.Options parameter) or
// dpgraph (any exported *PrivateGraph method returning a value plus error)
// must invoke the accountant's charge on every path that returns a
// successful result — a release that skips the charge hands out private
// data for free and invalidates every receipt issued afterwards. Second,
// the repo's documented convention is "a failed release never burns
// budget": constructing a fresh error *after* the charge has succeeded
// leaks a budget reservation the caller never benefits from, so such
// returns are flagged too.
//
// Charging is recognized syntactically and transitively: a call to a
// method named charge/Charge/Spend, a call into internal/core passing an
// Options value (the core mechanisms charge internally), or a call to a
// same-package function that itself charges (computed to a fixpoint).
// Function literals are descended into, so the dpgraph
// pg.exec("name", pure, func(o core.Options) error { ... }) idiom counts.
var BudgetFlowAnalyzer = &Analyzer{
	Name: "budgetflow",
	Doc:  "mechanism entry points must charge the budget accountant before returning a result",
	Run:  runBudgetFlow,
}

var chargeMethodNames = map[string]bool{"charge": true, "Charge": true, "Spend": true}

func runBudgetFlow(pass *Pass) {
	inCore := strings.Contains(pass.PkgPath, "internal/core")
	inFacade := strings.HasSuffix(pass.PkgPath, "dpgraph")
	if !inCore && !inFacade {
		return
	}

	w := &bfWalker{pass: pass}
	w.buildChargeClosure()

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if inCore && !hasOptionsParam(fn) {
				continue // exported helpers without Options are not releases
			}
			if inFacade && !isPrivateGraphMethod(fn) {
				continue
			}
			if !lastResultIsError(fn) {
				continue // pure accessors; nothing to pay for
			}
			w.checkFunc(fn)
		}
	}
}

// hasOptionsParam reports whether fn takes a parameter of a named type
// Options (core's budget-carrying options struct).
func hasOptionsParam(fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if typeNameIs(field.Type, "Options") {
			return true
		}
	}
	return false
}

func isPrivateGraphMethod(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	return typeNameIs(fn.Recv.List[0].Type, "PrivateGraph")
}

// typeNameIs reports whether a type expression names (possibly via * or a
// package qualifier) the given identifier.
func typeNameIs(t ast.Expr, name string) bool {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name == name
	case *ast.StarExpr:
		return typeNameIs(t.X, name)
	case *ast.SelectorExpr:
		return t.Sel.Name == name
	case *ast.IndexExpr: // generic instantiation
		return typeNameIs(t.X, name)
	}
	return false
}

func lastResultIsError(fn *ast.FuncDecl) bool {
	rs := fn.Type.Results
	if rs == nil || len(rs.List) == 0 {
		return false
	}
	last := rs.List[len(rs.List)-1].Type
	if id, ok := last.(*ast.Ident); ok {
		return id.Name == "error"
	}
	return false
}

// resultCount counts individual result values (fields may name several).
func resultCount(fn *ast.FuncDecl) int {
	n := 0
	if fn.Type.Results == nil {
		return 0
	}
	for _, f := range fn.Type.Results.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// bfWalker carries the per-package charge closure and per-function state.
type bfWalker struct {
	pass          *Pass
	alwaysCharges map[string]bool // same-package funcs that (somewhere) charge
	fn            *ast.FuncDecl
	nResults      int
}

// buildChargeClosure computes, to a fixpoint, the set of same-package
// top-level functions whose bodies contain a charging call.
func (w *bfWalker) buildChargeClosure() {
	w.alwaysCharges = make(map[string]bool)
	bodies := make(map[string]*ast.FuncDecl)
	for _, f := range w.pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				bodies[funcKey(fn)] = fn
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for key, fn := range bodies {
			if w.alwaysCharges[key] {
				continue
			}
			if w.nodeCharges(fn.Body) {
				w.alwaysCharges[key] = true
				changed = true
			}
		}
	}
}

// funcKey names a top-level function or method for the charge closure.
// Methods are keyed by bare name: call sites rarely carry enough type
// information here to resolve the receiver, and a name collision only
// makes the analysis more permissive, never noisier.
func funcKey(fn *ast.FuncDecl) string { return fn.Name.Name }

// nodeCharges reports whether the subtree contains a charging call,
// descending into function literals.
func (w *bfWalker) nodeCharges(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if w.callCharges(n) {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			// A core mechanism passed as a function value (the
			// pg.matching("name", core.MaximalMatching) delegation idiom)
			// routes the charge through the callee.
			if w.coreMechanismRef(n) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// coreMechanismRef reports whether sel references (without calling) an
// internal/core function whose signature takes an Options parameter.
func (w *bfWalker) coreMechanismRef(sel *ast.SelectorExpr) bool {
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := w.pass.Info.Uses[pkgIdent].(*types.PkgName)
	if !ok || !strings.Contains(pn.Imported().Path(), "internal/core") {
		return false
	}
	obj := w.pass.Info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if namedTypeIs(sig.Params().At(i).Type(), "Options") {
			return true
		}
	}
	return false
}

func (w *bfWalker) callCharges(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return w.alwaysCharges[fun.Name]
	case *ast.SelectorExpr:
		if chargeMethodNames[fun.Sel.Name] {
			return true
		}
		if w.alwaysCharges[fun.Sel.Name] {
			return true // same-package method (pg.exec-style) that charges
		}
		// Cross-package call into internal/core with an Options argument:
		// core mechanisms charge internally before returning success.
		if pkgIdent, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := w.pass.Info.Uses[pkgIdent].(*types.PkgName); ok {
				if strings.Contains(obj.Imported().Path(), "internal/core") {
					for _, arg := range call.Args {
						if t := w.pass.TypeOf(arg); t != nil && namedTypeIs(t, "Options") {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// namedTypeIs reports whether t (or its pointer element) is a named type
// with the given name.
func namedTypeIs(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// bfState is the walker's path state.
type bfState struct {
	charged    bool            // a charge definitely happened on this path
	exempt     bool            // inside the charge's own error guard
	nonNil     map[string]bool // idents known non-nil (enclosing err != nil)
	chargeErrs map[string]bool // error idents produced by the charging call
}

func (s bfState) withNonNil(name string) bfState {
	m := make(map[string]bool, len(s.nonNil)+1)
	for k := range s.nonNil {
		m[k] = true
	}
	m[name] = true
	s.nonNil = m
	return s
}

func (w *bfWalker) checkFunc(fn *ast.FuncDecl) {
	w.fn = fn
	w.nResults = resultCount(fn)
	st := bfState{
		nonNil:     map[string]bool{},
		chargeErrs: map[string]bool{},
	}
	w.walkStmts(fn.Body.List, st)
}

// walkStmts walks a statement list, threading path state; returns the
// state at fallthrough and whether every path terminated.
func (w *bfWalker) walkStmts(stmts []ast.Stmt, st bfState) (bfState, bool) {
	for _, s := range stmts {
		var term bool
		st, term = w.walkStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *bfWalker) walkStmt(s ast.Stmt, st bfState) (bfState, bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		w.checkReturn(s, st)
		return st, true

	case *ast.IfStmt:
		initCharges := s.Init != nil && w.nodeCharges(s.Init)
		condCharges := w.nodeCharges(s.Cond)
		entry := st
		if initCharges || condCharges {
			entry.charged = true
			entry.exempt = true // the guard's error branch is the charge failing
			if s.Init != nil {
				for _, name := range assignedIdents(s.Init) {
					st.chargeErrs[name] = true // shared map: entry sees it too
				}
			}
		}
		thenEntry := entry
		if name, ok := nonNilGuard(s.Cond); ok {
			thenEntry = entry.withNonNil(name)
		}
		_, thenTerm := w.walkStmts(s.Body.List, thenEntry)
		elseTerm := false
		if s.Else != nil {
			elseEntry := entry
			if name, ok := nilGuard(s.Cond); ok {
				elseEntry = entry.withNonNil(name)
			}
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				_, elseTerm = w.walkStmts(e.List, elseEntry)
			case *ast.IfStmt:
				_, elseTerm = w.walkStmt(e, elseEntry)
			}
		}
		after := st
		if initCharges || condCharges {
			after.charged = true // guard's Init/Cond ran on the fallthrough path too
		}
		return after, thenTerm && elseTerm && s.Else != nil

	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.ForStmt:
		body := st
		if s.Init != nil && w.nodeCharges(s.Init) {
			body.charged = true
			st.charged = true
		}
		w.walkStmts(s.Body.List, body)
		return st, false // body may run zero times: no charge credit

	case *ast.RangeStmt:
		w.walkStmts(s.Body.List, st)
		return st, false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		for _, c := range clauses {
			switch cc := c.(type) {
			case *ast.CaseClause:
				w.walkStmts(cc.Body, st)
			case *ast.CommClause:
				w.walkStmts(cc.Body, st)
			}
		}
		return st, false

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	default:
		if w.stmtCharges(s) {
			st.charged = true
			for _, name := range assignedIdents(s) {
				st.chargeErrs[name] = true
			}
		}
		return st, false
	}
}

// stmtCharges is nodeCharges specialized to a single statement, skipping
// statement kinds walked structurally above.
func (w *bfWalker) stmtCharges(s ast.Stmt) bool { return w.nodeCharges(s) }

// assignedIdents returns the identifiers assigned by an assign or define
// statement (used to track which variables hold the charging call's error).
func assignedIdents(s ast.Stmt) []string {
	var out []string
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				out = append(out, id.Name)
			}
		}
	}
	return out
}

// nonNilGuard matches `x != nil` and returns x's name.
func nonNilGuard(cond ast.Expr) (string, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return "", false
	}
	return identVsNil(be.X, be.Y)
}

// nilGuard matches `x == nil` and returns x's name (so the else branch
// knows x is non-nil).
func nilGuard(cond ast.Expr) (string, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return "", false
	}
	return identVsNil(be.X, be.Y)
}

func identVsNil(x, y ast.Expr) (string, bool) {
	if isNilIdent(y) {
		if id, ok := x.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	if isNilIdent(x) {
		if id, ok := y.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkReturn applies both budgetflow rules to one return statement.
func (w *bfWalker) checkReturn(s *ast.ReturnStmt, st bfState) {
	retCharges := false
	for _, r := range s.Results {
		if w.nodeCharges(r) {
			retCharges = true
		}
	}
	state := st.charged || retCharges

	var errExpr ast.Expr
	if len(s.Results) == w.nResults && w.nResults > 0 {
		errExpr = s.Results[len(s.Results)-1]
	}

	success, definiteErr := classifyErrorOperand(errExpr, st)

	if w.nResults > 1 && success && !state {
		w.pass.Reportf(s.Pos(), "%s returns a result on a path that never charges the budget accountant: every successful release must be paid for", w.fn.Name.Name)
	}
	if definiteErr && state && !st.exempt && !retCharges && !w.errFromCharge(errExpr, st) {
		w.pass.Reportf(s.Pos(), "%s returns an error after the budget was charged: a failed release must not burn budget (charge last, or refund)", w.fn.Name.Name)
	}
}

// classifyErrorOperand decides whether the return's error operand admits a
// success path and/or is a definite error.
//
//	nil literal        -> success only
//	bare return        -> treated as success (named results)
//	plain ident err    -> success unless known non-nil; definite if known non-nil
//	call/&composite/.. -> definite error
func classifyErrorOperand(e ast.Expr, st bfState) (success, definiteErr bool) {
	if e == nil {
		return true, false // bare return or mismatched arity: assume success path
	}
	e = ast.Unparen(e)
	if isNilIdent(e) {
		return true, false
	}
	if id, ok := e.(*ast.Ident); ok {
		if st.nonNil[id.Name] {
			return false, true
		}
		return true, false // err may be nil: a possible success path
	}
	return false, true // fresh error value (call, &T{...}, selector)
}

// errFromCharge reports whether the returned error expression passes
// through the charging call's own error (returning or wrapping the charge
// failure is legitimate).
func (w *bfWalker) errFromCharge(e ast.Expr, st bfState) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && st.chargeErrs[id.Name] {
			found = true
		}
		return !found
	})
	return found
}
