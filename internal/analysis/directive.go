package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive:
//
//	//dpvet:allow <analyzer> -- <justification>
//
// An inline directive (sharing a line with code) suppresses matching
// diagnostics on that line only. A directive inside the doc comment of a
// top-level declaration suppresses matching diagnostics anywhere in that
// declaration. The justification after "--" is mandatory: it is the audit
// trail a reviewer reads instead of re-deriving why the violation is safe.
const allowPrefix = "//dpvet:allow"

// hotpathDirective marks a function whose body must stay allocation-free;
// see the hotpath analyzer.
const hotpathDirective = "//dpvet:hotpath"

// minJustificationWords is the floor for an allow justification: a bare
// "ok" or "legacy" explains nothing to the next reader.
const minJustificationWords = 3

// allowDirective is one parsed suppression with its effective line span.
type allowDirective struct {
	analyzer string
	file     string
	fromLine int
	toLine   int
}

// parseDirectives extracts every //dpvet:allow directive from the files,
// returning the usable suppressions plus diagnostics for malformed ones
// (unknown analyzer, missing or trivial justification). Malformed
// directives suppress nothing.
func parseDirectives(fset *token.FileSet, files []*ast.File) ([]allowDirective, []Diagnostic) {
	valid := analyzerNames()
	var dirs []allowDirective
	var diags []Diagnostic

	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "dpvet",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	for _, f := range files {
		// Map each comment to the span it governs: doc comments of
		// top-level declarations cover the declaration; everything else
		// covers its own line.
		docSpan := make(map[*ast.CommentGroup][2]int)
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docSpan[doc] = [2]int{
					fset.Position(decl.Pos()).Line,
					fset.Position(decl.End()).Line,
				}
			}
		}

		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //dpvet:allowother — not ours
				}
				name, just, hasJust := cutJustification(rest)
				if name == "" {
					report(c.Pos(), "malformed directive: want %s <analyzer> -- <justification>", allowPrefix)
					continue
				}
				if !valid[name] {
					report(c.Pos(), "directive names unknown analyzer %q (valid: %s)", name, strings.Join(sortedNames(valid), ", "))
					continue
				}
				if !hasJust {
					report(c.Pos(), "allow directive for %q is missing its justification (want %s %s -- <why this is safe>)", name, allowPrefix, name)
					continue
				}
				if len(strings.Fields(just)) < minJustificationWords {
					report(c.Pos(), "allow directive for %q has a trivial justification %q: explain why the violation is safe (>= %d words)", name, just, minJustificationWords)
					continue
				}
				pos := fset.Position(c.Pos())
				d := allowDirective{analyzer: name, file: pos.Filename, fromLine: pos.Line, toLine: pos.Line}
				if span, ok := docSpan[cg]; ok {
					d.fromLine, d.toLine = span[0], span[1]
					// The doc comment itself is part of the governed decl
					// as far as reporting goes (import blocks, consts).
					if pos.Line < d.fromLine {
						d.fromLine = pos.Line
					}
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, diags
}

// cutJustification splits " noiserand -- reason..." into the analyzer name
// and the justification text, reporting whether the "--" separator was
// present. A nested trailing comment (" // ...") is not part of the
// justification.
func cutJustification(rest string) (name, just string, hasJust bool) {
	rest = strings.TrimSpace(rest)
	if i := strings.Index(rest, " // "); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		name = strings.TrimSpace(rest[:i])
		just = strings.TrimSpace(rest[i+2:])
		hasJust = true
	} else {
		name = rest
	}
	if fields := strings.Fields(name); len(fields) > 0 {
		name = fields[0]
	} else {
		name = ""
	}
	return name, just, hasJust
}

// suppressed reports whether a diagnostic is covered by a directive.
func suppressed(dirs []allowDirective, d Diagnostic) bool {
	for _, dir := range dirs {
		if dir.analyzer == d.Analyzer &&
			dir.file == d.Pos.Filename &&
			d.Pos.Line >= dir.fromLine && d.Pos.Line <= dir.toLine {
			return true
		}
	}
	return false
}

// hasHotpathDirective reports whether a function's doc comment carries
// //dpvet:hotpath.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := c.Text
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Insertion sort: the set is tiny and this avoids another import.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
