package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer flags == and != between float64 values outside test
// files. Released distances carry Laplace noise: exact equality on them is
// either a bug (the comparison was meant to be a tolerance check) or an
// accident waiting for an optimization pass to change rounding. The two
// sanctioned idioms are exempt: comparing a value to itself (the x != x
// NaN probe) and comparing against an explicit math.Inf sentinel (the
// FiniteOrNil family's documented ±Inf unreachability checks). Anything
// else needs a justified //dpvet:allow floatcmp.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "no ==/!= on float64 outside tests, NaN probes, and ±Inf sentinel checks",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) || !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				return true // x != x: the portable NaN check
			}
			if isInfSentinel(pass, be.X) || isInfSentinel(pass, be.Y) {
				return true // documented ±Inf sentinel comparison
			}
			if isConstZero(pass, be.X) || isConstZero(pass, be.Y) {
				return true // exact-zero sentinel: IEEE-exact, the unset/degenerate-config idiom
			}
			pass.Reportf(be.Pos(), "float equality %s %s %s: noisy values must be compared with a tolerance (or suppress with //dpvet:allow floatcmp for exact sentinels)", exprString(be.X), be.Op, exprString(be.Y))
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExpr reports whether two expressions are textually identical simple
// expressions (covers the x != x NaN idiom).
func sameExpr(a, b ast.Expr) bool {
	sa, sb := exprString(a), exprString(b)
	return sa == sb && sa != "<expr>"
}

// isConstZero reports whether e is the compile-time constant 0: comparing
// a float against exact zero is the standard division-guard and
// unset-field idiom, and 0 is exactly representable, so it is exempt.
func isConstZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// isInfSentinel matches direct math.Inf(...) calls. Identifiers bound to
// ±Inf elsewhere are not traced; those sites need an allow directive.
func isInfSentinel(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Inf" {
		return false
	}
	pkgIdent, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pn, ok := pass.Info.Uses[pkgIdent].(*types.PkgName); ok {
		return pn.Imported().Path() == "math"
	}
	return pkgIdent.Name == "math"
}
