package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathAnalyzer turns the repo's bench-only 0-alloc guards into static
// review. Functions annotated //dpvet:hotpath (the serving fast-JSON
// codecs, the CH/HL/PHAST query kernels, the Laplace fill shards) are the
// paths the perf guards hold to 0 allocs/op; this analyzer rejects the
// constructs that put allocations back:
//
//   - defer and go statements
//   - fmt/log/log/slog calls
//   - heap-escaping composite literals (&T{...}), slice and map literals,
//     make and new
//   - function literals (closure allocation)
//   - passing a non-pointer-shaped value to an interface parameter
//     (boxing allocates)
//
// Cold error paths inside a hot function (rare, documented) are suppressed
// line-by-line with a justified //dpvet:allow hotpath.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "//dpvet:hotpath functions must stay allocation-free",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotpathDirective(fn.Doc) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hotpath function %s: defers cost a frame setup on every call; unlock/cleanup explicitly", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hotpath function %s: goroutine launch allocates", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in hotpath function %s: closures allocate", name)
			return false // its body is cold by definition once flagged
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "&%s{...} in hotpath function %s escapes to the heap", compositeName(cl), name)
				return false
			}
		case *ast.CompositeLit:
			switch n.Type.(type) {
			case *ast.ArrayType:
				if at := n.Type.(*ast.ArrayType); at.Len == nil {
					pass.Reportf(n.Pos(), "slice literal in hotpath function %s allocates; reuse a pooled buffer", name)
				}
			case *ast.MapType:
				pass.Reportf(n.Pos(), "map literal in hotpath function %s allocates", name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, n)
		}
		return true
	})
}

func compositeName(cl *ast.CompositeLit) string {
	if cl.Type != nil {
		return exprString(cl.Type)
	}
	return "T"
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	name := fn.Name.Name

	// make/new allocate by definition.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make", "new":
			if isBuiltin(pass, id) {
				pass.Reportf(call.Pos(), "%s() in hotpath function %s allocates; size buffers up front or pool them", id.Name, name)
				return
			}
		}
	}

	// fmt/log calls drag in interface boxing, reflection, and locks.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgIdent, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[pkgIdent].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "fmt", "log", "log/slog":
					pass.Reportf(call.Pos(), "%s.%s call in hotpath function %s: formatting allocates and takes locks", pkgIdent.Name, sel.Sel.Name, name)
					return
				}
			}
		}
	}

	// Passing a non-pointer-shaped value where an interface is expected
	// boxes it onto the heap.
	sig, ok := typeAsSignature(pass.TypeOf(call.Fun))
	if !ok {
		return // builtin, conversion, or unresolved: nothing to check
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no boxing per element
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || boxingFree(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface parameter in hotpath function %s: boxing allocates", at.String(), name)
	}
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// boxingFree reports whether storing a value of type t in an interface
// avoids a heap allocation: pointer-shaped values (pointers, channels,
// maps, funcs, unsafe pointers) and untyped nil are stored directly.
func boxingFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer
	}
	return false
}

func isBuiltin(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true // unresolved: assume the predeclared builtin
	}
	_, ok := obj.(*types.Builtin)
	return ok
}
