package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The 0-alloc perf guards (#2 block sampling, #7 HL/PHAST kernels,
// #8 zero-allocation serving) and the //dpvet:hotpath static guard must
// name the same set of functions: a function benched to 0 allocs/op but
// not annotated can regress between bench runs, and an annotation with no
// bench behind it overstates the guarantee. This test greps both sides.

// guardedFunctions maps each annotated source file to the functions the
// perf guards hold allocation-free. Adding a hot function to a guard
// means adding it here AND annotating it; dropping one means the reverse.
var guardedFunctions = map[string][]string{
	"internal/dp/noise.go": {
		// guard #2: BenchmarkFillLaplace/(crypto-serial|seeded)
		"laplaceFromRand", "uniform", "laplace", "FillLaplace", "fillSerial",
	},
	"internal/graph/index/ch.go": {
		// guard #7: BenchmarkIndexDistance/ch
		"Distance",
	},
	"internal/graph/index/hl.go": {
		// guard #7: BenchmarkIndexDistance/hl + hl sweep delegation
		"Distance", "DistancesFrom",
	},
	"internal/graph/index/phast.go": {
		// guard #7: BenchmarkIndexOneToMany/phast
		"DistancesFrom",
	},
	"internal/graph/index/search.go": {
		// guard #7: the searchState kernel under both CH and PHAST
		"begin", "labeled", "distance", "touch", "update",
		"empty", "minKey", "pop", "siftUp", "siftDown",
	},
	"internal/serve/fastjson.go": {
		// guard #8: TestServeDistanceZeroAlloc / TestServeDistancesZeroAlloc
		"appendJSONFloat", "appendPairAnswer", "scanQueryPair",
		"isJSONSpace", "skipJSONSpace", "parseJSONInt", "parseATOI",
		"parsePointBodyFast", "parsePairsFast", "parseTuplePairsFast",
		"parseObjectPairsFast", "isTextSpace", "parseTextPairsFast",
		"readBodyLimit",
	},
}

// guardMarkers are the bench/test names the guard script must still run;
// if one is renamed the mapping above needs re-auditing.
var guardMarkers = []string{
	"BenchmarkFillLaplace/(crypto-serial|seeded)",
	"BenchmarkIndexDistance",
	"BenchmarkIndexOneToMany",
	"TestServeDistanceZeroAlloc|TestServeDistancesZeroAlloc",
}

var annotatedFuncRE = regexp.MustCompile(`(?m)^//dpvet:hotpath\nfunc (?:\([^)]*\) )?(\w+)\(`)

func TestHotpathAnnotationsMatchPerfGuards(t *testing.T) {
	root := filepath.Join("..", "..")

	script, err := os.ReadFile(filepath.Join(root, "scripts", "check_perf_guards.sh"))
	if err != nil {
		t.Fatalf("reading perf guard script: %v", err)
	}
	for _, marker := range guardMarkers {
		if !strings.Contains(string(script), marker) {
			t.Errorf("perf guard script no longer runs %q; re-audit the hotpath annotation mapping", marker)
		}
	}

	for file, want := range guardedFunctions {
		src, err := os.ReadFile(filepath.Join(root, file))
		if err != nil {
			t.Errorf("reading %s: %v", file, err)
			continue
		}
		annotated := make(map[string]bool)
		for _, m := range annotatedFuncRE.FindAllStringSubmatch(string(src), -1) {
			annotated[m[1]] = true
		}
		for _, fn := range want {
			if !annotated[fn] {
				t.Errorf("%s: %s is covered by a 0-alloc perf guard but lacks a //dpvet:hotpath annotation", file, fn)
			}
		}
		if len(annotated) != len(want) {
			for fn := range annotated {
				found := false
				for _, w := range want {
					if w == fn {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: %s is annotated //dpvet:hotpath but not named by any perf guard mapping; add it to guardedFunctions with its guard", file, fn)
				}
			}
		}
	}
}
