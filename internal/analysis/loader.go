package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads and type-checks the packages matched by patterns in
// dir, using `go list -e -deps -export -json` to resolve and compile the
// import graph. Dependencies are imported from gc export data (built into
// the go build cache by -export), so only the matched packages themselves
// are parsed from source — the same strategy go vet uses, with no module
// downloads.
func LoadPackages(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exportFor := make(map[string]string) // import path -> export data file
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, exportFor)

	var pkgs []*LoadedPackage
	for _, t := range targets {
		lp, err := typeCheckListed(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportDataImporter returns a gc-export-data importer that resolves import
// paths through the go list Export map.
func exportDataImporter(fset *token.FileSet, exportFor map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// stdImporter builds an export-data importer covering the (standard
// library) imports of already-parsed files — the test harness's package
// resolver. One `go list` invocation compiles export data for the whole
// dependency closure.
func stdImporter(fset *token.FileSet, files []*ast.File) (types.Importer, error) {
	seen := make(map[string]bool)
	var paths []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			paths = append(paths, path)
		}
	}
	exportFor := make(map[string]string)
	if len(paths) > 0 {
		args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Export"}, paths...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list %v: %v\n%s", paths, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listedPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exportFor[p.ImportPath] = p.Export
			}
		}
	}
	return exportDataImporter(fset, exportFor), nil
}

// typeCheckListed parses and type-checks one go list target from source.
func typeCheckListed(fset *token.FileSet, imp types.Importer, p *listedPackage) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		files = append(files, f)
	}
	return TypeCheck(fset, imp, p.ImportPath, files)
}

// TypeCheck type-checks already-parsed files as the package at pkgPath.
// Type errors are tolerated (matching `go vet`'s -e behavior): analyzers
// see as much type information as could be computed.
func TypeCheck(fset *token.FileSet, imp types.Importer, pkgPath string, files []*ast.File) (*LoadedPackage, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect best-effort info despite errors
	}
	tpkg, _ := conf.Check(normalizePkgPath(pkgPath), fset, files, info)
	return &LoadedPackage{
		PkgPath: pkgPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
