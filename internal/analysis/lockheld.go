package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeldAnalyzer enforces lock discipline in the serving and cluster
// tiers: a mutex in internal/serve or internal/cluster guards short
// critical sections over in-memory state, never I/O. Blocking while one is
// held (network calls, channel operations without a ready default,
// time.Sleep, WaitGroup/Cond waits) stalls every request behind the lock
// and is how the fleet tier deadlocks under partition. The analyzer also
// records the order in which locks are taken while another is held and
// flags A→B vs B→A inversions across the package.
var LockHeldAnalyzer = &Analyzer{
	Name: "lockheld",
	Doc:  "no blocking operations while a mutex is held; consistent lock order",
	Run:  runLockHeld,
}

func lockTierPkg(pkgPath string) bool {
	return strings.Contains(pkgPath, "internal/serve") ||
		strings.Contains(pkgPath, "internal/cluster")
}

// lockEdge is "to was acquired while from was held".
type lockEdge struct{ from, to string }

func runLockHeld(pass *Pass) {
	if !lockTierPkg(pass.PkgPath) {
		return
	}
	edges := make(map[lockEdge]token.Pos)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, edges: edges}
			w.walkStmts(fn.Body.List, map[string]bool{})
		}
	}

	// Report each inversion once, deterministically: at whichever of the
	// two acquisition sites appears later in the source.
	reported := make(map[lockEdge]bool)
	var inversions []lockEdge
	for e := range edges {
		rev := lockEdge{from: e.to, to: e.from}
		if e.from == e.to || reported[e] || reported[rev] {
			continue
		}
		if _, inverted := edges[rev]; inverted {
			reported[e], reported[rev] = true, true
			if edges[rev] > edges[e] {
				e = rev
			}
			inversions = append(inversions, e)
		}
	}
	sort.Slice(inversions, func(i, j int) bool { return edges[inversions[i]] < edges[inversions[j]] })
	for _, e := range inversions {
		pass.Reportf(edges[e], "inconsistent lock order: %s acquired while %s held here, but elsewhere %s is acquired while %s is held — pick one order", e.to, e.from, e.from, e.to)
	}
}

type lockWalker struct {
	pass  *Pass
	edges map[lockEdge]token.Pos
}

// walkStmts threads the held-lock set through a statement list. Branch
// bodies are walked with a copy of the entry set; their net effect is not
// propagated (critical sections in this codebase open and close at the
// same nesting level, and staying conservative here only under-reports
// unlocks, never misses a held lock).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := w.lockOp(s.X); ok {
			w.applyLockOp(key, op, s.X.(*ast.CallExpr).Pos(), held)
			return
		}
		w.checkBlocking(s, held)

	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return; the lock stays held for
		// the remainder of the function, which is exactly what the
		// blocking checks below must see — so: no state change.
		if _, _, ok := w.lockOp(s.Call); ok {
			return
		}
		w.checkBlocking(s, held)

	case *ast.SendStmt:
		if len(held) > 0 {
			w.reportBlocked(s.Pos(), "channel send", held)
		}

	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			w.reportBlocked(s.Pos(), "select without default", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}

	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkBlockingExpr(s.Cond, s.Cond.Pos(), held)
		w.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}

	case *ast.BlockStmt:
		w.walkStmts(s.List, held)

	case *ast.ForStmt:
		w.walkStmts(s.Body.List, copyHeld(held))

	case *ast.RangeStmt:
		w.checkBlockingExpr(s.X, s.X.Pos(), held)
		w.walkStmts(s.Body.List, copyHeld(held))

	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}

	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}

	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)

	case *ast.GoStmt:
		// The goroutine runs with its own stack; the held set does not
		// transfer. Nothing to check at the launch site.

	default:
		w.checkBlocking(s, held)
	}
}

// applyLockOp mutates the held set and records lock-order edges.
func (w *lockWalker) applyLockOp(key, op string, pos token.Pos, held map[string]bool) {
	switch op {
	case "Lock", "RLock":
		for h := range held {
			e := lockEdge{from: h, to: key}
			if _, ok := w.edges[e]; !ok {
				w.edges[e] = pos
			}
		}
		held[key] = true
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// lockOp recognizes x.mu.Lock()-style calls on sync.Mutex/RWMutex and
// returns the lock identity and operation.
func (w *lockWalker) lockOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !w.isMutexRecv(sel) {
		return "", "", false
	}
	return w.lockKey(sel.X), sel.Sel.Name, true
}

// isMutexRecv reports whether the selector resolves to a sync mutex —
// either directly (x.mu is a sync.Mutex) or through embedding.
func (w *lockWalker) isMutexRecv(sel *ast.SelectorExpr) bool {
	if t := w.pass.TypeOf(sel.X); t != nil && isMutexType(t) {
		return true
	}
	if s, ok := w.pass.Info.Selections[sel]; ok {
		if obj := s.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return true
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockKey names a lock stably across methods: "OwnerType.field" when the
// lock is a field, the receiver expression otherwise.
func (w *lockWalker) lockKey(x ast.Expr) string {
	if sel, ok := x.(*ast.SelectorExpr); ok {
		if t := w.pass.TypeOf(sel.X); t != nil {
			return baseTypeName(t) + "." + sel.Sel.Name
		}
	}
	return exprString(x)
}

func baseTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// checkBlocking scans one non-control-flow statement for blocking
// constructs while locks are held. Function literals are skipped: they
// execute elsewhere.
func (w *lockWalker) checkBlocking(s ast.Stmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportBlocked(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if what, ok := w.blockingCall(n); ok {
				w.reportBlocked(n.Pos(), what, held)
			}
		}
		return true
	})
}

func (w *lockWalker) checkBlockingExpr(e ast.Expr, pos token.Pos, held map[string]bool) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.reportBlocked(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if what, ok := w.blockingCall(n); ok {
				w.reportBlocked(n.Pos(), what, held)
			}
		}
		return true
	})
}

// blockingCall recognizes the blocking calls the serving tier must never
// make under a lock.
func (w *lockWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Package-level functions: time.Sleep, net.Dial*, http.Get/Post/...
	if pkgIdent, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := w.pass.Info.Uses[pkgIdent].(*types.PkgName); ok {
			path := pn.Imported().Path()
			name := sel.Sel.Name
			switch {
			case path == "time" && name == "Sleep":
				return "time.Sleep", true
			case path == "net" && strings.HasPrefix(name, "Dial"):
				return "net." + name, true
			case path == "net/http" && (name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
				return "http." + name, true
			}
			return "", false
		}
	}
	// Methods: WaitGroup.Wait, Cond.Wait, http.Client.Do/Get/Post.
	recvT := w.pass.TypeOf(sel.X)
	if recvT == nil {
		return "", false
	}
	name := sel.Sel.Name
	if name == "Wait" && (isSyncType(recvT, "WaitGroup") || isSyncType(recvT, "Cond")) {
		return baseTypeName(recvT) + ".Wait", true
	}
	if isHTTPClient(recvT) {
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "http.Client." + name, true
		}
	}
	return "", false
}

func isSyncType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == name
}

func isHTTPClient(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Client"
}

func (w *lockWalker) reportBlocked(pos token.Pos, what string, held map[string]bool) {
	names := make([]string, 0, len(held))
	for h := range held {
		names = append(names, h)
	}
	// Tiny set; sort for deterministic messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	w.pass.Reportf(pos, "%s while holding %s: blocking under a lock stalls every request behind it", what, strings.Join(names, ", "))
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}
