package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// NoiseRandAnalyzer forbids math/rand in privacy-critical packages.
//
// Differential privacy demands cryptographically secure noise: a Laplace
// sample drawn from a predictable PRNG lets an attacker reconstruct the
// noise stream and strip the mechanism's protection. All sampling in
// internal/core, internal/dp, and dpgraph must flow through dp.NoiseSource,
// whose default implementation is ChaCha8-keyed from crypto/rand. The only
// legitimate math/rand uses are the deterministic replay source and
// public-API parameter types, each of which carries a justified
// //dpvet:allow noiserand directive.
var NoiseRandAnalyzer = &Analyzer{
	Name: "noiserand",
	Doc:  "forbid math/rand imports and fixed-seed randomness in privacy-critical packages",
	Run:  runNoiseRand,
}

// privacyCriticalPkg reports whether pkgPath holds mechanism or noise code.
// Commands (cmd/...) are out of scope: they drive benchmarks and demos, not
// releases.
func privacyCriticalPkg(pkgPath string) bool {
	if strings.Contains(pkgPath, "cmd/") {
		return false
	}
	return strings.Contains(pkgPath, "internal/core") ||
		strings.Contains(pkgPath, "internal/dp") ||
		strings.HasSuffix(pkgPath, "dpgraph")
}

func runNoiseRand(pass *Pass) {
	if !privacyCriticalPkg(pass.PkgPath) {
		return
	}
	for _, f := range pass.Files {
		randNames := make(map[string]string) // local name -> import path
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != "math/rand" && path != "math/rand/v2" {
				continue
			}
			pass.Reportf(imp.Pos(), "import of %q in privacy-critical package %s: noise must flow through dp.NoiseSource (crypto-grade); suppress only with a justified //dpvet:allow noiserand", path, pass.PkgPath)
			name := "rand"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			randNames[name] = path
		}

		// Fixed-seed constructors are a second, independent hazard: even a
		// blessed math/rand import must never be seeded with a constant,
		// or every "random" noise stream is the same stream.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if _, isRand := randNames[pkgIdent.Name]; !isRand {
				return true
			}
			switch sel.Sel.Name {
			case "NewSource", "NewPCG", "NewChaCha8", "Seed":
				if callHasConstantArg(pass, call) {
					pass.Reportf(call.Pos(), "fixed-seed randomness (%s.%s with constant seed) in privacy-critical package: seeds must come from crypto/rand or caller-supplied entropy", pkgIdent.Name, sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// callHasConstantArg reports whether any argument is a compile-time
// constant (literal, const ident, or constant expression).
func callHasConstantArg(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
			return true
		}
		// Fallback when type info is incomplete: literal or unary literal.
		switch a := ast.Unparen(arg).(type) {
		case *ast.BasicLit:
			return true
		case *ast.UnaryExpr:
			if _, lit := a.X.(*ast.BasicLit); lit && (a.Op == token.SUB || a.Op == token.ADD) {
				return true
			}
		}
	}
	return false
}
