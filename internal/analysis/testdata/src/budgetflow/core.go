package core

import "errors"

// PrivacyParams and Accountant mirror the real internal/dp accounting
// surface closely enough for name-keyed charge detection.
type PrivacyParams struct{ Epsilon, Delta float64 }

type Accountant struct{ spent float64 }

func (a *Accountant) Spend(label string, p PrivacyParams) error {
	a.spent += p.Epsilon
	return nil
}

// Options mirrors core.Options: the budget-carrying parameter that marks
// a function as a mechanism entry point.
type Options struct{ Acct *Accountant }

func (o Options) charge(label string, p PrivacyParams) error {
	return o.Acct.Spend(label, p)
}

// GoodRelease is the canonical pattern: validate, charge under an error
// guard, then return the result.
func GoodRelease(x float64, o Options) (float64, error) {
	if x < 0 {
		return 0, errors.New("negative input")
	}
	if err := o.charge("good", PrivacyParams{Epsilon: 1}); err != nil {
		return 0, err
	}
	return x + 1, nil
}

// FreeRelease hands out a result without ever paying for it.
func FreeRelease(x float64, o Options) (float64, error) {
	return x + 1, nil // want "returns a result on a path that never charges"
}

// HalfCharged only pays on the positive branch.
func HalfCharged(x float64, o Options) (float64, error) {
	if x > 0 {
		if err := o.charge("half", PrivacyParams{Epsilon: 1}); err != nil {
			return 0, err
		}
		return x, nil
	}
	return -x, nil // want "never charges"
}

// LeakyRelease burns budget and then fails anyway.
func LeakyRelease(x float64, o Options) (float64, error) {
	if err := o.charge("leaky", PrivacyParams{Epsilon: 1}); err != nil {
		return 0, err
	}
	if x < 0 {
		return 0, errors.New("too late to fail") // want "returns an error after the budget was charged"
	}
	return x, nil
}

// DelegatedRelease pays through a same-package helper; the fixpoint over
// the package call graph credits it.
func DelegatedRelease(x float64, o Options) (float64, error) {
	return chargedHelper(x, o)
}

func chargedHelper(x float64, o Options) (float64, error) {
	if err := o.charge("helper", PrivacyParams{Epsilon: 1}); err != nil {
		return 0, err
	}
	return x, nil
}

// Helper has no Options parameter: out of scope even though exported.
func Helper(x float64) float64 { return x * 2 }
