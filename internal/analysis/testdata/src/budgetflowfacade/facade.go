package dpgraph

// Receipt and PrivateGraph mirror the facade: exported methods returning
// (result, error) are releases and must route through the accountant.
type Receipt struct{ Mechanism string }

type accountant struct{}

func (a *accountant) Spend(label string) error { return nil }

type PrivateGraph struct {
	acct *accountant
	n    int
}

// exec charges and records; methods that delegate to it are covered by
// the same-package fixpoint.
func (pg *PrivateGraph) exec(name string, run func() error) (Receipt, error) {
	if err := pg.acct.Spend(name); err != nil {
		return Receipt{}, err
	}
	if err := run(); err != nil {
		return Receipt{}, err
	}
	return Receipt{Mechanism: name}, nil
}

// Value routes through exec: paid for.
func (pg *PrivateGraph) Value() (float64, Receipt, error) {
	var v float64
	rec, err := pg.exec("value", func() error {
		v = float64(pg.n)
		return nil
	})
	if err != nil {
		return 0, Receipt{}, err
	}
	return v, rec, nil
}

// Freebie returns a release-shaped result without charging.
func (pg *PrivateGraph) Freebie() (float64, error) {
	return 42, nil // want "never charges"
}

// N is an accessor without an error result: out of scope.
func (pg *PrivateGraph) N() int { return pg.n }
