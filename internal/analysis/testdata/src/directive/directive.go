package directive

// unknownName suppresses nothing: the analyzer name is not real, which is
// itself a diagnostic, and the underlying finding still fires.
func unknownName(a, b float64) bool {
	return a == b //dpvet:allow nosuchcheck -- not a real analyzer // want "unknown analyzer" "float equality"
}

// missingJust omits the mandatory justification.
func missingJust(a, b float64) bool {
	return a == b //dpvet:allow floatcmp // want "missing its justification" "float equality"
}

// trivialJust justifies with a shrug.
func trivialJust(a, b float64) bool {
	return a == b //dpvet:allow floatcmp -- ok // want "trivial justification" "float equality"
}

// valid suppresses the finding with a real justification.
func valid(a, b float64) bool {
	return a == b //dpvet:allow floatcmp -- exact comparison against a deterministic fixture value
}
