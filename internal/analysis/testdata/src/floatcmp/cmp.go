package core

import "math"

// Bad compares two noisy values exactly.
func Bad(a, b float64) bool {
	return a == b // want "float equality a == b"
}

// BadNeq is the != spelling of the same bug.
func BadNeq(a, b float64) bool {
	return a != b // want "float equality a != b"
}

// NaNCheck is the portable NaN probe: self-comparison is exempt.
func NaNCheck(x float64) bool {
	return x != x
}

// InfSentinel compares against the documented unreachability sentinel.
func InfSentinel(d float64) bool {
	return d == math.Inf(1)
}

// ZeroGuard is the exact-zero division guard idiom: exempt.
func ZeroGuard(d float64) bool {
	return d == 0
}

// Allowed carries a justified suppression.
func Allowed(a, b float64) bool {
	return a == b //dpvet:allow floatcmp -- exact golden comparison against a checked-in replay value
}
