package hot

import "fmt"

type pair struct{ s, t int }

func release()           {}
func sink(x interface{}) { _ = x }

// Bad collects one of each forbidden construct.
//
//dpvet:hotpath
func Bad(b []byte, v int) []byte {
	defer release()       // want "defer in hotpath"
	f := func() { _ = v } // want "function literal in hotpath"
	f()
	m := make([]int, v) // want "make\\(\\) in hotpath"
	_ = m
	fmt.Println(v)   // want "fmt.Println call in hotpath"
	p := &pair{s: v} // want "escapes to the heap"
	_ = p
	xs := []int{v} // want "slice literal in hotpath"
	_ = xs
	sink(v) // want "boxes int into interface parameter"
	return append(b, byte(v))
}

// Good uses only non-allocating constructs: appends, value literals,
// pointer arguments to interface parameters.
//
//dpvet:hotpath
func Good(b []byte, p pair) []byte {
	b = append(b, byte(p.s), byte(p.t))
	q := pair{s: p.t, t: p.s}
	sink(&q)
	var arr [4]byte
	_ = arr
	return b
}

// Allowed demonstrates a justified cold-path suppression inside a hot
// function.
//
//dpvet:hotpath
func Allowed(v int) {
	sink(v) //dpvet:allow hotpath -- cold diagnostic path, unreachable for well-formed input
}

// Unannotated is free to allocate: no directive, no diagnostics.
func Unannotated(v int) []int {
	return []int{v, v + 1}
}
