package serve

import (
	"sync"
	"time"
)

type registry struct {
	mu    sync.Mutex
	probe sync.Mutex
	ch    chan int
	wg    sync.WaitGroup
}

// BadSleep blocks the lock for a full probe interval.
func (r *registry) BadSleep() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding registry.mu"
	r.mu.Unlock()
}

// GoodSleep releases before sleeping.
func (r *registry) GoodSleep() {
	r.mu.Lock()
	r.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// BadRecv blocks on a channel under a deferred unlock.
func (r *registry) BadRecv() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return <-r.ch // want "channel receive while holding registry.mu"
}

// BadSend blocks on an unbuffered send while locked.
func (r *registry) BadSend(v int) {
	r.mu.Lock()
	r.ch <- v // want "channel send while holding registry.mu"
	r.mu.Unlock()
}

// BadWait parks on a WaitGroup while locked.
func (r *registry) BadWait() {
	r.mu.Lock()
	r.wg.Wait() // want "WaitGroup.Wait while holding registry.mu"
	r.mu.Unlock()
}

// BadSelect has no default: it parks while locked.
func (r *registry) BadSelect() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want "select without default while holding registry.mu"
	case v := <-r.ch:
		return v
	}
}

// GoodSelect polls: the default case means it cannot park.
func (r *registry) GoodSelect() (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case v := <-r.ch:
		return v, true
	default:
		return 0, false
	}
}

// OrderAB takes mu then probe ...
func (r *registry) OrderAB() {
	r.mu.Lock()
	r.probe.Lock()
	r.probe.Unlock()
	r.mu.Unlock()
}

// OrderBA takes probe then mu: inverted with OrderAB.
func (r *registry) OrderBA() {
	r.probe.Lock()
	r.mu.Lock() // want "inconsistent lock order"
	r.mu.Unlock()
	r.probe.Unlock()
}
