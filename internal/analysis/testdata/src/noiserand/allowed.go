package core

//dpvet:allow noiserand -- deterministic replay source for golden tests, reachable only behind an explicit seed opt-in
import (
	randv2 "math/rand/v2"
)

// Replay draws from a justified deterministic source; the doc-level allow
// on the import block suppresses the import diagnostic.
func Replay(seed uint64) uint64 {
	return randv2.New(randv2.NewPCG(seed, seed)).Uint64()
}
