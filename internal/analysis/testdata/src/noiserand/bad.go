package core

import (
	"math/rand" // want "import of \"math/rand\" in privacy-critical package"
)

// FixedSeed builds a predictable generator: both the import and the
// constant seed are violations.
func FixedSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "fixed-seed randomness"
}

// VariableSeed still trips the import diagnostic, but the seed itself is
// caller-supplied entropy so no fixed-seed diagnostic fires here.
func VariableSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
