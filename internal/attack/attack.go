// Package attack implements the reconstruction adversaries behind the
// paper's lower bounds (Theorem 5.1 and Lemmas 5.2-5.4 for shortest
// paths; Theorems B.1/B.4 and Lemmas B.2/B.5 for spanning trees and
// matchings).
//
// Each attack follows the same template: a database x in {0,1}^n is
// encoded as a weight function w_x on a hard gadget graph; the private
// mechanism under attack is run on w_x; and its combinatorial output (a
// path, tree or matching) is decoded into a guess y in {0,1}^n. Lemma 5.2
// shows the guess's expected Hamming distance to x is at most the
// mechanism's approximation error, while Lemma 5.4 shows any
// differentially private algorithm must have expected Hamming distance at
// least n(1-(1+e^eps)delta)/(1+e^{2eps}) on some input — so accurate
// private mechanisms for these problems cannot exist.
package attack

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// ReconstructionBound returns the Theorem 5.1 lower bound
// alpha = n * (1 - (1+e^eps)*delta) / (1 + e^{2*eps}): any algorithm that
// is (eps, delta)-DP on the gadget graph must, on some input, release an
// object with expected approximation error at least alpha (equivalently,
// the Lemma 5.2 adversary attains expected Hamming distance alpha).
// For small eps and delta this is about 0.49*n.
func ReconstructionBound(n int, eps, delta float64) float64 {
	return float64(n) * (1 - (1+math.Exp(eps))*delta) / (1 + math.Exp(2*eps))
}

// RandomBits draws n uniform bits.
func RandomBits(n int, rng *rand.Rand) []bool {
	x := make([]bool, n)
	for i := range x {
		x[i] = rng.Intn(2) == 1
	}
	return x
}

// HammingDistance counts positions where x and y differ. It panics on
// length mismatch.
func HammingDistance(x, y []bool) int {
	if len(x) != len(y) {
		panic(fmt.Sprintf("attack: Hamming distance of lengths %d and %d", len(x), len(y)))
	}
	d := 0
	for i := range x {
		if x[i] != y[i] {
			d++
		}
	}
	return d
}

// PathMechanism is a mechanism that releases an s-t path (edge IDs) for a
// weighted graph. The adversary treats it as a black box.
type PathMechanism func(g *graph.Graph, w []float64, s, t int) ([]int, error)

// PathResult reports one run of the Lemma 5.2 adversary.
type PathResult struct {
	Guess     []bool  // decoded database
	Hamming   int     // Hamming distance between guess and the true x
	PathError float64 // true weight of the released path (the shortest path has weight 0)
}

// PathReconstruction runs the Lemma 5.2 adversary against mech on the
// Figure-2 gadget for database x: encode x as w_x, obtain a path from
// s = 0 to t = n, decode the parallel-edge choices into a guess, and
// measure both the guess's Hamming distance and the path's true weight
// (its approximation error, since the optimum is 0). Lemma 5.2 guarantees
// Hamming <= PathError whenever the released path is a simple s-t path
// through all gadget positions.
func PathReconstruction(x []bool, mech PathMechanism, gadget *graph.PathGadget) (*PathResult, error) {
	if gadget.N != len(x) {
		return nil, fmt.Errorf("attack: gadget has %d positions, database has %d bits", gadget.N, len(x))
	}
	w := gadget.Weights(x)
	path, err := mech(gadget.G, w, gadget.S, gadget.T)
	if err != nil {
		return nil, err
	}
	if err := gadget.G.ValidatePath(gadget.S, gadget.T, path); err != nil {
		return nil, fmt.Errorf("attack: mechanism released an invalid path: %w", err)
	}
	y := gadget.Decode(path)
	return &PathResult{
		Guess:     y,
		Hamming:   HammingDistance(x, y),
		PathError: graph.PathWeight(w, path),
	}, nil
}

// TreeMechanism is a mechanism that releases a spanning tree (edge IDs).
type TreeMechanism func(g *graph.Graph, w []float64) ([]int, error)

// TreeResult reports one run of the Lemma B.2 adversary.
type TreeResult struct {
	Guess     []bool
	Hamming   int
	TreeError float64 // true weight of the released tree (the MST has weight 0)
}

// MSTReconstruction runs the Lemma B.2 adversary against mech on the
// Figure-3 (left) star multigraph gadget.
func MSTReconstruction(x []bool, mech TreeMechanism, gadget *graph.MSTGadget) (*TreeResult, error) {
	if gadget.N != len(x) {
		return nil, fmt.Errorf("attack: gadget has %d positions, database has %d bits", gadget.N, len(x))
	}
	w := gadget.Weights(x)
	tree, err := mech(gadget.G, w)
	if err != nil {
		return nil, err
	}
	if !graph.IsSpanningTree(gadget.G, tree) {
		return nil, fmt.Errorf("attack: mechanism released a non-spanning-tree")
	}
	y := gadget.Decode(tree)
	return &TreeResult{
		Guess:     y,
		Hamming:   HammingDistance(x, y),
		TreeError: graph.PathWeight(w, tree),
	}, nil
}

// MatchingMechanism is a mechanism that releases a perfect matching.
type MatchingMechanism func(g *graph.Graph, w []float64) ([]int, error)

// MatchingResult reports one run of the Lemma B.5 adversary.
type MatchingResult struct {
	Guess         []bool
	Hamming       int
	MatchingError float64 // true weight of the released matching (optimum 0)
}

// MatchingReconstruction runs the Lemma B.5 adversary against mech on the
// Figure-3 (right) hourglass gadget.
func MatchingReconstruction(x []bool, mech MatchingMechanism, gadget *graph.HourglassGadget) (*MatchingResult, error) {
	if gadget.N != len(x) {
		return nil, fmt.Errorf("attack: gadget has %d positions, database has %d bits", gadget.N, len(x))
	}
	w := gadget.Weights(x)
	m, err := mech(gadget.G, w)
	if err != nil {
		return nil, err
	}
	if !graph.IsPerfectMatching(gadget.G, m) {
		return nil, fmt.Errorf("attack: mechanism released a non-perfect-matching")
	}
	y := gadget.Decode(m)
	return &MatchingResult{
		Guess:         y,
		Hamming:       HammingDistance(x, y),
		MatchingError: graph.PathWeight(w, m),
	}, nil
}

// RandomizedResponse is the classical eps-DP bit release [War65]: each
// bit is reported truthfully with probability e^eps/(1+e^eps) and flipped
// otherwise. Lemma 5.3 shows its per-bit disagreement probability
// 1/(1+e^eps) is optimal for eps-DP mechanisms, which is the engine of
// Lemma 5.4's reconstruction bound; experiments compare attacks against
// this floor.
func RandomizedResponse(x []bool, eps float64, rng *rand.Rand) []bool {
	pTruth := math.Exp(eps) / (1 + math.Exp(eps))
	y := make([]bool, len(x))
	for i, b := range x {
		if rng.Float64() < pTruth {
			y[i] = b
		} else {
			y[i] = !b
		}
	}
	return y
}
