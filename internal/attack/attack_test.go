package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/dpgraph"
	"repro/internal/graph"
)

func TestReconstructionBoundValues(t *testing.T) {
	// Small eps, delta=0: bound approaches n/2.
	if got := ReconstructionBound(100, 0.001, 0); got < 49.9 || got > 50 {
		t.Errorf("bound at eps~0 = %g", got)
	}
	// Large eps: bound approaches 0.
	if got := ReconstructionBound(100, 20, 0); got > 1e-10 {
		t.Errorf("bound at eps=20 = %g", got)
	}
	// delta shrinks the bound.
	if ReconstructionBound(100, 1, 0.1) >= ReconstructionBound(100, 1, 0) {
		t.Error("delta did not shrink bound")
	}
	// The paper's 0.49(V-1) claim for small eps, delta.
	if got := ReconstructionBound(512, 0.01, 1e-9); got < 0.49*512 {
		t.Errorf("bound %g below 0.49 n", got)
	}
}

func TestHammingDistance(t *testing.T) {
	if HammingDistance([]bool{true, false}, []bool{true, true}) != 1 {
		t.Error("hamming wrong")
	}
	if HammingDistance(nil, nil) != 0 {
		t.Error("empty hamming")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	HammingDistance([]bool{true}, nil)
}

func TestRandomBits(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	x := RandomBits(1000, rng)
	ones := 0
	for _, b := range x {
		if b {
			ones++
		}
	}
	if ones < 400 || ones > 600 {
		t.Errorf("ones = %d, not near half", ones)
	}
}

// exactPathMech ignores privacy and returns the true shortest path.
func exactPathMech(g *graph.Graph, w []float64, s, t int) ([]int, error) {
	path, _, _, err := graph.ShortestPath(g, w, s, t)
	return path, err
}

func TestPathReconstructionExactMechanism(t *testing.T) {
	// Against a non-private exact mechanism the adversary recovers
	// everything: Hamming = 0, path error = 0.
	rng := rand.New(rand.NewSource(57))
	gadget := graph.NewPathGadget(64)
	x := RandomBits(64, rng)
	res, err := PathReconstruction(x, exactPathMech, gadget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hamming != 0 || res.PathError != 0 {
		t.Errorf("exact mech: hamming=%d err=%g", res.Hamming, res.PathError)
	}
}

func TestPathReconstructionLemmaInequality(t *testing.T) {
	// Lemma 5.2: Hamming <= path error, per run, for simple s-t paths.
	rng := rand.New(rand.NewSource(58))
	gadget := graph.NewPathGadget(128)
	for _, eps := range []float64{0.1, 1, 10} {
		for trial := 0; trial < 5; trial++ {
			x := RandomBits(128, rng)
			mech := func(g *graph.Graph, w []float64, s, tt int) ([]int, error) {
				pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
					dpgraph.WithEpsilon(eps), dpgraph.WithNoiseSource(rng))
				if err != nil {
					return nil, err
				}
				pp, err := pg.ShortestPaths()
				if err != nil {
					return nil, err
				}
				return pp.Path(s, tt)
			}
			res, err := PathReconstruction(x, mech, gadget)
			if err != nil {
				t.Fatal(err)
			}
			if float64(res.Hamming) > res.PathError+1e-9 {
				t.Fatalf("eps=%g: hamming %d > path error %g", eps, res.Hamming, res.PathError)
			}
		}
	}
}

func TestPathReconstructionPrivateMechanismRespectsFloor(t *testing.T) {
	// At strong privacy, mean Hamming distance must be near n/2 — in
	// particular at or above the Theorem 5.1 floor (with sampling slack).
	rng := rand.New(rand.NewSource(59))
	n := 512
	gadget := graph.NewPathGadget(n)
	eps := 0.05
	trials := 10
	total := 0
	for trial := 0; trial < trials; trial++ {
		x := RandomBits(n, rng)
		mech := func(g *graph.Graph, w []float64, s, tt int) ([]int, error) {
			pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
				dpgraph.WithEpsilon(eps), dpgraph.WithNoiseSource(rng))
			if err != nil {
				return nil, err
			}
			pp, err := pg.ShortestPaths()
			if err != nil {
				return nil, err
			}
			return pp.Path(s, tt)
		}
		res, err := PathReconstruction(x, mech, gadget)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Hamming
	}
	mean := float64(total) / float64(trials)
	floor := ReconstructionBound(n, 2*eps, 0)
	if mean < floor*0.8 {
		t.Errorf("mean hamming %g below floor %g: mechanism leaks more than DP allows?", mean, floor)
	}
}

func TestPathReconstructionRejectsBadMechanism(t *testing.T) {
	gadget := graph.NewPathGadget(8)
	x := make([]bool, 8)
	bad := func(g *graph.Graph, w []float64, s, t int) ([]int, error) {
		return []int{0, 0, 0}, nil // not a valid s-t walk
	}
	if _, err := PathReconstruction(x, bad, gadget); err == nil {
		t.Error("invalid path accepted")
	}
	if _, err := PathReconstruction(make([]bool, 5), exactPathMech, gadget); err == nil {
		t.Error("length mismatch accepted")
	}
}

func exactMSTMech(g *graph.Graph, w []float64) ([]int, error) {
	tree, _, err := graph.MST(g, w)
	return tree, err
}

func TestMSTReconstructionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	gadget := graph.NewMSTGadget(64)
	x := RandomBits(64, rng)
	res, err := MSTReconstruction(x, exactMSTMech, gadget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hamming != 0 || res.TreeError != 0 {
		t.Errorf("exact MST mech: hamming=%d err=%g", res.Hamming, res.TreeError)
	}
}

func TestMSTReconstructionLemmaInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	gadget := graph.NewMSTGadget(128)
	for trial := 0; trial < 8; trial++ {
		x := RandomBits(128, rng)
		mech := func(g *graph.Graph, w []float64) ([]int, error) {
			pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
				dpgraph.WithEpsilon(1), dpgraph.WithNoiseSource(rng))
			if err != nil {
				return nil, err
			}
			rel, err := pg.MST()
			if err != nil {
				return nil, err
			}
			return rel.Edges, nil
		}
		res, err := MSTReconstruction(x, mech, gadget)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Hamming) > res.TreeError+1e-9 {
			t.Fatalf("hamming %d > tree error %g", res.Hamming, res.TreeError)
		}
	}
}

func TestMSTReconstructionRejectsNonTree(t *testing.T) {
	gadget := graph.NewMSTGadget(8)
	bad := func(g *graph.Graph, w []float64) ([]int, error) {
		return []int{0, 1}, nil // parallel pair: a cycle, not spanning
	}
	if _, err := MSTReconstruction(make([]bool, 8), bad, gadget); err == nil {
		t.Error("non-tree accepted")
	}
}

func exactMatchingMech(g *graph.Graph, w []float64) ([]int, error) {
	m, _, err := graph.MinWeightPerfectMatching(g, w)
	return m, err
}

func TestMatchingReconstructionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	gadget := graph.NewHourglassGadget(64)
	x := RandomBits(64, rng)
	res, err := MatchingReconstruction(x, exactMatchingMech, gadget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hamming != 0 || res.MatchingError != 0 {
		t.Errorf("exact matching mech: hamming=%d err=%g", res.Hamming, res.MatchingError)
	}
}

func TestMatchingReconstructionLemmaInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	gadget := graph.NewHourglassGadget(64)
	for trial := 0; trial < 8; trial++ {
		x := RandomBits(64, rng)
		mech := func(g *graph.Graph, w []float64) ([]int, error) {
			pg, err := dpgraph.New(g, dpgraph.PrivateWeights(w),
				dpgraph.WithEpsilon(1), dpgraph.WithNoiseSource(rng))
			if err != nil {
				return nil, err
			}
			rel, err := pg.Matching()
			if err != nil {
				return nil, err
			}
			return rel.Edges, nil
		}
		res, err := MatchingReconstruction(x, mech, gadget)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Hamming) > res.MatchingError+1e-9 {
			t.Fatalf("hamming %d > matching error %g", res.Hamming, res.MatchingError)
		}
	}
}

func TestMatchingReconstructionRejectsNonMatching(t *testing.T) {
	gadget := graph.NewHourglassGadget(4)
	bad := func(g *graph.Graph, w []float64) ([]int, error) {
		return []int{0}, nil
	}
	if _, err := MatchingReconstruction(make([]bool, 4), bad, gadget); err == nil {
		t.Error("partial matching accepted")
	}
}

func TestRandomizedResponseRate(t *testing.T) {
	// Per-bit disagreement should be ~1/(1+e^eps) — the Lemma 5.3 floor.
	rng := rand.New(rand.NewSource(64))
	n := 100000
	for _, eps := range []float64{0.5, 1, 2} {
		x := RandomBits(n, rng)
		y := RandomizedResponse(x, eps, rng)
		want := 1 / (1 + math.Exp(eps))
		got := float64(HammingDistance(x, y)) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("eps=%g: disagreement %g, want %g", eps, got, want)
		}
	}
}
