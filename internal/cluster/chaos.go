package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ChaosTransport is a fault-injecting http.RoundTripper wrapped around
// the coordinator's downstream transport: it adds latency to every
// proxied request, fails a fraction of them with synthetic transport
// errors, and hangs a fraction until their context deadline fires. It
// exists twice over — as the `dpgraph route -chaos-*` flags, so an
// operator can rehearse fleet failure modes against a live coordinator,
// and as a test double the chaos tests aim at specific replicas.
//
// Faults are decided before the request is forwarded, so an injected
// error never half-executes a downstream request.
type ChaosTransport struct {
	// Base performs the real request; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Latency is added to every matched request before it is forwarded.
	Latency time.Duration
	// ErrorRate is the probability in [0, 1] that a matched request
	// fails with a synthetic transport error instead of running.
	ErrorRate float64
	// HangRate is the probability in [0, 1] that a matched request
	// blocks until its context is done — a replica that accepted the
	// connection and never answers.
	HangRate float64
	// Hosts, when non-empty, limits injection to these host:port
	// targets; an empty map chaoses every request.
	Hosts map[string]bool
	// Seed makes the fault coin-flips reproducible; 0 seeds from the
	// clock at first use.
	Seed int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

// ErrChaosInjected is the synthetic transport failure injected by
// ErrorRate, distinguishable from real network errors in test logs.
var ErrChaosInjected = errors.New("chaos: injected transport error")

func (t *ChaosTransport) init() {
	seed := t.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.rng = rand.New(rand.NewSource(seed))
}

// roll draws one uniform [0,1) sample under the lock.
func (t *ChaosTransport) roll() float64 {
	t.once.Do(t.init)
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64()
}

func (t *ChaosTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *ChaosTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if len(t.Hosts) > 0 && !t.Hosts[r.URL.Host] {
		return t.base().RoundTrip(r)
	}
	if t.HangRate > 0 && t.roll() < t.HangRate {
		<-r.Context().Done()
		return nil, fmt.Errorf("chaos: hung until deadline: %w", r.Context().Err())
	}
	if t.Latency > 0 {
		select {
		case <-time.After(t.Latency):
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
	if t.ErrorRate > 0 && t.roll() < t.ErrorRate {
		return nil, ErrChaosInjected
	}
	return t.base().RoundTrip(r)
}
