package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosTransportUnit pins the fault decisions: certain errors,
// host targeting, added latency, and context-bounded hangs.
func TestChaosTransportUnit(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	t.Run("error rate 1 always fails", func(t *testing.T) {
		ct := &ChaosTransport{ErrorRate: 1, Seed: 1}
		req, _ := http.NewRequest(http.MethodGet, backend.URL, nil)
		if _, err := ct.RoundTrip(req); !errors.Is(err, ErrChaosInjected) {
			t.Fatalf("err = %v, want ErrChaosInjected", err)
		}
	})

	t.Run("host filter spares other targets", func(t *testing.T) {
		ct := &ChaosTransport{ErrorRate: 1, Seed: 1, Hosts: map[string]bool{"victim:1": true}}
		req, _ := http.NewRequest(http.MethodGet, backend.URL, nil)
		resp, err := ct.RoundTrip(req)
		if err != nil {
			t.Fatalf("unmatched host chaosed: %v", err)
		}
		resp.Body.Close()
	})

	t.Run("latency is added", func(t *testing.T) {
		ct := &ChaosTransport{Latency: 60 * time.Millisecond, Seed: 1}
		req, _ := http.NewRequest(http.MethodGet, backend.URL, nil)
		start := time.Now()
		resp, err := ct.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d := time.Since(start); d < 60*time.Millisecond {
			t.Errorf("round trip took %v, want >= 60ms", d)
		}
	})

	t.Run("hang blocks until the context dies", func(t *testing.T) {
		ct := &ChaosTransport{HangRate: 1, Seed: 1}
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, backend.URL, nil)
		start := time.Now()
		if _, err := ct.RoundTrip(req); err == nil {
			t.Fatal("hung request returned no error")
		}
		if d := time.Since(start); d < 50*time.Millisecond || d > 5*time.Second {
			t.Errorf("hang resolved after %v, want ~the 50ms deadline", d)
		}
	})
}

// TestChaosConvergence is the fault-injection acceptance test: three
// replicas under concurrent point-query load, one of them failed
// mid-load (killed / hung / answering 500s). The pool must converge —
// the sick replica evicted within two probe cycles, overall error rate
// under 1% thanks to retries and hedges, every answered query equal to
// the single-node oracle (zero wrong answers), and the replica
// re-admitted after it heals. Run under -race in CI.
func TestChaosConvergence(t *testing.T) {
	oracle := fleetOracle(t)
	truth := make(map[[2]int]float64)
	for s := 0; s < 16; s++ {
		for tt := 0; tt < 16; tt++ {
			v, err := oracle.Distance(s, tt)
			if err != nil {
				t.Fatal(err)
			}
			truth[[2]int{s, tt}] = v
		}
	}

	const probeInterval = 100 * time.Millisecond
	for _, mode := range []string{modeKill, modeHang, mode500} {
		t.Run(mode, func(t *testing.T) {
			fleet := newTestFleet(t, 3)
			c, ts := newTestCoordinator(t, fleet, Config{
				ProbeInterval:  probeInterval,
				RequestTimeout: 3 * time.Second,
			})
			victim := fleet[0]

			var (
				total    atomic.Int64
				failed   atomic.Int64
				wrong    atomic.Int64
				firstErr sync.Map
				stop     = make(chan struct{})
				wg       sync.WaitGroup
			)
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
			for wk := 0; wk < 4; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					i := wk
					for {
						select {
						case <-stop:
							return
						default:
						}
						s, tt := i%16, (i*7+3)%16
						i += 4
						n := total.Add(1)
						resp, err := client.Get(fmt.Sprintf("%s/v1/releases/main/distance?s=%d&t=%d", ts.URL, s, tt))
						if err != nil {
							failed.Add(1)
							firstErr.LoadOrStore("transport", err.Error())
							continue
						}
						var ans pointAnswer
						ok := resp.StatusCode == http.StatusOK
						if ok {
							if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
								ok = false
							}
						}
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
						if !ok {
							failed.Add(1)
							firstErr.LoadOrStore("status", fmt.Sprint(resp.StatusCode))
							continue
						}
						if ans.Value == nil || *ans.Value != truth[[2]int{s, tt}] {
							wrong.Add(1)
						}
						_ = n
					}
				}(wk)
			}

			// Let the pool serve cleanly, then fail the victim mid-load.
			time.Sleep(300 * time.Millisecond)
			victim.set(mode)
			evictedAfter := waitReplicaState(t, c, victim.url(), "evicted", 5*time.Second)
			// Detection is live-failure-driven under load and probe-driven
			// otherwise; either way two probe cycles (plus one probe
			// timeout of slack for a probe already in flight) must cover it.
			if limit := 2*probeInterval + probeInterval/2 + 150*time.Millisecond; evictedAfter > limit {
				t.Errorf("%s: eviction took %v, want <= %v (2 probe intervals)", mode, evictedAfter, limit)
			}

			// Keep loading against the degraded pool, then heal the victim
			// and require re-admission.
			time.Sleep(400 * time.Millisecond)
			victim.set(modeOK)
			waitReplicaState(t, c, victim.url(), "healthy", 5*time.Second)
			time.Sleep(200 * time.Millisecond)
			close(stop)
			wg.Wait()

			if wrong.Load() != 0 {
				t.Fatalf("%s: %d answered queries disagreed with the single-node oracle", mode, wrong.Load())
			}
			tot, fail := total.Load(), failed.Load()
			if tot < 100 {
				t.Fatalf("%s: only %d queries ran; load generator is broken", mode, tot)
			}
			if rate := float64(fail) / float64(tot); rate >= 0.01 {
				var detail []string
				firstErr.Range(func(k, v any) bool {
					detail = append(detail, fmt.Sprintf("%v=%v", k, v))
					return true
				})
				t.Errorf("%s: error rate %.4f (%d of %d) >= 1%% (%v)", mode, rate, fail, tot, detail)
			}
			t.Logf("%s: %d queries, %d failed, evicted after %v, re-admitted", mode, tot, fail, evictedAfter)
		})
	}
}

// TestChaosCoordinatorFlags drives a coordinator whose own transport
// injects faults (the -chaos-* path): with retries on, a modest error
// rate must stay invisible to clients.
func TestChaosCoordinatorFlags(t *testing.T) {
	fleet := newTestFleet(t, 2)
	cfg := Config{
		ProbeInterval:    200 * time.Millisecond,
		FailureThreshold: 1 << 30, // chaos failures are synthetic; keep both replicas in play
		Transport: &ChaosTransport{
			ErrorRate: 0.2,
			Seed:      42,
		},
	}
	for _, rep := range fleet {
		cfg.Replicas = append(cfg.Replicas, rep.url())
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	oracle := fleetOracle(t)

	okCount := 0
	for i := 0; i < 50; i++ {
		status, ans, _ := queryPoint(t, ts.URL, i%16, 15)
		if status != http.StatusOK {
			continue
		}
		okCount++
		want, _ := oracle.Distance(i%16, 15)
		if ans.Value == nil || *ans.Value != want {
			t.Fatalf("chaos query %d = %v, oracle says %g", i, ans.Value, want)
		}
	}
	// With a 20% injected error rate and 3 attempts, the residual
	// client-visible failure rate is under 1%; require >= 48/50.
	if okCount < 48 {
		t.Errorf("only %d of 50 queries survived 20%% injected chaos with retries", okCount)
	}
}
