package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/dpgraph"
	"repro/internal/serve"
)

// Fault modes a test replica can be flipped into mid-load. Everything
// including /readyz is affected, so a faulted replica looks exactly
// like a sick or dead process to the coordinator's prober.
const (
	modeOK   = "ok"
	mode500  = "500"  // every request answers 500
	modeHang = "hang" // every request blocks until its context dies
	modeKill = "kill" // every connection is severed mid-request (process killed)
)

// testReplica is one in-process `serve` daemon behind a fault switch.
type testReplica struct {
	ts   *httptest.Server
	mode atomic.Value
}

func (r *testReplica) set(mode string) { r.mode.Store(mode) }
func (r *testReplica) url() string     { return r.ts.URL }

// fleetGraph is the shared test topology and private weights.
func fleetGraph() (*dpgraph.Graph, []float64) {
	g := dpgraph.Grid(4)
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + float64(i%4)
	}
	return g, w
}

const fleetReleaseSpec = `{"name":"main","mechanism":"release","epsilon":2,"seed":7}`

// newTestFleet boots n replicas all serving the identical seeded
// release "main" (identical seed, so bit-identical released values —
// the single-node oracle from fleetOracle is ground truth for every
// replica), each behind a fault switch starting at modeOK.
func newTestFleet(t *testing.T, n int) []*testReplica {
	t.Helper()
	g, w := fleetGraph()
	fleet := make([]*testReplica, n)
	for i := range fleet {
		s := serve.New(g, w, serve.Config{AllowSeeded: true})
		inner := s.Handler()
		rep := &testReplica{}
		rep.mode.Store(modeOK)
		rep.ts = httptest.NewServer(http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
			switch rep.mode.Load() {
			case mode500:
				http.Error(wr, "injected failure", http.StatusInternalServerError)
			case modeHang:
				<-r.Context().Done()
			case modeKill:
				panic(http.ErrAbortHandler)
			default:
				inner.ServeHTTP(wr, r)
			}
		}))
		t.Cleanup(rep.ts.Close)
		// Heal before close so hung handlers never stall cleanup.
		t.Cleanup(func() { rep.set(modeOK) })
		resp, err := http.Post(rep.ts.URL+"/v1/releases", "application/json", strings.NewReader(fleetReleaseSpec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("replica %d: create release status %d", i, resp.StatusCode)
		}
		fleet[i] = rep
	}
	return fleet
}

// fleetOracle materializes the same seeded release locally: the
// single-node ground truth every proxied answer must equal.
func fleetOracle(t *testing.T) dpgraph.DistanceOracle {
	t.Helper()
	g, w := fleetGraph()
	spec := dpgraph.ReleaseSpec{Mechanism: "release", Epsilon: 2, Seed: 7}
	oracle, _, err := spec.Materialize(g, dpgraph.PrivateWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	return oracle
}

// newTestCoordinator wires a coordinator over the fleet and fronts it
// with an httptest server.
func newTestCoordinator(t *testing.T, fleet []*testReplica, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	for _, rep := range fleet {
		cfg.Replicas = append(cfg.Replicas, rep.url())
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 100 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

// getJSON decodes a GET response into v, returning the status.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, data)
		}
	}
	return resp.StatusCode
}

type pointAnswer struct {
	S     int      `json:"s"`
	T     int      `json:"t"`
	Value *float64 `json:"value"`
}

// queryPoint fires one point query through the coordinator and returns
// status, answer, and the response headers.
func queryPoint(t *testing.T, base string, s, tt int) (int, pointAnswer, http.Header) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/releases/main/distance?s=%d&t=%d", base, s, tt))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var ans pointAnswer
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &ans); err != nil {
			t.Fatalf("bad point answer: %v\n%s", err, data)
		}
	}
	return resp.StatusCode, ans, resp.Header
}

// waitReplicaState polls the coordinator until the replica reports the
// wanted breaker state, returning how long it took.
func waitReplicaState(t *testing.T, c *Coordinator, url, want string, within time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(within)
	for time.Now().Before(deadline) {
		for _, rep := range c.snapshotReplicas() {
			if rep.url == url && rep.status().State == want {
				return time.Since(start)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica %s never reached state %q within %v", url, want, within)
	return 0
}

// TestClusterRoutingAgreement: point, batch, and stream answers routed
// through the coordinator all equal the single-node oracle, and the
// release listing proxies through.
func TestClusterRoutingAgreement(t *testing.T) {
	fleet := newTestFleet(t, 3)
	_, ts := newTestCoordinator(t, fleet, Config{})
	oracle := fleetOracle(t)

	for s := 0; s < 4; s++ {
		for tt := 12; tt < 16; tt++ {
			status, ans, hdr := queryPoint(t, ts.URL, s, tt)
			if status != http.StatusOK {
				t.Fatalf("point (%d,%d): status %d", s, tt, status)
			}
			want, err := oracle.Distance(s, tt)
			if err != nil {
				t.Fatal(err)
			}
			if ans.Value == nil || *ans.Value != want {
				t.Errorf("point (%d,%d) = %v, oracle says %g", s, tt, ans.Value, want)
			}
			if hdr.Get("X-Served-By") == "" {
				t.Error("answer missing X-Served-By")
			}
		}
	}

	// Batch through the proxy agrees too.
	resp, err := http.Post(ts.URL+"/v1/releases/main/distances", "application/json",
		strings.NewReader(`[[0,15],[1,2],[3,3]]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batch struct {
		Count   int           `json:"count"`
		Results []pointAnswer `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || batch.Count != 3 {
		t.Fatalf("batch: status %d, %+v", resp.StatusCode, batch)
	}
	for _, r := range batch.Results {
		want, _ := oracle.Distance(r.S, r.T)
		if r.Value == nil || *r.Value != want {
			t.Errorf("batch (%d,%d) = %v, oracle says %g", r.S, r.T, r.Value, want)
		}
	}

	// Stream proxy: NDJSON queries down, answers back, all correct.
	sresp, err := http.Post(ts.URL+"/v1/releases/main/distances:stream", "text/plain",
		strings.NewReader("0 15\n1 2\n3 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sdata, _ := io.ReadAll(sresp.Body)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d: %s", sresp.StatusCode, sdata)
	}
	lines := strings.Split(strings.TrimSpace(string(sdata)), "\n")
	if len(lines) != 3 {
		t.Fatalf("stream answered %d lines, want 3:\n%s", len(lines), sdata)
	}
	for _, line := range lines {
		var r pointAnswer
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		want, _ := oracle.Distance(r.S, r.T)
		if r.Value == nil || *r.Value != want {
			t.Errorf("stream (%d,%d) = %v, oracle says %g", r.S, r.T, r.Value, want)
		}
	}

	// The release listing proxies to a replica.
	var listing struct {
		Releases []struct {
			Name string `json:"name"`
		} `json:"releases"`
	}
	if status := getJSON(t, ts.URL+"/v1/releases", &listing); status != http.StatusOK {
		t.Fatalf("listing status %d", status)
	}
	if len(listing.Releases) != 1 || listing.Releases[0].Name != "main" {
		t.Errorf("listing = %+v", listing)
	}
}

// TestClusterRegistration: a coordinator born empty is not ready,
// becomes ready when a replica registers, and rejects junk URLs.
func TestClusterRegistration(t *testing.T) {
	fleet := newTestFleet(t, 1)
	c, ts := newTestCoordinator(t, nil, Config{ProbeInterval: 50 * time.Millisecond})

	if status := getJSON(t, ts.URL+"/livez", nil); status != http.StatusOK {
		t.Errorf("livez status %d", status)
	}
	if status := getJSON(t, ts.URL+"/readyz", nil); status != http.StatusServiceUnavailable {
		t.Errorf("empty-pool readyz status %d, want 503", status)
	}
	if status, _, _ := queryPoint(t, ts.URL, 0, 15); status != http.StatusServiceUnavailable {
		t.Errorf("empty-pool query status %d, want 503", status)
	}

	// Bad registrations bounce.
	for _, body := range []string{`{"url":"ftp://nope"}`, `{"url":"http://h:1/path"}`, `{}`, `not json`} {
		resp, err := http.Post(ts.URL+"/v1/replicas", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("register %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// A real one lands healthy (registration probes synchronously).
	resp, err := http.Post(ts.URL+"/v1/replicas", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, fleet[0].url())))
	if err != nil {
		t.Fatal(err)
	}
	var st replicaStatus
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "healthy" || len(st.Releases) != 1 || st.Releases[0] != "main" {
		t.Errorf("registered status = %+v", st)
	}
	if status := getJSON(t, ts.URL+"/readyz", nil); status != http.StatusOK {
		t.Errorf("readyz after registration: status %d", status)
	}
	if status, ans, _ := queryPoint(t, ts.URL, 0, 15); status != http.StatusOK || ans.Value == nil {
		t.Errorf("query after registration: status %d, %+v", status, ans)
	}

	// The pool listing shows it; re-registering is idempotent.
	http.Post(ts.URL+"/v1/replicas", "application/json", //nolint:errcheck
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, fleet[0].url())))
	var pool struct {
		Replicas []replicaStatus `json:"replicas"`
	}
	getJSON(t, ts.URL+"/v1/replicas", &pool)
	if len(pool.Replicas) != 1 || pool.Replicas[0].State != "healthy" {
		t.Errorf("pool = %+v", pool)
	}
	_ = c
}

// TestClusterFailoverAndBreaker: with one replica answering 500s every
// query still succeeds via the healthy one; the sick replica is
// evicted, then re-admitted by probes after it heals.
func TestClusterFailoverAndBreaker(t *testing.T) {
	fleet := newTestFleet(t, 2)
	c, ts := newTestCoordinator(t, fleet, Config{ProbeInterval: 50 * time.Millisecond})
	oracle := fleetOracle(t)

	fleet[0].set(mode500)
	for i := 0; i < 30; i++ {
		status, ans, _ := queryPoint(t, ts.URL, i%4, 15)
		if status != http.StatusOK {
			t.Fatalf("query %d during 500s: status %d", i, status)
		}
		want, _ := oracle.Distance(i%4, 15)
		if ans.Value == nil || *ans.Value != want {
			t.Fatalf("query %d = %v, oracle says %g", i, ans.Value, want)
		}
	}
	waitReplicaState(t, c, fleet[0].url(), "evicted", 2*time.Second)
	if ev := c.metrics.evictions.Load(); ev == 0 {
		t.Error("eviction metric still zero")
	}

	// Heal it; the prober re-admits within a couple of cycles.
	fleet[0].set(modeOK)
	waitReplicaState(t, c, fleet[0].url(), "healthy", 2*time.Second)
	if re := c.metrics.readmissions.Load(); re == 0 {
		t.Error("readmission metric still zero")
	}
}

// TestClusterDeadline: with every replica hung, a client-shortened
// deadline surfaces as a 504 in deadline time, not coordinator-default
// time.
func TestClusterDeadline(t *testing.T) {
	fleet := newTestFleet(t, 2)
	_, ts := newTestCoordinator(t, fleet, Config{
		ProbeInterval: 200 * time.Millisecond,
		HedgeDelay:    -1, // isolate the deadline path from hedging
	})
	for _, rep := range fleet {
		rep.set(modeHang)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/releases/main/distance?s=0&t=15", nil)
	req.Header.Set("X-Request-Timeout", "150ms")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("hung-pool status = %d, want 504", resp.StatusCode)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline took %v, want ~150ms", elapsed)
	}
}

// TestClusterFallback: when every replica is out, releases with a
// local unsealed snapshot keep answering — correctly — and are marked
// as fallback serves; a 503 with Retry-After covers the rest.
func TestClusterFallback(t *testing.T) {
	g, w := fleetGraph()
	spec := dpgraph.ReleaseSpec{Mechanism: "release", Epsilon: 2, Seed: 7}
	oracle, res, err := spec.Materialize(g, dpgraph.PrivateWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "main.dpsnap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := dpgraph.Seal(f, oracle, res); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fleet := newTestFleet(t, 1)
	c, ts := newTestCoordinator(t, fleet, Config{
		ProbeInterval: 50 * time.Millisecond,
		SnapshotDir:   dir,
	})
	fleet[0].set(modeKill)
	waitReplicaState(t, c, fleet[0].url(), "evicted", 2*time.Second)

	status, ans, hdr := queryPoint(t, ts.URL, 0, 15)
	if status != http.StatusOK {
		t.Fatalf("fallback point: status %d", status)
	}
	want, _ := oracle.Distance(0, 15)
	if ans.Value == nil || *ans.Value != want {
		t.Errorf("fallback point = %v, sealed oracle says %g", ans.Value, want)
	}
	if got := hdr.Get("X-Served-By"); got != "local-fallback" {
		t.Errorf("X-Served-By = %q, want local-fallback", got)
	}

	resp, err := http.Post(ts.URL+"/v1/releases/main/distances", "application/json",
		strings.NewReader(`[[0,15],[2,9]]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batch struct {
		Mechanism string        `json:"mechanism"`
		Count     int           `json:"count"`
		Results   []pointAnswer `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || batch.Mechanism != "release" || batch.Count != 2 {
		t.Fatalf("fallback batch: status %d, %+v", resp.StatusCode, batch)
	}
	for _, r := range batch.Results {
		want, _ := oracle.Distance(r.S, r.T)
		if r.Value == nil || *r.Value != want {
			t.Errorf("fallback batch (%d,%d) = %v, want %g", r.S, r.T, r.Value, want)
		}
	}
	if c.metrics.fallbackServed.Load() == 0 {
		t.Error("fallback metric still zero")
	}

	// A release with no fallback sheds with Retry-After instead.
	resp2, err := http.Get(ts.URL + "/v1/releases/ghost/distance?s=0&t=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get("Retry-After") == "" {
		t.Errorf("no-fallback release: status %d, Retry-After %q", resp2.StatusCode, resp2.Header.Get("Retry-After"))
	}
}

// TestClusterHedging: a fixed hedge delay rescues point queries whose
// primary is slow — answers come from the fast replica in hedge time,
// not slow-replica time.
func TestClusterHedging(t *testing.T) {
	g, w := fleetGraph()
	slow := serve.New(g, w, serve.Config{AllowSeeded: true})
	slowInner := slow.Handler()
	slowTS := httptest.NewServer(http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/distance") {
			select {
			case <-time.After(300 * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		slowInner.ServeHTTP(wr, r)
	}))
	t.Cleanup(slowTS.Close)
	resp, err := http.Post(slowTS.URL+"/v1/releases", "application/json", strings.NewReader(fleetReleaseSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	fast := newTestFleet(t, 1)
	c, err := New(Config{
		Replicas:      []string{slowTS.URL, fast[0].url()},
		ProbeInterval: 200 * time.Millisecond,
		HedgeDelay:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	oracle := fleetOracle(t)

	start := time.Now()
	const queries = 10
	for i := 0; i < queries; i++ {
		status, ans, _ := queryPoint(t, ts.URL, i%4, 15)
		if status != http.StatusOK {
			t.Fatalf("hedged query %d: status %d", i, status)
		}
		want, _ := oracle.Distance(i%4, 15)
		if ans.Value == nil || *ans.Value != want {
			t.Fatalf("hedged query %d = %v, oracle says %g", i, ans.Value, want)
		}
	}
	elapsed := time.Since(start)
	// Without hedging, every query landing on the slow primary costs
	// 300ms; round-robin sends half there, so 10 queries would need
	// >= 1.5s. Hedged, each costs ~hedge delay + a fast answer.
	if elapsed > 1200*time.Millisecond {
		t.Errorf("%d hedged queries took %v; hedging is not rescuing slow primaries", queries, elapsed)
	}
	if c.metrics.hedges.Load() == 0 {
		t.Error("hedge metric still zero")
	}
	if c.metrics.hedgeWins.Load() == 0 {
		t.Error("hedge-win metric still zero")
	}
}

// TestClusterRetryBudget: a pool that fails everything drains the
// retry budget and degrades to ~single attempts instead of
// multiplying load MaxAttempts-fold (no retry storm).
func TestClusterRetryBudget(t *testing.T) {
	fleet := newTestFleet(t, 1)
	c, ts := newTestCoordinator(t, fleet, Config{
		ProbeInterval:    time.Hour, // no probes: isolate the live-path budget
		FailureThreshold: 1 << 30,   // keep the breaker closed so attempts keep flowing
		RetryBudget:      0.05,
		HedgeDelay:       -1,
		RetryBackoff:     time.Microsecond,
	})
	fleet[0].set(mode500)

	const requests = 400
	for i := 0; i < requests; i++ {
		status, _, _ := queryPoint(t, ts.URL, 0, 15)
		if status != http.StatusBadGateway {
			t.Fatalf("request %d: status %d, want 502", i, status)
		}
	}
	proxied := c.metrics.proxied.Load()
	// Unbounded retries would send requests*MaxAttempts = 1200 attempts.
	// The budget allows burst (64) + 5% of live traffic (~20) retries.
	if max := uint64(requests + 64 + requests/20 + 20); proxied > max {
		t.Errorf("pool saw %d attempts for %d requests; retry budget is not bounding the storm (want <= %d)", proxied, requests, max)
	}
	if c.metrics.budgetExhausted.Load() == 0 {
		t.Error("budget-exhausted metric still zero")
	}
}

// TestClusterLifecycleRefused: release-mutating endpoints are not
// proxied — materializing through the pool would give every replica
// different noise.
func TestClusterLifecycleRefused(t *testing.T) {
	fleet := newTestFleet(t, 1)
	_, ts := newTestCoordinator(t, fleet, Config{})

	resp, err := http.Post(ts.URL+"/v1/releases", "application/json", strings.NewReader(fleetReleaseSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("POST /v1/releases: status %d, want 501", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/releases/main", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("DELETE: status %d, want 501", resp.StatusCode)
	}
}

// TestClusterDrain: draining flips readiness so load balancers stop
// sending, while metrics stay reachable.
func TestClusterDrain(t *testing.T) {
	fleet := newTestFleet(t, 1)
	c, ts := newTestCoordinator(t, fleet, Config{})
	if status := getJSON(t, ts.URL+"/readyz", nil); status != http.StatusOK {
		t.Fatalf("pre-drain readyz status %d", status)
	}
	c.StartDrain()
	var rz struct {
		Status string `json:"status"`
	}
	if status := getJSON(t, ts.URL+"/readyz", &rz); status != http.StatusServiceUnavailable || rz.Status != "draining" {
		t.Errorf("draining readyz = %d %q", status, rz.Status)
	}
	if status := getJSON(t, ts.URL+"/metrics", nil); status != http.StatusOK {
		t.Errorf("metrics during drain: status %d", status)
	}
}
