// Package cluster is the fault-tolerant multi-replica serving tier
// over the dpgraph HTTP daemon: a coordinator that proxies point,
// batch, and stream distance requests across a pool of replica daemons
// (each a `dpgraph serve` booted from the same sealed snapshots, so any
// replica can answer any query for a release it holds).
//
// The routing discipline, in order:
//
//   - Consistent hashing on the release name yields a per-release
//     replica preference order (a configurable replication-factor
//     prefix of it is the release's working set; requests rotate
//     round-robin inside the set and spill past it only when every
//     member is out).
//   - Active health probes hit every replica's /readyz each probe
//     interval, learning its ready-release set from the same response;
//     probe failures and live-request failures both feed a per-replica
//     circuit breaker (consecutive-failure threshold, half-open
//     re-admission via the next successful probe or a single trial
//     request after a cooldown).
//   - Every request carries a deadline (the coordinator default, or the
//     client's X-Request-Timeout if shorter) propagated through the
//     proxy transport's context; retries only spend time that remains.
//   - Failures retry on the next replica in preference order with
//     jittered exponential backoff, bounded per request by MaxAttempts
//     and globally by a retry budget (a fraction of live traffic), so
//     an outage degrades to single-attempt routing instead of a retry
//     storm.
//   - Point queries hedge: if the primary has not answered within a
//     p99-derived delay, a second identical request races it on another
//     replica and the first answer wins. Hedges spend retry budget.
//   - When every replica for a release is out, the coordinator answers
//     from a locally unsealed snapshot fallback if it has one, and
//     otherwise sheds with 503 + Retry-After.
//
// The downstream transport is injectable; ChaosTransport implements
// the `-chaos-*` fault-injection flags and doubles as the test harness
// for the kill/hang/slow convergence tests.
package cluster

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the coordinator. The zero value is usable with defaults
// filled in by New; Replicas may be empty when replicas register
// themselves over POST /v1/replicas.
type Config struct {
	// Replicas is the static seed list of replica base URLs
	// (scheme://host:port, no trailing slash required).
	Replicas []string
	// ProbeInterval is the active health-probe period; <= 0 takes
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe; <= 0 takes half the probe
	// interval (a hung replica must be detected within one cycle).
	ProbeTimeout time.Duration
	// RequestTimeout is the default end-to-end deadline for one proxied
	// client request, all retries and hedges included; <= 0 takes
	// DefaultRequestTimeout. Clients may shorten (never extend) it per
	// request with an X-Request-Timeout header holding a Go duration.
	RequestTimeout time.Duration
	// MaxAttempts bounds tries per request (first attempt included);
	// <= 0 takes DefaultMaxAttempts.
	MaxAttempts int
	// RetryBackoff is the base backoff before the second attempt,
	// doubling each retry with +-50% jitter; <= 0 takes
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// RetryBudget caps retries + hedges as a fraction of live requests
	// (plus a small burst so a cold coordinator can still retry);
	// <= 0 takes DefaultRetryBudget. It is the anti-retry-storm bound:
	// when the whole pool is failing, the budget drains and requests
	// degrade to single attempts instead of multiplying load.
	RetryBudget float64
	// HedgeDelay is how long a point query waits before racing a second
	// replica: 0 derives it from the observed p99 point latency
	// (re-sampled continuously, floored at DefaultHedgeFloor), negative
	// disables hedging.
	HedgeDelay time.Duration
	// FailureThreshold is the consecutive-failure count that opens a
	// replica's circuit breaker; <= 0 takes DefaultFailureThreshold.
	FailureThreshold int
	// ReplicationFactor is the size of each release's hash-selected
	// replica working set; <= 0 means every replica serves every
	// release.
	ReplicationFactor int
	// MaxBodyBytes bounds a buffered (retryable) request body; <= 0
	// takes DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// SnapshotDir, when set, is unsealed at New into a local fallback:
	// releases found there keep answering (marked X-Served-By:
	// local-fallback) when every replica for them is out.
	SnapshotDir string
	// VerifyKey, when set, requires every fallback snapshot to carry a
	// signature verifying against it.
	VerifyKey ed25519.PublicKey
	// Transport performs the proxied requests; nil means a dedicated
	// http.Transport with per-replica keep-alive pools. Wrap it in a
	// ChaosTransport to inject faults.
	Transport http.RoundTripper
	// Logf, when set, receives one line per routing event (evictions,
	// re-admissions, fallback serves); nil discards them.
	Logf func(format string, args ...any)
}

// Defaults for the zero Config.
const (
	DefaultProbeInterval    = 1 * time.Second
	DefaultRequestTimeout   = 10 * time.Second
	DefaultMaxAttempts      = 3
	DefaultRetryBackoff     = 2 * time.Millisecond
	DefaultRetryBudget      = 0.1
	DefaultFailureThreshold = 3
	DefaultMaxBodyBytes     = 32 << 20
	// DefaultHedgeFloor keeps an auto-derived hedge delay from firing a
	// second request for queries the primary answers almost instantly.
	DefaultHedgeFloor = 2 * time.Millisecond
)

// retryBudgetBurst is the token ceiling of the retry budget: enough
// for a cold coordinator to ride out a brief outage, small enough that
// a dead pool cannot accumulate a storm's worth of credit.
const retryBudgetBurst = 64.0

// Coordinator routes distance traffic across the replica pool. Safe
// for concurrent use; construct with New, then Start the health
// prober, and Stop it on shutdown.
type Coordinator struct {
	cfg    Config
	client *http.Client

	mu       sync.RWMutex
	replicas map[string]*replica
	ring     *ring

	fallback map[string]*fallbackRelease

	// rr rotates requests across a release's healthy working set.
	rr atomic.Uint64

	// retry budget: fixed-point millitokens so the hot path stays
	// atomic (1000 = one retry token).
	retryTokens atomic.Int64

	// point-latency sampling for the auto hedge delay.
	lat       latencySampler
	hedgeNS   atomic.Int64 // cached p99-derived hedge delay
	draining  atomic.Bool
	metrics   coordMetrics
	started   time.Time
	stopOnce  sync.Once
	stopc     chan struct{}
	proberWG  sync.WaitGroup
	jitterMu  sync.Mutex
	jitterRNG *rand.Rand
}

// coordMetrics counts coordinator-level routing traffic.
type coordMetrics struct {
	requests        atomic.Uint64
	proxied         atomic.Uint64 // downstream attempts sent
	retries         atomic.Uint64
	hedges          atomic.Uint64
	hedgeWins       atomic.Uint64
	budgetExhausted atomic.Uint64
	evictions       atomic.Uint64
	readmissions    atomic.Uint64
	fallbackServed  atomic.Uint64
	unavailable     atomic.Uint64
	deadlineExpired atomic.Uint64
}

// New builds a coordinator over the static replica list and loads the
// snapshot fallback if configured. Call Start to begin health probing.
func New(cfg Config) (*Coordinator, error) {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval / 2
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = DefaultRetryBudget
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	c := &Coordinator{
		cfg:       cfg,
		client:    &http.Client{Transport: transport},
		replicas:  make(map[string]*replica),
		fallback:  make(map[string]*fallbackRelease),
		started:   time.Now(),
		stopc:     make(chan struct{}),
		jitterRNG: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	c.retryTokens.Store(int64(retryBudgetBurst * 1000))
	for _, raw := range cfg.Replicas {
		if _, err := c.addReplica(raw); err != nil {
			return nil, err
		}
	}
	if cfg.SnapshotDir != "" {
		n, err := c.loadFallback(cfg.SnapshotDir)
		if err != nil {
			return nil, err
		}
		c.logf("cluster: loaded %d fallback release(s) from %s", n, cfg.SnapshotDir)
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// normalizeReplicaURL validates and canonicalizes one replica base URL.
func normalizeReplicaURL(raw string) (string, error) {
	raw = strings.TrimSuffix(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("bad replica url %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("bad replica url %q: want http:// or https://", raw)
	}
	if u.Host == "" || u.Path != "" || u.RawQuery != "" {
		return "", fmt.Errorf("bad replica url %q: want scheme://host:port with no path", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// addReplica registers a replica URL, rebuilding the hash ring. It is
// idempotent: re-registering an existing URL returns the live entry
// (keeping its health history) rather than resetting it.
func (c *Coordinator) addReplica(raw string) (*replica, error) {
	urlStr, err := normalizeReplicaURL(raw)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if rep, ok := c.replicas[urlStr]; ok {
		return rep, nil
	}
	rep := &replica{url: urlStr}
	c.replicas[urlStr] = rep
	urls := make([]string, 0, len(c.replicas))
	for u := range c.replicas {
		urls = append(urls, u)
	}
	c.ring = buildRing(urls)
	return rep, nil
}

// Start primes replica health with one synchronous probe round and
// launches the background prober.
func (c *Coordinator) Start() {
	c.probeAll()
	c.proberWG.Add(1)
	go func() {
		defer c.proberWG.Done()
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stopc:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Stop halts the prober and waits for it to exit.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stopc) })
	c.proberWG.Wait()
}

// StartDrain flips /readyz so load balancers stop sending; proxied
// requests already in flight finish normally.
func (c *Coordinator) StartDrain() { c.draining.Store(true) }

// snapshotReplicas returns the current pool under the read lock.
func (c *Coordinator) snapshotReplicas() []*replica {
	c.mu.RLock()
	out := make([]*replica, 0, len(c.replicas))
	for _, rep := range c.replicas {
		out = append(out, rep)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].url < out[j].url })
	return out
}

// probeAll probes every replica concurrently and returns when all
// probes resolve (each bounded by ProbeTimeout).
func (c *Coordinator) probeAll() {
	reps := c.snapshotReplicas()
	var wg sync.WaitGroup
	for _, rep := range reps {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			c.probeOne(rep)
		}(rep)
	}
	wg.Wait()
}

// probeOne sends one /readyz probe: a 200 refreshes the replica's
// release set and closes its breaker; anything else (timeout, refusal,
// 503 draining/materializing) counts toward opening it.
func (c *Coordinator) probeOne(rep *replica) {
	rep.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/readyz", nil)
	if err != nil {
		c.noteProbeFailure(rep, err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.noteProbeFailure(rep, err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		c.noteProbeFailure(rep, fmt.Errorf("readyz status %s", resp.Status))
		return
	}
	var rz struct {
		Releases []string `json:"releases"`
	}
	releases := map[string]bool{}
	if err := json.Unmarshal(body, &rz); err == nil {
		for _, name := range rz.Releases {
			releases[name] = true
		}
	}
	if rep.markSuccess(releases) {
		c.metrics.readmissions.Add(1)
		c.logf("cluster: replica %s re-admitted (readyz ok, %d release(s))", rep.url, len(releases))
	}
}

// probeFailureThreshold caps how many failed probes an unreachable
// replica survives: a probe is a deliberate health check, so two
// misses in a row are decisive — this is what bounds eviction of an
// idle (no live traffic) replica to two probe intervals.
const probeFailureThreshold = 2

func (c *Coordinator) noteProbeFailure(rep *replica, err error) {
	rep.probeFails.Add(1)
	threshold := c.cfg.FailureThreshold
	if threshold > probeFailureThreshold {
		threshold = probeFailureThreshold
	}
	if rep.markFailure(threshold) {
		c.metrics.evictions.Add(1)
		c.logf("cluster: replica %s evicted (probe: %v)", rep.url, err)
	}
}

// noteRequestFailure records a failed live request against the breaker.
func (c *Coordinator) noteRequestFailure(rep *replica, err error) {
	rep.failures.Add(1)
	if rep.markFailure(c.cfg.FailureThreshold) {
		c.metrics.evictions.Add(1)
		c.logf("cluster: replica %s evicted (request: %v)", rep.url, err)
	}
}

func (c *Coordinator) noteRequestSuccess(rep *replica) {
	if rep.markSuccess(nil) {
		c.metrics.readmissions.Add(1)
		c.logf("cluster: replica %s re-admitted (live request ok)", rep.url)
	}
}

// candidates assembles the release's replica preference order: the
// hash-selected working set first (healthy members, round-robin
// rotated so load spreads inside the set), then healthy spillover
// replicas outside the set, then — only when nothing is healthy — one
// evicted replica willing to run a half-open trial. Replicas whose
// probed release set excludes the release sort last among their tier.
func (c *Coordinator) candidates(release string) []*replica {
	c.mu.RLock()
	ring := c.ring
	c.mu.RUnlock()
	if ring == nil {
		return nil
	}
	order := ring.sequence(release)
	k := c.cfg.ReplicationFactor
	if k <= 0 || k > len(order) {
		k = len(order)
	}
	var set, spill, nonHolders []*replica
	for i, urlStr := range order {
		c.mu.RLock()
		rep := c.replicas[urlStr]
		c.mu.RUnlock()
		if rep == nil || !rep.healthy() {
			continue
		}
		holds, known := rep.holds(release)
		switch {
		case known && !holds:
			nonHolders = append(nonHolders, rep)
		case i < k:
			set = append(set, rep)
		default:
			spill = append(spill, rep)
		}
	}
	// Rotate inside the working set so a single hot release spreads
	// over its whole replica set instead of hammering the primary.
	if len(set) > 1 {
		off := int(c.rr.Add(1)) % len(set)
		set = append(set[off:], set[:off]...)
	}
	cands := append(set, spill...)
	cands = append(cands, nonHolders...)
	if len(cands) > 0 {
		return cands
	}
	// Nothing healthy: offer one half-open trial on an evicted replica
	// whose cooldown (one probe interval) has passed, so traffic itself
	// can re-admit the pool even if the prober is slow.
	for _, urlStr := range order {
		c.mu.RLock()
		rep := c.replicas[urlStr]
		c.mu.RUnlock()
		if rep != nil && rep.tryTrial(c.cfg.ProbeInterval) {
			return []*replica{rep}
		}
	}
	return nil
}

// requestDeadline resolves the end-to-end deadline for one client
// request: the coordinator default, shortened (never extended) by an
// X-Request-Timeout header carrying a Go duration.
func (c *Coordinator) requestDeadline(r *http.Request) time.Duration {
	d := c.cfg.RequestTimeout
	if h := r.Header.Get("X-Request-Timeout"); h != "" {
		if v, err := time.ParseDuration(h); err == nil && v > 0 && v < d {
			d = v
		}
	}
	return d
}

// takeRetryToken spends one retry-budget token; false means the budget
// is exhausted and the caller must not retry or hedge.
func (c *Coordinator) takeRetryToken() bool {
	if c.retryTokens.Add(-1000) >= 0 {
		return true
	}
	c.retryTokens.Add(1000) // put it back; stay clamped at the floor
	c.metrics.budgetExhausted.Add(1)
	return false
}

// earnRetryCredit accrues budget from live traffic: every request adds
// RetryBudget tokens, clamped at the burst ceiling.
func (c *Coordinator) earnRetryCredit() {
	credit := int64(c.cfg.RetryBudget * 1000)
	if v := c.retryTokens.Add(credit); v > int64(retryBudgetBurst*1000) {
		c.retryTokens.Add(int64(retryBudgetBurst*1000) - v)
	}
}

// backoffDelay returns the jittered exponential backoff before retry
// attempt n (1-based): base * 2^(n-1), +-50% jitter.
func (c *Coordinator) backoffDelay(n int) time.Duration {
	d := c.cfg.RetryBackoff << uint(n-1)
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	c.jitterMu.Lock()
	f := 0.5 + c.jitterRNG.Float64()
	c.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// hedgeDelay resolves the current hedge delay: the configured one, or
// the cached p99 of observed point latencies (recomputed every
// hedgeRecomputeEvery samples), floored at DefaultHedgeFloor.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay != 0 {
		return c.cfg.HedgeDelay
	}
	if ns := c.hedgeNS.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return DefaultHedgeFloor
}

const hedgeRecomputeEvery = 64

// observePointLatency feeds the hedge-delay estimator.
func (c *Coordinator) observePointLatency(d time.Duration) {
	n := c.lat.record(d)
	if n%hedgeRecomputeEvery == 0 {
		p99 := c.lat.p99()
		if p99 < DefaultHedgeFloor {
			p99 = DefaultHedgeFloor
		}
		c.hedgeNS.Store(int64(p99))
	}
}

// latencySampler is a small lock-free ring of recent point latencies
// for the p99 hedge-delay estimate.
type latencySampler struct {
	n    atomic.Uint64
	ring [512]atomic.Int64
}

func (l *latencySampler) record(d time.Duration) uint64 {
	i := l.n.Add(1) - 1
	l.ring[i%uint64(len(l.ring))].Store(int64(d))
	return i + 1
}

func (l *latencySampler) p99() time.Duration {
	n := l.n.Load()
	if n == 0 {
		return 0
	}
	if n > uint64(len(l.ring)) {
		n = uint64(len(l.ring))
	}
	buf := make([]int64, n)
	for i := range buf {
		buf[i] = l.ring[i].Load()
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return time.Duration(buf[int(0.99*float64(len(buf)-1))])
}

// ---------------------------------------------------------------------
// Proxy plumbing

// proxyResult is one buffered downstream answer.
type proxyResult struct {
	status int
	header http.Header
	body   []byte
	rep    *replica
	hedged bool
}

// retryableStatus reports whether a downstream status is a replica
// failure worth trying elsewhere (5xx) or a shed worth failing over
// (429) rather than a client error to pass through.
func retryableStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// breakerStatus reports whether the status should count against the
// replica's breaker: 5xx does, 429 is load shedding, not sickness.
func breakerStatus(status int) bool { return status >= 500 }

// sendOnce performs one downstream attempt against rep, buffering the
// response. The context carries the remaining request deadline; the
// remaining time also rides an X-Request-Deadline-Ms header so a
// replica (or a human reading chaos logs) can see the budget it got.
func (c *Coordinator) sendOnce(ctx context.Context, rep *replica, method, pathq, contentType string, body []byte) (proxyResult, error) {
	c.metrics.proxied.Add(1)
	rep.requests.Add(1)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.url+pathq, rd)
	if err != nil {
		return proxyResult{}, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set("X-Request-Deadline-Ms", strconv.FormatInt(time.Until(dl).Milliseconds(), 10))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		// A cancelled attempt (a losing hedge, or the client walking
		// away) is the coordinator's doing, not the replica's — it must
		// not feed the breaker. A deadline expiry is the replica's.
		if !errors.Is(err, context.Canceled) {
			c.noteRequestFailure(rep, err)
		}
		return proxyResult{}, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			c.noteRequestFailure(rep, err)
		}
		return proxyResult{}, err
	}
	pr := proxyResult{status: resp.StatusCode, header: resp.Header, body: respBody, rep: rep}
	if breakerStatus(resp.StatusCode) {
		c.noteRequestFailure(rep, fmt.Errorf("status %s", resp.Status))
	} else {
		c.noteRequestSuccess(rep)
	}
	return pr, nil
}

// errNoReplicas marks a request that found no routable replica at all.
var errNoReplicas = errors.New("no healthy replica")

// execute routes one buffered request with retries (and hedging for
// point queries): attempts walk the candidate order with jittered
// backoff, each bounded by the remaining deadline and the retry
// budget.
func (c *Coordinator) execute(ctx context.Context, release, method, pathq, contentType string, body []byte, hedge bool) (proxyResult, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return proxyResult{}, err
		}
		cands := c.candidates(release)
		if len(cands) == 0 {
			if lastErr == nil {
				lastErr = errNoReplicas
			}
			return proxyResult{}, lastErr
		}
		if attempt > 0 {
			// Paying for this retry: budget first, then backoff inside
			// the remaining deadline.
			if !c.takeRetryToken() {
				return proxyResult{}, lastErr
			}
			c.metrics.retries.Add(1)
			select {
			case <-time.After(c.backoffDelay(attempt)):
			case <-ctx.Done():
				return proxyResult{}, ctx.Err()
			}
			// Rotate past the replica that just failed.
			cands = c.candidates(release)
			if len(cands) == 0 {
				return proxyResult{}, lastErr
			}
		}
		var res proxyResult
		var err error
		if hedge && c.cfg.HedgeDelay >= 0 && len(cands) > 1 {
			res, err = c.attemptHedged(ctx, cands, method, pathq, contentType, body)
		} else {
			res, err = c.sendOnce(ctx, cands[0], method, pathq, contentType, body)
		}
		if err != nil {
			lastErr = err
			continue
		}
		if retryableStatus(res.status) {
			lastErr = fmt.Errorf("replica %s answered status %d", res.rep.url, res.status)
			continue
		}
		return res, nil
	}
	return proxyResult{}, lastErr
}

// attemptHedged races the primary candidate against one hedge fired
// after the hedge delay; the first non-failure answer wins and the
// loser's context is cancelled.
func (c *Coordinator) attemptHedged(ctx context.Context, cands []*replica, method, pathq, contentType string, body []byte) (proxyResult, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type out struct {
		res proxyResult
		err error
	}
	resc := make(chan out, 2)
	launch := func(rep *replica, hedged bool) {
		go func() {
			res, err := c.sendOnce(actx, rep, method, pathq, contentType, body)
			res.hedged = hedged
			resc <- out{res, err}
		}()
	}
	launch(cands[0], false)
	inFlight := 1
	hedgeFired := false
	timer := time.NewTimer(c.hedgeDelay())
	defer timer.Stop()
	var lastErr error
	for inFlight > 0 {
		select {
		case o := <-resc:
			inFlight--
			switch {
			case o.err == nil && !retryableStatus(o.res.status):
				if o.res.hedged {
					c.metrics.hedgeWins.Add(1)
				}
				return o.res, nil
			case o.err != nil:
				lastErr = o.err
			default:
				lastErr = fmt.Errorf("replica %s answered status %d", o.res.rep.url, o.res.status)
			}
			// The primary failed fast: fire the backup immediately, the
			// delay was only ever about not duplicating healthy work.
			if !hedgeFired && inFlight == 0 && c.takeRetryToken() {
				hedgeFired = true
				c.metrics.hedges.Add(1)
				launch(cands[1], true)
				inFlight++
			}
		case <-timer.C:
			if !hedgeFired && c.takeRetryToken() {
				hedgeFired = true
				c.metrics.hedges.Add(1)
				launch(cands[1], true)
				inFlight++
			}
		case <-ctx.Done():
			return proxyResult{}, ctx.Err()
		}
	}
	return proxyResult{}, lastErr
}
