package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/dpgraph"
)

// fallbackRelease is one locally unsealed snapshot the coordinator can
// answer from when every replica holding the release is out. It is the
// graceful-degradation tier: slower than the fleet (no index of
// replicas behind it, one process), but correct — a snapshot holds the
// exact released values, so fallback answers equal replica answers bit
// for bit.
type fallbackRelease struct {
	oracle dpgraph.DistanceOracle
	info   dpgraph.ReleaseInfo
	bound  float64
}

// loadFallback unseals every *.dpsnap artifact in dir into the
// fallback table, keyed by file basename like serve's RestoreDir, and
// verifying signatures when the coordinator holds a verify key.
func (c *Coordinator) loadFallback(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("reading fallback snapshot dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".dpsnap") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var opts []dpgraph.UnsealOption
	if c.cfg.VerifyKey != nil {
		opts = append(opts, dpgraph.WithVerifyKey(c.cfg.VerifyKey))
	}
	loaded := 0
	for _, fname := range names {
		f, err := os.Open(filepath.Join(dir, fname))
		if err != nil {
			return loaded, fmt.Errorf("fallback snapshot %s: %w", fname, err)
		}
		sealed, err := dpgraph.Unseal(f, opts...)
		f.Close()
		if err != nil {
			return loaded, fmt.Errorf("fallback snapshot %s: %w", fname, err)
		}
		name := strings.TrimSuffix(fname, ".dpsnap")
		c.fallback[name] = &fallbackRelease{
			oracle: sealed.Oracle(),
			info:   sealed.Info(),
			bound:  sealed.Bound(dpgraph.DefaultGamma),
		}
		loaded++
	}
	return loaded, nil
}

// fallbackFor returns the local fallback for a release, if loaded.
func (c *Coordinator) fallbackFor(release string) (*fallbackRelease, bool) {
	fb, ok := c.fallback[release]
	return fb, ok
}
