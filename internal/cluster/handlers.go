package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/dpgraph"
	"repro/internal/serve"
)

// Handler returns the coordinator's HTTP routing table. Query traffic
// mirrors the replica API (a client cannot tell a coordinator from a
// single daemon), plus the pool-management endpoints:
//
//	POST   /v1/replicas                    register a replica {"url": "http://host:port"}
//	GET    /v1/replicas                    replica pool with breaker states and counters
//	GET    /livez                          coordinator process liveness
//	GET    /readyz                         >= 1 routable replica (or a local fallback)
//	GET    /metrics                        routing counters (retries, hedges, evictions, ...)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /livez", c.handleLivez)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /healthz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/replicas", c.handleReplicaList)
	mux.HandleFunc("POST /v1/replicas", c.handleReplicaRegister)
	mux.HandleFunc("GET /v1/releases", c.handleReleaseList)
	mux.HandleFunc("POST /v1/releases", c.handleUnroutable)
	mux.HandleFunc("DELETE /v1/releases/{name}", c.handleUnroutable)
	mux.HandleFunc("POST /v1/releases/{name}", c.handleUnroutable) // {name}:import
	mux.HandleFunc("GET /v1/releases/{name}/snapshot", c.handleSnapshotProxy)
	mux.HandleFunc("GET /v1/releases/{name}/distance", c.handlePoint)
	mux.HandleFunc("POST /v1/releases/{name}/distance", c.handlePoint)
	mux.HandleFunc("POST /v1/releases/{name}/distances", c.handleBatch)
	mux.HandleFunc("POST /v1/releases/{name}/distances:stream", c.handleStreamProxy)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})
	return mux
}

type errorEnvelope struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

func (c *Coordinator) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "alive"})
}

// handleReadyz: the coordinator is ready when it can route somewhere —
// at least one replica with a closed breaker, or a local fallback.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	reps := c.snapshotReplicas()
	for _, rep := range reps {
		if rep.healthy() {
			healthy++
		}
	}
	resp := struct {
		Status    string `json:"status"`
		Replicas  int    `json:"replicas"`
		Healthy   int    `json:"healthy"`
		Fallbacks int    `json:"fallback_releases"`
	}{Status: "ready", Replicas: len(reps), Healthy: healthy, Fallbacks: len(c.fallback)}
	status := http.StatusOK
	switch {
	case c.draining.Load():
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	case healthy == 0 && len(c.fallback) == 0:
		resp.Status = "no routable replicas"
		status = http.StatusServiceUnavailable
	}
	if status != http.StatusOK {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := struct {
		UptimeSeconds        float64                  `json:"uptime_seconds"`
		Requests             uint64                   `json:"requests"`
		Proxied              uint64                   `json:"proxied_attempts"`
		Retries              uint64                   `json:"retries"`
		Hedges               uint64                   `json:"hedges"`
		HedgeWins            uint64                   `json:"hedge_wins"`
		RetryBudgetExhausted uint64                   `json:"retry_budget_exhausted"`
		Evictions            uint64                   `json:"evictions"`
		Readmissions         uint64                   `json:"readmissions"`
		FallbackServed       uint64                   `json:"fallback_served"`
		Unavailable503       uint64                   `json:"unavailable_503"`
		DeadlineExpired      uint64                   `json:"deadline_expired"`
		HedgeDelayMS         float64                  `json:"hedge_delay_ms"`
		Replicas             map[string]replicaStatus `json:"replicas"`
	}{
		UptimeSeconds:        time.Since(c.started).Seconds(),
		Requests:             c.metrics.requests.Load(),
		Proxied:              c.metrics.proxied.Load(),
		Retries:              c.metrics.retries.Load(),
		Hedges:               c.metrics.hedges.Load(),
		HedgeWins:            c.metrics.hedgeWins.Load(),
		RetryBudgetExhausted: c.metrics.budgetExhausted.Load(),
		Evictions:            c.metrics.evictions.Load(),
		Readmissions:         c.metrics.readmissions.Load(),
		FallbackServed:       c.metrics.fallbackServed.Load(),
		Unavailable503:       c.metrics.unavailable.Load(),
		DeadlineExpired:      c.metrics.deadlineExpired.Load(),
		HedgeDelayMS:         float64(c.hedgeDelay()) / float64(time.Millisecond),
		Replicas:             map[string]replicaStatus{},
	}
	for _, rep := range c.snapshotReplicas() {
		out.Replicas[rep.url] = rep.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReplicaRegister adds a replica to the pool and probes it
// synchronously so the response already reflects its health.
func (c *Coordinator) handleReplicaRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad registration body: %v", err)
		return
	}
	rep, err := c.addReplica(req.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.probeOne(rep)
	c.logf("cluster: replica %s registered (%s)", rep.url, rep.status().State)
	writeJSON(w, http.StatusCreated, rep.status())
}

func (c *Coordinator) handleReplicaList(w http.ResponseWriter, r *http.Request) {
	reps := c.snapshotReplicas()
	out := struct {
		Replicas []replicaStatus `json:"replicas"`
	}{Replicas: make([]replicaStatus, 0, len(reps))}
	for _, rep := range reps {
		out.Replicas = append(out.Replicas, rep.status())
	}
	writeJSON(w, http.StatusOK, out)
}

// handleUnroutable refuses release-mutating endpoints: a coordinator
// that materialized a release on one replica would leave the pool
// serving different noise per replica (each materialization draws
// fresh noise), which breaks the any-replica-can-answer contract.
// Releases reach a fleet as sealed snapshots instead.
func (c *Coordinator) handleUnroutable(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotImplemented,
		"the coordinator does not proxy release lifecycle operations: materializing through the pool would give every replica different noise; distribute sealed snapshots to the replicas' -snapshot-dir (or POST :import to each) instead")
}

// proxyHeaders copies the downstream answer headers worth forwarding.
func proxyHeaders(w http.ResponseWriter, res proxyResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if etag := res.header.Get("ETag"); etag != "" {
		w.Header().Set("ETag", etag)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Served-By", res.rep.url)
	if res.hedged {
		w.Header().Set("X-Hedged", "1")
	}
}

// handlePoint proxies one point query with retries and hedging.
func (c *Coordinator) handlePoint(w http.ResponseWriter, r *http.Request) {
	c.metrics.requests.Add(1)
	c.earnRetryCredit()
	release := r.PathValue("name")
	body, contentType, ok := c.bufferBody(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.requestDeadline(r))
	defer cancel()
	start := time.Now()
	res, err := c.execute(ctx, release, r.Method, requestPathQuery(r), contentType, body, true)
	if err != nil {
		c.answerFallbackOrError(w, r, release, err, body)
		return
	}
	c.observePointLatency(time.Since(start))
	proxyHeaders(w, res)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // the response is already committed
}

// handleBatch proxies one batch query with retries (no hedging: batch
// answers are big enough that duplicating them is rarely worth it).
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	c.metrics.requests.Add(1)
	c.earnRetryCredit()
	release := r.PathValue("name")
	body, contentType, ok := c.bufferBody(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.requestDeadline(r))
	defer cancel()
	res, err := c.execute(ctx, release, r.Method, requestPathQuery(r), contentType, body, false)
	if err != nil {
		c.answerFallbackOrError(w, r, release, err, body)
		return
	}
	proxyHeaders(w, res)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // the response is already committed
}

// handleReleaseList proxies the release listing to the first replica
// that answers; bodies are tiny so failover just retries the GET.
func (c *Coordinator) handleReleaseList(w http.ResponseWriter, r *http.Request) {
	c.metrics.requests.Add(1)
	c.earnRetryCredit()
	ctx, cancel := context.WithTimeout(r.Context(), c.requestDeadline(r))
	defer cancel()
	res, err := c.execute(ctx, "", http.MethodGet, "/v1/releases", "", nil, false)
	if err != nil {
		c.writeRouteError(w, err)
		return
	}
	proxyHeaders(w, res)
	w.WriteHeader(res.status)
	w.Write(res.body) //nolint:errcheck // the response is already committed
}

// handleSnapshotProxy forwards a snapshot download, streaming the
// artifact through instead of buffering it (artifacts reach hundreds
// of MiB); failover happens only before the first response byte.
func (c *Coordinator) handleSnapshotProxy(w http.ResponseWriter, r *http.Request) {
	c.metrics.requests.Add(1)
	c.earnRetryCredit()
	release := r.PathValue("name")
	ctx, cancel := context.WithTimeout(r.Context(), c.requestDeadline(r))
	defer cancel()
	cands := c.candidates(release)
	if len(cands) == 0 {
		c.writeRouteError(w, errNoReplicas)
		return
	}
	var lastErr error
	for _, rep := range cands {
		c.metrics.proxied.Add(1)
		rep.requests.Add(1)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+requestPathQuery(r), nil)
		if err != nil {
			c.writeRouteError(w, err)
			return
		}
		if inm := r.Header.Get("If-None-Match"); inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			c.noteRequestFailure(rep, err)
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
			resp.Body.Close()
			if breakerStatus(resp.StatusCode) {
				c.noteRequestFailure(rep, fmt.Errorf("status %s", resp.Status))
			}
			lastErr = fmt.Errorf("replica %s answered status %d", rep.url, resp.StatusCode)
			continue
		}
		c.noteRequestSuccess(rep)
		for _, h := range []string{"Content-Type", "Content-Disposition", "ETag"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set("X-Served-By", rep.url)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body) //nolint:errcheck // the response is already committed
		resp.Body.Close()
		return
	}
	c.writeRouteError(w, lastErr)
}

// handleStreamProxy forwards the pipelined NDJSON endpoint to one
// replica. The request body streams through unbuffered, so there is no
// retry once routing picked a replica: a mid-stream failure surfaces
// to the client, which re-opens the stream (and routing will have
// evicted the failed replica by then).
func (c *Coordinator) handleStreamProxy(w http.ResponseWriter, r *http.Request) {
	c.metrics.requests.Add(1)
	c.earnRetryCredit()
	release := r.PathValue("name")
	cands := c.candidates(release)
	if len(cands) == 0 {
		c.writeRouteError(w, errNoReplicas)
		return
	}
	rep := cands[0]
	c.metrics.proxied.Add(1)
	rep.requests.Add(1)
	// Streams run without the point/batch deadline: they live as long
	// as the client keeps pouring queries. The client's own context
	// still cancels the proxy leg.
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, rep.url+requestPathQuery(r), r.Body)
	if err != nil {
		c.writeRouteError(w, err)
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	resp, err := c.client.Do(req)
	if err != nil {
		c.noteRequestFailure(rep, err)
		c.writeRouteError(w, err)
		return
	}
	defer resp.Body.Close()
	if breakerStatus(resp.StatusCode) {
		c.noteRequestFailure(rep, fmt.Errorf("status %s", resp.Status))
	} else {
		c.noteRequestSuccess(rep)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Served-By", rep.url)
	// Full duplex for the same reason the replica needs it: the client
	// is still writing queries while answers flow back.
	http.NewResponseController(w).EnableFullDuplex() //nolint:errcheck
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// bufferBody reads a request body fully (bounded) so attempts can be
// retried and hedged; GET requests pass through with a nil body.
func (c *Coordinator) bufferBody(w http.ResponseWriter, r *http.Request) (body []byte, contentType string, ok bool) {
	if r.Body == nil || r.Method == http.MethodGet {
		return nil, "", true
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		}
		return nil, "", false
	}
	return data, r.Header.Get("Content-Type"), true
}

// requestPathQuery rebuilds the downstream path + raw query.
func requestPathQuery(r *http.Request) string {
	if r.URL.RawQuery != "" {
		return r.URL.Path + "?" + r.URL.RawQuery
	}
	return r.URL.Path
}

// answerFallbackOrError is the graceful-degradation tail of a failed
// route: answer from the local snapshot fallback when one holds the
// release, otherwise map the routing failure onto a client status.
func (c *Coordinator) answerFallbackOrError(w http.ResponseWriter, r *http.Request, release string, routeErr error, body []byte) {
	if fb, ok := c.fallbackFor(release); ok {
		if c.serveFallback(w, r, release, fb, body) {
			c.metrics.fallbackServed.Add(1)
			return
		}
		return // serveFallback wrote its own error
	}
	c.writeRouteError(w, routeErr)
}

// writeRouteError maps a routing failure onto a status: 504 when the
// request deadline expired, 503 + Retry-After when no replica was
// routable, 502 for pool-wide failures.
func (c *Coordinator) writeRouteError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		c.metrics.deadlineExpired.Add(1)
		writeError(w, http.StatusGatewayTimeout, "request deadline expired while routing: %v", err)
	case errors.Is(err, errNoReplicas):
		c.metrics.unavailable.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(c.cfg.ProbeInterval.Seconds()))+1))
		writeError(w, http.StatusServiceUnavailable, "no healthy replica for this request; pool recovery is probe-driven, retry shortly")
	default:
		c.metrics.unavailable.Add(1)
		writeError(w, http.StatusBadGateway, "all replica attempts failed: %v", err)
	}
}

// serveFallback answers a point or batch distance query from the local
// snapshot oracle, in the same wire shapes the replicas use. Reports
// whether a (possibly error) response was written as a served answer.
func (c *Coordinator) serveFallback(w http.ResponseWriter, r *http.Request, release string, fb *fallbackRelease, body []byte) bool {
	w.Header().Set("X-Served-By", "local-fallback")
	switch {
	case strings.HasSuffix(r.URL.Path, "/distance"):
		s, t, err := fallbackPointPair(r, body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return true
		}
		v, err := fb.oracle.Distance(s, t)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return true
		}
		writeJSON(w, http.StatusOK, serve.PairAnswer{S: s, T: t, Value: v})
		return true
	case strings.HasSuffix(r.URL.Path, "/distances"):
		pairs, err := serve.ParsePairs(body)
		if err == nil && len(pairs) == 0 {
			err = serve.ErrNoPairs
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return true
		}
		vals, err := fb.oracle.Distances(pairs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return true
		}
		results := make([]serve.PairAnswer, len(pairs))
		for i, p := range pairs {
			results[i] = serve.PairAnswer{S: p.S, T: p.T, Value: vals[i]}
		}
		writeJSON(w, http.StatusOK, struct {
			Mechanism string             `json:"mechanism"`
			Count     int                `json:"count"`
			Bound     *float64           `json:"bound"`
			Gamma     float64            `json:"gamma"`
			Receipt   dpgraph.Receipt    `json:"receipt"`
			Results   []serve.PairAnswer `json:"results"`
		}{
			Mechanism: fb.info.Mechanism,
			Count:     len(pairs),
			Bound:     serve.FiniteOrNil(fb.bound),
			Gamma:     dpgraph.DefaultGamma,
			Receipt:   fb.info.Receipt,
			Results:   results,
		})
		return true
	default:
		return false
	}
}

// fallbackPointPair extracts the s-t pair of a point query from the
// URL (GET) or the buffered body (POST).
func fallbackPointPair(r *http.Request, body []byte) (s, t int, err error) {
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		s, err1 := strconv.Atoi(q.Get("s"))
		t, err2 := strconv.Atoi(q.Get("t"))
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("want integer query parameters s and t, got s=%q t=%q", q.Get("s"), q.Get("t"))
		}
		return s, t, nil
	}
	var p struct {
		S *int `json:"s"`
		T *int `json:"t"`
	}
	if err := json.Unmarshal(body, &p); err != nil {
		return 0, 0, fmt.Errorf("bad pair body: %w", err)
	}
	if p.S == nil || p.T == nil {
		return 0, 0, fmt.Errorf(`bad pair body: want both "s" and "t"`)
	}
	return *p.S, *p.T, nil
}
