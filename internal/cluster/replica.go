package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// replicaState is the circuit-breaker position for one replica.
type replicaState int32

const (
	// stateHealthy: the breaker is closed; the replica takes traffic.
	stateHealthy replicaState = iota
	// stateEvicted: the breaker is open after consecutive failures; the
	// replica takes no live traffic and only health probes (or, with no
	// healthy alternative, a single half-open trial request) can
	// re-admit it.
	stateEvicted
	// stateTrial: half-open; exactly one live request is in flight as a
	// trial. Success closes the breaker, failure re-opens it.
	stateTrial
)

func (s replicaState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateEvicted:
		return "evicted"
	case stateTrial:
		return "trial"
	default:
		return "unknown"
	}
}

// replica is one pool member: its base URL, breaker state, the release
// set learned from its last successful /readyz probe, and traffic
// counters. All mutable state sits behind mu; counters that feed
// /metrics are atomics so readers never contend with the hot path.
type replica struct {
	url string

	mu sync.Mutex
	// state is the breaker position; see replicaState.
	state replicaState
	// consecFails counts consecutive failures (live requests and probes
	// both); reaching the coordinator's threshold opens the breaker.
	consecFails int
	// evictedAt stamps the last transition to stateEvicted, driving the
	// half-open cooldown.
	evictedAt time.Time
	// releases is the replica's ready-release set from its last
	// successful readiness probe; nil means not yet probed (assume it
	// can serve anything rather than refusing to route).
	releases map[string]bool

	requests   atomic.Uint64 // live requests attempted against this replica
	failures   atomic.Uint64 // live requests that failed (transport or 5xx)
	probes     atomic.Uint64 // readiness probes sent
	probeFails atomic.Uint64 // readiness probes failed
}

// healthy reports whether the breaker is closed.
func (rep *replica) healthy() bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.state == stateHealthy
}

// holds reports whether the replica's last probe listed the release:
// yes, no, or unknown (never probed successfully yet).
func (rep *replica) holds(release string) (ok, known bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.releases == nil {
		return true, false
	}
	return rep.releases[release], true
}

// markSuccess records a successful live request or probe, closing the
// breaker if it was open. Returns true when this call re-admitted a
// previously evicted replica.
func (rep *replica) markSuccess(releases map[string]bool) (readmitted bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFails = 0
	if releases != nil {
		rep.releases = releases
	}
	if rep.state != stateHealthy {
		rep.state = stateHealthy
		return true
	}
	return false
}

// markFailure records a failed live request or probe; once threshold
// consecutive failures accumulate the breaker opens. Returns true when
// this call evicted the replica.
func (rep *replica) markFailure(threshold int) (evicted bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFails++
	if rep.state == stateTrial {
		// The half-open trial failed: straight back to evicted with a
		// fresh cooldown.
		rep.state = stateEvicted
		rep.evictedAt = time.Now()
		return false
	}
	if rep.state == stateHealthy && rep.consecFails >= threshold {
		rep.state = stateEvicted
		rep.evictedAt = time.Now()
		return true
	}
	return false
}

// tryTrial claims the single half-open trial slot of an evicted replica
// whose cooldown has passed. The caller must report the trial's outcome
// through markSuccess or markFailure.
func (rep *replica) tryTrial(cooldown time.Duration) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.state != stateEvicted || time.Since(rep.evictedAt) < cooldown {
		return false
	}
	rep.state = stateTrial
	return true
}

// replicaStatus is the JSON shape of one replica in GET /v1/replicas.
type replicaStatus struct {
	URL                 string   `json:"url"`
	State               string   `json:"state"`
	ConsecutiveFailures int      `json:"consecutive_failures,omitempty"`
	Releases            []string `json:"releases,omitempty"`
	Requests            uint64   `json:"requests"`
	Failures            uint64   `json:"failures"`
	Probes              uint64   `json:"probes"`
	ProbeFailures       uint64   `json:"probe_failures"`
}

func (rep *replica) status() replicaStatus {
	rep.mu.Lock()
	st := replicaStatus{
		URL:                 rep.url,
		State:               rep.state.String(),
		ConsecutiveFailures: rep.consecFails,
	}
	for name := range rep.releases {
		st.Releases = append(st.Releases, name)
	}
	rep.mu.Unlock()
	sort.Strings(st.Releases)
	st.Requests = rep.requests.Load()
	st.Failures = rep.failures.Load()
	st.Probes = rep.probes.Load()
	st.ProbeFailures = rep.probeFails.Load()
	return st
}
