package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over replica URLs: each replica owns
// ringVnodes pseudo-random points, and a release name hashes to a
// position whose clockwise walk yields the release's replica preference
// order. Adding or removing one replica remaps only the keys that
// replica's points covered, so a membership change never reshuffles the
// whole fleet's cache working sets. The ring is immutable; membership
// changes build a new one.
type ring struct {
	hashes []uint64
	owners []string // parallel to hashes
	urls   []string // distinct members, sorted
}

// ringVnodes is the virtual-node count per replica: enough that a
// handful of replicas split the keyspace evenly, cheap enough that
// rebuilds on registration are instant.
const ringVnodes = 64

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return h.Sum64()
}

// buildRing constructs the ring for the given replica URLs. An empty
// membership yields an empty ring whose sequence is always empty.
func buildRing(urls []string) *ring {
	r := &ring{
		hashes: make([]uint64, 0, len(urls)*ringVnodes),
		owners: make([]string, 0, len(urls)*ringVnodes),
		urls:   append([]string(nil), urls...),
	}
	sort.Strings(r.urls)
	type pt struct {
		h uint64
		u string
	}
	pts := make([]pt, 0, len(r.urls)*ringVnodes)
	for _, u := range r.urls {
		for i := 0; i < ringVnodes; i++ {
			pts = append(pts, pt{hash64(u + "#" + strconv.Itoa(i)), u})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].h < pts[j].h })
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.u)
	}
	return r
}

// sequence returns every member URL in the key's clockwise ring order:
// the first entry is the key's primary owner, the rest the failover
// preference order. Callers slice the prefix for a replication set.
func (r *ring) sequence(key string) []string {
	if len(r.urls) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.urls))
	seen := make(map[string]bool, len(r.urls))
	h := hash64(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for i := 0; i < len(r.hashes) && len(out) < len(r.urls); i++ {
		u := r.owners[(start+i)%len(r.hashes)]
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}
