package cluster

import (
	"fmt"
	"testing"
)

// TestRingSequence: every member appears exactly once, the order is
// deterministic, and different keys spread their primaries around.
func TestRingSequence(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := buildRing(urls)

	seq := r.sequence("main")
	if len(seq) != len(urls) {
		t.Fatalf("sequence has %d members, want %d: %v", len(seq), len(urls), seq)
	}
	seen := map[string]bool{}
	for _, u := range seq {
		if seen[u] {
			t.Fatalf("sequence repeats %s: %v", u, seq)
		}
		seen[u] = true
	}
	for i, u := range r.sequence("main") {
		if seq[i] != u {
			t.Fatalf("sequence not deterministic: %v vs %v", seq, r.sequence("main"))
		}
	}

	// Primary ownership should spread over the members: with 64 vnodes
	// each, no replica should own a wildly lopsided share of keys.
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.sequence(fmt.Sprintf("release-%d", i))[0]]++
	}
	for u, n := range counts {
		if n < keys/len(urls)/4 || n > keys/len(urls)*4 {
			t.Errorf("replica %s owns %d of %d keys (grossly unbalanced): %v", u, n, keys, counts)
		}
	}
}

// TestRingConsistency: adding one replica must not reshuffle ownership
// wholesale — only the share of keys the newcomer claims may move.
func TestRingConsistency(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	before := buildRing(urls)
	after := buildRing(append(urls, "http://d:1"))

	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("release-%d", i)
		b, a := before.sequence(k)[0], after.sequence(k)[0]
		if b != a {
			if a != "http://d:1" {
				t.Fatalf("key %s moved %s -> %s, not to the new replica", k, b, a)
			}
			moved++
		}
	}
	// The newcomer should claim roughly 1/4 of the keyspace; far more
	// means the hash is not consistent.
	if moved > keys/2 {
		t.Errorf("%d of %d keys moved on one join; consistent hashing should move ~%d", moved, keys, keys/4)
	}
	if moved == 0 {
		t.Error("no keys moved to the new replica at all")
	}
}

// TestRingEmpty: an empty ring routes nowhere without panicking.
func TestRingEmpty(t *testing.T) {
	if seq := buildRing(nil).sequence("main"); seq != nil {
		t.Errorf("empty ring sequence = %v, want nil", seq)
	}
}
