package core

import (
	"math/rand"
	"testing"

	"repro/internal/dp"
	"repro/internal/graph"
)

// TestAccountantEnforcedAcrossMechanisms drives several mechanisms
// against one shared budget and verifies enforcement and logging.
func TestAccountantEnforcedAcrossMechanisms(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	acct := dp.NewAccountant(dp.PrivacyParams{Epsilon: 2.5, Delta: 1e-6})
	g := graph.Grid(5)
	w := graph.UniformRandomWeights(g, 1, 3, rng)
	opts := Options{Epsilon: 1, Noise: dp.WrapRand(rng), Accountant: acct}

	if _, err := PrivateDistance(g, w, 0, 24, opts); err != nil {
		t.Fatalf("first query rejected: %v", err)
	}
	if _, err := PrivateShortestPaths(g, w, opts); err != nil {
		t.Fatalf("second query rejected: %v", err)
	}
	if got := acct.Spent().Epsilon; got != 2 {
		t.Fatalf("spent %g, want 2", got)
	}
	// Third eps-1 release fits exactly within 2.5? No: 3 > 2.5 — reject.
	if _, err := PrivateMST(g, w, opts); err == nil {
		t.Fatal("over-budget release accepted")
	}
	// The failed release must not have consumed budget.
	if got := acct.Spent().Epsilon; got != 2 {
		t.Fatalf("failed release changed spend to %g", got)
	}
	// A smaller release still fits.
	small := opts
	small.Epsilon = 0.5
	if _, err := PrivateMSTCost(g, w, small); err != nil {
		t.Fatalf("in-budget release rejected: %v", err)
	}
	log := acct.Log()
	if len(log) != 3 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[0].Label != "PrivateDistance" || log[1].Label != "PrivateShortestPaths" || log[2].Label != "PrivateMSTCost" {
		t.Errorf("labels = %v", log)
	}
}

// TestAccountantChargedOncePerRelease checks compositions of mechanisms
// charge once: TreeAllPairs wraps TreeSingleSource, BoundedWeightAPSD
// wraps CoveringAPSD.
func TestAccountantChargedOncePerRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	acct := dp.NewAccountant(dp.PrivacyParams{Epsilon: 10, Delta: 1e-5})
	g := graph.BalancedBinaryTree(63)
	w := graph.UniformRandomWeights(g, 1, 2, rng)
	if _, err := TreeAllPairs(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng), Accountant: acct}); err != nil {
		t.Fatal(err)
	}
	if got := acct.Spent().Epsilon; got != 1 {
		t.Fatalf("TreeAllPairs spent %g, want 1", got)
	}
	grid := graph.Grid(8)
	gw := graph.UniformRandomWeights(grid, 0, 1, rng)
	if _, err := BoundedWeightAPSD(grid, gw, 1, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng), Accountant: acct}); err != nil {
		t.Fatal(err)
	}
	spent := acct.Spent()
	if spent.Epsilon != 2 || spent.Delta != 1e-6 {
		t.Fatalf("after both: %v", spent)
	}
}

// TestAccountantBlocksBeforeRelease verifies rejection happens before any
// output exists (ReleaseGraph returns nil).
func TestAccountantBlocksBeforeRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	acct := dp.NewAccountant(dp.PrivacyParams{Epsilon: 0.5})
	g := graph.Path(5)
	w := graph.UniformWeights(g, 1)
	rel, err := ReleaseGraph(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng), Accountant: acct})
	if err == nil || rel != nil {
		t.Fatal("over-budget ReleaseGraph returned output")
	}
}

// TestNoAccountantNoCharge confirms mechanisms work with a nil accountant
// (the default).
func TestNoAccountantNoCharge(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	g := graph.Path(5)
	if _, err := PathHierarchy(graph.UniformWeights(g, 1), 2, Options{Epsilon: 1, Noise: dp.WrapRand(rng)}); err != nil {
		t.Fatal(err)
	}
}

func TestAccountantMechanismsCoverage(t *testing.T) {
	// Every mechanism must charge: run each under a tight budget equal to
	// its cost, then confirm a repeat is rejected.
	rng := rand.New(rand.NewSource(125))
	g := graph.Grid(4)
	w := graph.UniformRandomWeights(g, 0.1, 1, rng)
	tree := graph.BalancedBinaryTree(15)
	tw := graph.UniformRandomWeights(tree, 0.1, 1, rng)
	bip := graph.CompleteBipartite(4, 4)
	bw := graph.UniformRandomWeights(bip, 0, 1, rng)

	runs := []struct {
		name  string
		delta float64
		run   func(o Options) error
	}{
		{"PrivateDistance", 0, func(o Options) error { _, err := PrivateDistance(g, w, 0, 15, o); return err }},
		{"APSDComposition", 0, func(o Options) error { _, err := APSDComposition(g, w, o); return err }},
		{"ReleaseGraph", 0, func(o Options) error { _, err := ReleaseGraph(g, w, o); return err }},
		{"TreeSingleSource", 0, func(o Options) error { _, err := TreeSingleSource(tree, tw, 0, o); return err }},
		{"PathHierarchy", 0, func(o Options) error { _, err := PathHierarchy(tw[:14], 2, o); return err }},
		{"BoundedWeightAPSD", 1e-6, func(o Options) error { _, err := BoundedWeightAPSD(g, w, 1, o); return err }},
		{"PrivateShortestPaths", 0, func(o Options) error { _, err := PrivateShortestPaths(g, w, o); return err }},
		{"PrivateMST", 0, func(o Options) error { _, err := PrivateMST(g, w, o); return err }},
		{"PrivateMatching", 0, func(o Options) error { _, err := PrivateMatching(bip, bw, o); return err }},
		{"SingleSourceComposition", 0, func(o Options) error { _, err := SingleSourceComposition(g, w, 0, o); return err }},
		{"PrivateMSTCost", 0, func(o Options) error { _, err := PrivateMSTCost(g, w, o); return err }},
	}
	for _, r := range runs {
		acct := dp.NewAccountant(dp.PrivacyParams{Epsilon: 1, Delta: r.delta})
		o := Options{Epsilon: 1, Delta: r.delta, Noise: dp.WrapRand(rng), Accountant: acct}
		if err := r.run(o); err != nil {
			t.Errorf("%s: first run rejected: %v", r.name, err)
			continue
		}
		if err := r.run(o); err == nil {
			t.Errorf("%s: second run did not exhaust budget (mechanism not charging?)", r.name)
		}
	}
}
