package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"

	"repro/internal/graph"
)

func TestPrivateMSTReleasesSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 10; trial++ {
		g := graph.ConnectedErdosRenyi(40, 0.15, rng)
		w := graph.UniformRandomWeights(g, -5, 10, rng)
		rel, err := PrivateMST(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsSpanningTree(g, rel.Tree) {
			t.Fatal("released edges are not a spanning tree")
		}
	}
}

func TestPrivateMSTExactAtHugeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	g := graph.Grid(6)
	w := graph.UniformRandomWeights(g, 0, 10, rng)
	rel, err := PrivateMST(g, w, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := graph.MST(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel.TrueWeight(w)-opt) > 1e-3 {
		t.Errorf("huge-eps MST weight %g vs optimum %g", rel.TrueWeight(w), opt)
	}
}

func TestPrivateMSTErrorWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	violations := 0
	for trial := 0; trial < 20; trial++ {
		g := graph.ConnectedErdosRenyi(60, 0.1, rng)
		w := graph.UniformRandomWeights(g, 0, 10, rng)
		rel, err := PrivateMST(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := graph.MST(g, w)
		if err != nil {
			t.Fatal(err)
		}
		excess := rel.TrueWeight(w) - opt
		if excess < 0 {
			t.Fatal("released tree beats the optimum")
		}
		if excess > rel.ErrorBound(g, 0.05) {
			violations++
		}
	}
	if violations > 1 {
		t.Errorf("%d of 20 trials exceed the Theorem B.3 bound", violations)
	}
}

func TestPrivateMSTValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := PrivateMST(g, []float64{1}, Options{Epsilon: 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PrivateMST(g, []float64{1, 1}, Options{}); err == nil {
		t.Error("bad options accepted")
	}
	disc := graph.New(3)
	disc.AddEdge(0, 1)
	if _, err := PrivateMST(disc, []float64{1}, Options{Epsilon: 1}); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestPrivateMatchingReleasesPerfectMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 10; trial++ {
		g := graph.CompleteBipartite(15, 15)
		w := graph.UniformRandomWeights(g, -2, 8, rng)
		rel, err := PrivateMatching(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatal(err)
		}
		if !graph.IsPerfectMatching(g, rel.Matching) {
			t.Fatal("released edges are not a perfect matching")
		}
	}
}

func TestPrivateMatchingExactAtHugeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	g := graph.CompleteBipartite(10, 10)
	w := graph.UniformRandomWeights(g, 0, 5, rng)
	rel, err := PrivateMatching(g, w, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := graph.MinWeightPerfectMatching(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel.TrueWeight(w)-opt) > 1e-3 {
		t.Errorf("huge-eps matching weight %g vs optimum %g", rel.TrueWeight(w), opt)
	}
}

func TestPrivateMatchingErrorWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	violations := 0
	for trial := 0; trial < 20; trial++ {
		hg := graph.NewHourglassGadget(30)
		w := graph.UniformRandomWeights(hg.G, 0, 5, rng)
		rel, err := PrivateMatching(hg.G, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := graph.MinWeightPerfectMatching(hg.G, w)
		if err != nil {
			t.Fatal(err)
		}
		excess := rel.TrueWeight(w) - opt
		if excess < 0 {
			t.Fatal("released matching beats the optimum")
		}
		if excess > rel.ErrorBound(hg.G, 0.05) {
			violations++
		}
	}
	if violations > 1 {
		t.Errorf("%d of 20 trials exceed the Theorem B.6 bound", violations)
	}
}

func TestPrivateMatchingOddGraph(t *testing.T) {
	g := graph.Path(3)
	if _, err := PrivateMatching(g, []float64{1, 1}, Options{Epsilon: 1}); err == nil {
		t.Error("odd-vertex graph accepted")
	}
}

func TestPrivateMatchingValidation(t *testing.T) {
	g := graph.Path(2)
	if _, err := PrivateMatching(g, nil, Options{Epsilon: 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PrivateMatching(g, []float64{1}, Options{}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestPrivateMSTNegativeWeightsAllowed(t *testing.T) {
	// Appendix B explicitly allows negative weights.
	rng := rand.New(rand.NewSource(109))
	g := graph.Complete(10)
	w := graph.UniformRandomWeights(g, -10, -1, rng)
	rel, err := PrivateMST(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsSpanningTree(g, rel.Tree) {
		t.Fatal("not spanning")
	}
	if rel.TrueWeight(w) >= 0 {
		t.Error("all-negative weights should give negative tree weight")
	}
}
