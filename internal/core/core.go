// Package core implements the differentially private mechanisms of
// Sealfon, "Shortest Paths and Distances with Differential Privacy"
// (PODS 2016) in the private edge-weight model: the graph topology is
// public and the weight vector w (indexed by edge ID) is private, with
// weight vectors at l1 distance at most one considered neighboring.
//
// Mechanisms provided:
//
//   - PrivateDistance: single-pair distance via the Laplace mechanism
//     (Section 4 warm-up; sensitivity 1).
//   - APSDComposition: all-pairs distances by noising each of the V^2
//     queries, calibrated by basic or advanced composition (Section 4
//     baselines).
//   - ReleaseGraph: an eps-DP synthetic weight vector; every
//     post-processing of it is private (Section 4 / Algorithm 3 basis).
//   - TreeSingleSource, TreeAllPairs: Algorithm 1 and Theorem 4.2,
//     distances on trees with polylog(V) error.
//   - PathHierarchy: the Appendix A hub hierarchy for the path graph.
//   - CoveringAPSD, CoveringAPSDPure, BoundedWeightAPSD: Algorithm 2 and
//     Theorems 4.5, 4.6, 4.3 for bounded-weight graphs.
//   - PrivateShortestPaths: Algorithm 3 / Theorem 5.5, releasing short
//     paths between all pairs with error proportional to hop count.
//   - PrivateMST, PrivateMatching: Appendix B mechanisms.
//
// Every mechanism accepts a sensitivity Scale (default 1): if one
// individual can influence the weights by at most s in l1 norm rather
// than 1, pass Scale s and all error bounds shrink by the same factor
// (the paper's Section 1.2 scaling remark).
package core

import (
	"fmt"

	"repro/internal/dp"
)

// Options carries the parameters shared by all mechanisms.
type Options struct {
	// Epsilon is the privacy parameter; must be positive.
	Epsilon float64
	// Delta is the approximate-DP parameter; zero means pure DP. Only
	// mechanisms documented as (eps, delta)-DP consume it.
	Delta float64
	// Gamma is the failure probability used to size high-probability
	// bias/bound terms (e.g. Algorithm 3's shift). Defaults to 0.05.
	Gamma float64
	// Scale is the l1 influence of a single individual on the weight
	// vector (the paper's scaling remark). Defaults to 1.
	Scale float64
	// Noise is the noise source every mechanism draws from. Defaults to
	// crypto-grade noise (dp.NewCryptoNoise); pass a seeded source
	// (dp.NewSeededNoise, dp.WrapRand) only for reproducible experiments
	// and tests. Mechanisms request noise in blocks (dp.NoiseSource's
	// FillLaplace), so large releases hit the vectorized — and for
	// crypto sources parallel — sampling path.
	Noise dp.NoiseSource
	// Accountant, when non-nil, is charged (Epsilon, Delta) before each
	// mechanism releases anything; if the budget would be exceeded the
	// mechanism returns the accountant's error and releases nothing.
	Accountant *dp.Accountant
}

// charge debits the given privacy cost from the accountant, if any.
// Mechanisms call it after validation and before sampling any noise,
// passing the guarantee they actually provide: pure mechanisms charge
// pureParams() (delta zero) even when the caller set a nonzero Delta.
func (o Options) charge(label string, p dp.PrivacyParams) error {
	if o.Accountant == nil {
		return nil
	}
	return o.Accountant.Spend(label, p)
}

// withDefaults normalizes an Options value and validates it.
func (o Options) withDefaults() (Options, error) {
	if !(o.Epsilon > 0) {
		return o, fmt.Errorf("core: epsilon must be positive, got %g", o.Epsilon)
	}
	if o.Delta < 0 || o.Delta >= 1 {
		return o, fmt.Errorf("core: delta must be in [0, 1), got %g", o.Delta)
	}
	if o.Gamma == 0 {
		o.Gamma = 0.05
	}
	if !(o.Gamma > 0 && o.Gamma < 1) {
		return o, fmt.Errorf("core: gamma must be in (0, 1), got %g", o.Gamma)
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if !(o.Scale > 0) {
		return o, fmt.Errorf("core: scale must be positive, got %g", o.Scale)
	}
	if o.Noise == nil {
		o.Noise = dp.NewCryptoNoise()
	}
	return o, nil
}

// Validate checks the parameter values without running a mechanism;
// zero values that withDefaults would fill in are accepted.
func (o Options) Validate() error {
	if o.Noise == nil {
		// Avoid allocating a crypto stream just to validate numbers.
		o.Noise = dp.NewSeededNoise(0)
	}
	_, err := o.withDefaults()
	return err
}

// Params returns the privacy guarantee the options request.
func (o Options) Params() dp.PrivacyParams {
	return dp.PrivacyParams{Epsilon: o.Epsilon, Delta: o.Delta}
}

// pureParams returns the guarantee of a pure eps-DP mechanism run under
// these options: Delta is not consumed, so it is not charged.
func (o Options) pureParams() dp.PrivacyParams {
	return dp.PrivacyParams{Epsilon: o.Epsilon}
}
