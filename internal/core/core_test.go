package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"

	"repro/internal/graph"
)

func TestOptionsValidation(t *testing.T) {
	cases := []Options{
		{},                        // no epsilon
		{Epsilon: -1},             // negative epsilon
		{Epsilon: 1, Delta: 1},    // delta = 1
		{Epsilon: 1, Delta: -0.1}, // negative delta
		{Epsilon: 1, Gamma: 1.5},  // gamma out of range
		{Epsilon: 1, Gamma: -0.2}, // negative gamma
		{Epsilon: 1, Scale: -1},   // negative scale
	}
	for i, o := range cases {
		if _, err := o.withDefaults(); err == nil {
			t.Errorf("case %d accepted: %+v", i, o)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o, err := Options{Epsilon: 2}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.Gamma != 0.05 || o.Scale != 1 || o.Noise == nil {
		t.Errorf("defaults = %+v", o)
	}
	if p := o.Params(); p.Epsilon != 2 || p.Delta != 0 {
		t.Errorf("params = %v", p)
	}
}

func TestPrivateDistanceAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	g := graph.Grid(6)
	w := graph.UniformRandomWeights(g, 1, 5, rng)
	exact, err := graph.Distance(g, w, 0, 35)
	if err != nil {
		t.Fatal(err)
	}
	// Strong signal: eps large means nearly exact.
	d, err := PrivateDistance(g, w, 0, 35, Options{Epsilon: 1e6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-exact) > 0.01 {
		t.Errorf("huge-eps distance %g vs exact %g", d, exact)
	}
	// Moderate eps: within a generous multiple of 1/eps (fixed seed).
	d, err = PrivateDistance(g, w, 0, 35, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-exact) > 15 {
		t.Errorf("eps=1 distance error %g implausibly large", math.Abs(d-exact))
	}
}

func TestPrivateDistanceUnreachable(t *testing.T) {
	g := graph.New(2)
	if _, err := PrivateDistance(g, nil, 0, 1, Options{Epsilon: 1}); err == nil {
		t.Error("unreachable pair accepted")
	}
}

func TestPrivateDistanceBadOptions(t *testing.T) {
	g := graph.Path(2)
	if _, err := PrivateDistance(g, []float64{1}, 0, 1, Options{}); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestAPSDCompositionSymmetricAndSane(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	g := graph.ConnectedErdosRenyi(30, 0.2, rng)
	w := graph.UniformRandomWeights(g, 0, 4, rng)
	rel, err := APSDComposition(g, w, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 30; s++ {
		if rel.Dist[s][s] != 0 {
			t.Fatal("diagonal nonzero")
		}
		for u := 0; u < 30; u++ {
			if rel.Dist[s][u] != rel.Dist[u][s] {
				t.Fatal("matrix asymmetric for undirected graph")
			}
		}
	}
	exact, err := graph.AllPairsDistances(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if rel.MaxAbsError(exact) > rel.ErrorBound*3 {
		t.Errorf("max error %g way above bound %g", rel.MaxAbsError(exact), rel.ErrorBound)
	}
	if rel.MeanAbsError(exact) <= 0 {
		t.Error("mean error should be positive with noise")
	}
}

func TestAPSDCompositionAdvancedBeatsBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g := graph.Grid(8)
	w := graph.UniformRandomWeights(g, 0, 1, rng)
	pure, err := APSDComposition(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := APSDComposition(g, w, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if approx.NoiseScale >= pure.NoiseScale {
		t.Errorf("advanced noise %g not below basic %g", approx.NoiseScale, pure.NoiseScale)
	}
	if pure.Params.Delta != 0 || approx.Params.Delta != 1e-6 {
		t.Error("params not recorded")
	}
}

func TestAPSDCompositionDisconnected(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	rel, err := APSDComposition(g, []float64{1}, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rel.Query(0, 2), 1) {
		t.Error("unreachable pair not Inf")
	}
}

func TestAPSDCompositionDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	g := graph.NewDirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	w := []float64{1, 1, 1, 1}
	rel, err := APSDComposition(g, w, Options{Epsilon: 100, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	// Directed distances are asymmetric: 0->3 is 3 hops, 3->0 is 1.
	if !(rel.Query(3, 0) < rel.Query(0, 3)) {
		t.Errorf("directed asymmetry lost: %g vs %g", rel.Query(3, 0), rel.Query(0, 3))
	}
}

func TestReleaseGraphPostProcessing(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	g := graph.Grid(5)
	w := graph.UniformRandomWeights(g, 1, 3, rng)
	rel, err := ReleaseGraph(g, w, Options{Epsilon: 1000, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Weights) != g.M() {
		t.Fatal("wrong length")
	}
	exact, err := graph.Distance(g, w, 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rel.Distance(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-exact) > 0.1 {
		t.Errorf("huge-eps released distance %g vs %g", d, exact)
	}
	ap, err := rel.AllPairs()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ap[0][24]-exact) > 0.1 {
		t.Error("AllPairs disagrees")
	}
	if rel.EdgeErrorBound(0.05) <= 0 {
		t.Error("edge error bound not positive")
	}
}

func TestReleaseGraphNoiseMagnitude(t *testing.T) {
	// With eps=1 and gamma=0.05 the max edge error should respect the
	// union tail bound (fixed seed).
	rng := rand.New(rand.NewSource(70))
	g := graph.Complete(30)
	w := graph.UniformWeights(g, 10)
	rel, err := ReleaseGraph(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	// Per-edge, the tail bound at gamma/E fails with probability gamma/E,
	// so the expected number of violations of the simultaneous bound is
	// below gamma; allow one for seed luck but no more.
	bound := rel.EdgeErrorBound(0.05)
	over := 0
	for e := 0; e < g.M(); e++ {
		if math.Abs(rel.Weights[e]-w[e]) > bound {
			over++
		}
	}
	if over > 1 {
		t.Errorf("%d of %d edges beyond the simultaneous bound (expected <=1 at gamma=0.05)", over, g.M())
	}
}

func TestSameSeedSensitivityReleaseGraph(t *testing.T) {
	// Same-seed audit: with identical noise draws, neighboring inputs
	// produce released vectors whose l1 distance equals the input
	// distance — the identity query's sensitivity.
	rng1 := rand.New(rand.NewSource(71))
	rng2 := rand.New(rand.NewSource(71))
	g := graph.Grid(5)
	w := graph.UniformWeights(g, 5)
	w2 := append([]float64(nil), w...)
	w2[3] += 0.6
	w2[9] -= 0.4
	r1, err := ReleaseGraph(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng1)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ReleaseGraph(g, w2, Options{Epsilon: 1, Noise: dp.WrapRand(rng2)})
	if err != nil {
		t.Fatal(err)
	}
	if d := graph.L1Distance(r1.Weights, r2.Weights); math.Abs(d-1.0) > 1e-9 {
		t.Errorf("same-seed output l1 distance %g, want 1 (the input l1 distance)", d)
	}
}
