package core

import (
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/graph"
)

// CoveringRelease is the output of Algorithm 2 (bounded-weight all-pairs
// distances): noisy distances between all pairs of covering vertices,
// from which the distance between any pair u, v is approximated by the
// released distance between the covering vertices nearest to u and v.
type CoveringRelease struct {
	// Z is the k-covering used (public: derived from topology only).
	Z []int
	// K is the covering radius in hops.
	K int
	// MaxWeight is the weight cap M; the assignment error is at most
	// 2*K*MaxWeight per query.
	MaxWeight float64
	// NoiseScale is the Laplace scale on each released pairwise distance.
	NoiseScale float64
	// Params is the privacy guarantee.
	Params dp.PrivacyParams

	assign []int       // assign[v] = nearest covering vertex
	zIndex map[int]int // covering vertex -> row index
	zdist  [][]float64 // released noisy distances between covering vertices
}

// CoveringAPSD runs Algorithm 2 under (eps, delta)-DP (Theorem 4.5): it
// releases the Z(Z-1)/2 pairwise distances between covering vertices,
// each a sensitivity-Scale query, with per-query noise calibrated by
// advanced composition (Lemma 3.4). Requires opts.Delta > 0. maxWeight is
// the public weight cap M; weights must lie in [0, M].
func CoveringAPSD(g *graph.Graph, w []float64, Z []int, k int, maxWeight float64, opts Options) (*CoveringRelease, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if o.Delta == 0 {
		return nil, fmt.Errorf("core: CoveringAPSD requires delta > 0; use CoveringAPSDPure for pure DP")
	}
	return coveringRelease(g, w, Z, k, maxWeight, o, false)
}

// CoveringAPSDPure runs Algorithm 2 under pure eps-DP (Theorem 4.6),
// calibrating noise by basic composition: Lap(Scale * Z(Z-1)/2 / eps) per
// released distance.
func CoveringAPSDPure(g *graph.Graph, w []float64, Z []int, k int, maxWeight float64, opts Options) (*CoveringRelease, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	o.Delta = 0
	return coveringRelease(g, w, Z, k, maxWeight, o, true)
}

func coveringRelease(g *graph.Graph, w []float64, Z []int, k int, maxWeight float64, o Options, pure bool) (*CoveringRelease, error) {
	if len(Z) == 0 {
		return nil, fmt.Errorf("core: empty covering")
	}
	if !(maxWeight > 0) {
		return nil, fmt.Errorf("core: maxWeight must be positive, got %g", maxWeight)
	}
	for id, x := range w {
		if x < 0 || x > maxWeight {
			return nil, fmt.Errorf("core: edge %d weight %g outside [0, %g]", id, x, maxWeight)
		}
	}
	if !graph.VerifyCovering(g, Z, k) {
		return nil, fmt.Errorf("core: Z is not a %d-covering of the graph", k)
	}
	z := len(Z)
	queries := z * (z - 1) / 2
	if queries == 0 {
		queries = 1
	}
	noiseScale := o.Scale * dp.NoiseScaleForKQueries(dp.PrivacyParams{Epsilon: o.Epsilon, Delta: o.Delta}, queries)

	// Compute the exact answers (and every failure mode) before charging
	// the accountant, so a failed release never burns budget.
	zIndex := make(map[int]int, z)
	for i, zv := range Z {
		zIndex[zv] = i
	}
	zdist := make([][]float64, z)
	for i := range zdist {
		zdist[i] = make([]float64, z)
	}
	for i, zv := range Z {
		// One early-exit multi-target Dijkstra per covering vertex: the
		// release only needs Z-to-Z distances, so the pooled engine can
		// stop as soon as the remaining covering vertices settle. The
		// weights were range-checked against [0, maxWeight] above, so the
		// trusted entry point applies.
		if err := graph.QueryDistancesFromTrusted(g, w, zv, Z[i+1:], zdist[i][i+1:]); err != nil {
			return nil, err
		}
		for j := i + 1; j < z; j++ {
			if math.IsInf(zdist[i][j], 1) {
				return nil, fmt.Errorf("core: covering vertices %d and %d are disconnected", zv, Z[j])
			}
		}
	}
	assign, _ := graph.NearestCoveringVertex(g, Z)
	for v, a := range assign {
		if a == -1 {
			return nil, fmt.Errorf("core: vertex %d not covered", v)
		}
	}
	if err := o.charge("CoveringAPSD", o.Params()); err != nil {
		return nil, err
	}
	// One block of noise for the z(z-1)/2 released covering distances,
	// consumed in the historical (i, j) order.
	noise := make([]float64, z*(z-1)/2)
	o.Noise.FillLaplace(noiseScale, noise)
	next := 0
	for i := 0; i < z; i++ {
		for j := i + 1; j < z; j++ {
			noisy := zdist[i][j] + noise[next]
			next++
			zdist[i][j] = noisy
			zdist[j][i] = noisy
		}
	}
	params := dp.PrivacyParams{Epsilon: o.Epsilon, Delta: o.Delta}
	if pure {
		params.Delta = 0
	}
	return &CoveringRelease{
		Z:          append([]int(nil), Z...),
		K:          k,
		MaxWeight:  maxWeight,
		NoiseScale: noiseScale,
		Params:     params,
		assign:     assign,
		zIndex:     zIndex,
		zdist:      zdist,
	}, nil
}

// Query returns the released approximation of the u-v distance: the noisy
// distance between the covering vertices nearest u and v (zero when they
// coincide). Error is at most 2*K*MaxWeight plus the Laplace tail.
func (c *CoveringRelease) Query(u, v int) float64 {
	zu := c.zIndex[c.assign[u]]
	zv := c.zIndex[c.assign[v]]
	return c.zdist[zu][zv]
}

// Assign returns the covering vertex serving v.
func (c *CoveringRelease) Assign(v int) int { return c.assign[v] }

// NumQueries returns the number of released noisy distances.
func (c *CoveringRelease) NumQueries() int {
	z := len(c.Z)
	return z * (z - 1) / 2
}

// ErrorBound returns the per-query additive error bound holding for all
// pairs simultaneously with probability 1-gamma:
// 2*K*MaxWeight + NoiseScale * log(#queries/gamma).
func (c *CoveringRelease) ErrorBound(gamma float64) float64 {
	q := c.NumQueries()
	if q == 0 {
		q = 1
	}
	return 2*float64(c.K)*c.MaxWeight + dp.UnionTailBound(c.NoiseScale, q, gamma)
}

// Matrix materializes all-pairs estimates for every vertex pair.
func (c *CoveringRelease) Matrix(n int) [][]float64 {
	d := make([][]float64, n)
	for u := 0; u < n; u++ {
		d[u] = make([]float64, n)
		for v := 0; v < n; v++ {
			if u != v {
				d[u][v] = c.Query(u, v)
			}
		}
	}
	return d
}

// BoundedWeightAPSD implements Theorem 4.3: it chooses the covering
// radius k from V, M and eps, builds the Lemma 4.4 covering, and runs
// Algorithm 2. With opts.Delta > 0 it uses k = floor(sqrt(V/(M*eps)))
// for additive error O~(sqrt(V*M/eps) * sqrt(log 1/delta)); with
// opts.Delta == 0 it uses k = floor(V^{2/3}/(M*eps)^{1/3}) for error
// O~((V*M)^{2/3} / eps^{1/3}). The theorem's regime 1/V < M*eps < V
// keeps k within [1, V-1]; outside it the radius is clamped.
func BoundedWeightAPSD(g *graph.Graph, w []float64, maxWeight float64, opts Options) (*CoveringRelease, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	v := float64(g.N())
	var k int
	if o.Delta > 0 {
		k = int(math.Floor(math.Sqrt(v / (maxWeight * o.Epsilon))))
	} else {
		k = int(math.Floor(math.Pow(v, 2.0/3.0) / math.Cbrt(maxWeight*o.Epsilon)))
	}
	if k < 1 {
		k = 1
	}
	if k > g.N()-1 {
		k = g.N() - 1
	}
	Z, err := graph.Covering(g, k)
	if err != nil {
		return nil, err
	}
	if o.Delta > 0 {
		return CoveringAPSD(g, w, Z, k, maxWeight, opts)
	}
	return CoveringAPSDPure(g, w, Z, k, maxWeight, opts)
}
