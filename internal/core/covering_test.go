package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"

	"repro/internal/graph"
)

func TestCoveringAPSDRequiresDelta(t *testing.T) {
	g := graph.Path(10)
	w := graph.UniformWeights(g, 0.5)
	z, err := graph.Covering(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CoveringAPSD(g, w, z, 2, 1, Options{Epsilon: 1}); err == nil {
		t.Error("delta=0 accepted by approximate-DP mechanism")
	}
}

func TestCoveringAPSDValidation(t *testing.T) {
	g := graph.Path(10)
	w := graph.UniformWeights(g, 0.5)
	opts := Options{Epsilon: 1, Delta: 1e-6}
	if _, err := CoveringAPSD(g, w, nil, 2, 1, opts); err == nil {
		t.Error("empty covering accepted")
	}
	if _, err := CoveringAPSD(g, w, []int{5}, 1, 1, opts); err == nil {
		t.Error("non-covering accepted")
	}
	if _, err := CoveringAPSD(g, w, []int{5}, 9, 0, opts); err == nil {
		t.Error("maxWeight=0 accepted")
	}
	if _, err := CoveringAPSD(g, graph.UniformWeights(g, 2), []int{5}, 9, 1, opts); err == nil {
		t.Error("weights above cap accepted")
	}
	neg := graph.UniformWeights(g, 0.5)
	neg[0] = -0.1
	if _, err := CoveringAPSD(g, neg, []int{5}, 9, 1, opts); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestCoveringAPSDDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	w := []float64{0.5, 0.5}
	if _, err := CoveringAPSD(g, w, []int{0, 2}, 1, 1, Options{Epsilon: 1, Delta: 1e-6}); err == nil {
		t.Error("disconnected covering pair accepted")
	}
}

func TestCoveringAPSDExactAtHugeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	g := graph.Grid(8)
	w := graph.UniformRandomWeights(g, 0, 1, rng)
	k := 2
	z, err := graph.Covering(g, k)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := CoveringAPSD(g, w, z, k, 1, Options{Epsilon: 1e9, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	// At huge eps the only error is the 2kM assignment slack.
	for trial := 0; trial < 300; trial++ {
		u, v := rng.Intn(64), rng.Intn(64)
		exact, err := graph.Distance(g, w, u, v)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(rel.Query(u, v) - exact); e > 2*float64(k)*1.0+1e-6 {
			t.Fatalf("pair (%d,%d): error %g > 2kM", u, v, e)
		}
	}
}

func TestCoveringAPSDErrorWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	g := graph.Grid(12)
	n := g.N()
	w := graph.UniformRandomWeights(g, 0, 2, rng)
	rel, err := BoundedWeightAPSD(g, w, 2, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	bound := rel.ErrorBound(0.01)
	for trial := 0; trial < 400; trial++ {
		u, v := rng.Intn(n), rng.Intn(n)
		exact, err := graph.Distance(g, w, u, v)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(rel.Query(u, v) - exact); e > bound {
			t.Fatalf("pair (%d,%d): error %g > bound %g", u, v, e, bound)
		}
	}
}

func TestCoveringAPSDPureNoiseLargerThanApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	g := graph.Grid(10)
	w := graph.UniformRandomWeights(g, 0, 1, rng)
	k := 3
	z, err := graph.Covering(g, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) < 3 {
		t.Skip("covering too small to compare")
	}
	approx, err := CoveringAPSD(g, w, z, k, 1, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	pure, err := CoveringAPSDPure(g, w, z, k, 1, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if pure.NoiseScale <= approx.NoiseScale {
		t.Errorf("pure noise %g not above approx %g", pure.NoiseScale, approx.NoiseScale)
	}
	if pure.Params.Delta != 0 {
		t.Error("pure mechanism reports delta > 0")
	}
}

func TestCoveringAPSDAssignAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := graph.Grid(6)
	w := graph.UniformRandomWeights(g, 0, 1, rng)
	rel, err := BoundedWeightAPSD(g, w, 1, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	hop := graph.HopDistances(g, rel.Assign(17))
	if hop[17] > rel.K {
		t.Errorf("assigned covering vertex is %d hops away > k=%d", hop[17], rel.K)
	}
	for trial := 0; trial < 50; trial++ {
		u, v := rng.Intn(36), rng.Intn(36)
		if rel.Query(u, v) != rel.Query(v, u) {
			t.Fatal("asymmetric")
		}
	}
	// Same covering vertex -> estimate 0.
	z0 := rel.Assign(0)
	if rel.Query(z0, z0) != 0 {
		t.Error("self query nonzero")
	}
}

func TestCoveringAPSDMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := graph.Grid(5)
	w := graph.UniformRandomWeights(g, 0, 1, rng)
	rel, err := BoundedWeightAPSD(g, w, 1, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	m := rel.Matrix(25)
	for u := 0; u < 25; u++ {
		for v := 0; v < 25; v++ {
			want := rel.Query(u, v)
			if u == v {
				want = 0
			}
			if m[u][v] != want {
				t.Fatal("matrix disagrees")
			}
		}
	}
}

func TestBoundedWeightAPSDChoosesK(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	g := graph.Grid(16) // V = 256
	w := graph.UniformRandomWeights(g, 0, 4, rng)
	// (eps, delta): k = floor(sqrt(256 / (4*1))) = 8.
	rel, err := BoundedWeightAPSD(g, w, 4, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if rel.K != 8 {
		t.Errorf("approx k = %d, want 8", rel.K)
	}
	// Pure: k = floor(256^{2/3} / 4^{1/3}) = floor(40.3/1.59) = 25.
	relPure, err := BoundedWeightAPSD(g, w, 4, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	wantK := int(math.Floor(math.Pow(256, 2.0/3.0) / math.Cbrt(4.0)))
	if relPure.K != wantK {
		t.Errorf("pure k = %d, want %d", relPure.K, wantK)
	}
}

func TestBoundedWeightAPSDClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	// Tiny M*eps pushes k above V-1: must clamp.
	g := graph.Path(8)
	w := graph.UniformWeights(g, 0.001)
	rel, err := BoundedWeightAPSD(g, w, 0.001, Options{Epsilon: 0.01, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if rel.K > 7 {
		t.Errorf("k = %d not clamped to V-1", rel.K)
	}
	// Huge M*eps pushes k below 1: must clamp to 1.
	g2 := graph.Grid(4)
	w2 := graph.UniformWeights(g2, 100)
	rel2, err := BoundedWeightAPSD(g2, w2, 100, Options{Epsilon: 100, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if rel2.K != 1 {
		t.Errorf("k = %d, want 1", rel2.K)
	}
}

func TestCoveringAPSDSameSeedSensitivity(t *testing.T) {
	// Same-seed audit: shifting one edge weight by d moves each released
	// Z-pair distance by at most d, so any query moves by at most d.
	g := graph.Grid(6)
	w := graph.UniformWeights(g, 0.5)
	w2 := append([]float64(nil), w...)
	w2[20] += 0.3
	k := 2
	z, err := graph.Covering(g, k)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := CoveringAPSD(g, w, z, k, 1, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.NewSeededNoise(8)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CoveringAPSD(g, w2, z, k, 1, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.NewSeededNoise(8)})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 36; u++ {
		for v := 0; v < 36; v++ {
			if d := math.Abs(r1.Query(u, v) - r2.Query(u, v)); d > 0.3+1e-9 {
				t.Fatalf("query (%d,%d) drifted %g > 0.3", u, v, d)
			}
		}
	}
}

func TestGridCoveringWithCoveringAPSD(t *testing.T) {
	// Theorem 4.7 wiring: grid covering + Algorithm 2.
	rng := rand.New(rand.NewSource(95))
	side := 9
	g := graph.Grid(side)
	s := int(math.Ceil(math.Cbrt(float64(side * side))))
	z := graph.GridCovering(side, s)
	k := 2 * (s - 1)
	w := graph.UniformRandomWeights(g, 0, 1, rng)
	rel, err := CoveringAPSD(g, w, z, k, 1, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Z) != len(z) {
		t.Error("covering not preserved")
	}
}
