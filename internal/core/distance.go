package core

import (
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/graph"
)

// PrivateDistance releases the distance between one pair of vertices with
// eps-differential privacy (Section 4 warm-up). The distance function is
// sensitivity-Scale: changing the weights by at most Scale in l1 changes
// the weight of every path, hence the minimum, by at most Scale. Noise is
// Lap(Scale/eps).
func PrivateDistance(g *graph.Graph, w []float64, s, t int, opts Options) (float64, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return 0, err
	}
	d, err := graph.Distance(g, w, s, t)
	if err != nil {
		return 0, err
	}
	if math.IsInf(d, 1) {
		return 0, fmt.Errorf("core: vertex %d unreachable from %d (topology is public, so reporting this leaks nothing)", t, s)
	}
	if err := o.charge("PrivateDistance", o.pureParams()); err != nil {
		return 0, err
	}
	return d + o.Noise.SampleLaplace(o.Scale/o.Epsilon), nil
}

// APSD holds privately released all-pairs distance estimates.
type APSD struct {
	// Dist[s][t] is the released estimate of the s-t distance.
	Dist [][]float64
	// NoiseScale is the Laplace scale added to each entry (or, for
	// covering-based mechanisms, to each underlying released value).
	NoiseScale float64
	// ErrorBound is the mechanism's high-probability per-distance
	// additive error bound at the configured gamma.
	ErrorBound float64
	// Params is the privacy guarantee of the release.
	Params dp.PrivacyParams
}

// Query returns the released s-t distance estimate.
func (a *APSD) Query(s, t int) float64 { return a.Dist[s][t] }

// APSDComposition releases all-pairs distances by adding independent
// Laplace noise to each of the V^2 sensitivity-Scale distance queries
// (Section 4 baselines).
//
// With Delta == 0 it adds Lap(V^2 * Scale / eps) noise (basic composition,
// Lemma 3.3). With Delta > 0 it calibrates the per-query epsilon by
// advanced composition (Lemma 3.4), yielding noise scale
// O(V * sqrt(ln 1/delta) * Scale / eps).
func APSDComposition(g *graph.Graph, w []float64, opts Options) (*APSD, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	n := g.N()
	// Number of adaptive sensitivity-1 queries: one per ordered pair with
	// s < t (undirected) or s != t (directed); diagonal is identically 0.
	k := n * (n - 1) / 2
	if g.Directed() {
		k = n * (n - 1)
	}
	if k == 0 {
		k = 1
	}
	noiseScale := o.Scale * dp.NoiseScaleForKQueries(o.Params(), k)
	// Exact answers (and any failure) come before the charge, so a
	// failed release never burns budget.
	exact, err := graph.AllPairsDistances(g, w)
	if err != nil {
		return nil, err
	}
	if err := o.charge("APSDComposition", o.Params()); err != nil {
		return nil, err
	}
	released := make([][]float64, n)
	for s := 0; s < n; s++ {
		released[s] = make([]float64, n)
	}
	// One block of noise for every finite released entry, requested up
	// front so the fill can amortize (and, for crypto sources, shard);
	// consumption order matches the historical per-entry sampling loop.
	// The counting pass shares the consumption loop's skip predicate so
	// the two cannot drift.
	needsNoise := func(s, t int) bool {
		return s != t && (g.Directed() || s < t) && !math.IsInf(exact[s][t], 1)
	}
	noisy := 0
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if needsNoise(s, t) {
				noisy++
			}
		}
	}
	noise := make([]float64, noisy)
	o.Noise.FillLaplace(noiseScale, noise)
	next := 0
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			switch {
			case needsNoise(s, t):
				released[s][t] = exact[s][t] + noise[next]
				next++
			case s == t:
				// Diagonal stays zero.
			case !g.Directed() && s > t:
				released[s][t] = released[t][s]
			default:
				released[s][t] = math.Inf(1)
			}
		}
	}
	return &APSD{
		Dist:       released,
		NoiseScale: noiseScale,
		ErrorBound: dp.UnionTailBound(noiseScale, k, o.Gamma),
		Params:     o.Params(),
	}, nil
}

// MaxAbsError returns the largest |released - exact| over all pairs with
// finite exact distance. A testing/experiment helper, not a mechanism.
func (a *APSD) MaxAbsError(exact [][]float64) float64 {
	worst := 0.0
	for s := range exact {
		for t := range exact[s] {
			if s == t || math.IsInf(exact[s][t], 1) {
				continue
			}
			if e := math.Abs(a.Dist[s][t] - exact[s][t]); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// MeanAbsError returns the average |released - exact| over all ordered
// pairs with finite exact distance.
func (a *APSD) MeanAbsError(exact [][]float64) float64 {
	sum, count := 0.0, 0
	for s := range exact {
		for t := range exact[s] {
			if s == t || math.IsInf(exact[s][t], 1) {
				continue
			}
			sum += math.Abs(a.Dist[s][t] - exact[s][t])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
