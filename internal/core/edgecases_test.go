package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"

	"repro/internal/graph"
)

// The mechanisms must behave on degenerate topologies: single edges,
// stars, zero weights, enormous weights, and extreme Scale values.

func TestMechanismsOnSingleEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	g := graph.Path(2)
	w := []float64{7}
	opts := Options{Epsilon: 1, Noise: dp.WrapRand(rng)}

	if _, err := PrivateDistance(g, w, 0, 1, opts); err != nil {
		t.Errorf("PrivateDistance: %v", err)
	}
	if pp, err := PrivateShortestPaths(g, w, opts); err != nil {
		t.Errorf("PrivateShortestPaths: %v", err)
	} else if path, err := pp.Path(0, 1); err != nil || len(path) != 1 {
		t.Errorf("single-edge path = %v, %v", path, err)
	}
	if sssp, err := TreeSingleSource(g, w, 0, opts); err != nil {
		t.Errorf("TreeSingleSource: %v", err)
	} else if sssp.Released > 4 {
		t.Errorf("released %d values for a single edge", sssp.Released)
	}
	if _, err := PathHierarchy(w, 2, opts); err != nil {
		t.Errorf("PathHierarchy: %v", err)
	}
	if rel, err := PrivateMST(g, w, opts); err != nil || len(rel.Tree) != 1 {
		t.Errorf("PrivateMST: %v", err)
	}
	if rel, err := PrivateMatching(g, w, opts); err != nil || len(rel.Matching) != 1 {
		t.Errorf("PrivateMatching: %v", err)
	}
}

func TestMechanismsOnZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	g := graph.Grid(4)
	w := make([]float64, g.M())
	opts := Options{Epsilon: 1, Noise: dp.WrapRand(rng)}
	if _, err := PrivateShortestPaths(g, w, opts); err != nil {
		t.Errorf("zero weights paths: %v", err)
	}
	if _, err := BoundedWeightAPSD(g, w, 1, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)}); err != nil {
		t.Errorf("zero weights APSD: %v", err)
	}
	tree := graph.BalancedBinaryTree(15)
	if _, err := TreeAllPairs(tree, make([]float64, 14), opts); err != nil {
		t.Errorf("zero weights tree: %v", err)
	}
}

func TestMechanismsOnHugeWeights(t *testing.T) {
	// With weights ~1e12, relative error should be tiny: the additive
	// noise is independent of weight magnitude (the paper's point that
	// large weights make the additive error negligible).
	rng := rand.New(rand.NewSource(128))
	g := graph.Grid(5)
	w := graph.UniformRandomWeights(g, 1e12, 2e12, rng)
	pp, err := PrivateShortestPaths(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pp.PathWeight(w, 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := graph.Distance(g, w, 0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if rel := (got - exact) / exact; rel > 1e-9 {
		t.Errorf("relative error %g on huge weights", rel)
	}
}

func TestMechanismsOnStar(t *testing.T) {
	rng := rand.New(rand.NewSource(129))
	g := graph.Star(64)
	w := graph.UniformRandomWeights(g, 1, 2, rng)
	sssp, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 64; v++ {
		if math.Abs(sssp.Dist[v]-w[v-1]) > 1e-3 {
			t.Fatalf("star distance to %d wrong", v)
		}
	}
	// Star with leaf root.
	sssp, err = TreeSingleSource(g, w, 5, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sssp.Dist[0]-w[4]) > 1e-3 {
		t.Error("leaf-rooted star wrong")
	}
}

func TestExtremeScale(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	g := graph.Path(16)
	w := graph.UniformWeights(g, 1)
	// Tiny scale: near-exact release even at small epsilon.
	pp, err := PrivateShortestPaths(g, w, Options{Epsilon: 0.01, Scale: 1e-9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pp.PathWeight(w, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-15) > 1e-3 {
		t.Errorf("tiny-scale path weight %g", got)
	}
	// Large scale: mechanisms still run and bounds grow linearly.
	sssp, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Scale: 100, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Scale: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sssp.ErrorBound(0.05)/ref.ErrorBound(0.05)-100) > 1e-6 {
		t.Error("bound does not scale linearly in Scale")
	}
}

func TestPrivateMaxMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	g := graph.CompleteBipartite(6, 6)
	w := graph.UniformRandomWeights(g, 0, 10, rng)
	rel, err := PrivateMaxMatching(g, w, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsPerfectMatching(g, rel.Matching) {
		t.Fatal("not a perfect matching")
	}
	_, opt, err := graph.MaxWeightPerfectMatching(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel.TrueWeight(w)-opt) > 1e-3 {
		t.Errorf("huge-eps max matching %g vs optimum %g", rel.TrueWeight(w), opt)
	}
	if math.Abs(rel.ReleasedWeight-rel.TrueWeight(w)) > 1e-3 {
		t.Errorf("released weight %g should be near true weight at huge eps", rel.ReleasedWeight)
	}
	// Moderate eps: shortfall stays within the Theorem B.6 bound.
	rel, err = PrivateMaxMatching(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if opt-rel.TrueWeight(w) > rel.ErrorBound(g, 0.01) {
		t.Errorf("shortfall %g beyond bound", opt-rel.TrueWeight(w))
	}
}

func TestTreeMechanismDeterministicGivenSeed(t *testing.T) {
	g := graph.BalancedBinaryTree(127)
	w := graph.UniformWeights(g, 2)
	a, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Noise: dp.NewSeededNoise(10)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Noise: dp.NewSeededNoise(10)})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Dist {
		if a.Dist[v] != b.Dist[v] {
			t.Fatal("same seed, different release")
		}
	}
}
