package core

import (
	"errors"

	"repro/internal/dp"
	"repro/internal/graph"
)

// MatchingRelease is the output of the Theorem B.6 mechanism: a perfect
// matching computed on a noisy weight vector.
type MatchingRelease struct {
	// Matching is the released matching's edge IDs, sorted.
	Matching []int
	// ReleasedWeight is the matching's weight under the noisy weights.
	ReleasedWeight float64
	// NoiseScale is Scale/eps.
	NoiseScale float64
	// Params is the privacy guarantee (pure eps-DP).
	Params dp.PrivacyParams
}

// PrivateMatching releases an almost-minimum-weight perfect matching
// (Theorem B.6): add Lap(Scale/eps) noise to every edge weight and return
// an exact minimum-weight perfect matching of the noisy graph
// (post-processing; the privacy guarantee does not depend on which exact
// matcher is used). With probability 1-gamma the released matching's true
// weight exceeds the optimum by at most (V*Scale/eps) log(E/gamma).
// Negative weights are permitted, as in Appendix B.
func PrivateMatching(g *graph.Graph, w []float64, opts Options) (*MatchingRelease, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(w) != g.M() {
		return nil, errors.New("core: PrivateMatching weight vector length mismatch")
	}
	// Perfect-matching existence depends only on the public topology;
	// check it (with zero weights) before charging so an infeasible
	// release never burns budget.
	if _, _, err := graph.MinWeightPerfectMatching(g, make([]float64, g.M())); err != nil {
		return nil, err
	}
	noiseScale := o.Scale / o.Epsilon
	if err := o.charge("PrivateMatching", o.pureParams()); err != nil {
		return nil, err
	}
	noisy := dp.AddLaplace(w, noiseScale, o.Noise)
	m, wt, err := graph.MinWeightPerfectMatching(g, noisy)
	if err != nil {
		return nil, err
	}
	return &MatchingRelease{
		Matching:       m,
		ReleasedWeight: wt,
		NoiseScale:     noiseScale,
		Params:         dp.PrivacyParams{Epsilon: o.Epsilon},
	}, nil
}

// PrivateMaxMatching releases an almost-maximum-weight perfect matching.
// Appendix B.2 notes the minimization results carry over verbatim to the
// maximization problems; mechanically this is PrivateMatching on negated
// weights, with the same eps-DP guarantee and error bound (now a
// shortfall below the maximum rather than an excess above the minimum).
func PrivateMaxMatching(g *graph.Graph, w []float64, opts Options) (*MatchingRelease, error) {
	neg := make([]float64, len(w))
	for i, x := range w {
		neg[i] = -x
	}
	rel, err := PrivateMatching(g, neg, opts)
	if err != nil {
		return nil, err
	}
	rel.ReleasedWeight = -rel.ReleasedWeight
	return rel, nil
}

// TrueWeight returns the released matching's weight under the private
// weights (data-owner side, for error measurement).
func (r *MatchingRelease) TrueWeight(w []float64) float64 {
	return graph.PathWeight(w, r.Matching)
}

// ErrorBound returns the Theorem B.6 additive bound holding with
// probability 1-gamma: V * NoiseScale * log(E/gamma) (the matching has
// V/2 edges; each endpoint of the comparison contributes V/2 noise
// magnitudes).
func (r *MatchingRelease) ErrorBound(g *graph.Graph, gamma float64) float64 {
	if g.M() == 0 {
		return 0
	}
	return float64(g.N()) * dp.UnionTailBound(r.NoiseScale, g.M(), gamma)
}
