package core

import (
	"errors"

	"repro/internal/dp"
	"repro/internal/graph"
)

// MSTRelease is the output of the Theorem B.3 mechanism: a spanning tree
// computed on a noisy weight vector.
type MSTRelease struct {
	// Tree is the released spanning tree's edge IDs, sorted.
	Tree []int
	// ReleasedWeight is the tree's weight under the released (noisy)
	// weights; safe to publish alongside the tree.
	ReleasedWeight float64
	// NoiseScale is Scale/eps.
	NoiseScale float64
	// Params is the privacy guarantee (pure eps-DP).
	Params dp.PrivacyParams
}

// PrivateMST releases an almost-minimum spanning tree (Theorem B.3): add
// Lap(Scale/eps) noise to every edge weight (the Laplace mechanism on the
// identity query, eps-DP) and return the exact MST of the noisy graph
// (post-processing). With probability 1-gamma the released tree's true
// weight exceeds the optimum by at most (2(V-1)*Scale/eps) log(E/gamma).
// Negative weights are permitted, as in Appendix B.
func PrivateMST(g *graph.Graph, w []float64, opts Options) (*MSTRelease, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(w) != g.M() {
		return nil, errors.New("core: PrivateMST weight vector length mismatch")
	}
	// MST can only fail for topological (public) reasons; rule them out
	// before charging so a failed release never burns budget.
	if g.Directed() {
		return nil, errors.New("core: PrivateMST requires an undirected graph")
	}
	if !g.Connected() {
		return nil, errors.New("core: PrivateMST requires a connected graph")
	}
	noiseScale := o.Scale / o.Epsilon
	if err := o.charge("PrivateMST", o.pureParams()); err != nil {
		return nil, err
	}
	noisy := dp.AddLaplace(w, noiseScale, o.Noise)
	tree, wt, err := graph.MST(g, noisy)
	if err != nil {
		return nil, err
	}
	return &MSTRelease{
		Tree:           tree,
		ReleasedWeight: wt,
		NoiseScale:     noiseScale,
		Params:         dp.PrivacyParams{Epsilon: o.Epsilon},
	}, nil
}

// TrueWeight returns the released tree's weight under the private weights
// (data-owner side, for error measurement).
func (r *MSTRelease) TrueWeight(w []float64) float64 {
	return graph.PathWeight(w, r.Tree)
}

// ErrorBound returns the Theorem B.3 additive bound holding with
// probability 1-gamma: 2(V-1) * NoiseScale * log(E/gamma), i.e. twice the
// tree size times the simultaneous per-edge noise bound.
func (r *MSTRelease) ErrorBound(g *graph.Graph, gamma float64) float64 {
	if g.M() == 0 {
		return 0
	}
	return 2 * float64(g.N()-1) * dp.UnionTailBound(r.NoiseScale, g.M(), gamma)
}
