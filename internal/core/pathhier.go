package core

import (
	"fmt"

	"repro/internal/dp"
)

// PathHubs is the Appendix A release for the path graph P on V vertices
// (vertices 0..V-1, edge i joining i and i+1): a hierarchy of hub levels
// where level l releases noisy distances between consecutive multiples of
// Base^l. Any pairwise distance is assembled from at most 2(Base-1) gaps
// per level, so the error is O(log^1.5 V * log(1/gamma))/eps for Base = 2
// — a restatement of the binary-tree counter of [DNPR10].
type PathHubs struct {
	V      int
	Base   int // the hub spacing ratio c (paper: V^{1/k}; here an integer >= 2)
	Levels int // k: number of hub levels
	// gaps[l][j] is the released noisy distance between hubs j*Base^l and
	// (j+1)*Base^l.
	gaps [][]float64
	// NoiseScale is the Laplace scale of each released gap, Scale*Levels/eps.
	NoiseScale float64
	// Params is the privacy guarantee (pure eps-DP).
	Params dp.PrivacyParams
}

// PathHierarchy releases the hub hierarchy for the path graph whose edge
// weights are w (so V = len(w) + 1), with hub ratio base (>= 2; use 2 for
// the paper's k = log V setting).
//
// Privacy: at each level the gaps cover pairwise disjoint edge intervals,
// so one level's query vector has sensitivity Scale; with Levels levels
// the full vector has sensitivity Scale*Levels, and Lap(Scale*Levels/eps)
// noise per coordinate gives eps-DP (Lemma 3.2).
func PathHierarchy(w []float64, base int, opts Options) (*PathHubs, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if base < 2 {
		return nil, fmt.Errorf("core: PathHierarchy base must be >= 2, got %d", base)
	}
	v := len(w) + 1
	if v < 2 {
		return nil, fmt.Errorf("core: PathHierarchy needs at least one edge")
	}
	// Number of levels: enough that base^(Levels-1) < V <= base^Levels;
	// the top level then has fewer than base gaps.
	levels := 1
	for span := base; span < v-1; span *= base {
		levels++
	}
	scale := o.Scale * float64(levels) / o.Epsilon
	if err := o.charge("PathHierarchy", o.pureParams()); err != nil {
		return nil, err
	}

	// prefix[i] = exact distance from vertex 0 to vertex i.
	prefix := make([]float64, v)
	for i, x := range w {
		prefix[i+1] = prefix[i] + x
	}
	gaps := make([][]float64, levels)
	span := 1
	for l := 0; l < levels; l++ {
		count := (v - 1) / span // gaps with both endpoints <= V-1
		// Fill the level's noise as one block, then shift by the exact
		// gaps; level-by-level fills preserve the historical draw order.
		gaps[l] = make([]float64, count)
		o.Noise.FillLaplace(scale, gaps[l])
		for j := 0; j < count; j++ {
			gaps[l][j] += prefix[(j+1)*span] - prefix[j*span]
		}
		span *= base
	}
	return &PathHubs{
		V:          v,
		Base:       base,
		Levels:     levels,
		gaps:       gaps,
		NoiseScale: scale,
		Params:     dp.PrivacyParams{Epsilon: o.Epsilon},
	}, nil
}

// Query returns the released estimate of the distance between vertices x
// and y on the path, assembled from at most 2(Base-1) gap estimates per
// level. Pure post-processing of the released hierarchy.
func (p *PathHubs) Query(x, y int) float64 {
	if x > y {
		x, y = y, x
	}
	if x < 0 || y >= p.V {
		panic(fmt.Sprintf("core: PathHubs.Query(%d, %d) out of range [0, %d)", x, y, p.V))
	}
	total := 0.0
	lo, hi := x, y
	span := 1
	for l := 0; l < p.Levels && lo < hi; l++ {
		next := span * p.Base
		// Climb lo upward to the next alignment boundary.
		for lo%next != 0 && lo+span <= hi {
			total += p.gaps[l][lo/span]
			lo += span
		}
		// Climb hi downward to the previous alignment boundary.
		for hi%next != 0 && hi-span >= lo {
			total += p.gaps[l][hi/span-1]
			hi -= span
		}
		span = next
	}
	// Top level: walk the remaining aligned gaps (fewer than Base).
	span /= p.Base
	for lo < hi {
		total += p.gaps[p.Levels-1][lo/span]
		lo += span
	}
	return total
}

// GapsUsed counts the number of released values Query(x, y) sums; at most
// 2(Base-1)*Levels + Base. Exposed for tests of the Appendix A argument.
func (p *PathHubs) GapsUsed(x, y int) int {
	if x > y {
		x, y = y, x
	}
	used := 0
	lo, hi := x, y
	span := 1
	for l := 0; l < p.Levels && lo < hi; l++ {
		next := span * p.Base
		for lo%next != 0 && lo+span <= hi {
			used++
			lo += span
		}
		for hi%next != 0 && hi-span >= lo {
			used++
			hi -= span
		}
		span = next
	}
	span /= p.Base
	for lo < hi {
		used++
		lo += span
	}
	return used
}

// MaxGapsPerQuery returns the worst-case number of summed gap estimates.
func (p *PathHubs) MaxGapsPerQuery() int {
	return 2*(p.Base-1)*p.Levels + p.Base
}

// ErrorBound returns the per-query additive error bound holding with
// probability 1-gamma: a sum of at most MaxGapsPerQuery independent
// Lap(NoiseScale) variables, bounded by Lemma 3.1.
func (p *PathHubs) ErrorBound(gamma float64) float64 {
	return dp.SumTailBound(p.NoiseScale, p.MaxGapsPerQuery(), gamma)
}

// ReleasedCount returns the total number of noisy values in the hierarchy.
func (p *PathHubs) ReleasedCount() int {
	total := 0
	for _, g := range p.gaps {
		total += len(g)
	}
	return total
}
