package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"

	"repro/internal/graph"
)

func pathPrefix(w []float64) []float64 {
	prefix := make([]float64, len(w)+1)
	for i, x := range w {
		prefix[i+1] = prefix[i] + x
	}
	return prefix
}

func TestPathHierarchyExactAtHugeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, v := range []int{2, 3, 5, 16, 17, 100, 129, 1024} {
		w := make([]float64, v-1)
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		hubs, err := PathHierarchy(w, 2, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatalf("V=%d: %v", v, err)
		}
		prefix := pathPrefix(w)
		for trial := 0; trial < 100; trial++ {
			x, y := rng.Intn(v), rng.Intn(v)
			want := math.Abs(prefix[y] - prefix[x])
			if got := hubs.Query(x, y); math.Abs(got-want) > 1e-3 {
				t.Fatalf("V=%d pair (%d,%d): %g vs %g", v, x, y, got, want)
			}
		}
	}
}

func TestPathHierarchyAllPairsExhaustive(t *testing.T) {
	// Exhaustive over all pairs for several sizes and bases.
	rng := rand.New(rand.NewSource(84))
	for _, base := range []int{2, 3, 4} {
		for _, v := range []int{2, 7, 33, 64} {
			w := make([]float64, v-1)
			for i := range w {
				w[i] = rng.Float64()
			}
			hubs, err := PathHierarchy(w, base, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
			if err != nil {
				t.Fatal(err)
			}
			prefix := pathPrefix(w)
			for x := 0; x < v; x++ {
				for y := 0; y < v; y++ {
					want := math.Abs(prefix[y] - prefix[x])
					if math.Abs(hubs.Query(x, y)-want) > 1e-3 {
						t.Fatalf("base=%d V=%d (%d,%d)", base, v, x, y)
					}
				}
			}
		}
	}
}

func TestPathHierarchyGapsUsedBound(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for _, base := range []int{2, 3} {
		v := 1000
		w := make([]float64, v-1)
		hubs, err := PathHierarchy(w, base, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatal(err)
		}
		maxAllowed := hubs.MaxGapsPerQuery()
		worst := 0
		for trial := 0; trial < 3000; trial++ {
			x, y := rng.Intn(v), rng.Intn(v)
			used := hubs.GapsUsed(x, y)
			if used > worst {
				worst = used
			}
		}
		if worst > maxAllowed {
			t.Errorf("base=%d: used %d gaps > declared max %d", base, worst, maxAllowed)
		}
		// The Appendix A point: gaps per query is O(log V), far below V.
		if worst > 4*hubs.Levels+base {
			t.Errorf("base=%d: worst %d above 4*levels+base", base, worst)
		}
	}
}

func TestPathHierarchyErrorWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	v := 2048
	w := make([]float64, v-1)
	for i := range w {
		w[i] = rng.Float64() * 10
	}
	hubs, err := PathHierarchy(w, 2, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	prefix := pathPrefix(w)
	bound := hubs.ErrorBound(0.05 / 2000)
	for trial := 0; trial < 2000; trial++ {
		x, y := rng.Intn(v), rng.Intn(v)
		want := math.Abs(prefix[y] - prefix[x])
		if e := math.Abs(hubs.Query(x, y) - want); e > bound {
			t.Fatalf("pair (%d,%d): error %g > bound %g", x, y, e, bound)
		}
	}
}

func TestPathHierarchyLevels(t *testing.T) {
	// V=1025: levels must satisfy base^(levels) >= V-1 roughly; for
	// base 2 and 1024 edges that's 10 levels.
	w := make([]float64, 1024)
	hubs, err := PathHierarchy(w, 2, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hubs.Levels != 10 {
		t.Errorf("levels = %d, want 10", hubs.Levels)
	}
	if hubs.ReleasedCount() >= 2*1025 {
		t.Errorf("released %d values, expected < 2V", hubs.ReleasedCount())
	}
}

func TestPathHierarchySameSeedSensitivity(t *testing.T) {
	// Same-seed audit: neighboring inputs move each released gap by at
	// most the weight change within it; per query the drift is bounded
	// by Levels (sensitivity per level is 1).
	v := 256
	w := make([]float64, v-1)
	for i := range w {
		w[i] = 2
	}
	w2 := append([]float64(nil), w...)
	w2[100] += 1
	h1, err := PathHierarchy(w, 2, Options{Epsilon: 1, Noise: dp.NewSeededNoise(7)})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := PathHierarchy(w2, 2, Options{Epsilon: 1, Noise: dp.NewSeededNoise(7)})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < v; x += 3 {
		for y := x + 1; y < v; y += 5 {
			d := math.Abs(h1.Query(x, y) - h2.Query(x, y))
			if d > float64(h1.Levels)+1e-9 {
				t.Fatalf("query (%d,%d) drifted %g > levels %d", x, y, d, h1.Levels)
			}
		}
	}
}

func TestPathHierarchyValidation(t *testing.T) {
	if _, err := PathHierarchy([]float64{1}, 1, Options{Epsilon: 1}); err == nil {
		t.Error("base=1 accepted")
	}
	if _, err := PathHierarchy(nil, 2, Options{Epsilon: 1}); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := PathHierarchy([]float64{1}, 2, Options{}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestPathHierarchyQueryPanicsOutOfRange(t *testing.T) {
	hubs, err := PathHierarchy([]float64{1, 1}, 2, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range query accepted")
		}
	}()
	hubs.Query(0, 5)
}

func TestPathHierarchyMatchesTreeMechanismScale(t *testing.T) {
	// Both polylog mechanisms should land in the same error ballpark on
	// the path graph (within an order of magnitude), far below the naive
	// sqrt(V) accumulation.
	rng := rand.New(rand.NewSource(87))
	v := 4096
	g := graph.Path(v)
	w := graph.UniformRandomWeights(g, 0, 10, rng)
	hubs, err := PathHierarchy(w, 2, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := TreeAllPairs(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	prefix := pathPrefix(w)
	worstHub, worstTree := 0.0, 0.0
	for trial := 0; trial < 1000; trial++ {
		x, y := rng.Intn(v), rng.Intn(v)
		want := math.Abs(prefix[y] - prefix[x])
		if e := math.Abs(hubs.Query(x, y) - want); e > worstHub {
			worstHub = e
		}
		if e := math.Abs(tree.Query(x, y) - want); e > worstTree {
			worstTree = e
		}
	}
	if worstHub > 10*worstTree || worstTree > 10*worstHub {
		t.Errorf("mechanisms differ too much: hubs %g vs tree %g", worstHub, worstTree)
	}
}
