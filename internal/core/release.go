package core

import (
	"repro/internal/dp"
	"repro/internal/graph"
)

// ReleasedGraph is an eps-differentially private synthetic weight vector
// for a public topology. Because differential privacy is closed under
// post-processing, any computation on Weights (shortest paths, spanning
// trees, matchings, ...) inherits the guarantee without further cost.
type ReleasedGraph struct {
	G *graph.Graph
	// Weights is w(e) + Lap(Scale/eps) per edge, plus Shift if requested.
	Weights []float64
	// Shift is the deterministic bias added to every edge (zero for
	// ReleaseGraph; (Scale/eps) log(E/gamma) for Algorithm 3).
	Shift float64
	// NoiseScale is the per-edge Laplace scale Scale/eps.
	NoiseScale float64
	// Params is the privacy guarantee.
	Params dp.PrivacyParams
}

// ReleaseGraph releases a noisy weight vector: w'(e) = w(e) +
// Lap(Scale/eps). The weight vector itself is the identity query with l1
// sensitivity Scale, so this is the Laplace mechanism and is eps-DP. With
// probability 1-gamma every edge error is below (Scale/eps) log(E/gamma),
// so every path's weight is preserved to within
// (hops * Scale/eps) log(E/gamma) and all-pairs distances to within
// (V * Scale/eps) log(E/gamma) (Section 4).
func ReleaseGraph(g *graph.Graph, w []float64, opts Options) (*ReleasedGraph, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	scale := o.Scale / o.Epsilon
	if err := o.charge("ReleaseGraph", o.pureParams()); err != nil {
		return nil, err
	}
	return &ReleasedGraph{
		G:          g,
		Weights:    dp.AddLaplace(w, scale, o.Noise),
		NoiseScale: scale,
		Params:     dp.PrivacyParams{Epsilon: o.Epsilon},
	}, nil
}

// EdgeErrorBound returns the bound that holds simultaneously for all edge
// noise magnitudes with probability 1-gamma: (NoiseScale) * log(E/gamma).
func (r *ReleasedGraph) EdgeErrorBound(gamma float64) float64 {
	m := r.G.M()
	if m == 0 {
		return 0
	}
	return dp.UnionTailBound(r.NoiseScale, m, gamma)
}

// Distance answers a distance query by Dijkstra on the released weights
// (clamped at zero, since released weights can be negative but Dijkstra
// requires nonnegative; clamping is post-processing and can only reduce
// per-edge error when true weights are nonnegative).
func (r *ReleasedGraph) Distance(s, t int) (float64, error) {
	return graph.Distance(r.G, graph.ClampWeights(r.Weights, 0, graph.Inf), s, t)
}

// AllPairs answers all-pairs distance queries on the released weights.
func (r *ReleasedGraph) AllPairs() ([][]float64, error) {
	return graph.AllPairsDistances(r.G, graph.ClampWeights(r.Weights, 0, graph.Inf))
}
