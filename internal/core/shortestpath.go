package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/graph"
)

// PrivatePaths is the output of Algorithm 3 (private shortest paths): a
// released weight vector w'(e) = w(e) + Lap(Scale/eps) + Shift with
// Shift = (Scale/eps) * log(E/gamma). Releasing w' is the Laplace
// mechanism plus a public constant, so it is eps-DP; every path extracted
// from w' is post-processing. The shift makes every released weight an
// overestimate with probability 1-gamma, which biases the shortest-path
// search toward few-hop paths: per Theorem 5.5, if a k-hop path of weight
// W exists, the released path has true weight at most
// W + (2k*Scale/eps) log(E/gamma).
type PrivatePaths struct {
	G *graph.Graph
	// Weights is the released (shifted, noisy) weight vector.
	Weights []float64
	// Shift is the deterministic per-edge bias (1/eps) log(E/gamma).
	Shift float64
	// NoiseScale is Scale/eps.
	NoiseScale float64
	// Gamma is the failure probability the shift was sized for.
	Gamma float64
	// Params is the privacy guarantee (pure eps-DP).
	Params dp.PrivacyParams

	trees []*graph.ShortestPathTree // lazily built per source
}

// PrivateShortestPaths runs Algorithm 3 on (g, w). Negative released
// weights (possible when a large negative noise draw outweighs the shift)
// are clamped to zero so that Dijkstra applies; clamping is
// post-processing and preserves privacy.
func PrivateShortestPaths(g *graph.Graph, w []float64, opts Options) (*PrivatePaths, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(w) != g.M() {
		return nil, errors.New("core: PrivateShortestPaths weight vector length mismatch")
	}
	m := g.M()
	if m == 0 {
		return nil, errors.New("core: PrivateShortestPaths on an edgeless graph")
	}
	noiseScale := o.Scale / o.Epsilon
	shift := noiseScale * math.Log(float64(m)/o.Gamma)
	if err := o.charge("PrivateShortestPaths", o.pureParams()); err != nil {
		return nil, err
	}
	// One block fill over all m edges: the release-throughput hot loop.
	released := make([]float64, m)
	o.Noise.FillLaplace(noiseScale, released)
	for e := range released {
		released[e] += w[e] + shift
		if released[e] < 0 {
			released[e] = 0
		}
	}
	return &PrivatePaths{
		G:          g,
		Weights:    released,
		Shift:      shift,
		NoiseScale: noiseScale,
		Gamma:      o.Gamma,
		Params:     dp.PrivacyParams{Epsilon: o.Epsilon},
		trees:      make([]*graph.ShortestPathTree, g.N()),
	}, nil
}

// treeFrom returns (building on first use) the shortest path tree from s
// under the released weights.
func (p *PrivatePaths) treeFrom(s int) (*graph.ShortestPathTree, error) {
	if s < 0 || s >= p.G.N() {
		return nil, fmt.Errorf("core: source %d out of range [0, %d)", s, p.G.N())
	}
	if p.trees[s] == nil {
		t, err := graph.Dijkstra(p.G, p.Weights, s)
		if err != nil {
			return nil, err
		}
		p.trees[s] = t
	}
	return p.trees[s], nil
}

// Path returns the released s-t path as edge IDs. The same release
// answers every pair without further privacy cost.
func (p *PrivatePaths) Path(s, t int) ([]int, error) {
	tree, err := p.treeFrom(s)
	if err != nil {
		return nil, err
	}
	path, ok := tree.PathTo(t)
	if !ok {
		return nil, fmt.Errorf("core: vertex %d unreachable from %d", t, s)
	}
	return path, nil
}

// PathWeight returns the true weight (under the private w) of the
// released s-t path. Only callable by the data owner; exposed for
// experiments measuring approximation error.
func (p *PrivatePaths) PathWeight(w []float64, s, t int) (float64, error) {
	path, err := p.Path(s, t)
	if err != nil {
		return 0, err
	}
	return graph.PathWeight(w, path), nil
}

// ErrorBound returns the Theorem 5.5 additive error bound for pairs
// joined by a k-hop path: (2k * Scale/eps) * log(E/gamma). It holds for
// all pairs simultaneously with probability 1-Gamma.
func (p *PrivatePaths) ErrorBound(kHops int) float64 {
	return 2 * float64(kHops) * p.NoiseScale * math.Log(float64(p.G.M())/p.Gamma)
}

// WorstCaseErrorBound returns the Corollary 5.6 bound with k = V:
// (2V * Scale/eps) * log(E/gamma).
func (p *PrivatePaths) WorstCaseErrorBound() float64 {
	return p.ErrorBound(p.G.N())
}
