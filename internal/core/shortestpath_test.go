package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"

	"repro/internal/graph"
)

func TestPrivateShortestPathsReleasesValidPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	g := graph.ConnectedErdosRenyi(60, 0.1, rng)
	w := graph.UniformRandomWeights(g, 0, 10, rng)
	pp, err := PrivateShortestPaths(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		s, u := rng.Intn(60), rng.Intn(60)
		path, err := pp.Path(s, u)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.ValidatePath(s, u, path); err != nil {
			t.Fatalf("released path invalid: %v", err)
		}
	}
}

func TestPrivateShortestPathsWeightsNonnegativeAndShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	g := graph.Grid(10)
	w := graph.UniformRandomWeights(g, 0, 1, rng)
	pp, err := PrivateShortestPaths(g, w, Options{Epsilon: 0.1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Shift <= 0 {
		t.Error("shift not positive")
	}
	for e, x := range pp.Weights {
		if x < 0 {
			t.Fatalf("released weight %d is negative: %g", e, x)
		}
	}
	wantShift := (1.0 / 0.1) * math.Log(float64(g.M())/0.05)
	if math.Abs(pp.Shift-wantShift) > 1e-9 {
		t.Errorf("shift = %g, want %g", pp.Shift, wantShift)
	}
}

func TestPrivateShortestPathsTheorem55Inequality(t *testing.T) {
	// For every pair: true weight of released path <= exact distance +
	// 2 * hops(exact shortest path) * shift, on the 1-gamma event. Fixed
	// seeds; allow the few-percent failure by counting violations.
	rng := rand.New(rand.NewSource(98))
	violations, total := 0, 0
	for trial := 0; trial < 6; trial++ {
		g := graph.ConnectedErdosRenyi(50, 0.15, rng)
		w := graph.UniformRandomWeights(g, 0, 10, rng)
		pp, err := PrivateShortestPaths(g, w, Options{Epsilon: 1, Gamma: 0.05, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 50; s += 7 {
			exactTree, err := graph.Dijkstra(g, w, s)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < 50; u++ {
				if u == s {
					continue
				}
				got, err := pp.PathWeight(w, s, u)
				if err != nil {
					t.Fatal(err)
				}
				k := exactTree.Hops(u)
				if got > exactTree.Dist[u]+pp.ErrorBound(k)+1e-9 {
					violations++
				}
				total++
			}
		}
	}
	if float64(violations) > 0.05*float64(total) {
		t.Errorf("%d of %d pairs violate the Theorem 5.5 bound", violations, total)
	}
}

func TestPrivateShortestPathsExactAtHugeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := graph.Grid(7)
	w := graph.UniformRandomWeights(g, 1, 5, rng)
	pp, err := PrivateShortestPaths(g, w, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		s, u := rng.Intn(49), rng.Intn(49)
		got, err := pp.PathWeight(w, s, u)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := graph.Distance(g, w, s, u)
		if err != nil {
			t.Fatal(err)
		}
		// At huge eps both noise and shift vanish, so released paths are
		// true shortest paths.
		if math.Abs(got-exact) > 1e-3 {
			t.Fatalf("pair (%d,%d): %g vs %g", s, u, got, exact)
		}
	}
}

func TestPrivateShortestPathsHopBiasPrefersFewHops(t *testing.T) {
	// Two s-t routes of equal true weight: 1 hop of weight 10 vs 10 hops
	// of weight 1. The shift must steer the mechanism to the 1-hop route
	// nearly always.
	rng := rand.New(rand.NewSource(100))
	g := graph.New(11)
	direct := g.AddEdge(0, 10)
	w := []float64{10}
	for i := 0; i < 10; i++ {
		g.AddEdge(i, i+1)
		w = append(w, 1)
	}
	wins := 0
	for trial := 0; trial < 50; trial++ {
		pp, err := PrivateShortestPaths(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatal(err)
		}
		path, err := pp.Path(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) == 1 && path[0] == direct {
			wins++
		}
	}
	if wins < 45 {
		t.Errorf("direct route chosen only %d/50 times", wins)
	}
}

func TestPrivateShortestPathsUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	pp, err := PrivateShortestPaths(g, []float64{1}, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Path(0, 2); err == nil {
		t.Error("unreachable pair accepted")
	}
	if _, err := pp.Path(-1, 0); err == nil {
		t.Error("bad source accepted")
	}
}

func TestPrivateShortestPathsValidation(t *testing.T) {
	if _, err := PrivateShortestPaths(graph.New(3), nil, Options{Epsilon: 1}); err == nil {
		t.Error("edgeless graph accepted")
	}
	g := graph.Path(3)
	if _, err := PrivateShortestPaths(g, []float64{1}, Options{Epsilon: 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PrivateShortestPaths(g, []float64{1, 1}, Options{}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestPrivateShortestPathsBounds(t *testing.T) {
	g := graph.Grid(5)
	pp, err := PrivateShortestPaths(g, graph.UniformWeights(g, 1), Options{Epsilon: 2, Gamma: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	k5 := pp.ErrorBound(5)
	want := 2 * 5 * (1.0 / 2) * math.Log(float64(g.M())/0.1)
	if math.Abs(k5-want) > 1e-9 {
		t.Errorf("ErrorBound(5) = %g, want %g", k5, want)
	}
	if pp.WorstCaseErrorBound() != pp.ErrorBound(g.N()) {
		t.Error("worst-case bound inconsistent")
	}
}

func TestPrivateShortestPathsDirected(t *testing.T) {
	// Section 2: shortest path results also apply to directed graphs.
	rng := rand.New(rand.NewSource(101))
	g := graph.NewDirected(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(0, 4)
	w := []float64{1, 1, 1, 1, 10}
	pp, err := PrivateShortestPaths(g, w, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	path, err := pp.Path(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidatePath(0, 4, path); err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Path(4, 0); err == nil {
		t.Error("reverse path exists in a forward-only DAG")
	}
}

func TestPrivateShortestPathsTreeCache(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	g := graph.Grid(6)
	pp, err := PrivateShortestPaths(g, graph.UniformWeights(g, 1), Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := pp.Path(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pp.Path(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Error("cached tree returned different path")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Error("cached tree returned different path")
		}
	}
}

func BenchmarkPrivateShortestPathsGrid32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Grid(32)
	w := graph.UniformRandomWeights(g, 0, 10, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp, err := PrivateShortestPaths(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pp.Path(0, g.N()-1); err != nil {
			b.Fatal(err)
		}
	}
}
