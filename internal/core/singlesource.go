package core

import (
	"fmt"
	"math"

	"repro/internal/dp"
	"repro/internal/graph"
)

// SSSPRelease holds privately released single-source distance estimates
// on a general graph.
type SSSPRelease struct {
	Source int
	// Dist[v] is the released estimate of d_w(Source, v); Inf where
	// unreachable (reachability is public topology).
	Dist []float64
	// NoiseScale is the per-query Laplace scale.
	NoiseScale float64
	// Params is the privacy guarantee.
	Params dp.PrivacyParams
}

// SingleSourceComposition releases the V-1 distances from one source on
// an arbitrary graph, implementing the remark after Theorem 4.6: each
// distance is a sensitivity-Scale query, and composing V-1 of them under
// advanced composition (Delta > 0) costs noise O(sqrt(V log 1/delta))/eps
// per query — the same V-dependence as Algorithm 2's all-pairs bound.
// With Delta == 0 it falls back to basic composition (noise (V-1)/eps).
func SingleSourceComposition(g *graph.Graph, w []float64, source int, opts Options) (*SSSPRelease, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0, %d)", source, g.N())
	}
	tree, err := graph.Dijkstra(g, w, source)
	if err != nil {
		return nil, err
	}
	k := g.N() - 1
	if k < 1 {
		k = 1
	}
	noiseScale := o.Scale * dp.NoiseScaleForKQueries(o.Params(), k)
	if err := o.charge("SingleSourceComposition", o.Params()); err != nil {
		return nil, err
	}
	// One block of noise for the reachable non-source vertices, consumed
	// in vertex order (matching the historical per-vertex sampling). The
	// counting pass shares the consumption loop's predicate so the two
	// cannot drift.
	needsNoise := func(v int) bool {
		return v != source && !math.IsInf(tree.Dist[v], 1)
	}
	noisy := 0
	for v := 0; v < g.N(); v++ {
		if needsNoise(v) {
			noisy++
		}
	}
	noise := make([]float64, noisy)
	o.Noise.FillLaplace(noiseScale, noise)
	released := make([]float64, g.N())
	next := 0
	for v := 0; v < g.N(); v++ {
		switch {
		case needsNoise(v):
			released[v] = tree.Dist[v] + noise[next]
			next++
		case v == source:
			released[v] = 0
		default:
			released[v] = math.Inf(1)
		}
	}
	return &SSSPRelease{
		Source:     source,
		Dist:       released,
		NoiseScale: noiseScale,
		Params:     o.Params(),
	}, nil
}

// ErrorBound returns the bound holding simultaneously for all V-1
// released distances with probability 1-gamma.
func (r *SSSPRelease) ErrorBound(gamma float64) float64 {
	k := len(r.Dist) - 1
	if k < 1 {
		k = 1
	}
	return dp.UnionTailBound(r.NoiseScale, k, gamma)
}

// PrivateMSTCost releases the *cost* of the minimum spanning tree (not
// the tree itself) with eps-differential privacy. In the private
// edge-weight model the MST cost is a sensitivity-Scale scalar query —
// perturbing the weights by t in l1 changes the minimum spanning tree
// cost by at most t — so the plain Laplace mechanism applies with noise
// Lap(Scale/eps) and no dependence on V at all. Contrast with [NRS07],
// which needed smooth sensitivity for the same statistic under a
// different neighboring relation; in this model the global sensitivity
// is already 1 (a point the paper's related-work discussion makes).
func PrivateMSTCost(g *graph.Graph, w []float64, opts Options) (float64, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return 0, err
	}
	_, cost, err := graph.MST(g, w)
	if err != nil {
		return 0, err
	}
	if err := o.charge("PrivateMSTCost", o.pureParams()); err != nil {
		return 0, err
	}
	return cost + o.Noise.SampleLaplace(o.Scale/o.Epsilon), nil
}
