package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"

	"repro/internal/graph"
)

func TestSingleSourceCompositionExactAtHugeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	g := graph.ConnectedErdosRenyi(50, 0.15, rng)
	w := graph.UniformRandomWeights(g, 0, 5, rng)
	// Pure DP here: basic composition's noise scale (V-1)/eps vanishes at
	// huge eps, whereas advanced composition's calibrated per-query eps
	// saturates (the e^eps term) and keeps noise non-negligible.
	rel, err := SingleSourceComposition(g, w, 3, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := graph.Dijkstra(g, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 50; v++ {
		if math.Abs(rel.Dist[v]-tree.Dist[v]) > 1e-3 {
			t.Fatalf("vertex %d: %g vs %g", v, rel.Dist[v], tree.Dist[v])
		}
	}
	if rel.Dist[3] != 0 {
		t.Error("source distance nonzero")
	}
}

func TestSingleSourceCompositionNoiseScales(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	g := graph.Grid(16) // V = 256
	w := graph.UniformWeights(g, 1)
	pure, err := SingleSourceComposition(g, w, 0, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if pure.NoiseScale != 255 {
		t.Errorf("pure noise scale = %g, want V-1 = 255", pure.NoiseScale)
	}
	approx, err := SingleSourceComposition(g, w, 0, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	// Advanced composition: ~sqrt(V) dependence, far below V.
	if approx.NoiseScale >= pure.NoiseScale/2 {
		t.Errorf("advanced noise scale %g not well below basic %g", approx.NoiseScale, pure.NoiseScale)
	}
}

func TestSingleSourceCompositionErrorWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(118))
	g := graph.Grid(12)
	w := graph.UniformRandomWeights(g, 0, 3, rng)
	rel, err := SingleSourceComposition(g, w, 5, Options{Epsilon: 1, Delta: 1e-6, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := graph.Dijkstra(g, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	bound := rel.ErrorBound(0.01)
	for v := 0; v < g.N(); v++ {
		if v == 5 {
			continue
		}
		if e := math.Abs(rel.Dist[v] - tree.Dist[v]); e > bound {
			t.Fatalf("vertex %d error %g > bound %g", v, e, bound)
		}
	}
}

func TestSingleSourceCompositionUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	rel, err := SingleSourceComposition(g, []float64{1}, 0, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rel.Dist[2], 1) {
		t.Error("unreachable vertex not Inf")
	}
}

func TestSingleSourceCompositionValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := SingleSourceComposition(g, []float64{1, 1}, 9, Options{Epsilon: 1}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := SingleSourceComposition(g, []float64{1, 1}, 0, Options{}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestPrivateMSTCostNearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(119))
	g := graph.Grid(8)
	w := graph.UniformRandomWeights(g, 0, 10, rng)
	_, exact, err := graph.MST(g, w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PrivateMSTCost(g, w, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-exact) > 1e-3 {
		t.Errorf("huge-eps cost %g vs %g", got, exact)
	}
	// At eps=1, error should be small and V-independent — a handful of
	// units regardless of graph size (fixed seed).
	got, err = PrivateMSTCost(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-exact) > 15 {
		t.Errorf("eps=1 cost error %g implausibly large", math.Abs(got-exact))
	}
}

func TestPrivateMSTCostSensitivityIsScale(t *testing.T) {
	// Perturbing weights by l1 distance t moves the exact MST cost by at
	// most t — the sensitivity-1 claim behind the mechanism.
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 30; trial++ {
		g := graph.ConnectedErdosRenyi(20, 0.3, rng)
		w := graph.UniformRandomWeights(g, 0, 5, rng)
		w2 := append([]float64(nil), w...)
		// Spread an l1 budget of 1 across random edges.
		budget := 1.0
		for budget > 1e-9 {
			i := rng.Intn(len(w2))
			d := math.Min(budget, rng.Float64()*0.3)
			if rng.Intn(2) == 0 {
				w2[i] += d
			} else {
				w2[i] = math.Max(0, w2[i]-d)
			}
			budget -= d
		}
		_, c1, err := graph.MST(g, w)
		if err != nil {
			t.Fatal(err)
		}
		_, c2, err := graph.MST(g, w2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c1-c2) > 1+1e-9 {
			t.Fatalf("MST cost moved %g under l1-1 perturbation", math.Abs(c1-c2))
		}
	}
}

func TestPrivateMSTCostValidation(t *testing.T) {
	disc := graph.New(3)
	disc.AddEdge(0, 1)
	if _, err := PrivateMSTCost(disc, []float64{1}, Options{Epsilon: 1}); err == nil {
		t.Error("disconnected accepted")
	}
	if _, err := PrivateMSTCost(graph.Path(2), []float64{1}, Options{}); err == nil {
		t.Error("bad options accepted")
	}
}
