package core

import (
	"errors"
	"math"

	"repro/internal/dp"
	"repro/internal/graph"
)

// TreeSSSP is the output of Algorithm 1: eps-DP estimates of the distance
// from the root of a tree to every other vertex.
type TreeSSSP struct {
	Root int
	// Dist[v] is the released estimate of d_w(Root, v).
	Dist []float64
	// NoiseScale is the Laplace scale of each released value,
	// Scale * L / eps with L the recursion depth bound.
	NoiseScale float64
	// Levels is L = ceil(log2 V), the bound on recursion depth and hence
	// on the total sensitivity of the released query vector.
	Levels int
	// Released counts the noisy values drawn (at most 2V).
	Released int
	// Params is the privacy guarantee (pure eps-DP).
	Params dp.PrivacyParams
}

// ErrorBound returns the per-vertex additive error that holds with
// probability 1-gamma: each estimate is a sum of at most 2L independent
// Lap(L/eps) variables, so Lemma 3.1 gives O(log^1.5 V * log(1/gamma))/eps.
func (t *TreeSSSP) ErrorBound(gamma float64) float64 {
	return dp.SumTailBound(t.NoiseScale, 2*t.Levels, gamma)
}

// treeMech carries the recursion state of Algorithm 1.
type treeMech struct {
	scale float64
	noise dp.NoiseSource
	out   []float64 // released distances indexed by original vertex ID
	buf   []float64 // reusable per-node noise block (1 + #children draws)
	rel   int
}

// TreeSingleSource runs Algorithm 1 (Theorem 4.1) on the tree graph g
// rooted at root: it recursively splits the tree at the splitter vertex
// v* into subtrees of at most half the size, releasing a noisy distance
// from the root to v* and a noisy weight for each edge from v* to its
// children, then recursing into each part.
//
// Privacy: the recursion has at most L = ceil(log2 V) value-releasing
// levels. Within one level the released values are functions of pairwise
// edge-disjoint edge sets across vertex-disjoint subtrees, so the level's
// query vector has l1 sensitivity Scale; the full query vector therefore
// has sensitivity Scale * L, and adding Lap(Scale * L / eps) noise to
// every coordinate is the Laplace mechanism at privacy eps (Lemma 3.2).
//
// Accuracy: every output distance is a sum of at most 2L released values
// along a path in the query graph, so by Lemma 3.1 each estimate errs by
// O(log^1.5 V * log(1/gamma) * Scale)/eps with probability 1-gamma.
func TreeSingleSource(g *graph.Graph, w []float64, root int, opts Options) (*TreeSSSP, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	t, err := graph.NewTree(g, root)
	if err != nil {
		return nil, err
	}
	if len(w) != g.M() {
		return nil, errors.New("core: TreeSingleSource weight vector length mismatch")
	}
	n := g.N()
	levels := 1
	if n > 1 {
		levels = int(math.Ceil(math.Log2(float64(n))))
	}
	scale := o.Scale * float64(levels) / o.Epsilon
	if err := o.charge("TreeSingleSource", o.pureParams()); err != nil {
		return nil, err
	}
	m := &treeMech{
		scale: scale,
		noise: o.Noise,
		out:   make([]float64, n),
	}
	m.solve(t, w, identity(n), 0)
	return &TreeSSSP{
		Root:       root,
		Dist:       m.out,
		NoiseScale: scale,
		Levels:     levels,
		Released:   m.rel,
		Params:     dp.PrivacyParams{Epsilon: o.Epsilon},
	}, nil
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// solve implements one node of the Algorithm 1 recursion on a materialized
// subtree t with local weights w; vertOrig maps local vertex IDs to
// original ones and base is the released distance estimate d(root(t), T)
// in the original tree.
func (m *treeMech) solve(t *graph.Tree, w []float64, vertOrig []int, base float64) {
	m.out[vertOrig[t.Root]] = base
	if t.N() == 1 {
		return
	}
	vstar := t.Splitter()

	// One noise block covers this node's releases — d(v*) plus one value
	// per child of v* — drawn in the historical order (d(v*) first).
	kids := t.Children(vstar)
	need := 1 + len(kids)
	if cap(m.buf) < need {
		m.buf = make([]float64, need)
	}
	block := m.buf[:need]
	m.noise.FillLaplace(m.scale, block)

	// Step 4: release d(v*) = d(root, v*) + noise. (When v* is the root
	// the exact distance is zero; the release still happens, matching the
	// algorithm as stated, and costs nothing extra in sensitivity.)
	dstar := base + t.TreeDistance(w, t.Root, vstar) + block[0]
	m.rel++

	// Step 6: for each child of v*, release d(child) = d(v*) + w(edge) + noise.
	childBase := make([]float64, len(kids))
	inChildSubtree := make([]bool, t.N())
	for i, h := range kids {
		childBase[i] = dstar + w[h.Edge] + block[1+i]
		m.rel++
		for _, v := range t.SubtreeVertices(h.To) {
			inChildSubtree[v] = true
		}
	}

	// Step 7: recurse on T1..Tt (the child subtrees)...
	for i, h := range kids {
		keep := t.SubtreeVertices(h.To)
		sub, subRoot, localOrig, edgeOrig := graph.ExtractSubtree(t, h.To, keep)
		subTree, err := graph.NewTree(sub, subRoot)
		if err != nil {
			panic("core: internal error: child subtree is not a tree: " + err.Error())
		}
		subW := make([]float64, len(edgeOrig))
		for j, eid := range edgeOrig {
			subW[j] = w[eid]
		}
		orig := make([]int, len(localOrig))
		for j, lv := range localOrig {
			orig[j] = vertOrig[lv]
		}
		m.solve(subTree, subW, orig, childBase[i])
	}

	// ...and on T0 (everything outside the child subtrees, rooted at the
	// current root; it contains v*, whose final estimate comes from this
	// recursion, matching step 8 of the algorithm).
	var keep0 []int
	for v := 0; v < t.N(); v++ {
		if !inChildSubtree[v] {
			keep0 = append(keep0, v)
		}
	}
	if len(keep0) > 1 {
		sub, subRoot, localOrig, edgeOrig := graph.ExtractSubtree(t, t.Root, keep0)
		subTree, err := graph.NewTree(sub, subRoot)
		if err != nil {
			panic("core: internal error: T0 is not a tree: " + err.Error())
		}
		subW := make([]float64, len(edgeOrig))
		for j, eid := range edgeOrig {
			subW[j] = w[eid]
		}
		orig := make([]int, len(localOrig))
		for j, lv := range localOrig {
			orig[j] = vertOrig[lv]
		}
		m.solve(subTree, subW, orig, base)
	}
}

// TreeAPSD is the output of Theorem 4.2: eps-DP all-pairs distance
// estimates on a tree, answered from a single-source release plus the
// public LCA structure.
type TreeAPSD struct {
	SSSP *TreeSSSP
	tree *graph.Tree
	lca  *graph.LCA
}

// TreeAllPairs releases all-pairs tree distances (Theorem 4.2): run
// Algorithm 1 from an arbitrary root, then answer d(x, y) as
// d(r, x) + d(r, y) - 2 d(r, lca(x, y)), which is pure post-processing of
// the single-source release. Per-pair error is four times the
// single-source bound; a union bound over the V(V-1)/2 pairs gives
// O(log^2.5 V * log(1/gamma) * Scale)/eps for the maximum error.
func TreeAllPairs(g *graph.Graph, w []float64, opts Options) (*TreeAPSD, error) {
	sssp, err := TreeSingleSource(g, w, 0, opts)
	if err != nil {
		return nil, err
	}
	t, err := graph.NewTree(g, 0)
	if err != nil {
		return nil, err
	}
	return &TreeAPSD{SSSP: sssp, tree: t, lca: graph.NewLCA(t)}, nil
}

// Query returns the released estimate of the x-y tree distance.
func (a *TreeAPSD) Query(x, y int) float64 {
	if x == y {
		return 0
	}
	z := a.lca.Find(x, y)
	return a.SSSP.Dist[x] + a.SSSP.Dist[y] - 2*a.SSSP.Dist[z]
}

// Matrix materializes the full all-pairs estimate matrix.
func (a *TreeAPSD) Matrix() [][]float64 {
	n := len(a.SSSP.Dist)
	d := make([][]float64, n)
	for x := 0; x < n; x++ {
		d[x] = make([]float64, n)
		for y := 0; y < n; y++ {
			if x != y {
				d[x][y] = a.Query(x, y)
			}
		}
	}
	return d
}

// PerPairErrorBound returns the additive error bound holding for one
// fixed pair with probability 1-gamma (four single-source estimates).
func (a *TreeAPSD) PerPairErrorBound(gamma float64) float64 {
	return 4 * a.SSSP.ErrorBound(gamma/3)
}

// AllPairsErrorBound returns the additive error bound holding for every
// pair simultaneously with probability 1-gamma (union bound over pairs).
func (a *TreeAPSD) AllPairsErrorBound(gamma float64) float64 {
	n := len(a.SSSP.Dist)
	pairs := n * (n - 1) / 2
	if pairs == 0 {
		pairs = 1
	}
	return a.PerPairErrorBound(gamma / float64(pairs))
}
