package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dp"

	"repro/internal/graph"
)

func coreTestTrees(rng *rand.Rand) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"P2":          graph.Path(2),
		"P64":         graph.Path(64),
		"star":        graph.Star(33),
		"balanced":    graph.BalancedBinaryTree(127),
		"caterpillar": graph.Caterpillar(9, 40),
		"random":      graph.RandomTree(90, rng),
		"prufer":      graph.RandomPruferTree(70, rng),
	}
}

func TestTreeSingleSourceExactAtHugeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for name, g := range coreTestTrees(rng) {
		w := graph.UniformRandomWeights(g, 0.5, 4, rng)
		sssp, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := graph.NewTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		exact := tr.RootDistances(w)
		for v := 0; v < g.N(); v++ {
			if math.Abs(sssp.Dist[v]-exact[v]) > 1e-3 {
				t.Fatalf("%s: vertex %d: %g vs %g", name, v, sssp.Dist[v], exact[v])
			}
		}
	}
}

func TestTreeSingleSourceNonRootSource(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := graph.BalancedBinaryTree(63)
	w := graph.UniformRandomWeights(g, 1, 2, rng)
	root := 17
	sssp, err := TreeSingleSource(g, w, root, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.NewTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	exact := tr.RootDistances(w)
	for v := 0; v < 63; v++ {
		if math.Abs(sssp.Dist[v]-exact[v]) > 1e-3 {
			t.Fatalf("vertex %d: %g vs %g", v, sssp.Dist[v], exact[v])
		}
	}
	if sssp.Root != root {
		t.Error("root not recorded")
	}
}

func TestTreeSingleSourceReleasedCount(t *testing.T) {
	// The algorithm samples at most 2V Laplace values (paper's analysis).
	rng := rand.New(rand.NewSource(74))
	for name, g := range coreTestTrees(rng) {
		w := graph.UniformRandomWeights(g, 1, 2, rng)
		sssp, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sssp.Released > 2*g.N() {
			t.Errorf("%s: released %d > 2V = %d", name, sssp.Released, 2*g.N())
		}
	}
}

func TestTreeSingleSourceLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	g := graph.Path(1024)
	w := graph.UniformWeights(g, 1)
	sssp, err := TreeSingleSource(g, w, 0, Options{Epsilon: 2, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	if sssp.Levels != 10 {
		t.Errorf("levels = %d, want 10", sssp.Levels)
	}
	if math.Abs(sssp.NoiseScale-10.0/2) > 1e-12 {
		t.Errorf("noise scale = %g, want 5", sssp.NoiseScale)
	}
}

func TestTreeSingleSourceErrorWithinBound(t *testing.T) {
	// Statistical: with fixed seeds, the max error over vertices stays
	// within the union-bound version of the Theorem 4.1 bound.
	rng := rand.New(rand.NewSource(76))
	g := graph.BalancedBinaryTree(1023)
	w := graph.UniformRandomWeights(g, 0, 10, rng)
	for trial := 0; trial < 5; trial++ {
		sssp, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := graph.NewTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		exact := tr.RootDistances(w)
		bound := sssp.ErrorBound(0.05 / float64(g.N()))
		for v := 0; v < g.N(); v++ {
			if math.Abs(sssp.Dist[v]-exact[v]) > bound {
				t.Fatalf("trial %d vertex %d: error %g > bound %g",
					trial, v, math.Abs(sssp.Dist[v]-exact[v]), bound)
			}
		}
	}
}

func TestTreeSingleSourceSameSeedSensitivity(t *testing.T) {
	// Same-seed audit: neighboring weight vectors produce outputs whose
	// per-vertex difference is at most Scale * Levels (the query-vector
	// l1 sensitivity bound), since the noise cancels exactly.
	g := graph.RandomTree(200, rand.New(rand.NewSource(77)))
	w := graph.UniformWeights(g, 3)
	w2 := append([]float64(nil), w...)
	w2[10] += 0.5
	w2[50] -= 0.5
	s1, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Noise: dp.NewSeededNoise(5)})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := TreeSingleSource(g, w2, 0, Options{Epsilon: 1, Noise: dp.NewSeededNoise(5)})
	if err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for v := range s1.Dist {
		if d := math.Abs(s1.Dist[v] - s2.Dist[v]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > float64(s1.Levels)+1e-9 {
		t.Errorf("same-seed output diff %g exceeds Levels %d", maxDiff, s1.Levels)
	}
}

func TestTreeSingleSourceScaleLinearity(t *testing.T) {
	// Same seed, two scales: the error must shrink exactly linearly.
	g := graph.BalancedBinaryTree(255)
	w := graph.UniformWeights(g, 2)
	tr, _ := graph.NewTree(g, 0)
	exact := tr.RootDistances(w)
	s1, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Scale: 1, Noise: dp.NewSeededNoise(6)})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Scale: 0.01, Noise: dp.NewSeededNoise(6)})
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact {
		e1 := s1.Dist[v] - exact[v]
		e2 := s2.Dist[v] - exact[v]
		if math.Abs(e2-0.01*e1) > 1e-9*(1+math.Abs(e1)) {
			t.Fatalf("vertex %d: scale linearity broken: %g vs %g", v, e1, e2)
		}
	}
}

func TestTreeSingleSourceRejectsNonTree(t *testing.T) {
	if _, err := TreeSingleSource(graph.Cycle(5), graph.UniformWeights(graph.Cycle(5), 1), 0, Options{Epsilon: 1}); err == nil {
		t.Error("cycle accepted")
	}
	if _, err := TreeSingleSource(graph.Path(3), []float64{1}, 0, Options{Epsilon: 1}); err == nil {
		t.Error("short weights accepted")
	}
	if _, err := TreeSingleSource(graph.Path(3), []float64{1, 1}, 0, Options{}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestTreeSingleSourceSingleton(t *testing.T) {
	g := graph.Path(1)
	sssp, err := TreeSingleSource(g, nil, 0, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sssp.Dist) != 1 || sssp.Dist[0] != 0 || sssp.Released != 0 {
		t.Errorf("singleton: %+v", sssp)
	}
}

func TestTreeAllPairsExactAtHugeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g := graph.RandomPruferTree(80, rng)
	w := graph.UniformRandomWeights(g, 0.2, 5, rng)
	apsd, err := TreeAllPairs(g, w, Options{Epsilon: 1e9, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.NewTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		x, y := rng.Intn(80), rng.Intn(80)
		exact := tr.TreeDistance(w, x, y)
		if math.Abs(apsd.Query(x, y)-exact) > 1e-3 {
			t.Fatalf("pair (%d,%d): %g vs %g", x, y, apsd.Query(x, y), exact)
		}
	}
}

func TestTreeAllPairsSelfDistanceZero(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := graph.BalancedBinaryTree(31)
	apsd, err := TreeAllPairs(g, graph.UniformWeights(g, 1), Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 31; v++ {
		if apsd.Query(v, v) != 0 {
			t.Fatal("self distance nonzero")
		}
	}
}

func TestTreeAllPairsSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	g := graph.RandomTree(50, rng)
	apsd, err := TreeAllPairs(g, graph.UniformRandomWeights(g, 1, 2, rng), Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		x, y := rng.Intn(50), rng.Intn(50)
		if apsd.Query(x, y) != apsd.Query(y, x) {
			t.Fatal("asymmetric")
		}
	}
}

func TestTreeAllPairsMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := graph.Path(20)
	apsd, err := TreeAllPairs(g, graph.UniformWeights(g, 1), Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	m := apsd.Matrix()
	if len(m) != 20 {
		t.Fatal("matrix dims")
	}
	for x := 0; x < 20; x++ {
		for y := 0; y < 20; y++ {
			if m[x][y] != apsd.Query(x, y) {
				t.Fatal("matrix disagrees with Query")
			}
		}
	}
}

func TestTreeAllPairsErrorWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	g := graph.BalancedBinaryTree(511)
	w := graph.UniformRandomWeights(g, 0, 10, rng)
	apsd, err := TreeAllPairs(g, w, Options{Epsilon: 1, Noise: dp.WrapRand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.NewTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := apsd.AllPairsErrorBound(0.05)
	worst := 0.0
	for x := 0; x < 511; x += 7 {
		for y := 0; y < 511; y += 5 {
			exact := tr.TreeDistance(w, x, y)
			if e := math.Abs(apsd.Query(x, y) - exact); e > worst {
				worst = e
			}
		}
	}
	if worst > bound {
		t.Errorf("max error %g > all-pairs bound %g", worst, bound)
	}
	if apsd.PerPairErrorBound(0.05) >= bound {
		t.Error("per-pair bound should be below all-pairs bound")
	}
}

func TestTreeAllPairsBadInputs(t *testing.T) {
	if _, err := TreeAllPairs(graph.Cycle(4), graph.UniformWeights(graph.Cycle(4), 1), Options{Epsilon: 1}); err == nil {
		t.Error("cycle accepted")
	}
}

func BenchmarkTreeSingleSource4095(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.BalancedBinaryTree(4095)
	w := graph.UniformRandomWeights(g, 0, 10, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TreeSingleSource(g, w, 0, Options{Epsilon: 1, Noise: dp.WrapRand(rng)}); err != nil {
			b.Fatal(err)
		}
	}
}
