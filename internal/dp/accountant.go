package dp

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBudgetExceeded is wrapped by the error Spend returns when an
// expenditure would exceed the budget, so callers can errors.Is on it.
var ErrBudgetExceeded = errors.New("privacy budget exceeded")

// Accountant tracks privacy budget spent by a sequence of mechanism
// invocations under basic composition (Lemma 3.3). Mechanisms in this
// repository record one Spend per Laplace-mechanism invocation, so the
// accountant's total is a valid upper bound on the privacy loss of
// everything released. It is safe for concurrent use.
type Accountant struct {
	mu     sync.Mutex
	budget PrivacyParams
	spent  PrivacyParams
	log    []SpendRecord
}

// SpendRecord is one audited budget expenditure.
type SpendRecord struct {
	Label  string
	Params PrivacyParams
}

// NewAccountant returns an accountant enforcing the given total budget.
func NewAccountant(budget PrivacyParams) *Accountant {
	return &Accountant{budget: budget}
}

// Spend records an (eps, delta) expenditure. It returns an error, and
// records nothing, if the expenditure would exceed the budget.
func (a *Accountant) Spend(label string, p PrivacyParams) error {
	if p.Epsilon < 0 || p.Delta < 0 {
		return fmt.Errorf("dp: negative privacy parameters %v", p)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	newEps := a.spent.Epsilon + p.Epsilon
	newDelta := a.spent.Delta + p.Delta
	if newEps > a.budget.Epsilon || newDelta > a.budget.Delta {
		return fmt.Errorf("dp: %w: spending %v for %q on top of %v exceeds budget %v",
			ErrBudgetExceeded, p, label, a.spent, a.budget)
	}
	a.spent = PrivacyParams{Epsilon: newEps, Delta: newDelta}
	a.log = append(a.log, SpendRecord{Label: label, Params: p})
	return nil
}

// Spent returns the total recorded expenditure.
func (a *Accountant) Spent() PrivacyParams {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Remaining returns the unspent budget.
func (a *Accountant) Remaining() PrivacyParams {
	a.mu.Lock()
	defer a.mu.Unlock()
	return PrivacyParams{
		Epsilon: a.budget.Epsilon - a.spent.Epsilon,
		Delta:   a.budget.Delta - a.spent.Delta,
	}
}

// Log returns a copy of the expenditure log.
func (a *Accountant) Log() []SpendRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]SpendRecord(nil), a.log...)
}
