package dp

import (
	"sync"
	"testing"
)

func TestAccountantSpendAndRemaining(t *testing.T) {
	a := NewAccountant(PrivacyParams{Epsilon: 2, Delta: 1e-5})
	if err := a.Spend("q1", PrivacyParams{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("q2", PrivacyParams{Epsilon: 0.5, Delta: 5e-6}); err != nil {
		t.Fatal(err)
	}
	spent := a.Spent()
	if spent.Epsilon != 1.5 || spent.Delta != 5e-6 {
		t.Errorf("spent = %v", spent)
	}
	rem := a.Remaining()
	if rem.Epsilon != 0.5 || rem.Delta != 5e-6 {
		t.Errorf("remaining = %v", rem)
	}
}

func TestAccountantRejectsOverspend(t *testing.T) {
	a := NewAccountant(PrivacyParams{Epsilon: 1})
	if err := a.Spend("big", PrivacyParams{Epsilon: 1.5}); err == nil {
		t.Fatal("overspend accepted")
	}
	// A failed spend must not be recorded.
	if a.Spent().Epsilon != 0 {
		t.Error("failed spend recorded")
	}
	if err := a.Spend("fits", PrivacyParams{Epsilon: 1}); err != nil {
		t.Errorf("exact-budget spend rejected: %v", err)
	}
	if err := a.Spend("more", PrivacyParams{Epsilon: 0.01}); err == nil {
		t.Error("spend past exhausted budget accepted")
	}
}

func TestAccountantRejectsNegative(t *testing.T) {
	a := NewAccountant(PrivacyParams{Epsilon: 1})
	if err := a.Spend("neg", PrivacyParams{Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestAccountantDeltaBudget(t *testing.T) {
	a := NewAccountant(PrivacyParams{Epsilon: 10, Delta: 1e-6})
	if err := a.Spend("d", PrivacyParams{Epsilon: 1, Delta: 1e-5}); err == nil {
		t.Error("delta overspend accepted")
	}
}

func TestAccountantLog(t *testing.T) {
	a := NewAccountant(PrivacyParams{Epsilon: 5})
	a.Spend("first", PrivacyParams{Epsilon: 1})
	a.Spend("second", PrivacyParams{Epsilon: 2})
	log := a.Log()
	if len(log) != 2 || log[0].Label != "first" || log[1].Params.Epsilon != 2 {
		t.Errorf("log = %v", log)
	}
	// The returned log is a copy.
	log[0].Label = "mutated"
	if a.Log()[0].Label != "first" {
		t.Error("log not copied")
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant(PrivacyParams{Epsilon: 100})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				a.Spend("c", PrivacyParams{Epsilon: 0.1})
			}
		}()
	}
	wg.Wait()
	// 500 spends of 0.1 = 50 <= 100: all should have succeeded.
	if got := a.Spent().Epsilon; got < 49.99 || got > 50.01 {
		t.Errorf("concurrent spent = %g, want 50", got)
	}
	if len(a.Log()) != 500 {
		t.Errorf("log entries = %d", len(a.Log()))
	}
}
