package dp

import (
	"fmt"
	"math"
)

// PrivacyParams is an (epsilon, delta) differential privacy guarantee.
// Delta = 0 is pure differential privacy.
type PrivacyParams struct {
	Epsilon float64
	Delta   float64
}

// Valid reports whether the parameters are in range.
func (p PrivacyParams) Valid() bool {
	return p.Epsilon > 0 && p.Delta >= 0 && p.Delta < 1
}

// String formats the guarantee.
func (p PrivacyParams) String() string {
	if p.Delta == 0 {
		return fmt.Sprintf("(%g)-DP", p.Epsilon)
	}
	return fmt.Sprintf("(%g, %g)-DP", p.Epsilon, p.Delta)
}

// BasicComposition returns the guarantee of the adaptive composition of k
// mechanisms, each (eps, delta)-DP: (k*eps, k*delta)-DP (Lemma 3.3).
func BasicComposition(p PrivacyParams, k int) PrivacyParams {
	if k < 1 {
		panic(fmt.Sprintf("dp: BasicComposition requires k >= 1, got %d", k))
	}
	return PrivacyParams{Epsilon: float64(k) * p.Epsilon, Delta: float64(k) * p.Delta}
}

// AdvancedComposition returns the guarantee of the adaptive composition of
// k (eps, delta)-DP mechanisms under Lemma 3.4 [DRV10, DR13]: for any
// deltaPrime > 0 the composition is (epsPrime, k*delta + deltaPrime)-DP
// with epsPrime = sqrt(2k ln(1/deltaPrime))*eps + k*eps*(e^eps - 1).
func AdvancedComposition(p PrivacyParams, k int, deltaPrime float64) PrivacyParams {
	if k < 1 {
		panic(fmt.Sprintf("dp: AdvancedComposition requires k >= 1, got %d", k))
	}
	if !(deltaPrime > 0) {
		panic(fmt.Sprintf("dp: AdvancedComposition requires deltaPrime > 0, got %g", deltaPrime))
	}
	kf := float64(k)
	eps := p.Epsilon
	epsPrime := math.Sqrt(2*kf*math.Log(1/deltaPrime))*eps + kf*eps*(math.Exp(eps)-1)
	return PrivacyParams{Epsilon: epsPrime, Delta: kf*p.Delta + deltaPrime}
}

// CalibrateAdvanced returns the largest per-mechanism epsilon eps0 such
// that the advanced composition of k (eps0, 0)-DP mechanisms is
// (eps, delta)-DP (splitting delta evenly into the composition slack).
// It inverts Lemma 3.4 by bisection. The paper's Algorithm 2 analysis
// takes eps0 = O(eps / sqrt(k ln(1/delta))); this routine returns the
// exact constant.
func CalibrateAdvanced(target PrivacyParams, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("dp: CalibrateAdvanced requires k >= 1, got %d", k))
	}
	if !(target.Epsilon > 0 && target.Delta > 0) {
		panic(fmt.Sprintf("dp: CalibrateAdvanced requires eps > 0, delta > 0, got %v", target))
	}
	if k == 1 {
		return target.Epsilon
	}
	total := func(eps0 float64) float64 {
		return AdvancedComposition(PrivacyParams{Epsilon: eps0}, k, target.Delta).Epsilon
	}
	lo, hi := 0.0, target.Epsilon
	// total is increasing in eps0; total(target.Epsilon) >= target.Epsilon
	// for k >= 2, so the root is within [0, target.Epsilon].
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if total(mid) <= target.Epsilon {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// BoostingErrorBound evaluates the error formula of the [DRV10]
// boosting-based comparator discussed in the paper's Section 1.3
// histogram formulation: with integer weights summing to w1, all-pairs
// distances can be released with additive error
// O~(sqrt(w1) * log V * log^1.5(1/delta) / eps). The mechanism itself is
// exponential-time, so (as in the paper) only the bound is used, as an
// analytic comparator in experiment E4. The constant is taken as 1; the
// comparison is about growth shape.
func BoostingErrorBound(w1 float64, v int, p PrivacyParams) float64 {
	if w1 < 0 || v < 2 || !p.Valid() || p.Delta == 0 {
		return math.NaN()
	}
	return math.Sqrt(w1) * math.Log(float64(v)) * math.Pow(math.Log(1/p.Delta), 1.5) / p.Epsilon
}

// NoiseScaleForKQueries returns the Laplace scale needed to answer k
// adaptively chosen sensitivity-1 queries with a total (eps, delta)
// guarantee. With delta = 0 it uses basic composition (scale k/eps); with
// delta > 0 it uses CalibrateAdvanced (scale 1/eps0).
func NoiseScaleForKQueries(target PrivacyParams, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("dp: NoiseScaleForKQueries requires k >= 1, got %d", k))
	}
	if target.Delta == 0 {
		return float64(k) / target.Epsilon
	}
	return 1 / CalibrateAdvanced(target, k)
}
