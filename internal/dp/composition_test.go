package dp

import (
	"math"
	"strings"
	"testing"
)

func TestPrivacyParamsValidAndString(t *testing.T) {
	if !(PrivacyParams{Epsilon: 1}).Valid() {
		t.Error("pure DP params invalid")
	}
	if (PrivacyParams{Epsilon: 0}).Valid() {
		t.Error("eps=0 valid")
	}
	if (PrivacyParams{Epsilon: 1, Delta: 1}).Valid() {
		t.Error("delta=1 valid")
	}
	if s := (PrivacyParams{Epsilon: 0.5}).String(); !strings.Contains(s, "0.5") || strings.Contains(s, ",") {
		t.Errorf("pure string = %q", s)
	}
	if s := (PrivacyParams{Epsilon: 0.5, Delta: 1e-6}).String(); !strings.Contains(s, "1e-06") {
		t.Errorf("approx string = %q", s)
	}
}

func TestBasicComposition(t *testing.T) {
	p := BasicComposition(PrivacyParams{Epsilon: 0.5, Delta: 1e-7}, 4)
	if p.Epsilon != 2 || p.Delta != 4e-7 {
		t.Errorf("basic composition = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("k=0 accepted")
		}
	}()
	BasicComposition(PrivacyParams{Epsilon: 1}, 0)
}

func TestAdvancedCompositionFormula(t *testing.T) {
	// Check against the Lemma 3.4 formula directly.
	eps, k, dp := 0.01, 100, 1e-6
	got := AdvancedComposition(PrivacyParams{Epsilon: eps}, k, dp)
	want := math.Sqrt(2*float64(k)*math.Log(1/dp))*eps + float64(k)*eps*(math.Exp(eps)-1)
	if math.Abs(got.Epsilon-want) > 1e-12 {
		t.Errorf("eps' = %g, want %g", got.Epsilon, want)
	}
	if got.Delta != dp {
		t.Errorf("delta' = %g", got.Delta)
	}
}

func TestAdvancedCompositionBeatsBasicForManyQueries(t *testing.T) {
	p := PrivacyParams{Epsilon: 0.001}
	k := 10000
	adv := AdvancedComposition(p, k, 1e-6)
	basic := BasicComposition(p, k)
	if adv.Epsilon >= basic.Epsilon {
		t.Errorf("advanced %g not better than basic %g", adv.Epsilon, basic.Epsilon)
	}
}

func TestAdvancedCompositionMonotoneInK(t *testing.T) {
	p := PrivacyParams{Epsilon: 0.01}
	prev := 0.0
	for _, k := range []int{1, 2, 10, 100, 1000} {
		e := AdvancedComposition(p, k, 1e-6).Epsilon
		if e <= prev {
			t.Fatalf("not monotone at k=%d", k)
		}
		prev = e
	}
}

func TestAdvancedCompositionValidation(t *testing.T) {
	func() {
		defer func() { _ = recover() }()
		AdvancedComposition(PrivacyParams{Epsilon: 1}, 0, 0.1)
		t.Error("k=0 accepted")
	}()
	func() {
		defer func() { _ = recover() }()
		AdvancedComposition(PrivacyParams{Epsilon: 1}, 1, 0)
		t.Error("deltaPrime=0 accepted")
	}()
}

func TestCalibrateAdvancedInverse(t *testing.T) {
	// The calibrated per-query epsilon must compose back to within the
	// target (and not be wastefully small: within 1% of tight).
	target := PrivacyParams{Epsilon: 1, Delta: 1e-6}
	for _, k := range []int{1, 2, 10, 1000, 100000} {
		eps0 := CalibrateAdvanced(target, k)
		if eps0 <= 0 {
			t.Fatalf("k=%d: eps0 = %g", k, eps0)
		}
		if k == 1 {
			if eps0 != target.Epsilon {
				t.Errorf("k=1 should return target epsilon, got %g", eps0)
			}
			continue
		}
		total := AdvancedComposition(PrivacyParams{Epsilon: eps0}, k, target.Delta)
		if total.Epsilon > target.Epsilon+1e-9 {
			t.Errorf("k=%d: composition %g exceeds target %g", k, total.Epsilon, target.Epsilon)
		}
		slack := AdvancedComposition(PrivacyParams{Epsilon: eps0 * 1.01}, k, target.Delta)
		if slack.Epsilon <= target.Epsilon {
			t.Errorf("k=%d: calibration not tight", k)
		}
	}
}

func TestCalibrateAdvancedScaling(t *testing.T) {
	// eps0 should scale like eps / sqrt(k ln 1/delta).
	target := PrivacyParams{Epsilon: 1, Delta: 1e-6}
	e100 := CalibrateAdvanced(target, 100)
	e400 := CalibrateAdvanced(target, 400)
	ratio := e100 / e400
	if ratio < 1.8 || ratio > 2.3 {
		t.Errorf("quadrupling k changed eps0 by factor %g, want ~2", ratio)
	}
}

func TestBoostingErrorBound(t *testing.T) {
	p := PrivacyParams{Epsilon: 1, Delta: 1e-6}
	// Quadrupling the total weight doubles the bound (sqrt dependence).
	b1 := BoostingErrorBound(100, 1000, p)
	b4 := BoostingErrorBound(400, 1000, p)
	if math.Abs(b4/b1-2) > 1e-9 {
		t.Errorf("quadrupled w1 changed bound by %g, want 2", b4/b1)
	}
	// Doubling V changes it only logarithmically.
	bV := BoostingErrorBound(100, 2000, p)
	if bV/b1 > 1.2 {
		t.Errorf("doubling V changed bound by %g, want log-ish", bV/b1)
	}
	// Invalid inputs yield NaN.
	for _, bad := range []float64{
		BoostingErrorBound(-1, 1000, p),
		BoostingErrorBound(100, 1, p),
		BoostingErrorBound(100, 1000, PrivacyParams{Epsilon: 1}),
	} {
		if !math.IsNaN(bad) {
			t.Errorf("invalid input returned %g, want NaN", bad)
		}
	}
}

func TestNoiseScaleForKQueries(t *testing.T) {
	pure := NoiseScaleForKQueries(PrivacyParams{Epsilon: 2}, 10)
	if pure != 5 {
		t.Errorf("pure scale = %g, want 5", pure)
	}
	approx := NoiseScaleForKQueries(PrivacyParams{Epsilon: 2, Delta: 1e-6}, 10000)
	if approx >= pure*1000 || approx <= 0 {
		t.Errorf("approx scale = %g out of plausible range", approx)
	}
	// Advanced composition should give much smaller noise than basic for
	// large k: scale ~ sqrt(k) vs k.
	basic := float64(10000) / 2
	if approx >= basic {
		t.Errorf("approx %g not better than basic %g", approx, basic)
	}
	defer func() {
		if recover() == nil {
			t.Error("k=0 accepted")
		}
	}()
	NoiseScaleForKQueries(PrivacyParams{Epsilon: 1}, 0)
}
