package dp

import (
	"fmt"
)

// ContinualCounter is the binary-tree mechanism of Dwork, Naor, Pitassi
// and Rothblum [DNPR10] for privately maintaining a running sum under
// continual observation. The paper's Appendix A observes that computing
// all-pairs distances on the path graph is exactly the problem this
// mechanism solves (edge weights are the increments; distances are
// differences of prefix sums), and PathHierarchy with Base 2 coincides
// with it; this standalone implementation makes the correspondence
// testable in both directions.
//
// The mechanism maintains a complete binary tree over the time horizon.
// Each tree node holds the sum of the increments in its dyadic interval
// plus fresh Lap(L/eps) noise, where L is the number of tree levels.
// Every increment affects exactly one node per level, so the full tree of
// released values has l1 sensitivity L under increments that change by at
// most 1, and the mechanism is eps-DP (Lemma 3.2). A prefix sum is
// assembled from at most L noisy nodes, so by Lemma 3.1 each released
// count errs by O(log^1.5 T * log(1/gamma))/eps.
type ContinualCounter struct {
	eps     float64
	horizon int // capacity T (power of two)
	levels  int
	lap     Laplace
	src     NoiseSource

	n     int       // increments received so far
	exact []float64 // exact dyadic sums, heap-ordered: node i covers its canonical interval
	noise []float64 // the noise frozen into each node when it completes
	dirty []bool    // node has been (lazily) finalized
}

// NewContinualCounter creates a counter for up to horizon increments at
// privacy eps, drawing node noise from src (nil defaults to a fixed
// seeded source, matching the historical default).
func NewContinualCounter(horizon int, eps float64, src NoiseSource) (*ContinualCounter, error) {
	if horizon < 1 {
		return nil, fmt.Errorf("dp: counter horizon must be >= 1, got %d", horizon)
	}
	if !(eps > 0) {
		return nil, fmt.Errorf("dp: counter epsilon must be positive, got %g", eps)
	}
	if src == nil {
		src = NewSeededNoise(1)
	}
	cap := 1
	levels := 1
	for cap < horizon {
		cap *= 2
		levels++
	}
	c := &ContinualCounter{
		eps:     eps,
		horizon: cap,
		levels:  levels,
		src:     src,
		exact:   make([]float64, 2*cap),
		noise:   make([]float64, 2*cap),
		dirty:   make([]bool, 2*cap),
	}
	c.lap = NewLaplace(float64(levels) / eps)
	return c, nil
}

// Levels returns the number of tree levels L (the sensitivity factor).
func (c *ContinualCounter) Levels() int { return c.levels }

// N returns the number of increments received.
func (c *ContinualCounter) N() int { return c.n }

// Append feeds the next increment (the value at time step N()). An
// increment stream is neighboring to another if their element-wise
// differences sum to at most 1 in absolute value.
func (c *ContinualCounter) Append(x float64) error {
	if c.n >= c.horizon {
		return fmt.Errorf("dp: counter horizon %d exhausted", c.horizon)
	}
	// Leaf index in the implicit heap: horizon + n.
	i := c.horizon + c.n
	c.n++
	c.exact[i] += x
	for i > 0 {
		if !c.dirty[i] {
			c.dirty[i] = true
			c.noise[i] = c.src.SampleLaplace(c.lap.Scale)
		}
		parent := i / 2
		if parent >= 1 {
			c.exact[parent] += x
		}
		i = parent
	}
	return nil
}

// Count returns the private running sum of the first t increments
// (1 <= t <= N()): the sum of at most Levels noisy dyadic nodes.
func (c *ContinualCounter) Count(t int) (float64, error) {
	if t < 1 || t > c.n {
		return 0, fmt.Errorf("dp: Count(%d) outside [1, %d]", t, c.n)
	}
	total := 0.0
	// Decompose [0, t) into maximal dyadic intervals, walking the
	// implicit segment tree: standard iterative prefix decomposition.
	lo, hi := c.horizon, c.horizon+t // leaf index range [lo, hi)
	for lo < hi {
		if lo&1 == 1 {
			total += c.exact[lo] + c.noise[lo]
			lo++
		}
		if hi&1 == 1 {
			hi--
			total += c.exact[hi] + c.noise[hi]
		}
		lo /= 2
		hi /= 2
	}
	return total, nil
}

// Range returns the private sum of increments in [from, to), assembled as
// a difference of two prefix counts when from > 0. On the path graph this
// is exactly the distance between vertices from and to.
func (c *ContinualCounter) Range(from, to int) (float64, error) {
	if from < 0 || to < from || to > c.n {
		return 0, fmt.Errorf("dp: Range(%d, %d) outside [0, %d]", from, to, c.n)
	}
	if from == to {
		return 0, nil
	}
	hiSum, err := c.Count(to)
	if err != nil {
		return 0, err
	}
	if from == 0 {
		return hiSum, nil
	}
	loSum, err := c.Count(from)
	if err != nil {
		return 0, err
	}
	return hiSum - loSum, nil
}

// ErrorBound returns the additive error bound on one Count query holding
// with probability 1-gamma: a sum of at most Levels independent
// Lap(Levels/eps) draws (Lemma 3.1).
func (c *ContinualCounter) ErrorBound(gamma float64) float64 {
	return SumTailBound(c.lap.Scale, c.levels, gamma)
}
