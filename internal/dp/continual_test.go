package dp

import (
	"math"
	"math/rand"
	"testing"
)

func TestContinualCounterExactAtHugeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	c, err := NewContinualCounter(100, 1e9, WrapRand(rng))
	if err != nil {
		t.Fatal(err)
	}
	prefix := []float64{0}
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 3
		if err := c.Append(x); err != nil {
			t.Fatal(err)
		}
		prefix = append(prefix, prefix[len(prefix)-1]+x)
	}
	for tt := 1; tt <= 100; tt++ {
		got, err := c.Count(tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-prefix[tt]) > 1e-3 {
			t.Fatalf("Count(%d) = %g, want %g", tt, got, prefix[tt])
		}
	}
}

func TestContinualCounterOnline(t *testing.T) {
	// Queries interleaved with appends must see consistent prefixes.
	rng := rand.New(rand.NewSource(111))
	c, err := NewContinualCounter(64, 1e9, WrapRand(rng))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 1; i <= 64; i++ {
		if err := c.Append(1); err != nil {
			t.Fatal(err)
		}
		sum++
		got, err := c.Count(i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-sum) > 1e-3 {
			t.Fatalf("step %d: %g vs %g", i, got, sum)
		}
	}
}

func TestContinualCounterRange(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	c, err := NewContinualCounter(32, 1e9, WrapRand(rng))
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = rng.Float64()
		if err := c.Append(xs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for from := 0; from <= 32; from += 3 {
		for to := from; to <= 32; to += 5 {
			want := 0.0
			for i := from; i < to; i++ {
				want += xs[i]
			}
			got, err := c.Range(from, to)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-3 {
				t.Fatalf("Range(%d,%d) = %g, want %g", from, to, got, want)
			}
		}
	}
}

func TestContinualCounterErrorWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	horizon := 1024
	c, err := NewContinualCounter(horizon, 1, WrapRand(rng))
	if err != nil {
		t.Fatal(err)
	}
	exact := 0.0
	prefix := make([]float64, horizon+1)
	for i := 0; i < horizon; i++ {
		x := rng.Float64()
		if err := c.Append(x); err != nil {
			t.Fatal(err)
		}
		exact += x
		prefix[i+1] = exact
	}
	bound := c.ErrorBound(0.05 / float64(horizon))
	for tt := 1; tt <= horizon; tt++ {
		got, err := c.Count(tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-prefix[tt]) > bound {
			t.Fatalf("Count(%d) error %g > bound %g", tt, math.Abs(got-prefix[tt]), bound)
		}
	}
}

func TestContinualCounterHorizonAndValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	if _, err := NewContinualCounter(0, 1, WrapRand(rng)); err == nil {
		t.Error("horizon 0 accepted")
	}
	if _, err := NewContinualCounter(4, 0, WrapRand(rng)); err == nil {
		t.Error("eps 0 accepted")
	}
	c, err := NewContinualCounter(2, 1, WrapRand(rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Count(1); err == nil {
		t.Error("count before append accepted")
	}
	c.Append(1)
	c.Append(1)
	if err := c.Append(1); err == nil {
		t.Error("append past horizon accepted")
	}
	if _, err := c.Count(3); err == nil {
		t.Error("count past n accepted")
	}
	if _, err := c.Range(2, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if got, err := c.Range(1, 1); err != nil || got != 0 {
		t.Error("empty range not zero")
	}
}

func TestContinualCounterLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	c, err := NewContinualCounter(1024, 2, WrapRand(rng))
	if err != nil {
		t.Fatal(err)
	}
	if c.Levels() != 11 { // 1024 leaves -> 11 levels including root
		t.Errorf("levels = %d, want 11", c.Levels())
	}
	c2, err := NewContinualCounter(1000, 2, WrapRand(rng)) // rounds up to 1024
	if err != nil {
		t.Fatal(err)
	}
	if c2.Levels() != c.Levels() {
		t.Error("horizon rounding changed levels")
	}
}

func TestContinualCounterSameSeedSensitivity(t *testing.T) {
	// Same-seed audit: two neighboring increment streams (one element
	// differs by 1) give counts differing by at most 1 at each time, and
	// the full released node vector differs by at most Levels in l1.
	build := func(seed int64, bump float64) *ContinualCounter {
		c, err := NewContinualCounter(64, 1, NewSeededNoise(seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			x := 1.0
			if i == 20 {
				x += bump
			}
			if err := c.Append(x); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	c1 := build(9, 0)
	c2 := build(9, 1)
	for tt := 1; tt <= 64; tt++ {
		a, _ := c1.Count(tt)
		b, _ := c2.Count(tt)
		if math.Abs(a-b) > 1+1e-9 {
			t.Fatalf("Count(%d) drifted by %g > 1", tt, math.Abs(a-b))
		}
	}
}

func TestContinualCounterStatisticalAccuracy(t *testing.T) {
	// At eps=1, T=256, the final count of an all-ones stream should be
	// near 256 (within the bound) across several seeds.
	for seed := int64(0); seed < 5; seed++ {
		c, err := NewContinualCounter(256, 1, NewSeededNoise(200+seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 256; i++ {
			c.Append(1)
		}
		got, err := c.Count(256)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-256) > c.ErrorBound(0.01) {
			t.Errorf("seed %d: Count(256) = %g, error beyond bound %g", seed, got, c.ErrorBound(0.01))
		}
	}
}
