// Package dp implements the differential privacy primitives used by the
// private edge-weight mechanisms: the Laplace distribution and mechanism
// (Definition 3.1, Lemma 3.2 [DMNS06]), concentration of Laplace sums
// (Lemma 3.1 [CSS10]), and composition calculators (Lemmas 3.3 and 3.4
// [DKM+06, DRV10, DR13]).
//
// All mechanism noise is sampled through the NoiseSource interface — the
// package's single sampling entry point. A NoiseSource hands out Laplace
// draws one at a time (SampleLaplace) or in vectorized blocks
// (FillLaplace), and comes in three flavors: crypto-grade entropy with
// buffered syscalls and parallel sharded fills (NewCryptoNoise), a
// splittable deterministic stream for reproducible experiments
// (NewSeededNoise), and an adapter sharing a caller-owned *rand.Rand
// (WrapRand). The Laplace type below remains the distribution object
// (density, quantiles, tail bounds); its scalar Sample method survives
// for distribution-level tests, but mechanisms must draw via NoiseSource.
package dp

import (
	"fmt"
	"math"
	"math/rand" //dpvet:allow noiserand -- Laplace.Sample's public API accepts a caller-supplied *rand.Rand; this file never constructs or seeds one
)

// Laplace is the Laplace distribution with mean 0 and scale b:
// density p(x) = exp(-|x|/b) / (2b). For Y ~ Lap(b),
// Pr[|Y| > t*b] = exp(-t).
type Laplace struct {
	Scale float64
}

// NewLaplace returns the Laplace distribution with the given scale. It
// panics if scale is not positive.
func NewLaplace(scale float64) Laplace {
	if !(scale > 0) || math.IsInf(scale, 1) {
		panic(fmt.Sprintf("dp: Laplace scale must be positive and finite, got %g", scale))
	}
	return Laplace{Scale: scale}
}

// Sample draws one value by inverse-CDF sampling: with U uniform on
// (-1/2, 1/2), the value -b*sgn(U)*ln(1-2|U|) is Lap(b). Mechanisms
// draw through a NoiseSource instead; this scalar entry point exists for
// distribution-level tests and for callers that already own a bare
// *rand.Rand.
func (l Laplace) Sample(rng *rand.Rand) float64 {
	return laplaceFromRand(rng, l.Scale)
}

// SampleN draws n independent values.
func (l Laplace) SampleN(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = l.Sample(rng)
	}
	return out
}

// PDF evaluates the density at x.
func (l Laplace) PDF(x float64) float64 {
	return math.Exp(-math.Abs(x)/l.Scale) / (2 * l.Scale)
}

// CDF evaluates the cumulative distribution function at x.
func (l Laplace) CDF(x float64) float64 {
	if x < 0 {
		return 0.5 * math.Exp(x/l.Scale)
	}
	return 1 - 0.5*math.Exp(-x/l.Scale)
}

// Quantile returns the p-th quantile, inverse to CDF. p must be in (0, 1).
func (l Laplace) Quantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("dp: Laplace quantile requires p in (0,1), got %g", p))
	}
	if p < 0.5 {
		return l.Scale * math.Log(2*p)
	}
	return -l.Scale * math.Log(2*(1-p))
}

// TailBound returns t such that Pr[|Y| > t] <= gamma for Y ~ Lap(b):
// t = b * ln(1/gamma).
func (l Laplace) TailBound(gamma float64) float64 {
	if !(gamma > 0 && gamma <= 1) {
		panic(fmt.Sprintf("dp: TailBound requires gamma in (0,1], got %g", gamma))
	}
	return l.Scale * math.Log(1/gamma)
}

// Variance returns the variance, 2b^2.
func (l Laplace) Variance() float64 { return 2 * l.Scale * l.Scale }

// SumTailBound bounds the magnitude of a sum of t independent Lap(b)
// variables: with probability at least 1-gamma the sum is below
// 4b*sqrt(t*ln(2/gamma)) (Lemma 3.1, [CSS10]; the lemma as stated assumes
// the subgaussian regime, which holds for the gamma used throughout).
func SumTailBound(b float64, t int, gamma float64) float64 {
	if t < 0 {
		panic("dp: SumTailBound requires t >= 0")
	}
	if !(gamma > 0 && gamma < 1) {
		panic(fmt.Sprintf("dp: SumTailBound requires gamma in (0,1), got %g", gamma))
	}
	return 4 * b * math.Sqrt(float64(t)*math.Log(2/gamma))
}

// UnionTailBound returns t such that m independent Lap(b) draws all have
// magnitude at most t except with probability gamma: t = b*ln(m/gamma).
func UnionTailBound(b float64, m int, gamma float64) float64 {
	if m <= 0 {
		panic("dp: UnionTailBound requires m >= 1")
	}
	return NewLaplace(b).TailBound(gamma / float64(m))
}
