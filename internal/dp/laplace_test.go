package dp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLaplaceValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %g accepted", bad)
				}
			}()
			NewLaplace(bad)
		}()
	}
	if l := NewLaplace(2); l.Scale != 2 {
		t.Error("scale not stored")
	}
}

func TestLaplaceSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	l := NewLaplace(3)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := l.Sample(rng)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("sample mean %g, want ~0", mean)
	}
	if math.Abs(variance-l.Variance()) > 0.5 {
		t.Errorf("sample variance %g, want ~%g", variance, l.Variance())
	}
}

func TestLaplaceTailEmpirical(t *testing.T) {
	// Pr[|Y| > t*b] = e^{-t}: check t = 1 and t = 2 empirically.
	rng := rand.New(rand.NewSource(37))
	l := NewLaplace(1.5)
	n := 100000
	over1, over2 := 0, 0
	for i := 0; i < n; i++ {
		x := math.Abs(l.Sample(rng))
		if x > 1*l.Scale {
			over1++
		}
		if x > 2*l.Scale {
			over2++
		}
	}
	p1 := float64(over1) / float64(n)
	p2 := float64(over2) / float64(n)
	if math.Abs(p1-math.Exp(-1)) > 0.01 {
		t.Errorf("Pr[|Y|>b] = %g, want %g", p1, math.Exp(-1))
	}
	if math.Abs(p2-math.Exp(-2)) > 0.01 {
		t.Errorf("Pr[|Y|>2b] = %g, want %g", p2, math.Exp(-2))
	}
}

func TestLaplaceCDFQuantileInverse(t *testing.T) {
	l := NewLaplace(2.5)
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		if p == 0 {
			p = 0.3
		}
		x := l.Quantile(p)
		return math.Abs(l.CDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if l.CDF(0) != 0.5 {
		t.Error("CDF(0) != 1/2")
	}
	if math.Abs(l.Quantile(0.5)) > 1e-12 {
		t.Error("median != 0")
	}
}

func TestLaplaceCDFMonotone(t *testing.T) {
	l := NewLaplace(1)
	prev := -1.0
	for x := -10.0; x <= 10; x += 0.25 {
		c := l.CDF(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %g", x)
		}
		prev = c
	}
}

func TestLaplacePDFIntegratesToOne(t *testing.T) {
	l := NewLaplace(1.7)
	sum := 0.0
	dx := 0.001
	for x := -40.0; x <= 40; x += dx {
		sum += l.PDF(x) * dx
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("PDF integral = %g", sum)
	}
}

func TestQuantileValidation(t *testing.T) {
	l := NewLaplace(1)
	for _, bad := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%g) accepted", bad)
				}
			}()
			l.Quantile(bad)
		}()
	}
}

func TestTailBound(t *testing.T) {
	l := NewLaplace(2)
	if got := l.TailBound(math.Exp(-3)); math.Abs(got-6) > 1e-9 {
		t.Errorf("TailBound = %g, want 6", got)
	}
	// Empirically: at most ~gamma of draws exceed the bound.
	rng := rand.New(rand.NewSource(38))
	gamma := 0.05
	bound := l.TailBound(gamma)
	n := 50000
	over := 0
	for i := 0; i < n; i++ {
		if math.Abs(l.Sample(rng)) > bound {
			over++
		}
	}
	if rate := float64(over) / float64(n); rate > gamma*1.2 {
		t.Errorf("tail rate %g exceeds gamma %g", rate, gamma)
	}
}

func TestSampleN(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	xs := NewLaplace(1).SampleN(rng, 10)
	if len(xs) != 10 {
		t.Fatal("wrong length")
	}
}

func TestSumTailBoundEmpirical(t *testing.T) {
	// Lemma 3.1: sum of t Lap(b) draws is below 4b sqrt(t ln(2/gamma))
	// with probability >= 1-gamma.
	rng := rand.New(rand.NewSource(40))
	b, tcount, gamma := 2.0, 30, 0.05
	bound := SumTailBound(b, tcount, gamma)
	l := NewLaplace(b)
	trials := 20000
	over := 0
	for i := 0; i < trials; i++ {
		sum := 0.0
		for j := 0; j < tcount; j++ {
			sum += l.Sample(rng)
		}
		if math.Abs(sum) > bound {
			over++
		}
	}
	if rate := float64(over) / float64(trials); rate > gamma {
		t.Errorf("sum tail rate %g exceeds gamma %g", rate, gamma)
	}
}

func TestSumTailBoundValidation(t *testing.T) {
	if got := SumTailBound(1, 0, 0.5); got != 0 {
		t.Errorf("t=0 bound = %g", got)
	}
	func() {
		defer func() { recover() }()
		SumTailBound(1, -1, 0.5)
		t.Error("negative t accepted")
	}()
	func() {
		defer func() { recover() }()
		SumTailBound(1, 1, 0)
		t.Error("gamma=0 accepted")
	}()
}

func TestUnionTailBoundEmpirical(t *testing.T) {
	// With probability 1-gamma, all m draws are below the bound.
	rng := rand.New(rand.NewSource(41))
	b, m, gamma := 1.0, 50, 0.1
	bound := UnionTailBound(b, m, gamma)
	l := NewLaplace(b)
	trials := 5000
	bad := 0
	for i := 0; i < trials; i++ {
		for j := 0; j < m; j++ {
			if math.Abs(l.Sample(rng)) > bound {
				bad++
				break
			}
		}
	}
	if rate := float64(bad) / float64(trials); rate > gamma {
		t.Errorf("union tail rate %g exceeds gamma %g", rate, gamma)
	}
}

func TestUnionTailBoundValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("m=0 accepted")
		}
	}()
	UnionTailBound(1, 0, 0.5)
}

func BenchmarkLaplaceSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := NewLaplace(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Sample(rng)
	}
}
