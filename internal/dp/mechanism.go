package dp

import (
	"fmt"
	"math/rand"
)

// Query is a vector-valued function of a private weight vector together
// with its global l1 sensitivity (Definition 3.2): the largest l1 change
// of the output over neighboring inputs (l1 distance at most one).
type Query struct {
	// Name describes the query, for audit trails.
	Name string
	// Sensitivity is the global l1 sensitivity Delta f.
	Sensitivity float64
	// Eval computes the exact (pre-noise) answer vector.
	Eval func(w []float64) []float64
}

// LaplaceMechanism answers q with epsilon-differential privacy by adding
// independent Lap(Delta f / epsilon) noise to each coordinate (Lemma 3.2,
// [DMNS06]).
func LaplaceMechanism(q Query, eps float64, w []float64, rng *rand.Rand) []float64 {
	if !(eps > 0) {
		panic(fmt.Sprintf("dp: LaplaceMechanism requires epsilon > 0, got %g", eps))
	}
	if !(q.Sensitivity > 0) {
		panic(fmt.Sprintf("dp: query %q has non-positive sensitivity %g", q.Name, q.Sensitivity))
	}
	ans := q.Eval(w)
	l := NewLaplace(q.Sensitivity / eps)
	out := make([]float64, len(ans))
	for i, a := range ans {
		out[i] = a + l.Sample(rng)
	}
	return out
}

// AddLaplace adds independent Lap(scale) noise to every entry of v,
// returning a new slice. It is the raw noise step used by mechanisms that
// manage their own sensitivity accounting.
func AddLaplace(v []float64, scale float64, rng *rand.Rand) []float64 {
	l := NewLaplace(scale)
	out := make([]float64, len(v))
	for i, a := range v {
		out[i] = a + l.Sample(rng)
	}
	return out
}

// MeasuredSensitivity evaluates q on a pair of weight vectors and returns
// the l1 distance of the answers. For neighboring inputs this must never
// exceed q.Sensitivity; tests use it to audit sensitivity claims.
func MeasuredSensitivity(q Query, w, w2 []float64) float64 {
	a, b := q.Eval(w), q.Eval(w2)
	if len(a) != len(b) {
		panic(fmt.Sprintf("dp: query %q returned different lengths %d and %d", q.Name, len(a), len(b)))
	}
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}
