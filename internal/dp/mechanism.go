package dp

import (
	"fmt"
)

// Query is a vector-valued function of a private weight vector together
// with its global l1 sensitivity (Definition 3.2): the largest l1 change
// of the output over neighboring inputs (l1 distance at most one).
type Query struct {
	// Name describes the query, for audit trails.
	Name string
	// Sensitivity is the global l1 sensitivity Delta f.
	Sensitivity float64
	// Eval computes the exact (pre-noise) answer vector.
	Eval func(w []float64) []float64
}

// LaplaceMechanism answers q with epsilon-differential privacy by adding
// independent Lap(Delta f / epsilon) noise to each coordinate (Lemma 3.2,
// [DMNS06]). Noise is requested from src as one block.
func LaplaceMechanism(q Query, eps float64, w []float64, src NoiseSource) []float64 {
	if !(eps > 0) {
		panic(fmt.Sprintf("dp: LaplaceMechanism requires epsilon > 0, got %g", eps))
	}
	if !(q.Sensitivity > 0) {
		panic(fmt.Sprintf("dp: query %q has non-positive sensitivity %g", q.Name, q.Sensitivity))
	}
	ans := q.Eval(w)
	out := make([]float64, len(ans))
	src.FillLaplace(q.Sensitivity/eps, out)
	for i, a := range ans {
		out[i] += a
	}
	return out
}

// AddLaplace adds independent Lap(scale) noise to every entry of v,
// returning a new slice. It is the raw noise step used by mechanisms that
// manage their own sensitivity accounting; the noise is requested from
// src as one block, so large vectors hit the vectorized fill path, and
// crypto sources additionally shard the fused fill-and-add across
// GOMAXPROCS workers.
func AddLaplace(v []float64, scale float64, src NoiseSource) []float64 {
	out := make([]float64, len(v))
	if f, ok := src.(laplaceAdder); ok {
		checkNoiseScale(scale)
		f.addLaplace(scale, v, out)
		return out
	}
	src.FillLaplace(scale, out)
	for i, a := range v {
		out[i] += a
	}
	return out
}

// MeasuredSensitivity evaluates q on a pair of weight vectors and returns
// the l1 distance of the answers. For neighboring inputs this must never
// exceed q.Sensitivity; tests use it to audit sensitivity claims.
func MeasuredSensitivity(q Query, w, w2 []float64) float64 {
	a, b := q.Eval(w), q.Eval(w2)
	if len(a) != len(b) {
		panic(fmt.Sprintf("dp: query %q returned different lengths %d and %d", q.Name, len(a), len(b)))
	}
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}
