package dp

import (
	"math"
	"math/rand"
	"testing"
)

func sumQuery() Query {
	return Query{
		Name:        "sum",
		Sensitivity: 1,
		Eval: func(w []float64) []float64 {
			total := 0.0
			for _, x := range w {
				total += x
			}
			return []float64{total}
		},
	}
}

func TestLaplaceMechanismAddsCalibratedNoise(t *testing.T) {
	src := WrapRand(rand.New(rand.NewSource(42)))
	q := sumQuery()
	w := []float64{1, 2, 3}
	eps := 0.5
	n := 50000
	var errSum, errSqSum float64
	for i := 0; i < n; i++ {
		out := LaplaceMechanism(q, eps, w, src)
		if len(out) != 1 {
			t.Fatal("wrong output length")
		}
		e := out[0] - 6
		errSum += e
		errSqSum += e * e
	}
	mean := errSum / float64(n)
	variance := errSqSum/float64(n) - mean*mean
	wantVar := 2 * (q.Sensitivity / eps) * (q.Sensitivity / eps)
	if math.Abs(mean) > 0.1 {
		t.Errorf("noise mean %g", mean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.1 {
		t.Errorf("noise variance %g, want ~%g", variance, wantVar)
	}
}

func TestLaplaceMechanismValidation(t *testing.T) {
	src := WrapRand(rand.New(rand.NewSource(43)))
	func() {
		defer func() { _ = recover() }()
		LaplaceMechanism(sumQuery(), 0, nil, src)
		t.Error("eps=0 accepted")
	}()
	func() {
		defer func() { _ = recover() }()
		q := sumQuery()
		q.Sensitivity = 0
		LaplaceMechanism(q, 1, nil, src)
		t.Error("sensitivity=0 accepted")
	}()
}

func TestAddLaplaceShape(t *testing.T) {
	src := WrapRand(rand.New(rand.NewSource(44)))
	v := []float64{5, 5, 5, 5}
	out := AddLaplace(v, 0.001, src)
	if len(out) != 4 {
		t.Fatal("length changed")
	}
	for i, x := range out {
		if math.Abs(x-5) > 0.1 {
			t.Errorf("entry %d drifted to %g with tiny noise", i, x)
		}
		if x == 5 {
			t.Errorf("entry %d got exactly zero noise", i)
		}
	}
	if v[0] != 5 {
		t.Error("input mutated")
	}
}

func TestMeasuredSensitivityAuditsSumQuery(t *testing.T) {
	// The sum query has sensitivity exactly 1 under l1-neighboring inputs.
	rng := rand.New(rand.NewSource(45))
	q := sumQuery()
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		w := make([]float64, n)
		w2 := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() * 10
			w2[i] = w[i]
		}
		// Perturb with total l1 change exactly 1.
		budget := 1.0
		for budget > 1e-9 {
			i := rng.Intn(n)
			d := math.Min(budget, rng.Float64()*0.5)
			if rng.Intn(2) == 0 {
				w2[i] += d
			} else {
				w2[i] -= d
			}
			budget -= d
		}
		if got := MeasuredSensitivity(q, w, w2); got > q.Sensitivity+1e-9 {
			t.Fatalf("measured sensitivity %g exceeds claimed %g", got, q.Sensitivity)
		}
	}
}

func TestMeasuredSensitivityLengthMismatchPanics(t *testing.T) {
	q := Query{
		Name:        "bad",
		Sensitivity: 1,
		Eval: func(w []float64) []float64 {
			return make([]float64, len(w))
		},
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	MeasuredSensitivity(q, []float64{1}, []float64{1, 2})
}

// Statistical DP check: for the Laplace mechanism on a sensitivity-1
// query, the output density ratio between neighboring inputs is bounded
// by e^eps. We verify on a discretized histogram.
func TestLaplaceMechanismDPRatio(t *testing.T) {
	src := WrapRand(rand.New(rand.NewSource(46)))
	q := sumQuery()
	eps := 1.0
	w1 := []float64{0}
	w2 := []float64{1} // neighboring: l1 distance 1
	n := 400000
	bins := make(map[int][2]int)
	for i := 0; i < n; i++ {
		a := LaplaceMechanism(q, eps, w1, src)[0]
		b := LaplaceMechanism(q, eps, w2, src)[0]
		ka := int(math.Floor(a * 2)) // bins of width 0.5
		kb := int(math.Floor(b * 2))
		pa := bins[ka]
		pa[0]++
		bins[ka] = pa
		pb := bins[kb]
		pb[1]++
		bins[kb] = pb
	}
	for bin, counts := range bins {
		if counts[0] < 500 || counts[1] < 500 {
			continue // skip noisy tails
		}
		ratio := float64(counts[0]) / float64(counts[1])
		// Allow sampling slack: the true ratio is within e^eps.
		if ratio > math.Exp(eps)*1.25 || ratio < math.Exp(-eps)/1.25 {
			t.Errorf("bin %d: likelihood ratio %g violates e^eps = %g", bin, ratio, math.Exp(eps))
		}
	}
}
