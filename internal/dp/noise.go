package dp

import (
	crand "crypto/rand"
	"fmt"
	"math"
	"math/rand"           //dpvet:allow noiserand -- blessed seeded source: deterministic replay for golden releases, opt-in via WithDeterministicSeed only
	randv2 "math/rand/v2" //dpvet:allow noiserand -- ChaCha8 from math/rand/v2 is the crypto-grade generator behind the default NoiseSource
	"runtime"
	"sync"
)

// NoiseSource is the single entry point for sampling mechanism noise.
// Every mechanism in this repository requests its Laplace draws through
// this interface — either one value at a time (SampleLaplace) or, on the
// hot release paths, a whole block at once (FillLaplace), which lets the
// implementation amortize entropy syscalls and, for non-deterministic
// sources, shard large fills across CPUs.
//
// Draw-order contract: FillLaplace(scale, dst) produces exactly the
// sequence of len(dst) consecutive SampleLaplace(scale) draws for
// deterministic sources, so refactoring a scalar sampling loop into one
// block fill never changes a seeded release.
//
// Sampling from a crypto source (SampleLaplace/FillLaplace) is confined
// to one goroutine — its stream state is unsynchronized — but Child IS
// safe to call concurrently on a crypto source: it must hand out a
// freshly seeded stream without touching the parent's stream state
// (dpgraph shares one crypto root across parallel mechanism calls).
// Seeded and wrapped sources serialize all access internally and may be
// shared freely.
type NoiseSource interface {
	// SampleLaplace draws one Lap(scale) value. It panics if scale is
	// not positive and finite (mirroring NewLaplace).
	SampleLaplace(scale float64) float64

	// FillLaplace fills dst with independent Lap(scale) draws. For
	// deterministic sources the fill is sequential and equals len(dst)
	// SampleLaplace calls; crypto sources may shard large fills across
	// GOMAXPROCS workers with independent entropy streams.
	FillLaplace(scale float64, dst []float64)

	// Child returns an independent stream for one mechanism call or one
	// parallel shard. Crypto sources return a fresh entropy-backed
	// stream with no shared state; seeded sources return a child stream
	// seeded from the root (the split sequence is part of the
	// reproducibility contract); wrapped shared streams return
	// themselves.
	Child() NoiseSource

	// Deterministic reports whether draws are reproducible from a seed.
	// Deterministic sources never parallelize fills — draw order is part
	// of their contract — so sessions using them run releases serially.
	Deterministic() bool
}

// checkNoiseScale validates a Laplace scale the way NewLaplace does.
func checkNoiseScale(scale float64) {
	if !(scale > 0) || math.IsInf(scale, 1) {
		panic(fmt.Sprintf("dp: Laplace scale must be positive and finite, got %g", scale))
	}
}

// laplaceFromRand draws one Lap(scale) value from a *rand.Rand by
// inverse-CDF sampling. This is the exact historical formula of
// Laplace.Sample; seeded sources must keep it bit-identical so checked-in
// golden releases stay valid.
//
//dpvet:hotpath
func laplaceFromRand(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	// Guard the measure-zero endpoints so Log never sees 0.
	for u == 0.5 || u == -0.5 { //dpvet:allow floatcmp -- exact endpoint rejection: 0.5 is representable and the loop re-draws on exact hits only
		u = rng.Float64() - 0.5
	}
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

// ---------------------------------------------------------------------
// Crypto-entropy source
// ---------------------------------------------------------------------

const (
	// parallelFillMin is the smallest fill a crypto source shards
	// across GOMAXPROCS workers; below it the goroutine fan-out costs
	// more than it saves.
	parallelFillMin = 1 << 15

	// parallelShardMin is the smallest per-worker shard, bounding the
	// worker count on mid-size fills.
	parallelShardMin = 1 << 13
)

// cryptoNoise expands operating-system entropy through a ChaCha8 stream
// cipher: each source draws one 32-byte seed from crypto/rand and then
// generates uniforms at memory speed, so release throughput is bounded
// by the Laplace transform rather than by getrandom syscalls (raw
// crypto/rand reads cost ~20 ns per draw; the keyed ChaCha8 expansion,
// the same construction the Go runtime uses for its internal random
// state, costs ~2 ns). Not safe for concurrent use by itself (Child
// returns independent streams for that); large FillLaplace calls shard
// internally across freshly seeded child streams.
type cryptoNoise struct {
	cha    *randv2.ChaCha8
	serial bool
}

// NewCryptoNoise returns a crypto-grade NoiseSource: a ChaCha8 stream
// seeded from crypto/rand. Seeding and reproducibility are unavailable
// by design. Large fills are sharded across GOMAXPROCS workers, each
// with its own independently seeded stream.
func NewCryptoNoise() NoiseSource {
	return newCryptoNoise(false)
}

// NewSerialCryptoNoise returns a crypto-grade NoiseSource that never
// shards fills across workers: the single-threaded baseline used by the
// throughput benchmarks and the per-shard worker streams.
func NewSerialCryptoNoise() NoiseSource {
	return newCryptoNoise(true)
}

func newCryptoNoise(serial bool) *cryptoNoise {
	var seed [32]byte
	if _, err := crand.Read(seed[:]); err != nil {
		panic(fmt.Sprintf("dp: crypto/rand read failed: %v", err))
	}
	return &cryptoNoise{cha: randv2.NewChaCha8(seed), serial: serial}
}

// uniform returns the next uniform draw in [0, 1) at float64 resolution
// (53 random bits).
//
//dpvet:hotpath
func (c *cryptoNoise) uniform() float64 {
	return float64(c.cha.Uint64()>>11) / (1 << 53)
}

func (c *cryptoNoise) SampleLaplace(scale float64) float64 {
	checkNoiseScale(scale)
	return c.laplace(scale)
}

//dpvet:hotpath
func (c *cryptoNoise) laplace(scale float64) float64 {
	u := c.uniform() - 0.5
	// u == 0.5 cannot occur: uniform() < 1.
	for u == -0.5 { //dpvet:allow floatcmp -- exact endpoint rejection before Log; -0.5 is representable
		u = c.uniform() - 0.5
	}
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

//dpvet:hotpath
func (c *cryptoNoise) FillLaplace(scale float64, dst []float64) {
	checkNoiseScale(scale)
	if !c.serial && len(dst) >= parallelFillMin && runtime.GOMAXPROCS(0) > 1 {
		fillLaplaceParallel(scale, dst)
		return
	}
	c.fillSerial(scale, dst)
}

// fillSerial converts the ChaCha8 stream into Laplace draws one value
// at a time. It performs no allocation: the stream state lives in the
// receiver and dst is caller-owned.
//
//dpvet:hotpath
func (c *cryptoNoise) fillSerial(scale float64, dst []float64) {
	for i := range dst {
		dst[i] = c.laplace(scale)
	}
}

// fillLaplaceParallel shards dst across up to GOMAXPROCS workers, each
// drawing from its own independent entropy stream. Only reached from
// non-deterministic sources, where draw order carries no contract.
func fillLaplaceParallel(scale float64, dst []float64) {
	shardRanges(len(dst), func(lo, hi int) {
		newCryptoNoise(true).fillSerial(scale, dst[lo:hi])
	})
}

// laplaceAdder is the optional fused fill-and-add fast path a
// NoiseSource may provide; AddLaplace upgrades to it when present.
// Sources whose draw order is contractual must not implement it.
type laplaceAdder interface {
	addLaplace(scale float64, v, out []float64)
}

// addLaplace writes out[i] = v[i] + Lap(scale) for all i, sharding both
// the fill and the add across workers for large vectors: the vectorized
// core of dp.AddLaplace on crypto sources. len(out) must equal len(v).
func (c *cryptoNoise) addLaplace(scale float64, v, out []float64) {
	if !c.serial && len(v) >= parallelFillMin && runtime.GOMAXPROCS(0) > 1 {
		shardRanges(len(v), func(lo, hi int) {
			part := out[lo:hi]
			newCryptoNoise(true).fillSerial(scale, part)
			for i, a := range v[lo:hi] {
				part[i] += a
			}
		})
		return
	}
	c.fillSerial(scale, out)
	for i, a := range v {
		out[i] += a
	}
}

// shardRanges splits [0, n) into up to GOMAXPROCS contiguous ranges of
// at least parallelShardMin elements and runs work on each concurrently,
// falling back to one inline call when sharding isn't worthwhile.
func shardRanges(n int, work func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if max := n / parallelShardMin; workers > max {
		workers = max
	}
	if workers < 2 {
		work(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			work(lo, hi)
		}(start, end)
	}
	wg.Wait()
}

func (c *cryptoNoise) Child() NoiseSource {
	// Fresh independent entropy stream. Child must never read the
	// parent's cha stream: dpgraph calls Child concurrently on one
	// shared crypto root (see the NoiseSource doc), so forking from the
	// parent stream here would be a data race.
	return newCryptoNoise(c.serial)
}

func (c *cryptoNoise) Deterministic() bool { return false }

// ---------------------------------------------------------------------
// Seeded (deterministic, splittable) and wrapped shared sources
// ---------------------------------------------------------------------

// seededNoise derives draws from a math/rand stream. In root mode
// (NewSeededNoise) Child splits off an independent child stream seeded
// from the root — the splittable replacement for the historical per-call
// child-seeding dance — while in shared mode (WrapRand) Child returns
// the same stream, preserving the semantics of a caller-supplied
// *rand.Rand shared across mechanism calls. All access is serialized
// internally, so a seededNoise may be handed to concurrent goroutines;
// draw order is only reproducible when calls arrive in a fixed order.
type seededNoise struct {
	mu     sync.Mutex
	rng    *rand.Rand
	shared bool
}

// NewSeededNoise returns a deterministic, splittable NoiseSource: the
// same seed always yields the same draw and split sequence. Seeded noise
// is predictable by anyone who knows the seed and therefore offers NO
// privacy; it exists for tests, benchmarks, and experiments.
func NewSeededNoise(seed int64) NoiseSource {
	return &seededNoise{rng: rand.New(rand.NewSource(seed))}
}

// WrapRand adapts a caller-supplied *rand.Rand into a NoiseSource whose
// Child is the stream itself, so successive mechanism calls consume one
// shared sequence — the contract experiments with a shared seeded stream
// rely on. Access is serialized internally.
func WrapRand(rng *rand.Rand) NoiseSource {
	return &seededNoise{rng: rng, shared: true}
}

func (s *seededNoise) SampleLaplace(scale float64) float64 {
	checkNoiseScale(scale)
	s.mu.Lock()
	defer s.mu.Unlock()
	return laplaceFromRand(s.rng, scale)
}

// FillLaplace draws sequentially under the stream lock. The explicit
// Unlock (rather than defer) keeps the guarded block-fill benchmark at
// zero overhead per fill; laplaceFromRand never panics for a scale that
// already passed checkNoiseScale, so the lock cannot leak.
//
//dpvet:hotpath
func (s *seededNoise) FillLaplace(scale float64, dst []float64) {
	checkNoiseScale(scale)
	s.mu.Lock()
	for i := range dst {
		dst[i] = laplaceFromRand(s.rng, scale)
	}
	s.mu.Unlock()
}

func (s *seededNoise) Child() NoiseSource {
	if s.shared {
		return s
	}
	s.mu.Lock()
	seed := s.rng.Int63()
	s.mu.Unlock()
	return &seededNoise{rng: rand.New(rand.NewSource(seed))}
}

func (s *seededNoise) Deterministic() bool { return true }
