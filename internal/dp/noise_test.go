package dp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// moments estimates the mean and variance of n draws pulled through fn.
func moments(n int, fn func() float64) (mean, variance float64) {
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := fn()
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestCryptoNoiseMoments(t *testing.T) {
	src := NewCryptoNoise()
	scale := 3.0
	want := NewLaplace(scale).Variance()
	mean, variance := moments(200000, func() float64 { return src.SampleLaplace(scale) })
	if math.Abs(mean) > 0.06 {
		t.Errorf("crypto Laplace mean %g, want ~0", mean)
	}
	if math.Abs(variance-want)/want > 0.1 {
		t.Errorf("crypto Laplace variance %g, want ~%g", variance, want)
	}
}

func TestCryptoNoiseFillMatchesDistribution(t *testing.T) {
	// The block fill must produce the same distribution as scalar draws:
	// check moments and the exp(-t) tail law on one large fill.
	src := NewSerialCryptoNoise()
	scale := 1.5
	dst := make([]float64, 200000)
	src.FillLaplace(scale, dst)
	sum, sumSq, over1, over2 := 0.0, 0.0, 0, 0
	for _, x := range dst {
		sum += x
		sumSq += x * x
		if math.Abs(x) > scale {
			over1++
		}
		if math.Abs(x) > 2*scale {
			over2++
		}
	}
	n := float64(len(dst))
	mean := sum / n
	variance := sumSq/n - mean*mean
	want := NewLaplace(scale).Variance()
	if math.Abs(mean) > 0.03 {
		t.Errorf("fill mean %g, want ~0", mean)
	}
	if math.Abs(variance-want)/want > 0.1 {
		t.Errorf("fill variance %g, want ~%g", variance, want)
	}
	if p := float64(over1) / n; math.Abs(p-math.Exp(-1)) > 0.01 {
		t.Errorf("Pr[|Y|>b] = %g, want %g", p, math.Exp(-1))
	}
	if p := float64(over2) / n; math.Abs(p-math.Exp(-2)) > 0.01 {
		t.Errorf("Pr[|Y|>2b] = %g, want %g", p, math.Exp(-2))
	}
}

func TestCryptoNoiseParallelFillMatchesDistribution(t *testing.T) {
	// Above the sharding threshold (with GOMAXPROCS > 1 this runs the
	// parallel path; either way the distribution must be right).
	src := NewCryptoNoise()
	scale := 2.0
	dst := make([]float64, parallelFillMin*4)
	src.FillLaplace(scale, dst)
	sum, sumSq := 0.0, 0.0
	for _, x := range dst {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("invalid draw in parallel fill")
		}
		sum += x
		sumSq += x * x
	}
	n := float64(len(dst))
	mean := sum / n
	variance := sumSq/n - mean*mean
	want := NewLaplace(scale).Variance()
	if math.Abs(mean) > 0.1 {
		t.Errorf("parallel fill mean %g, want ~0", mean)
	}
	if math.Abs(variance-want)/want > 0.1 {
		t.Errorf("parallel fill variance %g, want ~%g", variance, want)
	}
	// Every position must be written: the probability any draw is
	// exactly zero is zero.
	zeros := 0
	for _, x := range dst {
		if x == 0 {
			zeros++
		}
	}
	if zeros > 0 {
		t.Errorf("%d positions left unfilled", zeros)
	}
}

func TestCryptoNoiseChildrenIndependent(t *testing.T) {
	// Children must not share stream state with the parent or each other.
	root := NewCryptoNoise()
	a, b := root.Child(), root.Child()
	xa := a.SampleLaplace(1)
	xb := b.SampleLaplace(1)
	if xa == xb {
		t.Error("two crypto children produced identical first draws")
	}
	if root.Deterministic() {
		t.Error("crypto source claims to be deterministic")
	}
}

func TestSeededNoiseReproducible(t *testing.T) {
	a, b := NewSeededNoise(17), NewSeededNoise(17)
	for i := 0; i < 100; i++ {
		if x, y := a.SampleLaplace(2), b.SampleLaplace(2); x != y {
			t.Fatalf("draw %d diverged: %g vs %g", i, x, y)
		}
	}
	if !a.Deterministic() {
		t.Error("seeded source claims not to be deterministic")
	}
}

func TestSeededNoiseFillEqualsScalarDraws(t *testing.T) {
	// The vectorized contract: FillLaplace(scale, dst) is exactly
	// len(dst) consecutive SampleLaplace(scale) draws.
	fill, scalar := NewSeededNoise(23), NewSeededNoise(23)
	dst := make([]float64, 257)
	fill.FillLaplace(0.7, dst)
	for i, x := range dst {
		if y := scalar.SampleLaplace(0.7); x != y {
			t.Fatalf("fill[%d] = %g but scalar draw = %g", i, x, y)
		}
	}
}

func TestSeededNoiseMatchesHistoricalSampler(t *testing.T) {
	// The seeded source must stay bit-identical to the historical
	// Laplace.Sample(*rand.Rand) path: golden releases depend on it.
	src := NewSeededNoise(99)
	rng := rand.New(rand.NewSource(99))
	l := NewLaplace(1.3)
	for i := 0; i < 1000; i++ {
		if x, y := src.SampleLaplace(1.3), l.Sample(rng); x != y {
			t.Fatalf("draw %d: NoiseSource %g != historical %g", i, x, y)
		}
	}
}

func TestSeededNoiseChildSplitReproducible(t *testing.T) {
	// Splitting children from equal roots yields equal child streams —
	// the property session-level reproducibility rests on.
	a, b := NewSeededNoise(5), NewSeededNoise(5)
	for call := 0; call < 5; call++ {
		ca, cb := a.Child(), b.Child()
		for i := 0; i < 20; i++ {
			if x, y := ca.SampleLaplace(1), cb.SampleLaplace(1); x != y {
				t.Fatalf("call %d draw %d diverged", call, i)
			}
		}
	}
	// And the historical child-seeding dance is preserved exactly:
	// child = rand.New(rand.NewSource(root.Int63())).
	root := NewSeededNoise(42)
	oldRoot := rand.New(rand.NewSource(42))
	child := root.Child()
	oldChild := rand.New(rand.NewSource(oldRoot.Int63()))
	l := NewLaplace(2)
	for i := 0; i < 100; i++ {
		if x, y := child.SampleLaplace(2), l.Sample(oldChild); x != y {
			t.Fatalf("split draw %d: %g != historical %g", i, x, y)
		}
	}
}

func TestWrapRandSharesStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := WrapRand(rng)
	if src.Child() != src {
		t.Error("WrapRand child is not the same shared stream")
	}
	// Draws must consume the caller's stream exactly like the historical
	// shared-*rand.Rand path.
	ref := rand.New(rand.NewSource(7))
	l := NewLaplace(1)
	for i := 0; i < 50; i++ {
		if x, y := src.SampleLaplace(1), l.Sample(ref); x != y {
			t.Fatalf("draw %d: wrapped %g != historical %g", i, x, y)
		}
	}
}

func TestSeededNoiseConcurrentAccessSafe(t *testing.T) {
	// Shared seeded sources serialize internally; hammer one from many
	// goroutines (meaningful under -race).
	src := WrapRand(rand.New(rand.NewSource(3)))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, 64)
			for i := 0; i < 50; i++ {
				src.SampleLaplace(1)
				src.FillLaplace(1, dst)
				src.Child()
			}
		}()
	}
	wg.Wait()
}

func TestNoiseScaleValidation(t *testing.T) {
	for _, src := range []NoiseSource{NewCryptoNoise(), NewSeededNoise(1), WrapRand(rand.New(rand.NewSource(1)))} {
		for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%T accepted scale %g", src, bad)
					}
				}()
				src.SampleLaplace(bad)
			}()
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%T FillLaplace accepted scale %g", src, bad)
					}
				}()
				src.FillLaplace(bad, make([]float64, 2))
			}()
		}
	}
}

func TestAddLaplaceCryptoParallelShape(t *testing.T) {
	// The fused crypto fill-and-add must add noise to every entry and
	// leave the input untouched, including on the sharded path.
	v := make([]float64, parallelFillMin*2)
	for i := range v {
		v[i] = 5
	}
	out := AddLaplace(v, 0.001, NewCryptoNoise())
	if len(out) != len(v) {
		t.Fatal("length changed")
	}
	for i, x := range out {
		if math.Abs(x-5) > 0.2 {
			t.Fatalf("entry %d drifted to %g with tiny noise", i, x)
		}
		if x == 5 {
			t.Fatalf("entry %d got exactly zero noise", i)
		}
	}
	if v[0] != 5 {
		t.Error("input mutated")
	}
}

// TestSeededFillLaplaceLockNotLeakedOnBadScale is the regression test for
// replacing defer s.mu.Unlock() with an explicit Unlock in
// seededNoise.FillLaplace (flagged by the hotpath analyzer): the scale
// check must panic BEFORE the lock is taken, so a recovered caller can
// keep using the source. If the panic ever moved after mu.Lock, this
// test would deadlock instead of passing.
func TestSeededFillLaplaceLockNotLeakedOnBadScale(t *testing.T) {
	src := NewSeededNoise(99)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("FillLaplace accepted a non-positive scale")
			}
		}()
		src.FillLaplace(-1, make([]float64, 4))
	}()

	// The source must still be fully usable: both entry points take the
	// stream lock, so either call hangs forever if the panic leaked it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = src.SampleLaplace(1)
		src.FillLaplace(1, make([]float64, 4))
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream lock leaked by the failed FillLaplace call: follow-up draws deadlocked")
	}

	// And the draw-order contract must be unaffected by the failed call:
	// a fresh same-seed source that skips the panicking call replays the
	// same post-recovery sequence the survivor produces next.
	replay := NewSeededNoise(99)
	_ = replay.SampleLaplace(1)
	replay.FillLaplace(1, make([]float64, 4))
	a, b := make([]float64, 8), make([]float64, 8)
	src.FillLaplace(1, a)
	replay.FillLaplace(1, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged after recovered panic: %g vs %g", i, a[i], b[i])
		}
	}
}
