package dp

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	mrand "math/rand"
)

// cryptoSource is a math/rand.Source64 backed by crypto/rand, so the
// mechanisms' *rand.Rand plumbing (chosen for reproducible experiments)
// can be driven by operating-system entropy in deployments. Reads are
// buffered to amortize syscalls.
type cryptoSource struct {
	buf [512]byte
	pos int
}

// NewCryptoRand returns a *math/rand.Rand whose underlying source draws
// from crypto/rand. Seed and reproducibility are unavailable by design;
// Seed panics. Not safe for concurrent use (same contract as rand.New).
func NewCryptoRand() *mrand.Rand {
	return mrand.New(&cryptoSource{pos: len(cryptoSource{}.buf)})
}

func (s *cryptoSource) refill() {
	if _, err := rand.Read(s.buf[:]); err != nil {
		panic(fmt.Sprintf("dp: crypto/rand read failed: %v", err))
	}
	s.pos = 0
}

func (s *cryptoSource) Uint64() uint64 {
	if s.pos+8 > len(s.buf) {
		s.refill()
	}
	v := binary.LittleEndian.Uint64(s.buf[s.pos:])
	s.pos += 8
	return v
}

func (s *cryptoSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *cryptoSource) Seed(int64) {
	panic("dp: crypto-backed source cannot be seeded")
}
