package dp

import (
	"math"
	"testing"
)

func TestCryptoRandProducesValidSamples(t *testing.T) {
	rng := NewCryptoRand()
	l := NewLaplace(1)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := l.Sample(rng)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("invalid sample")
		}
		sum += x
	}
	if mean := sum / float64(n); math.Abs(mean) > 0.1 {
		t.Errorf("crypto-backed Laplace mean %g", mean)
	}
}

func TestCryptoRandUniformity(t *testing.T) {
	rng := NewCryptoRand()
	buckets := make([]int, 10)
	n := 100000
	for i := 0; i < n; i++ {
		buckets[int(rng.Float64()*10)]++
	}
	for b, count := range buckets {
		expect := n / 10
		if count < expect*8/10 || count > expect*12/10 {
			t.Errorf("bucket %d has %d of %d", b, count, n)
		}
	}
}

func TestCryptoRandSeedPanics(t *testing.T) {
	s := &cryptoSource{pos: len(cryptoSource{}.buf)}
	defer func() {
		if recover() == nil {
			t.Error("Seed did not panic")
		}
	}()
	s.Seed(42)
}

func TestCryptoSourceInt63NonNegative(t *testing.T) {
	s := &cryptoSource{pos: len(cryptoSource{}.buf)}
	for i := 0; i < 1000; i++ {
		if s.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}
