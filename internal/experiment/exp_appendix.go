package experiment

import (
	"fmt"
	"math/rand"

	"repro/dpgraph"
	"repro/internal/graph"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Private almost-minimum spanning tree: error vs V",
		Ref:   "Theorem B.3",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Private low-weight perfect matching: error vs V",
		Ref:   "Theorem B.6",
		Run:   runE12,
	})
}

// runE10 measures the excess true weight of the released spanning tree
// over the optimum on ER graphs and grids, against the Theorem B.3 bound
// 2(V-1)/eps * log(E/gamma).
func runE10(cfg Config) (*Table, error) {
	sizes := []int{256, 1024, 4096}
	trials := 6
	if cfg.Quick {
		sizes = []int{256}
		trials = 2
	}
	const eps, gamma = 1.0, 0.05
	t := &Table{
		ID:      "E10",
		Title:   "Private almost-minimum spanning tree",
		Ref:     "Theorem B.3",
		Columns: []string{"graph", "V", "excess(mean)", "excess(max)", "bound", "optWeight(mean)"},
	}
	rng := rngFor(cfg, 10)
	for _, wl := range boundedWorkloads {
		var vs, errs []float64
		for _, n := range sizes {
			g := wl.gen(n, rng)
			nn := g.N()
			excess := &stats.Summary{}
			opt := &stats.Summary{}
			var bound float64
			for trial := 0; trial < trials; trial++ {
				w := graph.UniformRandomWeights(g, 0, 10, rng)
				pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
				if err != nil {
					return nil, err
				}
				rel, err := pg.MST()
				if err != nil {
					return nil, fmt.Errorf("E10 %s V=%d: %w", wl.name, nn, err)
				}
				_, optW, err := graph.MST(g, w)
				if err != nil {
					return nil, err
				}
				excess.Add(rel.TrueWeight(w) - optW)
				opt.Add(optW)
				bound = rel.Bound(gamma)
			}
			t.AddRow(wl.name, inum(nn), fnum(excess.Mean()), fnum(excess.Max()), fnum(bound), fnum(opt.Mean()))
			vs = append(vs, float64(nn))
			errs = append(errs, excess.Mean())
		}
		if len(vs) >= 3 {
			t.AddNote("%s: log-log slope of excess vs V = %.3f (bound slope 1.0)", wl.name, stats.LogLogSlope(vs, errs))
		}
	}
	return t, nil
}

// matchingWorkloads are the graph families for E12: hourglass gadget
// unions (the paper's hard instance shape, non-bipartite components of
// size 4) and complete bipartite graphs.
var matchingWorkloads = []struct {
	name string
	gen  func(n int, rng *rand.Rand) (*graph.Graph, []float64)
}{
	{"hourglass x n/4", func(n int, rng *rand.Rand) (*graph.Graph, []float64) {
		hg := graph.NewHourglassGadget(n / 4)
		return hg.G, graph.UniformRandomWeights(hg.G, 0, 10, rng)
	}},
	{"K_{n/2,n/2}", func(n int, rng *rand.Rand) (*graph.Graph, []float64) {
		g := graph.CompleteBipartite(n/2, n/2)
		return g, graph.UniformRandomWeights(g, 0, 10, rng)
	}},
}

// runE12 measures the excess true weight of the released perfect matching
// over the optimum, against the Theorem B.6 bound (V/eps) log(E/gamma).
func runE12(cfg Config) (*Table, error) {
	sizes := []int{64, 128, 256, 512}
	trials := 6
	if cfg.Quick {
		sizes = []int{64}
		trials = 2
	}
	const eps, gamma = 1.0, 0.05
	t := &Table{
		ID:      "E12",
		Title:   "Private low-weight perfect matching",
		Ref:     "Theorem B.6",
		Columns: []string{"graph", "V", "excess(mean)", "excess(max)", "bound", "optWeight(mean)"},
	}
	rng := rngFor(cfg, 12)
	for _, wl := range matchingWorkloads {
		var vs, errs []float64
		for _, n := range sizes {
			excess := &stats.Summary{}
			opt := &stats.Summary{}
			var bound float64
			var nn int
			for trial := 0; trial < trials; trial++ {
				g, w := wl.gen(n, rng)
				nn = g.N()
				pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
				if err != nil {
					return nil, err
				}
				rel, err := pg.Matching()
				if err != nil {
					return nil, fmt.Errorf("E12 %s V=%d: %w", wl.name, nn, err)
				}
				_, optW, err := graph.MinWeightPerfectMatching(g, w)
				if err != nil {
					return nil, err
				}
				excess.Add(rel.TrueWeight(w) - optW)
				opt.Add(optW)
				bound = rel.Bound(gamma)
			}
			t.AddRow(wl.name, inum(nn), fnum(excess.Mean()), fnum(excess.Max()), fnum(bound), fnum(opt.Mean()))
			vs = append(vs, float64(nn))
			errs = append(errs, excess.Mean())
		}
		if len(vs) >= 3 {
			t.AddNote("%s: log-log slope of excess vs V = %.3f (bound slope 1.0)", wl.name, stats.LogLogSlope(vs, errs))
		}
	}
	return t, nil
}
