package experiment

import (
	"fmt"

	"repro/dpgraph"
	"repro/internal/attack"
	"repro/internal/graph"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Reconstruction attack on private shortest paths",
		Ref:   "Theorem 5.1 / Lemma 5.2",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Reconstruction attack on private spanning trees",
		Ref:   "Theorem B.1 / Lemma B.2",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Reconstruction attack on private matchings",
		Ref:   "Theorem B.4 / Lemma B.5",
		Run:   runE13,
	})
}

// attackEps are the privacy levels swept by the attack experiments: at
// small eps the mechanism must be inaccurate (Hamming distance near n/2);
// at large eps it leaks (Hamming near 0, error small) — the tradeoff the
// lower bound forces.
var attackEps = []float64{0.1, 1, 4, 10}

// runE9 runs the Lemma 5.2 adversary against Algorithm 3 on the Figure 2
// gadget. Reported: mean Hamming distance of the reconstruction, mean
// true path error, the Theorem 5.1 floor alpha(2*eps) (the adversary is
// 2eps-DP when the mechanism is eps-DP, because flipping one bit moves
// the weights by l1 distance 2), and the Lemma 5.2 check Hamming <= path
// error.
func runE9(cfg Config) (*Table, error) {
	n := 256
	trials := 10
	if cfg.Quick {
		n = 64
		trials = 3
	}
	t := &Table{
		ID:      "E9",
		Title:   "Path reconstruction attack (Figure 2 gadget)",
		Ref:     "Theorem 5.1",
		Columns: []string{"n", "eps", "hamming(mean)", "pathErr(mean)", "floor a(2eps)", "0.49n", "hamming<=pathErr"},
	}
	rng := rngFor(cfg, 9)
	gadget := graph.NewPathGadget(n)
	for _, eps := range attackEps {
		ham := &stats.Summary{}
		perr := &stats.Summary{}
		lemmaHolds := true
		for trial := 0; trial < trials; trial++ {
			x := attack.RandomBits(n, rng)
			mech := func(g *graph.Graph, w []float64, s, tt int) ([]int, error) {
				pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps))
				if err != nil {
					return nil, err
				}
				pp, err := pg.ShortestPaths()
				if err != nil {
					return nil, err
				}
				return pp.Path(s, tt)
			}
			res, err := attack.PathReconstruction(x, mech, gadget)
			if err != nil {
				return nil, fmt.Errorf("E9 eps=%g: %w", eps, err)
			}
			ham.Add(float64(res.Hamming))
			perr.Add(res.PathError)
			if float64(res.Hamming) > res.PathError {
				lemmaHolds = false
			}
		}
		floor := attack.ReconstructionBound(n, 2*eps, 0)
		t.AddRow(inum(n), fnum(eps), fnum(ham.Mean()), fnum(perr.Mean()), fnum(floor), fnum(0.49*float64(n)), fmt.Sprintf("%v", lemmaHolds))
	}
	t.AddNote("at eps << 1 the mechanism's path error is forced to ~n/2 (Theorem 5.1); at large eps the attack reconstructs most bits — accuracy and privacy trade off exactly as the reduction predicts")
	return t, nil
}

// runE11 is the spanning tree analogue on the Figure 3 (left) gadget.
func runE11(cfg Config) (*Table, error) {
	n := 256
	trials := 10
	if cfg.Quick {
		n = 64
		trials = 3
	}
	t := &Table{
		ID:      "E11",
		Title:   "MST reconstruction attack (Figure 3 left gadget)",
		Ref:     "Theorem B.1",
		Columns: []string{"n", "eps", "hamming(mean)", "treeErr(mean)", "floor a(2eps)", "hamming<=treeErr"},
	}
	rng := rngFor(cfg, 11)
	gadget := graph.NewMSTGadget(n)
	for _, eps := range attackEps {
		ham := &stats.Summary{}
		terr := &stats.Summary{}
		lemmaHolds := true
		for trial := 0; trial < trials; trial++ {
			x := attack.RandomBits(n, rng)
			mech := func(g *graph.Graph, w []float64) ([]int, error) {
				pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps))
				if err != nil {
					return nil, err
				}
				rel, err := pg.MST()
				if err != nil {
					return nil, err
				}
				return rel.Edges, nil
			}
			res, err := attack.MSTReconstruction(x, mech, gadget)
			if err != nil {
				return nil, fmt.Errorf("E11 eps=%g: %w", eps, err)
			}
			ham.Add(float64(res.Hamming))
			terr.Add(res.TreeError)
			if float64(res.Hamming) > res.TreeError {
				lemmaHolds = false
			}
		}
		floor := attack.ReconstructionBound(n, 2*eps, 0)
		t.AddRow(inum(n), fnum(eps), fnum(ham.Mean()), fnum(terr.Mean()), fnum(floor), fmt.Sprintf("%v", lemmaHolds))
	}
	return t, nil
}

// runE13 is the perfect matching analogue on the hourglass gadget.
func runE13(cfg Config) (*Table, error) {
	n := 256
	trials := 10
	if cfg.Quick {
		n = 64
		trials = 3
	}
	t := &Table{
		ID:      "E13",
		Title:   "Matching reconstruction attack (Figure 3 right gadget)",
		Ref:     "Theorem B.4",
		Columns: []string{"n", "eps", "hamming(mean)", "matchErr(mean)", "floor a(2eps)", "hamming<=matchErr"},
	}
	rng := rngFor(cfg, 13)
	gadget := graph.NewHourglassGadget(n)
	for _, eps := range attackEps {
		ham := &stats.Summary{}
		merr := &stats.Summary{}
		lemmaHolds := true
		for trial := 0; trial < trials; trial++ {
			x := attack.RandomBits(n, rng)
			mech := func(g *graph.Graph, w []float64) ([]int, error) {
				pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps))
				if err != nil {
					return nil, err
				}
				rel, err := pg.Matching()
				if err != nil {
					return nil, err
				}
				return rel.Edges, nil
			}
			res, err := attack.MatchingReconstruction(x, mech, gadget)
			if err != nil {
				return nil, fmt.Errorf("E13 eps=%g: %w", eps, err)
			}
			ham.Add(float64(res.Hamming))
			merr.Add(res.MatchingError)
			if float64(res.Hamming) > res.MatchingError {
				lemmaHolds = false
			}
		}
		floor := attack.ReconstructionBound(n, 2*eps, 0)
		t.AddRow(inum(n), fnum(eps), fnum(ham.Mean()), fnum(merr.Mean()), fnum(floor), fmt.Sprintf("%v", lemmaHolds))
	}
	return t, nil
}
