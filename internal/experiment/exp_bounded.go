package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"repro/dpgraph"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Bounded-weight graphs, (eps,delta)-DP: error vs V and M",
		Ref:   "Theorems 4.5 + 4.3 / Algorithm 2",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E5",
		Title: "Bounded-weight graphs, pure eps-DP: error vs V and M",
		Ref:   "Theorems 4.6 + 4.3",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "Grid covering vs general covering",
		Ref:   "Theorem 4.7",
		Run:   runE6,
	})
}

// boundedWorkloads are the graph families for E4/E5.
var boundedWorkloads = []struct {
	name string
	gen  func(n int, rng *rand.Rand) *graph.Graph
}{
	{"er(avg deg 8)", func(n int, rng *rand.Rand) *graph.Graph {
		return graph.ConnectedErdosRenyi(n, 8/float64(n), rng)
	}},
	{"grid", func(n int, _ *rand.Rand) *graph.Graph {
		side := int(math.Round(math.Sqrt(float64(n))))
		return graph.Grid(side)
	}},
}

// runE4 measures Algorithm 2 under (eps, delta)-DP against the advanced-
// composition baseline (noise ~ V/eps per query) and the sqrt(V*M/eps)
// shape of Theorem 4.3.
func runE4(cfg Config) (*Table, error) {
	sizes := []int{256, 1024, 4096}
	ms := []float64{1, 4, 16}
	trials := 4
	pairCount := 1000
	if cfg.Quick {
		sizes = []int{256}
		ms = []float64{4}
		trials = 2
		pairCount = 200
	}
	const eps, delta, gamma = 1.0, 1e-6, 0.05
	t := &Table{
		ID:      "E4",
		Title:   "Bounded-weight all-pairs distances, approximate DP",
		Ref:     "Theorem 4.5 + 4.3",
		Columns: []string{"graph", "V", "M", "k", "|Z|", "maxErr(mean)", "meanErr", "bound", "baselineNoise", "theory sqrt(VM/eps)", "[DRV10] bound"},
	}
	rng := rngFor(cfg, 4)
	for _, wl := range boundedWorkloads {
		for _, m := range ms {
			var vs, errs []float64
			for _, n := range sizes {
				g := wl.gen(n, rng)
				nn := g.N() // grid may round
				maxErrs := &stats.Summary{}
				meanErrs := &stats.Summary{}
				var k, zsize int
				var bound, totalWeight float64
				for trial := 0; trial < trials; trial++ {
					w := graph.UniformRandomWeights(g, 0, m, rng)
					totalWeight = graph.TotalWeight(w)
					pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithDelta(delta), dpgraph.WithGamma(gamma))
					if err != nil {
						return nil, err
					}
					rel, err := pg.BoundedAllPairs(m)
					if err != nil {
						return nil, fmt.Errorf("E4 %s V=%d M=%g: %w", wl.name, nn, m, err)
					}
					k, zsize = rel.K, rel.CoveringSize
					bound = rel.Bound(gamma)
					worst, sum := 0.0, 0.0
					pairs := samplePairs(nn, pairCount, rng)
					// Exact distances for sampled pairs, grouped by source.
					bySource := map[int][]int{}
					for _, p := range pairs {
						bySource[p[0]] = append(bySource[p[0]], p[1])
					}
					count := 0
					for s, ts := range bySource {
						tree, err := graph.Dijkstra(g, w, s)
						if err != nil {
							return nil, err
						}
						for _, tt := range ts {
							e := math.Abs(rel.Distance(s, tt) - tree.Dist[tt])
							if e > worst {
								worst = e
							}
							sum += e
							count++
						}
					}
					maxErrs.Add(worst)
					meanErrs.Add(sum / float64(count))
				}
				// Baseline: per-query noise under advanced composition over
				// all V(V-1)/2 sensitivity-1 queries.
				q := nn * (nn - 1) / 2
				baseNoise := dp.NoiseScaleForKQueries(dp.PrivacyParams{Epsilon: eps, Delta: delta}, q)
				theory := math.Sqrt(float64(nn) * m / eps)
				drv10 := dp.BoostingErrorBound(totalWeight, nn, dp.PrivacyParams{Epsilon: eps, Delta: delta})
				t.AddRow(wl.name, inum(nn), fnum(m), inum(k), inum(zsize),
					fnum(maxErrs.Mean()), fnum(meanErrs.Mean()), fnum(bound), fnum(baseNoise), fnum(theory), fnum(drv10))
				vs = append(vs, float64(nn))
				errs = append(errs, maxErrs.Mean())
			}
			if len(vs) >= 3 {
				t.AddNote("%s M=%g: log-log slope of maxErr vs V = %.3f (theory 0.5; baseline 1.0)",
					wl.name, m, stats.LogLogSlope(vs, errs))
			}
		}
	}
	t.AddNote("baselineNoise is the per-query Laplace scale of the advanced-composition baseline (Section 4); its high-probability error exceeds it by a log factor")
	t.AddNote("[DRV10] bound is the analytic error formula of the exponential-time boosting comparator (paper Section 1.3), which depends on the total weight ||w||_1 where all other columns do not")
	return t, nil
}

// runE5 is the pure-DP analogue: error shape (V*M)^{2/3} / eps^{1/3}.
func runE5(cfg Config) (*Table, error) {
	sizes := []int{256, 1024, 4096}
	ms := []float64{1, 4}
	trials := 4
	pairCount := 800
	if cfg.Quick {
		sizes = []int{256}
		ms = []float64{1}
		trials = 2
		pairCount = 200
	}
	const eps, gamma = 1.0, 0.05
	t := &Table{
		ID:      "E5",
		Title:   "Bounded-weight all-pairs distances, pure DP",
		Ref:     "Theorem 4.6 + 4.3",
		Columns: []string{"graph", "V", "M", "k", "|Z|", "maxErr(mean)", "bound", "theory (VM)^{2/3}/eps^{1/3}"},
	}
	rng := rngFor(cfg, 5)
	for _, wl := range boundedWorkloads {
		for _, m := range ms {
			var vs, errs []float64
			for _, n := range sizes {
				g := wl.gen(n, rng)
				nn := g.N()
				maxErrs := &stats.Summary{}
				var k, zsize int
				var bound float64
				for trial := 0; trial < trials; trial++ {
					w := graph.UniformRandomWeights(g, 0, m, rng)
					pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
					if err != nil {
						return nil, err
					}
					rel, err := pg.BoundedAllPairs(m)
					if err != nil {
						return nil, fmt.Errorf("E5 %s V=%d M=%g: %w", wl.name, nn, m, err)
					}
					k, zsize = rel.K, rel.CoveringSize
					bound = rel.Bound(gamma)
					worst := 0.0
					pairs := samplePairs(nn, pairCount, rng)
					bySource := map[int][]int{}
					for _, p := range pairs {
						bySource[p[0]] = append(bySource[p[0]], p[1])
					}
					for s, ts := range bySource {
						tree, err := graph.Dijkstra(g, w, s)
						if err != nil {
							return nil, err
						}
						for _, tt := range ts {
							if e := math.Abs(rel.Distance(s, tt) - tree.Dist[tt]); e > worst {
								worst = e
							}
						}
					}
					maxErrs.Add(worst)
				}
				theory := math.Pow(float64(nn)*m, 2.0/3.0) / math.Cbrt(eps)
				t.AddRow(wl.name, inum(nn), fnum(m), inum(k), inum(zsize), fnum(maxErrs.Mean()), fnum(bound), fnum(theory))
				vs = append(vs, float64(nn))
				errs = append(errs, maxErrs.Mean())
			}
			if len(vs) >= 3 {
				t.AddNote("%s M=%g: log-log slope of maxErr vs V = %.3f (theory 2/3)", wl.name, m, stats.LogLogSlope(vs, errs))
			}
		}
	}
	return t, nil
}

// runE6 compares the Theorem 4.7 grid covering (|Z| ~ V^{1/3}) against
// the general Lemma 4.4 covering at the same radius on square grids.
func runE6(cfg Config) (*Table, error) {
	sides := []int{16, 32, 64}
	trials := 3
	pairCount := 600
	if cfg.Quick {
		sides = []int{16}
		trials = 2
		pairCount = 150
	}
	const eps, delta, gamma, m = 1.0, 1e-6, 0.05, 1.0
	t := &Table{
		ID:      "E6",
		Title:   "Grid covering (Thm 4.7) vs general covering (Lemma 4.4)",
		Ref:     "Theorem 4.7",
		Columns: []string{"V", "k", "|Z| grid", "|Z| general", "maxErr grid", "maxErr general", "theory V^{1/3}M"},
	}
	rng := rngFor(cfg, 6)
	for _, side := range sides {
		g := graph.Grid(side)
		n := g.N()
		s := int(math.Ceil(math.Cbrt(float64(n))))
		zGrid := graph.GridCovering(side, s)
		k := 2 * (s - 1)
		if k < 1 {
			k = 1
		}
		zGen, err := graph.Covering(g, k)
		if err != nil {
			return nil, err
		}
		gridMax := &stats.Summary{}
		genMax := &stats.Summary{}
		for trial := 0; trial < trials; trial++ {
			w := graph.UniformRandomWeights(g, 0, m, rng)
			pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithDelta(delta), dpgraph.WithGamma(gamma))
			if err != nil {
				return nil, err
			}
			relGrid, err := pg.CoveringAllPairs(zGrid, k, m)
			if err != nil {
				return nil, fmt.Errorf("E6 side=%d grid covering: %w", side, err)
			}
			relGen, err := pg.CoveringAllPairs(zGen, k, m)
			if err != nil {
				return nil, fmt.Errorf("E6 side=%d general covering: %w", side, err)
			}
			wg, wn := 0.0, 0.0
			pairs := samplePairs(n, pairCount, rng)
			bySource := map[int][]int{}
			for _, p := range pairs {
				bySource[p[0]] = append(bySource[p[0]], p[1])
			}
			for src, ts := range bySource {
				tree, err := graph.Dijkstra(g, w, src)
				if err != nil {
					return nil, err
				}
				for _, tt := range ts {
					if e := math.Abs(relGrid.Distance(src, tt) - tree.Dist[tt]); e > wg {
						wg = e
					}
					if e := math.Abs(relGen.Distance(src, tt) - tree.Dist[tt]); e > wn {
						wn = e
					}
				}
			}
			gridMax.Add(wg)
			genMax.Add(wn)
		}
		theory := math.Cbrt(float64(n)) * m
		t.AddRow(inum(n), inum(k), inum(len(zGrid)), inum(len(zGen)), fnum(gridMax.Mean()), fnum(genMax.Mean()), fnum(theory))
	}
	t.AddNote("the structured grid covering keeps |Z| near V^{1/3}, so its noise term stays near the Theorem 4.7 bound while the general covering pays |Z| ~ V/(k+1)")
	return t, nil
}
