package experiment

import (
	"fmt"
	"math"

	"repro/dpgraph"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Covering ablation: Lemma 4.4 construction vs greedy",
		Ref:   "Lemma 4.4 / Theorem 4.5 (design-choice ablation)",
		Run:   runE16,
	})
	register(Experiment{
		ID:    "E17",
		Title: "Single-source distances: composition remark vs tree mechanism",
		Ref:   "remark after Theorem 4.6 / Theorem 4.1",
		Run:   runE17,
	})
	register(Experiment{
		ID:    "E18",
		Title: "Continual counter equals path-graph distances",
		Ref:   "Appendix A / [DNPR10]",
		Run:   runE18,
	})
}

// runE16 ablates the covering construction inside Algorithm 2: the
// Lemma 4.4 spanning-tree residue classes versus a greedy set-cover
// heuristic, comparing covering sizes and resulting end-to-end error on
// the same graphs. Smaller |Z| means less composition noise, so covering
// quality translates directly into accuracy.
func runE16(cfg Config) (*Table, error) {
	sizes := []int{256, 1024}
	ks := []int{4, 8, 16}
	trials := 3
	pairCount := 400
	if cfg.Quick {
		sizes = []int{256}
		ks = []int{8}
		trials = 2
		pairCount = 100
	}
	const eps, delta, gamma, m = 1.0, 1e-6, 0.05, 1.0
	t := &Table{
		ID:      "E16",
		Title:   "Covering construction ablation",
		Ref:     "Lemma 4.4",
		Columns: []string{"graph", "V", "k", "|Z| lemma", "|Z| greedy", "bound V/(k+1)", "maxErr lemma", "maxErr greedy"},
	}
	rng := rngFor(cfg, 16)
	for _, wl := range boundedWorkloads {
		for _, n := range sizes {
			g := wl.gen(n, rng)
			nn := g.N()
			for _, k := range ks {
				zLemma, err := graph.Covering(g, k)
				if err != nil {
					return nil, fmt.Errorf("E16 %s V=%d k=%d: %w", wl.name, nn, k, err)
				}
				zGreedy, err := graph.GreedyCovering(g, k)
				if err != nil {
					return nil, err
				}
				lemmaMax := &stats.Summary{}
				greedyMax := &stats.Summary{}
				for trial := 0; trial < trials; trial++ {
					w := graph.UniformRandomWeights(g, 0, m, rng)
					pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithDelta(delta), dpgraph.WithGamma(gamma))
					if err != nil {
						return nil, err
					}
					relL, err := pg.CoveringAllPairs(zLemma, k, m)
					if err != nil {
						return nil, err
					}
					relG, err := pg.CoveringAllPairs(zGreedy, k, m)
					if err != nil {
						return nil, err
					}
					wl2, wg := 0.0, 0.0
					pairs := samplePairs(nn, pairCount, rng)
					bySource := map[int][]int{}
					for _, p := range pairs {
						bySource[p[0]] = append(bySource[p[0]], p[1])
					}
					for s, ts := range bySource {
						tree, err := graph.Dijkstra(g, w, s)
						if err != nil {
							return nil, err
						}
						for _, tt := range ts {
							if e := math.Abs(relL.Distance(s, tt) - tree.Dist[tt]); e > wl2 {
								wl2 = e
							}
							if e := math.Abs(relG.Distance(s, tt) - tree.Dist[tt]); e > wg {
								wg = e
							}
						}
					}
					lemmaMax.Add(wl2)
					greedyMax.Add(wg)
				}
				t.AddRow(wl.name, inum(nn), inum(k), inum(len(zLemma)), inum(len(zGreedy)),
					inum(nn/(k+1)), fnum(lemmaMax.Mean()), fnum(greedyMax.Mean()))
			}
		}
	}
	t.AddNote("greedy coverings are often smaller than the Lemma 4.4 guarantee, cutting the Z^2-composition noise; the lemma's construction is what admits the worst-case bound")
	return t, nil
}

// runE17 validates the remark after Theorem 4.6: releasing V-1
// single-source distances directly under advanced composition has noise
// ~sqrt(V)/eps, the same V-dependence as the all-pairs covering bound —
// and on trees Algorithm 1 beats both exponentially.
func runE17(cfg Config) (*Table, error) {
	sizes := []int{256, 1024, 4096}
	trials := 4
	if cfg.Quick {
		sizes = []int{256}
		trials = 2
	}
	const eps, delta, gamma = 1.0, 1e-6, 0.05
	t := &Table{
		ID:      "E17",
		Title:   "Single-source release strategies",
		Ref:     "remark after Theorem 4.6",
		Columns: []string{"V", "composition maxErr", "comp noise scale", "tree maxErr (on tree)", "theory sqrt(2V ln 1/d)/eps"},
	}
	rng := rngFor(cfg, 17)
	var vs, errs []float64
	for _, n := range sizes {
		g := graph.ConnectedErdosRenyi(n, 8/float64(n), rng)
		tree := graph.BalancedBinaryTree(n)
		compMax := &stats.Summary{}
		treeMax := &stats.Summary{}
		var noiseScale float64
		for trial := 0; trial < trials; trial++ {
			w := graph.UniformRandomWeights(g, 0, 10, rng)
			pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithDelta(delta), dpgraph.WithGamma(gamma))
			if err != nil {
				return nil, err
			}
			rel, err := pg.SingleSource(0)
			if err != nil {
				return nil, fmt.Errorf("E17 V=%d: %w", n, err)
			}
			noiseScale = rel.NoiseScale
			exact, err := graph.Dijkstra(g, w, 0)
			if err != nil {
				return nil, err
			}
			worst := 0.0
			for v := 1; v < n; v++ {
				if e := math.Abs(rel.Dist[v] - exact.Dist[v]); e > worst {
					worst = e
				}
			}
			compMax.Add(worst)

			tw := graph.UniformRandomWeights(tree, 0, 10, rng)
			tpg, err := session(tree, tw, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
			if err != nil {
				return nil, err
			}
			sssp, err := tpg.TreeSingleSource(0)
			if err != nil {
				return nil, err
			}
			tr, err := graph.NewTree(tree, 0)
			if err != nil {
				return nil, err
			}
			texact := tr.RootDistances(tw)
			worst = 0
			for v := 0; v < n; v++ {
				if e := math.Abs(sssp.Dist[v] - texact[v]); e > worst {
					worst = e
				}
			}
			treeMax.Add(worst)
		}
		theory := math.Sqrt(2*float64(n)*math.Log(1/delta)) / eps
		t.AddRow(inum(n), fnum(compMax.Mean()), fnum(noiseScale), fnum(treeMax.Mean()), fnum(theory))
		vs = append(vs, float64(n))
		errs = append(errs, compMax.Mean())
	}
	if len(vs) >= 3 {
		t.AddNote("log-log slope of composition maxErr vs V = %.3f (theory 0.5); the tree mechanism's polylog column grows far slower but applies only to trees",
			stats.LogLogSlope(vs, errs))
	}
	return t, nil
}

// runE18 demonstrates the Appendix A equivalence: the [DNPR10] continual
// counter fed the path graph's edge weights answers distance queries with
// the same guarantee as PathHierarchy, and the two mechanisms' measured
// errors track each other.
func runE18(cfg Config) (*Table, error) {
	sizes := []int{128, 512, 2048, 8192}
	trials := 6
	pairCount := 800
	if cfg.Quick {
		sizes = []int{128}
		trials = 2
		pairCount = 150
	}
	const eps, gamma = 1.0, 0.05
	t := &Table{
		ID:      "E18",
		Title:   "Continual counter vs path hierarchy",
		Ref:     "Appendix A / [DNPR10]",
		Columns: []string{"V", "counter maxErr", "hubs maxErr", "counter bound", "hub bound"},
	}
	rng := rngFor(cfg, 18)
	for _, v := range sizes {
		counterMax := &stats.Summary{}
		hubMax := &stats.Summary{}
		var cBound, hBound float64
		for trial := 0; trial < trials; trial++ {
			w := make([]float64, v-1)
			for i := range w {
				w[i] = rng.Float64() * 10
			}
			prefix := make([]float64, v)
			for i, x := range w {
				prefix[i+1] = prefix[i] + x
			}
			counter, err := dp.NewContinualCounter(v-1, eps, dp.WrapRand(rng))
			if err != nil {
				return nil, err
			}
			for _, x := range w {
				if err := counter.Append(x); err != nil {
					return nil, err
				}
			}
			ppg, err := session(graph.Path(v), w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
			if err != nil {
				return nil, err
			}
			hubs, err := ppg.PathHierarchy(2)
			if err != nil {
				return nil, err
			}
			wc, wh := 0.0, 0.0
			pairs := samplePairs(v, pairCount, rng)
			for _, p := range pairs {
				x, y := p[0], p[1]
				if x > y {
					x, y = y, x
				}
				exact := prefix[y] - prefix[x]
				got, err := counter.Range(x, y)
				if err != nil {
					return nil, err
				}
				if e := math.Abs(got - exact); e > wc {
					wc = e
				}
				if e := math.Abs(hubs.Distance(x, y) - exact); e > wh {
					wh = e
				}
			}
			counterMax.Add(wc)
			hubMax.Add(wh)
			cBound = 2 * counter.ErrorBound(gamma/float64(pairCount)) // Range = difference of two counts
			hBound = hubs.Bound(gamma / float64(pairCount))
		}
		t.AddRow(inum(v), fnum(counterMax.Mean()), fnum(hubMax.Mean()), fnum(cBound), fnum(hBound))
	}
	t.AddNote("the two mechanisms are the same algorithm in different clothes (Appendix A); measured errors agree to small constants")
	return t, nil
}
