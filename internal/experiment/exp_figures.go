package experiment

import (
	"fmt"

	"repro/internal/graph"
)

func init() {
	register(Experiment{
		ID:    "F1",
		Title: "Figure 1: Algorithm 1 tree partition invariants",
		Ref:   "Figure 1 / proof of Theorem 4.1",
		Run:   runF1,
	})
	register(Experiment{
		ID:    "F2",
		Title: "Figure 2: shortest-path lower-bound gadget",
		Ref:   "Figure 2 / Lemma 5.2",
		Run:   runF2,
	})
	register(Experiment{
		ID:    "F3",
		Title: "Figure 3: MST and matching lower-bound gadgets",
		Ref:   "Figure 3 / Lemmas B.2, B.5",
		Run:   runF3,
	})
}

// runF1 regenerates the Figure 1 construction on each tree shape: the
// splitter vertex v*, the parts T0..Tt, and the two invariants the proof
// needs — every part has at most ceil(V/2) vertices, and the parts
// partition the vertex set.
func runF1(cfg Config) (*Table, error) {
	sizes := []int{15, 64, 255, 1024, 4095}
	if cfg.Quick {
		sizes = []int{15, 64}
	}
	t := &Table{
		ID:      "F1",
		Title:   "Algorithm 1 tree partition",
		Ref:     "Figure 1",
		Columns: []string{"shape", "V", "v*", "parts", "maxPart", "V/2 bound", "partition ok"},
	}
	rng := rngFor(cfg, 101)
	for _, shape := range treeShapes {
		for _, n := range sizes {
			g := shape.gen(n, rng)
			tr, err := graph.NewTree(g, 0)
			if err != nil {
				return nil, fmt.Errorf("F1 %s V=%d: %w", shape.name, n, err)
			}
			vstar := tr.Splitter()
			kids := tr.Children(vstar)
			covered := make([]bool, n)
			maxPart := 0
			parts := 1 + len(kids)
			childCount := 0
			for _, h := range kids {
				sz := 0
				for _, v := range tr.SubtreeVertices(h.To) {
					covered[v] = true
					sz++
				}
				childCount += sz
				if sz > maxPart {
					maxPart = sz
				}
			}
			t0 := n - childCount
			if t0 > maxPart {
				maxPart = t0
			}
			// Partition check: T0 is everything uncovered; together with the
			// child subtrees it must cover all n vertices exactly once.
			uncovered := 0
			for _, c := range covered {
				if !c {
					uncovered++
				}
			}
			ok := uncovered == t0 && maxPart <= (n+1)/2
			t.AddRow(shape.name, inum(n), inum(vstar), inum(parts), inum(maxPart), inum((n+1)/2), fmt.Sprintf("%v", ok))
		}
	}
	return t, nil
}

// runF2 regenerates the Figure 2 gadget and verifies the reduction's
// noise-free round trip: under w_x the shortest s-t path has weight 0 and
// decoding it recovers x exactly.
func runF2(cfg Config) (*Table, error) {
	sizes := []int{8, 64, 256, 1024}
	if cfg.Quick {
		sizes = []int{8, 64}
	}
	t := &Table{
		ID:      "F2",
		Title:   "Shortest-path gadget round trip",
		Ref:     "Figure 2",
		Columns: []string{"n", "V", "E", "optWeight", "decode==x"},
	}
	rng := rngFor(cfg, 102)
	for _, n := range sizes {
		gadget := graph.NewPathGadget(n)
		x := randomBits(n, rng)
		w := gadget.Weights(x)
		path, wt, ok, err := graph.ShortestPath(gadget.G, w, gadget.S, gadget.T)
		if err != nil || !ok {
			return nil, fmt.Errorf("F2 n=%d: shortest path failed: %v", n, err)
		}
		y := gadget.Decode(path)
		t.AddRow(inum(n), inum(gadget.G.N()), inum(gadget.G.M()), fnum(wt), fmt.Sprintf("%v", bitsEqual(x, y)))
	}
	return t, nil
}

// runF3 regenerates both Figure 3 gadgets and verifies their noise-free
// round trips: MST weight 0 with exact decode, and min matching weight 0
// with exact decode.
func runF3(cfg Config) (*Table, error) {
	sizes := []int{8, 64, 256, 1024}
	if cfg.Quick {
		sizes = []int{8, 64}
	}
	t := &Table{
		ID:      "F3",
		Title:   "MST and matching gadget round trips",
		Ref:     "Figure 3",
		Columns: []string{"n", "mst optW", "mst decode==x", "match optW", "match decode==x"},
	}
	rng := rngFor(cfg, 103)
	for _, n := range sizes {
		mg := graph.NewMSTGadget(n)
		x := randomBits(n, rng)
		tree, tw, err := graph.MST(mg.G, mg.Weights(x))
		if err != nil {
			return nil, fmt.Errorf("F3 n=%d MST: %w", n, err)
		}
		mstOK := bitsEqual(x, mg.Decode(tree))

		hg := graph.NewHourglassGadget(n)
		x2 := randomBits(n, rng)
		m, mw, err := graph.MinWeightPerfectMatching(hg.G, hg.Weights(x2))
		if err != nil {
			return nil, fmt.Errorf("F3 n=%d matching: %w", n, err)
		}
		matchOK := bitsEqual(x2, hg.Decode(m))
		t.AddRow(inum(n), fnum(tw), fmt.Sprintf("%v", mstOK), fnum(mw), fmt.Sprintf("%v", matchOK))
	}
	return t, nil
}

func randomBits(n int, rng interface{ Intn(int) int }) []bool {
	x := make([]bool, n)
	for i := range x {
		x[i] = rng.Intn(2) == 1
	}
	return x
}

func bitsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
