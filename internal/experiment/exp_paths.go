package experiment

import (
	"fmt"

	"repro/dpgraph"
	"repro/internal/graph"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Private shortest paths: error vs hop count of the optimum",
		Ref:   "Theorem 5.5 / Algorithm 3",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Private shortest paths: worst-case error vs V",
		Ref:   "Corollary 5.6",
		Run:   runE8,
	})
}

// runE7 plants a k-hop light path in a heavier graph and measures the
// excess true weight of the path Algorithm 3 releases, as k grows with V
// fixed. Theorem 5.5 predicts error growing linearly in k (slope ~1 on a
// log-log plot), independent of V.
func runE7(cfg Config) (*Table, error) {
	n := 2048
	hops := []int{2, 4, 8, 16, 32, 64, 128, 256}
	trials := 12
	if cfg.Quick {
		n = 256
		hops = []int{2, 8, 32}
		trials = 4
	}
	const eps, gamma, heavy = 1.0, 0.05, 4000.0
	t := &Table{
		ID:      "E7",
		Title:   "Path error vs hop count (planted k-hop optimum)",
		Ref:     "Theorem 5.5",
		Columns: []string{"V", "k", "excess(mean)", "excess(p95)", "bound 2k log(E/g)/eps", "released hops(mean)"},
	}
	rng := rngFor(cfg, 7)
	var ks, errs []float64
	for _, k := range hops {
		excess := &stats.Summary{}
		relHops := &stats.Summary{}
		var bound float64
		for trial := 0; trial < trials; trial++ {
			g, w, planted := graph.PlantedPathGraph(n, k, heavy, rng)
			pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
			if err != nil {
				return nil, err
			}
			pp, err := pg.ShortestPaths()
			if err != nil {
				return nil, fmt.Errorf("E7 k=%d: %w", k, err)
			}
			s, tt := 0, k
			exact, err := graph.Distance(g, w, s, tt)
			if err != nil {
				return nil, err
			}
			path, err := pp.Path(s, tt)
			if err != nil {
				return nil, err
			}
			excess.Add(graph.PathWeight(w, path) - exact)
			relHops.Add(float64(len(path)))
			// The planted path has k hops and some weight W >= exact, so
			// Theorem 5.5 bounds the release by W + 2k log(E/gamma)/eps;
			// we report the noise part of the bound (the planted path is
			// near-optimal by construction).
			bound = pp.BoundKHops(k, gamma) + graph.PathWeight(w, planted) - exact
		}
		t.AddRow(inum(n), inum(k), fnum(excess.Mean()), fnum(excess.Quantile(0.95)), fnum(bound), fnum(relHops.Mean()))
		ks = append(ks, float64(k))
		errs = append(errs, excess.Mean())
	}
	if len(ks) >= 3 {
		t.AddNote("log-log slope of excess vs k = %.3f (Theorem 5.5 predicts ~1: error linear in hop count, not in V)",
			stats.LogLogSlope(ks, errs))
	}
	return t, nil
}

// runE8 measures the worst observed path error over sampled pairs on
// general graphs as V grows, against the Corollary 5.6 bound
// (2V/eps) log(E/gamma).
func runE8(cfg Config) (*Table, error) {
	sizes := []int{256, 512, 1024, 2048, 4096}
	trials := 4
	pairCount := 400
	if cfg.Quick {
		sizes = []int{256}
		trials = 2
		pairCount = 100
	}
	const eps, gamma = 1.0, 0.05
	t := &Table{
		ID:      "E8",
		Title:   "Worst-case path error vs V",
		Ref:     "Corollary 5.6",
		Columns: []string{"graph", "V", "maxExcess(mean)", "meanExcess", "bound (2V/eps)log(E/g)", "maxHops seen"},
	}
	rng := rngFor(cfg, 8)
	for _, wl := range boundedWorkloads {
		var vs, errs []float64
		for _, n := range sizes {
			g := wl.gen(n, rng)
			nn := g.N()
			maxExcess := &stats.Summary{}
			meanExcess := &stats.Summary{}
			var bound float64
			maxHops := 0
			for trial := 0; trial < trials; trial++ {
				w := graph.UniformRandomWeights(g, 0, 10, rng)
				pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
				if err != nil {
					return nil, err
				}
				pp, err := pg.ShortestPaths()
				if err != nil {
					return nil, fmt.Errorf("E8 %s V=%d: %w", wl.name, nn, err)
				}
				bound = pp.Bound(gamma)
				worst, sum := 0.0, 0.0
				pairs := samplePairs(nn, pairCount, rng)
				bySource := map[int][]int{}
				for _, p := range pairs {
					bySource[p[0]] = append(bySource[p[0]], p[1])
				}
				count := 0
				for s, ts := range bySource {
					exactTree, err := graph.Dijkstra(g, w, s)
					if err != nil {
						return nil, err
					}
					for _, tt := range ts {
						path, err := pp.Path(s, tt)
						if err != nil {
							return nil, err
						}
						excess := graph.PathWeight(w, path) - exactTree.Dist[tt]
						if excess > worst {
							worst = excess
						}
						if len(path) > maxHops {
							maxHops = len(path)
						}
						sum += excess
						count++
					}
				}
				maxExcess.Add(worst)
				meanExcess.Add(sum / float64(count))
			}
			t.AddRow(wl.name, inum(nn), fnum(maxExcess.Mean()), fnum(meanExcess.Mean()), fnum(bound), inum(maxHops))
			vs = append(vs, float64(nn))
			errs = append(errs, maxExcess.Mean())
		}
		if len(vs) >= 3 {
			t.AddNote("%s: log-log slope of maxExcess vs V = %.3f (bound slope 1.0; actual error tracks hop counts, which grow much slower)",
				wl.name, stats.LogLogSlope(vs, errs))
		}
	}
	return t, nil
}
