package experiment

import (
	"fmt"

	"repro/dpgraph"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Private navigation on a synthetic city at rush hour",
		Ref:   "Section 1.1 motivation / future directions",
		Run:   runE14,
	})
	register(Experiment{
		ID:    "E15",
		Title: "Error vs individual influence scale",
		Ref:   "Section 1.2 scaling remark",
		Run:   runE15,
	})
}

// runE14 exercises the paper's motivating application end to end: a city
// street network (public) with rush-hour travel times (private). It
// reports the stretch (released route time / optimal time) of Algorithm 3
// routes and the absolute error of bounded-weight all-pairs distance
// estimates, across privacy levels.
func runE14(cfg Config) (*Table, error) {
	side := 24
	trials := 3
	tripCount := 300
	if cfg.Quick {
		side = 12
		trials = 2
		tripCount = 80
	}
	epsLevels := []float64{0.5, 1, 2, 8}
	const gamma = 0.05
	t := &Table{
		ID:      "E14",
		Title:   "Private navigation at rush hour",
		Ref:     "Section 1.1",
		Columns: []string{"V", "eps", "stretch(median)", "stretch(p95)", "absErr(median min)", "APSD maxErr", "APSD bound"},
	}
	rng := rngFor(cfg, 14)
	city, err := traffic.NewCity(traffic.Config{Side: side}, rng)
	if err != nil {
		return nil, err
	}
	g := city.G
	n := g.N()
	for _, eps := range epsLevels {
		stretch := &stats.Summary{}
		absErr := &stats.Summary{}
		apsdMax := &stats.Summary{}
		var apsdBound float64
		for trial := 0; trial < trials; trial++ {
			w := city.TravelTimes(traffic.CongestionModel{Hour: 8}, rng) // 8am rush
			pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithDelta(1e-6), dpgraph.WithGamma(gamma))
			if err != nil {
				return nil, err
			}
			pp, err := pg.ShortestPaths()
			if err != nil {
				return nil, fmt.Errorf("E14 eps=%g: %w", eps, err)
			}
			rel, err := pg.BoundedAllPairs(city.MaxTime)
			if err != nil {
				return nil, fmt.Errorf("E14 eps=%g APSD: %w", eps, err)
			}
			// Release once, query many: the dashboard oracle answers the
			// whole trip workload as free post-processing of the one
			// covering release.
			oracle := rel.Oracle()
			apsdBound = oracle.Bound(gamma)
			trips := city.CommuteTrips(tripCount, 4, rng)
			pairs := make([]dpgraph.VertexPair, len(trips))
			for i, tr := range trips {
				pairs[i] = dpgraph.VertexPair{S: tr.From, T: tr.To}
			}
			estimates, err := oracle.Distances(pairs)
			if err != nil {
				return nil, err
			}
			bySource := map[int][]int{}
			for i, tr := range trips {
				bySource[tr.From] = append(bySource[tr.From], i)
			}
			worstAPSD := 0.0
			for s, idxs := range bySource {
				exactTree, err := graph.Dijkstra(g, w, s)
				if err != nil {
					return nil, err
				}
				for _, i := range idxs {
					dst := trips[i].To
					path, err := pp.Path(s, dst)
					if err != nil {
						return nil, err
					}
					released := graph.PathWeight(w, path)
					exact := exactTree.Dist[dst]
					stretch.Add(released / exact)
					absErr.Add(released - exact)
					if e := abs(estimates[i] - exact); e > worstAPSD {
						worstAPSD = e
					}
				}
			}
			apsdMax.Add(worstAPSD)
		}
		t.AddRow(inum(n), fnum(eps), fnum(stretch.Median()), fnum(stretch.Quantile(0.95)),
			fnum(absErr.Median()), fnum(apsdMax.Mean()), fnum(apsdBound))
	}
	t.AddNote("travel times in minutes; stretch is released route time over true fastest time at 8am rush hour; city has %d intersections and %d road segments", n, g.M())
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runE15 verifies the Section 1.2 scaling remark: if an individual can
// influence the weights by at most s in l1 norm, running any mechanism
// with Scale = s shrinks its error linearly in s. Measured on Algorithm 1
// over balanced trees.
func runE15(cfg Config) (*Table, error) {
	n := 4096
	trials := 8
	if cfg.Quick {
		n = 256
		trials = 3
	}
	const eps, gamma = 1.0, 0.05
	scales := []float64{1, 0.1, 0.01, 0.001}
	t := &Table{
		ID:      "E15",
		Title:   "Error vs influence scale s",
		Ref:     "Section 1.2",
		Columns: []string{"V", "scale s", "maxErr(mean)", "maxErr/s", "bound", "bound/s"},
	}
	rng := rngFor(cfg, 15)
	g := graph.BalancedBinaryTree(n)
	var ss, errs []float64
	for _, s := range scales {
		maxErrs := &stats.Summary{}
		var bound float64
		for trial := 0; trial < trials; trial++ {
			w := graph.UniformRandomWeights(g, 0, 10, rng)
			pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma), dpgraph.WithScale(s))
			if err != nil {
				return nil, err
			}
			sssp, err := pg.TreeSingleSource(0)
			if err != nil {
				return nil, fmt.Errorf("E15 s=%g: %w", s, err)
			}
			tr, err := graph.NewTree(g, 0)
			if err != nil {
				return nil, err
			}
			exact := tr.RootDistances(w)
			worst := 0.0
			for v := 0; v < n; v++ {
				if e := abs(sssp.Dist[v] - exact[v]); e > worst {
					worst = e
				}
			}
			maxErrs.Add(worst)
			bound = sssp.Bound(gamma / float64(n))
		}
		t.AddRow(inum(n), fnum(s), fnum(maxErrs.Mean()), fnum(maxErrs.Mean()/s), fnum(bound), fnum(bound/s))
		ss = append(ss, s)
		errs = append(errs, maxErrs.Mean())
	}
	if len(ss) >= 3 {
		t.AddNote("log-log slope of maxErr vs s = %.3f (exact linearity = 1.0); err/s constant across rows confirms the scaling remark", stats.LogLogSlope(ss, errs))
	}
	return t, nil
}
