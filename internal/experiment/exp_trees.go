package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"repro/dpgraph"
	"repro/internal/graph"
	"repro/internal/stats"
)

func rngFor(cfg Config, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed*1000003 + salt))
}

// samplePairs draws count distinct ordered pairs (x != y).
func samplePairs(n, count int, rng *rand.Rand) [][2]int {
	if n < 2 {
		return nil
	}
	pairs := make([][2]int, 0, count)
	for len(pairs) < count {
		x, y := rng.Intn(n), rng.Intn(n)
		if x != y {
			pairs = append(pairs, [2]int{x, y})
		}
	}
	return pairs
}

// treeShapes are the tree topologies exercised by E1/E2.
var treeShapes = []struct {
	name string
	gen  func(n int, rng *rand.Rand) *graph.Graph
}{
	{"balanced", func(n int, _ *rand.Rand) *graph.Graph { return graph.BalancedBinaryTree(n) }},
	{"random", graph.RandomTree},
	{"prufer", graph.RandomPruferTree},
	{"caterpillar", func(n int, _ *rand.Rand) *graph.Graph { return graph.Caterpillar(n/2, n-n/2) }},
	{"path", func(n int, _ *rand.Rand) *graph.Graph { return graph.Path(n) }},
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Single-source tree distances: error vs V",
		Ref:   "Theorem 4.1 / Algorithm 1",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "All-pairs tree distances: error vs V",
		Ref:   "Theorem 4.2",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "Path graph: hub hierarchy vs tree algorithm vs naive release",
		Ref:   "Theorem A.1 / [DNPR10]",
		Run:   runE3,
	})
}

// runE1 measures the maximum single-source error of Algorithm 1 over tree
// shapes and sizes, against the O(log^1.5 V log(1/gamma))/eps bound and a
// naive Lap(V/eps)-per-query baseline. The reproduction succeeds when the
// measured error (i) stays below the bound and (ii) grows polylogarithmically
// (log-log slope near 0), while the naive baseline grows linearly.
func runE1(cfg Config) (*Table, error) {
	sizes := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	trials := 8
	if cfg.Quick {
		sizes = []int{128, 512}
		trials = 2
	}
	const eps, gamma = 1.0, 0.05
	t := &Table{
		ID:      "E1",
		Title:   "Single-source tree distances",
		Ref:     "Theorem 4.1",
		Columns: []string{"shape", "V", "eps", "maxErr(mean)", "meanErr", "bound(gamma=.05)", "naive V/eps"},
	}
	rng := rngFor(cfg, 1)
	for _, shape := range treeShapes {
		var vs, errs []float64
		for _, n := range sizes {
			maxErrs := &stats.Summary{}
			meanErrs := &stats.Summary{}
			var bound float64
			for trial := 0; trial < trials; trial++ {
				g := shape.gen(n, rng)
				w := graph.UniformRandomWeights(g, 0, 10, rng)
				pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
				if err != nil {
					return nil, err
				}
				sssp, err := pg.TreeSingleSource(0)
				if err != nil {
					return nil, fmt.Errorf("E1 %s V=%d: %w", shape.name, n, err)
				}
				tr, err := graph.NewTree(g, 0)
				if err != nil {
					return nil, err
				}
				exact := tr.RootDistances(w)
				worst, sum := 0.0, 0.0
				for v := 0; v < n; v++ {
					e := math.Abs(sssp.Dist[v] - exact[v])
					if e > worst {
						worst = e
					}
					sum += e
				}
				maxErrs.Add(worst)
				meanErrs.Add(sum / float64(n))
				// Bound for the max over V vertices: union bound.
				bound = sssp.Bound(gamma / float64(n))
			}
			t.AddRow(shape.name, inum(n), fnum(eps), fnum(maxErrs.Mean()), fnum(meanErrs.Mean()), fnum(bound), fnum(float64(n)/eps))
			vs = append(vs, float64(n))
			errs = append(errs, maxErrs.Mean())
		}
		if len(vs) >= 3 {
			t.AddNote("%s: log-log slope of maxErr vs V = %.3f (polylog growth shows as << 0.5; linear naive baseline = 1.0)",
				shape.name, stats.LogLogSlope(vs, errs))
		}
	}
	return t, nil
}

// runE2 measures all-pairs tree distance error (Theorem 4.2) on sampled
// pairs, against the per-pair and all-pairs bounds.
func runE2(cfg Config) (*Table, error) {
	sizes := []int{128, 256, 512, 1024, 2048, 4096}
	trials := 6
	pairCount := 2000
	if cfg.Quick {
		sizes = []int{128, 512}
		trials = 2
		pairCount = 200
	}
	const eps, gamma = 1.0, 0.05
	t := &Table{
		ID:      "E2",
		Title:   "All-pairs tree distances",
		Ref:     "Theorem 4.2",
		Columns: []string{"shape", "V", "maxErr(mean)", "meanErr", "perPairBound", "allPairsBound"},
	}
	rng := rngFor(cfg, 2)
	for _, shape := range treeShapes {
		if shape.name == "path" {
			continue // covered by E3
		}
		var vs, errs []float64
		for _, n := range sizes {
			maxErrs := &stats.Summary{}
			meanErrs := &stats.Summary{}
			var perPair, allPairs float64
			for trial := 0; trial < trials; trial++ {
				g := shape.gen(n, rng)
				w := graph.UniformRandomWeights(g, 0, 10, rng)
				pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
				if err != nil {
					return nil, err
				}
				apsd, err := pg.TreeAllPairs()
				if err != nil {
					return nil, fmt.Errorf("E2 %s V=%d: %w", shape.name, n, err)
				}
				tr, err := graph.NewTree(g, 0)
				if err != nil {
					return nil, err
				}
				worst, sum := 0.0, 0.0
				pairs := samplePairs(n, pairCount, rng)
				for _, p := range pairs {
					exact := tr.TreeDistance(w, p[0], p[1])
					e := math.Abs(apsd.Distance(p[0], p[1]) - exact)
					if e > worst {
						worst = e
					}
					sum += e
				}
				maxErrs.Add(worst)
				meanErrs.Add(sum / float64(len(pairs)))
				perPair = apsd.PerPairBound(gamma)
				allPairs = apsd.Bound(gamma)
			}
			t.AddRow(shape.name, inum(n), fnum(maxErrs.Mean()), fnum(meanErrs.Mean()), fnum(perPair), fnum(allPairs))
			vs = append(vs, float64(n))
			errs = append(errs, maxErrs.Mean())
		}
		if len(vs) >= 3 {
			t.AddNote("%s: log-log slope of maxErr vs V = %.3f", shape.name, stats.LogLogSlope(vs, errs))
		}
	}
	return t, nil
}

// runE3 compares three mechanisms for all-pairs distances on the path
// graph: the Appendix A hub hierarchy, the Algorithm 1 tree mechanism,
// and the naive private graph release whose prefix errors accumulate as
// sqrt(V) noise magnitudes.
func runE3(cfg Config) (*Table, error) {
	sizes := []int{128, 256, 512, 1024, 2048, 4096, 8192}
	trials := 8
	pairCount := 1500
	if cfg.Quick {
		sizes = []int{128, 512}
		trials = 2
		pairCount = 200
	}
	const eps, gamma = 1.0, 0.05
	t := &Table{
		ID:      "E3",
		Title:   "Path graph all-pairs distances",
		Ref:     "Theorem A.1",
		Columns: []string{"V", "hubs maxErr", "tree maxErr", "naive maxErr", "hub bound", "gaps/query<="},
	}
	rng := rngFor(cfg, 3)
	var vs, hubErrs, naiveErrs []float64
	for _, n := range sizes {
		g := graph.Path(n)
		hubMax := &stats.Summary{}
		treeMax := &stats.Summary{}
		naiveMax := &stats.Summary{}
		var bound float64
		var maxGaps int
		for trial := 0; trial < trials; trial++ {
			w := graph.UniformRandomWeights(g, 0, 10, rng)
			prefix := make([]float64, n)
			for i := 0; i < n-1; i++ {
				prefix[i+1] = prefix[i] + w[i]
			}
			exactDist := func(x, y int) float64 { return math.Abs(prefix[y] - prefix[x]) }

			pg, err := session(g, w, rng, dpgraph.WithEpsilon(eps), dpgraph.WithGamma(gamma))
			if err != nil {
				return nil, err
			}
			hubs, err := pg.PathHierarchy(2)
			if err != nil {
				return nil, err
			}
			tree, err := pg.TreeAllPairs()
			if err != nil {
				return nil, err
			}
			naive, err := pg.Release()
			if err != nil {
				return nil, err
			}
			// Naive estimate of d(x,y): sum of released weights over the
			// subpath (post-processing of the released graph).
			naivePrefix := make([]float64, n)
			for i := 0; i < n-1; i++ {
				naivePrefix[i+1] = naivePrefix[i] + naive.Weights[i]
			}
			pairs := samplePairs(n, pairCount, rng)
			hw, tw, nw := 0.0, 0.0, 0.0
			for _, p := range pairs {
				exact := exactDist(p[0], p[1])
				if e := math.Abs(hubs.Distance(p[0], p[1]) - exact); e > hw {
					hw = e
				}
				if e := math.Abs(tree.Distance(p[0], p[1]) - exact); e > tw {
					tw = e
				}
				if e := math.Abs((naivePrefix[p[1]] - naivePrefix[p[0]]) - (prefix[p[1]] - prefix[p[0]])); e > nw {
					nw = e
				}
			}
			hubMax.Add(hw)
			treeMax.Add(tw)
			naiveMax.Add(nw)
			bound = hubs.Bound(gamma / float64(pairCount))
			maxGaps = hubs.MaxGapsPerQuery()
		}
		t.AddRow(inum(n), fnum(hubMax.Mean()), fnum(treeMax.Mean()), fnum(naiveMax.Mean()), fnum(bound), inum(maxGaps))
		vs = append(vs, float64(n))
		hubErrs = append(hubErrs, hubMax.Mean())
		naiveErrs = append(naiveErrs, naiveMax.Mean())
	}
	if len(vs) >= 3 {
		t.AddNote("log-log slopes vs V: hubs %.3f (polylog), naive %.3f (~0.5, sqrt accumulation)",
			stats.LogLogSlope(vs, hubErrs), stats.LogLogSlope(vs, naiveErrs))
	}
	return t, nil
}
