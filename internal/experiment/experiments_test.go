package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// runQuick runs one experiment in Quick mode and returns its table.
func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tab, err := e.Run(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s row %d has %d cells for %d columns", id, i, len(row), len(tab.Columns))
		}
	}
	return tab
}

// cell parses a numeric cell.
func cell(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	for ci, c := range tab.Columns {
		if c == col {
			v, err := strconv.ParseFloat(tab.Rows[row][ci], 64)
			if err != nil {
				t.Fatalf("%s[%d][%s] = %q not numeric", tab.ID, row, col, tab.Rows[row][ci])
			}
			return v
		}
	}
	t.Fatalf("%s has no column %q", tab.ID, col)
	return 0
}

func TestE1QuickWithinBound(t *testing.T) {
	tab := runQuick(t, "E1")
	for r := range tab.Rows {
		if got, bound := cell(t, tab, r, "maxErr(mean)"), cell(t, tab, r, "bound(gamma=.05)"); got > bound {
			t.Errorf("row %d: maxErr %g > bound %g", r, got, bound)
		}
	}
}

func TestE2QuickWithinBound(t *testing.T) {
	tab := runQuick(t, "E2")
	for r := range tab.Rows {
		if got, bound := cell(t, tab, r, "maxErr(mean)"), cell(t, tab, r, "allPairsBound"); got > bound {
			t.Errorf("row %d: maxErr %g > all-pairs bound %g", r, got, bound)
		}
	}
}

func TestE3QuickHubsBeatBoundAndTrackTree(t *testing.T) {
	tab := runQuick(t, "E3")
	for r := range tab.Rows {
		if got, bound := cell(t, tab, r, "hubs maxErr"), cell(t, tab, r, "hub bound"); got > bound {
			t.Errorf("row %d: hub err %g > bound %g", r, got, bound)
		}
	}
}

func TestE4QuickWithinBound(t *testing.T) {
	tab := runQuick(t, "E4")
	for r := range tab.Rows {
		if got, bound := cell(t, tab, r, "maxErr(mean)"), cell(t, tab, r, "bound"); got > bound {
			t.Errorf("row %d: err %g > bound %g", r, got, bound)
		}
	}
}

func TestE5QuickWithinBound(t *testing.T) {
	tab := runQuick(t, "E5")
	for r := range tab.Rows {
		if got, bound := cell(t, tab, r, "maxErr(mean)"), cell(t, tab, r, "bound"); got > bound {
			t.Errorf("row %d: err %g > bound %g", r, got, bound)
		}
	}
}

func TestE6QuickGridCoveringSmaller(t *testing.T) {
	tab := runQuick(t, "E6")
	for r := range tab.Rows {
		zGrid := cell(t, tab, r, "|Z| grid")
		zGen := cell(t, tab, r, "|Z| general")
		if zGrid > zGen {
			t.Errorf("row %d: structured covering %g larger than general %g", r, zGrid, zGen)
		}
	}
}

func TestE7QuickWithinBound(t *testing.T) {
	tab := runQuick(t, "E7")
	for r := range tab.Rows {
		if got, bound := cell(t, tab, r, "excess(mean)"), cell(t, tab, r, "bound 2k log(E/g)/eps"); got > bound {
			t.Errorf("row %d: excess %g > bound %g", r, got, bound)
		}
	}
}

func TestE8QuickWithinBound(t *testing.T) {
	tab := runQuick(t, "E8")
	for r := range tab.Rows {
		if got, bound := cell(t, tab, r, "maxExcess(mean)"), cell(t, tab, r, "bound (2V/eps)log(E/g)"); got > bound {
			t.Errorf("row %d: excess %g > bound %g", r, got, bound)
		}
	}
}

func TestE9QuickLemmaHolds(t *testing.T) {
	tab := runQuick(t, "E9")
	for ci, c := range tab.Columns {
		if c == "hamming<=pathErr" {
			for r, row := range tab.Rows {
				if row[ci] != "true" {
					t.Errorf("row %d: Lemma 5.2 inequality violated", r)
				}
			}
		}
	}
}

func TestE10QuickWithinBound(t *testing.T) {
	tab := runQuick(t, "E10")
	for r := range tab.Rows {
		if got, bound := cell(t, tab, r, "excess(max)"), cell(t, tab, r, "bound"); got > bound {
			t.Errorf("row %d: excess %g > bound %g", r, got, bound)
		}
	}
}

func TestE11QuickLemmaHolds(t *testing.T) {
	tab := runQuick(t, "E11")
	for ci, c := range tab.Columns {
		if c == "hamming<=treeErr" {
			for r, row := range tab.Rows {
				if row[ci] != "true" {
					t.Errorf("row %d: Lemma B.2 inequality violated", r)
				}
			}
		}
	}
}

func TestE12QuickWithinBound(t *testing.T) {
	tab := runQuick(t, "E12")
	for r := range tab.Rows {
		if got, bound := cell(t, tab, r, "excess(max)"), cell(t, tab, r, "bound"); got > bound {
			t.Errorf("row %d: excess %g > bound %g", r, got, bound)
		}
	}
}

func TestE13QuickLemmaHolds(t *testing.T) {
	tab := runQuick(t, "E13")
	for ci, c := range tab.Columns {
		if c == "hamming<=matchErr" {
			for r, row := range tab.Rows {
				if row[ci] != "true" {
					t.Errorf("row %d: Lemma B.5 inequality violated", r)
				}
			}
		}
	}
}

func TestE14QuickStretchReasonable(t *testing.T) {
	tab := runQuick(t, "E14")
	for r := range tab.Rows {
		med := cell(t, tab, r, "stretch(median)")
		if med < 1-1e-9 {
			t.Errorf("row %d: median stretch %g below 1 (released route beats optimum?)", r, med)
		}
		eps := cell(t, tab, r, "eps")
		if eps >= 8 && med > 1.5 {
			t.Errorf("row %d: weak privacy should give near-optimal routes, stretch %g", r, med)
		}
	}
}

func TestE15QuickScalingLinear(t *testing.T) {
	tab := runQuick(t, "E15")
	// err/s should be roughly constant across rows (within a factor 4;
	// noise makes exact equality impossible).
	var ratios []float64
	for r := range tab.Rows {
		ratios = append(ratios, cell(t, tab, r, "maxErr/s"))
	}
	for _, x := range ratios {
		if x < ratios[0]/4 || x > ratios[0]*4 {
			t.Errorf("err/s ratios not stable: %v", ratios)
			break
		}
	}
}

func TestE16QuickGreedyNoWorseThanBound(t *testing.T) {
	tab := runQuick(t, "E16")
	for r := range tab.Rows {
		zl := cell(t, tab, r, "|Z| lemma")
		bound := cell(t, tab, r, "bound V/(k+1)")
		if zl > bound {
			t.Errorf("row %d: Lemma 4.4 covering size %g exceeds its guarantee %g", r, zl, bound)
		}
	}
}

func TestE17QuickTreeBeatsComposition(t *testing.T) {
	tab := runQuick(t, "E17")
	for r := range tab.Rows {
		comp := cell(t, tab, r, "composition maxErr")
		tree := cell(t, tab, r, "tree maxErr (on tree)")
		if tree >= comp {
			t.Errorf("row %d: tree mechanism error %g not below composition %g", r, tree, comp)
		}
	}
}

func TestE18QuickMechanismsAgree(t *testing.T) {
	tab := runQuick(t, "E18")
	for r := range tab.Rows {
		counter := cell(t, tab, r, "counter maxErr")
		hubs := cell(t, tab, r, "hubs maxErr")
		if counter > 5*hubs || hubs > 5*counter {
			t.Errorf("row %d: equivalent mechanisms diverge: %g vs %g", r, counter, hubs)
		}
	}
}

func TestF1QuickInvariantsHold(t *testing.T) {
	tab := runQuick(t, "F1")
	for ci, c := range tab.Columns {
		if c == "partition ok" {
			for r, row := range tab.Rows {
				if row[ci] != "true" {
					t.Errorf("row %d: partition invariant fails", r)
				}
			}
		}
	}
}

func TestF2F3QuickRoundTrips(t *testing.T) {
	for _, id := range []string{"F2", "F3"} {
		tab := runQuick(t, id)
		for r, row := range tab.Rows {
			joined := strings.Join(row, " ")
			if strings.Contains(joined, "false") {
				t.Errorf("%s row %d: round trip failed: %v", id, r, row)
			}
		}
	}
}
