// Package experiment defines the harness and the full suite of
// experiments that reproduce the paper's results (one experiment per
// theorem/figure; see DESIGN.md §3 for the index). Each experiment runs a
// parameter sweep with repeated trials under fixed seeds and renders a
// table; cmd/experiments regenerates EXPERIMENTS.md from these tables and
// the root bench_test.go exposes each experiment as a benchmark.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Config controls an experiment run.
type Config struct {
	// Seed fixes the randomness; equal seeds give identical tables.
	Seed int64
	// Quick shrinks sweeps and trial counts for tests and smoke runs.
	Quick bool
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Ref     string // the paper result being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; cell count must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row has %d cells for %d columns in %s", len(cells), len(t.Columns), t.ID))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s (%s) ==\n", t.ID, t.Title, t.Ref)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as GitHub-flavored markdown.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n*Reproduces: %s*\n\n", t.ID, t.Title, t.Ref)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", note)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (no notes).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Ref   string
	Run   func(cfg Config) (*Table, error)
}

var (
	regMu    sync.Mutex
	registry = map[string]Experiment{}
)

// register adds an experiment; duplicate IDs panic at init time.
func register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("experiment: duplicate ID " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by ID (E* before F*).
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// fnum formats a float compactly for table cells.
func fnum(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000 || x <= -1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10 || x <= -10:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// inum formats an int for table cells.
func inum(x int) string { return fmt.Sprintf("%d", x) }
