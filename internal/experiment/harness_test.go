package experiment

import (
	"strings"
	"testing"
)

func TestTableAddRowValidation(t *testing.T) {
	tab := &Table{ID: "T", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	defer func() {
		if recover() == nil {
			t.Error("short row accepted")
		}
	}()
	tab.AddRow("1")
}

func TestTableRenderFormats(t *testing.T) {
	tab := &Table{
		ID:      "T1",
		Title:   "demo",
		Ref:     "Theorem 0",
		Columns: []string{"x", "value"},
	}
	tab.AddRow("1", "10")
	tab.AddRow("2", "20")
	tab.AddNote("a note with %d", 42)

	var text, md, csv strings.Builder
	if err := tab.Render(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "T1") || !strings.Contains(text.String(), "note: a note with 42") {
		t.Errorf("text render:\n%s", text.String())
	}
	if err := tab.RenderMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| x | value |") || !strings.Contains(md.String(), "> a note with 42") {
		t.Errorf("markdown render:\n%s", md.String())
	}
	if err := tab.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "x,value\n1,10\n") {
		t.Errorf("csv render:\n%s", csv.String())
	}
}

func TestRegistryContainsAllExperiments(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "F1", "F2", "F3"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	all := All()
	if len(all) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(all), len(want))
	}
	// Sorted: E1 before E2 before E10, and E* before F*.
	index := map[string]int{}
	for i, e := range all {
		index[e.ID] = i
	}
	if !(index["E1"] < index["E2"] && index["E2"] < index["E10"] && index["E15"] < index["F1"]) {
		t.Errorf("ordering wrong: %v", index)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("E999"); ok {
		t.Error("unknown ID found")
	}
}

func TestFnum(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1234:   "1234",
		12.345: "12.3",
		0.5:    "0.500",
	}
	for in, want := range cases {
		if got := fnum(in); got != want {
			t.Errorf("fnum(%g) = %q, want %q", in, got, want)
		}
	}
	if inum(42) != "42" {
		t.Error("inum")
	}
}

func TestSamplePairsDistinct(t *testing.T) {
	rng := rngFor(Config{Seed: 1}, 0)
	pairs := samplePairs(10, 50, rng)
	if len(pairs) != 50 {
		t.Fatal("wrong count")
	}
	for _, p := range pairs {
		if p[0] == p[1] || p[0] < 0 || p[0] >= 10 || p[1] < 0 || p[1] >= 10 {
			t.Fatalf("bad pair %v", p)
		}
	}
	if samplePairs(1, 5, rng) != nil {
		t.Error("n=1 should return nil")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Same seed, same table.
	e, _ := Get("F2")
	t1, err := e.Run(Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.Run(Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != len(t2.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range t1.Rows {
		for j := range t1.Rows[i] {
			if t1.Rows[i][j] != t2.Rows[i][j] {
				t.Fatalf("row %d col %d differs: %q vs %q", i, j, t1.Rows[i][j], t2.Rows[i][j])
			}
		}
	}
}
