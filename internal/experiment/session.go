package experiment

import (
	"math/rand"

	"repro/dpgraph"
	"repro/internal/graph"
)

// session binds one experimental (topology, weights) draw into a dpgraph
// session whose noise comes from the experiment's shared seeded stream,
// keeping sweeps reproducible while exercising the public facade the
// rest of the system uses.
func session(g *graph.Graph, w []float64, rng *rand.Rand, opts ...dpgraph.Option) (*dpgraph.PrivateGraph, error) {
	return dpgraph.New(g, dpgraph.PrivateWeights(w),
		append([]dpgraph.Option{dpgraph.WithNoiseSource(rng)}, opts...)...)
}
