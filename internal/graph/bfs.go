package graph

// HopDistances returns the unweighted (hop) distance from source to every
// vertex via breadth-first search, with -1 marking unreachable vertices.
func HopDistances(g *Graph, source int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := make([]int, 0, n)
	queue = append(queue, source)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(v) {
			if dist[h.To] == -1 {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return dist
}

// HopDistance returns the hop distance between s and t, or -1 if t is
// unreachable from s.
func HopDistance(g *Graph, s, t int) int {
	return HopDistances(g, s)[t]
}

// BFSTree computes a breadth-first spanning tree from source. It returns
// hop distances, the BFS parent of each vertex (-1 for the source and
// unreachable vertices), and the edge ID used to reach each vertex.
func BFSTree(g *Graph, source int) (dist, parent, viaEdge []int) {
	n := g.N()
	dist = make([]int, n)
	parent = make([]int, n)
	viaEdge = make([]int, n)
	for i := 0; i < n; i++ {
		dist[i] = -1
		parent[i] = -1
		viaEdge[i] = -1
	}
	dist[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(v) {
			if dist[h.To] == -1 {
				dist[h.To] = dist[v] + 1
				parent[h.To] = v
				viaEdge[h.To] = h.Edge
				queue = append(queue, h.To)
			}
		}
	}
	return dist, parent, viaEdge
}

// Eccentricity returns the maximum finite hop distance from v and the
// vertex realizing it. For a disconnected graph, unreachable vertices are
// ignored.
func Eccentricity(g *Graph, v int) (ecc, farthest int) {
	dist := HopDistances(g, v)
	ecc, farthest = 0, v
	for u, d := range dist {
		if d > ecc {
			ecc, farthest = d, u
		}
	}
	return ecc, farthest
}

// HopDiameterEndpoint returns a vertex that is an endpoint of a longest
// shortest hop path of the connected graph g, found by the standard
// double-BFS sweep. On trees this is exact (an endpoint of a longest path,
// as required by the k-covering construction of Lemma 4.4); on general
// graphs it is the usual 2-approximation heuristic, which suffices since
// the covering construction operates on a spanning tree.
func HopDiameterEndpoint(g *Graph) int {
	if g.N() == 0 {
		return -1
	}
	_, far := Eccentricity(g, 0)
	_, far2 := Eccentricity(g, far)
	_ = far2
	return far
}
