package graph

import (
	"math/rand"
	"testing"
)

func TestHopDistancesPath(t *testing.T) {
	g := Path(5)
	d := HopDistances(g, 2)
	want := []int{2, 1, 0, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("HopDistances = %v", d)
		}
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	d := HopDistances(g, 0)
	if d[2] != -1 {
		t.Errorf("unreachable hop = %d", d[2])
	}
	if HopDistance(g, 0, 2) != -1 {
		t.Error("HopDistance != -1")
	}
}

func TestHopDistanceIgnoresWeights(t *testing.T) {
	// Hop distance is topology-only; parallel edges don't matter.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if HopDistance(g, 0, 2) != 2 {
		t.Error("hop distance wrong on multigraph")
	}
}

func TestBFSTree(t *testing.T) {
	g := Grid(3)
	dist, parent, via := BFSTree(g, 0)
	if dist[8] != 4 {
		t.Errorf("corner-to-corner hops = %d", dist[8])
	}
	// Follow parents from 8 back to 0, counting steps.
	steps := 0
	for v := 8; v != 0; v = parent[v] {
		e := g.Edge(via[v])
		if e.From != v && e.To != v {
			t.Fatal("via edge not incident")
		}
		steps++
		if steps > 10 {
			t.Fatal("parent chain does not reach source")
		}
	}
	if steps != 4 {
		t.Errorf("parent chain length %d", steps)
	}
}

func TestEccentricity(t *testing.T) {
	g := Path(7)
	ecc, far := Eccentricity(g, 0)
	if ecc != 6 || far != 6 {
		t.Errorf("ecc=%d far=%d", ecc, far)
	}
	ecc, _ = Eccentricity(g, 3)
	if ecc != 3 {
		t.Errorf("center ecc=%d", ecc)
	}
}

func TestHopDiameterEndpointOnTrees(t *testing.T) {
	// On a tree, the returned vertex must be an endpoint of a longest
	// path: its eccentricity equals the diameter.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(60)
		g := RandomPruferTree(n, rng)
		x := HopDiameterEndpoint(g)
		eccX, _ := Eccentricity(g, x)
		// Diameter: max over all vertices of eccentricity.
		diam := 0
		for v := 0; v < n; v++ {
			if e, _ := Eccentricity(g, v); e > diam {
				diam = e
			}
		}
		if eccX != diam {
			t.Fatalf("n=%d: endpoint ecc %d != diameter %d", n, eccX, diam)
		}
	}
}

func TestHopDiameterEndpointEmpty(t *testing.T) {
	if HopDiameterEndpoint(New(0)) != -1 {
		t.Error("empty graph should return -1")
	}
	if HopDiameterEndpoint(New(1)) != 0 {
		t.Error("singleton should return 0")
	}
}
