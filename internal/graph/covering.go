package graph

import (
	"errors"
	"fmt"
	"sort"
)

// A k-covering (Definition 4.1, after Meir and Moon [MM75]) is a subset Z
// of the vertices such that every vertex is within hop distance k of some
// vertex of Z. Lemma 4.4 guarantees a k-covering of size at most
// floor(V/(k+1)) whenever V >= k+1; Algorithm 2 (bounded-weight all-pairs
// distances) releases noisy distances only between covering vertices.

// VerifyCovering reports whether Z is a k-covering of g: every vertex of g
// is within hop distance k of some vertex in Z. It runs one multi-source
// BFS, O(V + E).
func VerifyCovering(g *Graph, Z []int, k int) bool {
	if g.N() == 0 {
		return true
	}
	if len(Z) == 0 {
		return false
	}
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, g.N())
	for _, z := range Z {
		if z < 0 || z >= g.N() {
			return false
		}
		if dist[z] == -1 {
			dist[z] = 0
			queue = append(queue, z)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] >= k {
			continue
		}
		for _, h := range g.Adj(v) {
			if dist[h.To] == -1 {
				dist[h.To] = dist[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// NearestCoveringVertex assigns to every vertex v a vertex z(v) in Z
// minimizing hop distance, via multi-source BFS. It returns the assignment
// and the hop distance to it. Unreachable vertices get assignment -1.
func NearestCoveringVertex(g *Graph, Z []int) (assign, hop []int) {
	n := g.N()
	assign = make([]int, n)
	hop = make([]int, n)
	for i := 0; i < n; i++ {
		assign[i] = -1
		hop[i] = -1
	}
	queue := make([]int, 0, n)
	for _, z := range Z {
		if assign[z] == -1 {
			assign[z] = z
			hop[z] = 0
			queue = append(queue, z)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(v) {
			if assign[h.To] == -1 {
				assign[h.To] = assign[v]
				hop[h.To] = hop[v] + 1
				queue = append(queue, h.To)
			}
		}
	}
	return assign, hop
}

// Covering constructs a k-covering of the connected graph g of size at
// most floor(V/(k+1)), following the proof of Lemma 4.4 [MM75]:
//
//  1. take any spanning tree T of g;
//  2. let x be an endpoint of a longest path of T (found by BFS: in a
//     tree, a vertex farthest from any start vertex is such an endpoint);
//  3. partition vertices into classes Z_i by depth-from-x modulo k+1;
//  4. each class is a k-covering of T (hence of g); return the smallest.
//
// When the tree's hop eccentricity from x is at most k, the singleton {x}
// is already a k-covering and is returned instead (some residue classes
// would be empty in that regime). Requires V >= k+1 so that the size bound
// floor(V/(k+1)) >= 1 is satisfiable; otherwise an error is returned.
func Covering(g *Graph, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: Covering requires k >= 1, got %d", k)
	}
	n := g.N()
	if n == 0 {
		return nil, errors.New("graph: Covering of empty graph")
	}
	if n < k+1 {
		return nil, fmt.Errorf("graph: Covering requires V >= k+1 (V=%d, k=%d)", n, k)
	}
	treeEdges, err := SpanningTree(g)
	if err != nil {
		return nil, err
	}
	tree, _ := Subgraph(g, treeEdges)

	// x: endpoint of a longest path of the tree (farthest vertex from 0).
	_, x := Eccentricity(tree, 0)
	depth := HopDistances(tree, x)
	ecc := 0
	for _, d := range depth {
		if d > ecc {
			ecc = d
		}
	}
	if ecc <= k {
		return []int{x}, nil
	}
	classes := make([][]int, k+1)
	for v := 0; v < n; v++ {
		r := depth[v] % (k + 1)
		classes[r] = append(classes[r], v)
	}
	// Every residue class is nonempty here because depths 0..ecc with
	// ecc > k realize all residues. Return the smallest class that
	// verifies as a covering of the tree (all do, by [MM75]; the check
	// guards the implementation).
	order := make([]int, k+1)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(classes[order[a]]) < len(classes[order[b]]) })
	for _, i := range order {
		if len(classes[i]) == 0 {
			continue
		}
		if VerifyCovering(tree, classes[i], k) {
			z := append([]int(nil), classes[i]...)
			sort.Ints(z)
			return z, nil
		}
	}
	return nil, errors.New("graph: Covering: no residue class verified (unreachable if [MM75] holds)")
}

// GreedyCovering constructs a k-covering by repeatedly choosing the vertex
// covering the most uncovered vertices within hop distance k. It often
// produces smaller coverings than Covering on specific topologies and is
// used in ablation experiments; it carries no size guarantee and costs
// O(V (V + E)) in the worst case.
func GreedyCovering(g *Graph, k int) ([]int, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("graph: GreedyCovering of empty graph")
	}
	if k < 0 {
		return nil, fmt.Errorf("graph: GreedyCovering requires k >= 0, got %d", k)
	}
	// balls[v] = vertices within hop k of v.
	covered := make([]bool, n)
	numCovered := 0
	var z []int
	ball := func(v int) []int {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[v] = 0
		queue := []int{v}
		out := []int{v}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if dist[u] >= k {
				continue
			}
			for _, h := range g.Adj(u) {
				if dist[h.To] == -1 {
					dist[h.To] = dist[u] + 1
					queue = append(queue, h.To)
					out = append(out, h.To)
				}
			}
		}
		return out
	}
	for numCovered < n {
		bestV, bestGain := -1, -1
		for v := 0; v < n; v++ {
			gain := 0
			for _, u := range ball(v) {
				if !covered[u] {
					gain++
				}
			}
			if gain > bestGain {
				bestV, bestGain = v, gain
			}
		}
		if bestGain <= 0 {
			return nil, errors.New("graph: GreedyCovering: graph has an unreachable vertex")
		}
		z = append(z, bestV)
		for _, u := range ball(bestV) {
			if !covered[u] {
				covered[u] = true
				numCovered++
			}
		}
	}
	sort.Ints(z)
	return z, nil
}

// GridCovering returns the covering of Theorem 4.7 for the side x side
// grid graph produced by Grid(side): the vertices (i, j) whose row and
// column indices are both congruent to s-1 modulo s, with boundary anchors
// added so that every index is within s-1 of a chosen index. The result is
// a 2(s-1)-covering of the grid of size about (side/s)^2; Theorem 4.7 uses
// s = ceil(V^{1/3}) so that |Z| <= ~V^{1/3} and k = 2 V^{1/3}.
func GridCovering(side, s int) []int {
	if side <= 0 || s <= 0 {
		return nil
	}
	anchors := gridAnchors(side, s)
	var z []int
	for _, i := range anchors {
		for _, j := range anchors {
			z = append(z, i*side+j)
		}
	}
	sort.Ints(z)
	return z
}

// gridAnchors returns indices s-1, 2s-1, ... clipped to side-1, ensuring
// every index in [0, side) is within s-1 of an anchor.
func gridAnchors(side, s int) []int {
	var anchors []int
	for a := s - 1; a < side; a += s {
		anchors = append(anchors, a)
	}
	if len(anchors) == 0 || side-1-anchors[len(anchors)-1] > s-1 {
		anchors = append(anchors, side-1)
	}
	return anchors
}
