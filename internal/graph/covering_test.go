package graph

import (
	"math/rand"
	"testing"
)

func TestVerifyCoveringBasics(t *testing.T) {
	g := Path(5)
	if !VerifyCovering(g, []int{2}, 2) {
		t.Error("center of P5 is a 2-covering")
	}
	if VerifyCovering(g, []int{0}, 2) {
		t.Error("endpoint of P5 is not a 2-covering")
	}
	if !VerifyCovering(g, []int{0, 4}, 2) {
		t.Error("both endpoints form a 2-covering")
	}
	if VerifyCovering(g, nil, 3) {
		t.Error("empty set covers nothing")
	}
	if VerifyCovering(g, []int{9}, 3) {
		t.Error("out-of-range vertex accepted")
	}
	if !VerifyCovering(New(0), nil, 1) {
		t.Error("empty graph trivially covered")
	}
}

func TestVerifyCoveringDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if VerifyCovering(g, []int{0}, 10) {
		t.Error("covering cannot reach the other component")
	}
	if !VerifyCovering(g, []int{0, 2}, 1) {
		t.Error("one vertex per component at k=1 covers")
	}
}

func TestNearestCoveringVertex(t *testing.T) {
	g := Path(7)
	assign, hop := NearestCoveringVertex(g, []int{0, 6})
	if assign[1] != 0 || assign[5] != 6 {
		t.Errorf("assign = %v", assign)
	}
	if hop[3] != 3 {
		t.Errorf("hop[3] = %d", hop[3])
	}
	if hop[0] != 0 || hop[6] != 0 {
		t.Error("covering vertices not at hop 0")
	}
}

func TestCoveringSizeBoundProperty(t *testing.T) {
	// Lemma 4.4: for connected g with V >= k+1, the covering has size at
	// most floor(V/(k+1)) and verifies as a k-covering.
	rng := rand.New(rand.NewSource(13))
	graphs := []*Graph{
		Path(50),
		Cycle(41),
		Grid(8),
		Star(30),
		BalancedBinaryTree(63),
		Caterpillar(12, 25),
		ConnectedErdosRenyi(60, 0.08, rng),
		RandomTree(80, rng),
	}
	for _, g := range graphs {
		for _, k := range []int{1, 2, 3, 5, 9, 20} {
			if g.N() < k+1 {
				continue
			}
			z, err := Covering(g, k)
			if err != nil {
				t.Fatalf("V=%d k=%d: %v", g.N(), k, err)
			}
			if len(z) > g.N()/(k+1) {
				t.Errorf("V=%d k=%d: |Z| = %d > %d", g.N(), k, len(z), g.N()/(k+1))
			}
			if !VerifyCovering(g, z, k) {
				t.Errorf("V=%d k=%d: returned set is not a k-covering", g.N(), k)
			}
		}
	}
}

func TestCoveringRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(80)
		g := ConnectedErdosRenyi(n, 3/float64(n), rng)
		k := 1 + rng.Intn(n-1)
		if n < k+1 {
			continue
		}
		z, err := Covering(g, k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", n, k, err)
		}
		if len(z) > n/(k+1) || !VerifyCovering(g, z, k) {
			t.Fatalf("n=%d k=%d: |Z|=%d bound=%d", n, k, len(z), n/(k+1))
		}
	}
}

func TestCoveringErrors(t *testing.T) {
	if _, err := Covering(Path(3), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Covering(New(0), 1); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Covering(Path(2), 3); err == nil {
		t.Error("V < k+1 accepted")
	}
	g := New(4)
	g.AddEdge(0, 1)
	if _, err := Covering(g, 1); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestCoveringSmallDiameterReturnsSingleton(t *testing.T) {
	g := Star(30) // diameter 2
	z, err := Covering(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 1 {
		t.Errorf("|Z| = %d, want 1", len(z))
	}
	if !VerifyCovering(g, z, 5) {
		t.Error("singleton not a covering")
	}
}

func TestGreedyCovering(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(40)
		g := ConnectedErdosRenyi(n, 0.1, rng)
		k := 1 + rng.Intn(4)
		z, err := GreedyCovering(g, k)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyCovering(g, z, k) {
			t.Fatalf("greedy set is not a %d-covering", k)
		}
	}
	if _, err := GreedyCovering(New(0), 1); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := GreedyCovering(Path(2), -1); err == nil {
		t.Error("negative k accepted")
	}
}

func TestGreedyCoveringDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	z, err := GreedyCovering(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyCovering(g, z, 1) {
		t.Error("greedy covering fails on disconnected graph")
	}
}

func TestGridCovering(t *testing.T) {
	for _, tc := range []struct{ side, s int }{{4, 2}, {9, 3}, {16, 3}, {25, 5}, {10, 4}, {7, 3}} {
		z := GridCovering(tc.side, tc.s)
		if len(z) == 0 {
			t.Fatalf("side=%d s=%d: empty covering", tc.side, tc.s)
		}
		g := Grid(tc.side)
		k := 2 * (tc.s - 1)
		if k < 1 {
			k = 1
		}
		if !VerifyCovering(g, z, k) {
			t.Errorf("side=%d s=%d: not a %d-covering", tc.side, tc.s, k)
		}
	}
}

func TestGridCoveringSizeShape(t *testing.T) {
	// Theorem 4.7 size: about (side/s)^2 = V^{1/3} when s = V^{1/3}.
	side := 16 // V = 256
	s := 7     // ~ V^{1/3} = 6.35
	z := GridCovering(side, s)
	// anchors: 6, 13, plus 15 since 15-13 = 2 <= 6; 3 anchors -> 9 vertices.
	if len(z) > 16 {
		t.Errorf("|Z| = %d, want <= 16 (~V^{1/3} scale)", len(z))
	}
}

func TestGridCoveringDegenerate(t *testing.T) {
	if z := GridCovering(0, 2); z != nil {
		t.Error("side=0 should be nil")
	}
	if z := GridCovering(3, 0); z != nil {
		t.Error("s=0 should be nil")
	}
	z := GridCovering(1, 1)
	if len(z) != 1 || z[0] != 0 {
		t.Errorf("1x1 grid covering = %v", z)
	}
}
