package graph

import (
	"fmt"
	"math"
	"sync"
)

// This file is the allocation-free single-source shortest-path engine the
// release-once / query-many oracles run on. The historical implementation
// used container/heap, whose interface boxes every vertex into an `any` on
// each push and pop; here the frontier is an indexed 4-ary heap over plain
// int32 slices (4-ary because Dijkstra does far more decrease-keys than
// pops, and a wider node flattens the sift-up path while keeping sift-down
// cache-friendly). All per-query state lives in a sync.Pool-recycled
// workspace, so steady-state queries allocate nothing.

// spWorkspace holds every array one Dijkstra run needs. A workspace is
// good for graphs of any size: reset grows the arrays monotonically and
// clears only the first n entries.
type spWorkspace struct {
	dist   []float64
	parent []int32
	via    []int32
	done   []bool
	want   []bool  // per-target marks for multi-target early exit
	heap   []int32 // frontier vertices, 4-ary heap ordered by dist
	pos    []int32 // pos[v] = index of v in heap, or -1
}

var spPool = sync.Pool{New: func() any { return new(spWorkspace) }}

// reset prepares the workspace for an n-vertex run.
func (ws *spWorkspace) reset(n int) {
	if cap(ws.dist) < n {
		ws.dist = make([]float64, n)
		ws.parent = make([]int32, n)
		ws.via = make([]int32, n)
		ws.done = make([]bool, n)
		ws.want = make([]bool, n)
		ws.pos = make([]int32, n)
		ws.heap = make([]int32, 0, n)
	}
	ws.dist = ws.dist[:n]
	ws.parent = ws.parent[:n]
	ws.via = ws.via[:n]
	ws.done = ws.done[:n]
	ws.want = ws.want[:n]
	ws.pos = ws.pos[:n]
	ws.heap = ws.heap[:0]
	for i := 0; i < n; i++ {
		ws.dist[i] = math.Inf(1)
		ws.parent[i] = -1
		ws.via[i] = -1
		ws.done[i] = false
		ws.want[i] = false
		ws.pos[i] = -1
	}
}

// push inserts v into the frontier; v must not already be present.
func (ws *spWorkspace) push(v int32) {
	ws.pos[v] = int32(len(ws.heap))
	ws.heap = append(ws.heap, v)
	ws.siftUp(len(ws.heap) - 1)
}

// pop removes and returns the frontier vertex with minimum distance.
func (ws *spWorkspace) pop() int32 {
	top := ws.heap[0]
	last := len(ws.heap) - 1
	ws.heap[0] = ws.heap[last]
	ws.pos[ws.heap[0]] = 0
	ws.heap = ws.heap[:last]
	ws.pos[top] = -1
	if last > 0 {
		ws.siftDown(0)
	}
	return top
}

// decrease restores heap order after ws.dist[v] decreased.
func (ws *spWorkspace) decrease(v int32) {
	ws.siftUp(int(ws.pos[v]))
}

func (ws *spWorkspace) siftUp(i int) {
	v := ws.heap[i]
	d := ws.dist[v]
	for i > 0 {
		p := (i - 1) / 4
		pv := ws.heap[p]
		if ws.dist[pv] <= d {
			break
		}
		ws.heap[i] = pv
		ws.pos[pv] = int32(i)
		i = p
	}
	ws.heap[i] = v
	ws.pos[v] = int32(i)
}

func (ws *spWorkspace) siftDown(i int) {
	v := ws.heap[i]
	d := ws.dist[v]
	n := len(ws.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		bd := ws.dist[ws.heap[first]]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if cd := ws.dist[ws.heap[c]]; cd < bd {
				best, bd = c, cd
			}
		}
		if bd >= d {
			break
		}
		bv := ws.heap[best]
		ws.heap[i] = bv
		ws.pos[bv] = int32(i)
		i = best
	}
	ws.heap[i] = v
	ws.pos[v] = int32(i)
}

// run executes Dijkstra from source over the frozen CSR adjacency.
// stopAfter is the number of marked (ws.want) vertices after whose
// settlement the search may stop; pass 0 to settle the whole reachable
// component. Weights must be nonnegative (checked by callers).
func (ws *spWorkspace) run(g *Graph, w []float64, source int, stopAfter int) {
	adj := g.csrSnapshot()
	ws.dist[source] = 0
	ws.push(int32(source))
	remaining := stopAfter
	for len(ws.heap) > 0 {
		v := ws.pop()
		ws.done[v] = true
		if ws.want[v] {
			remaining--
			if remaining == 0 {
				return
			}
		}
		dv := ws.dist[v]
		for _, h := range adj.halves[adj.offsets[v]:adj.offsets[v+1]] {
			u := h.To
			if ws.done[u] {
				continue
			}
			nd := dv + w[h.Edge]
			if nd < ws.dist[u] {
				ws.dist[u] = nd
				ws.parent[u] = v
				ws.via[u] = int32(h.Edge)
				if ws.pos[u] >= 0 {
					ws.decrease(int32(u))
				} else {
					ws.push(int32(u))
				}
			}
		}
	}
}

// checkDijkstraArgs validates the shared preconditions of every engine
// entry point. The negative-weight scan is O(E) with no allocations; it
// keeps ErrNegativeWeight exact instead of failing mid-search.
func checkDijkstraArgs(g *Graph, w []float64, source int) error {
	if err := checkDijkstraArgsTrusted(g, w, source); err != nil {
		return err
	}
	for id, x := range w {
		if x < 0 {
			return fmt.Errorf("%w: edge %d has weight %g", ErrNegativeWeight, id, x)
		}
	}
	return nil
}

// checkDijkstraArgsTrusted is the O(1) half of the validation, for
// callers that already guarantee nonnegative weights.
func checkDijkstraArgsTrusted(g *Graph, w []float64, source int) error {
	if len(w) != g.M() {
		return fmt.Errorf("graph: Dijkstra weight vector has length %d, want %d", len(w), g.M())
	}
	if source < 0 || source >= g.N() {
		return fmt.Errorf("graph: Dijkstra source %d out of range [0, %d)", source, g.N())
	}
	return nil
}

// QueryDistance returns the weighted s-t distance (Inf if unreachable),
// running Dijkstra in a pooled workspace with early exit once t settles.
// It allocates nothing in steady state and is safe for concurrent use.
func QueryDistance(g *Graph, w []float64, s, t int) (float64, error) {
	if err := checkDijkstraArgs(g, w, s); err != nil {
		return 0, err
	}
	return queryDistanceValidated(g, w, s, t)
}

// QueryDistanceTrusted is QueryDistance minus the O(E) negative-weight
// scan, for weight vectors the caller already guarantees nonnegative
// (e.g. clamped once at release time). This is the hot path of the
// synthetic-graph distance oracles: an early-exit query touches only
// the part of the graph it needs.
func QueryDistanceTrusted(g *Graph, w []float64, s, t int) (float64, error) {
	if err := checkDijkstraArgsTrusted(g, w, s); err != nil {
		return 0, err
	}
	return queryDistanceValidated(g, w, s, t)
}

func queryDistanceValidated(g *Graph, w []float64, s, t int) (float64, error) {
	if t < 0 || t >= g.N() {
		return 0, fmt.Errorf("graph: QueryDistance target %d out of range [0, %d)", t, g.N())
	}
	if s == t {
		return 0, nil
	}
	ws := spPool.Get().(*spWorkspace)
	ws.reset(g.N())
	ws.want[t] = true
	ws.run(g, w, s, 1)
	d := ws.dist[t]
	spPool.Put(ws)
	return d, nil
}

// QueryDistancesFrom fills out[i] with the distance from source to
// targets[i] (Inf if unreachable), running one Dijkstra with early exit
// once every target settles. len(out) must equal len(targets). Allocates
// nothing in steady state.
func QueryDistancesFrom(g *Graph, w []float64, source int, targets []int, out []float64) error {
	if err := checkDijkstraArgs(g, w, source); err != nil {
		return err
	}
	return queryDistancesFromValidated(g, w, source, targets, out)
}

// QueryDistancesFromTrusted is QueryDistancesFrom minus the O(E)
// negative-weight scan, for weight vectors already known nonnegative.
func QueryDistancesFromTrusted(g *Graph, w []float64, source int, targets []int, out []float64) error {
	if err := checkDijkstraArgsTrusted(g, w, source); err != nil {
		return err
	}
	return queryDistancesFromValidated(g, w, source, targets, out)
}

func queryDistancesFromValidated(g *Graph, w []float64, source int, targets []int, out []float64) error {
	if len(out) != len(targets) {
		return fmt.Errorf("graph: QueryDistancesFrom out has length %d, want %d", len(out), len(targets))
	}
	for _, t := range targets {
		if t < 0 || t >= g.N() {
			return fmt.Errorf("graph: QueryDistancesFrom target %d out of range [0, %d)", t, g.N())
		}
	}
	if len(targets) == 0 {
		return nil
	}
	ws := spPool.Get().(*spWorkspace)
	ws.reset(g.N())
	distinct := 0
	for _, t := range targets {
		if !ws.want[t] {
			ws.want[t] = true
			distinct++
		}
	}
	ws.run(g, w, source, distinct)
	for i, t := range targets {
		out[i] = ws.dist[t]
	}
	spPool.Put(ws)
	return nil
}
