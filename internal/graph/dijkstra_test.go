package graph

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func randomConnectedGraph(t *testing.T, n int, extra int, rng *rand.Rand) (*Graph, []float64) {
	t.Helper()
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v)
	}
	for i := 0; i < extra; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	w := make([]float64, g.M())
	for i := range w {
		w[i] = rng.Float64() * 10
	}
	return g, w
}

func TestQueryDistanceMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g, w := randomConnectedGraph(t, 40, 60, rng)
		for s := 0; s < g.N(); s += 7 {
			tree, err := Dijkstra(g, w, s)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < g.N(); v++ {
				got, err := QueryDistance(g, w, s, v)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-tree.Dist[v]) > 1e-9 {
					t.Fatalf("QueryDistance(%d, %d) = %g, Dijkstra says %g", s, v, got, tree.Dist[v])
				}
			}
		}
	}
}

func TestQueryDistancesFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, w := randomConnectedGraph(t, 50, 80, rng)
	tree, err := Dijkstra(g, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	targets := []int{0, 49, 3, 17, 17, 8}
	out := make([]float64, len(targets))
	if err := QueryDistancesFrom(g, w, 3, targets, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range targets {
		if math.Abs(out[i]-tree.Dist[v]) > 1e-9 {
			t.Fatalf("target %d: got %g, want %g", v, out[i], tree.Dist[v])
		}
	}
	if err := QueryDistancesFrom(g, w, 3, []int{1}, make([]float64, 2)); err == nil {
		t.Fatal("length mismatch not reported")
	}
	if err := QueryDistancesFrom(g, w, 3, []int{g.N()}, make([]float64, 1)); err == nil {
		t.Fatal("out-of-range target not reported")
	}
	if err := QueryDistancesFrom(g, w, 3, nil, nil); err != nil {
		t.Fatalf("empty target list: %v", err)
	}
}

// TestQueryDistanceTrusted checks the scan-skipping variants agree with
// the validating ones on valid input and still reject bad arguments.
func TestQueryDistanceTrusted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, w := randomConnectedGraph(t, 30, 40, rng)
	for v := 0; v < g.N(); v += 3 {
		want, err := QueryDistance(g, w, 2, v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := QueryDistanceTrusted(g, w, 2, v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trusted(2, %d) = %g, want %g", v, got, want)
		}
	}
	if _, err := QueryDistanceTrusted(g, w, -1, 0); err == nil {
		t.Fatal("trusted accepted negative source")
	}
	if _, err := QueryDistanceTrusted(g, w[:1], 0, 1); err == nil {
		t.Fatal("trusted accepted weight length mismatch")
	}
	tree, err := Dijkstra(g, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	targets := []int{0, 7, 29}
	out := make([]float64, len(targets))
	if err := QueryDistancesFromTrusted(g, w, 5, targets, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range targets {
		if out[i] != tree.Dist[v] {
			t.Fatalf("trusted batch target %d: %g, want %g", v, out[i], tree.Dist[v])
		}
	}
}

func TestQueryDistanceUnreachableAndErrors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1) // 2 and 3 isolated
	w := []float64{1}
	d, err := QueryDistance(g, w, 0, 2)
	if err != nil || !math.IsInf(d, 1) {
		t.Fatalf("unreachable: got %g, %v", d, err)
	}
	if d, err := QueryDistance(g, w, 2, 2); err != nil || d != 0 {
		t.Fatalf("s == t: got %g, %v", d, err)
	}
	if _, err := QueryDistance(g, w, -1, 0); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := QueryDistance(g, w, 0, 4); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := QueryDistance(g, []float64{-1}, 0, 1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := QueryDistance(g, []float64{1, 2}, 0, 1); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
}

// TestQueryDistanceZeroAlloc verifies the pooled-workspace promise the
// distance oracles rely on: steady-state point queries allocate nothing.
func TestQueryDistanceZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool does not cache under -race; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(1))
	g, w := randomConnectedGraph(t, 64, 100, rng)
	g.Adj(0) // freeze the CSR before measuring
	if _, err := QueryDistance(g, w, 0, 63); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := QueryDistance(g, w, 0, 63); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("QueryDistance allocates %.1f objects per op, want 0", allocs)
	}
}

// TestQueryDistanceConcurrent hammers the pooled engine from many
// goroutines on one frozen graph; run under -race this checks the CSR
// snapshot and workspace pool are safe to share.
func TestQueryDistanceConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, w := randomConnectedGraph(t, 60, 90, rng)
	want, err := Dijkstra(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := (seed*31 + i) % g.N()
				got, err := QueryDistance(g, w, 0, v)
				if err != nil {
					t.Error(err)
					return
				}
				if math.Abs(got-want.Dist[v]) > 1e-9 {
					t.Errorf("concurrent QueryDistance(0, %d) = %g, want %g", v, got, want.Dist[v])
					return
				}
			}
		}(worker)
	}
	wg.Wait()
}

// TestCSRRebuildAfterAddEdge checks that mutating the builder invalidates
// the frozen adjacency snapshot.
func TestCSRRebuildAfterAddEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if got := g.Degree(0); got != 1 {
		t.Fatalf("degree before = %d", got)
	}
	g.AddEdge(0, 2)
	if got := g.Degree(0); got != 2 {
		t.Fatalf("degree after AddEdge = %d, want 2 (stale CSR?)", got)
	}
	adj := g.Adj(0)
	if len(adj) != 2 || adj[0].To != 1 || adj[1].To != 2 {
		t.Fatalf("adjacency after rebuild = %v", adj)
	}
}
