package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Path returns the path graph on n vertices: edges (i, i+1) with edge ID i.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle graph on n vertices.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Grid returns the side x side grid graph. Vertex (i, j) has ID i*side+j;
// horizontal and vertical neighbors are adjacent.
func Grid(side int) *Graph {
	g := New(side * side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			v := i*side + j
			if j+1 < side {
				g.AddEdge(v, v+1)
			}
			if i+1 < side {
				g.AddEdge(v, v+side)
			}
		}
	}
	return g
}

// Star returns the star graph: vertex 0 joined to vertices 1..n-1.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph on n vertices.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b}: left vertices 0..a-1, right a..a+b-1.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(i, a+j)
		}
	}
	return g
}

// BalancedBinaryTree returns the complete-as-possible binary tree on n
// vertices: vertex v has children 2v+1 and 2v+2 where in range.
func BalancedBinaryTree(n int) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		if c := 2*v + 1; c < n {
			g.AddEdge(v, c)
		}
		if c := 2*v + 2; c < n {
			g.AddEdge(v, c)
		}
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine path of length
// spine with legs pendant legs attached round-robin to spine vertices.
// Total vertices: spine + legs.
func Caterpillar(spine, legs int) *Graph {
	g := New(spine + legs)
	for i := 0; i+1 < spine; i++ {
		g.AddEdge(i, i+1)
	}
	for l := 0; l < legs; l++ {
		g.AddEdge(l%spine, spine+l)
	}
	return g
}

// RandomTree returns a uniformly random recursive tree on n vertices:
// vertex v > 0 attaches to a uniformly random earlier vertex. (Not the
// uniform distribution over all labeled trees, but a standard random tree
// model with logarithmic expected depth.)
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v)
	}
	return g
}

// RandomPruferTree returns a uniformly random labeled tree on n vertices,
// decoded from a uniformly random Prüfer sequence.
func RandomPruferTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	if n == 2 {
		g.AddEdge(0, 1)
		return g
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, s := range seq {
		degree[s]++
	}
	// Min-leaf decoding with a pointer scan.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, s := range seq {
		g.AddEdge(leaf, s)
		degree[s]--
		if degree[s] == 1 && s < ptr {
			leaf = s
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	g.AddEdge(leaf, n-1)
	return g
}

// ErdosRenyi returns G(n, p) conditioned on nothing; the result may be
// disconnected. Use ConnectedErdosRenyi for a connected variant.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// ConnectedErdosRenyi returns G(n, p) with a random spanning tree
// superimposed, guaranteeing connectivity while keeping ER-like density.
func ConnectedErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	// Track spanning-tree pairs locally instead of probing the graph:
	// interleaving HasEdgeBetween with AddEdge would rebuild the frozen
	// adjacency snapshot per added edge. The rng call sequence matches
	// the historical implementation, so seeded draws are unchanged.
	type pair struct{ a, b int }
	seen := make(map[pair]bool, n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := perm[rng.Intn(i)], perm[i]
		g.AddEdge(u, v)
		if u > v {
			u, v = v, u
		}
		seen[pair{u, v}] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p && !seen[pair{i, j}] {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// UniformRandomWeights returns a weight vector drawn i.i.d. uniform [lo, hi].
func UniformRandomWeights(g *Graph, lo, hi float64, rng *rand.Rand) []float64 {
	w := make([]float64, g.M())
	for i := range w {
		w[i] = lo + (hi-lo)*rng.Float64()
	}
	return w
}

// ----- Hard instances for the lower bounds of Section 5 and Appendix B -----

// PathGadget is the graph of Figure 2: vertices 0..n with two parallel
// edges between each pair of consecutive vertices. Edge0[i] and Edge1[i]
// are the IDs of the two parallel edges between vertices i and i+1.
type PathGadget struct {
	G     *Graph
	N     int   // number of input bits; the graph has N+1 vertices
	Edge0 []int // Edge0[i]: the "bit 0" edge between i and i+1
	Edge1 []int // Edge1[i]: the "bit 1" edge between i and i+1
	S, T  int   // the endpoints 0 and N
}

// NewPathGadget builds the Figure-2 lower-bound graph for n input bits.
func NewPathGadget(n int) *PathGadget {
	g := New(n + 1)
	pg := &PathGadget{G: g, N: n, S: 0, T: n}
	pg.Edge0 = make([]int, n)
	pg.Edge1 = make([]int, n)
	for i := 0; i < n; i++ {
		pg.Edge0[i] = g.AddEdge(i, i+1)
		pg.Edge1[i] = g.AddEdge(i, i+1)
	}
	return pg
}

// Weights encodes the database x into the weight function w_x of Lemma
// 5.2: the edge e^{(x_i)}_i gets weight 0 and the other parallel edge gets
// weight 1, so the shortest s-t path has weight 0 and follows the bits.
func (pg *PathGadget) Weights(x []bool) []float64 {
	if len(x) != pg.N {
		panic(fmt.Sprintf("graph: PathGadget.Weights got %d bits, want %d", len(x), pg.N))
	}
	w := make([]float64, pg.G.M())
	for i, xi := range x {
		if xi {
			w[pg.Edge0[i]] = 1
			w[pg.Edge1[i]] = 0
		} else {
			w[pg.Edge0[i]] = 0
			w[pg.Edge1[i]] = 1
		}
	}
	return w
}

// Decode recovers a bit vector from a released s-t path per Lemma 5.2:
// y_i = 0 iff edge e^{(0)}_i is on the path.
func (pg *PathGadget) Decode(path []int) []bool {
	onPath := make(map[int]bool, len(path))
	for _, id := range path {
		onPath[id] = true
	}
	y := make([]bool, pg.N)
	for i := 0; i < pg.N; i++ {
		y[i] = !onPath[pg.Edge0[i]]
	}
	return y
}

// MSTGadget is the left graph of Figure 3: a star multigraph with two
// parallel edges from the hub (vertex 0) to each of the n outer vertices.
type MSTGadget struct {
	G     *Graph
	N     int
	Edge0 []int
	Edge1 []int
}

// NewMSTGadget builds the Figure-3 (left) lower-bound graph for n bits.
func NewMSTGadget(n int) *MSTGadget {
	g := New(n + 1)
	mg := &MSTGadget{G: g, N: n}
	mg.Edge0 = make([]int, n)
	mg.Edge1 = make([]int, n)
	for i := 0; i < n; i++ {
		mg.Edge0[i] = g.AddEdge(0, i+1)
		mg.Edge1[i] = g.AddEdge(0, i+1)
	}
	return mg
}

// Weights encodes x into w_x per Lemma B.2: edge e^{(x_i)}_i has weight 0,
// its twin weight 1, so the MST has weight 0.
func (mg *MSTGadget) Weights(x []bool) []float64 {
	if len(x) != mg.N {
		panic(fmt.Sprintf("graph: MSTGadget.Weights got %d bits, want %d", len(x), mg.N))
	}
	w := make([]float64, mg.G.M())
	for i, xi := range x {
		if xi {
			w[mg.Edge0[i]] = 1
			w[mg.Edge1[i]] = 0
		} else {
			w[mg.Edge0[i]] = 0
			w[mg.Edge1[i]] = 1
		}
	}
	return w
}

// Decode recovers a bit vector from a released spanning tree per Lemma
// B.2: y_i = 0 iff edge e^{(0)}_i is in the tree.
func (mg *MSTGadget) Decode(tree []int) []bool {
	inTree := make(map[int]bool, len(tree))
	for _, id := range tree {
		inTree[id] = true
	}
	y := make([]bool, mg.N)
	for i := 0; i < mg.N; i++ {
		y[i] = !inTree[mg.Edge0[i]]
	}
	return y
}

// HourglassGadget is the right graph of Figure 3: n disjoint 4-vertex
// gadgets. Gadget i has left vertices (0,0,i), (0,1,i) and right vertices
// (1,0,i), (1,1,i), with the four edges from each left to each right
// vertex. Vertex (b1, b2, c) has ID c*4 + b1*2 + b2.
type HourglassGadget struct {
	G *Graph
	N int
	// EdgeIdx[c][b][b'] is the edge ID from (0,b,c) to (1,b',c).
	EdgeIdx [][2][2]int
}

// NewHourglassGadget builds the Figure-3 (right) lower-bound graph for n
// bits (4n vertices, 4n edges).
func NewHourglassGadget(n int) *HourglassGadget {
	g := New(4 * n)
	hg := &HourglassGadget{G: g, N: n, EdgeIdx: make([][2][2]int, n)}
	vid := func(b1, b2, c int) int { return c*4 + b1*2 + b2 }
	for c := 0; c < n; c++ {
		for b := 0; b < 2; b++ {
			for b2 := 0; b2 < 2; b2++ {
				hg.EdgeIdx[c][b][b2] = g.AddEdge(vid(0, b, c), vid(1, b2, c))
			}
		}
	}
	return hg
}

// Weights encodes x per Lemma B.5: the edge from (0,1,i) to (1, 1-x_i, i)
// has weight 1; the other 3 edges of gadget i have weight 0. The min-cost
// perfect matching then has weight 0: match (0,1,i)-(1,x_i,i) and
// (0,0,i)-(1,1-x_i,i).
func (hg *HourglassGadget) Weights(x []bool) []float64 {
	if len(x) != hg.N {
		panic(fmt.Sprintf("graph: HourglassGadget.Weights got %d bits, want %d", len(x), hg.N))
	}
	w := make([]float64, hg.G.M())
	for i, xi := range x {
		bad := 1
		if xi {
			bad = 0
		}
		w[hg.EdgeIdx[i][1][bad]] = 1
	}
	return w
}

// Decode recovers bits from a perfect matching per Lemma B.5: y_i = 0 iff
// the edge (0,1,i)-(1,0,i) is matched.
func (hg *HourglassGadget) Decode(matching []int) []bool {
	inM := make(map[int]bool, len(matching))
	for _, id := range matching {
		inM[id] = true
	}
	y := make([]bool, hg.N)
	for i := 0; i < hg.N; i++ {
		y[i] = !inM[hg.EdgeIdx[i][1][0]]
	}
	return y
}

// PlantedPathGraph returns a graph containing a designated k-hop path
// from s=0 to t=k with low weights (the planted shortest path), embedded
// in a graph of n >= k+1 vertices. Each planted segment also carries a
// parallel "decoy" edge slightly heavier than the true segment, so a
// private mechanism's noise can be tricked into wrong per-segment choices
// whose cost accumulates linearly with the hop count — the regime
// Theorem 5.5 speaks to (experiment E7). Heavier random chords at weight
// ~heavy make the instance non-degenerate. It returns the graph, a weight
// vector, and the planted path's edge IDs.
func PlantedPathGraph(n, k int, heavy float64, rng *rand.Rand) (*Graph, []float64, []int) {
	if k+1 > n {
		panic("graph: PlantedPathGraph needs n >= k+1")
	}
	g := New(n)
	var w []float64
	planted := make([]int, 0, k)
	// The planted light path 0-1-...-k with per-segment decoys.
	for i := 0; i < k; i++ {
		id := g.AddEdge(i, i+1)
		planted = append(planted, id)
		seg := 1 + rng.Float64() // weight in [1, 2)
		w = append(w, seg)
		g.AddEdge(i, i+1) // decoy: parallel, a touch heavier
		w = append(w, seg+3*rng.Float64())
	}
	// Direct heavy edge from s to t guarantees a 1-hop alternative.
	if k > 1 {
		g.AddEdge(0, k)
		w = append(w, heavy*(1+rng.Float64()))
	}
	// Random heavier chords to make the instance non-degenerate.
	extra := 3 * n
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v)
		w = append(w, heavy*(0.5+rng.Float64()))
	}
	// Attach any floating vertices so the graph is connected.
	seen := HopDistances(g, 0)
	for v, d := range seen {
		if d == -1 {
			g.AddEdge(rng.Intn(v), v)
			w = append(w, heavy*(0.5+rng.Float64()))
		}
	}
	return g, w, planted
}

// GridSide returns the side length s with s*s = n, or an error if n is not
// a perfect square.
func GridSide(n int) (int, error) {
	s := int(math.Round(math.Sqrt(float64(n))))
	if s*s != n {
		return 0, fmt.Errorf("graph: %d is not a perfect square", n)
	}
	return s, nil
}
