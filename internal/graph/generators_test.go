package graph

import (
	"math/rand"
	"testing"
)

func TestPathCycleCounts(t *testing.T) {
	if g := Path(5); g.N() != 5 || g.M() != 4 {
		t.Error("Path dims")
	}
	if g := Path(1); g.M() != 0 {
		t.Error("P1 has edges")
	}
	if g := Cycle(5); g.M() != 5 {
		t.Error("C5 dims")
	}
	if g := Cycle(2); g.M() != 1 {
		t.Error("C2 should be a single edge (no closing duplicate)")
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3)
	if g.N() != 9 || g.M() != 12 {
		t.Fatalf("grid dims %d %d", g.N(), g.M())
	}
	if !g.HasEdgeBetween(0, 1) || !g.HasEdgeBetween(0, 3) || g.HasEdgeBetween(0, 4) {
		t.Error("grid adjacency wrong")
	}
	if !g.Connected() || !g.IsSimple() {
		t.Error("grid should be connected and simple")
	}
}

func TestStarComplete(t *testing.T) {
	if g := Star(6); g.M() != 5 || g.Degree(0) != 5 {
		t.Error("star dims")
	}
	if g := Complete(5); g.M() != 10 {
		t.Error("K5 dims")
	}
	if g := CompleteBipartite(3, 4); g.M() != 12 || g.N() != 7 {
		t.Error("K34 dims")
	}
}

func TestTreesAreTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	gens := map[string]func() *Graph{
		"balanced":    func() *Graph { return BalancedBinaryTree(2 + rng.Intn(100)) },
		"caterpillar": func() *Graph { return Caterpillar(1+rng.Intn(10), rng.Intn(30)) },
		"random":      func() *Graph { return RandomTree(1+rng.Intn(100), rng) },
		"prufer":      func() *Graph { return RandomPruferTree(1+rng.Intn(100), rng) },
	}
	for name, gen := range gens {
		for trial := 0; trial < 20; trial++ {
			g := gen()
			if g.M() != g.N()-1 {
				t.Fatalf("%s: %d edges on %d vertices", name, g.M(), g.N())
			}
			if !g.Connected() {
				t.Fatalf("%s: disconnected", name)
			}
		}
	}
}

func TestPruferSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	if g := RandomPruferTree(1, rng); g.M() != 0 {
		t.Error("n=1")
	}
	if g := RandomPruferTree(2, rng); g.M() != 1 {
		t.Error("n=2")
	}
	if g := RandomPruferTree(3, rng); g.M() != 2 || !g.Connected() {
		t.Error("n=3")
	}
}

func TestErdosRenyiConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		g := ConnectedErdosRenyi(n, 0.05, rng)
		if !g.Connected() {
			t.Fatalf("n=%d disconnected", n)
		}
		if !g.IsSimple() {
			t.Fatalf("n=%d not simple", n)
		}
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	n := 200
	g := ErdosRenyi(n, 0.1, rng)
	want := 0.1 * float64(n*(n-1)/2)
	got := float64(g.M())
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("edge count %g far from expectation %g", got, want)
	}
}

func TestUniformRandomWeightsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	g := Complete(20)
	w := UniformRandomWeights(g, 2, 5, rng)
	for _, x := range w {
		if x < 2 || x >= 5 {
			t.Fatalf("weight %g outside [2,5)", x)
		}
	}
}

func TestPathGadgetStructure(t *testing.T) {
	pg := NewPathGadget(10)
	if pg.G.N() != 11 || pg.G.M() != 20 {
		t.Fatalf("gadget dims %d %d", pg.G.N(), pg.G.M())
	}
	for i := 0; i < 10; i++ {
		e0, e1 := pg.G.Edge(pg.Edge0[i]), pg.G.Edge(pg.Edge1[i])
		if e0.From != i || e0.To != i+1 || e1.From != i || e1.To != i+1 {
			t.Fatalf("position %d edges wrong", i)
		}
	}
}

func TestPathGadgetEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		pg := NewPathGadget(n)
		x := make([]bool, n)
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		w := pg.Weights(x)
		// Shortest path has weight 0.
		path, wt, ok, err := ShortestPath(pg.G, w, pg.S, pg.T)
		if err != nil || !ok {
			t.Fatal(err)
		}
		if wt != 0 {
			t.Fatalf("optimal weight %g != 0", wt)
		}
		y := pg.Decode(path)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("decode mismatch at %d", i)
			}
		}
	}
}

func TestPathGadgetWeightsNeighboring(t *testing.T) {
	// Flipping one bit moves the weights by l1 distance exactly 2 — the
	// constant in the Lemma 5.2 privacy argument.
	pg := NewPathGadget(8)
	x := make([]bool, 8)
	w1 := pg.Weights(x)
	x[3] = true
	w2 := pg.Weights(x)
	if d := L1Distance(w1, w2); d != 2 {
		t.Fatalf("bit flip moved weights by %g, want 2", d)
	}
}

func TestPathGadgetWeightsPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPathGadget(3).Weights(make([]bool, 2))
}

func TestMSTGadgetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		mg := NewMSTGadget(n)
		x := make([]bool, n)
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		w := mg.Weights(x)
		tree, wt, err := MST(mg.G, w)
		if err != nil {
			t.Fatal(err)
		}
		if wt != 0 {
			t.Fatalf("MST weight %g != 0", wt)
		}
		y := mg.Decode(tree)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("decode mismatch at %d", i)
			}
		}
	}
}

func TestMSTGadgetBitFlipDistance(t *testing.T) {
	mg := NewMSTGadget(5)
	x := make([]bool, 5)
	w1 := mg.Weights(x)
	x[0] = true
	if d := L1Distance(w1, mg.Weights(x)); d != 2 {
		t.Fatalf("l1 = %g, want 2", d)
	}
}

func TestHourglassGadgetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		hg := NewHourglassGadget(n)
		if hg.G.N() != 4*n || hg.G.M() != 4*n {
			t.Fatalf("hourglass dims %d %d", hg.G.N(), hg.G.M())
		}
		x := make([]bool, n)
		for i := range x {
			x[i] = rng.Intn(2) == 1
		}
		w := hg.Weights(x)
		m, wt, err := MinWeightPerfectMatching(hg.G, w)
		if err != nil {
			t.Fatal(err)
		}
		if wt != 0 {
			t.Fatalf("matching weight %g != 0", wt)
		}
		y := hg.Decode(m)
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("decode mismatch at %d", i)
			}
		}
	}
}

func TestHourglassBitFlipDistance(t *testing.T) {
	hg := NewHourglassGadget(4)
	x := make([]bool, 4)
	w1 := hg.Weights(x)
	x[2] = true
	if d := L1Distance(w1, hg.Weights(x)); d != 2 {
		t.Fatalf("l1 = %g, want 2", d)
	}
}

func TestPlantedPathGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(100)
		k := 2 + rng.Intn(15)
		g, w, planted := PlantedPathGraph(n, k, 1000, rng)
		if len(w) != g.M() {
			t.Fatal("weight length mismatch")
		}
		if len(planted) != k {
			t.Fatalf("planted length %d != k %d", len(planted), k)
		}
		if err := g.ValidatePath(0, k, planted); err != nil {
			t.Fatalf("planted path invalid: %v", err)
		}
		if !g.Connected() {
			t.Fatal("planted graph disconnected")
		}
		// The planted path is near-optimal: weight within [k, 2k] while
		// alternatives cost hundreds.
		pw := PathWeight(w, planted)
		if pw < float64(k) || pw > 2*float64(k) {
			t.Fatalf("planted weight %g outside [k, 2k]", pw)
		}
	}
}

func TestGridSide(t *testing.T) {
	if s, err := GridSide(49); err != nil || s != 7 {
		t.Error("GridSide(49)")
	}
	if _, err := GridSide(50); err == nil {
		t.Error("GridSide(50) accepted")
	}
}
