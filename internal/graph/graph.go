// Package graph provides the graph substrate for the private edge-weight
// model of Sealfon (PODS 2016): graphs whose topology is public while the
// edge weights are private.
//
// A Graph stores only topology. Edges are identified by dense integer IDs
// so that parallel edges (needed by the paper's lower-bound gadgets) are
// first-class, and so that a weight assignment is simply a []float64
// indexed by edge ID. Two weight vectors are "neighboring" in the privacy
// model if their l1 distance is at most one; keeping weights out of the
// topology makes that relation, and all sensitivity accounting, exact.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Edge is one edge of a graph. Edges are undirected unless the graph was
// built with NewDirected, in which case the edge is oriented From -> To.
type Edge struct {
	ID   int
	From int
	To   int
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.From:
		return e.To
	case e.To:
		return e.From
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %d (%d,%d)", v, e.ID, e.From, e.To))
}

// Half is one directed half-edge in an adjacency list: the edge ID together
// with the far endpoint as seen from the vertex whose list contains it.
type Half struct {
	Edge int // edge ID
	To   int // far endpoint
}

// csr is a frozen compressed-sparse-row adjacency snapshot: the half-edges
// of vertex v occupy halves[offsets[v]:offsets[v+1]]. It is built once from
// the edge list and never mutated, so readers can share it without locks.
type csr struct {
	offsets []int32
	halves  []Half
}

// Graph is a (multi)graph with a fixed vertex set {0, ..., N-1} and edges
// identified by dense IDs {0, ..., M-1}. The zero value is an empty
// undirected graph with no vertices; use New or NewDirected for a graph
// with vertices.
//
// The edge list is the mutable builder; adjacency is served from a frozen
// CSR snapshot built on first use and invalidated by AddEdge. Concurrent
// reads (Adj, Degree, traversals) are safe once construction is done;
// AddEdge must not race with readers, exactly as with any mutable slice.
type Graph struct {
	n        int
	directed bool
	edges    []Edge

	frozen  atomic.Pointer[csr] // current snapshot; nil after a mutation
	buildMu sync.Mutex          // serializes snapshot builds
}

// New returns an empty undirected graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n}
}

// NewDirected returns an empty directed graph on n vertices.
func NewDirected(n int) *Graph {
	g := New(n)
	g.directed = true
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// AddEdge appends an edge from u to v and returns its ID. Parallel edges
// and self-loops are permitted; the lower-bound constructions of the paper
// rely on parallel edges. Adding an edge invalidates the frozen adjacency
// snapshot; it is rebuilt on the next adjacency read.
func (g *Graph) AddEdge(u, v int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range [0, %d)", u, v, g.n))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, From: u, To: v})
	g.frozen.Store(nil)
	return id
}

// csrSnapshot returns the current CSR adjacency, building it if the edge
// list changed since the last build. The double-checked build keeps
// concurrent first reads safe while steady-state reads stay a single
// atomic load.
func (g *Graph) csrSnapshot() *csr {
	if c := g.frozen.Load(); c != nil {
		return c
	}
	g.buildMu.Lock()
	defer g.buildMu.Unlock()
	if c := g.frozen.Load(); c != nil {
		return c
	}
	c := buildCSR(g.n, g.directed, g.edges)
	g.frozen.Store(c)
	return c
}

// buildCSR assembles the flat offsets/halves arrays in two counting-sort
// passes over the edge list. Per-vertex half-edge order matches edge
// insertion order, with the From-side half first for each undirected edge
// — the same order the historical append-based adjacency produced.
func buildCSR(n int, directed bool, edges []Edge) *csr {
	offsets := make([]int32, n+1)
	for _, e := range edges {
		offsets[e.From+1]++
		if !directed && e.From != e.To {
			offsets[e.To+1]++
		}
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	halves := make([]Half, offsets[n])
	next := make([]int32, n)
	copy(next, offsets[:n])
	for _, e := range edges {
		halves[next[e.From]] = Half{Edge: e.ID, To: e.To}
		next[e.From]++
		if !directed && e.From != e.To {
			halves[next[e.To]] = Half{Edge: e.ID, To: e.From}
			next[e.To]++
		}
	}
	return &csr{offsets: offsets, halves: halves}
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge {
	return g.edges[id]
}

// Edges returns the edge slice. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Adj returns the adjacency list of v: all half-edges leaving v. For
// undirected graphs this includes edges added in either orientation. The
// returned slice aliases the frozen CSR snapshot; the caller must not
// modify it.
func (g *Graph) Adj(v int) []Half {
	c := g.csrSnapshot()
	return c.halves[c.offsets[v]:c.offsets[v+1]]
}

// Degree returns the number of half-edges at v (out-degree for directed
// graphs).
func (g *Graph) Degree(v int) int {
	c := g.csrSnapshot()
	return int(c.offsets[v+1] - c.offsets[v])
}

// HasEdgeBetween reports whether at least one edge joins u and v
// (in either orientation for undirected graphs). While the graph is
// still under construction (no frozen snapshot) it scans the edge list
// rather than forcing an adjacency build per probe.
func (g *Graph) HasEdgeBetween(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	if g.frozen.Load() == nil {
		for _, e := range g.edges {
			if (e.From == u && e.To == v) || (!g.directed && e.From == v && e.To == u) {
				return true
			}
		}
		return false
	}
	for _, h := range g.Adj(u) {
		if h.To == v {
			return true
		}
	}
	return false
}

// EdgeIDsBetween returns the IDs of all edges joining u and v, sorted.
// Like HasEdgeBetween, it scans the edge list while the graph is under
// construction instead of forcing a snapshot build.
func (g *Graph) EdgeIDsBetween(u, v int) []int {
	var ids []int
	if g.frozen.Load() == nil {
		for _, e := range g.edges {
			if (e.From == u && e.To == v) || (!g.directed && e.From == v && e.To == u) {
				ids = append(ids, e.ID)
			}
		}
		return ids // edge IDs are visited in increasing order
	}
	for _, h := range g.Adj(u) {
		if h.To == v {
			ids = append(ids, h.Edge)
		}
	}
	sort.Ints(ids)
	return ids
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, directed: g.directed}
	c.edges = append([]Edge(nil), g.edges...)
	return c
}

// Reverse returns the reverse of a directed graph (edge IDs preserved).
// For undirected graphs it returns a clone.
func (g *Graph) Reverse() *Graph {
	if !g.directed {
		return g.Clone()
	}
	r := NewDirected(g.n)
	for _, e := range g.edges {
		r.AddEdge(e.To, e.From)
	}
	return r
}

// Undirected returns an undirected copy of g with the same edge IDs.
func (g *Graph) Undirected() *Graph {
	if !g.directed {
		return g.Clone()
	}
	u := New(g.n)
	for _, e := range g.edges {
		u.AddEdge(e.From, e.To)
	}
	return u
}

// Connected reports whether the graph, viewed as undirected, is connected.
// The empty graph and single-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	comp := g.Components()
	return comp.Count == 1
}

// Components holds a partition of the vertex set into connected components
// of the underlying undirected graph.
type ComponentSet struct {
	Count int   // number of components
	Label []int // Label[v] in [0, Count) identifies v's component
}

// Vertices returns the vertices of component c, in increasing order.
func (cs *ComponentSet) Vertices(c int) []int {
	var vs []int
	for v, l := range cs.Label {
		if l == c {
			vs = append(vs, v)
		}
	}
	return vs
}

// Components computes the connected components of the underlying
// undirected graph via iterative depth-first search.
func (g *Graph) Components() *ComponentSet {
	label := make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	// For directed graphs we need the union of out- and in-adjacency;
	// undirected CSR snapshots already carry both directions.
	undirected := g
	if g.directed {
		undirected = g.Undirected()
	}
	adj := undirected.csrSnapshot()
	count := 0
	stack := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if label[s] != -1 {
			continue
		}
		label[s] = count
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range adj.halves[adj.offsets[v]:adj.offsets[v+1]] {
				if label[h.To] == -1 {
					label[h.To] = count
					stack = append(stack, h.To)
				}
			}
		}
		count++
	}
	return &ComponentSet{Count: count, Label: label}
}

// IsSimple reports whether the graph has no self-loops and no parallel
// edges.
func (g *Graph) IsSimple() bool {
	type pair struct{ a, b int }
	seen := make(map[pair]bool, len(g.edges))
	for _, e := range g.edges {
		if e.From == e.To {
			return false
		}
		a, b := e.From, e.To
		if !g.directed && a > b {
			a, b = b, a
		}
		p := pair{a, b}
		if seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// Simplify returns a simple graph in which each set of parallel edges is
// replaced by one edge whose weight is the minimum of the originals, and
// self-loops are dropped. It returns the new graph, the new weight vector,
// and a map from new edge ID to the original edge ID that realized the
// minimum. Weights must have length g.M().
func (g *Graph) Simplify(w []float64) (*Graph, []float64, []int) {
	if len(w) != g.M() {
		panic("graph: Simplify weight vector has wrong length")
	}
	type pair struct{ a, b int }
	best := make(map[pair]int) // pair -> original edge ID with min weight
	for _, e := range g.edges {
		if e.From == e.To {
			continue
		}
		a, b := e.From, e.To
		if !g.directed && a > b {
			a, b = b, a
		}
		p := pair{a, b}
		if cur, ok := best[p]; !ok || w[e.ID] < w[cur] {
			best[p] = e.ID
		}
	}
	ids := make([]int, 0, len(best))
	for _, id := range best {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s := New(g.n)
	s.directed = g.directed
	nw := make([]float64, 0, len(ids))
	orig := make([]int, 0, len(ids))
	for _, id := range ids {
		e := g.edges[id]
		s.AddEdge(e.From, e.To)
		nw = append(nw, w[id])
		orig = append(orig, id)
	}
	return s, nw, orig
}

// PathWeight returns the total weight of a path given as a sequence of
// edge IDs.
func PathWeight(w []float64, path []int) float64 {
	total := 0.0
	for _, id := range path {
		total += w[id]
	}
	return total
}

// ValidatePath checks that the edge-ID sequence path is a walk from s to t
// in g, returning an error describing the first violation.
func (g *Graph) ValidatePath(s, t int, path []int) error {
	cur := s
	for i, id := range path {
		if id < 0 || id >= g.M() {
			return fmt.Errorf("graph: path step %d: edge %d out of range", i, id)
		}
		e := g.edges[id]
		switch {
		case e.From == cur:
			cur = e.To
		case !g.directed && e.To == cur:
			cur = e.From
		default:
			return fmt.Errorf("graph: path step %d: edge %d (%d,%d) does not extend walk at vertex %d", i, id, e.From, e.To, cur)
		}
	}
	if cur != t {
		return fmt.Errorf("graph: path ends at %d, want %d", cur, t)
	}
	return nil
}

// PathVertices expands an edge-ID path starting at s into the vertex
// sequence it visits.
func (g *Graph) PathVertices(s int, path []int) []int {
	vs := make([]int, 0, len(path)+1)
	vs = append(vs, s)
	cur := s
	for _, id := range path {
		e := g.edges[id]
		cur = e.Other(cur)
		vs = append(vs, cur)
	}
	return vs
}

// TotalWeight sums a weight vector.
func TotalWeight(w []float64) float64 {
	total := 0.0
	for _, x := range w {
		total += x
	}
	return total
}

// L1Distance returns the l1 distance between two weight vectors of equal
// length. It panics on length mismatch.
func L1Distance(w, w2 []float64) float64 {
	if len(w) != len(w2) {
		panic("graph: L1Distance length mismatch")
	}
	d := 0.0
	for i := range w {
		d += math.Abs(w[i] - w2[i])
	}
	return d
}

// Neighboring reports whether two weight vectors are neighbors in the
// private edge-weight model: l1 distance at most one.
func Neighboring(w, w2 []float64) bool {
	return L1Distance(w, w2) <= 1
}

// UniformWeights returns a weight vector assigning c to every edge of g.
func UniformWeights(g *Graph, c float64) []float64 {
	w := make([]float64, g.M())
	for i := range w {
		w[i] = c
	}
	return w
}

// ClampWeights returns a copy of w with every entry clamped to [lo, hi].
func ClampWeights(w []float64, lo, hi float64) []float64 {
	c := make([]float64, len(w))
	for i, x := range w {
		c[i] = math.Min(math.Max(x, lo), hi)
	}
	return c
}
