package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Error("empty graph should be connected")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdgeIDsAreDense(t *testing.T) {
	g := New(4)
	for i := 0; i < 3; i++ {
		if id := g.AddEdge(i, i+1); id != i {
			t.Fatalf("edge %d got ID %d", i, id)
		}
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	g := New(2)
	for _, pair := range [][2]int{{-1, 0}, {0, 2}, {5, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d, %d) did not panic", pair[0], pair[1])
				}
			}()
			g.AddEdge(pair[0], pair[1])
		}()
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{ID: 0, From: 3, To: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other(5) did not panic")
		}
	}()
	e.Other(5)
}

func TestUndirectedAdjacencyBothDirections(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if g.Adj(1)[0].To != 0 {
		t.Error("reverse half-edge missing")
	}
}

func TestDirectedAdjacencyOneDirection(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	if g.Degree(0) != 1 || g.Degree(1) != 0 {
		t.Fatalf("directed degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	if !g.Directed() {
		t.Error("Directed() = false")
	}
}

func TestSelfLoopAdjacencyOnce(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	if g.Degree(0) != 1 {
		t.Fatalf("self-loop degree = %d, want 1", g.Degree(0))
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	a := g.AddEdge(0, 1)
	b := g.AddEdge(0, 1)
	c := g.AddEdge(1, 0)
	ids := g.EdgeIDsBetween(0, 1)
	if len(ids) != 3 || ids[0] != a || ids[1] != b || ids[2] != c {
		t.Fatalf("EdgeIDsBetween = %v", ids)
	}
	if g.IsSimple() {
		t.Error("multigraph reported simple")
	}
}

func TestHasEdgeBetween(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if !g.HasEdgeBetween(0, 1) || !g.HasEdgeBetween(1, 0) {
		t.Error("undirected edge not visible both ways")
	}
	if g.HasEdgeBetween(0, 2) || g.HasEdgeBetween(-1, 0) || g.HasEdgeBetween(0, 9) {
		t.Error("phantom edges")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("clone not independent: %d %d", g.M(), c.M())
	}
}

func TestReverseDirected(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse()
	if e := r.Edge(0); e.From != 1 || e.To != 0 {
		t.Fatalf("reversed edge 0 = %v", e)
	}
	if !r.Directed() {
		t.Error("reverse lost directedness")
	}
}

func TestUndirectedCopy(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	u := g.Undirected()
	if u.Directed() {
		t.Error("Undirected() still directed")
	}
	if u.Degree(1) != 1 {
		t.Error("undirected copy missing reverse adjacency")
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	cs := g.Components()
	if cs.Count != 3 {
		t.Fatalf("components = %d, want 3", cs.Count)
	}
	if cs.Label[0] != cs.Label[1] || cs.Label[3] != cs.Label[4] || cs.Label[0] == cs.Label[3] {
		t.Errorf("labels = %v", cs.Label)
	}
	vs := cs.Vertices(cs.Label[3])
	if len(vs) != 2 || vs[0] != 3 || vs[1] != 4 {
		t.Errorf("Vertices = %v", vs)
	}
}

func TestComponentsDirectedUsesUnderlyingGraph(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(1, 0) // only in-edge for 0
	g.AddEdge(1, 2)
	if cs := g.Components(); cs.Count != 1 {
		t.Fatalf("directed weak components = %d, want 1", cs.Count)
	}
}

func TestConnected(t *testing.T) {
	if !Path(5).Connected() {
		t.Error("path not connected")
	}
	g := New(3)
	g.AddEdge(0, 1)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestIsSimple(t *testing.T) {
	if !Path(4).IsSimple() {
		t.Error("path not simple")
	}
	g := New(2)
	g.AddEdge(0, 0)
	if g.IsSimple() {
		t.Error("self-loop graph simple")
	}
}

func TestSimplify(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1) // weight 5
	g.AddEdge(0, 1) // weight 2 <- winner
	g.AddEdge(1, 2) // weight 1
	g.AddEdge(2, 2) // self-loop, dropped
	s, w, orig := g.Simplify([]float64{5, 2, 1, 9})
	if s.M() != 2 {
		t.Fatalf("simplified M = %d", s.M())
	}
	if !s.IsSimple() {
		t.Error("Simplify output not simple")
	}
	// Edge between 0 and 1 must carry weight 2 from original edge 1.
	for i := 0; i < s.M(); i++ {
		e := s.Edge(i)
		if (e.From == 0 && e.To == 1) || (e.From == 1 && e.To == 0) {
			if w[i] != 2 || orig[i] != 1 {
				t.Errorf("parallel pair kept weight %g from edge %d", w[i], orig[i])
			}
		}
	}
}

func TestSimplifyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Path(3).Simplify([]float64{1})
}

func TestValidatePath(t *testing.T) {
	g := Path(4) // edges 0:(0,1) 1:(1,2) 2:(2,3)
	if err := g.ValidatePath(0, 3, []int{0, 1, 2}); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := g.ValidatePath(3, 0, []int{2, 1, 0}); err != nil {
		t.Errorf("reversed traversal rejected: %v", err)
	}
	if err := g.ValidatePath(0, 3, []int{0, 2}); err == nil {
		t.Error("disconnected walk accepted")
	}
	if err := g.ValidatePath(0, 2, []int{0, 1, 2}); err == nil {
		t.Error("wrong endpoint accepted")
	}
	if err := g.ValidatePath(0, 1, []int{99}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestValidatePathDirected(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if err := g.ValidatePath(0, 2, []int{0, 1}); err != nil {
		t.Errorf("forward path rejected: %v", err)
	}
	if err := g.ValidatePath(2, 0, []int{1, 0}); err == nil {
		t.Error("backward traversal of directed edges accepted")
	}
}

func TestPathVertices(t *testing.T) {
	g := Path(4)
	vs := g.PathVertices(0, []int{0, 1, 2})
	want := []int{0, 1, 2, 3}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("PathVertices = %v", vs)
		}
	}
	if got := g.PathVertices(2, nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("empty path vertices = %v", got)
	}
}

func TestPathWeight(t *testing.T) {
	w := []float64{1, 2, 4}
	if got := PathWeight(w, []int{0, 2}); got != 5 {
		t.Fatalf("PathWeight = %g", got)
	}
	if got := PathWeight(w, nil); got != 0 {
		t.Fatalf("empty PathWeight = %g", got)
	}
}

func TestL1DistanceAndNeighboring(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1.5, 2, 2.6}
	if got := L1Distance(a, b); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("L1 = %g", got)
	}
	if !Neighboring(a, b) {
		t.Error("0.9-distant vectors not neighboring")
	}
	if Neighboring(a, []float64{3, 2, 3}) {
		t.Error("2-distant vectors neighboring")
	}
}

func TestL1DistanceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	L1Distance([]float64{1}, []float64{1, 2})
}

func TestUniformAndClampWeights(t *testing.T) {
	g := Path(4)
	w := UniformWeights(g, 2.5)
	if len(w) != 3 || w[0] != 2.5 || w[2] != 2.5 {
		t.Fatalf("UniformWeights = %v", w)
	}
	c := ClampWeights([]float64{-1, 0.5, 9}, 0, 1)
	if c[0] != 0 || c[1] != 0.5 || c[2] != 1 {
		t.Fatalf("ClampWeights = %v", c)
	}
}

func TestTotalWeight(t *testing.T) {
	if TotalWeight([]float64{1, 2, 3.5}) != 6.5 {
		t.Fatal("TotalWeight wrong")
	}
}

// Property: L1Distance is a metric-like form: symmetric, nonnegative,
// zero iff equal (on finite inputs).
func TestL1DistanceProperties(t *testing.T) {
	f := func(raw []float64) bool {
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			a[i] = x
			b[i] = x/2 + 1
		}
		d1 := L1Distance(a, b)
		d2 := L1Distance(b, a)
		return d1 == d2 && d1 >= 0 && L1Distance(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Components partitions the vertex set and Connected agrees
// with Count == 1 on random graphs.
func TestComponentsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		g := ErdosRenyi(n, rng.Float64()*0.15, rng)
		cs := g.Components()
		if cs.Count < 1 || cs.Count > n {
			t.Fatalf("component count %d for n=%d", cs.Count, n)
		}
		seen := make([]int, cs.Count)
		for _, l := range cs.Label {
			if l < 0 || l >= cs.Count {
				t.Fatalf("bad label %d", l)
			}
			seen[l]++
		}
		total := 0
		for _, s := range seen {
			if s == 0 {
				t.Fatal("empty component label")
			}
			total += s
		}
		if total != n {
			t.Fatalf("labels cover %d of %d vertices", total, n)
		}
		if g.Connected() != (cs.Count == 1) {
			t.Fatal("Connected disagrees with Components")
		}
		// Every edge joins same-component endpoints.
		for _, e := range g.Edges() {
			if cs.Label[e.From] != cs.Label[e.To] {
				t.Fatal("edge crosses components")
			}
		}
	}
}
