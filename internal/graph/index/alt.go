package index

import (
	"math"
	"runtime"
	"sync"
)

// This file implements the ALT (A*, Landmarks, Triangle inequality)
// index — the fallback family for graphs where contraction degenerates.
// A handful of landmarks is chosen by farthest-point selection over hop
// distance; each landmark's exact weighted distances to every vertex
// are precomputed (in parallel across GOMAXPROCS), and queries run A*
// with the lower bound h(v) = max_L |d(L, t) - d(L, v)|, which the
// triangle inequality makes admissible and consistent on an undirected
// graph.

// maxLandmarks bounds the landmark count so per-query scratch stays a
// fixed-size array.
const maxLandmarks = 32

type altIndex struct {
	n    int
	comp []int32

	// Simplified CSR adjacency (shared with the prepared form).
	off []int32
	to  []int32
	wt  []float64

	k  int       // landmark count
	ld []float64 // ld[l*n + v] = distance from landmark l to v

	pool sync.Pool // *altWork
}

type altWork struct {
	st *searchState
	lt [maxLandmarks]float64 // per-query landmark-to-target distances
}

func (a *altIndex) N() int       { return a.n }
func (a *altIndex) Kind() string { return "alt" }

// buildALT selects landmarks and fills their distance rows.
func buildALT(p *prepared, opt Options) *altIndex {
	n := p.n
	a := &altIndex{n: n, comp: p.comp, off: p.off, to: p.to, wt: p.wt}
	k := opt.Landmarks
	if k > maxLandmarks {
		k = maxLandmarks
	}
	if k > n {
		k = n
	}
	a.k = k
	a.ld = make([]float64, k*n)
	if k == 0 {
		a.pool.New = func() any { return &altWork{st: newSearchState(n)} }
		return a
	}

	// Farthest-point selection over hop distance: cheap BFS sweeps pick
	// well-spread landmarks (unreached vertices count as infinitely far,
	// so every component gets covered first), leaving the expensive
	// weighted Dijkstra rows to one parallel pass below.
	lms := make([]int32, 0, k)
	minHops := make([]int32, n)
	for i := range minHops {
		minHops[i] = math.MaxInt32
	}
	hops := make([]int32, n)
	queue := make([]int32, 0, n)
	next := int32(0)
	for len(lms) < k {
		lms = append(lms, next)
		for i := range hops {
			hops[i] = -1
		}
		hops[next] = 0
		queue = append(queue[:0], next)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for i := p.off[v]; i < p.off[v+1]; i++ {
				if u := p.to[i]; hops[u] == -1 {
					hops[u] = hops[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for v := 0; v < n; v++ {
			if hops[v] >= 0 && hops[v] < minHops[v] {
				minHops[v] = hops[v]
			}
		}
		// Next landmark: the vertex farthest from all chosen so far.
		next = 0
		var far int32 = -1
		for v := 0; v < n; v++ {
			if minHops[v] > far {
				far, next = minHops[v], int32(v)
			}
		}
	}

	// One exact Dijkstra per landmark, sharded across GOMAXPROCS.
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	var wg sync.WaitGroup
	rows := make(chan int, k)
	for l := 0; l < k; l++ {
		rows <- l
	}
	close(rows)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newSearchState(n)
			for l := range rows {
				a.fillRow(st, lms[l], a.ld[l*n:(l+1)*n])
			}
		}()
	}
	wg.Wait()

	a.pool.New = func() any { return &altWork{st: newSearchState(n)} }
	return a
}

// fillRow runs a full Dijkstra from src, writing every vertex's
// distance (Inf where unreachable) into row.
func (a *altIndex) fillRow(st *searchState, src int32, row []float64) {
	for i := range row {
		row[i] = math.Inf(1)
	}
	st.begin()
	st.update(src, 0, 0)
	for !st.empty() {
		v := st.pop()
		st.settled[v] = true
		d := st.dist[v]
		row[v] = d
		for i := a.off[v]; i < a.off[v+1]; i++ {
			u := a.to[i]
			if st.labeled(u) && st.settled[u] {
				continue
			}
			if nd := d + a.wt[i]; nd < st.distance(u) {
				st.update(u, nd, nd)
			}
		}
	}
}

// Distance answers one query by A* under the landmark bound.
func (a *altIndex) Distance(s, t int) float64 {
	if s == t {
		return 0
	}
	if a.comp[s] != a.comp[t] {
		return math.Inf(1)
	}
	ws := a.pool.Get().(*altWork)
	n := a.n
	for l := 0; l < a.k; l++ {
		ws.lt[l] = a.ld[l*n+t]
	}
	h := func(v int32) float64 {
		bound := 0.0
		for l := 0; l < a.k; l++ {
			lt := ws.lt[l]
			lv := a.ld[l*n+int(v)]
			// Landmarks in other components see both endpoints at Inf;
			// skip them rather than produce Inf - Inf.
			if math.IsInf(lt, 1) || math.IsInf(lv, 1) {
				continue
			}
			if d := math.Abs(lv - lt); d > bound {
				bound = d
			}
		}
		return bound
	}
	st := ws.st
	st.begin()
	st.update(int32(s), 0, h(int32(s)))
	result := math.Inf(1)
	for !st.empty() {
		v := st.pop()
		st.settled[v] = true
		if int(v) == t {
			result = st.dist[v]
			break
		}
		d := st.dist[v]
		for i := a.off[v]; i < a.off[v+1]; i++ {
			u := a.to[i]
			if st.labeled(u) && st.settled[u] {
				continue
			}
			if nd := d + a.wt[i]; nd < st.distance(u) {
				st.update(u, nd, nd+h(u))
			}
		}
	}
	a.pool.Put(ws)
	return result
}
