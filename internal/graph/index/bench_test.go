package index

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// benchGraph is the ≥100k-edge grid the serving benchmarks run on
// (2 * 225 * 224 = 100,800 edges).
func benchGraph(b *testing.B) (*graph.Graph, []float64) {
	b.Helper()
	g := graph.Grid(225)
	rng := rand.New(rand.NewSource(1))
	return g, graph.UniformRandomWeights(g, 0.5, 2.5, rng)
}

func BenchmarkBuild(b *testing.B) {
	g, w := benchGraph(b)
	for _, m := range []Mode{CH, ALT} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, w, Options{Mode: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIndexDistance(b *testing.B) {
	g, w := benchGraph(b)
	n := g.N()
	b.Run("dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.QueryDistanceTrusted(g, w, (i*7919)%n, (i*104729+1)%n); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, m := range []Mode{CH, ALT} {
		idx, err := Build(g, w, Options{Mode: m})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.String(), func(b *testing.B) {
			idx.Distance(0, n-1) // warm the workspace pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Distance((i*7919)%n, (i*104729+1)%n)
			}
		})
	}
}
