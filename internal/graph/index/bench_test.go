package index

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// benchGraph is the ≥100k-edge grid the serving benchmarks run on
// (2 * 225 * 224 = 100,800 edges).
func benchGraph(b *testing.B) (*graph.Graph, []float64) {
	b.Helper()
	g := graph.Grid(225)
	rng := rand.New(rand.NewSource(1))
	return g, graph.UniformRandomWeights(g, 0.5, 2.5, rng)
}

func BenchmarkBuild(b *testing.B) {
	g, w := benchGraph(b)
	for _, m := range []Mode{CH, ALT, HL} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, w, Options{Mode: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIndexDistance(b *testing.B) {
	g, w := benchGraph(b)
	n := g.N()
	b.Run("dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.QueryDistanceTrusted(g, w, (i*7919)%n, (i*104729+1)%n); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, m := range []Mode{CH, ALT, HL} {
		idx, err := Build(g, w, Options{Mode: m})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.String(), func(b *testing.B) {
			idx.Distance(0, n-1) // warm the workspace pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Distance((i*7919)%n, (i*104729+1)%n)
			}
		})
	}
}

// BenchmarkIndexOneToMany compares a repeated-source batch answered by
// per-pair CH queries against one PHAST one-to-all sweep gathering the
// same targets. scripts/check_perf_guards.sh gate #7 asserts the sweep
// is >= 3x faster per pair and allocation-free in steady state.
func BenchmarkIndexOneToMany(b *testing.B) {
	g, w := benchGraph(b)
	n := g.N()
	idx, err := Build(g, w, Options{Mode: CH})
	if err != nil {
		b.Fatal(err)
	}
	sweeper := idx.(OneToAll)
	const fanout = 512
	targets := make([]int, fanout)
	for i := range targets {
		targets[i] = (i*7919 + 13) % n
	}
	out := make([]float64, fanout)
	b.Run("ch-perpair", func(b *testing.B) {
		idx.Distance(0, n-1) // warm the workspace pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := (i * 104729) % n
			for j, t := range targets {
				out[j] = idx.Distance(s, t)
			}
		}
	})
	b.Run("phast", func(b *testing.B) {
		sweeper.DistancesFrom(0, targets, out) // warm the sweep pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweeper.DistancesFrom((i*104729)%n, targets, out)
		}
	})
}
