package index

import (
	"sync"
	"sync/atomic"
)

// PairCache is a sharded, lock-striped s-t result cache for repeated
// distance queries. Keys are (s, t) vertex pairs; callers on undirected
// topologies should normalize s <= t so both orientations share one
// entry. Shards are selected by a Fibonacci hash of the key, so hot
// query mixes spread their locking across all stripes; each shard is
// individually bounded and sheds an arbitrary eighth of its entries
// when full, which keeps the cache O(capacity) without a global LRU
// lock on the read path.
type PairCache struct {
	shards   [cacheShards]pairShard
	perShard int
}

const cacheShards = 64 // power of two; see shardOf

type pairShard struct {
	mu sync.RWMutex
	m  map[pairKey]float64
	// hits/misses live per shard so the hot Get path spreads its
	// counter traffic across the stripes like its locking, instead of
	// serializing every lookup on one shared cache line.
	hits, misses atomic.Uint64
}

// pairKey carries both endpoints at full width. Truncating either
// coordinate (e.g. packing two uint32 halves into a uint64) would make
// distinct pairs collide on graphs with more than 2^32 vertices and
// silently serve a wrong cached distance for one of them.
type pairKey struct {
	s, t int64
}

func makePairKey(s, t int) pairKey {
	return pairKey{s: int64(s), t: int64(t)}
}

// DefaultCacheCapacity is the total entry bound used by NewPairCache
// when capacity <= 0.
const DefaultCacheCapacity = 1 << 18

// NewPairCache returns a cache bounded to roughly capacity entries
// across all shards.
func NewPairCache(capacity int) *PairCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	return &PairCache{perShard: per}
}

func (c *PairCache) shardOf(key pairKey) *pairShard {
	// Fibonacci multiplicative hash over both coordinates; the high
	// bits select the shard.
	h := uint64(key.s)*0x9e3779b97f4a7c15 ^ uint64(key.t)*0xc2b2ae3d27d4eb4f
	return &c.shards[(h*0x9e3779b97f4a7c15)>>(64-6)]
}

// Get returns the cached distance for (s, t), if present, counting the
// lookup in the hit/miss statistics.
func (c *PairCache) Get(s, t int) (float64, bool) {
	key := makePairKey(s, t)
	sh := c.shardOf(key)
	sh.mu.RLock()
	d, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
	} else {
		sh.misses.Add(1)
	}
	return d, ok
}

// Put records the distance for (s, t), evicting arbitrary entries from
// the shard when it is full.
func (c *PairCache) Put(s, t int, d float64) {
	key := makePairKey(s, t)
	sh := c.shardOf(key)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[pairKey]float64, c.perShard)
	}
	if len(sh.m) >= c.perShard {
		drop := c.perShard / 8
		if drop < 1 {
			drop = 1
		}
		for k := range sh.m {
			delete(sh.m, k)
			drop--
			if drop == 0 {
				break
			}
		}
	}
	sh.m[key] = d
	sh.mu.Unlock()
}

// Stats reports the cumulative Get hit/miss counters, summed across
// the shards.
func (c *PairCache) Stats() (hits, misses uint64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	return hits, misses
}

// Len returns the current number of cached entries.
func (c *PairCache) Len() int {
	total := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		total += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return total
}
