package index

import "sync"

// PairCache is a sharded, lock-striped s-t result cache for repeated
// distance queries. Keys are (s, t) vertex pairs; callers on undirected
// topologies should normalize s <= t so both orientations share one
// entry. Shards are selected by a Fibonacci hash of the key, so hot
// query mixes spread their locking across all stripes; each shard is
// individually bounded and sheds an arbitrary eighth of its entries
// when full, which keeps the cache O(capacity) without a global LRU
// lock on the read path.
type PairCache struct {
	shards   [cacheShards]pairShard
	perShard int
}

const cacheShards = 64 // power of two; see shardOf

type pairShard struct {
	mu sync.RWMutex
	m  map[uint64]float64
}

// DefaultCacheCapacity is the total entry bound used by NewPairCache
// when capacity <= 0.
const DefaultCacheCapacity = 1 << 18

// NewPairCache returns a cache bounded to roughly capacity entries
// across all shards.
func NewPairCache(capacity int) *PairCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	return &PairCache{perShard: per}
}

func pairKey(s, t int) uint64 {
	return uint64(uint32(s))<<32 | uint64(uint32(t))
}

func (c *PairCache) shardOf(key uint64) *pairShard {
	// Fibonacci multiplicative hash; the high bits select the shard.
	return &c.shards[(key*0x9e3779b97f4a7c15)>>(64-6)]
}

// Get returns the cached distance for (s, t), if present.
func (c *PairCache) Get(s, t int) (float64, bool) {
	sh := c.shardOf(pairKey(s, t))
	sh.mu.RLock()
	d, ok := sh.m[pairKey(s, t)]
	sh.mu.RUnlock()
	return d, ok
}

// Put records the distance for (s, t), evicting arbitrary entries from
// the shard when it is full.
func (c *PairCache) Put(s, t int, d float64) {
	key := pairKey(s, t)
	sh := c.shardOf(key)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]float64, c.perShard)
	}
	if len(sh.m) >= c.perShard {
		drop := c.perShard / 8
		if drop < 1 {
			drop = 1
		}
		for k := range sh.m {
			delete(sh.m, k)
			drop--
			if drop == 0 {
				break
			}
		}
	}
	sh.m[key] = d
	sh.mu.Unlock()
}

// Len returns the current number of cached entries.
func (c *PairCache) Len() int {
	total := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		total += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return total
}
