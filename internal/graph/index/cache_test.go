package index

import (
	"strconv"
	"testing"
)

// TestPairCacheNoTruncationCollision is the regression test for the
// uint32-truncated key scheme, under which (s, t) and (s + 2^32, t)
// shared one entry and the second query of such a pair returned the
// first pair's cached distance.
func TestPairCacheNoTruncationCollision(t *testing.T) {
	if strconv.IntSize < 64 {
		t.Skip("collision pattern needs 64-bit vertex IDs")
	}
	c := NewPairCache(1024)
	const shift = int64(1) << 32
	cases := [][2]int{
		{1, 2},
		{int(int64(1) + shift), 2},         // high bits of s truncated away
		{1, int(int64(2) + shift)},         // high bits of t truncated away
		{int(shift), 0},                    // s truncated to zero
		{int(3 + shift), int(4 + 2*shift)}, // both coordinates oversized
		{int(4 + 2*shift), int(3 + shift)}, // swapped orientation is distinct
	}
	for i, p := range cases {
		c.Put(p[0], p[1], float64(100+i))
	}
	for i, p := range cases {
		d, ok := c.Get(p[0], p[1])
		if !ok || d != float64(100+i) {
			t.Errorf("Get(%d, %d) = (%g, %v), want (%g, true)", p[0], p[1], d, ok, float64(100+i))
		}
	}
	// A pair never inserted must miss even when its truncated image was.
	if d, ok := c.Get(2, int(1+shift)); ok {
		t.Errorf("Get(2, %d) hit with %g; distinct pair collided with a cached one", int(1+shift), d)
	}
}

func TestPairCacheStats(t *testing.T) {
	c := NewPairCache(64)
	c.Get(1, 2)
	c.Put(1, 2, 7)
	c.Get(1, 2)
	c.Get(1, 2)
	c.Get(9, 9)
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("Stats() = (%d, %d), want (2, 2)", hits, misses)
	}
}
