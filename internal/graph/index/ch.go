package index

import (
	"math"
	"runtime"
	"sort"
	"sync"
)

// This file implements the contraction-hierarchy index: nodes are
// contracted bottom-up in order of a lazily maintained edge-difference
// priority, each contraction inserting the shortcuts a witness search
// cannot rule out; queries run a bidirectional Dijkstra over the upward
// graph with stall-on-demand pruning. On hierarchical topologies (grids,
// road-like networks, hub-and-spoke graphs) a query settles a few
// hundred vertices however large the graph is.

// chIndex is the frozen, query-ready hierarchy: a flat CSR of upward
// edges (original and shortcut) per vertex, ordered by contraction rank.
type chIndex struct {
	n    int
	comp []int32
	rank []int32

	// Upward adjacency: edges from v to neighbors contracted later.
	// Both the forward and the backward search climb this same graph
	// (the topology is undirected), so no downward copy is stored.
	upOff []int32
	upTo  []int32
	upWt  []float64

	// order lists every vertex before all vertices with upward edges
	// into it (descending contraction rank at build time, a topological
	// order of the upward DAG after rehydration) — the scan order of the
	// PHAST downward phase and of label generation.
	order []int32

	pool      sync.Pool // *chWorkspace
	sweepPool sync.Pool // *sweepState
}

type chWorkspace struct {
	f, b *searchState
}

func (c *chIndex) N() int       { return c.n }
func (c *chIndex) Kind() string { return "ch" }

// Distance runs the bidirectional upward search. Both directions climb
// the hierarchy; every vertex labeled by both sides closes a candidate
// up-down path, and a direction stops once its frontier key reaches the
// best candidate. Stall-on-demand: a popped vertex whose label is
// dominated via an edge from a higher-ranked, already-labeled neighbor
// cannot lie on a shortest up-down path, so its expansion is skipped.
//
//dpvet:hotpath
func (c *chIndex) Distance(s, t int) float64 {
	if s == t {
		return 0
	}
	if c.comp[s] != c.comp[t] {
		return math.Inf(1)
	}
	ws := c.pool.Get().(*chWorkspace)
	f, b := ws.f, ws.b
	f.begin()
	b.begin()
	f.update(int32(s), 0, 0)
	b.update(int32(t), 0, 0)
	best := math.Inf(1)
	for {
		fk, bk := f.minKey(), b.minKey()
		if fk >= best && bk >= best {
			break // both frontiers past the best meeting point (or empty)
		}
		dir, other := f, b
		if bk < fk {
			dir, other = b, f
		}
		v := dir.pop()
		dir.settled[v] = true
		d := dir.dist[v]
		if other.labeled(v) {
			if cand := d + other.dist[v]; cand < best {
				best = cand
			}
		}
		stalled := false
		for i := c.upOff[v]; i < c.upOff[v+1]; i++ {
			u := c.upTo[i]
			if dir.labeled(u) && dir.dist[u]+c.upWt[i] < d {
				stalled = true
				break
			}
		}
		if stalled {
			continue
		}
		for i := c.upOff[v]; i < c.upOff[v+1]; i++ {
			u := c.upTo[i]
			if dir.labeled(u) && dir.settled[u] {
				continue
			}
			if nd := d + c.upWt[i]; nd < dir.distance(u) {
				dir.update(u, nd, nd)
			}
		}
	}
	c.pool.Put(ws)
	return best
}

// dynEdge is one entry of the mutable adjacency used during
// contraction; shortcuts are merged in with a min-weight update.
type dynEdge struct {
	to int32
	w  float64
}

// chWork is the per-worker scratch for priority evaluation and
// contraction: a witness-search state, neighbor-gathering buffers, and
// the planned-shortcut record simulate leaves behind so contracting a
// node never repeats the witness searches its final priority
// evaluation just ran.
type chWork struct {
	st   *searchState
	nbr  []int32
	nwt  []float64
	mark []int32 // mark[v] = index into nbr + 1, cleared after use

	scA, scB []int32 // planned shortcut endpoints
	scW      []float64
}

func newCHWork(n int) *chWork {
	return &chWork{st: newSearchState(n), mark: make([]int32, n)}
}

// chBuilder carries the contraction state.
type chBuilder struct {
	p   *prepared
	opt Options

	adj        [][]dynEdge
	contracted []bool
	rank       []int32
	delNbr     []int32 // contracted-neighbor count (ordering heuristic)
}

// buildCH contracts every node and freezes the upward graph. With
// guarded true (Auto mode) it aborts with errDegenerate once the
// shortcut count passes MaxShortcutFactor * M; an explicit CH request
// always completes.
func buildCH(p *prepared, opt Options, guarded bool) (*chIndex, error) {
	n := p.n
	b := &chBuilder{
		p:          p,
		opt:        opt,
		adj:        make([][]dynEdge, n),
		contracted: make([]bool, n),
		rank:       make([]int32, n),
		delNbr:     make([]int32, n),
	}
	for v := int32(0); v < int32(n); v++ {
		deg := int(p.off[v+1] - p.off[v])
		b.adj[v] = make([]dynEdge, 0, deg+2)
		for i := p.off[v]; i < p.off[v+1]; i++ {
			b.adj[v] = append(b.adj[v], dynEdge{to: p.to[i], w: p.wt[i]})
		}
	}

	// Initial priorities: a pure function of the untouched adjacency,
	// evaluated in parallel across GOMAXPROCS workers, each with its own
	// pooled workspace (the witness searches only read shared state).
	prio := make([]int32, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for wk := 0; wk < workers; wk++ {
		lo, hi := wk*chunk, (wk+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			w := newCHWork(n)
			for v := lo; v < hi; v++ {
				prio[v] = b.priority(int32(v), w)
			}
		}(lo, hi)
	}
	wg.Wait()

	// Lazy bottom-up ordering: pop the cheapest node, re-evaluate its
	// priority, and contract only if it still beats the next candidate;
	// otherwise push it back with the fresh value.
	h := &pairHeap{}
	h.nodes = make([]pairNode, 0, n)
	for v := 0; v < n; v++ {
		h.push(pairNode{prio: prio[v], v: int32(v)})
	}
	work := newCHWork(n)
	guard := int64(-1) // negative: guard disabled (explicit CH request)
	if guarded {
		guard = int64(opt.MaxShortcutFactor * float64(p.m()))
	}
	var shortcuts int64
	var nextRank int32
	for h.len() > 0 {
		top := h.pop()
		v := top.v
		if b.contracted[v] {
			continue
		}
		if fresh := b.priority(v, work); fresh > top.prio {
			if h.len() > 0 && fresh > h.min().prio {
				h.push(pairNode{prio: fresh, v: v})
				continue
			}
		}
		// priority just planned v's shortcuts; apply them directly
		// instead of repeating the witness searches.
		shortcuts += int64(b.apply(v, work))
		if guard >= 0 && shortcuts > guard {
			return nil, errDegenerate
		}
		b.contracted[v] = true
		b.rank[v] = nextRank
		nextRank++
	}

	return b.freeze(), nil
}

// gather collects v's distinct uncontracted neighbors with their
// minimum edge weight into w.nbr/w.nwt (cleared on the next call).
func (b *chBuilder) gather(v int32, w *chWork) {
	for _, u := range w.nbr {
		w.mark[u] = 0
	}
	w.nbr = w.nbr[:0]
	w.nwt = w.nwt[:0]
	for _, e := range b.adj[v] {
		if b.contracted[e.to] {
			continue
		}
		if m := w.mark[e.to]; m > 0 {
			if e.w < w.nwt[m-1] {
				w.nwt[m-1] = e.w
			}
			continue
		}
		w.nbr = append(w.nbr, e.to)
		w.nwt = append(w.nwt, e.w)
		w.mark[e.to] = int32(len(w.nbr))
	}
}

// simulate plans the shortcuts contracting v requires, recording them
// in w.scA/scB/scW. For each neighbor u_i a witness search limited to
// WitnessSettleLimit settled vertices looks for paths around v; a pair
// (u_i, u_j) gets a shortcut of weight w_i + w_j only when no witness
// path is at most that long. An exhausted witness budget inserts the
// shortcut conservatively — never wrong, only larger.
func (b *chBuilder) simulate(v int32, w *chWork) int {
	b.gather(v, w)
	w.scA, w.scB, w.scW = w.scA[:0], w.scB[:0], w.scW[:0]
	k := len(w.nbr)
	if k <= 1 {
		return 0
	}
	maxOut := 0.0
	for _, x := range w.nwt {
		if x > maxOut {
			maxOut = x
		}
	}
	for i := 0; i < k-1; i++ {
		ui, wi := w.nbr[i], w.nwt[i]
		b.witness(v, w, i, wi+maxOut)
		for j := i + 1; j < k; j++ {
			uj, wj := w.nbr[j], w.nwt[j]
			if w.st.distance(uj) <= wi+wj {
				continue // witness path: no shortcut needed
			}
			w.scA = append(w.scA, ui)
			w.scB = append(w.scB, uj)
			w.scW = append(w.scW, wi+wj)
		}
	}
	return len(w.scA)
}

// witness runs a settle-limited Dijkstra from neighbor minIdx of v over
// the uncontracted subgraph with v excluded, stopping past limit or
// once every shortcut target (the neighbors after minIdx) has settled;
// simulate reads the resulting labels through w.st.distance.
func (b *chBuilder) witness(v int32, w *chWork, minIdx int, limit float64) {
	st := w.st
	st.begin()
	st.update(w.nbr[minIdx], 0, 0)
	budget := b.opt.WitnessSettleLimit
	targets := len(w.nbr) - minIdx - 1
	for !st.empty() && budget > 0 && targets > 0 {
		if st.minKey() > limit {
			break
		}
		x := st.pop()
		st.settled[x] = true
		budget--
		if m := w.mark[x]; m > 0 && int(m-1) > minIdx {
			targets--
		}
		d := st.dist[x]
		for _, e := range b.adj[x] {
			u := e.to
			if u == v || b.contracted[u] {
				continue
			}
			if st.labeled(u) && st.settled[u] {
				continue
			}
			if nd := d + e.w; nd < st.distance(u) {
				st.update(u, nd, nd)
			}
		}
	}
}

// insert merges a shortcut into u's adjacency, keeping the minimum
// weight per neighbor so the dynamic lists stay duplicate-free.
func (b *chBuilder) insert(u, to int32, wt float64) {
	list := b.adj[u]
	for i := range list {
		if list[i].to == to {
			if wt < list[i].w {
				list[i].w = wt
			}
			return
		}
	}
	b.adj[u] = append(list, dynEdge{to: to, w: wt})
}

// priority is the lazy ordering key: twice the edge difference
// (shortcuts added minus edges removed) plus the contracted-neighbor
// count, which spreads contraction evenly across the graph. It leaves
// the planned shortcuts in w for apply to consume.
func (b *chBuilder) priority(v int32, w *chWork) int32 {
	sc := b.simulate(v, w)
	deg := len(w.nbr) // gather ran inside simulate
	return int32(2*(sc-deg)) + b.delNbr[v]
}

// apply inserts the shortcuts the latest simulate planned for v and
// bumps v's neighbors' ordering heuristic; the caller marks v
// contracted and assigns its rank. Nothing mutated between the plan
// and the apply (the ordering loop is serial), so the plan is exact.
func (b *chBuilder) apply(v int32, w *chWork) int {
	for i := range w.scA {
		b.insert(w.scA[i], w.scB[i], w.scW[i])
		b.insert(w.scB[i], w.scA[i], w.scW[i])
	}
	for _, u := range w.nbr {
		b.delNbr[u]++
	}
	return len(w.scA)
}

// freeze extracts the upward CSR: every adjacency entry pointing at a
// later-contracted neighbor, original edges and shortcuts alike.
func (b *chBuilder) freeze() *chIndex {
	n := b.p.n
	c := &chIndex{n: n, comp: b.p.comp, rank: b.rank, upOff: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		for _, e := range b.adj[v] {
			if b.rank[e.to] > b.rank[v] {
				c.upOff[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		c.upOff[v+1] += c.upOff[v]
	}
	c.upTo = make([]int32, c.upOff[n])
	c.upWt = make([]float64, c.upOff[n])
	next := make([]int32, n)
	copy(next, c.upOff[:n])
	for v := 0; v < n; v++ {
		for _, e := range b.adj[v] {
			if b.rank[e.to] > b.rank[v] {
				c.upTo[next[v]], c.upWt[next[v]] = e.to, e.w
				next[v]++
			}
		}
		// Relaxation scans the whole upward list per pop; rank order is
		// as good as any, but a deterministic layout keeps builds
		// reproducible for identical inputs.
		lo, hi := c.upOff[v], c.upOff[v+1]
		sortUpEdges(c.upTo[lo:hi], c.upWt[lo:hi])
	}
	c.order = make([]int32, n)
	for v := 0; v < n; v++ {
		c.order[int32(n)-1-b.rank[v]] = int32(v)
	}
	c.pool.New = func() any {
		return &chWorkspace{f: newSearchState(n), b: newSearchState(n)}
	}
	c.initSweep()
	return c
}

// sortUpEdges orders one vertex's upward edges by target id.
func sortUpEdges(to []int32, wt []float64) {
	sort.Sort(&upEdgeSlice{to: to, wt: wt})
}

type upEdgeSlice struct {
	to []int32
	wt []float64
}

func (s *upEdgeSlice) Len() int           { return len(s.to) }
func (s *upEdgeSlice) Less(i, j int) bool { return s.to[i] < s.to[j] }
func (s *upEdgeSlice) Swap(i, j int) {
	s.to[i], s.to[j] = s.to[j], s.to[i]
	s.wt[i], s.wt[j] = s.wt[j], s.wt[i]
}

// pairNode is one lazy-priority-queue entry; pairHeap is a plain binary
// heap over (priority, vertex) pairs with deterministic tie-breaking.
type pairNode struct {
	prio int32
	v    int32
}

type pairHeap struct {
	nodes []pairNode
}

func (h *pairHeap) len() int      { return len(h.nodes) }
func (h *pairHeap) min() pairNode { return h.nodes[0] }
func (h *pairHeap) less(a, b pairNode) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.v < b.v
}

func (h *pairHeap) push(x pairNode) {
	h.nodes = append(h.nodes, x)
	i := len(h.nodes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.nodes[i], h.nodes[p]) {
			break
		}
		h.nodes[i], h.nodes[p] = h.nodes[p], h.nodes[i]
		i = p
	}
}

func (h *pairHeap) pop() pairNode {
	top := h.nodes[0]
	last := len(h.nodes) - 1
	h.nodes[0] = h.nodes[last]
	h.nodes = h.nodes[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		best := l
		if r := l + 1; r < last && h.less(h.nodes[r], h.nodes[l]) {
			best = r
		}
		if !h.less(h.nodes[best], h.nodes[i]) {
			break
		}
		h.nodes[i], h.nodes[best] = h.nodes[best], h.nodes[i]
		i = best
	}
	return top
}
