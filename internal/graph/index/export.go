package index

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
)

// This file is the serialization boundary of the index package: a built
// index exports its query-ready flat arrays, and those arrays rebuild
// an equivalent index over the same (topology, weights) pair without
// repeating construction. Only the expensive, non-derivable state is
// exported — the CH upward graph (the product of contraction), the HL
// label arena (one pruned upward search per vertex), and the ALT
// landmark distance rows (k full Dijkstras). Everything cheaply
// derivable from the topology and released weights (the simplified CSR,
// component labels, a sweep order for the upward DAG) is recomputed at
// rehydration instead, which both
// shrinks snapshots and removes those arrays as a tamper surface:
// a rehydrated index can never disagree with its own topology about
// adjacency or connectivity.

// FlatIndex is the flat-array form of a built index, the shape the
// snapshot container stores. Kind selects which family the arrays
// belong to; the unused family's fields are nil. The slices returned by
// Export alias the live index — callers must treat them as read-only.
type FlatIndex struct {
	// Kind is "ch", "alt", or "hl" (Index.Kind spellings).
	Kind string

	// Contraction hierarchy: the frozen upward CSR. UpOff has N+1
	// entries; UpTo/UpWt hold one entry per upward edge (original or
	// shortcut). Kind "hl" carries these too — the hierarchy backs the
	// one-to-many sweep and is what the labels were generated from.
	UpOff []int32
	UpTo  []int32
	UpWt  []float64

	// Hub labels: vertex v's label occupies
	// LabHub/LabDist[LabOff[v]:LabOff[v+1]], sorted by ascending hub id.
	LabOff  []int64
	LabHub  []int32
	LabDist []float64

	// ALT: Landmarks distance rows, row l occupying LD[l*N : (l+1)*N]
	// (+Inf where the landmark cannot reach the vertex).
	Landmarks int
	LD        []float64
}

// Export returns the flat-array form of an index built by Build. It
// errs on index implementations this package does not know how to
// flatten (there are none today; the check guards future families).
func Export(idx Index) (*FlatIndex, error) {
	switch c := idx.(type) {
	case *chIndex:
		return &FlatIndex{Kind: "ch", UpOff: c.upOff, UpTo: c.upTo, UpWt: c.upWt}, nil
	case *hlIndex:
		return &FlatIndex{
			Kind:  "hl",
			UpOff: c.ch.upOff, UpTo: c.ch.upTo, UpWt: c.ch.upWt,
			LabOff: c.labOff, LabHub: c.labHub, LabDist: c.labDist,
		}, nil
	case *altIndex:
		return &FlatIndex{Kind: "alt", Landmarks: c.k, LD: c.ld}, nil
	}
	return nil, fmt.Errorf("index: cannot export index kind %q", idx.Kind())
}

// Rehydrate rebuilds a query-ready index over (g, w) from exported flat
// arrays, skipping construction entirely: no contraction for CH, no
// landmark Dijkstras for ALT. The simplified CSR and component labels
// are recomputed from the topology, so they cannot be lied about; the
// flat arrays themselves are validated structurally (bounds, monotone
// offsets, nonnegative finite weights) because they may arrive from an
// untrusted snapshot. A structurally valid but semantically wrong array
// set yields wrong distances, not unsafety — authenticity is the
// snapshot signature's job, not this function's.
func Rehydrate(g *graph.Graph, w []float64, f *FlatIndex) (Index, error) {
	if len(w) != g.M() {
		return nil, fmt.Errorf("index: weight vector has %d entries for %d edges", len(w), g.M())
	}
	if g.Directed() {
		return nil, fmt.Errorf("index: rehydration supports undirected topologies only")
	}
	for id, x := range w {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("index: edge %d has weight %g; indexes require nonnegative weights", id, x)
		}
	}
	p := prepare(g, w)
	switch f.Kind {
	case "ch":
		c, err := rehydrateCH(p, f)
		if err != nil {
			return nil, err // explicit nil: a typed-nil *chIndex is not a nil Index
		}
		return c, nil
	case "hl":
		return rehydrateHL(p, f)
	case "alt":
		return rehydrateALT(p, f)
	}
	return nil, fmt.Errorf("index: unknown flat index kind %q", f.Kind)
}

// rehydrateCH validates the upward-CSR invariants and freezes the
// query structure around them.
func rehydrateCH(p *prepared, f *FlatIndex) (*chIndex, error) {
	n := p.n
	if len(f.UpOff) != n+1 {
		return nil, fmt.Errorf("index: CH upward offsets have %d entries for %d vertices (want %d)", len(f.UpOff), n, n+1)
	}
	if f.UpOff[0] != 0 {
		return nil, fmt.Errorf("index: CH upward offsets must start at 0, got %d", f.UpOff[0])
	}
	for v := 0; v < n; v++ {
		if f.UpOff[v+1] < f.UpOff[v] {
			return nil, fmt.Errorf("index: CH upward offsets decrease at vertex %d", v)
		}
	}
	total := int(f.UpOff[n])
	if len(f.UpTo) != total || len(f.UpWt) != total {
		return nil, fmt.Errorf("index: CH upward arrays have %d targets / %d weights for %d offset entries", len(f.UpTo), len(f.UpWt), total)
	}
	for i, u := range f.UpTo {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("index: CH upward edge %d targets vertex %d outside [0, %d)", i, u, n)
		}
	}
	for i, x := range f.UpWt {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("index: CH upward edge %d has weight %g; want nonnegative", i, x)
		}
	}
	// Contraction ranks are not serialized; any topological order of
	// the upward DAG serves the sweep equally well, and its existence
	// doubles as an acyclicity check on the claimed hierarchy.
	order, ok := topoOrder(n, f.UpOff, f.UpTo)
	if !ok {
		return nil, fmt.Errorf("index: CH upward graph is cyclic; not a contraction hierarchy")
	}
	c := &chIndex{n: n, comp: p.comp, upOff: f.UpOff, upTo: f.UpTo, upWt: f.UpWt, order: order}
	c.pool.New = func() any {
		return &chWorkspace{f: newSearchState(n), b: newSearchState(n)}
	}
	c.initSweep()
	return c, nil
}

// rehydrateHL validates the label arena on top of the hierarchy checks
// and rebuilds the merge-ready labeling.
func rehydrateHL(p *prepared, f *FlatIndex) (Index, error) {
	ch, err := rehydrateCH(p, f)
	if err != nil {
		return nil, err
	}
	n := p.n
	if len(f.LabOff) != n+1 {
		return nil, fmt.Errorf("index: HL label offsets have %d entries for %d vertices (want %d)", len(f.LabOff), n, n+1)
	}
	if f.LabOff[0] != 0 {
		return nil, fmt.Errorf("index: HL label offsets must start at 0, got %d", f.LabOff[0])
	}
	for v := 0; v < n; v++ {
		if f.LabOff[v+1] < f.LabOff[v] {
			return nil, fmt.Errorf("index: HL label offsets decrease at vertex %d", v)
		}
	}
	total := f.LabOff[n]
	if int64(len(f.LabHub)) != total || int64(len(f.LabDist)) != total {
		return nil, fmt.Errorf("index: HL label arena has %d hubs / %d distances for %d offset entries", len(f.LabHub), len(f.LabDist), total)
	}
	for v := 0; v < n; v++ {
		for i := f.LabOff[v]; i < f.LabOff[v+1]; i++ {
			h := f.LabHub[i]
			if h < 0 || int(h) >= n {
				return nil, fmt.Errorf("index: vertex %d label entry names hub %d outside [0, %d)", v, h, n)
			}
			// Strict ascending hub order per vertex is what the query
			// merge walks; it also rules out duplicate hubs.
			if i > f.LabOff[v] && h <= f.LabHub[i-1] {
				return nil, fmt.Errorf("index: vertex %d label hubs not strictly ascending at entry %d", v, i-f.LabOff[v])
			}
		}
	}
	for i, x := range f.LabDist {
		if !(x >= 0) || math.IsInf(x, 1) {
			return nil, fmt.Errorf("index: HL label distance %d is %g; want finite nonnegative", i, x)
		}
	}
	return &hlIndex{
		n: n, comp: p.comp, ch: ch,
		labOff: f.LabOff, labHub: f.LabHub, labDist: f.LabDist,
	}, nil
}

// rehydrateALT validates the landmark rows and rebuilds the A* index
// over the recomputed simplified CSR.
func rehydrateALT(p *prepared, f *FlatIndex) (Index, error) {
	n := p.n
	k := f.Landmarks
	if k < 0 || k > maxLandmarks {
		return nil, fmt.Errorf("index: ALT landmark count %d outside [0, %d]", k, maxLandmarks)
	}
	if len(f.LD) != k*n {
		return nil, fmt.Errorf("index: ALT distance rows have %d entries for %d landmarks x %d vertices", len(f.LD), k, n)
	}
	for i, x := range f.LD {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("index: ALT row entry %d is %g; want nonnegative or +Inf", i, x)
		}
	}
	a := &altIndex{n: n, comp: p.comp, off: p.off, to: p.to, wt: p.wt, k: k, ld: f.LD}
	a.pool = sync.Pool{New: func() any { return &altWork{st: newSearchState(n)} }}
	return a, nil
}
