package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// exportGrid builds the shared test topology: a side x side grid with
// deterministic pseudo-random weights.
func exportGrid(side int) (*graph.Graph, []float64) {
	g := graph.New(side * side)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < side {
				g.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + 9*rng.Float64()
	}
	return g, w
}

// TestExportRehydrateEquivalence round-trips each index kind through
// its flat form and requires bit-identical answers from the rehydrated
// index across a query sweep.
func TestExportRehydrateEquivalence(t *testing.T) {
	g, w := exportGrid(12)
	for _, mode := range []Mode{CH, ALT, HL} {
		t.Run(mode.String(), func(t *testing.T) {
			orig, err := Build(g, w, Options{Mode: mode})
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			flat, err := Export(orig)
			if err != nil {
				t.Fatalf("Export: %v", err)
			}
			if flat.Kind != orig.Kind() {
				t.Fatalf("flat kind %q, index kind %q", flat.Kind, orig.Kind())
			}
			re, err := Rehydrate(g, w, flat)
			if err != nil {
				t.Fatalf("Rehydrate: %v", err)
			}
			rng := rand.New(rand.NewSource(99))
			for q := 0; q < 500; q++ {
				s, u := rng.Intn(g.N()), rng.Intn(g.N())
				a, b := orig.Distance(s, u), re.Distance(s, u)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("query (%d,%d): original %v, rehydrated %v", s, u, a, b)
				}
			}
		})
	}
}

// TestRehydrateRejectsMalformed feeds structurally broken flat arrays
// and requires a typed error, never a panic or a working index.
func TestRehydrateRejectsMalformed(t *testing.T) {
	g, w := exportGrid(4)
	chFlat := func() *FlatIndex {
		idx, err := Build(g, w, Options{Mode: CH})
		if err != nil {
			t.Fatalf("Build ch: %v", err)
		}
		f, err := Export(idx)
		if err != nil {
			t.Fatalf("Export ch: %v", err)
		}
		// Copy so mutations do not leak into other subtests.
		return &FlatIndex{
			Kind:  f.Kind,
			UpOff: append([]int32(nil), f.UpOff...),
			UpTo:  append([]int32(nil), f.UpTo...),
			UpWt:  append([]float64(nil), f.UpWt...),
		}
	}
	altFlat := func() *FlatIndex {
		idx, err := Build(g, w, Options{Mode: ALT, Landmarks: 3})
		if err != nil {
			t.Fatalf("Build alt: %v", err)
		}
		f, err := Export(idx)
		if err != nil {
			t.Fatalf("Export alt: %v", err)
		}
		return &FlatIndex{
			Kind:      f.Kind,
			Landmarks: f.Landmarks,
			LD:        append([]float64(nil), f.LD...),
		}
	}
	hlFlat := func() *FlatIndex {
		idx, err := Build(g, w, Options{Mode: HL})
		if err != nil {
			t.Fatalf("Build hl: %v", err)
		}
		f, err := Export(idx)
		if err != nil {
			t.Fatalf("Export hl: %v", err)
		}
		return &FlatIndex{
			Kind:    f.Kind,
			UpOff:   append([]int32(nil), f.UpOff...),
			UpTo:    append([]int32(nil), f.UpTo...),
			UpWt:    append([]float64(nil), f.UpWt...),
			LabOff:  append([]int64(nil), f.LabOff...),
			LabHub:  append([]int32(nil), f.LabHub...),
			LabDist: append([]float64(nil), f.LabDist...),
		}
	}
	cases := map[string]func() *FlatIndex{
		"unknown-kind":      func() *FlatIndex { f := chFlat(); f.Kind = "quadtree"; return f },
		"short-offsets":     func() *FlatIndex { f := chFlat(); f.UpOff = f.UpOff[:3]; return f },
		"nonzero-first-off": func() *FlatIndex { f := chFlat(); f.UpOff[0] = 1; return f },
		"decreasing-off":    func() *FlatIndex { f := chFlat(); f.UpOff[1] = f.UpOff[len(f.UpOff)-1] + 5; return f },
		"target-oob":        func() *FlatIndex { f := chFlat(); f.UpTo[0] = int32(g.N()); return f },
		"negative-ch-wt":    func() *FlatIndex { f := chFlat(); f.UpWt[0] = -2; return f },
		"nan-ch-wt":         func() *FlatIndex { f := chFlat(); f.UpWt[0] = math.NaN(); return f },
		"too-many-landmarks": func() *FlatIndex {
			f := altFlat()
			f.Landmarks = maxLandmarks + 1
			return f
		},
		"short-ld-rows":            func() *FlatIndex { f := altFlat(); f.LD = f.LD[:len(f.LD)-1]; return f },
		"negative-ld":              func() *FlatIndex { f := altFlat(); f.LD[0] = -1; return f },
		"nan-ld":                   func() *FlatIndex { f := altFlat(); f.LD[0] = math.NaN(); return f },
		"hl-short-lab-off":         func() *FlatIndex { f := hlFlat(); f.LabOff = f.LabOff[:3]; return f },
		"hl-nonzero-first-lab-off": func() *FlatIndex { f := hlFlat(); f.LabOff[0] = 1; return f },
		"hl-decreasing-lab-off": func() *FlatIndex {
			f := hlFlat()
			f.LabOff[1] = f.LabOff[len(f.LabOff)-1] + 5
			return f
		},
		"hl-short-arena": func() *FlatIndex { f := hlFlat(); f.LabHub = f.LabHub[:len(f.LabHub)-1]; return f },
		"hl-hub-oob":     func() *FlatIndex { f := hlFlat(); f.LabHub[0] = int32(g.N()); return f },
		"hl-unsorted-hubs": func() *FlatIndex {
			f := hlFlat()
			// Find a vertex with >= 2 entries and swap its first two hubs.
			for v := 0; v < g.N(); v++ {
				if f.LabOff[v+1]-f.LabOff[v] >= 2 {
					i := f.LabOff[v]
					f.LabHub[i], f.LabHub[i+1] = f.LabHub[i+1], f.LabHub[i]
					return f
				}
			}
			t.Fatal("no vertex with a 2-entry label")
			return f
		},
		"hl-negative-dist": func() *FlatIndex { f := hlFlat(); f.LabDist[0] = -1; return f },
		"hl-nan-dist":      func() *FlatIndex { f := hlFlat(); f.LabDist[0] = math.NaN(); return f },
		"hl-inf-dist":      func() *FlatIndex { f := hlFlat(); f.LabDist[0] = math.Inf(1); return f },
		"hl-cyclic-up": func() *FlatIndex {
			f := hlFlat()
			// Redirect vertex 0's first upward edge back at itself: a
			// self-loop is the smallest cycle the sweep order must refuse.
			if f.UpOff[1] == f.UpOff[0] {
				t.Fatal("vertex 0 has no upward edge")
			}
			f.UpTo[f.UpOff[0]] = 0
			return f
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			idx, err := Rehydrate(g, w, build())
			if err == nil {
				t.Fatalf("Rehydrate accepted malformed arrays (got index %v)", idx.Kind())
			}
			if idx != nil {
				t.Fatal("Rehydrate returned an index alongside an error")
			}
		})
	}
}

// TestRehydrateRejectsBadContext validates the (g, w) side.
func TestRehydrateRejectsBadContext(t *testing.T) {
	g, w := exportGrid(4)
	idx, err := Build(g, w, Options{Mode: CH})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Export(idx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rehydrate(g, w[:len(w)-1], f); err == nil {
		t.Fatal("short weight vector accepted")
	}
	bad := append([]float64(nil), w...)
	bad[0] = -1
	if _, err := Rehydrate(g, bad, f); err == nil {
		t.Fatal("negative weight accepted")
	}
	dg := graph.NewDirected(2)
	dg.AddEdge(0, 1)
	if _, err := Rehydrate(dg, []float64{1}, f); err == nil {
		t.Fatal("directed topology accepted")
	}
}
