package index

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the hub-labeling index: a 2-hop labeling computed
// from the contraction order of an already-built hierarchy. Every vertex
// v carries a label L(v) — a sorted flat array of (hub, dist) pairs over
// the vertices of v's stall-pruned upward search space — and a point
// query is a single linear merge of L(s) and L(t): no heap, no graph
// traversal, no per-query state at all. On hierarchical topologies
// labels run tens-to-hundreds of entries, putting point queries in the
// single-digit-microsecond range, an order of magnitude under the
// bidirectional CH search.
//
// Correctness inherits from the hierarchy: every shortest s-t path has
// an up-down form whose peak (maximum-rank) vertex appears in both
// upward search spaces with its exact distance and is never stalled or
// pruned, so the merge minimum over common hubs equals the CH query
// answer. Entries whose upward distance overestimates the true distance
// are redundant but harmless (every merge candidate is the length of a
// real walk); label pruning removes most of them: an entry (h, d) is
// dropped when some higher hub h' already proves a strictly shorter
// v-h connection, which can never hold for a peak vertex.
//
// Labels are pure post-processing of the released weights — exactly
// like the hierarchy they are computed from, they touch nothing private
// and carry zero additional privacy cost.

// hlIndex is the frozen, query-ready labeling. The label arena is three
// parallel flat arrays: vertex v's label occupies
// labHub/labDist[labOff[v]:labOff[v+1]], sorted by ascending hub id
// (the merge order). The building hierarchy is retained for PHAST
// one-to-all sweeps (DistancesFrom) and for export.
type hlIndex struct {
	n    int
	comp []int32

	labOff  []int64
	labHub  []int32
	labDist []float64

	ch *chIndex
}

func (x *hlIndex) N() int       { return x.n }
func (x *hlIndex) Kind() string { return "hl" }

// Distance merges the two sorted labels and returns the minimum
// hub-distance sum. No scratch state: the merge reads only the shared
// immutable arena, so queries are allocation-free and trivially
// concurrent.
//
//dpvet:hotpath
func (x *hlIndex) Distance(s, t int) float64 {
	if s == t {
		return 0
	}
	if x.comp[s] != x.comp[t] {
		return math.Inf(1)
	}
	i, iEnd := x.labOff[s], x.labOff[s+1]
	j, jEnd := x.labOff[t], x.labOff[t+1]
	best := math.Inf(1)
	for i < iEnd && j < jEnd {
		hi, hj := x.labHub[i], x.labHub[j]
		switch {
		case hi == hj:
			if d := x.labDist[i] + x.labDist[j]; d < best {
				best = d
			}
			i++
			j++
		case hi < hj:
			i++
		default:
			j++
		}
	}
	return best
}

// DistancesFrom answers a one-to-many batch with a single PHAST sweep
// over the retained hierarchy (see phast.go).
//
//dpvet:hotpath
func (x *hlIndex) DistancesFrom(s int, targets []int, out []float64) {
	x.ch.DistancesFrom(s, targets, out)
}

// MinSweepTargets reports the per-source batch size above which one
// sweep beats per-pair label merges. Merges are so cheap that the
// O(n + m) sweep only wins on much larger fan-outs than it does for CH.
func (x *hlIndex) MinSweepTargets() int { return 64 + x.n/64 }

// hlWork is one label-generation worker's scratch: an upward search
// state (doubling as the candidate-distance lookup during pruning) and
// the candidate hub buffer.
type hlWork struct {
	st    *searchState
	cands []int32
}

// buildHL computes the labeling from a built hierarchy. With guarded
// true (Auto mode) it aborts with errLabelsTooBig once the total kept
// entries pass MaxAvgLabel * n — the caller then serves from the
// hierarchy alone; an explicit HL request always completes.
//
// Vertices are processed top-down in contraction order, parallel within
// levels of equal up-DAG depth: pruning vertex v reads only labels of
// vertices in v's upward search space, all of strictly smaller depth,
// so every read happens after the barrier that completed that level.
func buildHL(ch *chIndex, opt Options, guarded bool) (*hlIndex, error) {
	n := ch.n

	// Up-DAG depth per vertex: 0 at maximal vertices, 1 + max over
	// upward neighbors below. ch.order is descending rank, so every
	// upward neighbor is finalized before its source.
	depth := make([]int32, n)
	var maxDepth int32
	for _, v := range ch.order {
		var d int32
		for i := ch.upOff[v]; i < ch.upOff[v+1]; i++ {
			if nd := depth[ch.upTo[i]] + 1; nd > d {
				d = nd
			}
		}
		depth[v] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]int32, maxDepth+1)
	for v := int32(0); v < int32(n); v++ {
		levels[depth[v]] = append(levels[depth[v]], v)
	}

	hubs := make([][]int32, n)
	dists := make([][]float64, n)
	guard := int64(-1)
	if guarded {
		guard = int64(opt.MaxAvgLabel) * int64(n)
	}
	var total atomic.Int64
	var aborted atomic.Bool

	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	works := make([]*hlWork, workers)
	for i := range works {
		works[i] = &hlWork{st: newSearchState(n)}
	}
	for _, level := range levels {
		if aborted.Load() {
			break
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wk := workers
		if wk > len(level) {
			wk = len(level)
		}
		for w := 0; w < wk; w++ {
			wg.Add(1)
			go func(work *hlWork) {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if int(i) >= len(level) || aborted.Load() {
						return
					}
					v := level[i]
					kept := labelVertex(ch, v, work, hubs, dists)
					if guard >= 0 && total.Add(int64(kept)) > guard {
						aborted.Store(true)
						return
					}
				}
			}(works[w])
		}
		wg.Wait()
	}
	if aborted.Load() {
		return nil, errLabelsTooBig
	}

	x := &hlIndex{n: n, comp: ch.comp, ch: ch, labOff: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		x.labOff[v+1] = x.labOff[v] + int64(len(hubs[v]))
	}
	x.labHub = make([]int32, x.labOff[n])
	x.labDist = make([]float64, x.labOff[n])
	for v := 0; v < n; v++ {
		copy(x.labHub[x.labOff[v]:], hubs[v])
		copy(x.labDist[x.labOff[v]:], dists[v])
	}
	return x, nil
}

// labelVertex runs the stall-pruned upward search from v, prunes the
// candidates through the already-computed labels of higher vertices,
// and stores the kept (hub, dist) pairs sorted by hub id.
func labelVertex(ch *chIndex, v int32, work *hlWork, hubs [][]int32, dists [][]float64) int {
	st := work.st
	st.begin()
	st.update(v, 0, 0)
	cands := work.cands[:0]
	for !st.empty() {
		x := st.pop()
		st.settled[x] = true
		d := st.dist[x]
		// Stall-on-demand: a vertex whose upward label is dominated via a
		// higher, already-labeled neighbor cannot be the peak of any
		// shortest up-down path — drop it from the candidate set and skip
		// its expansion. Its (overestimated) distance stays readable in
		// st for the pruning pass, where upper bounds are all it needs.
		stalled := false
		for i := ch.upOff[x]; i < ch.upOff[x+1]; i++ {
			u := ch.upTo[i]
			if st.labeled(u) && st.dist[u]+ch.upWt[i] < d {
				stalled = true
				break
			}
		}
		if stalled {
			continue
		}
		cands = append(cands, x)
		for i := ch.upOff[x]; i < ch.upOff[x+1]; i++ {
			u := ch.upTo[i]
			if st.labeled(u) && st.settled[u] {
				continue
			}
			if nd := d + ch.upWt[i]; nd < st.distance(u) {
				st.update(u, nd, nd)
			}
		}
	}
	sort.Sort(int32Slice(cands))
	work.cands = cands

	kh := make([]int32, 0, len(cands))
	kd := make([]float64, 0, len(cands))
	for _, h := range cands {
		d := st.dist[h]
		if h != v && prunedVia(st, hubs[h], dists[h], d) {
			continue
		}
		kh = append(kh, h)
		kd = append(kd, d)
	}
	hubs[v], dists[v] = kh, kd
	return len(kh)
}

// prunedVia reports whether some hub h' of the candidate hub's label
// proves a strictly shorter connection than the candidate entry's
// distance d: dist(v, h') + dist(h', h) < d, with dist(v, h') read as
// the upward-search upper bound. Strictness is what makes pruning safe:
// a peak vertex carries its exact distance, for which no strictly
// shorter two-hop bound can exist.
func prunedVia(st *searchState, labHubs []int32, labDists []float64, d float64) bool {
	for j, h2 := range labHubs {
		if st.labeled(h2) && st.dist[h2]+labDists[j] < d {
			return true
		}
	}
	return false
}

// int32Slice implements sort.Interface without the per-call closure
// allocations of sort.Slice (label generation sorts once per vertex).
type int32Slice []int32

func (s int32Slice) Len() int           { return len(s) }
func (s int32Slice) Less(i, j int) bool { return s[i] < s[j] }
func (s int32Slice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
