package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestHLGridEquivalence sweeps HL point queries and the PHAST batch
// against plain Dijkstra on the shared grid topology.
func TestHLGridEquivalence(t *testing.T) {
	g, w := exportGrid(12)
	idx, err := Build(g, w, Options{Mode: HL})
	if err != nil {
		t.Fatalf("Build(HL): %v", err)
	}
	if idx.Kind() != "hl" {
		t.Fatalf("Kind() = %q, want hl", idx.Kind())
	}
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 400; q++ {
		s, u := rng.Intn(g.N()), rng.Intn(g.N())
		want, err := graph.QueryDistance(g, w, s, u)
		if err != nil {
			t.Fatal(err)
		}
		if got := idx.Distance(s, u); !distEqual(got, want) {
			t.Fatalf("Distance(%d,%d) = %v, want %v", s, u, got, want)
		}
	}
	sweep := idx.(OneToAll)
	targets := make([]int, g.N())
	for v := range targets {
		targets[v] = v
	}
	out := make([]float64, g.N())
	s := rng.Intn(g.N())
	sweep.DistancesFrom(s, targets, out)
	for v := 0; v < g.N(); v++ {
		want, err := graph.QueryDistance(g, w, s, v)
		if err != nil {
			t.Fatal(err)
		}
		if !distEqual(out[v], want) {
			t.Fatalf("DistancesFrom(%d)[%d] = %v, want %v", s, v, out[v], want)
		}
	}
}

// TestHLLabelInvariants checks the arena structure the query merge and
// the snapshot reader both depend on: offsets monotone and complete,
// hubs strictly ascending per vertex, every vertex carrying its own
// (v, 0) self entry, all distances finite and nonnegative.
func TestHLLabelInvariants(t *testing.T) {
	g, w := exportGrid(9)
	idx, err := Build(g, w, Options{Mode: HL})
	if err != nil {
		t.Fatal(err)
	}
	x := idx.(*hlIndex)
	n := x.n
	if len(x.labOff) != n+1 || x.labOff[0] != 0 {
		t.Fatalf("labOff: len %d, first %d", len(x.labOff), x.labOff[0])
	}
	if int64(len(x.labHub)) != x.labOff[n] || int64(len(x.labDist)) != x.labOff[n] {
		t.Fatalf("arena lengths %d/%d vs offset total %d", len(x.labHub), len(x.labDist), x.labOff[n])
	}
	for v := 0; v < n; v++ {
		lo, hi := x.labOff[v], x.labOff[v+1]
		if hi < lo {
			t.Fatalf("vertex %d: offsets decrease", v)
		}
		self := false
		for i := lo; i < hi; i++ {
			if i > lo && x.labHub[i] <= x.labHub[i-1] {
				t.Fatalf("vertex %d: hubs not strictly ascending", v)
			}
			if d := x.labDist[i]; !(d >= 0) || math.IsInf(d, 1) {
				t.Fatalf("vertex %d: label distance %g", v, d)
			}
			if int(x.labHub[i]) == v {
				self = true
				if x.labDist[i] != 0 {
					t.Fatalf("vertex %d: self entry has distance %g", v, x.labDist[i])
				}
			}
		}
		if !self {
			t.Fatalf("vertex %d: label lacks its self entry", v)
		}
	}
}

// TestHLAutoTiering: Auto upgrades to hub labels when the label build
// fits the guard, keeps the hierarchy when it does not, and an explicit
// HL request ignores the guard entirely.
func TestHLAutoTiering(t *testing.T) {
	g, w := exportGrid(8)
	auto, err := Build(g, w, Options{Mode: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Kind() != "hl" {
		t.Fatalf("Auto on a grid built %q, want hl", auto.Kind())
	}
	// An average label on any connected graph holds at least the self
	// entry plus ancestors, so MaxAvgLabel 1 must trip the guard.
	tight, err := Build(g, w, Options{Mode: Auto, MaxAvgLabel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Kind() != "ch" {
		t.Fatalf("Auto with MaxAvgLabel 1 built %q, want ch fallback", tight.Kind())
	}
	forced, err := Build(g, w, Options{Mode: HL, MaxAvgLabel: 1})
	if err != nil {
		t.Fatalf("explicit HL must ignore the guard: %v", err)
	}
	if forced.Kind() != "hl" {
		t.Fatalf("explicit HL built %q", forced.Kind())
	}
}

// TestHLDisconnected: cross-component queries and sweep entries are
// +Inf, intra-component ones exact.
func TestHLDisconnected(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	w := []float64{1, 2, 5}
	idx, err := Build(g, w, Options{Mode: HL})
	if err != nil {
		t.Fatal(err)
	}
	if d := idx.Distance(0, 2); d != 3 {
		t.Fatalf("Distance(0,2) = %v", d)
	}
	if d := idx.Distance(0, 3); !math.IsInf(d, 1) {
		t.Fatalf("Distance(0,3) = %v, want +Inf", d)
	}
	out := make([]float64, 3)
	idx.(OneToAll).DistancesFrom(0, []int{2, 3, 5}, out)
	if out[0] != 3 || !math.IsInf(out[1], 1) || !math.IsInf(out[2], 1) {
		t.Fatalf("DistancesFrom(0) = %v", out)
	}
}

// TestTopoOrderRejectsCycle: a hand-built cyclic "upward" CSR must be
// detected (rehydration depends on it).
func TestTopoOrderRejectsCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 plus an honest vertex 3 -> 0.
	upOff := []int32{0, 1, 2, 3, 4}
	upTo := []int32{1, 2, 0, 0}
	if _, ok := topoOrder(4, upOff, upTo); ok {
		t.Fatal("topoOrder accepted a cyclic graph")
	}
	// The acyclic variant must order every edge target first.
	upOff = []int32{0, 1, 2, 3, 3} // 0->1, 1->2, 2->3, vertex 3 maximal
	upTo = []int32{1, 2, 3}
	order, ok := topoOrder(4, upOff, upTo)
	if !ok || len(order) != 4 {
		t.Fatalf("topoOrder rejected an acyclic graph: %v %v", order, ok)
	}
	placed := make([]int, 4)
	for i, v := range order {
		placed[v] = i
	}
	for v := 0; v < 4; v++ {
		for i := upOff[v]; i < upOff[v+1]; i++ {
			if placed[upTo[i]] >= placed[v] {
				t.Fatalf("edge %d->%d not respected by order %v", v, upTo[i], order)
			}
		}
	}
}
