// Package index builds query-speedup indexes over a frozen (topology,
// weight vector) pair — the materialized synthetic graph of a
// release-once/query-many session. An index is pure post-processing of
// the released weights: it reads nothing but public topology and already
// -released values, so it carries no additional privacy cost, and it
// exists purely to make Distance(s, t) serving fast.
//
// Three index families are provided:
//
//   - CH: a contraction hierarchy (bottom-up node ordering by
//     edge-difference, witness-limited shortcut insertion, bidirectional
//     upward search with stall-on-demand). Queries settle a few hundred
//     vertices on road-like and grid-like graphs regardless of size.
//   - HL: 2-hop hub labels computed from the CH contraction order. A
//     point query is one linear merge of two sorted label arrays —
//     another order of magnitude under the CH search — at the cost of
//     label storage and build time on top of the hierarchy.
//   - ALT: landmark-based A* (triangle-inequality lower bounds from a
//     small set of farthest-point landmarks). Slower than CH but immune
//     to contraction degeneracy on dense or highly non-hierarchical
//     graphs.
//
// CH and HL additionally implement OneToAll: a PHAST-style one-to-many
// sweep that answers a repeated-source batch with a single upward
// search plus one linear downward scan.
//
// Build(Auto) tries CH first, falls back to ALT when contraction
// degenerates (shortcut growth past a guard factor), and upgrades the
// hierarchy to hub labels when the label build stays within the
// MaxAvgLabel memory guard. Indexes answer the exact same distances as
// Dijkstra over the same weights, up to floating-point summation order;
// equivalence is enforced by the tests in this package.
//
// All indexes are safe for concurrent use: per-query state lives in
// sync.Pool-recycled, version-stamped workspaces, so steady-state
// queries allocate nothing and never touch shared mutable state.
package index

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Mode selects the index family.
type Mode int

const (
	// Off builds no index; Build returns (nil, nil).
	Off Mode = iota
	// Auto tries CH and falls back to ALT when contraction degenerates
	// (and to no index at all on topologies no family supports).
	Auto
	// CH forces a contraction hierarchy.
	CH
	// ALT forces the landmark A* index.
	ALT
	// HL forces hub labels on top of a contraction hierarchy.
	HL
)

// String returns the CLI spelling of the mode.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Auto:
		return "auto"
	case CH:
		return "ch"
	case ALT:
		return "alt"
	case HL:
		return "hl"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode maps the CLI spellings (off, auto, ch, alt, hl) onto Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "auto":
		return Auto, nil
	case "ch":
		return CH, nil
	case "alt":
		return ALT, nil
	case "hl":
		return HL, nil
	}
	return Off, fmt.Errorf("index: unknown mode %q (want off, auto, ch, alt, or hl)", s)
}

// Index answers exact s-t distance queries over the weights it was
// built from. Implementations are goroutine-safe and allocation-free
// per query in steady state. Endpoints must be in [0, N): callers
// (the dpgraph oracles) validate before querying.
type Index interface {
	// Distance returns the weighted s-t distance, +Inf when the
	// topology disconnects the pair.
	Distance(s, t int) float64
	// N returns the number of vertices served.
	N() int
	// Kind names the index family actually built ("ch", "alt", or
	// "hl"), which under Auto may differ from the requested mode.
	Kind() string
}

// Options tunes index construction. The zero value picks the defaults
// documented per field.
type Options struct {
	// Mode selects the family; Off (the zero value) builds nothing.
	Mode Mode
	// Landmarks is the ALT landmark count (default 8, clamped to N and
	// to an implementation cap of 32, which keeps per-query scratch a
	// fixed-size array).
	Landmarks int
	// WitnessSettleLimit caps the vertices one CH witness search may
	// settle (default 48). Exhausting it inserts the shortcut, which
	// preserves correctness and only costs index size.
	WitnessSettleLimit int
	// MaxShortcutFactor aborts CH construction once more than
	// factor * M shortcuts exist (default 4). Under Auto the abort
	// falls back to ALT; an explicit CH request disables the guard.
	MaxShortcutFactor float64
	// MaxAvgLabel aborts the hub-label build once the total kept label
	// entries pass MaxAvgLabel * N (default 128). Under Auto the abort
	// keeps serving from the hierarchy alone; an explicit HL request
	// disables the guard.
	MaxAvgLabel int
}

func (o Options) withDefaults() Options {
	if o.Landmarks <= 0 {
		o.Landmarks = 8
	}
	if o.WitnessSettleLimit <= 0 {
		o.WitnessSettleLimit = 48
	}
	if o.MaxShortcutFactor <= 0 {
		o.MaxShortcutFactor = 4
	}
	if o.MaxAvgLabel <= 0 {
		o.MaxAvgLabel = 128
	}
	return o
}

// errDegenerate reports that CH contraction blew past the shortcut
// guard; Auto catches it and falls back to ALT.
var errDegenerate = errors.New("index: contraction degenerated (shortcut guard exceeded)")

// errLabelsTooBig reports that the hub-label build blew past the
// MaxAvgLabel guard; Auto catches it and serves from the hierarchy.
var errLabelsTooBig = errors.New("index: hub labels exceeded the size guard")

// Build constructs the index requested by opt over the released
// weights. It returns (nil, nil) for Mode Off, and under Auto also for
// topologies no family supports (directed graphs — callers then serve
// queries unindexed). Explicitly requesting CH or ALT on a directed
// graph is an error, as is any negative weight (released weight
// vectors are clamped nonnegative before indexing).
func Build(g *graph.Graph, w []float64, opt Options) (Index, error) {
	opt = opt.withDefaults()
	if opt.Mode == Off {
		return nil, nil
	}
	if len(w) != g.M() {
		return nil, fmt.Errorf("index: weight vector has %d entries for %d edges", len(w), g.M())
	}
	if g.Directed() {
		if opt.Mode == Auto {
			return nil, nil
		}
		return nil, fmt.Errorf("index: mode %v supports undirected topologies only", opt.Mode)
	}
	for id, x := range w {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("index: edge %d has weight %g; indexes require nonnegative weights", id, x)
		}
	}
	p := prepare(g, w)
	switch opt.Mode {
	case ALT:
		return buildALT(p, opt), nil
	case CH:
		idx, err := buildCH(p, opt, false)
		if err != nil {
			return nil, err
		}
		return idx, nil
	case HL:
		ch, err := buildCH(p, opt, false)
		if err != nil {
			return nil, err
		}
		return buildHL(ch, opt, false)
	case Auto:
		ch, err := buildCH(p, opt, true)
		if err != nil {
			if !errors.Is(err, errDegenerate) {
				return nil, err
			}
			return buildALT(p, opt), nil
		}
		hl, err := buildHL(ch, opt, true)
		if err != nil {
			if !errors.Is(err, errLabelsTooBig) {
				return nil, err
			}
			return ch, nil // labels blew the memory guard: the hierarchy still serves
		}
		return hl, nil
	}
	return nil, fmt.Errorf("index: unknown mode %v", opt.Mode)
}

// prepared is the simplified CSR form both families build from: the
// multigraph collapsed to one min-weight edge per unordered endpoint
// pair, self-loops dropped (they never shorten a nonnegative-weight
// path), plus connected-component labels for O(1) disconnected-pair
// answers.
type prepared struct {
	n    int
	off  []int32   // CSR offsets, len n+1
	to   []int32   // neighbor per half-edge
	wt   []float64 // weight per half-edge
	comp []int32   // component label per vertex
}

// prepare collapses the multigraph into the simplified CSR via one
// sort over the endpoint-normalized edge list.
func prepare(g *graph.Graph, w []float64) *prepared {
	n := g.N()
	type simpleEdge struct {
		u, v int32
		w    float64
	}
	edges := make([]simpleEdge, 0, g.M())
	for _, e := range g.Edges() {
		if e.From == e.To {
			continue
		}
		u, v := int32(e.From), int32(e.To)
		if u > v {
			u, v = v, u
		}
		edges = append(edges, simpleEdge{u, v, w[e.ID]})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		if edges[i].v != edges[j].v {
			return edges[i].v < edges[j].v
		}
		return edges[i].w < edges[j].w
	})
	// Collapse runs of equal endpoints; the sort put the minimum first.
	uniq := edges[:0]
	for i, e := range edges {
		if i > 0 && e.u == uniq[len(uniq)-1].u && e.v == uniq[len(uniq)-1].v {
			continue
		}
		uniq = append(uniq, e)
	}
	p := &prepared{n: n, off: make([]int32, n+1)}
	for _, e := range uniq {
		p.off[e.u+1]++
		p.off[e.v+1]++
	}
	for v := 0; v < n; v++ {
		p.off[v+1] += p.off[v]
	}
	p.to = make([]int32, p.off[n])
	p.wt = make([]float64, p.off[n])
	next := make([]int32, n)
	copy(next, p.off[:n])
	for _, e := range uniq {
		p.to[next[e.u]], p.wt[next[e.u]] = e.v, e.w
		next[e.u]++
		p.to[next[e.v]], p.wt[next[e.v]] = e.u, e.w
		next[e.v]++
	}
	p.comp = components(p)
	return p
}

// m returns the simplified edge count.
func (p *prepared) m() int { return len(p.to) / 2 }

// components labels the connected components of the simplified graph.
func components(p *prepared) []int32 {
	comp := make([]int32, p.n)
	for i := range comp {
		comp[i] = -1
	}
	var label int32
	stack := make([]int32, 0, 64)
	for s := 0; s < p.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = label
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for i := p.off[v]; i < p.off[v+1]; i++ {
				if u := p.to[i]; comp[u] == -1 {
					comp[u] = label
					stack = append(stack, u)
				}
			}
		}
		label++
	}
	return comp
}
