package index

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

// checkEquivalence asserts the index answers every (s, t) pair exactly
// as the pooled Dijkstra engine does (up to float summation order).
func checkEquivalence(t *testing.T, g *graph.Graph, w []float64, idx Index, pairs int, rng *rand.Rand) {
	t.Helper()
	n := g.N()
	if idx.N() != n {
		t.Fatalf("index serves %d vertices, want %d", idx.N(), n)
	}
	for q := 0; q < pairs; q++ {
		s, u := rng.Intn(n), rng.Intn(n)
		want, err := graph.QueryDistance(g, w, s, u)
		if err != nil {
			t.Fatal(err)
		}
		got := idx.Distance(s, u)
		if !distEqual(got, want) {
			t.Fatalf("%s: Distance(%d, %d) = %g, Dijkstra says %g", idx.Kind(), s, u, got, want)
		}
	}
}

func distEqual(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9 || diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// hubGraph builds a hub-and-spoke topology: a few high-degree hubs
// joined to each other, with many leaves attached to random hubs and a
// sprinkling of leaf-leaf edges.
func hubGraph(n, hubs int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < hubs; i++ {
		for j := i + 1; j < hubs; j++ {
			g.AddEdge(i, j)
		}
	}
	for v := hubs; v < n; v++ {
		g.AddEdge(v, rng.Intn(hubs))
		if rng.Float64() < 0.2 && v > hubs {
			g.AddEdge(v, hubs+rng.Intn(v-hubs))
		}
	}
	return g
}

func modes() []Mode { return []Mode{Auto, CH, ALT} }

func TestIndexMatchesDijkstraOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(60)
		g := graph.ErdosRenyi(n, 2.5/float64(n), rng) // often disconnected
		w := graph.UniformRandomWeights(g, 0, 5, rng)
		for _, m := range modes() {
			idx, err := Build(g, w, Options{Mode: m})
			if err != nil {
				t.Fatalf("mode %v: %v", m, err)
			}
			checkEquivalence(t, g, w, idx, 80, rng)
		}
	}
}

func TestIndexMatchesDijkstraOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.Grid(14)
	w := graph.UniformRandomWeights(g, 0.1, 3, rng)
	for _, m := range modes() {
		idx, err := Build(g, w, Options{Mode: m})
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		checkEquivalence(t, g, w, idx, 200, rng)
	}
}

func TestIndexMatchesDijkstraOnHubGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := hubGraph(300, 6, rng)
	w := graph.UniformRandomWeights(g, 0, 4, rng)
	for _, m := range modes() {
		idx, err := Build(g, w, Options{Mode: m})
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		checkEquivalence(t, g, w, idx, 200, rng)
	}
}

func TestIndexZeroWeightEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.Grid(8)
	w := make([]float64, g.M()) // all zero
	for _, m := range modes() {
		idx, err := Build(g, w, Options{Mode: m})
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		checkEquivalence(t, g, w, idx, 60, rng)
		if d := idx.Distance(0, g.N()-1); d != 0 {
			t.Fatalf("mode %v: zero-weight distance = %g, want 0", m, d)
		}
	}
}

func TestIndexDisconnectedPairs(t *testing.T) {
	// Two grid components with no edge between them.
	side := 5
	block := graph.Grid(side)
	g := graph.New(2 * block.N())
	for _, e := range block.Edges() {
		g.AddEdge(e.From, e.To)
		g.AddEdge(block.N()+e.From, block.N()+e.To)
	}
	rng := rand.New(rand.NewSource(19))
	w := graph.UniformRandomWeights(g, 1, 2, rng)
	for _, m := range modes() {
		idx, err := Build(g, w, Options{Mode: m})
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		if d := idx.Distance(0, block.N()); !math.IsInf(d, 1) {
			t.Fatalf("mode %v: cross-component distance = %g, want +Inf", m, d)
		}
		checkEquivalence(t, g, w, idx, 100, rng)
	}
}

func TestIndexMultigraphSelfLoopsAndParallelEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.New(20)
	for i := 0; i < 19; i++ {
		g.AddEdge(i, i+1)
	}
	for q := 0; q < 30; q++ {
		u, v := rng.Intn(20), rng.Intn(20)
		g.AddEdge(u, v) // parallels and self-loops alike
	}
	w := graph.UniformRandomWeights(g, 0, 3, rng)
	for _, m := range modes() {
		idx, err := Build(g, w, Options{Mode: m})
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		checkEquivalence(t, g, w, idx, 120, rng)
	}
}

func TestIndexTinyGraphs(t *testing.T) {
	for _, m := range modes() {
		one := graph.New(1)
		idx, err := Build(one, nil, Options{Mode: m})
		if err != nil {
			t.Fatalf("mode %v on K1: %v", m, err)
		}
		if d := idx.Distance(0, 0); d != 0 {
			t.Fatalf("mode %v: self distance = %g", m, d)
		}
		two := graph.New(2)
		two.AddEdge(0, 1)
		idx, err = Build(two, []float64{1.5}, Options{Mode: m})
		if err != nil {
			t.Fatalf("mode %v on K2: %v", m, err)
		}
		if d := idx.Distance(0, 1); d != 1.5 {
			t.Fatalf("mode %v: distance = %g, want 1.5", m, d)
		}
	}
}

func TestBuildModeOffAndDirected(t *testing.T) {
	g := graph.Grid(3)
	w := graph.UniformWeights(g, 1)
	if idx, err := Build(g, w, Options{Mode: Off}); idx != nil || err != nil {
		t.Fatalf("Off: got (%v, %v), want (nil, nil)", idx, err)
	}
	dg := graph.NewDirected(3)
	dg.AddEdge(0, 1)
	dg.AddEdge(1, 2)
	dw := []float64{1, 1}
	if idx, err := Build(dg, dw, Options{Mode: Auto}); idx != nil || err != nil {
		t.Fatalf("Auto on directed: got (%v, %v), want (nil, nil)", idx, err)
	}
	for _, m := range []Mode{CH, ALT} {
		if _, err := Build(dg, dw, Options{Mode: m}); err == nil {
			t.Fatalf("mode %v on directed graph: expected error", m)
		}
	}
	if _, err := Build(g, []float64{1}, Options{Mode: CH}); err == nil {
		t.Fatal("wrong weight length: expected error")
	}
	neg := graph.UniformWeights(g, 1)
	neg[0] = -0.5
	if _, err := Build(g, neg, Options{Mode: CH}); err == nil {
		t.Fatal("negative weight: expected error")
	}
}

func TestAutoFallsBackToALTOnDegeneracy(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.Grid(10)
	w := graph.UniformRandomWeights(g, 1, 2, rng)
	// A guard factor this small cannot survive any real contraction, so
	// Auto must deliver the ALT fallback — and still answer correctly.
	idx, err := Build(g, w, Options{Mode: Auto, MaxShortcutFactor: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Kind() != "alt" {
		t.Fatalf("degenerate Auto build produced %q, want alt fallback", idx.Kind())
	}
	checkEquivalence(t, g, w, idx, 100, rng)
	// An explicit CH request ignores the guard and completes.
	idx, err = Build(g, w, Options{Mode: CH, MaxShortcutFactor: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Kind() != "ch" {
		t.Fatalf("explicit CH produced %q", idx.Kind())
	}
	checkEquivalence(t, g, w, idx, 100, rng)
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"off", Off}, {"auto", Auto}, {"ch", CH}, {"alt", ALT}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode(bogus): expected error")
	}
}

func TestIndexConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.Grid(12)
	w := graph.UniformRandomWeights(g, 0.5, 3, rng)
	n := g.N()
	type pair struct {
		s, t int
		want float64
	}
	pairs := make([]pair, 200)
	for i := range pairs {
		s, u := rng.Intn(n), rng.Intn(n)
		d, err := graph.QueryDistance(g, w, s, u)
		if err != nil {
			t.Fatal(err)
		}
		pairs[i] = pair{s, u, d}
	}
	for _, m := range []Mode{CH, ALT} {
		idx, err := Build(g, w, Options{Mode: m})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for wk := 0; wk < 8; wk++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				for i := range pairs {
					p := pairs[(i+off)%len(pairs)]
					if got := idx.Distance(p.s, p.t); !distEqual(got, p.want) {
						t.Errorf("%s: concurrent Distance(%d, %d) = %g, want %g", idx.Kind(), p.s, p.t, got, p.want)
						return
					}
				}
			}(wk * 7)
		}
		wg.Wait()
	}
}

func TestPairCache(t *testing.T) {
	c := NewPairCache(1024)
	if _, ok := c.Get(1, 2); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(1, 2, 3.5)
	if d, ok := c.Get(1, 2); !ok || d != 3.5 {
		t.Fatalf("Get(1,2) = (%g, %v), want (3.5, true)", d, ok)
	}
	// Fill past capacity: the cache must stay bounded and usable.
	for i := 0; i < 10_000; i++ {
		c.Put(i, i+1, float64(i))
	}
	if c.Len() > 1024+cacheShards {
		t.Fatalf("cache grew to %d entries, capacity 1024", c.Len())
	}
	var wg sync.WaitGroup
	for wk := 0; wk < 8; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Put(wk*2000+i, i, float64(i))
				c.Get(i, i)
			}
		}(wk)
	}
	wg.Wait()
}
