package index

import "math"

// This file implements the PHAST-style one-to-all sweep over a built
// hierarchy. A bidirectional CH query pays a full upward climb per
// target; when one source fans out to many targets that per-pair cost
// dominates. The sweep pays it once: an upward Dijkstra from s labels
// the source's search space, then one linear pass over the vertices in
// descending contraction rank relaxes every upward edge *backwards*
// (dist[v] = min(dist[v], dist[u] + w) for each upward edge v→u), so a
// k-target batch costs O(search + n + m) instead of k upward searches.
//
// Correctness: every shortest s-v path has an up-down form; its peak is
// labeled exactly by the upward phase (stall-on-demand never stalls a
// peak), and the downward chain from the peak to v is relaxed in order
// because each hop goes to a strictly lower rank, which the sweep
// visits later. Every value ever written is the length of a real walk,
// so nothing can undershoot.

// OneToAll is the capability interface of indexes that can answer
// repeated-source batches with a single hierarchy sweep. The oracle's
// batch path routes a source's pairs through DistancesFrom once the
// number of distinct targets reaches MinSweepTargets.
type OneToAll interface {
	Index

	// DistancesFrom fills out[i] with the distance from s to targets[i]
	// (math.Inf(1) for unreachable targets). len(out) must equal
	// len(targets) and every vertex must be in [0, N()).
	DistancesFrom(s int, targets []int, out []float64)

	// MinSweepTargets reports the per-source batch size above which one
	// sweep is expected to beat per-pair point queries on this index.
	MinSweepTargets() int
}

// sweepState is the pooled scratch of one sweep: the upward search
// state and the full distance array the downward scan fills.
type sweepState struct {
	st   *searchState
	dist []float64
}

// MinSweepTargets: a sweep is O(n + m) against ~polylog per point
// query, so the break-even grows with the graph; the constants below
// put it at a few dozen targets on bench-sized grids.
func (c *chIndex) MinSweepTargets() int { return 16 + c.n/1024 }

// DistancesFrom runs one upward search from s and one downward scan,
// then gathers the requested targets. Allocation-free in steady state:
// both phases run on a pooled sweepState.
//
//dpvet:hotpath
func (c *chIndex) DistancesFrom(s int, targets []int, out []float64) {
	ws := c.sweepPool.Get().(*sweepState)
	st, dist := ws.st, ws.dist

	// Upward phase: plain stall-on-demand Dijkstra from s over the
	// upward graph, run to exhaustion (no opposite frontier to bound it).
	st.begin()
	st.update(int32(s), 0, 0)
	for !st.empty() {
		v := st.pop()
		st.settled[v] = true
		d := st.dist[v]
		stalled := false
		for i := c.upOff[v]; i < c.upOff[v+1]; i++ {
			u := c.upTo[i]
			if st.labeled(u) && st.dist[u]+c.upWt[i] < d {
				stalled = true
				break
			}
		}
		if stalled {
			continue
		}
		for i := c.upOff[v]; i < c.upOff[v+1]; i++ {
			u := c.upTo[i]
			if st.labeled(u) && st.settled[u] {
				continue
			}
			if nd := d + c.upWt[i]; nd < st.distance(u) {
				st.update(u, nd, nd)
			}
		}
	}
	for v := range dist {
		dist[v] = st.distance(int32(v))
	}

	// Downward phase: vertices in descending rank order; every upward
	// neighbor u of v is already final when v is scanned.
	for _, v := range c.order {
		d := dist[v]
		for i := c.upOff[v]; i < c.upOff[v+1]; i++ {
			if nd := dist[c.upTo[i]] + c.upWt[i]; nd < d {
				d = nd
			}
		}
		dist[v] = d
	}

	for i, t := range targets {
		out[i] = dist[t]
	}
	c.sweepPool.Put(ws)
}

// initSweep wires the sweep scratch pool; called by freeze and by
// rehydration once n, the upward CSR, and order are in place.
func (c *chIndex) initSweep() {
	n := c.n
	c.sweepPool.New = func() any {
		ws := &sweepState{st: newSearchState(n), dist: make([]float64, n)}
		for i := range ws.dist {
			ws.dist[i] = math.Inf(1)
		}
		return ws
	}
}

// topoOrder derives a sweep order for a rehydrated hierarchy, where the
// contraction ranks are gone: any topological order of the upward DAG
// that places every edge's target before its source is
// descending-rank-compatible, which is all the downward scan (and label
// generation) needs. Returns false when the claimed upward graph is
// cyclic — flat arrays carrying a cycle were never produced by a
// contraction and would make the sweep silently wrong.
func topoOrder(n int, upOff, upTo []int32) ([]int32, bool) {
	// pending[v] counts v's upward edges whose targets are not yet
	// placed; rev is the CSR of reversed upward edges.
	pending := make([]int32, n)
	revOff := make([]int32, n+1)
	for _, u := range upTo {
		revOff[u+1]++
	}
	for v := 0; v < n; v++ {
		pending[v] = upOff[v+1] - upOff[v]
		revOff[v+1] += revOff[v]
	}
	revTo := make([]int32, len(upTo))
	next := make([]int32, n)
	copy(next, revOff[:n])
	for v := int32(0); v < int32(n); v++ {
		for i := upOff[v]; i < upOff[v+1]; i++ {
			u := upTo[i]
			revTo[next[u]] = v
			next[u]++
		}
	}
	order := make([]int32, 0, n)
	for v := int32(0); v < int32(n); v++ {
		if pending[v] == 0 {
			order = append(order, v)
		}
	}
	for head := 0; head < len(order); head++ {
		u := order[head]
		for i := revOff[u]; i < revOff[u+1]; i++ {
			v := revTo[i]
			pending[v]--
			if pending[v] == 0 {
				order = append(order, v)
			}
		}
	}
	return order, len(order) == n
}
