package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

var quickCfg = &quick.Config{MaxCount: 30}

// TestQuickIndexedEqualsDijkstra: on arbitrary random multigraphs (all
// three buildable modes), the indexed distance equals the Dijkstra
// distance for arbitrary pairs, including unreachable ones.
func TestQuickIndexedEqualsDijkstra(t *testing.T) {
	f := func(seed int64, a, b uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(a%50)
		g := graph.ErdosRenyi(n, 3/float64(n), rng)
		// Sprinkle parallels and self-loops: indexes must simplify.
		for q := 0; q < int(b%10); q++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		w := graph.UniformRandomWeights(g, 0, 4, rng)
		for i := range w {
			if rng.Float64() < 0.1 {
				w[i] = 0 // exercise zero-weight edges
			}
		}
		for _, m := range []Mode{Auto, CH, ALT, HL} {
			idx, err := Build(g, w, Options{Mode: m})
			if err != nil {
				return false
			}
			for q := 0; q < 30; q++ {
				s, u := rng.Intn(n), rng.Intn(n)
				want, err := graph.QueryDistance(g, w, s, u)
				if err != nil {
					return false
				}
				if !distEqual(idx.Distance(s, u), want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickOneToAllEqualsDijkstra: the PHAST sweep (on both the CH and
// HL indexes) matches per-vertex Dijkstra for every target at once,
// including unreachable ones, on arbitrary random multigraphs.
func TestQuickOneToAllEqualsDijkstra(t *testing.T) {
	f := func(seed int64, a uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(a%50)
		g := graph.ErdosRenyi(n, 3/float64(n), rng)
		for q := 0; q < 5; q++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		w := graph.UniformRandomWeights(g, 0, 4, rng)
		targets := make([]int, n)
		for v := range targets {
			targets[v] = v
		}
		out := make([]float64, n)
		for _, m := range []Mode{CH, HL} {
			idx, err := Build(g, w, Options{Mode: m})
			if err != nil {
				return false
			}
			sweep, ok := idx.(OneToAll)
			if !ok {
				return false
			}
			s := rng.Intn(n)
			sweep.DistancesFrom(s, targets, out)
			for v := 0; v < n; v++ {
				want, err := graph.QueryDistance(g, w, s, v)
				if err != nil {
					return false
				}
				if !distEqual(out[v], want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickIndexSymmetric: on undirected graphs the indexed distance is
// symmetric, zero on the diagonal, and respects the triangle
// inequality through a random midpoint.
func TestQuickIndexSymmetric(t *testing.T) {
	f := func(seed int64, a uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(a%40)
		g := graph.ConnectedErdosRenyi(n, 2/float64(n), rng)
		w := graph.UniformRandomWeights(g, 0, 5, rng)
		for _, m := range []Mode{CH, ALT, HL} {
			idx, err := Build(g, w, Options{Mode: m})
			if err != nil {
				return false
			}
			x, y, z := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			dxy, dyx := idx.Distance(x, y), idx.Distance(y, x)
			if !distEqual(dxy, dyx) || idx.Distance(x, x) != 0 {
				return false
			}
			if idx.Distance(x, z) > idx.Distance(x, y)+idx.Distance(y, z)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
