package index

import "math"

// searchState is one direction of a Dijkstra/A* search with O(1) reset:
// every per-vertex array is guarded by a version stamp, so starting a
// new query just bumps the epoch instead of clearing O(n) memory — the
// whole point of an index is that queries touch far fewer than n
// vertices. The frontier is an indexed binary heap ordered by an
// explicit key array (plain distance for Dijkstra, distance plus
// heuristic for A*), so decrease-key works for both.
type searchState struct {
	epoch   uint32
	ver     []uint32  // ver[v] == epoch marks dist/key/pos/settled valid
	dist    []float64 // tentative distance label
	key     []float64 // heap ordering key
	settled []bool
	pos     []int32 // heap position, -1 when not enqueued
	heap    []int32
}

func newSearchState(n int) *searchState {
	return &searchState{
		ver:     make([]uint32, n),
		dist:    make([]float64, n),
		key:     make([]float64, n),
		settled: make([]bool, n),
		pos:     make([]int32, n),
	}
}

// begin starts a new search; all previous labels become stale.
//
//dpvet:hotpath
func (s *searchState) begin() {
	s.epoch++
	s.heap = s.heap[:0]
	if s.epoch == 0 { // wrapped: stamps from 2^32 queries ago are now live
		for i := range s.ver {
			s.ver[i] = 0
		}
		s.epoch = 1
	}
}

// labeled reports whether v carries a label in the current search.
//
//dpvet:hotpath
func (s *searchState) labeled(v int32) bool { return s.ver[v] == s.epoch }

// distance returns v's tentative distance, Inf when unlabeled.
//
//dpvet:hotpath
func (s *searchState) distance(v int32) float64 {
	if s.ver[v] == s.epoch {
		return s.dist[v]
	}
	return math.Inf(1)
}

// touch makes v live in the current epoch with cleared state.
//
//dpvet:hotpath
func (s *searchState) touch(v int32) {
	if s.ver[v] != s.epoch {
		s.ver[v] = s.epoch
		s.dist[v] = math.Inf(1)
		s.key[v] = math.Inf(1)
		s.settled[v] = false
		s.pos[v] = -1
	}
}

// update sets v's label and key, pushing or decreasing as needed.
//
//dpvet:hotpath
func (s *searchState) update(v int32, dist, key float64) {
	s.touch(v)
	s.dist[v] = dist
	s.key[v] = key
	if s.pos[v] >= 0 {
		s.siftUp(int(s.pos[v]))
	} else {
		s.pos[v] = int32(len(s.heap))
		s.heap = append(s.heap, v)
		s.siftUp(len(s.heap) - 1)
	}
}

// empty reports whether the frontier is exhausted.
//
//dpvet:hotpath
func (s *searchState) empty() bool { return len(s.heap) == 0 }

// minKey returns the smallest frontier key, Inf when empty.
//
//dpvet:hotpath
func (s *searchState) minKey() float64 {
	if len(s.heap) == 0 {
		return math.Inf(1)
	}
	return s.key[s.heap[0]]
}

// pop removes and returns the frontier vertex with the minimum key.
//
//dpvet:hotpath
func (s *searchState) pop() int32 {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.pos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.pos[top] = -1
	if last > 0 {
		s.siftDown(0)
	}
	return top
}

//dpvet:hotpath
func (s *searchState) siftUp(i int) {
	v := s.heap[i]
	k := s.key[v]
	for i > 0 {
		p := (i - 1) / 2
		pv := s.heap[p]
		if s.key[pv] <= k {
			break
		}
		s.heap[i] = pv
		s.pos[pv] = int32(i)
		i = p
	}
	s.heap[i] = v
	s.pos[v] = int32(i)
}

//dpvet:hotpath
func (s *searchState) siftDown(i int) {
	v := s.heap[i]
	k := s.key[v]
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best, bk := l, s.key[s.heap[l]]
		if r := l + 1; r < n {
			if rk := s.key[s.heap[r]]; rk < bk {
				best, bk = r, rk
			}
		}
		if bk >= k {
			break
		}
		bv := s.heap[best]
		s.heap[i] = bv
		s.pos[bv] = int32(i)
		i = best
	}
	s.heap[i] = v
	s.pos[v] = int32(i)
}
