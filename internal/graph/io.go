package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format for a weighted graph is line oriented:
//
//	# comment
//	graph <numVertices> [directed]
//	edge <from> <to> <weight>
//
// Edges receive IDs in file order. The JSON format mirrors jsonGraph.

// WriteText writes g and w in the text edge-list format.
func WriteText(out io.Writer, g *Graph, w []float64) error {
	if len(w) != g.M() {
		return fmt.Errorf("graph: WriteText weight vector has length %d, want %d", len(w), g.M())
	}
	bw := bufio.NewWriter(out)
	kind := ""
	if g.Directed() {
		kind = " directed"
	}
	fmt.Fprintf(bw, "graph %d%s\n", g.N(), kind)
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d %d %g\n", e.From, e.To, w[e.ID])
	}
	return bw.Flush()
}

// ReadText parses the text edge-list format, returning the graph and its
// weight vector.
func ReadText(in io.Reader) (*Graph, []float64, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	var w []float64
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "graph":
			if g != nil {
				return nil, nil, fmt.Errorf("graph: line %d: duplicate graph header", lineno)
			}
			if len(fields) < 2 || len(fields) > 3 {
				return nil, nil, fmt.Errorf("graph: line %d: want 'graph <n> [directed]'", lineno)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineno, fields[1])
			}
			if len(fields) == 3 {
				if fields[2] != "directed" {
					return nil, nil, fmt.Errorf("graph: line %d: unknown flag %q", lineno, fields[2])
				}
				g = NewDirected(n)
			} else {
				g = New(n)
			}
		case "edge":
			if g == nil {
				return nil, nil, fmt.Errorf("graph: line %d: edge before graph header", lineno)
			}
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("graph: line %d: want 'edge <from> <to> <weight>'", lineno)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			wt, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, nil, fmt.Errorf("graph: line %d: malformed edge %q", lineno, line)
			}
			if from < 0 || from >= g.N() || to < 0 || to >= g.N() {
				return nil, nil, fmt.Errorf("graph: line %d: endpoint out of range", lineno)
			}
			g.AddEdge(from, to)
			w = append(w, wt)
		default:
			return nil, nil, fmt.Errorf("graph: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if g == nil {
		return nil, nil, fmt.Errorf("graph: missing graph header")
	}
	return g, w, nil
}

// jsonGraph is the JSON wire form of a weighted graph.
type jsonGraph struct {
	Vertices int       `json:"vertices"`
	Directed bool      `json:"directed,omitempty"`
	Edges    [][2]int  `json:"edges"`
	Weights  []float64 `json:"weights,omitempty"`
}

// MarshalJSONGraph encodes g and w (w may be nil for topology only).
func MarshalJSONGraph(g *Graph, w []float64) ([]byte, error) {
	if w != nil && len(w) != g.M() {
		return nil, fmt.Errorf("graph: MarshalJSONGraph weight vector has length %d, want %d", len(w), g.M())
	}
	jg := jsonGraph{Vertices: g.N(), Directed: g.Directed(), Weights: w}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, [2]int{e.From, e.To})
	}
	return json.MarshalIndent(jg, "", "  ")
}

// UnmarshalJSONGraph decodes a graph and optional weight vector.
func UnmarshalJSONGraph(data []byte) (*Graph, []float64, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, nil, err
	}
	if jg.Vertices < 0 {
		return nil, nil, fmt.Errorf("graph: negative vertex count %d", jg.Vertices)
	}
	var g *Graph
	if jg.Directed {
		g = NewDirected(jg.Vertices)
	} else {
		g = New(jg.Vertices)
	}
	for i, e := range jg.Edges {
		if e[0] < 0 || e[0] >= jg.Vertices || e[1] < 0 || e[1] >= jg.Vertices {
			return nil, nil, fmt.Errorf("graph: edge %d endpoint out of range", i)
		}
		g.AddEdge(e[0], e[1])
	}
	if jg.Weights != nil && len(jg.Weights) != g.M() {
		return nil, nil, fmt.Errorf("graph: %d weights for %d edges", len(jg.Weights), g.M())
	}
	return g, jg.Weights, nil
}
