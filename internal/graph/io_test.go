package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := ConnectedErdosRenyi(20, 0.2, rng)
	w := UniformRandomWeights(g, 0, 10, rng)
	var buf bytes.Buffer
	if err := WriteText(&buf, g, w); err != nil {
		t.Fatal(err)
	}
	g2, w2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() || g2.Directed() != g.Directed() {
		t.Fatal("shape mismatch")
	}
	for i, e := range g.Edges() {
		e2 := g2.Edge(i)
		if e.From != e2.From || e.To != e2.To {
			t.Fatalf("edge %d mismatch", i)
		}
		if w[i] != w2[i] {
			t.Fatalf("weight %d mismatch: %g vs %g", i, w[i], w2[i])
		}
	}
}

func TestTextDirectedRoundTrip(t *testing.T) {
	g := NewDirected(3)
	g.AddEdge(2, 0)
	var buf bytes.Buffer
	if err := WriteText(&buf, g, []float64{1.5}); err != nil {
		t.Fatal(err)
	}
	g2, w2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Directed() || g2.Edge(0).From != 2 || w2[0] != 1.5 {
		t.Fatal("directed round trip failed")
	}
}

func TestReadTextCommentsAndBlank(t *testing.T) {
	in := "# header\n\ngraph 2\n# middle\nedge 0 1 3.25\n"
	g, w, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || w[0] != 3.25 {
		t.Fatal("parse failed")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"edge 0 1 2\n",          // edge before header
		"graph 2\ngraph 2\n",    // duplicate header
		"graph -1\n",            // bad count
		"graph 2 nonsense\n",    // unknown flag
		"graph 2\nedge 0 1\n",   // short edge
		"graph 2\nedge 0 5 1\n", // out of range
		"graph 2\nedge a b c\n", // malformed
		"graph 2\nfrobnicate\n", // unknown directive
		"graph\n",               // missing count
	}
	for _, in := range cases {
		if _, _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestWriteTextLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, Path(3), []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := ConnectedErdosRenyi(15, 0.3, rng)
	w := UniformRandomWeights(g, 0, 1, rng)
	data, err := MarshalJSONGraph(g, w)
	if err != nil {
		t.Fatal(err)
	}
	g2, w2, err := UnmarshalJSONGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("shape mismatch")
	}
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("weights mismatch")
		}
	}
}

func TestJSONTopologyOnly(t *testing.T) {
	data, err := MarshalJSONGraph(Path(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	g, w, err := UnmarshalJSONGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil || g.M() != 2 {
		t.Fatal("topology-only round trip failed")
	}
}

func TestJSONErrors(t *testing.T) {
	if _, _, err := UnmarshalJSONGraph([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, _, err := UnmarshalJSONGraph([]byte(`{"vertices":-1}`)); err == nil {
		t.Error("negative vertices accepted")
	}
	if _, _, err := UnmarshalJSONGraph([]byte(`{"vertices":2,"edges":[[0,5]]}`)); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, _, err := UnmarshalJSONGraph([]byte(`{"vertices":2,"edges":[[0,1]],"weights":[1,2]}`)); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := MarshalJSONGraph(Path(3), []float64{1}); err == nil {
		t.Error("marshal length mismatch accepted")
	}
}
