package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoPerfectMatching is returned when the graph admits no perfect
// matching.
var ErrNoPerfectMatching = errors.New("graph: no perfect matching exists")

// ErrMatchingTooLarge is returned for non-bipartite connected components
// too large for the exact exponential matcher. The private matching
// mechanism (Theorem B.6) only requires *some* exact matcher as
// post-processing; see DESIGN.md §6 for the substitution note.
var ErrMatchingTooLarge = errors.New("graph: non-bipartite component too large for exact matching")

// maxGeneralComponent bounds the size of non-bipartite components handled
// by the bitmask matcher (2^n masks).
const maxGeneralComponent = 22

// Bipartition 2-colors the underlying undirected graph. It returns the
// color of every vertex (0 or 1) and whether the graph is bipartite.
// Self-loops make a graph non-bipartite; isolated vertices get color 0.
func Bipartition(g *Graph) ([]int, bool) {
	n := g.N()
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.Adj(v) {
				if h.To == v {
					return nil, false // self-loop
				}
				if color[h.To] == -1 {
					color[h.To] = 1 - color[v]
					queue = append(queue, h.To)
				} else if color[h.To] == color[v] {
					return nil, false
				}
			}
		}
	}
	return color, true
}

// MinWeightPerfectMatching computes an exact minimum-weight perfect
// matching of the undirected graph g under weight vector w (negative
// weights permitted, as in Appendix B). The graph is decomposed into
// connected components; bipartite components use the Hungarian algorithm
// and small non-bipartite components use exact dynamic programming over
// vertex subsets. It returns the matched edge IDs, sorted, and the total
// weight.
func MinWeightPerfectMatching(g *Graph, w []float64) ([]int, float64, error) {
	if g.Directed() {
		return nil, 0, errors.New("graph: matching requires an undirected graph")
	}
	if len(w) != g.M() {
		return nil, 0, fmt.Errorf("graph: matching weight vector has length %d, want %d", len(w), g.M())
	}
	comps := g.Components()
	var matched []int
	total := 0.0
	for c := 0; c < comps.Count; c++ {
		verts := comps.Vertices(c)
		if len(verts)%2 != 0 {
			return nil, 0, fmt.Errorf("%w: component with %d vertices", ErrNoPerfectMatching, len(verts))
		}
		if len(verts) == 0 {
			continue
		}
		ids, wt, err := matchComponent(g, w, verts)
		if err != nil {
			return nil, 0, err
		}
		matched = append(matched, ids...)
		total += wt
	}
	sort.Ints(matched)
	return matched, total, nil
}

// MaxWeightPerfectMatching computes a maximum-weight perfect matching by
// negating the weights.
func MaxWeightPerfectMatching(g *Graph, w []float64) ([]int, float64, error) {
	neg := make([]float64, len(w))
	for i, x := range w {
		neg[i] = -x
	}
	ids, wt, err := MinWeightPerfectMatching(g, neg)
	return ids, -wt, err
}

// matchComponent matches one connected component given by its vertex list.
func matchComponent(g *Graph, w []float64, verts []int) ([]int, float64, error) {
	index := make(map[int]int, len(verts))
	for i, v := range verts {
		index[v] = i
	}
	// Cheapest edge between each local pair, remembering the edge ID.
	n := len(verts)
	cost := make([][]float64, n)
	via := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		via[i] = make([]int, n)
		for j := range cost[i] {
			cost[i][j] = math.Inf(1)
			via[i][j] = -1
		}
	}
	for _, v := range verts {
		iv := index[v]
		for _, h := range g.Adj(v) {
			if h.To == v {
				continue // self-loops never belong to a matching
			}
			iu, ok := index[h.To]
			if !ok {
				continue
			}
			if w[h.Edge] < cost[iv][iu] {
				cost[iv][iu] = w[h.Edge]
				via[iv][iu] = h.Edge
				cost[iu][iv] = w[h.Edge]
				via[iu][iv] = h.Edge
			}
		}
	}
	if color, ok := bipartitionLocal(g, verts, index); ok {
		return hungarianMatch(cost, via, color)
	}
	if n > maxGeneralComponent {
		return nil, 0, fmt.Errorf("%w: component size %d", ErrMatchingTooLarge, n)
	}
	return bitmaskMatch(cost, via)
}

// bipartitionLocal 2-colors the component induced by verts; returns local
// colors indexed like verts.
func bipartitionLocal(g *Graph, verts []int, index map[int]int) ([]int, bool) {
	color := make([]int, len(verts))
	for i := range color {
		color[i] = -1
	}
	color[0] = 0
	queue := []int{verts[0]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range g.Adj(v) {
			if h.To == v {
				return nil, false
			}
			j, ok := index[h.To]
			if !ok {
				continue
			}
			if color[j] == -1 {
				color[j] = 1 - color[index[v]]
				queue = append(queue, h.To)
			} else if color[j] == color[index[v]] {
				return nil, false
			}
		}
	}
	return color, true
}

// hungarianMatch solves min-cost perfect matching on a bipartite component
// via the O(n^3) Hungarian algorithm with potentials (the classical
// shortest-augmenting-path formulation). cost/via are local all-pairs
// cheapest-edge tables; color gives the bipartition.
func hungarianMatch(cost [][]float64, via [][]int, color []int) ([]int, float64, error) {
	var left, right []int
	for i, c := range color {
		if c == 0 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) != len(right) {
		return nil, 0, fmt.Errorf("%w: unbalanced bipartition %d vs %d", ErrNoPerfectMatching, len(left), len(right))
	}
	n := len(left)
	if n == 0 {
		return nil, 0, nil
	}
	const inf = math.MaxFloat64 / 4
	a := make([][]float64, n+1) // 1-based cost matrix
	for i := 1; i <= n; i++ {
		a[i] = make([]float64, n+1)
		for j := 1; j <= n; j++ {
			c := cost[left[i-1]][right[j-1]]
			if math.IsInf(c, 1) {
				c = inf
			}
			a[i][j] = c
		}
	}
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j (0 = none)
	way := make([]int, n+1) // augmenting path bookkeeping
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := a[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	var ids []int
	total := 0.0
	for j := 1; j <= n; j++ {
		i := p[j]
		li, rj := left[i-1], right[j-1]
		e := via[li][rj]
		if e < 0 {
			return nil, 0, ErrNoPerfectMatching
		}
		ids = append(ids, e)
		total += cost[li][rj]
	}
	return ids, total, nil
}

// bitmaskMatch solves min-weight perfect matching exactly on a small
// component by dynamic programming over vertex subsets: dp[mask] is the
// cheapest perfect matching of the vertices in mask. O(2^n * n^2) worst
// case but effectively O(2^n * n) since the lowest unmatched vertex is
// always paired first.
func bitmaskMatch(cost [][]float64, via [][]int) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	size := 1 << n
	dp := make([]float64, size)
	choice := make([]int32, size) // packed (i, j) pair chosen at this mask
	for m := 1; m < size; m++ {
		dp[m] = math.Inf(1)
		choice[m] = -1
	}
	for m := 0; m < size; m++ {
		if math.IsInf(dp[m], 1) {
			continue
		}
		// First vertex not yet matched.
		i := 0
		for ; i < n; i++ {
			if m&(1<<i) == 0 {
				break
			}
		}
		if i == n {
			continue
		}
		for j := i + 1; j < n; j++ {
			if m&(1<<j) != 0 || via[i][j] < 0 {
				continue
			}
			nm := m | 1<<i | 1<<j
			if c := dp[m] + cost[i][j]; c < dp[nm] {
				dp[nm] = c
				choice[nm] = int32(i<<8 | j)
			}
		}
	}
	full := size - 1
	if math.IsInf(dp[full], 1) {
		return nil, 0, ErrNoPerfectMatching
	}
	var ids []int
	for m := full; m != 0; {
		c := choice[m]
		i, j := int(c>>8), int(c&0xff)
		ids = append(ids, via[i][j])
		m &^= 1<<i | 1<<j
	}
	return ids, dp[full], nil
}

// IsPerfectMatching reports whether the edge IDs form a perfect matching
// of g: every vertex is covered exactly once.
func IsPerfectMatching(g *Graph, edgeIDs []int) bool {
	covered := make([]bool, g.N())
	for _, id := range edgeIDs {
		if id < 0 || id >= g.M() {
			return false
		}
		e := g.Edge(id)
		if e.From == e.To || covered[e.From] || covered[e.To] {
			return false
		}
		covered[e.From] = true
		covered[e.To] = true
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}
