package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// bruteForceMatching finds the min-weight perfect matching by recursion;
// exponential, for cross-checking on small graphs.
func bruteForceMatching(g *Graph, w []float64) (float64, bool) {
	n := g.N()
	if n%2 != 0 {
		return 0, false
	}
	used := make([]bool, n)
	var best float64
	found := false
	var rec func(done int, acc float64)
	rec = func(done int, acc float64) {
		if done == n {
			if !found || acc < best {
				best, found = acc, true
			}
			return
		}
		i := 0
		for used[i] {
			i++
		}
		used[i] = true
		for _, h := range g.Adj(i) {
			if h.To == i || used[h.To] {
				continue
			}
			used[h.To] = true
			rec(done+2, acc+w[h.Edge])
			used[h.To] = false
		}
		used[i] = false
	}
	rec(0, 0)
	return best, found
}

func TestMatchingPathGraphs(t *testing.T) {
	// P2: single edge. P4: must take outer edges.
	g := Path(2)
	ids, wt, err := MinWeightPerfectMatching(g, []float64{3})
	if err != nil || wt != 3 || len(ids) != 1 {
		t.Fatalf("P2: %v %g %v", ids, wt, err)
	}
	g4 := Path(4)
	ids, wt, err = MinWeightPerfectMatching(g4, []float64{1, 100, 1})
	if err != nil || wt != 2 || len(ids) != 2 {
		t.Fatalf("P4: %v %g %v", ids, wt, err)
	}
	if !IsPerfectMatching(g4, ids) {
		t.Error("P4 result not a perfect matching")
	}
}

func TestMatchingOddComponent(t *testing.T) {
	if _, _, err := MinWeightPerfectMatching(Path(3), []float64{1, 1}); !errors.Is(err, ErrNoPerfectMatching) {
		t.Errorf("err = %v", err)
	}
}

func TestMatchingNoPerfectMatchingEvenComponent(t *testing.T) {
	// Star K_{1,3}: 4 vertices, even, but no perfect matching.
	g := Star(4)
	if _, _, err := MinWeightPerfectMatching(g, UniformWeights(g, 1)); !errors.Is(err, ErrNoPerfectMatching) {
		t.Errorf("err = %v", err)
	}
}

func TestMatchingDirectedRejected(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1)
	if _, _, err := MinWeightPerfectMatching(g, []float64{1}); err == nil {
		t.Error("directed graph accepted")
	}
}

func TestMatchingLengthMismatch(t *testing.T) {
	if _, _, err := MinWeightPerfectMatching(Path(2), nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMatchingCompleteBipartiteAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 40; trial++ {
		a := 1 + rng.Intn(4)
		g := CompleteBipartite(a, a)
		w := UniformRandomWeights(g, -3, 5, rng)
		ids, wt, err := MinWeightPerfectMatching(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if !IsPerfectMatching(g, ids) {
			t.Fatal("not a perfect matching")
		}
		if math.Abs(PathWeight(w, ids)-wt) > 1e-9 {
			t.Fatal("reported weight disagrees with edges")
		}
		brute, ok := bruteForceMatching(g, w)
		if !ok {
			t.Fatal("brute force found none")
		}
		if math.Abs(wt-brute) > 1e-9 {
			t.Fatalf("hungarian %g != brute %g", wt, brute)
		}
	}
}

func TestMatchingNonBipartiteAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 2 * (1 + rng.Intn(4)) // 2..8 vertices
		g := Complete(n)           // odd cycles abound: non-bipartite for n >= 3
		w := UniformRandomWeights(g, -2, 4, rng)
		ids, wt, err := MinWeightPerfectMatching(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if !IsPerfectMatching(g, ids) {
			t.Fatal("not a perfect matching")
		}
		brute, ok := bruteForceMatching(g, w)
		if !ok {
			t.Fatal("brute force found none")
		}
		if math.Abs(wt-brute) > 1e-9 {
			t.Fatalf("bitmask %g != brute %g", wt, brute)
		}
	}
}

func TestMatchingMixedComponents(t *testing.T) {
	// One bipartite component (P2), one non-bipartite (triangle+pendant).
	g := New(6)
	e0 := g.AddEdge(0, 1) // P2 component
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2) // triangle 2-3-4
	e4 := g.AddEdge(4, 5)
	w := []float64{2, 1, 5, 1, 3}
	ids, wt, err := MinWeightPerfectMatching(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPerfectMatching(g, ids) {
		t.Fatal("not perfect")
	}
	// Must match 0-1 (2), 4-5 (3), 2-3 (1): total 6.
	if wt != 6 {
		t.Fatalf("weight = %g, want 6", wt)
	}
	hasE0, hasE4 := false, false
	for _, id := range ids {
		if id == e0 {
			hasE0 = true
		}
		if id == e4 {
			hasE4 = true
		}
	}
	if !hasE0 || !hasE4 {
		t.Errorf("matching = %v", ids)
	}
}

func TestMatchingParallelEdgesPickCheapest(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	cheap := g.AddEdge(0, 1)
	ids, wt, err := MinWeightPerfectMatching(g, []float64{7, 3})
	if err != nil || wt != 3 {
		t.Fatalf("%v %g %v", ids, wt, err)
	}
	if ids[0] != cheap {
		t.Errorf("picked edge %d", ids[0])
	}
}

func TestMatchingHourglassStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	hg := NewHourglassGadget(20)
	for trial := 0; trial < 10; trial++ {
		w := UniformRandomWeights(hg.G, 0, 4, rng)
		ids, wt, err := MinWeightPerfectMatching(hg.G, w)
		if err != nil {
			t.Fatal(err)
		}
		if !IsPerfectMatching(hg.G, ids) {
			t.Fatal("not perfect")
		}
		brute, _ := bruteForceMatching(hg.G, w)
		if math.Abs(wt-brute) > 1e-9 {
			t.Fatalf("hourglass %g != brute %g", wt, brute)
		}
	}
}

func TestMatchingTooLargeNonBipartite(t *testing.T) {
	// A big odd-girth component: complete graph on 24 vertices.
	g := Complete(24)
	_, _, err := MinWeightPerfectMatching(g, UniformWeights(g, 1))
	if !errors.Is(err, ErrMatchingTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestLargeBipartiteMatchingOK(t *testing.T) {
	// Bipartite components have no size limit.
	rng := rand.New(rand.NewSource(19))
	g := CompleteBipartite(40, 40)
	w := UniformRandomWeights(g, 0, 1, rng)
	ids, _, err := MinWeightPerfectMatching(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPerfectMatching(g, ids) {
		t.Fatal("not perfect")
	}
}

func TestMaxWeightPerfectMatching(t *testing.T) {
	g := CompleteBipartite(2, 2)
	// edges: (0,2) (0,3) (1,2) (1,3)
	w := []float64{1, 9, 8, 2}
	ids, wt, err := MaxWeightPerfectMatching(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if wt != 17 { // 9 + 8
		t.Fatalf("max weight = %g, want 17", wt)
	}
	if !IsPerfectMatching(g, ids) {
		t.Fatal("not perfect")
	}
}

func TestBipartition(t *testing.T) {
	color, ok := Bipartition(CompleteBipartite(3, 4))
	if !ok {
		t.Fatal("K_{3,4} not bipartite")
	}
	for i := 0; i < 3; i++ {
		if color[i] != color[0] {
			t.Error("left side multicolored")
		}
	}
	if _, ok := Bipartition(Complete(3)); ok {
		t.Error("triangle bipartite")
	}
	if _, ok := Bipartition(Cycle(5)); ok {
		t.Error("C5 bipartite")
	}
	if _, ok := Bipartition(Cycle(6)); !ok {
		t.Error("C6 not bipartite")
	}
	g := New(2)
	g.AddEdge(0, 0)
	if _, ok := Bipartition(g); ok {
		t.Error("self-loop bipartite")
	}
}

func TestIsPerfectMatching(t *testing.T) {
	g := Path(4)
	if !IsPerfectMatching(g, []int{0, 2}) {
		t.Error("valid matching rejected")
	}
	if IsPerfectMatching(g, []int{0, 1}) {
		t.Error("overlapping edges accepted")
	}
	if IsPerfectMatching(g, []int{0}) {
		t.Error("partial matching accepted")
	}
	if IsPerfectMatching(g, []int{99}) {
		t.Error("bad edge ID accepted")
	}
	loop := New(2)
	loop.AddEdge(0, 0)
	loop.AddEdge(0, 1)
	if IsPerfectMatching(loop, []int{0, 1}) {
		t.Error("self-loop accepted in matching")
	}
}

func TestMatchingEmptyGraph(t *testing.T) {
	ids, wt, err := MinWeightPerfectMatching(New(0), nil)
	if err != nil || len(ids) != 0 || wt != 0 {
		t.Fatalf("%v %g %v", ids, wt, err)
	}
}

func BenchmarkHungarian40(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := CompleteBipartite(40, 40)
	w := UniformRandomWeights(g, 0, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinWeightPerfectMatching(g, w); err != nil {
			b.Fatal(err)
		}
	}
}
