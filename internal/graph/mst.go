package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// ErrDisconnected is returned when a spanning tree is requested for a
// disconnected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// MST computes a minimum spanning tree of the connected undirected graph g
// under the weight vector w using Kruskal's algorithm. Negative weights
// are permitted (the paper's Appendix B allows them). It returns the edge
// IDs of the tree, sorted, and the total tree weight.
func MST(g *Graph, w []float64) ([]int, float64, error) {
	if g.Directed() {
		return nil, 0, errors.New("graph: MST requires an undirected graph")
	}
	if len(w) != g.M() {
		return nil, 0, fmt.Errorf("graph: MST weight vector has length %d, want %d", len(w), g.M())
	}
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return w[order[i]] < w[order[j]] })
	uf := NewUnionFind(g.N())
	var tree []int
	total := 0.0
	for _, id := range order {
		e := g.Edge(id)
		if e.From == e.To {
			continue
		}
		if uf.Union(e.From, e.To) {
			tree = append(tree, id)
			total += w[id]
			if len(tree) == g.N()-1 {
				break
			}
		}
	}
	if len(tree) != g.N()-1 && g.N() > 0 {
		return nil, 0, ErrDisconnected
	}
	sort.Ints(tree)
	return tree, total, nil
}

// primItem is a heap entry for Prim's algorithm.
type primItem struct {
	vertex int
	edge   int
	weight float64
}

type primHeap []primItem

func (h primHeap) Len() int           { return len(h) }
func (h primHeap) Less(i, j int) bool { return h[i].weight < h[j].weight }
func (h primHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *primHeap) Push(x any)        { *h = append(*h, x.(primItem)) }
func (h *primHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *primHeap) push(it primItem)  { heap.Push(h, it) }
func (h *primHeap) pop() primItem     { return heap.Pop(h).(primItem) }

// PrimMST computes a minimum spanning tree with Prim's algorithm (lazy
// deletion heap). It is used in tests as an independent check of MST.
func PrimMST(g *Graph, w []float64) ([]int, float64, error) {
	if g.Directed() {
		return nil, 0, errors.New("graph: PrimMST requires an undirected graph")
	}
	if len(w) != g.M() {
		return nil, 0, fmt.Errorf("graph: PrimMST weight vector has length %d, want %d", len(w), g.M())
	}
	n := g.N()
	if n == 0 {
		return nil, 0, nil
	}
	inTree := make([]bool, n)
	var h primHeap
	var tree []int
	total := 0.0
	add := func(v int) {
		inTree[v] = true
		for _, half := range g.Adj(v) {
			if !inTree[half.To] {
				h.push(primItem{vertex: half.To, edge: half.Edge, weight: w[half.Edge]})
			}
		}
	}
	add(0)
	for len(tree) < n-1 && h.Len() > 0 {
		it := h.pop()
		if inTree[it.vertex] {
			continue
		}
		tree = append(tree, it.edge)
		total += it.weight
		add(it.vertex)
	}
	if len(tree) != n-1 {
		return nil, 0, ErrDisconnected
	}
	sort.Ints(tree)
	return tree, total, nil
}

// SpanningTree returns an arbitrary spanning tree of the connected graph
// g (ignoring weights), as edge IDs sorted ascending. The covering
// construction of Lemma 4.4 may use any spanning tree.
func SpanningTree(g *Graph) ([]int, error) {
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	seen := make([]bool, n)
	seen[0] = true
	var tree []int
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, half := range g.Adj(v) {
			if !seen[half.To] {
				seen[half.To] = true
				tree = append(tree, half.Edge)
				stack = append(stack, half.To)
			}
		}
	}
	if len(tree) != n-1 {
		return nil, ErrDisconnected
	}
	sort.Ints(tree)
	return tree, nil
}

// Subgraph returns the subgraph of g induced by the given edge IDs, on the
// same vertex set, along with a map from new edge IDs (dense, in the order
// given) back to the original IDs.
func Subgraph(g *Graph, edgeIDs []int) (*Graph, []int) {
	s := New(g.N())
	s.directed = g.Directed()
	orig := make([]int, 0, len(edgeIDs))
	for _, id := range edgeIDs {
		e := g.Edge(id)
		s.AddEdge(e.From, e.To)
		orig = append(orig, id)
	}
	return s, orig
}

// IsSpanningTree reports whether the edge IDs form a spanning tree of g:
// exactly N-1 edges that connect all vertices acyclically.
func IsSpanningTree(g *Graph, edgeIDs []int) bool {
	if g.N() == 0 {
		return len(edgeIDs) == 0
	}
	if len(edgeIDs) != g.N()-1 {
		return false
	}
	uf := NewUnionFind(g.N())
	for _, id := range edgeIDs {
		if id < 0 || id >= g.M() {
			return false
		}
		e := g.Edge(id)
		if !uf.Union(e.From, e.To) {
			return false // cycle
		}
	}
	return uf.Count() == 1
}
