package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestMSTTriangle(t *testing.T) {
	g := Complete(3)
	tree, wt, err := MST(g, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if wt != 3 || len(tree) != 2 {
		t.Fatalf("MST = %v weight %g", tree, wt)
	}
	if !IsSpanningTree(g, tree) {
		t.Error("not a spanning tree")
	}
}

func TestMSTNegativeWeights(t *testing.T) {
	g := Complete(4)
	w := []float64{-5, 1, 2, -3, 4, -1}
	tree, wt, err := MST(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSpanningTree(g, tree) {
		t.Fatal("not spanning")
	}
	if wt != -5-3-1 {
		t.Fatalf("weight %g, want -9", wt)
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	if _, _, err := MST(g, []float64{1}); !errors.Is(err, ErrDisconnected) {
		t.Errorf("err = %v", err)
	}
}

func TestMSTDirectedRejected(t *testing.T) {
	g := NewDirected(2)
	g.AddEdge(0, 1)
	if _, _, err := MST(g, []float64{1}); err == nil {
		t.Error("directed accepted")
	}
}

func TestMSTSkipsSelfLoops(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0) // weight -100: would be picked first if not skipped
	g.AddEdge(0, 1)
	tree, wt, err := MST(g, []float64{-100, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 1 || tree[0] != 1 || wt != 5 {
		t.Fatalf("tree = %v wt = %g", tree, wt)
	}
}

func TestMSTMatchesPrimProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		g := ConnectedErdosRenyi(n, 0.2, rng)
		w := UniformRandomWeights(g, -5, 10, rng)
		_, kw, err := MST(g, w)
		if err != nil {
			t.Fatal(err)
		}
		_, pw, err := PrimMST(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(kw-pw) > 1e-9 {
			t.Fatalf("trial %d: kruskal %g != prim %g", trial, kw, pw)
		}
	}
}

func TestMSTOnMultigraphPicksCheapParallel(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	cheap := g.AddEdge(0, 1)
	tree, wt, err := MST(g, []float64{9, 2})
	if err != nil || wt != 2 || tree[0] != cheap {
		t.Fatalf("%v %g %v", tree, wt, err)
	}
}

func TestSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		g := ConnectedErdosRenyi(n, 0.15, rng)
		tree, err := SpanningTree(g)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 && !IsSpanningTree(g, tree) {
			t.Fatal("SpanningTree output invalid")
		}
	}
	g := New(3)
	g.AddEdge(0, 1)
	if _, err := SpanningTree(g); !errors.Is(err, ErrDisconnected) {
		t.Errorf("err = %v", err)
	}
	if tree, err := SpanningTree(New(0)); err != nil || len(tree) != 0 {
		t.Error("empty graph spanning tree")
	}
}

func TestSubgraph(t *testing.T) {
	g := Complete(4)
	sub, orig := Subgraph(g, []int{2, 5})
	if sub.N() != 4 || sub.M() != 2 {
		t.Fatalf("subgraph dims %d %d", sub.N(), sub.M())
	}
	if orig[0] != 2 || orig[1] != 5 {
		t.Errorf("orig = %v", orig)
	}
	e := sub.Edge(0)
	oe := g.Edge(2)
	if e.From != oe.From || e.To != oe.To {
		t.Error("edge endpoints not preserved")
	}
}

func TestIsSpanningTree(t *testing.T) {
	g := Complete(4) // edges: 0:(0,1) 1:(0,2) 2:(0,3) 3:(1,2) 4:(1,3) 5:(2,3)
	if !IsSpanningTree(g, []int{0, 1, 2}) {
		t.Error("star rejected")
	}
	if IsSpanningTree(g, []int{0, 1}) {
		t.Error("two edges accepted")
	}
	if IsSpanningTree(g, []int{0, 1, 3}) {
		t.Error("cycle accepted")
	}
	if IsSpanningTree(g, []int{0, 1, 99}) {
		t.Error("bad ID accepted")
	}
	if !IsSpanningTree(New(0), nil) {
		t.Error("empty graph empty tree rejected")
	}
	if !IsSpanningTree(New(1), nil) {
		t.Error("singleton rejected")
	}
}

// Cut property check: for random graphs with distinct weights, every MST
// edge is the cheapest edge across some cut; equivalently, removing an
// MST edge and reconnecting with the cheapest crossing edge returns the
// same edge.
func TestMSTCutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(15)
		g := ConnectedErdosRenyi(n, 0.4, rng)
		w := make([]float64, g.M())
		for i := range w {
			w[i] = rng.Float64() // distinct a.s.
		}
		tree, _, err := MST(g, w)
		if err != nil {
			t.Fatal(err)
		}
		inTree := map[int]bool{}
		for _, id := range tree {
			inTree[id] = true
		}
		for _, cut := range tree {
			// Components after removing this edge.
			uf := NewUnionFind(n)
			for _, id := range tree {
				if id != cut {
					e := g.Edge(id)
					uf.Union(e.From, e.To)
				}
			}
			// Cheapest edge crossing the cut must be the removed edge.
			bestID := -1
			for _, e := range g.Edges() {
				if e.From == e.To || uf.Connected(e.From, e.To) {
					continue
				}
				if bestID == -1 || w[e.ID] < w[bestID] {
					bestID = e.ID
				}
			}
			if bestID != cut {
				t.Fatalf("cut property violated: edge %d vs cheapest crossing %d", cut, bestID)
			}
		}
	}
}

func BenchmarkMSTGrid32(b *testing.B) {
	g := Grid(32)
	rng := rand.New(rand.NewSource(1))
	w := UniformRandomWeights(g, 0, 10, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MST(g, w); err != nil {
			b.Fatal(err)
		}
	}
}
