package graph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCfg caps case counts so the randomized suite stays fast.
var quickCfg = &quick.Config{MaxCount: 40}

// TestQuickTreeDistanceSymmetric: on a random tree derived from the seed,
// the unique-path distance is symmetric and satisfies the LCA identity.
func TestQuickTreeDistanceSymmetric(t *testing.T) {
	f := func(seed int64, a, b uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(a%60)
		g := RandomPruferTree(n, rng)
		tr, err := NewTree(g, int(b)%n)
		if err != nil {
			return false
		}
		w := UniformRandomWeights(g, 0, 5, rng)
		x, y := rng.Intn(n), rng.Intn(n)
		d1 := tr.TreeDistance(w, x, y)
		d2 := tr.TreeDistance(w, y, x)
		lca := NewLCA(tr).Find(x, y)
		rd := tr.RootDistances(w)
		identity := rd[x] + rd[y] - 2*rd[lca]
		return math.Abs(d1-d2) < 1e-9 && math.Abs(d1-identity) < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTreePathIsReversible: TreePath(x,y) is the reverse of
// TreePath(y,x) and both are valid walks.
func TestQuickTreePathIsReversible(t *testing.T) {
	f := func(seed int64, a uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(a%50)
		g := RandomTree(n, rng)
		tr, err := NewTree(g, 0)
		if err != nil {
			return false
		}
		x, y := rng.Intn(n), rng.Intn(n)
		p1 := tr.TreePath(x, y)
		p2 := tr.TreePath(y, x)
		if len(p1) != len(p2) {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[len(p2)-1-i] {
				return false
			}
		}
		return g.ValidatePath(x, y, p1) == nil && g.ValidatePath(y, x, p2) == nil
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitterInvariant: the splitter property holds on arbitrary
// random trees and roots.
func TestQuickSplitterInvariant(t *testing.T) {
	f := func(seed int64, a, r uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(a%80)
		g := RandomPruferTree(n, rng)
		tr, err := NewTree(g, int(r)%n)
		if err != nil {
			return false
		}
		v := tr.Splitter()
		if 2*tr.Size[v] <= n {
			return false
		}
		for _, h := range tr.Children(v) {
			if 2*tr.Size[h.To] > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCoveringInvariant: Covering always verifies and meets the
// Lemma 4.4 size bound.
func TestQuickCoveringInvariant(t *testing.T) {
	f := func(seed int64, a, kk uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(a%100)
		k := 1 + int(kk)%(n-1)
		if n < k+1 {
			return true
		}
		g := ConnectedErdosRenyi(n, 2/float64(n), rng)
		z, err := Covering(g, k)
		if err != nil {
			return false
		}
		return len(z) <= n/(k+1) && VerifyCovering(g, z, k)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickGadgetRoundTrips: encode/decode identity for all three
// lower-bound gadgets under arbitrary bit vectors.
func TestQuickGadgetRoundTrips(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) == 0 || len(bits) > 200 {
			return true
		}
		n := len(bits)
		pg := NewPathGadget(n)
		path, wt, ok, err := ShortestPath(pg.G, pg.Weights(bits), pg.S, pg.T)
		if err != nil || !ok || wt != 0 {
			return false
		}
		y := pg.Decode(path)
		mg := NewMSTGadget(n)
		tree, tw, err := MST(mg.G, mg.Weights(bits))
		if err != nil || tw != 0 {
			return false
		}
		y2 := mg.Decode(tree)
		hg := NewHourglassGadget(n)
		m, mw, err := MinWeightPerfectMatching(hg.G, hg.Weights(bits))
		if err != nil || mw != 0 {
			return false
		}
		y3 := hg.Decode(m)
		for i := range bits {
			if y[i] != bits[i] || y2[i] != bits[i] || y3[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTextRoundTrip: serialization round-trips arbitrary random
// weighted multigraphs.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64, a, b uint16, directed bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(a%40)
		var g *Graph
		if directed {
			g = NewDirected(n)
		} else {
			g = New(n)
		}
		edges := int(b % 120)
		for i := 0; i < edges; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n)) // self-loops and parallels allowed
		}
		w := UniformRandomWeights(g, -10, 10, rng)
		var buf bytes.Buffer
		if err := WriteText(&buf, g, w); err != nil {
			return false
		}
		g2, w2, err := ReadText(&buf)
		if err != nil || g2.N() != n || g2.M() != g.M() || g2.Directed() != directed {
			return false
		}
		for i, e := range g.Edges() {
			e2 := g2.Edge(i)
			if e.From != e2.From || e.To != e2.To || w[i] != w2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDijkstraOptimality: Dijkstra distances are at most the weight
// of a random walk between the endpoints (path optimality under arbitrary
// nonnegative weights).
func TestQuickDijkstraOptimality(t *testing.T) {
	f := func(seed int64, a uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(a%50)
		g := ConnectedErdosRenyi(n, 0.2, rng)
		w := UniformRandomWeights(g, 0, 4, rng)
		tree, err := Dijkstra(g, w, 0)
		if err != nil {
			return false
		}
		// Random walk from 0 of bounded length; distance to its endpoint
		// must not exceed the walk's weight.
		v := 0
		walkWeight := 0.0
		for step := 0; step < 12; step++ {
			adj := g.Adj(v)
			if len(adj) == 0 {
				break
			}
			h := adj[rng.Intn(len(adj))]
			walkWeight += w[h.Edge]
			v = h.To
			if tree.Dist[v] > walkWeight+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMSTOptimalAgainstRandomSpanningTrees: the MST weight never
// exceeds the weight of a random spanning tree.
func TestQuickMSTOptimalAgainstRandomSpanningTrees(t *testing.T) {
	f := func(seed int64, a uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(a%40)
		g := ConnectedErdosRenyi(n, 0.3, rng)
		w := UniformRandomWeights(g, -3, 6, rng)
		_, mstW, err := MST(g, w)
		if err != nil {
			return false
		}
		// A random spanning tree: Kruskal over randomly permuted edges.
		uf := NewUnionFind(n)
		randW := 0.0
		for _, id := range rng.Perm(g.M()) {
			e := g.Edge(id)
			if e.From != e.To && uf.Union(e.From, e.To) {
				randW += w[id]
			}
		}
		return mstW <= randW+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMatchingOptimalAgainstGreedy: the exact matcher never loses to
// a greedy matching on complete bipartite graphs.
func TestQuickMatchingOptimalAgainstGreedy(t *testing.T) {
	f := func(seed int64, a uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		side := 1 + int(a%8)
		g := CompleteBipartite(side, side)
		w := UniformRandomWeights(g, -5, 5, rng)
		_, optW, err := MinWeightPerfectMatching(g, w)
		if err != nil {
			return false
		}
		// Greedy: repeatedly take the cheapest edge between unmatched
		// endpoints.
		matched := make([]bool, g.N())
		greedyW := 0.0
		for picked := 0; picked < side; {
			best, bestW := -1, math.Inf(1)
			for _, e := range g.Edges() {
				if !matched[e.From] && !matched[e.To] && w[e.ID] < bestW {
					best, bestW = e.ID, w[e.ID]
				}
			}
			e := g.Edge(best)
			matched[e.From] = true
			matched[e.To] = true
			greedyW += bestW
			picked++
		}
		return optW <= greedyW+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
