package graph

import (
	"errors"
	"fmt"
	"math"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// ErrNegativeWeight is returned by Dijkstra when a negative edge weight is
// encountered.
var ErrNegativeWeight = errors.New("graph: negative edge weight")

// ErrNegativeCycle is returned by BellmanFord when a negative cycle is
// reachable from the source.
var ErrNegativeCycle = errors.New("graph: negative cycle reachable from source")

// ShortestPathTree is the result of a single-source shortest path
// computation: distances and the in-edge of every vertex on some shortest
// path tree rooted at Source.
type ShortestPathTree struct {
	Source  int
	Dist    []float64 // Dist[v] = weighted distance from Source; Inf if unreachable
	Parent  []int     // Parent[v] = preceding vertex on a shortest path; -1 for source/unreachable
	ViaEdge []int     // ViaEdge[v] = edge ID into v on that path; -1 for source/unreachable
}

// Reachable reports whether v is reachable from the source.
func (t *ShortestPathTree) Reachable(v int) bool {
	return !math.IsInf(t.Dist[v], 1)
}

// PathTo returns the edge-ID path from the source to v, or nil and false
// when v is unreachable. The returned path is empty (non-nil) for v equal
// to the source.
func (t *ShortestPathTree) PathTo(v int) ([]int, bool) {
	if !t.Reachable(v) {
		return nil, false
	}
	path := []int{}
	for v != t.Source {
		path = append(path, t.ViaEdge[v])
		v = t.Parent[v]
	}
	// Reverse into source-to-target order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, true
}

// Hops returns the hop length of the tree path from the source to v, or -1
// if unreachable.
func (t *ShortestPathTree) Hops(v int) int {
	if !t.Reachable(v) {
		return -1
	}
	h := 0
	for v != t.Source {
		v = t.Parent[v]
		h++
	}
	return h
}

// Dijkstra computes single-source shortest paths from source under the
// weight vector w. All weights must be nonnegative; a negative weight
// yields ErrNegativeWeight. Runs in O((V + E) log V) on the frozen CSR
// adjacency with a non-boxing indexed 4-ary heap (see dijkstra.go); only
// the returned tree's arrays are allocated.
func Dijkstra(g *Graph, w []float64, source int) (*ShortestPathTree, error) {
	if err := checkDijkstraArgs(g, w, source); err != nil {
		return nil, err
	}
	n := g.N()
	t := &ShortestPathTree{
		Source:  source,
		Dist:    make([]float64, n),
		Parent:  make([]int, n),
		ViaEdge: make([]int, n),
	}
	ws := spPool.Get().(*spWorkspace)
	ws.reset(n)
	ws.run(g, w, source, 0)
	copy(t.Dist, ws.dist)
	for v := 0; v < n; v++ {
		t.Parent[v] = int(ws.parent[v])
		t.ViaEdge[v] = int(ws.via[v])
	}
	spPool.Put(ws)
	return t, nil
}

// BellmanFord computes single-source shortest paths allowing negative edge
// weights. For undirected graphs any negative edge is itself a negative
// cycle, so BellmanFord on an undirected graph with a negative weight
// reachable from the source returns ErrNegativeCycle.
func BellmanFord(g *Graph, w []float64, source int) (*ShortestPathTree, error) {
	if len(w) != g.M() {
		return nil, fmt.Errorf("graph: BellmanFord weight vector has length %d, want %d", len(w), g.M())
	}
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("graph: BellmanFord source %d out of range [0, %d)", source, g.N())
	}
	n := g.N()
	t := &ShortestPathTree{
		Source:  source,
		Dist:    make([]float64, n),
		Parent:  make([]int, n),
		ViaEdge: make([]int, n),
	}
	for v := 0; v < n; v++ {
		t.Dist[v] = Inf
		t.Parent[v] = -1
		t.ViaEdge[v] = -1
	}
	t.Dist[source] = 0
	relax := func() bool {
		changed := false
		for v := 0; v < n; v++ {
			if math.IsInf(t.Dist[v], 1) {
				continue
			}
			for _, half := range g.Adj(v) {
				if nd := t.Dist[v] + w[half.Edge]; nd < t.Dist[half.To] {
					t.Dist[half.To] = nd
					t.Parent[half.To] = v
					t.ViaEdge[half.To] = half.Edge
					changed = true
				}
			}
		}
		return changed
	}
	for i := 0; i < n-1; i++ {
		if !relax() {
			return t, nil
		}
	}
	if relax() {
		return nil, ErrNegativeCycle
	}
	return t, nil
}

// Distance returns the weighted distance between s and t under w, or Inf
// if t is unreachable from s. It runs in a pooled workspace with early
// exit at t and allocates nothing in steady state.
func Distance(g *Graph, w []float64, s, t int) (float64, error) {
	return QueryDistance(g, w, s, t)
}

// ShortestPath returns a minimum-weight path between s and t as an
// edge-ID sequence, together with its weight. The boolean result reports
// reachability.
func ShortestPath(g *Graph, w []float64, s, t int) ([]int, float64, bool, error) {
	tree, err := Dijkstra(g, w, s)
	if err != nil {
		return nil, 0, false, err
	}
	path, ok := tree.PathTo(t)
	if !ok {
		return nil, Inf, false, nil
	}
	return path, tree.Dist[t], true, nil
}

// AllPairsDistances runs Dijkstra from every vertex and returns the full
// distance matrix, D[s][t]. Unreachable pairs get Inf. One pooled
// workspace serves all V runs; only the matrix itself is allocated.
func AllPairsDistances(g *Graph, w []float64) ([][]float64, error) {
	n := g.N()
	d := make([][]float64, n)
	if n == 0 {
		return d, nil
	}
	if err := checkDijkstraArgs(g, w, 0); err != nil {
		return nil, err
	}
	ws := spPool.Get().(*spWorkspace)
	for s := 0; s < n; s++ {
		ws.reset(n)
		ws.run(g, w, s, 0)
		d[s] = append([]float64(nil), ws.dist...)
	}
	spPool.Put(ws)
	return d, nil
}

// FloydWarshall computes all-pairs distances in O(V^3), tolerating
// negative weights (but not negative cycles, which it reports via
// ErrNegativeCycle). Useful as an independent oracle in tests.
func FloydWarshall(g *Graph, w []float64) ([][]float64, error) {
	if len(w) != g.M() {
		return nil, fmt.Errorf("graph: FloydWarshall weight vector has length %d, want %d", len(w), g.M())
	}
	n := g.N()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = Inf
			}
		}
	}
	for _, e := range g.Edges() {
		if w[e.ID] < d[e.From][e.To] {
			d[e.From][e.To] = w[e.ID]
		}
		if !g.Directed() && w[e.ID] < d[e.To][e.From] {
			d[e.To][e.From] = w[e.ID]
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if d[v][v] < 0 {
			return nil, ErrNegativeCycle
		}
	}
	return d, nil
}
